// End-to-end functional inference: a small CNN executed entirely through
// the bit-serial datapath — dispatcher, SIP grid, cascading requantization
// and pooling — with the outputs checked against the bit-parallel golden
// pipeline and the dynamic-precision savings reported per layer.
//
//   ./functional_pipeline
#include <iostream>

#include "core/loom.hpp"
#include "sim/functional.hpp"

using namespace loom;

int main() {
  // A LeNet-ish digit classifier, profiled by hand.
  nn::Network net("digitnet", nn::Shape3{1, 28, 28});
  net.add_conv("conv1", 8, 5, 1, 2).precision_group = 0;
  net.add_pool("pool1", nn::PoolKind::kMax, 2, 2);
  net.add_conv("conv2", 16, 5, 1, 2).precision_group = 1;
  net.add_pool("pool2", nn::PoolKind::kMax, 2, 2);
  net.add_fc("fc1", 64);
  net.add_fc("logits", 10);
  quant::PrecisionProfile profile;
  profile.network = "digitnet";
  profile.conv_act = {8, 7};
  profile.conv_weight = 8;
  profile.fc_weight = {8, 7};
  quant::apply_profile(net, profile);

  // Synthetic input image + weights.
  nn::SyntheticSpec img{.precision = 8, .alpha = 3.0, .is_signed = false};
  const nn::Tensor input = nn::make_activation_tensor(net.input(), img, 11, 0);
  std::vector<nn::Tensor> weights;
  std::uint64_t stream = 1;
  for (const auto& l : net.layers()) {
    if (!l.has_weights()) continue;
    nn::SyntheticSpec w{.precision = l.weight_precision, .alpha = 8.0,
                        .is_signed = true};
    weights.push_back(nn::make_weight_tensor(l.weight_count(), w, 12, stream++));
  }

  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.rows = 16, .cols = 16});
  const auto run = engine.run_network(net, input, weights);

  TextTable t("digitnet through the bit-serial datapath");
  t.set_header({"Layer", "Cycles", "Streamed Pa (mean)", "Profile Pa",
                "Requant shift", "Out bits"});
  for (const auto& lr : run.layers) {
    // Look the profile precision up from the network by name.
    int profile_pa = 16;
    for (const auto& l : net.layers()) {
      if (l.name == lr.name) profile_pa = l.act_precision;
    }
    t.add_row({lr.name, std::to_string(lr.cycles),
               TextTable::num(lr.mean_streamed_precision, 1),
               std::to_string(profile_pa), std::to_string(lr.requant_shift),
               std::to_string(lr.out_bits)});
  }
  std::cout << t.render() << '\n';

  // Cross-check the final logits against the golden pipeline using the
  // same requantization decisions.
  nn::Tensor x = input;
  std::size_t wi = 0, ri = 0;
  bool exact = true;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& l = net.layer(i);
    if (l.kind == nn::LayerKind::kPool) {
      x = nn::pool_forward(x, l);
      continue;
    }
    const nn::WideTensor wide =
        l.kind == nn::LayerKind::kConv
            ? nn::conv_forward(x, weights[wi], l)
            : nn::fc_forward(x, weights[wi], l);
    ++wi;
    const auto& lr = run.layers[ri++];
    x = nn::requantize(wide, lr.requant_shift, lr.out_bits, true);
  }
  for (std::int64_t i = 0; i < x.elements(); ++i) {
    exact = exact && x.flat(i) == run.output.flat(i);
  }

  std::cout << "Total datapath cycles: " << run.total_cycles << '\n'
            << "Logits match the bit-parallel golden pipeline: "
            << (exact ? "EXACT" : "MISMATCH") << '\n'
            << "Detector invocations: "
            << engine.dispatcher().detector().invocations() << '\n';
  return exact ? 0 : 1;
}
