// Compare every architecture on a chosen network and emit both a table and
// machine-readable CSV — the workflow a deployment study would use to pick
// an accelerator for an embedded SoC.
//
// Runs in the constrained §4.5 memory mode by default (tile-scheduled
// AM/WM with a single LPDDR4 channel); pass --model-offchip=false for the
// paper's §4.3 unconstrained setup, and --am-kb/--wm-kb to sweep memory
// capacities without recompiling.
//
//   ./accelerator_comparison [--network=googlenet] [--equiv=128]
//                            [--model-offchip=false] [--am-kb=512]
//                            [--wm-kb=1024] [--csv] [--memory]
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const std::string network = cli.get("network", "googlenet");

  core::RunnerOptions opts = core::runner_options_from_cli(cli);
  opts.include_dstripes = cli.get_bool("dstripes", true);
  core::ExperimentRunner runner(opts);

  const sim::Comparison cmp = runner.compare({network});
  const auto names = runner.roster_names();

  if (cli.get_bool("csv", false)) {
    CsvWriter csv(std::cout);
    csv.write_row({"arch", "filter", "perf_vs_dpnn", "eff_vs_dpnn", "cycles",
                   "stall_cycles", "dram_read_bits", "dram_write_bits", "fps",
                   "core_mm2"});
    for (const auto f : {sim::RunResult::Filter::kAll,
                         sim::RunResult::Filter::kConv,
                         sim::RunResult::Filter::kFc}) {
      const char* fname = f == sim::RunResult::Filter::kAll    ? "all"
                          : f == sim::RunResult::Filter::kConv ? "conv"
                                                                : "fc";
      for (const auto& e : cmp.entries(f)) {
        const energy::Activity a = e.result.activity(f);
        csv.write_row({e.arch, fname, TextTable::num(e.perf, 4),
                       TextTable::num(e.eff, 4),
                       std::to_string(e.result.cycles(f)),
                       std::to_string(e.result.stall_cycles(f)),
                       std::to_string(a.dram_read_bits),
                       std::to_string(a.dram_write_bits),
                       TextTable::num(e.result.fps(), 2),
                       TextTable::num(e.result.area.core_mm2(), 3)});
      }
    }
    return 0;
  }

  const std::string mode = opts.model_offchip
                               ? " (constrained memory)"
                               : " (unconstrained memory)";
  std::cout << core::format_table2(cmp, names, "Comparison on " + network + mode)
            << '\n';
  std::cout << core::format_all_layers(cmp, names,
                                       "Comparison on " + network + mode)
            << '\n';

  if (opts.model_offchip && cli.get_bool("memory", false)) {
    for (const auto& e : cmp.entries(sim::RunResult::Filter::kAll)) {
      std::cout << '\n' << core::format_memory_breakdown(e.result);
    }
  }

  std::cout << "\nDecision guide: LM1b maximizes speed; LM2b/LM4b trade a "
               "little speed for lower area and energy; Stripes helps only "
               "convolutional layers.\n";
  return 0;
}
