// Compare every architecture on a chosen network and emit both a table and
// machine-readable CSV — the workflow a deployment study would use to pick
// an accelerator for an embedded SoC.
//
//   ./accelerator_comparison [--network=googlenet] [--equiv=128] [--offchip]
//                            [--csv]
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const std::string network = cli.get("network", "googlenet");

  core::RunnerOptions opts;
  opts.equiv_macs = static_cast<int>(cli.get_int("equiv", 128));
  opts.include_dstripes = true;
  opts.model_offchip = cli.get_bool("offchip", false);
  core::ExperimentRunner runner(opts);

  const sim::Comparison cmp = runner.compare({network});
  const auto names = runner.roster_names();

  if (cli.get_bool("csv", false)) {
    CsvWriter csv(std::cout);
    csv.write_row({"arch", "filter", "perf_vs_dpnn", "eff_vs_dpnn", "cycles",
                   "fps", "core_mm2"});
    for (const auto f : {sim::RunResult::Filter::kAll,
                         sim::RunResult::Filter::kConv,
                         sim::RunResult::Filter::kFc}) {
      const char* fname = f == sim::RunResult::Filter::kAll    ? "all"
                          : f == sim::RunResult::Filter::kConv ? "conv"
                                                                : "fc";
      for (const auto& e : cmp.entries(f)) {
        csv.write_row({e.arch, fname, TextTable::num(e.perf, 4),
                       TextTable::num(e.eff, 4),
                       std::to_string(e.result.cycles(f)),
                       TextTable::num(e.result.fps(), 2),
                       TextTable::num(e.result.area.core_mm2(), 3)});
      }
    }
    return 0;
  }

  std::cout << core::format_table2(cmp, names, "Comparison on " + network)
            << '\n';
  std::cout << core::format_all_layers(cmp, names, "Comparison on " + network)
            << '\n';

  std::cout << "\nDecision guide: LM1b maximizes speed; LM2b/LM4b trade a "
               "little speed for lower area and energy; Stripes helps only "
               "convolutional layers.\n";
  return 0;
}
