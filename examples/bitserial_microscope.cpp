// A microscope on the bit-serial datapath: run a real (tiny) convolution
// through the functional SIP grid cycle-by-cycle, compare against the
// bit-parallel golden model, and show how cycles scale with the operand
// precisions — Section 2 of the paper, executed.
//
//   ./bitserial_microscope
#include <iostream>
#include <vector>

#include "core/loom.hpp"

using namespace loom;

int main() {
  // A 4x8x8 input, eight 3x3 filters — small enough to watch.
  const nn::Layer layer = nn::make_conv("demo", nn::Shape3{4, 8, 8}, 8, 3, 1, 1);
  nn::SyntheticSpec act_spec{.precision = 7, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec w_spec{.precision = 6, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(layer.in, act_spec, 1, 1);
  const nn::Tensor weights = nn::make_weight_tensor(layer.weight_count(), w_spec, 2, 2);

  // Golden result from the bit-parallel reference.
  const nn::WideTensor golden = nn::conv_forward(input, weights, layer);

  // Drive the SIP grid: rows = 8 filters, cols = 16 windows at a time.
  arch::SipTile tile(arch::TileConfig{.rows = 8, .cols = 16, .lanes = 16});
  const auto inner = layer.inner_length();
  std::vector<std::vector<Value>> weights_by_row(8);
  for (int f = 0; f < 8; ++f) {
    for (std::int64_t i = 0; i < inner; ++i) {
      weights_by_row[static_cast<std::size_t>(f)].push_back(
          weights.flat(f * inner + i));
    }
  }
  auto gather_window = [&](std::int64_t window) {
    std::vector<Value> vals;
    const std::int64_t oy = window / layer.out.w;
    const std::int64_t ox = window % layer.out.w;
    for (std::int64_t ci = 0; ci < layer.in.c; ++ci) {
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          const std::int64_t iy = oy + ky - 1;
          const std::int64_t ix = ox + kx - 1;
          vals.push_back(iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w
                             ? Value{0}
                             : input.at3(ci, iy, ix));
        }
      }
    }
    return vals;
  };

  std::uint64_t total_cycles = 0;
  std::int64_t mismatches = 0;
  const std::int64_t windows = layer.windows();
  for (std::int64_t wb = 0; wb < ceil_div(windows, 16); ++wb) {
    std::vector<std::vector<Value>> acts;
    for (std::int64_t w = wb * 16; w < std::min<std::int64_t>((wb + 1) * 16, windows); ++w) {
      acts.push_back(gather_window(w));
    }
    const auto block = tile.conv_block(acts, weights_by_row, 7, 6);
    total_cycles += block.cycles;
    for (int f = 0; f < 8; ++f) {
      for (std::size_t c = 0; c < acts.size(); ++c) {
        const std::int64_t w = wb * 16 + static_cast<std::int64_t>(c);
        const Wide expect = golden.at3(f, w / layer.out.w, w % layer.out.w);
        if (block.outputs[static_cast<std::size_t>(f) * 16 + c] != expect) {
          ++mismatches;
        }
      }
    }
  }

  std::cout << "Bit-serial SIP grid vs bit-parallel golden model\n"
            << "  outputs checked:  " << layer.out.elements() << '\n'
            << "  mismatches:       " << mismatches
            << (mismatches == 0 ? "  (exact)" : "  (BUG)") << '\n'
            << "  tile cycles:      " << total_cycles << " at Pa=7, Pw=6\n";

  // The headline law: cycles scale with Pa x Pw.
  TextTable t("Cycles for one 16-window block vs operand precisions");
  t.set_header({"Pa", "Pw", "cycles", "vs 16x16"});
  const auto acts0 = [&] {
    std::vector<std::vector<Value>> a;
    for (std::int64_t w = 0; w < 16; ++w) a.push_back(gather_window(w));
    return a;
  }();
  const auto full = tile.conv_block(acts0, weights_by_row, 16, 16).cycles;
  for (const auto& [pa, pw] : {std::pair{16, 16}, {8, 8}, {7, 6}, {4, 4}, {2, 2}}) {
    const auto cycles = tile.conv_block(acts0, weights_by_row, pa, pw).cycles;
    t.add_row({std::to_string(pa), std::to_string(pw), std::to_string(cycles),
               TextTable::num(static_cast<double>(full) / static_cast<double>(cycles), 1) + "x"});
  }
  std::cout << '\n' << t.render();
  std::cout << "\nEvery bit of precision saved is a proportional cycle saved "
               "— the paper's core idea, live.\n";
  return mismatches == 0 ? 0 : 1;
}
