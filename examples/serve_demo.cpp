// Batched inference serving demo: two models behind one InferenceServer,
// several producer threads submitting interleaved requests, and a
// batched-vs-sequential throughput comparison on the same traffic.
//
//   ./build/examples/serve_demo
//
// The server coalesces concurrent requests per model into lane-packed
// batches for the bit-sliced engine; outputs are byte-identical to running
// each request alone (the demo spot-checks one request per model against a
// solo run).
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "sim/functional.hpp"

using namespace loom;

namespace {

void populate_registry(serve::ModelRegistry& registry) {
  // A conv-heavy model: small-image convolution stack with a pool.
  {
    nn::Network net("convnet", nn::Shape3{8, 20, 20});
    net.add_conv("c1", 24, 3, 1, 1).precision_group = 0;
    net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
    net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
    net.add_fc("logits", 10);
    quant::PrecisionProfile p;
    p.network = "convnet";
    p.conv_act = {8, 7};
    p.conv_weight = 9;
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    registry.add_synthetic("convnet", std::move(net), p, /*seed=*/11);
  }

  // An FC-heavy model: the regime where a lone request fills almost none of
  // the 64 lanes and cross-request batching pays the most.
  {
    nn::Network net("mlp", nn::Shape3{256, 1, 1});
    net.add_fc("h1", 96);
    net.add_fc("h2", 48);
    net.add_fc("logits", 10);
    quant::PrecisionProfile p;
    p.network = "mlp";
    p.conv_weight = 8;
    p.fc_weight = {8, 8, 8};
    quant::apply_profile(net, p);
    registry.add_synthetic("mlp", std::move(net), p, /*seed=*/12);
  }
}

}  // namespace

int main() {
  serve::ModelRegistry registry;
  populate_registry(registry);
  const auto convnet = registry.find("convnet");
  const auto mlp = registry.find("mlp");

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 24;
  constexpr int kTotal = kProducers * kRequestsPerProducer;

  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.batch_deadline = std::chrono::microseconds(400);
  opts.queue_depth = 32;
  opts.workers = 1;
  opts.engine.jobs = 1;

  // ---- Serve interleaved traffic from several producers -------------------
  std::vector<std::future<serve::InferenceResult>> futures(
      static_cast<std::size_t>(kTotal));
  const auto t0 = std::chrono::steady_clock::now();
  serve::ServerStats stats;
  {
    serve::InferenceServer server(registry, opts);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kRequestsPerProducer; ++i) {
          const auto model = (p + i) % 2 == 0 ? convnet : mlp;
          const int id = p * kRequestsPerProducer + i;
          futures[static_cast<std::size_t>(id)] = server.submit(
              model, model->make_input(/*seed=*/77, /*stream=*/id));
        }
      });
    }
    for (auto& t : producers) t.join();
    for (auto& f : futures) (void)f.wait();
    stats = server.stats();
  }  // drain + join
  const std::chrono::duration<double> served =
      std::chrono::steady_clock::now() - t0;

  // ---- The same traffic, one request at a time ----------------------------
  // Identical (model, input) pairs as the served run: id = p * 24 + i was
  // submitted for (p + i) % 2.
  const auto t1 = std::chrono::steady_clock::now();
  sim::FunctionalLoomEngine solo(opts.engine);
  for (int id = 0; id < kTotal; ++id) {
    const int p = id / kRequestsPerProducer;
    const int i = id % kRequestsPerProducer;
    const auto& model = (p + i) % 2 == 0 ? *convnet : *mlp;
    (void)solo.run_network(model.net, model.make_input(77, id), model.weights);
  }
  const std::chrono::duration<double> sequential =
      std::chrono::steady_clock::now() - t1;

  // ---- Spot-check byte-identity on one request per model ------------------
  for (const auto& model : {convnet, mlp}) {
    const nn::Tensor input = model->make_input(77, 2);
    const auto solo_run = solo.run_network(model->net, input, model->weights);
    serve::InferenceServer checker(registry, opts);
    const auto result = checker.submit(model, input).get();
    if (!(result.output == solo_run.output)) {
      std::printf("FAIL: batched output diverged for %s\n",
                  model->name.c_str());
      return 1;
    }
  }

  std::printf("served %d requests from %d producers over 2 models\n", kTotal,
              kProducers);
  std::printf("  batches: %llu  (mean batch %.2f, peak %llu)\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch(),
              static_cast<unsigned long long>(stats.peak_batch));
  std::printf("  peak queue depth: %llu of %zu\n",
              static_cast<unsigned long long>(stats.peak_queue_depth),
              opts.queue_depth);
  std::printf("  mean queue wait: %.1f us   max latency: %.1f us\n",
              1e-3 *
                  static_cast<double>(stats.total_queue_wait.count()) /
                  static_cast<double>(stats.completed),
              1e-3 * static_cast<double>(stats.max_latency.count()));
  std::printf("  batched:    %7.1f img/s  (%.3f s wall)\n",
              kTotal / served.count(), served.count());
  std::printf("  sequential: %7.1f img/s  (%.3f s wall)\n",
              kTotal / sequential.count(), sequential.count());
  std::printf("  throughput: %.2fx, outputs byte-identical to solo runs\n",
              sequential.count() / served.count());
  return 0;
}
