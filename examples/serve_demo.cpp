// Batched inference serving demo: two models behind one InferenceServer,
// several producer threads submitting interleaved requests, and a
// batched-vs-sequential throughput comparison on the same traffic.
//
//   ./build/examples/serve_demo
//   ./build/examples/serve_demo --priority=mixed --deadline-ms=5
//   ./build/examples/serve_demo --inject-faults --fault-seed=7
//
// Flags:
//   --priority=interactive|batch|besteffort|mixed
//       Class every request is submitted under; "mixed" (default) rotates
//       through all three. Interactive blocks at a full queue, batch sheds
//       when the queue is full, best-effort sheds at the watermark.
//   --deadline-ms=N   per-request deadline (0 = none, the default); expired
//       requests resolve with DeadlineExceededError and count as timed out.
//   --inject-faults   arm the deterministic fault injector (20% engine
//       failures, occasional batcher stalls and queue-pressure spikes) to
//       show retry -> scalar-fallback degradation keeping outputs exact.
//   --fault-seed=S    replay seed for the injector (default 1).
//
// Sharded mode (--shards=N with N >= 1 routes the same traffic through a
// ShardRouter instead of a single server and prints per-shard health
// transitions as they happen):
//   --shards=N              number of InferenceServer shards (0 = off).
//   --tenant=NAME           tenant the producers submit under ("default").
//   --quota-rps=R           token-bucket rate for that tenant (0 = unlimited;
//       burst fixed at 8). Exhausted tenants get TenantQuotaError, counted
//       separately from overload sheds.
//   --kill-shard-after-ms=N kill the traffic's primary shard N ms into the
//       run; failover reroutes and the circuit breaker restarts it
//       (watch the ejected -> probation -> healthy transitions).
//   --inject-faults in sharded mode also arms the shard-scoped sites:
//       shard kills, stalls, probe failures and snapshot corruption.
//
// The server coalesces concurrent requests per model into lane-packed
// batches for the bit-sliced engine; outputs are byte-identical to running
// each request alone (the demo spot-checks one request per model against a
// solo run), no matter which degradation path a batch took.
#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/options.hpp"
#include "serve/server.hpp"
#include "serve/shard_router.hpp"
#include "sim/functional.hpp"

using namespace loom;

namespace {

void populate_registry(serve::ModelRegistry& registry) {
  // A conv-heavy model: small-image convolution stack with a pool.
  {
    nn::Network net("convnet", nn::Shape3{8, 20, 20});
    net.add_conv("c1", 24, 3, 1, 1).precision_group = 0;
    net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
    net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
    net.add_fc("logits", 10);
    quant::PrecisionProfile p;
    p.network = "convnet";
    p.conv_act = {8, 7};
    p.conv_weight = 9;
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    registry.add_synthetic("convnet", std::move(net), p, /*seed=*/11);
  }

  // An FC-heavy model: the regime where a lone request fills almost none of
  // the 64 lanes and cross-request batching pays the most.
  {
    nn::Network net("mlp", nn::Shape3{256, 1, 1});
    net.add_fc("h1", 96);
    net.add_fc("h2", 48);
    net.add_fc("logits", 10);
    quant::PrecisionProfile p;
    p.network = "mlp";
    p.conv_weight = 8;
    p.fc_weight = {8, 8, 8};
    quant::apply_profile(net, p);
    registry.add_synthetic("mlp", std::move(net), p, /*seed=*/12);
  }
}

serve::Priority priority_for(const std::string& mode, int id) {
  if (mode == "interactive") return serve::Priority::kInteractive;
  if (mode == "batch") return serve::Priority::kBatch;
  if (mode == "besteffort") return serve::Priority::kBestEffort;
  return static_cast<serve::Priority>(id % serve::kPriorityClasses);  // mixed
}

// ---- Sharded mode ---------------------------------------------------------
// The same producers, routed through a ShardRouter: rendezvous affinity,
// health-gated failover, per-tenant quotas, and a live transition log.
int run_sharded(const core::Options& cli) {
  const std::string priority_mode = cli.get("priority", "mixed");
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  const bool inject = cli.get_bool("inject-faults", false);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const int shards = cli.get_int("shards", 2);
  const std::string tenant = cli.get("tenant", "default");
  const double quota_rps = cli.get_double("quota-rps", 0.0);
  const int kill_after_ms = cli.get_int("kill-shard-after-ms", 0);

  auto registry = std::make_shared<serve::ModelRegistry>();
  populate_registry(*registry);
  const auto convnet = registry->find("convnet");
  const auto mlp = registry->find("mlp");

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 24;
  constexpr int kTotal = kProducers * kRequestsPerProducer;

  serve::RouterOptions opts;
  opts.shards = shards;
  opts.shard.max_batch = 8;
  opts.shard.batch_deadline = std::chrono::microseconds(400);
  opts.shard.queue_depth = 32;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  opts.probe_interval = std::chrono::milliseconds(5);
  opts.probation_backoff = std::chrono::milliseconds(2);
  if (quota_rps > 0.0) {
    opts.tenant_quotas[tenant] = serve::TenantQuota{quota_rps, 8.0};
  }
  if (inject) {
    opts.faults.seed = fault_seed;
    opts.faults.engine_failure_prob = 0.20;
    opts.faults.shard_kill_prob = 0.05;
    opts.faults.shard_stall_prob = 0.10;
    opts.faults.shard_stall = std::chrono::microseconds(2000);
    opts.faults.probe_failure_prob = 0.10;
    opts.faults.snapshot_corrupt_prob = 0.10;
  }

  struct Outcomes {
    int completed = 0;
    int quota_rejected = 0;
    int shed = 0;
    int timed_out = 0;
    int failed = 0;
  };
  Outcomes totals;
  std::mutex totals_mutex;
  serve::RouterStats stats;
  std::vector<serve::HealthTransition> transitions;
  const auto t0 = std::chrono::steady_clock::now();
  {
    serve::ShardRouter router(registry, opts);
    const std::vector<int> rank = router.rank_shards("convnet", tenant);
    std::printf("sharded serving: %d shards, tenant '%s' (primary shard %d)\n",
                shards, tenant.c_str(), rank.front());

    std::thread killer;
    if (kill_after_ms > 0) {
      killer = std::thread([&router, &rank, kill_after_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
        std::printf("  !! killing shard %d\n", rank.front());
        router.kill_shard(rank.front());
      });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Outcomes local;
        for (int i = 0; i < kRequestsPerProducer; ++i) {
          const auto model = (p + i) % 2 == 0 ? convnet : mlp;
          const int id = p * kRequestsPerProducer + i;
          serve::RouteOptions ropts;
          ropts.tenant = tenant;
          ropts.priority = priority_for(priority_mode, id);
          if (deadline_ms > 0.0) {
            ropts.deadline =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
          }
          try {
            (void)router.submit(model->name,
                                model->make_input(/*seed=*/77, /*stream=*/id),
                                ropts);
            ++local.completed;
          } catch (const TenantQuotaError&) {
            ++local.quota_rejected;
          } catch (const OverloadError&) {
            ++local.shed;
          } catch (const DeadlineExceededError&) {
            ++local.timed_out;
          } catch (const std::exception&) {
            ++local.failed;
          }
        }
        const std::lock_guard<std::mutex> lock(totals_mutex);
        totals.completed += local.completed;
        totals.quota_rejected += local.quota_rejected;
        totals.shed += local.shed;
        totals.timed_out += local.timed_out;
        totals.failed += local.failed;
      });
    }
    for (auto& t : producers) t.join();
    if (killer.joinable()) killer.join();

    // Byte-identity spot check through the (possibly fault-ridden) router:
    // whichever shard serves it, the output must match a solo run.
    sim::FunctionalLoomEngine solo(opts.shard.engine);
    for (const auto& model : {convnet, mlp}) {
      const nn::Tensor input = model->make_input(77, 2);
      const auto solo_run =
          solo.run_network(model->net, input, model->weights);
      try {
        const serve::InferenceResult res =
            router.submit(model->name, input, serve::RouteOptions{});
        if (!(res.output == solo_run.output)) {
          std::printf("FAIL: sharded output diverged for %s\n",
                      model->name.c_str());
          return 1;
        }
      } catch (const std::exception&) {
        // Spot check is best-effort under injected faults.
      }
    }

    stats = router.stats();
    transitions = router.transitions();
    router.stop();
  }
  const std::chrono::duration<double> served =
      std::chrono::steady_clock::now() - t0;

  std::printf("served %d requests from %d producers over 2 models\n", kTotal,
              kProducers);
  std::printf(
      "  submitted %llu = completed %llu + quota_rejected %llu + shed %llu "
      "+ timed_out %llu + failed %llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.quota_rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.failed));
  std::printf(
      "  failovers %llu  hedges %llu (won %llu)  forced recoveries %llu\n",
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.hedges),
      static_cast<unsigned long long>(stats.hedge_wins),
      static_cast<unsigned long long>(stats.forced_recoveries));
  if (stats.recovery_ms.count() > 0) {
    std::printf("  recovery to healthy: mean %.1f ms over %llu recoveries\n",
                stats.recovery_ms.mean(),
                static_cast<unsigned long long>(stats.recovery_ms.count()));
  }
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const serve::ShardStats& ss = stats.shards[s];
    std::printf(
        "  shard %zu: %-9s %s  routed %4llu  ok %4llu  failed %3llu  "
        "kills %llu  restarts %llu  err-ewma %.2f  lat-ewma %.2f ms\n",
        s, serve::health_name(ss.health), ss.alive ? "alive" : "DEAD ",
        static_cast<unsigned long long>(ss.routed),
        static_cast<unsigned long long>(ss.completed),
        static_cast<unsigned long long>(ss.failed),
        static_cast<unsigned long long>(ss.kills),
        static_cast<unsigned long long>(ss.restarts), ss.error_ewma,
        ss.latency_ewma_ms);
  }
  if (!transitions.empty()) {
    std::printf("  health transitions:\n");
    for (const serve::HealthTransition& tr : transitions) {
      std::printf("    %8.1f ms  shard %d  %s -> %s\n",
                  std::chrono::duration<double, std::milli>(tr.at - t0)
                      .count(),
                  tr.shard, serve::health_name(tr.from),
                  serve::health_name(tr.to));
    }
  }
  std::printf("  latency p50 %.1f us  p99 %.1f us  (%.3f s wall)\n",
              1e-3 * stats.latency_ns.p50(), 1e-3 * stats.latency_ns.p99(),
              served.count());
  std::printf("  outputs byte-identical to solo runs\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  if (cli.get_int("shards", 0) > 0) return run_sharded(cli);
  const std::string priority_mode = cli.get("priority", "mixed");
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  const bool inject = cli.get_bool("inject-faults", false);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));

  serve::ModelRegistry registry;
  populate_registry(registry);
  const auto convnet = registry.find("convnet");
  const auto mlp = registry.find("mlp");

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 24;
  constexpr int kTotal = kProducers * kRequestsPerProducer;

  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.batch_deadline = std::chrono::microseconds(400);
  opts.queue_depth = 32;
  opts.workers = 1;
  opts.engine.jobs = 1;
  if (inject) {
    opts.faults.seed = fault_seed;
    opts.faults.engine_failure_prob = 0.20;
    opts.faults.batcher_delay_prob = 0.10;
    opts.faults.batcher_delay = std::chrono::microseconds(500);
    opts.faults.queue_spike_prob = 0.10;
    opts.faults.queue_spike_depth = opts.queue_depth;
  }

  // ---- Serve interleaved traffic from several producers -------------------
  std::vector<std::future<serve::InferenceResult>> futures(
      static_cast<std::size_t>(kTotal));
  std::vector<char> admitted(static_cast<std::size_t>(kTotal), 0);
  const auto t0 = std::chrono::steady_clock::now();
  serve::ServerStats stats;
  std::uint64_t injected_engine_faults = 0;
  {
    serve::InferenceServer server(registry, opts);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kRequestsPerProducer; ++i) {
          const auto model = (p + i) % 2 == 0 ? convnet : mlp;
          const int id = p * kRequestsPerProducer + i;
          serve::SubmitOptions sopts;
          sopts.priority = priority_for(priority_mode, id);
          if (deadline_ms > 0.0) {
            sopts.deadline = std::chrono::duration_cast<
                std::chrono::nanoseconds>(
                std::chrono::duration<double, std::milli>(deadline_ms));
          }
          try {
            futures[static_cast<std::size_t>(id)] = server.submit(
                model, model->make_input(/*seed=*/77, /*stream=*/id), sopts);
            admitted[static_cast<std::size_t>(id)] = 1;
          } catch (const OverloadError&) {
            // Shed at admission (batch / best-effort under pressure).
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    for (int id = 0; id < kTotal; ++id) {
      if (admitted[static_cast<std::size_t>(id)]) {
        futures[static_cast<std::size_t>(id)].wait();
      }
    }
    stats = server.stats();
    injected_engine_faults = server.fault_injector().engine_failures_injected();
  }  // drain + join
  const std::chrono::duration<double> served =
      std::chrono::steady_clock::now() - t0;

  int completed = 0;
  int degraded_ok = 0;
  for (int id = 0; id < kTotal; ++id) {
    if (!admitted[static_cast<std::size_t>(id)]) continue;
    try {
      const serve::InferenceResult res =
          futures[static_cast<std::size_t>(id)].get();
      ++completed;
      if (res.via_fallback || res.engine_attempts > 1) ++degraded_ok;
    } catch (const std::exception&) {
      // DeadlineExceededError / OverloadError / TransientEngineError —
      // already counted in ServerStats below.
    }
  }

  // ---- The same traffic, one request at a time ----------------------------
  // Identical (model, input) pairs as the served run: id = p * 24 + i was
  // submitted for (p + i) % 2.
  const auto t1 = std::chrono::steady_clock::now();
  sim::FunctionalLoomEngine solo(opts.engine);
  for (int id = 0; id < kTotal; ++id) {
    const int p = id / kRequestsPerProducer;
    const int i = id % kRequestsPerProducer;
    const auto& model = (p + i) % 2 == 0 ? *convnet : *mlp;
    (void)solo.run_network(model.net, model.make_input(77, id), model.weights);
  }
  const std::chrono::duration<double> sequential =
      std::chrono::steady_clock::now() - t1;

  // ---- Spot-check byte-identity on one request per model ------------------
  // A fault-free server instance: degradation must never change outputs.
  for (const auto& model : {convnet, mlp}) {
    const nn::Tensor input = model->make_input(77, 2);
    const auto solo_run = solo.run_network(model->net, input, model->weights);
    serve::ServeOptions check_opts = opts;
    check_opts.faults = serve::FaultPlan{};
    serve::InferenceServer checker(registry, check_opts);
    const auto result = checker.submit(model, input).get();
    if (!(result.output == solo_run.output)) {
      std::printf("FAIL: batched output diverged for %s\n",
                  model->name.c_str());
      return 1;
    }
  }

  std::printf("served %d requests from %d producers over 2 models\n", kTotal,
              kProducers);
  std::printf("  batches: %llu  (mean batch %.2f, peak %llu)\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch(),
              static_cast<unsigned long long>(stats.peak_batch));
  std::printf("  peak queue depth: %llu of %zu\n",
              static_cast<unsigned long long>(stats.peak_queue_depth),
              opts.queue_depth);
  std::printf(
      "  completed %llu  rejected %llu  shed %llu  timed out %llu  "
      "failed %llu\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.failed));
  if (inject) {
    std::printf(
        "  faults: %llu engine failures injected -> %llu retries, "
        "%llu scalar fallbacks (%d degraded requests still exact)\n",
        static_cast<unsigned long long>(injected_engine_faults),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.fallbacks), degraded_ok);
  }
  for (int c = 0; c < serve::kPriorityClasses; ++c) {
    const serve::ClassStats& cs =
        stats.by_class[static_cast<std::size_t>(c)];
    if (cs.submitted == 0 && cs.rejected == 0) continue;
    std::printf(
        "  %-11s: %3llu ok  latency p50 %7.1f us  p99 %7.1f us  "
        "(queue-wait p50 %.1f us)\n",
        serve::priority_name(static_cast<serve::Priority>(c)),
        static_cast<unsigned long long>(cs.completed),
        1e-3 * cs.latency_ns.p50(), 1e-3 * cs.latency_ns.p99(),
        1e-3 * cs.queue_wait_ns.p50());
  }
  std::printf("  batched:    %7.1f img/s  (%.3f s wall)\n",
              completed / served.count(), served.count());
  std::printf("  sequential: %7.1f img/s  (%.3f s wall)\n",
              kTotal / sequential.count(), sequential.count());
  std::printf("  throughput: %.2fx, outputs byte-identical to solo runs\n",
              (completed / served.count()) / (kTotal / sequential.count()));
  return 0;
}
