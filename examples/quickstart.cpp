// Quickstart: simulate AlexNet on Loom and the DPNN baseline, print the
// speedup, energy efficiency and a per-layer breakdown.
//
//   ./quickstart [--network=alexnet] [--bits=1] [--target=100]
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const std::string network = cli.get("network", "alexnet");
  const int bits = static_cast<int>(cli.get_int("bits", 1));
  const auto target = cli.get_int("target", 100) == 99
                          ? quant::AccuracyTarget::k99
                          : quant::AccuracyTarget::k100;

  std::cout << "Loom quickstart: " << network << ", LM" << bits
            << "b vs DPNN, " << quant::to_string(target) << " profiles\n\n";

  // 1. Build the profiled network and its synthetic workload.
  auto workload = sim::prepare_network(network, target);

  // 2. Simulate the baseline and Loom.
  auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{});
  arch::LoomConfig lm_cfg;
  lm_cfg.bits_per_cycle = bits;
  auto lm = sim::make_loom_simulator(lm_cfg);

  const sim::RunResult base = dpnn->run(*workload);
  const sim::RunResult run = lm->run(*workload);

  // 3. Report.
  std::cout << core::format_layer_breakdown(run) << '\n';
  using F = sim::RunResult::Filter;
  std::cout << "Speedup vs DPNN:      all "
            << TextTable::num(sim::speedup_vs(run, base, F::kAll)) << "x, conv "
            << TextTable::num(sim::speedup_vs(run, base, F::kConv)) << "x";
  if (base.cycles(F::kFc) > 0) {
    std::cout << ", fc " << TextTable::num(sim::speedup_vs(run, base, F::kFc))
              << "x";
  }
  std::cout << "\nEnergy efficiency:    all "
            << TextTable::num(sim::efficiency_vs(run, base, F::kAll)) << "x\n";
  std::cout << "Throughput at 1 GHz:  " << TextTable::num(run.fps(), 1)
            << " fps (DPNN " << TextTable::num(base.fps(), 1) << " fps)\n";
  std::cout << "Core area:            " << TextTable::num(run.area.core_mm2())
            << " mm2 (DPNN " << TextTable::num(base.area.core_mm2())
            << " mm2)\n";
  return 0;
}
