// Explore the accuracy / performance trade-off the paper highlights:
// sweep a uniform extra trim on top of the Table 1 profiles and watch Loom
// speed up as precision (an accuracy proxy) drops — the "trade-off accuracy
// for additional improvements on the fly" claim of §6, plus a Judd-style
// profiling demo on synthetic tensors.
//
//   ./precision_explorer [--network=vggm]
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const std::string network = cli.get("network", "vggm");

  // Part 1: Judd-style profiling on a synthetic tensor, showing how the
  // fidelity budget maps to precision.
  std::cout << "=== Profiler demo: precision vs fidelity budget ===\n";
  nn::SyntheticSpec spec{.precision = 13, .alpha = 6.0, .is_signed = true};
  const nn::Tensor tensor = nn::make_weight_tensor(1 << 16, spec, 42, 0);
  TextTable prof("Profiled precision of a 13-bit synthetic weight tensor");
  prof.set_header({"MSE budget (rel)", "bits"});
  for (const double budget : {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const int bits = quant::profile_precision(
        tensor, {.mse_budget = budget, .is_signed = true});
    prof.add_row({TextTable::num(budget, 6), std::to_string(bits)});
  }
  std::cout << prof.render() << '\n';

  // Part 2: accuracy-for-performance sweep on a real network profile.
  std::cout << "=== " << network
            << ": shaving bits below the 100% profile ===\n";
  TextTable t("Loom-1b all-layers speedup vs DPNN as precision drops");
  t.set_header({"Extra trim (bits)", "Speedup", "Energy eff", "Note"});

  auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{});
  for (int extra = 0; extra <= 3; ++extra) {
    nn::Network net = nn::zoo::make(network);
    quant::PrecisionProfile profile =
        quant::profile_for(network, quant::AccuracyTarget::k100);
    for (auto& pa : profile.conv_act) pa = std::max(2, pa - extra);
    for (auto& pw : profile.fc_weight) pw = std::max(2, pw - extra);
    profile.conv_weight = std::max(2, profile.conv_weight - extra);
    quant::apply_profile(net, profile);
    sim::NetworkWorkload wl(std::move(net), profile);

    auto lm = sim::make_loom_simulator(arch::LoomConfig{});
    const auto base = dpnn->run(wl);
    const auto run = lm->run(wl);
    const auto f = sim::RunResult::Filter::kAll;
    t.add_row({std::to_string(extra),
               TextTable::num(sim::speedup_vs(run, base, f)),
               TextTable::num(sim::efficiency_vs(run, base, f)),
               extra == 0 ? "Table 1 (100% accuracy)"
                          : extra == 1 ? "~99% accuracy regime" : "lossy"});
  }
  std::cout << t.render() << '\n';
  std::cout << "\nThe paper's example: accepting a 1% relative accuracy loss "
               "buys LM 3.57x performance and 2.87x efficiency vs DPNN.\n";
  return 0;
}
