// Define a custom CNN (a small depth-camera gesture classifier for an
// embedded SoC — the bandwidth-constrained setting Loom targets), attach a
// hand-written precision profile, and size the accelerator: sweep bits per
// cycle and equivalent compute with the off-chip LPDDR4 model on.
//
//   ./custom_network [--offchip=true]
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

namespace {

sim::NetworkWorkload make_gesture_net() {
  nn::Network net("gesturenet", nn::Shape3{1, 96, 96});
  net.add_conv("stem", 32, 5, 2, 2).precision_group = 0;
  net.add_conv("block1", 64, 3, 1, 1).precision_group = 1;
  net.add_pool("pool1", nn::PoolKind::kMax, 2, 2);
  net.add_conv("block2a", 128, 3, 1, 1).precision_group = 2;
  net.add_conv("block2b", 128, 3, 1, 1).precision_group = 3;
  net.add_pool("pool2", nn::PoolKind::kMax, 2, 2);
  net.add_conv("block3", 256, 3, 1, 1).precision_group = 4;
  net.add_pool("pool3", nn::PoolKind::kMax, 2, 2);
  net.add_fc("embed", 512);
  net.add_fc("logits", 16);

  quant::PrecisionProfile profile;
  profile.network = "gesturenet";
  profile.conv_act = {8, 7, 7, 8, 9};  // profiled on the target data
  profile.conv_weight = 10;
  profile.fc_weight = {9, 8};
  profile.dynamic_act_trim = 1.0;
  quant::apply_profile(net, profile);
  return sim::NetworkWorkload(std::move(net), profile);
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  sim::SimOptions sim_opts;
  sim_opts.model_offchip = cli.get_bool("offchip", true);

  sim::NetworkWorkload wl = make_gesture_net();
  std::cout << "GestureNet: " << wl.network().total_macs() / 1000000
            << "M MACs, " << wl.network().total_weights() / 1000
            << "K weights\n\n";

  TextTable t("Sizing Loom for GestureNet (off-chip LPDDR4 modeled: " +
              std::string(sim_opts.model_offchip ? "yes" : "no") + ")");
  t.set_header({"Config", "fps", "Speedup vs DPNN", "Energy eff", "Core mm2",
                "Offchip MB/frame"});

  for (const int e : {32, 64, 128}) {
    arch::DpnnConfig dcfg;
    dcfg.equiv_macs = e;
    auto dpnn = sim::make_dpnn_simulator(dcfg, sim_opts);
    const auto base = dpnn->run(wl);
    t.add_row({"DPNN E=" + std::to_string(e), TextTable::num(base.fps(), 0),
               "1.00", "1.00", TextTable::num(base.area.core_mm2()),
               TextTable::num(static_cast<double>(base.offchip_bits()) / 8e6)});
    for (const int bits : {1, 2, 4}) {
      arch::LoomConfig lcfg;
      lcfg.equiv_macs = e;
      lcfg.bits_per_cycle = bits;
      auto lm = sim::make_loom_simulator(lcfg, sim_opts);
      const auto run = lm->run(wl);
      const auto f = sim::RunResult::Filter::kAll;
      t.add_row({lcfg.name() + " E=" + std::to_string(e),
                 TextTable::num(run.fps(), 0),
                 TextTable::num(sim::speedup_vs(run, base, f)),
                 TextTable::num(sim::efficiency_vs(run, base, f)),
                 TextTable::num(run.area.core_mm2()),
                 TextTable::num(static_cast<double>(run.offchip_bits()) / 8e6)});
    }
    t.add_rule();
  }
  std::cout << t.render() << '\n';
  std::cout << "\nNote how the bit-packed weight/activation streams cut the "
               "off-chip traffic per frame — the SoC constraint Loom was "
               "designed around.\n";
  return 0;
}
