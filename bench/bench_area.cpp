// §4.4 reproduction: post-layout-style area comparison. The paper reports
// LM1b at 1.34x DPNN area (while 3.19x faster), LM2b 1.25x (3.05x), LM4b
// 1.16x (2.74x) — i.e. Loom scales performance-per-area better than the
// baseline. Also prints the with-memory totals used by Figure 5.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const int equiv = static_cast<int>(cli.get_int("equiv", 128));

  const auto mem_dpnn = mem::default_memory_config(equiv, false);
  const auto mem_lm = mem::default_memory_config(equiv, true);

  arch::DpnnConfig dp;
  dp.equiv_macs = equiv;
  const auto a_dp = energy::dpnn_area(dp, mem_dpnn);

  TextTable t("Section 4.4 reproduction: area (65nm-calibrated model, E=" +
              std::to_string(equiv) + ")");
  t.set_header({"Design", "Compute mm2", "Support mm2", "SRAM mm2",
                "Core mm2", "Core ratio", "eDRAM mm2", "Total mm2",
                "Total ratio", "Paper core ratio"});
  auto row = [&](const std::string& name, const energy::AreaBreakdown& a,
                 const std::string& paper) {
    t.add_row({name, TextTable::num(a.compute_mm2), TextTable::num(a.support_mm2),
               TextTable::num(a.sram_mm2), TextTable::num(a.core_mm2()),
               TextTable::num(a.core_mm2() / a_dp.core_mm2()),
               TextTable::num(a.edram_mm2), TextTable::num(a.total_mm2()),
               TextTable::num(a.total_mm2() / a_dp.total_mm2()), paper});
  };
  row("DPNN", a_dp, "1.00");

  // Perf/area: run AlexNet-family geomean perf from the runner for context.
  core::RunnerOptions ropts;
  ropts.equiv_macs = equiv;
  ropts.include_stripes = false;
  ropts.model_offchip = false;  // perf context matches the §4.3 tables
  core::ExperimentRunner runner(ropts);
  const auto cmp = runner.compare();
  const auto names = runner.roster_names();

  TextTable pa("Performance vs area scaling (all layers, 100% profiles)");
  pa.set_header({"Design", "Area ratio", "Perf", "Perf/Area", "Paper perf"});
  const char* paper_core[] = {"1.34", "1.25", "1.16"};
  const char* paper_perf[] = {"3.19", "3.05", "2.74"};
  int i = 0;
  for (const int bits : {1, 2, 4}) {
    arch::LoomConfig lm;
    lm.equiv_macs = equiv;
    lm.bits_per_cycle = bits;
    const auto a = energy::loom_area(lm, mem_lm);
    row(lm.name(), a, paper_core[i]);
    const auto g = cmp.geomeans(names[static_cast<std::size_t>(i)],
                                sim::RunResult::Filter::kAll);
    const double ratio = a.core_mm2() / a_dp.core_mm2();
    pa.add_row({lm.name(), TextTable::num(ratio), TextTable::num(g.perf),
                TextTable::num(g.perf / ratio), paper_perf[i]});
    ++i;
  }
  arch::StripesConfig st;
  st.equiv_macs = equiv;
  row("Stripes", energy::stripes_area(st, mem_lm), "-");

  std::cout << t.render() << '\n';
  std::cout << pa.render() << '\n';
  std::cout << "\nPaper: every Loom variant improves execution time by more "
               "than its area overhead (perf/area > 1 vs DPNN).\n";
  return 0;
}
