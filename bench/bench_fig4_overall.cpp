// Figure 4 reproduction: per-network performance (4a) and energy
// efficiency (4b) of Loom, Stripes and DStripes relative to DPNN, over all
// layers combined, with the 100% accuracy profiles.
//
// Paper reading: LM1b > 3x performance and > 2.5x efficiency on average;
// LM1b consistently outperforms Stripes and DStripes; LM1b is more energy
// efficient than DStripes except on GoogLeNet (within 2%).
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  core::RunnerOptions opts;
  opts.include_dstripes = true;
  opts.jobs = static_cast<int>(cli.get_int("jobs", 0));  // 0 = all hw threads
  opts.model_offchip = false;  // Figure 4 is the §4.3 unconstrained setup
  core::ExperimentRunner runner(opts);
  const sim::Comparison cmp = runner.compare(networks);
  const auto names = runner.roster_names();

  std::cout << core::format_all_layers(
                   cmp, names,
                   "Figure 4 reproduction (100% profiles): performance and "
                   "energy efficiency vs DPNN")
            << "\n";

  // The figure's qualitative claims, checked from the data.
  const auto all = sim::RunResult::Filter::kAll;
  bool lm_beats_stripes = true;
  bool lm_beats_dstripes_perf = true;
  for (const auto& e : cmp.entries(all)) {
    if (e.arch.rfind("LM1b", 0) != 0) continue;
    for (const auto& o : cmp.entries(all)) {
      if (o.network != e.network) continue;
      if (o.arch.rfind("Stripes", 0) == 0) {
        lm_beats_stripes = lm_beats_stripes && e.perf > o.perf && e.eff > o.eff;
      }
      if (o.arch.rfind("DStripes", 0) == 0) {
        lm_beats_dstripes_perf = lm_beats_dstripes_perf && e.perf > o.perf;
      }
    }
  }
  std::cout << "\nClaim checks:\n"
            << "  LM1b outperforms Stripes in perf and efficiency on every "
               "network: "
            << (lm_beats_stripes ? "yes" : "NO") << '\n'
            << "  LM1b outperforms DStripes in performance on every network: "
            << (lm_beats_dstripes_perf ? "yes" : "NO") << '\n';
  const auto g1 = cmp.geomeans(names.size() > 2 ? names[2] : names[0], all);
  std::cout << "  LM1b all-layers geomean perf " << TextTable::num(g1.perf)
            << "x (paper: 3.19x with §4.3 profiles), eff "
            << TextTable::num(g1.eff) << "x (paper: 2.59x)\n";
  return 0;
}
