// Memory footprint and bandwidth study (§3.2 "Reducing Memory Footprint and
// Bandwidth", §4.5's AM sizing, and the §4.6 metadata feasibility check).
// For every network: weight and activation footprints in the baseline
// 16-bit layout vs Loom's bit-interleaved per-layer packing vs per-group
// packing with 4-bit metadata; plus the peak activation footprint that
// drives the 2 MB (DPNN) vs 1 MB (Loom) AM sizing claim.
#include <iostream>

#include "core/loom.hpp"
#include "quant/metadata.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  TextTable t("Weight footprint per network (MB)");
  t.set_header({"Network", "16-bit", "Per-layer packed", "Per-group+meta",
                "Layer ratio", "Group ratio"});
  TextTable act("Peak layer activation footprint (input+output, MB)");
  act.set_header({"Network", "16-bit", "Profile-packed", "Fits 2MB@16b",
                  "Fits 1MB packed"});

  for (const auto& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    const nn::Network& net = wl->network();

    std::int64_t base_bits = 0, layer_bits = 0, group_bits = 0;
    std::size_t windex = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
      const nn::Layer& l = net.layer(i);
      if (!l.has_weights()) continue;
      ++windex;
      const auto& table3 =
          quant::maybe_effective_weight_precisions(name);
      double target = 0.85 * l.weight_precision;
      if (table3 != nullptr && l.kind == nn::LayerKind::kConv) {
        target = (*table3)[static_cast<std::size_t>(l.precision_group)];
      }
      const nn::SyntheticSpec spec = quant::calibrated_spec_cached(
          l.weight_precision, true, 0.0, 16, target);
      const nn::SyntheticSource src(1, nn::weight_stream(i), spec);
      // Sample large tensors to keep the bench quick; footprints scale.
      const std::int64_t count = std::min<std::int64_t>(l.weight_count(), 1 << 21);
      const auto fp = quant::weight_footprint(src, count, l.weight_precision);
      const double scale =
          static_cast<double>(l.weight_count()) / static_cast<double>(count);
      base_bits += static_cast<std::int64_t>(fp.baseline_bits * scale);
      layer_bits += static_cast<std::int64_t>(fp.per_layer_bits * scale);
      group_bits += static_cast<std::int64_t>(fp.per_group_bits * scale);
    }
    const double mb = 8.0 * 1024 * 1024;
    t.add_row({name, TextTable::num(base_bits / mb, 1),
               TextTable::num(layer_bits / mb, 1),
               TextTable::num(group_bits / mb, 1),
               TextTable::num(static_cast<double>(base_bits) / layer_bits),
               TextTable::num(static_cast<double>(base_bits) / group_bits)});

    // Activation footprints.
    std::int64_t peak16 = 0, peak_packed = 0;
    for (const nn::Layer& l : net.layers()) {
      if (!l.has_weights()) continue;
      const int pa = l.kind == nn::LayerKind::kConv ? l.act_precision : 16;
      peak16 = std::max(peak16, (l.in.elements() + l.out.elements()) * 16);
      peak_packed =
          std::max(peak_packed, l.in.elements() * pa + l.out.elements() * 16);
    }
    act.add_row({name, TextTable::num(peak16 / mb, 2),
                 TextTable::num(peak_packed / mb, 2),
                 peak16 <= 2 * 8 << 20 ? "yes" : "no (spills)",
                 peak_packed <= 8 << 20 ? "yes" : "no (spills)"});
  }
  std::cout << t.render() << '\n' << act.render() << '\n';
  std::cout << "\nPaper claims covered: Loom stores data using only as many "
               "bits as the profile requires (~1.3-1.5x weight compression), "
               "so 1 MB of AM suffices where DPNN needs 2 MB; VGG19 spills "
               "either way (§4.5). Per-group packing buys a further ~15-30% "
               "for 4 bits/group of metadata (§4.6).\n";
  return 0;
}
