// Table 1 reproduction: the profile-derived per-layer activation and weight
// precisions. The profiles themselves are published inputs (we cannot
// re-profile trained ImageNet models offline); this harness prints them and
// then validates that (a) the calibrated synthetic tensors are exactly as
// wide as the profile claims — the Judd-style profiler re-derives the
// profile from the data — and (b) the dynamic detector finds the targeted
// sub-profile precisions at group granularity.
#include <cstdio>
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options opts(argc, argv);
  std::cout << "=== Table 1: precision profiles (published inputs) ===\n\n";
  std::cout << core::format_table1() << '\n';

  std::cout << "\n=== Validation: profiler re-derives Table 1 from the "
               "calibrated synthetic tensors ===\n\n";
  TextTable t("Per-layer tight precision of generated activations");
  t.set_header({"Network", "Layer", "Profile Pa", "Profiler Pa", "Mean group Pa",
                "OK"});
  bool all_ok = true;
  const auto networks =
      opts.get_list("networks", nn::zoo::paper_networks());
  for (const std::string& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    const auto convs = wl->network().conv_indices();
    for (std::size_t i = 0; i < convs.size(); ++i) {
      const nn::Layer& layer = wl->network().layer(convs[i]);
      sim::LayerWorkload& lw = wl->layer(convs[i]);

      // Measure the dynamic mean over all real groups (16 columns).
      const std::int64_t wb_count = ceil_div(layer.windows(), 16);
      const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
      double mean_pa = 0.0;
      std::int64_t n = 0;
      int tight = 1;
      for (std::int64_t g = 0; g < layer.groups; ++g) {
        for (std::int64_t wb = 0; wb < wb_count; ++wb) {
          for (std::int64_t ic = 0; ic < ic_count; ++ic) {
            const int p = lw.act_group_precision(g, wb, ic, 16);
            tight = std::max(tight, p);
            mean_pa += p;
            ++n;
          }
        }
      }
      mean_pa /= static_cast<double>(n);
      // The tensor must never exceed its profile; with heavily-trimmed
      // distributions a small layer may not attain the very top bit, which
      // is reported but not an error.
      const bool ok = tight <= layer.act_precision;
      all_ok = all_ok && ok;
      t.add_row({name, layer.name, std::to_string(layer.act_precision),
                 std::to_string(tight), TextTable::num(mean_pa, 2),
                 ok ? (tight == layer.act_precision ? "tight" : "under")
                    : "OVER"});
    }
    t.add_rule();
  }
  std::cout << t.render();
  std::cout << "\nProfile bound: " << (all_ok ? "PASS" : "FAIL")
            << " (no generated tensor exceeds its Table 1 precision)\n";
  return all_ok ? 0 : 1;
}
