// Future-work study (§6: "Future work may consider extending LM to further
// exploit weight sparsity"): estimated gains from skipping weight bit-planes
// in which no weight of a 16-group has a one, under sign-magnitude
// serialization. Reported alongside the per-group precision mode (Table 4)
// to show how much of the opportunity precision trimming already captures.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  TextTable t("Weight sparsity extension (all-layers speedup vs DPNN, "
              "linear-scaling estimates)");
  t.set_header({"Network", "LM1b", "+group Pw (T4)", "+plane skip",
                "+both", "Essential planes (conv1)"});
  for (const auto& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{}, sim::SimOptions{});
    const auto base = dpnn->run(*wl);

    const auto run = [&](bool group, bool sparse) {
      arch::LoomConfig cfg;
      cfg.per_group_weights = group;
      cfg.sparse_weight_skipping = sparse;
      auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
      return sim::speedup_vs(sim->run(*wl), base, sim::RunResult::Filter::kAll);
    };

    const std::size_t first_conv = wl->network().conv_indices().front();
    t.add_row({name, TextTable::num(run(false, false)),
               TextTable::num(run(true, false)),
               TextTable::num(run(false, true)),
               TextTable::num(run(true, true)),
               TextTable::num(wl->layer(first_conv).essential_weight_planes())});
  }
  std::cout << t.render() << '\n';
  std::cout << "\nPlane skipping subsumes precision trimming (it removes "
               "interior zero planes too), so '+both' ~ '+plane skip'. The "
               "increment over Table 4's estimate is the §6 headroom.\n";
  return 0;
}
