// Future-work study (§6: "Future work may consider extending LM to further
// exploit weight sparsity"), measured on the term-serial (Laconic-style)
// simulator instead of estimated: each SIP lane processes one effectual
// activation-term x weight-term pair per cycle, and a group sequencer
// synchronizes the lanes at the slowest one. The old linear-scaling
// arithmetic survives as one column — LaconicConfig::linear_term_scaling
// charges the mean NAF digits *per weight* as if every lane were
// independent — so the estimate-vs-measured delta is visible: estimates
// overshoot because they ignore group synchronization (the union of a
// 16-weight group's digit positions is much longer than any one lane's
// walk). The Loom "+plane skip" flag stays for reference: with this PR it
// also prices the essential-plane-packed WM/DRAM footprint.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  TextTable t("Weight sparsity extension (conv-layer speedup vs DPNN; "
              "term-serial measured vs linear estimate)");
  t.set_header({"Network", "LM1b", "LM1b +plane skip", "Laconic (measured)",
                "Laconic (estimate)", "Overshoot", "Tw sync/lin (conv1)"});
  for (const auto& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{}, sim::SimOptions{});
    const auto base = dpnn->run(*wl);
    const auto conv = sim::RunResult::Filter::kConv;

    const auto run_loom = [&](bool sparse) {
      arch::LoomConfig cfg;
      cfg.sparse_weight_skipping = sparse;
      auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
      return sim::speedup_vs(sim->run(*wl), base, conv);
    };
    const auto run_laconic = [&](bool linear) {
      arch::LaconicConfig cfg;
      cfg.linear_term_scaling = linear;
      auto sim = sim::make_laconic_simulator(cfg, sim::SimOptions{});
      return sim::speedup_vs(sim->run(*wl), base, conv);
    };

    const double measured = run_laconic(false);
    const double estimate = run_laconic(true);
    const std::size_t first_conv = wl->network().conv_indices().front();
    const auto terms = wl->layer(first_conv).naf_weight_terms();
    t.add_row({name, TextTable::num(run_loom(false)),
               TextTable::num(run_loom(true)), TextTable::num(measured),
               TextTable::num(estimate), TextTable::num(estimate / measured),
               TextTable::num(terms.synced_per_group) + "/" +
                   TextTable::num(terms.mean_per_weight)});
  }
  std::cout << t.render() << '\n';
  std::cout << "\nMeasured term-serial cycles charge the synchronized group "
               "walk (the union of NAF digit positions over each 16-weight "
               "group); the linear estimate lets every lane skip its own "
               "zero digits for free. The overshoot column is how far the "
               "old linear-scaling numbers were from a cycle model that "
               "honors synchronization.\n";
  return 0;
}
