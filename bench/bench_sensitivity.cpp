// Sensitivity studies beyond the paper's headline numbers:
//   1. Off-chip bandwidth: sweep the LPDDR4 sustained-efficiency factor and
//      watch the FCL-bound all-layers speedup move (the §4.5 "FCLs are
//      off-chip bound" observation quantified).
//   2. Detector granularity: sweep the dynamic-precision group size; finer
//      groups trim more bits but need more detectors.
//   3. FCL initiation interval: the column-stagger cost on tiny FCLs, the
//      effect §4.3 notes for the multi-bit variants.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

namespace {

void dram_sweep(const std::string& network) {
  TextTable t("LPDDR4 sustained-efficiency sweep on " + network +
              " (LM1b vs DPNN, all layers)");
  t.set_header({"DRAM efficiency", "DPNN fps", "LM1b fps", "Speedup",
                "LM FC stall fraction"});
  for (const double eff : {0.50, 0.65, 0.75, 0.90, 1.00}) {
    auto wl = sim::prepare_network(network, quant::AccuracyTarget::k100);
    sim::SimOptions so;
    so.model_offchip = true;
    so.dram.efficiency = eff;
    auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{}, so);
    auto lm = sim::make_loom_simulator(arch::LoomConfig{}, so);
    const auto rb = dpnn->run(*wl);
    const auto rl = lm->run(*wl);
    std::uint64_t fc_stall = 0, fc_total = 0;
    for (const auto& l : rl.layers) {
      if (l.kind == nn::LayerKind::kFullyConnected) {
        fc_stall += l.stall_cycles;
        fc_total += l.cycles();
      }
    }
    t.add_row({TextTable::num(eff), TextTable::num(rb.fps(), 0),
               TextTable::num(rl.fps(), 0),
               TextTable::num(sim::speedup_vs(rl, rb, sim::RunResult::Filter::kAll)),
               fc_total ? TextTable::num(static_cast<double>(fc_stall) /
                                         static_cast<double>(fc_total))
                        : "n/a"});
  }
  std::cout << t.render() << '\n';
}

void detector_granularity(const std::string& network) {
  // The cycle model groups detection at the AM fetch granularity (256).
  // Here we measure, from the workload data itself, the mean detected
  // precision at several group sizes — the knob a redesign would tune.
  TextTable t("Detector granularity on " + network +
              ": mean detected Pa over real window groups");
  t.set_header({"Layer", "Profile", "cols=4 (64)", "cols=8 (128)",
                "cols=16 (256)"});
  auto wl = sim::prepare_network(network, quant::AccuracyTarget::k100);
  const auto convs = wl->network().conv_indices();
  for (const std::size_t li : convs) {
    const nn::Layer& layer = wl->network().layer(li);
    sim::LayerWorkload& lw = wl->layer(li);
    std::vector<std::string> row{layer.name, std::to_string(layer.act_precision)};
    for (const int cols : {4, 8, 16}) {
      const std::int64_t wb_count = ceil_div(layer.windows(), cols);
      const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
      double sum = 0.0;
      std::int64_t n = 0;
      const std::int64_t stride = std::max<std::int64_t>(1, wb_count * ic_count / 512);
      for (std::int64_t k = 0; k < wb_count * ic_count; k += stride) {
        sum += lw.act_group_precision(0, k / ic_count, k % ic_count, cols);
        ++n;
      }
      row.push_back(TextTable::num(sum / static_cast<double>(n)));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render() << '\n';
}

void fc_initiation() {
  TextTable t("FCL initiation interval: tiny layers vs the column stagger");
  t.set_header({"Ci", "Co", "LM1b cycles", "LM2b cycles", "LM4b cycles",
                "LM4b/LM1b"});
  for (const auto& [ci, co] : {std::pair{256, 64}, {1024, 1000}, {4096, 4096}}) {
    std::vector<std::uint64_t> cycles;
    for (const int bits : {1, 2, 4}) {
      nn::Network net("fc", nn::Shape3{ci, 1, 1});
      net.add_fc("f", co);
      quant::PrecisionProfile p;
      p.network = "fc";
      p.fc_weight = {9};
      quant::apply_profile(net, p);
      sim::NetworkWorkload wl(std::move(net), p);
      arch::LoomConfig cfg;
      cfg.bits_per_cycle = bits;
      cfg.dynamic_act_precision = false;
      auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
      cycles.push_back(sim->run(wl).cycles(sim::RunResult::Filter::kFc));
    }
    t.add_row({std::to_string(ci), std::to_string(co),
               std::to_string(cycles[0]), std::to_string(cycles[1]),
               std::to_string(cycles[2]),
               TextTable::num(static_cast<double>(cycles[2]) /
                              static_cast<double>(cycles[0]))});
  }
  std::cout << t.render() << '\n';
  std::cout << "Processing more activation bits per cycle shortens the "
               "stagger (cols-1 cycles), visible only on small FCLs — the "
               "§4.3 observation.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const std::string network = cli.get("network", "alexnet");
  dram_sweep(network);
  detector_granularity(network);
  fc_initiation();
  return 0;
}
