// Table 2 reproduction: relative execution-time speedup and energy
// efficiency of Stripes and the Loom variants vs the DPNN baseline, for
// fully-connected and convolutional layers separately, under both the 100%
// and the 99% top-1 accuracy profiles.
//
// Paper geomeans for reference (100% / 99%):
//   FCL  Stripes 1.00/1.00  LM1b 1.74/1.85  LM2b 1.75/1.85  LM4b 1.75/1.86
//   CVL  Stripes 1.84/1.99  LM1b 3.25/3.63  LM2b 3.10/3.45  LM4b 2.78/3.11
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  for (const auto target :
       {quant::AccuracyTarget::k100, quant::AccuracyTarget::k99}) {
    core::RunnerOptions opts;
    opts.equiv_macs = static_cast<int>(cli.get_int("equiv", 128));
    opts.jobs = static_cast<int>(cli.get_int("jobs", 0));  // 0 = all hw threads
    opts.target = target;
    opts.model_offchip = false;  // Table 2 is the §4.3 unconstrained setup
    core::ExperimentRunner runner(opts);
    const sim::Comparison cmp = runner.compare(networks);
    std::cout << core::format_table2(
                     cmp, runner.roster_names(),
                     "Table 2 reproduction, " + quant::to_string(target) +
                         " TOP-1 accuracy profiles")
              << "\n\n";
  }

  std::cout << "Paper geomeans (100%): CVL Stripes 1.84/1.61, LM1b 3.25/2.63, "
               "LM2b 3.10/2.92, LM4b 2.78/2.92; FCL Stripes 1.00/0.88, "
               "LM1b 1.74/1.41, LM2b 1.75/1.65, LM4b 1.75/1.84\n";
  std::cout << "Paper geomeans (99%):  CVL Stripes 1.99/1.74, LM1b 3.63/2.93, "
               "LM2b 3.45/3.25, LM4b 3.11/3.26; FCL Stripes 1.00/0.88, "
               "LM1b 1.85/1.49, LM2b 1.85/1.75, LM4b 1.86/1.95\n";
  return 0;
}
