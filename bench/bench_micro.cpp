// Microbenchmarks (google-benchmark): throughput of the hot components —
// the functional SIP, the grid tile, precision detection, serialization,
// the OR-plane precision engine and the cycle-accurate layer models
// themselves. The `bench-json` CMake target runs this binary and writes
// BENCH_micro.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cpuid.hpp"
#include "common/error.hpp"
#include "core/loom.hpp"
#include "nn/im2col.hpp"
#include "sim/autotune_cache.hpp"
#include "sim/lut_engine.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/server.hpp"
#include "serve/shard_router.hpp"
#include "sim/backend.hpp"
#include "sim/bitslice_engine.hpp"
#include "sim/functional.hpp"
#include "sim/loom_sim.hpp"
#include "sim/or_planes.hpp"

using namespace loom;

namespace {

std::vector<Value> values(int n, int bits, bool is_signed, std::uint64_t seed) {
  nn::SyntheticSpec spec{.precision = bits, .alpha = 1.5, .is_signed = is_signed};
  const nn::SyntheticSource src(seed, 0, spec);
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = src.at(static_cast<std::uint64_t>(i));
  return out;
}

void BM_SipInnerProduct(benchmark::State& state) {
  const int pa = static_cast<int>(state.range(0));
  const int pw = static_cast<int>(state.range(1));
  arch::Sip sip(arch::SipConfig{});
  const auto a = values(16, pa, false, 1);
  const auto w = values(16, pw, true, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::sip_inner_product(sip, a, w, pa, pw));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SipInnerProduct)->Args({8, 11})->Args({16, 16})->Args({4, 4});

void BM_TileConvBlock(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  arch::SipTile tile(arch::TileConfig{.rows = rows, .cols = 16, .lanes = 16});
  std::vector<std::vector<Value>> acts(16), weights(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < acts.size(); ++i) acts[i] = values(64, 8, false, i);
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = values(64, 8, true, 100 + i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile.conv_block(acts, weights, 8, 8));
  }
  state.SetItemsProcessed(state.iterations() * rows * 16 * 64);
}
BENCHMARK(BM_TileConvBlock)->Arg(4)->Arg(16);

void BM_PrecisionDetect(benchmark::State& state) {
  arch::DynamicPrecisionUnit unit;
  const auto group = values(256, 9, false, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.detect(group));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PrecisionDetect);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const auto vals = values(2048, 11, true, 9);
  for (auto _ : state) {
    const auto planes = arch::serialize(vals, 11);
    benchmark::DoNotOptimize(arch::deserialize(planes, true));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_LoomLayerSimulation(benchmark::State& state) {
  // One mid-size conv layer through the full cycle model (static mode so
  // the measurement excludes one-time calibration).
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  quant::apply_profile(net, p);
  sim::NetworkWorkload wl(std::move(net), p);
  arch::LoomConfig cfg;
  cfg.dynamic_act_precision = false;
  auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->run(wl));
  }
}
BENCHMARK(BM_LoomLayerSimulation);

void BM_LaconicConvLayer(benchmark::State& state) {
  // The same mid-size conv layer through the term-serial cycle model.
  // Laconic is always dynamic (the config rejects anything else), so one
  // warm-up run pays the calibration + term-table fill and the loop times
  // the steady-state table sweep.
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  p.dynamic_act_trim = 1.5;
  quant::apply_profile(net, p);
  sim::NetworkWorkload wl(std::move(net), p);
  auto sim = sim::make_laconic_simulator(arch::LaconicConfig{}, sim::SimOptions{});
  benchmark::DoNotOptimize(sim->run(wl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->run(wl));
  }
}
BENCHMARK(BM_LaconicConvLayer);

void BM_WorkloadGroupPrecision(benchmark::State& state) {
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  p.dynamic_act_trim = 1.5;
  quant::apply_profile(net, p);
  const std::int64_t wb_count = ceil_div(net.layer(0).windows(), 16);
  sim::NetworkWorkload wl(std::move(net), p);
  sim::LayerWorkload& lw = wl.layer(0);
  (void)lw.act_group_precision(0, 0, 0, 16);  // pay calibration once
  std::int64_t wb = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw.act_group_precision(0, wb, 0, 16));
    wb = (wb + 1) % wb_count;
  }
}
BENCHMARK(BM_WorkloadGroupPrecision);

// ---- OR-plane precision engine --------------------------------------------

/// The mid-size conv layer used by the plane benches (same geometry as
/// BM_WorkloadGroupPrecision / BM_LoomLayerSimulation).
nn::Layer plane_layer() {
  nn::Layer layer =
      nn::make_conv("c", nn::Shape3{64, 28, 28}, 128, 3, 1, 1);
  layer.act_precision = 9;
  return layer;
}

nn::Tensor plane_input(const nn::Layer& layer) {
  nn::SyntheticSpec spec;
  spec.precision = 9;
  spec.alpha = 3.0;
  spec.zero_fraction = 0.45;
  return nn::make_activation_tensor(layer.in, spec, 1, 0);
}

void BM_OrPlaneBuild(benchmark::State& state) {
  const nn::Layer layer = plane_layer();
  const nn::Tensor input = plane_input(layer);
  sim::ActOrPlanes planes(layer, 16);
  for (auto _ : state) {
    planes.build(input);
    benchmark::DoNotOptimize(planes.group_or(0, 0, 0, 16));
  }
  // One im2col touch per (window, inner) pair and per cycle model query.
  state.SetItemsProcessed(state.iterations() * layer.windows() *
                          layer.inner_length());
}
BENCHMARK(BM_OrPlaneBuild);

void BM_GroupPrecisionColdQuery(benchmark::State& state) {
  // The post-refactor miss path of act_group_precision: OR `cols`
  // contiguous plane entries + leading-one detection. Cycles over blocks so
  // every query is "cold" (no memo slot involved).
  const nn::Layer layer = plane_layer();
  const nn::Tensor input = plane_input(layer);
  sim::ActOrPlanes planes(layer, 16);
  planes.build(input);
  const std::int64_t wb_count = ceil_div(planes.windows(), 16);
  std::int64_t k = 0;
  for (auto _ : state) {
    const std::int64_t wb = k % wb_count;
    const std::int64_t ic = (k / wb_count) % planes.ic_count();
    ++k;
    benchmark::DoNotOptimize(
        needed_bits_unsigned(planes.group_or(0, ic, wb, 16)));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GroupPrecisionColdQuery);

void BM_GroupPrecisionBruteScan(benchmark::State& state) {
  // Pre-OR-plane reference for the same query: the scattered 256-value
  // im2col scan with per-value div/mod and padding checks. The ratio to
  // BM_GroupPrecisionColdQuery is the steady-state cold-cache speedup.
  const nn::Layer layer = plane_layer();
  const nn::Tensor input = plane_input(layer);
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t wb_count = ceil_div(windows, 16);
  const std::int64_t ic_count = ceil_div(inner, 16);
  std::int64_t k = 0;
  for (auto _ : state) {
    const std::int64_t wb = k % wb_count;
    const std::int64_t ic = (k / wb_count) % ic_count;
    ++k;
    std::uint32_t ored = 0;
    const std::int64_t w_end = std::min<std::int64_t>((wb + 1) * 16, windows);
    const std::int64_t f_end = std::min<std::int64_t>((ic + 1) * 16, inner);
    for (std::int64_t w = wb * 16; w < w_end; ++w) {
      for (std::int64_t f = ic * 16; f < f_end; ++f) {
        const std::int64_t idx = nn::im2col_input_index(layer, 0, w, f);
        if (idx >= 0) ored |= static_cast<std::uint16_t>(input.flat(idx));
      }
    }
    benchmark::DoNotOptimize(needed_bits_unsigned(ored));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GroupPrecisionBruteScan);

void BM_TermCountQuery(benchmark::State& state) {
  // The term-serial analog of BM_GroupPrecisionColdQuery: OR `cols`
  // contiguous plane entries + popcount (essential planes) instead of
  // leading-one detection (positional precision). Same plane data, so the
  // delta to the precision query is the popcount itself.
  const nn::Layer layer = plane_layer();
  const nn::Tensor input = plane_input(layer);
  sim::ActOrPlanes planes(layer, 16);
  planes.build(input);
  const std::uint32_t mask = (std::uint32_t{1} << layer.act_precision) - 1u;
  const std::int64_t wb_count = ceil_div(planes.windows(), 16);
  std::int64_t k = 0;
  for (auto _ : state) {
    const std::int64_t wb = k % wb_count;
    const std::int64_t ic = (k / wb_count) % planes.ic_count();
    ++k;
    benchmark::DoNotOptimize(std::popcount(
        static_cast<std::uint32_t>(planes.group_or(0, ic, wb, 16)) & mask));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TermCountQuery);

void BM_PrecisionTableSweep(benchmark::State& state) {
  // Steady state of simulate_conv: fetch the bulk table and read every
  // chunk precision.
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  p.dynamic_act_trim = 1.5;
  quant::apply_profile(net, p);
  const std::int64_t wb_count = ceil_div(net.layer(0).windows(), 16);
  const std::int64_t ic_count = ceil_div(net.layer(0).inner_length(), 16);
  sim::NetworkWorkload wl(std::move(net), p);
  sim::LayerWorkload& lw = wl.layer(0);
  for (auto _ : state) {
    const sim::ActPrecisionTable table = lw.act_group_precision_table(16);
    std::int64_t sum = 0;
    for (std::int64_t wb = 0; wb < wb_count; ++wb) {
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        sum += table.at(0, wb, ic);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * wb_count * ic_count);
}
BENCHMARK(BM_PrecisionTableSweep);

void BM_WorkloadCalibration(benchmark::State& state) {
  // prepare_network's per-layer cost: the group-calibration bisection plus
  // tensor materialization and the plane build. The generic spec
  // calibration is process-cached, so iterations measure the per-layer
  // work the CalibrationPlanes fast path accelerates.
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  p.dynamic_act_trim = 1.5;
  for (auto _ : state) {
    nn::Network net("bench", nn::Shape3{64, 28, 28});
    net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
    quant::apply_profile(net, p);
    sim::NetworkWorkload wl(std::move(net), p);
    benchmark::DoNotOptimize(wl.layer(0).act_group_precision(0, 0, 0, 16));
  }
}
BENCHMARK(BM_WorkloadCalibration);

// ---- Functional fast path -------------------------------------------------

/// The VGG-scale conv layer both functional benches run: 64ch 28x28 -> 128
/// filters 3x3 (57.8M MACs), profile Pa 9 / Pw 11, ReLU-sparse synthetic
/// activations. The ratio BM_FunctionalConvLayerScalar /
/// BM_FunctionalConvLayer is the bit-sliced engine's single-core speedup.
struct FunctionalBenchCase {
  nn::Network net;
  nn::Tensor input;
  nn::Tensor weights;
};

FunctionalBenchCase functional_case() {
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 3.0, .is_signed = false,
                        .zero_fraction = 0.45};
  nn::SyntheticSpec wsp{.precision = 11, .alpha = 2.0, .is_signed = true};
  FunctionalBenchCase c{std::move(net), {}, {}};
  c.input = nn::make_activation_tensor(c.net.layer(0).in, act, 1, 0);
  c.weights = nn::make_weight_tensor(c.net.layer(0).weight_count(), wsp, 2, 1);
  return c;
}

void BM_FunctionalConvLayer(benchmark::State& state) {
  const FunctionalBenchCase c = functional_case();
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_FunctionalConvLayer)->Unit(benchmark::kMillisecond);

void BM_FunctionalConvLayerScalar(benchmark::State& state) {
  // The scalar arch::Sip oracle on the same layer (one iteration: it is
  // the slow baseline the fast path is measured against).
  const FunctionalBenchCase c = functional_case();
  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .force_scalar = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_FunctionalConvLayerScalar)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_FunctionalConvLayerThreaded(benchmark::State& state) {
  // Same layer with the (group, slab) fan-out over the shared pool.
  const FunctionalBenchCase c = functional_case();
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_FunctionalConvLayerThreaded)->Unit(benchmark::kMillisecond);

// ---- LUT backend ------------------------------------------------------------
// The per-activation-group partial-sum LUT kernel against the bit-sliced
// engine on a LUT-friendly shape: 2-bit weights (one 1-bit slice plus the
// negated MSB slice), many output channels to amortize the 256-entry table
// build, dense 9-bit activations so the bit-sliced plane loop has real work
// per group. The ratio BM_BitsliceConvLayerLowPw / BM_LutConvLayer is the
// table kernel's win; BM_AutotunerPick shows "auto" finding it by itself and
// the ~ns steady-state cost of asking the memo afterwards.

/// LUT showcase geometry at a chosen weight precision: 64ch 14x14 -> 256
/// filters 3x3, Pa 9, dense. Pw 2 is the headline case; the sweep bench
/// walks Pw up to show where the per-slice table reuse stops paying.
FunctionalBenchCase lut_case_pw(int pw) {
  nn::Network net("lut-bench", nn::Shape3{64, 14, 14});
  net.add_conv("c", 256, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "lut-bench";
  p.conv_act = {9};
  p.conv_weight = pw;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 1.2, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = pw, .alpha = 1.2, .is_signed = true};
  FunctionalBenchCase c{std::move(net), {}, {}};
  c.input = nn::make_activation_tensor(c.net.layer(0).in, act, 1, 0);
  c.weights = nn::make_weight_tensor(c.net.layer(0).weight_count(), wsp, 2, 1);
  return c;
}

/// Low-Pw LUT showcase: 64ch 14x14 -> 256 filters 3x3, Pa 9 / Pw 2, dense.
FunctionalBenchCase lut_case() { return lut_case_pw(2); }

void BM_LutConvLayer(benchmark::State& state) {
  const FunctionalBenchCase c = lut_case();
  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .backend = "lut"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_LutConvLayer);

void BM_BitsliceConvLayerLowPw(benchmark::State& state) {
  // The bit-sliced engine on the identical layer: the head-to-head the
  // autotuner decides per cell.
  const FunctionalBenchCase c = lut_case();
  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .backend = "bitslice"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_BitsliceConvLayerLowPw);

void BM_LutFcLayer(benchmark::State& state) {
  // FC through the LUT kernel: signed 16-bit activations, 2-bit weights,
  // 1024 -> 512 (tables built once per input, reused by all 512 rows).
  nn::Network net("lut-fc", nn::Shape3{1024, 1, 1});
  net.add_fc("h", 512);
  quant::PrecisionProfile p;
  p.network = "lut-fc";
  p.conv_weight = 2;
  p.fc_weight = {2};
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 16, .alpha = 3.0, .is_signed = true};
  nn::SyntheticSpec wsp{.precision = 2, .alpha = 1.2, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 1, 0);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 2, 1);
  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .backend = "lut"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_fc(net.layer(0), input, weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * net.layer(0).macs());
}
BENCHMARK(BM_LutFcLayer);

void BM_AutotunerPick(benchmark::State& state) {
  // Converge the low-Pw cell by running the layer through an "auto" engine
  // (each run samples one candidate on real work), then time the memoized
  // choose() — the steady-state per-layer overhead of "auto". The label
  // reports the kernel the tuner picked on this machine.
  const FunctionalBenchCase c = lut_case();
  const nn::Layer& layer = c.net.layer(0);
  const sim::BackendContext ctx{.jobs = 1};
  const sim::BitsliceEngine::SliceSpec spec{
      .act_precision = layer.act_precision,
      .weight_precision = layer.weight_precision,
      .act_signed = false,
      .dynamic = true};
  const sim::TuneKey key = sim::conv_tune_key(layer, spec, 1, ctx);
  const std::vector<std::string> candidates =
      sim::BackendRegistry::instance().tunable_names(ctx);
  sim::BackendAutotuner& tuner = sim::BackendAutotuner::instance();

  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .backend = "auto"});
  std::string winner;
  for (int i = 0; i < 16 && winner.empty(); ++i) {
    benchmark::DoNotOptimize(engine.run_conv(layer, c.input, c.weights, 16));
    for (const auto& d : tuner.decisions()) {
      if (d.key == key && !d.winner.empty()) winner = d.winner;
    }
  }
  state.SetLabel("winner=" + (winner.empty() ? "undecided" : winner));

  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.choose(key, candidates));
  }
}
BENCHMARK(BM_AutotunerPick);

void BM_LutConvLayerPwSweep(benchmark::State& state) {
  // The LUT kernel across weight precisions: each extra Pw bit adds one
  // 1-bit slice lookup per group against the same 256-entry table, so cost
  // should grow roughly linearly in Pw while the table build stays fixed.
  const int pw = static_cast<int>(state.range(0));
  const FunctionalBenchCase c = lut_case_pw(pw);
  sim::FunctionalLoomEngine engine(
      sim::FunctionalOptions{.jobs = 1, .backend = "lut"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_conv(c.net.layer(0), c.input, c.weights, 16));
  }
  state.SetItemsProcessed(state.iterations() * c.net.layer(0).macs());
}
BENCHMARK(BM_LutConvLayerPwSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LutTableBuild(benchmark::State& state) {
  // The vector-doubling 256-entry table fill in isolation, per SIMD tier
  // (arg 0 = scalar, 1 = avx2, 2 = avx512; clamped to what the host has —
  // the label reports the tier that actually ran). The scalar-vs-best
  // ratio is the table-build speedup the SIMD kernels contribute.
  const auto requested = static_cast<common::SimdLevel>(state.range(0));
  const common::SimdLevel level =
      std::min(requested, common::hardware_simd_level());
  constexpr std::size_t kGroups = 64;
  std::vector<std::int32_t> acts(kGroups * 8);
  for (std::size_t i = 0; i < acts.size(); ++i) {
    acts[i] = static_cast<std::int32_t>((i * 37 + 11) % 256) - 128;
  }
  std::vector<std::int16_t> luts(kGroups * 256 +
                                 sim::lut_kernels::kLutPadEntries);
  for (auto _ : state) {
    for (std::size_t g = 0; g < kGroups; ++g) {
      sim::lut_kernels::build_table_i16(level, acts.data() + g * 8,
                                        luts.data() + g * 256);
    }
    benchmark::DoNotOptimize(luts.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::string("tier=") + common::simd_level_name(level));
  // Entries filled per second.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kGroups) * 256);
}
BENCHMARK(BM_LutTableBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_AutotunerColdStart(benchmark::State& state) {
  // What LOOM_AUTOTUNE_CACHE buys at process start. Each iteration plays a
  // fresh "process" deciding the low-Pw cell: cold (arg 0) explores every
  // candidate on real layer runs before it can answer; warm (arg 1) loads
  // the persisted winners and answers immediately — the measured gap is the
  // exploration work the cache deletes. layer_runs_to_decide makes the
  // mechanism visible: ~candidate-count cold, exactly 0 warm.
  const bool warm = state.range(0) != 0;
  const std::string path = "/tmp/loom_bench_autotune.bin";
  const FunctionalBenchCase c = lut_case();
  const nn::Layer& layer = c.net.layer(0);
  auto& tuner = sim::BackendAutotuner::instance();

  const auto decided = [&tuner] {
    for (const auto& d : tuner.decisions()) {
      if (!d.winner.empty()) return true;
    }
    return false;
  };
  const auto converge = [&]() -> int {
    sim::FunctionalLoomEngine engine(
        sim::FunctionalOptions{.jobs = 1, .backend = "auto"});
    int runs = 0;
    while (!decided() && runs < 16) {
      benchmark::DoNotOptimize(engine.run_conv(layer, c.input, c.weights, 16));
      ++runs;
    }
    return runs;
  };

  if (warm) {
    tuner.reset_for_test();
    (void)converge();
    sim::save_autotune_cache(path);
  }

  double runs_sum = 0;
  for (auto _ : state) {
    tuner.reset_for_test();
    if (warm) benchmark::DoNotOptimize(sim::load_autotune_cache(path));
    runs_sum += converge();
  }
  tuner.reset_for_test();
  if (warm) std::remove(path.c_str());
  state.SetLabel(warm ? "warm-cache" : "cold");
  state.counters["layer_runs_to_decide"] =
      runs_sum / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AutotunerColdStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- Batched serving throughput -------------------------------------------
// Lane-packed multi-request execution vs one image at a time, in images/sec
// (items_per_second). The FC-heavy case is the serving regime the batcher
// targets: a lone request fills a handful of the 64 word lanes, so
// cross-request packing is the whole win (>= 1.5x at batch 16 is asserted
// by the baseline trajectory). The conv case is AlexNet-conv1 scale
// (stride-4 11x11 over a small image), where windows nearly fill the slabs
// already and batching only recovers the slab-tail waste.

/// AlexNet-conv1-scale: 3ch 56x56, 24 filters 11x11 stride 4 -> 12x12
/// windows (144 of 192 slab lanes filled solo; batches pack the tails).
FunctionalBenchCase conv1_scale_case() {
  nn::Network net("conv1-scale", nn::Shape3{3, 56, 56});
  net.add_conv("c1", 24, 11, 4, 0).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "conv1-scale";
  p.conv_act = {9};
  p.conv_weight = 11;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 3.0, .is_signed = false,
                        .zero_fraction = 0.45};
  nn::SyntheticSpec wsp{.precision = 11, .alpha = 2.0, .is_signed = true};
  FunctionalBenchCase c{std::move(net), {}, {}};
  c.input = nn::make_activation_tensor(c.net.layer(0).in, act, 1, 0);
  c.weights = nn::make_weight_tensor(c.net.layer(0).weight_count(), wsp, 2, 1);
  return c;
}

/// FC-heavy: a 256 -> 96 -> 48 -> 10 MLP tail (every layer leaves most of
/// the 64 output lanes empty when run one request at a time).
struct FcBenchCase {
  nn::Network net;
  std::vector<nn::Tensor> weights;
  std::vector<nn::Tensor> inputs;
};

FcBenchCase fc_heavy_case(int batch) {
  nn::Network net("fc-heavy", nn::Shape3{256, 1, 1});
  net.add_fc("h1", 96);
  net.add_fc("h2", 48);
  net.add_fc("logits", 10);
  quant::PrecisionProfile p;
  p.network = "fc-heavy";
  p.conv_weight = 8;
  p.fc_weight = {8, 8, 8};
  quant::apply_profile(net, p);
  FcBenchCase c{std::move(net), {}, {}};
  std::uint64_t stream = 0;
  for (const auto& l : c.net.layers()) {
    if (!l.has_weights()) continue;
    nn::SyntheticSpec wsp{.precision = l.weight_precision, .alpha = 2.0,
                          .is_signed = true};
    c.weights.push_back(
        nn::make_weight_tensor(l.weight_count(), wsp, 2, stream++));
  }
  nn::SyntheticSpec act{.precision = 16, .alpha = 3.0, .is_signed = true};
  for (int r = 0; r < batch; ++r) {
    c.inputs.push_back(
        nn::make_activation_tensor(c.net.layer(0).in, act, 3,
                                   static_cast<std::uint64_t>(r)));
  }
  return c;
}

constexpr int kServeConvBatch = 8;
constexpr int kServeFcBatch = 16;

void BM_ServeBatchedConv(benchmark::State& state) {
  const FunctionalBenchCase base = conv1_scale_case();
  std::vector<nn::Tensor> inputs;
  nn::SyntheticSpec act{.precision = 9, .alpha = 3.0, .is_signed = false,
                        .zero_fraction = 0.45};
  for (int r = 0; r < kServeConvBatch; ++r) {
    inputs.push_back(nn::make_activation_tensor(
        base.net.layer(0).in, act, 1, static_cast<std::uint64_t>(r)));
  }
  const std::vector<nn::Tensor> weights{base.weights};
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run_network_batch(base.net, inputs, weights));
  }
  state.SetItemsProcessed(state.iterations() * kServeConvBatch);
}
BENCHMARK(BM_ServeBatchedConv)->Unit(benchmark::kMillisecond);

void BM_ServeSequentialConv(benchmark::State& state) {
  const FunctionalBenchCase base = conv1_scale_case();
  std::vector<nn::Tensor> inputs;
  nn::SyntheticSpec act{.precision = 9, .alpha = 3.0, .is_signed = false,
                        .zero_fraction = 0.45};
  for (int r = 0; r < kServeConvBatch; ++r) {
    inputs.push_back(nn::make_activation_tensor(
        base.net.layer(0).in, act, 1, static_cast<std::uint64_t>(r)));
  }
  const std::vector<nn::Tensor> weights{base.weights};
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  for (auto _ : state) {
    for (const nn::Tensor& input : inputs) {
      benchmark::DoNotOptimize(engine.run_network(base.net, input, weights));
    }
  }
  state.SetItemsProcessed(state.iterations() * kServeConvBatch);
}
BENCHMARK(BM_ServeSequentialConv)->Unit(benchmark::kMillisecond);

void BM_ServeBatchedFc(benchmark::State& state) {
  const FcBenchCase c = fc_heavy_case(kServeFcBatch);
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_network_batch(c.net, c.inputs, c.weights));
  }
  state.SetItemsProcessed(state.iterations() * kServeFcBatch);
}
BENCHMARK(BM_ServeBatchedFc);

void BM_ServeSequentialFc(benchmark::State& state) {
  const FcBenchCase c = fc_heavy_case(kServeFcBatch);
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  for (auto _ : state) {
    for (const nn::Tensor& input : c.inputs) {
      benchmark::DoNotOptimize(engine.run_network(c.net, input, c.weights));
    }
  }
  state.SetItemsProcessed(state.iterations() * kServeFcBatch);
}
BENCHMARK(BM_ServeSequentialFc);

// ---- Serving saturation sweep ---------------------------------------------
// Open-loop arrivals against a live InferenceServer: requests arrive at a
// fixed offered rate whether or not the server keeps up (a closed loop
// would self-throttle and hide the overload regime entirely). Below the
// knee the achieved rate tracks the offered rate and nothing sheds; past
// it the admission controller sheds best-effort work at the watermark
// instead of letting the queue and p99 grow without bound. Counters per
// offered rate: achieved_rps, p99_ms (end-to-end, completed requests) and
// shed_rate — the throughput/latency knee in one sweep.
void BM_ServeSaturation(benchmark::State& state) {
  const auto offered_rps = static_cast<double>(state.range(0));
  constexpr int kRequests = 96;

  serve::ModelRegistry registry;
  {
    FcBenchCase c = fc_heavy_case(1);
    quant::PrecisionProfile p;
    p.network = "fc-heavy";
    p.conv_weight = 8;
    p.fc_weight = {8, 8, 8};
    registry.add("fc-heavy", std::move(c.net), p, std::move(c.weights));
  }
  const auto model = registry.find("fc-heavy");

  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.batch_deadline = std::chrono::microseconds(200);
  opts.queue_depth = 16;
  opts.workers = 1;
  opts.engine.jobs = 1;

  double completed = 0;
  double not_admitted = 0;
  double p99_ns = 0;
  for (auto _ : state) {
    serve::InferenceServer server(registry, opts);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kRequests);
    const auto gap = std::chrono::nanoseconds(
        static_cast<std::int64_t>(1e9 / offered_rps));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequests; ++i) {
      std::this_thread::sleep_until(start + i * gap);
      serve::SubmitOptions sopts;
      sopts.priority = serve::Priority::kBestEffort;
      try {
        futures.push_back(server.try_submit(
            model, model->make_input(/*seed=*/77, /*stream=*/i),
            std::chrono::microseconds(0), sopts));
      } catch (const OverloadError&) {
        ++not_admitted;  // open loop: shed and move on, never stall arrivals
      }
    }
    for (auto& f : futures) f.wait();
    server.stop();
    const serve::ServerStats stats = server.stats();
    completed += static_cast<double>(stats.completed);
    p99_ns = stats.latency_all().p99();
  }
  const auto iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["offered_rps"] = offered_rps;
  state.counters["achieved_rps"] = benchmark::Counter(
      completed, benchmark::Counter::kIsRate);
  state.counters["p99_ms"] = p99_ns * 1e-6;
  state.counters["shed_rate"] =
      (iters * kRequests - completed) / (iters * kRequests);
}
BENCHMARK(BM_ServeSaturation)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Memory-hierarchy timing core ----------------------------------------

/// VGG conv2_1 geometry (128ch 112x112 -> 128 filters 3x3): its packed
/// activations spill the 1 MB AM, so the tile scheduler has real work —
/// window-slab search, dataflow choice, per-slab packed fills.
mem::TilePlanRequest vgg_spill_request() {
  mem::TilePlanRequest req;
  req.windows = 112 * 112;
  req.out_w = 112;
  req.group_out_channels = 128;
  req.inner_length = 128 * 9;
  req.group_in_channels = 128;
  req.in_h = 112;
  req.in_w = 112;
  req.kernel_h = 3;
  req.stride = 1;
  req.pad = 1;
  req.window_quantum = 16;
  req.filter_quantum = 128;
  req.act_precision = 9;
  req.weight_precision = 12;
  req.weights_bit_packed = true;
  req.out_precision = 9;
  req.am_bits = (1 << 20) * 8;
  req.wm_bits = (2 << 20) * 8;
  return req;
}

void BM_TilePlanBuild(benchmark::State& state) {
  const mem::TilePlanRequest req = vgg_spill_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::build_tile_plan(req));
  }
  state.SetItemsProcessed(state.iterations() * req.windows);
}
BENCHMARK(BM_TilePlanBuild);

void BM_MemoryBoundVggConv(benchmark::State& state) {
  // The full constrained-mode layer simulation (tile plan + per-tile
  // compute callbacks + the double-buffered timeline) on the AM-spilling
  // VGG conv — the steady-state cost the default roster sweeps pay per
  // layer on top of the pure compute model.
  nn::Network net("bench-mem", nn::Shape3{128, 112, 112});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench-mem";
  p.conv_act = {9};
  p.conv_weight = 12;
  quant::apply_profile(net, p);
  sim::NetworkWorkload wl(std::move(net), p);

  sim::SimOptions opts;
  opts.model_offchip = true;
  sim::LoomSimulator sim(arch::LoomConfig{}, opts);
  // Warm the workload's OR planes/precision table once so the loop times
  // the engine, not the one-time calibration.
  benchmark::DoNotOptimize(sim.run(wl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(wl));
  }
  state.SetItemsProcessed(state.iterations() *
                          (112 * 112 / 16));  // window blocks per run
}
BENCHMARK(BM_MemoryBoundVggConv)->Unit(benchmark::kMillisecond);

void BM_BitsliceTranspose(benchmark::State& state) {
  // The 64x64 bit transpose that converts sliced accumulators back to
  // per-column integers (two per filter row per slab).
  std::uint64_t a[64];
  for (int i = 0; i < 64; ++i) {
    a[i] = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
  }
  for (auto _ : state) {
    sim::transpose64(a);
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BitsliceTranspose);

// ---- Sharded serving ------------------------------------------------------

std::shared_ptr<serve::ModelRegistry> router_bench_registry() {
  auto registry = std::make_shared<serve::ModelRegistry>();
  FcBenchCase c = fc_heavy_case(1);
  quant::PrecisionProfile p;
  p.network = "fc-heavy";
  p.conv_weight = 8;
  p.fc_weight = {8, 8, 8};
  registry->add("fc-heavy", std::move(c.net), p, std::move(c.weights));
  return registry;
}

// Closed-loop throughput through a 2-shard router while the busiest shard
// is killed twice per iteration: the cost of failover + circuit-breaker
// recovery, not just the happy path. recovery_ms is the router-measured
// kill -> healthy re-entry time.
void BM_RouterFailover(benchmark::State& state) {
  const auto registry = router_bench_registry();
  const auto model = registry->find("fc-heavy");
  constexpr int kRequests = 64;

  serve::RouterOptions opts;
  opts.shards = 2;
  opts.shard.max_batch = 8;
  opts.shard.batch_deadline = std::chrono::microseconds(200);
  opts.shard.queue_depth = 32;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  opts.probation_backoff = std::chrono::milliseconds(1);

  double completed = 0;
  double recovery_ms = 0;
  double recoveries = 0;
  for (auto _ : state) {
    serve::ShardRouter router(registry, opts);
    const std::vector<int> rank = router.rank_shards("fc-heavy", "default");
    for (int i = 0; i < kRequests; ++i) {
      if (i == kRequests / 4 || i == (3 * kRequests) / 4) {
        router.kill_shard(rank[0]);  // traffic restarts it via probation
      }
      benchmark::DoNotOptimize(
          router.submit("fc-heavy", model->make_input(/*seed=*/77, i)));
    }
    router.stop();
    const serve::RouterStats stats = router.stats();
    completed += static_cast<double>(stats.completed);
    recovery_ms = stats.recovery_ms.mean();
    recoveries += static_cast<double>(stats.recovery_ms.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["achieved_rps"] =
      benchmark::Counter(completed, benchmark::Counter::kIsRate);
  state.counters["recovery_ms"] = recovery_ms;
  state.counters["recoveries"] =
      recoveries / static_cast<double>(state.iterations());
}
BENCHMARK(BM_RouterFailover)->Unit(benchmark::kMillisecond);

// Restoring a model from a checksummed binary snapshot vs rebuilding it
// from scratch (synthesize weights + calibrate): the crash-recovery and
// cold-start win the snapshot format buys.
void BM_SnapshotLoad(benchmark::State& state) {
  const std::string path = "/tmp/loom_bench_snapshot.bin";
  double rebuild_ns = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    serve::ModelRegistry registry;
    FcBenchCase c = fc_heavy_case(1);
    quant::PrecisionProfile p;
    p.network = "fc-heavy";
    p.conv_weight = 8;
    p.fc_weight = {8, 8, 8};
    registry.add("fc-heavy", std::move(c.net), p, std::move(c.weights));
    rebuild_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    serve::save_snapshot(*registry.find("fc-heavy"), path);
  }

  double load_ns = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(serve::load_snapshot(path));
    load_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::remove(path.c_str());
  const double mean_load =
      load_ns / static_cast<double>(state.iterations());
  state.counters["rebuild_ms"] = rebuild_ns * 1e-6;
  state.counters["load_ms"] = mean_load * 1e-6;
  state.counters["speedup_vs_rebuild"] =
      mean_load > 0 ? rebuild_ns / mean_load : 0.0;
}
BENCHMARK(BM_SnapshotLoad);

}  // namespace

BENCHMARK_MAIN();
