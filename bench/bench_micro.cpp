// Microbenchmarks (google-benchmark): throughput of the hot components —
// the functional SIP, the grid tile, precision detection, serialization and
// the cycle-accurate layer models themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/loom.hpp"

using namespace loom;

namespace {

std::vector<Value> values(int n, int bits, bool is_signed, std::uint64_t seed) {
  nn::SyntheticSpec spec{.precision = bits, .alpha = 1.5, .is_signed = is_signed};
  const nn::SyntheticSource src(seed, 0, spec);
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = src.at(static_cast<std::uint64_t>(i));
  return out;
}

void BM_SipInnerProduct(benchmark::State& state) {
  const int pa = static_cast<int>(state.range(0));
  const int pw = static_cast<int>(state.range(1));
  arch::Sip sip(arch::SipConfig{});
  const auto a = values(16, pa, false, 1);
  const auto w = values(16, pw, true, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::sip_inner_product(sip, a, w, pa, pw));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SipInnerProduct)->Args({8, 11})->Args({16, 16})->Args({4, 4});

void BM_TileConvBlock(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  arch::SipTile tile(arch::TileConfig{.rows = rows, .cols = 16, .lanes = 16});
  std::vector<std::vector<Value>> acts(16), weights(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < acts.size(); ++i) acts[i] = values(64, 8, false, i);
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = values(64, 8, true, 100 + i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile.conv_block(acts, weights, 8, 8));
  }
  state.SetItemsProcessed(state.iterations() * rows * 16 * 64);
}
BENCHMARK(BM_TileConvBlock)->Arg(4)->Arg(16);

void BM_PrecisionDetect(benchmark::State& state) {
  arch::DynamicPrecisionUnit unit;
  const auto group = values(256, 9, false, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.detect(group));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PrecisionDetect);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const auto vals = values(2048, 11, true, 9);
  for (auto _ : state) {
    const auto planes = arch::serialize(vals, 11);
    benchmark::DoNotOptimize(arch::deserialize(planes, true));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_LoomLayerSimulation(benchmark::State& state) {
  // One mid-size conv layer through the full cycle model (static mode so
  // the measurement excludes one-time calibration).
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  quant::apply_profile(net, p);
  sim::NetworkWorkload wl(std::move(net), p);
  arch::LoomConfig cfg;
  cfg.dynamic_act_precision = false;
  auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->run(wl));
  }
}
BENCHMARK(BM_LoomLayerSimulation);

void BM_WorkloadGroupPrecision(benchmark::State& state) {
  nn::Network net("bench", nn::Shape3{64, 28, 28});
  net.add_conv("c", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "bench";
  p.conv_act = {9};
  p.conv_weight = 11;
  p.dynamic_act_trim = 1.5;
  quant::apply_profile(net, p);
  const std::int64_t wb_count = ceil_div(net.layer(0).windows(), 16);
  sim::NetworkWorkload wl(std::move(net), p);
  sim::LayerWorkload& lw = wl.layer(0);
  (void)lw.act_group_precision(0, 0, 0, 16);  // pay calibration once
  std::int64_t wb = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw.act_group_precision(0, wb, 0, 16));
    wb = (wb + 1) % wb_count;
  }
}
BENCHMARK(BM_WorkloadGroupPrecision);

}  // namespace

BENCHMARK_MAIN();
