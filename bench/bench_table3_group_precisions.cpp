// Table 3 reproduction: average effective per-layer weight precision for
// groups of 16 weights (Lascorz et al. [10]). The calibrated weight streams
// are *measured* here — the reported numbers come from streaming the actual
// synthetic weights through the group detector, and should land on the
// published targets.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  TextTable t("Table 3 reproduction: effective per-layer weight precisions "
              "(group of 16)");
  t.set_header({"Network", "Layer", "Profile Pw", "Paper eff.", "Measured eff.",
                "Delta"});
  double worst = 0.0;
  for (const std::string& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    const auto& table3 = quant::effective_weight_precisions(name);
    const auto convs = wl->network().conv_indices();
    for (std::size_t i = 0; i < convs.size(); ++i) {
      const nn::Layer& layer = wl->network().layer(convs[i]);
      const double target = table3[static_cast<std::size_t>(layer.precision_group)];
      const double measured = wl->layer(convs[i]).effective_weight_precision();
      const double delta = measured - target;
      worst = std::max(worst, std::abs(delta));
      t.add_row({name, layer.name, std::to_string(layer.weight_precision),
                 TextTable::num(target), TextTable::num(measured),
                 TextTable::num(delta)});
    }
    t.add_rule();
  }
  std::cout << t.render();
  std::cout << "\nWorst |measured - paper| over all layers: "
            << TextTable::num(worst) << " bits "
            << (worst < 0.3 ? "(PASS: < 0.3)" : "(FAIL)") << '\n';
  return worst < 0.3 ? 0 : 1;
}
