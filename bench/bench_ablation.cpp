// Ablation study of Loom's design choices (our addition; DESIGN.md §3):
//   1. SIP cascading on/off — the few-outputs FCL mechanism.
//   2. Dynamic per-group activation precision on/off.
//   3. §4.6 weight timing: the paper's linear-scaling estimate vs honest
//      max-of-group timing (all rows load weight groups in lock step).
//   4. Activation bits per cycle (1/2/4) at fixed everything else.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

namespace {

double all_layers_speedup(sim::NetworkWorkload& wl, const arch::LoomConfig& cfg,
                          const sim::RunResult& baseline) {
  auto sim = sim::make_loom_simulator(cfg, sim::SimOptions{});
  return sim::speedup_vs(sim->run(wl), baseline, sim::RunResult::Filter::kAll);
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks =
      cli.get_list("networks", {"alexnet", "googlenet", "vgg19"});

  TextTable t("Loom design ablations (all-layers speedup vs DPNN, 100% "
              "profiles, E=128)");
  t.set_header({"Network", "LM1b", "no cascading", "no dynamic Pa",
                "group-Pw est.", "group-Pw honest", "LM2b", "LM4b"});

  for (const auto& name : networks) {
    auto wl = sim::prepare_network(name, quant::AccuracyTarget::k100);
    auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{}, sim::SimOptions{});
    const auto base = dpnn->run(*wl);

    arch::LoomConfig def;
    arch::LoomConfig no_cascade = def;
    no_cascade.cascading = false;
    arch::LoomConfig no_dyn = def;
    no_dyn.dynamic_act_precision = false;
    arch::LoomConfig grp = def;
    grp.per_group_weights = true;
    arch::LoomConfig grp_honest = grp;
    grp_honest.honest_group_weight_timing = true;
    arch::LoomConfig lm2 = def;
    lm2.bits_per_cycle = 2;
    arch::LoomConfig lm4 = def;
    lm4.bits_per_cycle = 4;

    t.add_row({name, TextTable::num(all_layers_speedup(*wl, def, base)),
               TextTable::num(all_layers_speedup(*wl, no_cascade, base)),
               TextTable::num(all_layers_speedup(*wl, no_dyn, base)),
               TextTable::num(all_layers_speedup(*wl, grp, base)),
               TextTable::num(all_layers_speedup(*wl, grp_honest, base)),
               TextTable::num(all_layers_speedup(*wl, lm2, base)),
               TextTable::num(all_layers_speedup(*wl, lm4, base))});
  }
  std::cout << t.render() << '\n';
  std::cout
      << "\nReadings:\n"
         "  - Cascading matters for networks with ~1K-output classifiers\n"
         "    (GoogLeNet) and is neutral elsewhere.\n"
         "  - Dynamic precision supplies the gap between the static-profile\n"
         "    ideal 256/(Pa*Pw) and the reported speedups.\n"
         "  - The honest max-of-group weight timing gives back most of the\n"
         "    Table 4 estimate's gain: per-group weight precisions need\n"
         "    per-group metadata and independent column control to be real,\n"
         "    which is exactly why the paper reports them as an estimate.\n";
  return 0;
}
