// Figure 5 reproduction: scaling vs equivalent DPNN peak compute bandwidth
// (32..512 16b x 16b MACs/cycle) with a practical memory hierarchy and a
// single channel of LPDDR4-4267. Reports, per configuration: relative
// performance of Loom-1b and DStripes over DPNN for convolutional layers
// and for all layers, absolute frames/second, the weight-memory capacity,
// and Loom's relative area and energy efficiency.
//
// Paper shape: Loom outperforms DPNN everywhere; its advantage shrinks as E
// grows (filter-lane underutilization); DStripes' relative performance is
// flat; Loom and DStripes cross near E=256; fps reaches real-time even at
// E=32 (paper: Loom-all 53..278 fps over 32..512).
#include <iostream>
#include <map>
#include <memory>

#include "core/loom.hpp"

using namespace loom;

namespace {

struct ScalePoint {
  int equiv;
  double loom_conv = 0, loom_all = 0, dstripes_conv = 0, dstripes_all = 0;
  double loom_fps = 0, dstripes_fps = 0, dpnn_fps = 0;
  double area_ratio = 0, eff_all = 0;
  std::int64_t wm_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());
  std::vector<int> scales;
  for (const auto& s : cli.get_list("scales", {"32", "64", "128", "256", "512"})) {
    scales.push_back(std::stoi(s));
  }

  // Workloads are shared across scales; all architectures here group
  // activations over 16 windows, so the precision caches are shared too.
  std::map<std::string, std::unique_ptr<sim::NetworkWorkload>> workloads;
  for (const auto& name : networks) {
    workloads[name] = sim::prepare_network(name, quant::AccuracyTarget::k100);
  }

  sim::SimOptions offchip;
  offchip.model_offchip = true;

  std::vector<ScalePoint> points;
  for (const int e : scales) {
    ScalePoint pt;
    pt.equiv = e;
    pt.wm_bytes = mem::default_memory_config(e, true).wm_bytes;

    arch::DpnnConfig dcfg;
    dcfg.equiv_macs = e;
    arch::LoomConfig lcfg;
    lcfg.equiv_macs = e;
    arch::StripesConfig scfg;
    scfg.equiv_macs = e;
    scfg.dynamic_act_precision = true;

    auto dpnn = sim::make_dpnn_simulator(dcfg, offchip);
    auto lm = sim::make_loom_simulator(lcfg, offchip);
    auto ds = sim::make_stripes_simulator(scfg, offchip);

    std::vector<double> lconv, lall, dconv, dall, eff;
    double lfps = 0, dfps = 0, bfps = 0;
    for (const auto& name : networks) {
      sim::NetworkWorkload& wl = *workloads[name];
      const auto rb = dpnn->run(wl);
      const auto rl = lm->run(wl);
      const auto rd = ds->run(wl);
      using F = sim::RunResult::Filter;
      lconv.push_back(sim::speedup_vs(rl, rb, F::kConv));
      lall.push_back(sim::speedup_vs(rl, rb, F::kAll));
      dconv.push_back(sim::speedup_vs(rd, rb, F::kConv));
      dall.push_back(sim::speedup_vs(rd, rb, F::kAll));
      eff.push_back(sim::efficiency_vs(rl, rb, F::kAll));
      lfps += rl.fps();
      dfps += rd.fps();
      bfps += rb.fps();
    }
    const auto n = static_cast<double>(networks.size());
    pt.loom_conv = geomean(lconv);
    pt.loom_all = geomean(lall);
    pt.dstripes_conv = geomean(dconv);
    pt.dstripes_all = geomean(dall);
    pt.eff_all = geomean(eff);
    pt.loom_fps = lfps / n;
    pt.dstripes_fps = dfps / n;
    pt.dpnn_fps = bfps / n;

    const auto mem_lm = mem::default_memory_config(e, true);
    const auto mem_dp = mem::default_memory_config(e, false);
    pt.area_ratio = energy::loom_area(lcfg, mem_lm).total_mm2() /
                    energy::dpnn_area(dcfg, mem_dp).total_mm2();
    points.push_back(pt);
  }

  TextTable t("Figure 5 reproduction: scaling vs equivalent peak compute "
              "(LPDDR4-4267, geomean over networks; fps arithmetic mean)");
  t.set_header({"E", "WM", "Loom conv", "DStripes conv", "Loom all",
                "DStripes all", "Loom fps", "DStr fps", "DPNN fps",
                "Loom area ratio", "Loom energy eff"});
  for (const auto& pt : points) {
    t.add_row({std::to_string(pt.equiv),
               std::to_string(pt.wm_bytes / 1024) + "KB",
               TextTable::num(pt.loom_conv), TextTable::num(pt.dstripes_conv),
               TextTable::num(pt.loom_all), TextTable::num(pt.dstripes_all),
               TextTable::num(pt.loom_fps, 0), TextTable::num(pt.dstripes_fps, 0),
               TextTable::num(pt.dpnn_fps, 0), TextTable::num(pt.area_ratio),
               TextTable::num(pt.eff_all)});
  }
  std::cout << t.render() << '\n';

  // Shape checks from the figure.
  bool loom_always_wins = true;
  bool loom_advantage_shrinks =
      points.front().loom_all >= points.back().loom_all;
  double dstripes_spread = 0.0;
  for (const auto& pt : points) {
    loom_always_wins = loom_always_wins && pt.loom_all > 1.0;
    dstripes_spread = std::max(
        dstripes_spread, std::abs(pt.dstripes_all - points.front().dstripes_all));
  }
  const bool crossover = points.back().loom_conv <= points.back().dstripes_conv ||
                         points.back().loom_all <= points.back().dstripes_all ||
                         points.size() < 3;
  std::cout << "\nShape checks:\n"
            << "  Loom outperforms DPNN at every scale: "
            << (loom_always_wins ? "yes" : "NO") << '\n'
            << "  Loom's relative advantage shrinks with scale: "
            << (loom_advantage_shrinks ? "yes" : "NO") << '\n'
            << "  DStripes' relative performance is ~flat (max spread "
            << TextTable::num(dstripes_spread) << "): "
            << (dstripes_spread < 0.4 ? "yes" : "NO") << '\n'
            << "  Loom/DStripes crossover by the largest configuration: "
            << (crossover ? "yes" : "no (Loom still ahead)") << '\n'
            << "\nPaper fps annotations: DStripes-all 47/92/169/205/240, "
               "Loom-all 53/102/190/234/278 at E=32..512.\n";
  return 0;
}
