// Table 4 reproduction: all-layers speedup and energy efficiency of the
// Loom variants vs DPNN when exploiting per-group (16-weight) effective
// weight precisions (§4.6). Like the paper, timing assumes performance
// scales linearly with the measured mean effective weight precision; see
// bench_ablation for the honest max-of-group timing variant.
//
// Paper geomeans: LM1b 4.38/3.54, LM2b 4.20/3.95, LM4b 3.76/3.94.
#include <iostream>

#include "core/loom.hpp"

using namespace loom;

int main(int argc, char** argv) {
  const core::Options cli(argc, argv);
  const auto networks = cli.get_list("networks", nn::zoo::paper_networks());

  core::RunnerOptions opts;
  opts.per_group_weights = true;
  opts.include_stripes = false;
  opts.jobs = static_cast<int>(cli.get_int("jobs", 0));  // 0 = all hw threads
  opts.model_offchip = false;  // Table 4 is the §4.3 unconstrained setup
  core::ExperimentRunner runner(opts);
  const sim::Comparison cmp = runner.compare(networks);
  std::cout << core::format_all_layers(
                   cmp, runner.roster_names(),
                   "Table 4 reproduction: per-group weight precisions "
                   "(linear-scaling estimate, as the paper)")
            << "\n";
  std::cout << "\nPaper geomeans: LM1b 4.38 perf / 3.54 eff, LM2b 4.20/3.95, "
               "LM4b 3.76/3.94.\n";
  std::cout << "The abstract's headline (4.38x / 3.54x over DPNN) is this "
               "experiment's LM1b row.\n";
  return 0;
}
