// Golden cross-check for the runner's `jobs` fan-out: a parallel comparison
// must be bit-identical to the serial one — same entry ordering, same
// speedups/efficiencies (exact double equality), same per-layer cycles.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/runner.hpp"

namespace loom::core {
namespace {

RunnerOptions small_opts(int jobs) {
  RunnerOptions opts;
  opts.equiv_macs = 32;  // small scale keeps the two-network sweep fast
  opts.jobs = jobs;
  return opts;
}

void expect_identical(const sim::Comparison& a, const sim::Comparison& b) {
  for (const sim::RunResult::Filter f :
       {sim::RunResult::Filter::kAll, sim::RunResult::Filter::kConv,
        sim::RunResult::Filter::kFc}) {
    const auto& ea = a.entries(f);
    const auto& eb = b.entries(f);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].network, eb[i].network) << "entry " << i;
      EXPECT_EQ(ea[i].arch, eb[i].arch) << "entry " << i;
      EXPECT_EQ(ea[i].perf, eb[i].perf) << "entry " << i;  // exact, not NEAR
      EXPECT_EQ(ea[i].eff, eb[i].eff) << "entry " << i;
      EXPECT_EQ(ea[i].result.cycles(f), eb[i].result.cycles(f)) << "entry " << i;
      EXPECT_EQ(ea[i].result.energy_pj(f), eb[i].result.energy_pj(f))
          << "entry " << i;
      ASSERT_EQ(ea[i].result.layers.size(), eb[i].result.layers.size());
      for (std::size_t l = 0; l < ea[i].result.layers.size(); ++l) {
        EXPECT_EQ(ea[i].result.layers[l].compute_cycles,
                  eb[i].result.layers[l].compute_cycles)
            << "entry " << i << " layer " << l;
      }
    }
  }

  const auto& ba = a.baseline_runs();
  const auto& bb = b.baseline_runs();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].arch_name, bb[i].arch_name);
    EXPECT_EQ(ba[i].cycles(), bb[i].cycles());
    EXPECT_EQ(ba[i].energy_pj(), bb[i].energy_pj());
  }
}

TEST(RunnerParallel, MatchesSerialOnTwoNetworks) {
  const std::vector<std::string> nets = {"alexnet", "nin"};

  ExperimentRunner serial(small_opts(1));
  const sim::Comparison golden = serial.compare(nets);

  ExperimentRunner parallel(small_opts(4));
  const sim::Comparison fanned = parallel.compare(nets);

  expect_identical(golden, fanned);
}

TEST(RunnerParallel, HardwareConcurrencyMatchesSerial) {
  const std::vector<std::string> nets = {"alexnet", "nin"};

  ExperimentRunner serial(small_opts(1));
  const sim::Comparison golden = serial.compare(nets);

  // jobs <= 0 resolves to hardware_concurrency() (acceptance-criterion mode).
  ExperimentRunner parallel(small_opts(0));
  const sim::Comparison fanned = parallel.compare(nets);

  expect_identical(golden, fanned);
}

TEST(RunnerParallel, RepeatedParallelRunsAreStable) {
  // Two parallel comparisons from *the same runner* reuse the cached
  // workloads; results must not drift between the cold and warm pass.
  ExperimentRunner runner(small_opts(4));
  const sim::Comparison first = runner.compare({"nin"});
  const sim::Comparison second = runner.compare({"nin"});
  expect_identical(first, second);
}

TEST(RunnerParallel, DstripesRosterRoundTrips) {
  // The wider roster (DStripes included) also survives the fan-out.
  RunnerOptions serial_opts = small_opts(1);
  serial_opts.include_dstripes = true;
  RunnerOptions parallel_opts = small_opts(3);
  parallel_opts.include_dstripes = true;

  ExperimentRunner serial(serial_opts);
  ExperimentRunner parallel(parallel_opts);
  expect_identical(serial.compare({"nin"}), parallel.compare({"nin"}));
}

}  // namespace
}  // namespace loom::core
