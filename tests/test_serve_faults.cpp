// Overload + fault-injection stress for the inference server: more producer
// threads than workers, every degradation path armed (injected engine
// failures at 20%, occasional fallback failures, batcher stalls, phantom
// queue-pressure spikes), randomized priorities, deadlines and submission
// modes. Invariants, per seed:
//   - no deadlock and no lost future: every admitted request's future
//     becomes ready, every admission rejection throws OverloadError;
//   - every request that succeeds returns output byte-identical to a solo
//     run_network pass (degradation may change *how* a batch ran — bit
//     sliced, retried, scalar fallback — never *what* it computed);
//   - ServerStats exactly account for every request:
//     submitted == completed + shed + timed_out + failed, per class and in
//     aggregate, and the per-class latency histograms hold exactly the
//     completed requests;
//   - zero worker-thread crashes (drain-then-join shutdown completes).
//
// Replay one failing iteration with LOOM_SERVE_FAULT_SEED=<seed> (the
// LOOM_BATCH_PROP_SEED convention).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/server.hpp"
#include "sim/functional.hpp"

namespace loom::serve {
namespace {

constexpr std::uint64_t kInputSeed = 77;
constexpr int kProducers = 4;
constexpr int kPerProducer = 16;
constexpr int kWorkers = 2;

void populate(ModelRegistry& registry) {
  {
    nn::Network net("convnet", nn::Shape3{6, 12, 12});
    net.add_conv("c1", 12, 3, 1, 1).precision_group = 0;
    net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
    net.add_fc("logits", 9);
    quant::PrecisionProfile p;
    p.network = "convnet";
    p.conv_act = {7};
    p.conv_weight = 9;
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    registry.add_synthetic("convnet", std::move(net), p, /*seed=*/31);
  }
  {
    nn::Network net("mlp", nn::Shape3{96, 1, 1});
    net.add_fc("h1", 40);
    net.add_fc("logits", 12);
    quant::PrecisionProfile p;
    p.network = "mlp";
    p.conv_weight = 11;
    p.fc_weight = {10, 9};
    quant::apply_profile(net, p);
    registry.add_synthetic("mlp", std::move(net), p, /*seed=*/32);
  }
}

/// Solo ground truth: the byte-identity reference for every server output.
std::map<std::pair<std::string, int>, nn::Tensor> solo_outputs(
    const ModelRegistry& registry, int streams) {
  std::map<std::pair<std::string, int>, nn::Tensor> out;
  for (const std::string& name : registry.names()) {
    const auto model = registry.find(name);
    sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
    for (int s = 0; s < streams; ++s) {
      out.emplace(std::make_pair(name, s),
                  engine
                      .run_network(model->net,
                                   model->make_input(kInputSeed, s),
                                   model->weights)
                      .output);
    }
  }
  return out;
}

std::vector<std::uint64_t> iteration_seeds(std::uint64_t base, int count) {
  if (const char* env = std::getenv("LOOM_SERVE_FAULT_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

struct Tagged {
  std::string model;
  int stream = 0;
  std::future<InferenceResult> future;
};

struct Observed {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;       // evicted after admission (OverloadError)
  std::uint64_t timed_out = 0;  // DeadlineExceededError
  std::uint64_t failed = 0;     // TransientEngineError and anything else
  std::uint64_t fallback_results = 0;
};

TEST(ServeFaultStress, OverloadWithInjectedFaultsKeepsEveryInvariant) {
  ModelRegistry registry;
  populate(registry);
  const auto expected = solo_outputs(registry, kPerProducer);

  for (const std::uint64_t seed : iteration_seeds(0xFA017, 3)) {
    SCOPED_TRACE("LOOM_SERVE_FAULT_SEED=" + std::to_string(seed));

    ServeOptions opts;
    opts.max_batch = 4;
    opts.batch_deadline = std::chrono::microseconds(200);
    opts.queue_depth = 8;
    opts.shed_watermark = 0.5;
    opts.workers = kWorkers;
    opts.engine_retries = 1;
    opts.retry_backoff = std::chrono::microseconds(50);
    opts.engine.jobs = 1;
    opts.faults.seed = seed;
    opts.faults.engine_failure_prob = 0.20;
    opts.faults.fallback_failure_prob = 0.05;
    opts.faults.batcher_delay_prob = 0.10;
    opts.faults.batcher_delay = std::chrono::microseconds(500);
    opts.faults.queue_spike_prob = 0.10;
    opts.faults.queue_spike_depth = 8;

    std::vector<Tagged> admitted;
    std::mutex admitted_mutex;
    std::uint64_t rejected_observed = 0;
    ServerStats stats;
    std::uint64_t injected_engine_failures = 0;

    {
      InferenceServer server(registry, opts);
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p, seed] {
          SequentialRng rng(seed, static_cast<std::uint64_t>(p) + 100);
          for (int i = 0; i < kPerProducer; ++i) {
            const std::string name =
                rng.next_below(2) == 0 ? "convnet" : "mlp";
            const auto model = registry.find(name);
            SubmitOptions sopts;
            sopts.priority = static_cast<Priority>(rng.next_below(3));
            switch (rng.next_below(3)) {
              case 0: break;  // no deadline
              case 1: sopts.deadline = std::chrono::milliseconds(500); break;
              case 2: sopts.deadline = std::chrono::microseconds(200); break;
            }
            const bool bounded = rng.next_below(2) == 0;
            try {
              auto fut =
                  bounded
                      ? server.try_submit(model,
                                          model->make_input(kInputSeed, i),
                                          std::chrono::milliseconds(2), sopts)
                      : server.submit(model, model->make_input(kInputSeed, i),
                                      sopts);
              const std::lock_guard<std::mutex> lock(admitted_mutex);
              admitted.push_back(Tagged{name, i, std::move(fut)});
            } catch (const OverloadError&) {
              const std::lock_guard<std::mutex> lock(admitted_mutex);
              ++rejected_observed;
            }
            // ShutdownError / ConfigError would escape and fail the test:
            // neither may occur while the server is live.
          }
        });
      }
      for (auto& t : producers) t.join();

      // No lost future, no deadlock: every admitted request resolves.
      for (Tagged& t : admitted) {
        ASSERT_EQ(t.future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "lost future for " << t.model << " stream " << t.stream;
      }
      server.stop();  // drain-then-join completes: no crashed worker
      stats = server.stats();
      injected_engine_failures =
          server.fault_injector().engine_failures_injected();
    }

    Observed obs;
    for (Tagged& t : admitted) {
      try {
        InferenceResult res = t.future.get();
        // Byte identity survives every degradation path.
        EXPECT_EQ(res.output, expected.at({t.model, t.stream}))
            << t.model << " stream " << t.stream
            << (res.via_fallback ? " (scalar fallback)" : "");
        ++obs.completed;
        if (res.via_fallback) ++obs.fallback_results;
      } catch (const DeadlineExceededError&) {
        ++obs.timed_out;
      } catch (const OverloadError&) {
        ++obs.shed;
      } catch (const Error&) {
        ++obs.failed;
      }
    }

    // ---- Exact accounting --------------------------------------------------
    EXPECT_EQ(stats.submitted, admitted.size());
    EXPECT_EQ(stats.rejected, rejected_observed);
    EXPECT_EQ(stats.submitted + stats.rejected,
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
    EXPECT_EQ(stats.completed, obs.completed);
    EXPECT_EQ(stats.shed, obs.shed);
    EXPECT_EQ(stats.timed_out, obs.timed_out);
    EXPECT_EQ(stats.failed, obs.failed);
    EXPECT_EQ(stats.submitted,
              stats.completed + stats.shed + stats.timed_out + stats.failed);

    std::uint64_t class_submitted = 0;
    for (int c = 0; c < kPriorityClasses; ++c) {
      const ClassStats& cs = stats.by_class[static_cast<std::size_t>(c)];
      EXPECT_EQ(cs.submitted,
                cs.completed + cs.shed + cs.timed_out + cs.failed)
          << "class " << priority_name(static_cast<Priority>(c));
      // The latency histograms hold exactly the completed requests.
      EXPECT_EQ(cs.latency_ns.count(), cs.completed);
      EXPECT_EQ(cs.queue_wait_ns.count(), cs.completed);
      EXPECT_EQ(cs.run_time_ns.count(), cs.completed);
      class_submitted += cs.submitted;
    }
    EXPECT_EQ(class_submitted, stats.submitted);

    // The run exercised the machinery it claims to: work completed, and at
    // 20% injected engine failure over this many batches some must fire.
    EXPECT_GT(stats.completed, 0u);
    EXPECT_GT(injected_engine_failures, 0u);
    EXPECT_LE(stats.peak_queue_depth, opts.queue_depth);
  }
}

// ---- LUT-backend degradation ----------------------------------------------
// The primary engine pinned to the LUT kernel, injected failures landing
// straight on the scalar-oracle fallback (no retries): every completed
// request must be byte-identical to a solo run regardless of which engine
// served it, and ServerStats::backend_layer_runs must show *both* kernels
// doing real work — the observable trace that degradation crossed backends,
// not just engines.

TEST(ServeFaultStress, LutPrimaryDegradesToScalarByteIdentically) {
  ModelRegistry registry;
  populate(registry);
  const auto expected = solo_outputs(registry, kPerProducer);

  ServeOptions opts;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::microseconds(200);
  opts.queue_depth = 256;  // no shedding: this test is about degradation
  opts.workers = kWorkers;
  opts.engine_retries = 0;  // every injected failure lands on the fallback
  opts.engine.jobs = 1;
  opts.engine.backend = "lut";
  opts.faults.seed = 0xB10F;
  opts.faults.engine_failure_prob = 0.35;
  opts.faults.fallback_failure_prob = 0.0;

  std::vector<Tagged> admitted;
  ServerStats stats;
  {
    InferenceServer server(registry, opts);
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::string& name : registry.names()) {
        const auto model = registry.find(name);
        for (int s = 0; s < kPerProducer; ++s) {
          admitted.push_back(Tagged{
              name, s,
              server.submit(model, model->make_input(kInputSeed, s), {})});
        }
      }
    }
    for (Tagged& t : admitted) {
      ASSERT_EQ(t.future.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "lost future for " << t.model << " stream " << t.stream;
    }
    server.stop();
    stats = server.stats();
  }

  std::uint64_t fallback_results = 0;
  for (Tagged& t : admitted) {
    InferenceResult res = t.future.get();  // no deadline, no fallback faults:
                                           // nothing may throw
    EXPECT_EQ(res.output, expected.at({t.model, t.stream}))
        << t.model << " stream " << t.stream
        << (res.via_fallback ? " (scalar fallback)" : " (lut)");
    if (res.via_fallback) ++fallback_results;
  }

  EXPECT_EQ(stats.completed, admitted.size());
  EXPECT_GT(stats.fallbacks, 0u);
  EXPECT_GT(fallback_results, 0u);

  // Both kernels served weighted layers, and nothing else did: the primary
  // resolves to "lut", the fallback engine is the scalar oracle.
  ASSERT_TRUE(stats.backend_layer_runs.contains("lut"));
  ASSERT_TRUE(stats.backend_layer_runs.contains("scalar"));
  EXPECT_GT(stats.backend_layer_runs.at("lut"), 0u);
  EXPECT_GT(stats.backend_layer_runs.at("scalar"), 0u);
  EXPECT_EQ(stats.backend_layer_runs.size(), 2u);
}

// ---- Fault injector determinism -------------------------------------------
// The k-th decision at a site is a pure function of (seed, site, k): two
// injectors with the same plan agree draw for draw, which is what makes
// LOOM_SERVE_FAULT_SEED replays faithful.

TEST(FaultInjector, DecisionStreamsAreSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 0xF00D;
  plan.engine_failure_prob = 0.3;
  plan.fallback_failure_prob = 0.1;
  plan.batcher_delay_prob = 0.5;
  plan.queue_spike_prob = 0.2;
  plan.queue_spike_depth = 7;

  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.should_fail_engine(), b.should_fail_engine());
    EXPECT_EQ(a.should_fail_fallback(), b.should_fail_fallback());
    EXPECT_EQ(a.should_delay_batcher(), b.should_delay_batcher());
    EXPECT_EQ(a.queue_spike(), b.queue_spike());
  }
  EXPECT_EQ(a.engine_failures_injected(), b.engine_failures_injected());
  EXPECT_EQ(a.fallback_failures_injected(), b.fallback_failures_injected());
  EXPECT_EQ(a.batcher_delays_injected(), b.batcher_delays_injected());
  EXPECT_EQ(a.queue_spikes_injected(), b.queue_spikes_injected());

  // Rates land near their probabilities (loose 3-sigma-ish bounds), and a
  // fired spike always reports the configured depth.
  EXPECT_NEAR(static_cast<double>(a.engine_failures_injected()) / 2000.0, 0.3,
              0.05);
  EXPECT_NEAR(static_cast<double>(a.batcher_delays_injected()) / 2000.0, 0.5,
              0.05);
  FaultInjector c(plan);
  for (int i = 0; i < 100; ++i) {
    const std::size_t spike = c.queue_spike();
    EXPECT_TRUE(spike == 0 || spike == plan.queue_spike_depth);
  }
}

TEST(FaultInjector, DisabledPlanNeverFires) {
  FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(off.should_fail_engine());
    EXPECT_FALSE(off.should_fail_fallback());
    EXPECT_FALSE(off.should_delay_batcher());
    EXPECT_EQ(off.queue_spike(), 0u);
  }
  EXPECT_EQ(off.engine_failures_injected(), 0u);
}

}  // namespace
}  // namespace loom::serve
