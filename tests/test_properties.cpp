// Property-based sweeps over architecture scales, precisions and layer
// geometries: invariants the cycle models must satisfy everywhere, not just
// on the paper's networks.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/dpnn_sim.hpp"
#include "sim/loom_sim.hpp"
#include "sim/stripes_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

NetworkWorkload conv_case(int ci, int hw, int co, int pa, int pw) {
  nn::Network net("custom", nn::Shape3{ci, hw, hw});
  net.add_conv("c", co, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {pa};
  p.conv_weight = pw;
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

NetworkWorkload fc_case(int ci, int co, int pw) {
  nn::Network net("custom", nn::Shape3{ci, 1, 1});
  net.add_fc("f", co);
  quant::PrecisionProfile p;
  p.network = "custom";
  p.fc_weight = {pw};
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

struct ConvSweep {
  int equiv_macs;
  int bits_per_cycle;
  int co;
  int pa;
  int pw;
};

class LoomConvProperties : public ::testing::TestWithParam<ConvSweep> {};

TEST_P(LoomConvProperties, Invariants) {
  const ConvSweep c = GetParam();
  NetworkWorkload wl = conv_case(8, 16, c.co, c.pa, c.pw);

  arch::LoomConfig lcfg;
  lcfg.equiv_macs = c.equiv_macs;
  lcfg.bits_per_cycle = c.bits_per_cycle;
  lcfg.dynamic_act_precision = false;
  arch::DpnnConfig dcfg;
  dcfg.equiv_macs = c.equiv_macs;

  LoomSimulator lm(lcfg, SimOptions{});
  DpnnSimulator dp(dcfg, SimOptions{});
  const RunResult rl = lm.run(wl);
  const RunResult rd = dp.run(wl);

  // 1. Loom never loses to the baseline at matched peak compute when the
  //    filter rows are fully used (the paper's worst case is parity).
  if (c.co % c.equiv_macs == 0) {
    EXPECT_LE(rl.cycles(RunResult::Filter::kConv),
              rd.cycles(RunResult::Filter::kConv) + 64)
        << "E=" << c.equiv_macs << " pa=" << c.pa << " pw=" << c.pw;
  }

  // 2. Utilization is a fraction.
  EXPECT_GT(rl.layers[0].utilization, 0.0);
  EXPECT_LE(rl.layers[0].utilization, 1.0 + 1e-9);

  // 3. Work conservation: every MAC is accounted once.
  EXPECT_EQ(rl.macs(RunResult::Filter::kConv), wl.network().conv_macs());

  // 4. Energy is positive and finite.
  const double e = rl.energy_pj(RunResult::Filter::kConv);
  EXPECT_GT(e, 0.0);
  EXPECT_TRUE(std::isfinite(e));

  // 5. Loom's lane-bit work never exceeds the ideal pa*pw per MAC.
  const auto activity = rl.activity(RunResult::Filter::kConv);
  EXPECT_LE(activity.sip_lane_bit_ops,
            static_cast<std::uint64_t>(rl.macs(RunResult::Filter::kConv)) *
                static_cast<std::uint64_t>(c.pa) *
                static_cast<std::uint64_t>(c.pw));
}

std::vector<ConvSweep> conv_sweep_cases() {
  std::vector<ConvSweep> cases;
  for (const int e : {32, 128, 256}) {
    for (const int bits : {1, 2, 4}) {
      for (const int co : {32, 128, 256}) {
        for (const int pa : {4, 8, 13, 16}) {
          cases.push_back({e, bits, co, pa, 11});
        }
      }
    }
  }
  cases.push_back({128, 1, 128, 16, 16});  // worst case parity
  cases.push_back({128, 1, 128, 1, 1});    // extreme trim
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LoomConvProperties,
                         ::testing::ValuesIn(conv_sweep_cases()));

class MonotonicityInPrecision : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityInPrecision, CyclesNonDecreasingInPaAndPw) {
  const int bits = GetParam();
  arch::LoomConfig cfg;
  cfg.bits_per_cycle = bits;
  cfg.dynamic_act_precision = false;
  LoomSimulator lm(cfg, SimOptions{});

  std::uint64_t prev = 0;
  for (int pa = 1; pa <= 16; ++pa) {
    NetworkWorkload wl = conv_case(8, 16, 128, pa, 10);
    const auto cycles = lm.run(wl).cycles(RunResult::Filter::kConv);
    EXPECT_GE(cycles, prev) << "pa=" << pa;
    prev = cycles;
  }
  prev = 0;
  for (int pw = 1; pw <= 16; ++pw) {
    NetworkWorkload wl = conv_case(8, 16, 128, 8, pw);
    const auto cycles = lm.run(wl).cycles(RunResult::Filter::kConv);
    EXPECT_GE(cycles, prev) << "pw=" << pw;
    prev = cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitVariants, MonotonicityInPrecision,
                         ::testing::Values(1, 2, 4));

struct FcSweep {
  int ci;
  int co;
  int pw;
};

class LoomFcProperties : public ::testing::TestWithParam<FcSweep> {};

TEST_P(LoomFcProperties, Invariants) {
  const FcSweep c = GetParam();
  NetworkWorkload wl = fc_case(c.ci, c.co, c.pw);
  arch::LoomConfig cfg;
  cfg.dynamic_act_precision = false;
  LoomSimulator lm(cfg, SimOptions{});
  DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
  const RunResult rl = lm.run(wl);
  const RunResult rd = dp.run(wl);

  // FCL speedup is bounded by 16/pw and degrades only via utilization.
  const double speedup = speedup_vs(rl, rd, RunResult::Filter::kFc);
  EXPECT_LE(speedup, 16.0 / c.pw + 0.05);
  EXPECT_GT(speedup, 0.1);

  // Cascading keeps utilization above the no-cascading floor co/sips.
  const double floor = static_cast<double>(c.co) / 2048.0;
  EXPECT_GE(rl.layers[0].utilization, std::min(0.9, floor) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoomFcProperties,
    ::testing::Values(FcSweep{1024, 4096, 8}, FcSweep{1024, 1000, 7},
                      FcSweep{9216, 4096, 10}, FcSweep{4096, 512, 16},
                      FcSweep{256, 128, 9}, FcSweep{4096, 2048, 1}));

TEST(StripesProperties, NeverSlowerThanBaselineOnConv) {
  for (const int pa : {1, 4, 9, 16}) {
    NetworkWorkload wl = conv_case(8, 16, 64, pa, 12);
    arch::StripesConfig scfg;
    scfg.dynamic_act_precision = false;
    StripesSimulator st(scfg, SimOptions{});
    DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
    EXPECT_LE(st.run(wl).cycles(RunResult::Filter::kConv),
              dp.run(wl).cycles(RunResult::Filter::kConv) + 64)
        << pa;
  }
}

TEST(CrossArchProperties, LoomBeatsStripesWheneverWeightsAreNarrow) {
  // With Pw < 16 and matched utilization, Loom's weight-serial dimension
  // is pure profit over Stripes.
  for (const int pw : {8, 11, 15}) {
    NetworkWorkload wl_lm = conv_case(8, 16, 128, 8, pw);
    NetworkWorkload wl_st = conv_case(8, 16, 128, 8, pw);
    arch::LoomConfig lcfg;
    lcfg.dynamic_act_precision = false;
    arch::StripesConfig scfg;
    scfg.dynamic_act_precision = false;
    LoomSimulator lm(lcfg, SimOptions{});
    StripesSimulator st(scfg, SimOptions{});
    EXPECT_LT(lm.run(wl_lm).cycles(RunResult::Filter::kConv),
              st.run(wl_st).cycles(RunResult::Filter::kConv))
        << pw;
  }
}

TEST(CrossArchProperties, SpeedupsScaleInverselyWithPrecisionProduct) {
  // Doubling Pa x Pw halves Loom's conv speedup (the paper's headline law).
  NetworkWorkload a = conv_case(8, 16, 128, 4, 8);
  NetworkWorkload b = conv_case(8, 16, 128, 8, 8);
  arch::LoomConfig cfg;
  cfg.dynamic_act_precision = false;
  LoomSimulator lm(cfg, SimOptions{});
  DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
  const double sa = speedup_vs(lm.run(a), dp.run(a), RunResult::Filter::kConv);
  const double sb = speedup_vs(lm.run(b), dp.run(b), RunResult::Filter::kConv);
  EXPECT_NEAR(sa / sb, 2.0, 0.05);
}

}  // namespace
}  // namespace loom::sim
