// OR-plane precision engine: property tests that the dense plane tables
// reproduce the brute-force im2col scans exactly (padding, stride, grouped
// conv and tail-block edge cases), that the calibration fast path measures
// byte-identical means, and golden digests pinning LoomSimulator /
// StripesSimulator RunResults to pre-OR-plane main.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "common/error.hpp"
#include "golden.hpp"
#include "nn/synthetic.hpp"
#include "quant/profiles.hpp"
#include "sim/or_planes.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

// ---- Brute-force reference ------------------------------------------------
// Deliberately independent of nn/im2col.hpp: the original per-value
// div/mod + bounds-check mapping the plane builder replaced.

Value brute_window_value(const nn::Layer& layer, const nn::Tensor& input,
                         std::int64_t g, std::int64_t window,
                         std::int64_t flat) {
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  const std::int64_t oy = window / layer.out.w;
  const std::int64_t ox = window % layer.out.w;
  const std::int64_t ci = flat / (kh * kw);
  const std::int64_t rem = flat % (kh * kw);
  const std::int64_t iy = oy * layer.stride + rem / kw - layer.pad;
  const std::int64_t ix = ox * layer.stride + rem % kw - layer.pad;
  if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) return 0;
  return input.at3(g * layer.group_in_channels() + ci, iy, ix);
}

int brute_group_precision(const nn::Layer& layer, const nn::Tensor& input,
                          std::int64_t g, std::int64_t wb, std::int64_t ic,
                          int cols, int lanes) {
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  std::uint32_t ored = 0;
  const std::int64_t w_end = std::min<std::int64_t>((wb + 1) * cols, windows);
  const std::int64_t f_end = std::min<std::int64_t>((ic + 1) * lanes, inner);
  for (std::int64_t w = wb * cols; w < w_end; ++w) {
    for (std::int64_t f = ic * lanes; f < f_end; ++f) {
      ored |= static_cast<std::uint16_t>(brute_window_value(layer, input, g, w, f));
    }
  }
  return needed_bits_unsigned(ored);
}

double brute_group_mean(const nn::Layer& layer, const nn::SyntheticSource& src,
                        int cols, int lanes, int max_groups) {
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t wb_count = ceil_div(windows, cols);
  const std::int64_t ic_count = ceil_div(inner, lanes);
  const std::int64_t total =
      static_cast<std::int64_t>(layer.groups) * wb_count * ic_count;
  const std::int64_t stride = std::max<std::int64_t>(1, total / max_groups);
  double sum = 0.0;
  std::int64_t n = 0;
  for (std::int64_t t = 0; t < total; t += stride) {
    const std::int64_t g = t / (wb_count * ic_count);
    const std::int64_t rem = t % (wb_count * ic_count);
    const std::int64_t wb = rem / ic_count;
    const std::int64_t ic = rem % ic_count;
    std::uint32_t ored = 0;
    const std::int64_t w_end = std::min<std::int64_t>((wb + 1) * cols, windows);
    const std::int64_t f_end = std::min<std::int64_t>((ic + 1) * lanes, inner);
    for (std::int64_t w = wb * cols; w < w_end; ++w) {
      for (std::int64_t f = ic * lanes; f < f_end; ++f) {
        const std::int64_t kh = layer.kernel_h;
        const std::int64_t kw = layer.kernel_w;
        const std::int64_t oy = w / layer.out.w;
        const std::int64_t ox = w % layer.out.w;
        const std::int64_t ci = f / (kh * kw);
        const std::int64_t r2 = f % (kh * kw);
        const std::int64_t iy = oy * layer.stride + r2 / kw - layer.pad;
        const std::int64_t ix = ox * layer.stride + r2 % kw - layer.pad;
        if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) continue;
        const std::int64_t c = g * layer.group_in_channels() + ci;
        const std::int64_t idx = (c * layer.in.h + iy) * layer.in.w + ix;
        ored |= static_cast<std::uint16_t>(src.at(static_cast<std::uint64_t>(idx)));
      }
    }
    sum += std::min(needed_bits_unsigned(ored), layer.act_precision);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

struct Geometry {
  std::int64_t in_c, in_h, in_w;
  int out_c, kernel, stride, pad, groups;
};

// Padding / stride / grouped-conv / tail-block edge cases: 1x1 kernels
// without padding, 5x5 with heavy padding, stride > kernel, groups with a
// non-multiple-of-16 inner length, and odd spatial extents.
const Geometry kGeometries[] = {
    {8, 9, 9, 12, 3, 1, 1, 1},    // classic 3x3 same-conv, inner tail (72)
    {8, 7, 11, 8, 1, 1, 0, 1},    // 1x1, no padding, non-square
    {3, 13, 13, 10, 5, 2, 2, 1},  // 5x5 stride 2, heavy padding
    {16, 11, 9, 32, 3, 2, 1, 4},  // grouped, stride 2, inner tail (36)
    {4, 10, 10, 6, 3, 3, 1, 1},   // stride 3 > pad
    {8, 6, 6, 8, 5, 1, 2, 2},     // kernel ~ input size, grouped
};

nn::Layer make_layer(const Geometry& g) {
  nn::Layer layer = nn::make_conv("t", nn::Shape3{g.in_c, g.in_h, g.in_w},
                                  g.out_c, g.kernel, g.stride, g.pad, g.groups);
  layer.act_precision = 9;
  return layer;
}

TEST(OrPlanes, MatchesBruteForceScanAcrossGeometries) {
  constexpr int kLanes = 16;
  for (const Geometry& geo : kGeometries) {
    const nn::Layer layer = make_layer(geo);
    nn::SyntheticSpec spec;
    spec.precision = 9;
    spec.alpha = 3.0;
    spec.zero_fraction = 0.45;
    const nn::Tensor input = nn::make_activation_tensor(layer.in, spec, 7, 11);

    ActOrPlanes planes(layer, kLanes);
    planes.build(input);
    planes.build(input);  // rebuild path must re-zero rows before ORing
    ASSERT_EQ(planes.windows(), layer.windows());
    ASSERT_EQ(planes.ic_count(), ceil_div(layer.inner_length(), kLanes));

    const std::int64_t windows = layer.windows();
    for (const int cols :
         {1, 3, 16, static_cast<int>(windows) + 5}) {
      const std::int64_t wb_count = ceil_div(windows, cols);
      for (std::int64_t g = 0; g < layer.groups; ++g) {
        for (std::int64_t wb = 0; wb < wb_count; ++wb) {
          for (std::int64_t ic = 0; ic < planes.ic_count(); ++ic) {
            const int expected =
                brute_group_precision(layer, input, g, wb, ic, cols, kLanes);
            const int got = needed_bits_unsigned(planes.group_or(g, ic, wb, cols));
            ASSERT_EQ(got, expected)
                << "k=" << geo.kernel << " s=" << geo.stride << " p=" << geo.pad
                << " groups=" << geo.groups << " cols=" << cols << " g=" << g
                << " wb=" << wb << " ic=" << ic;
          }
        }
      }
    }
  }
}

TEST(OrPlanes, CalibrationPlanesMeasureByteIdenticalMeans) {
  constexpr int kLanes = 16;
  constexpr int kCols = 16;
  constexpr int kMaxGroups = 320;
  for (const Geometry& geo : kGeometries) {
    const nn::Layer layer = make_layer(geo);
    nn::SyntheticSpec spec;
    spec.precision = layer.act_precision;
    spec.zero_fraction = 0.45;
    spec.alpha = 1.0;
    const CalibrationPlanes planes(layer, kLanes, kCols, kMaxGroups,
                                   nn::SyntheticSource(1, 42, spec));
    for (const double alpha : {1.0, 2.5, 17.0, 803.0}) {
      spec.alpha = alpha;
      const nn::SyntheticSource src(1, 42, spec);
      // Exact equality: the fast path must reproduce the brute scan's sum
      // bit for bit so the calibration bisection path is unchanged.
      EXPECT_EQ(planes.mean_precision(src, layer.act_precision),
                brute_group_mean(layer, src, kCols, kLanes, kMaxGroups))
          << "alpha=" << alpha << " k=" << geo.kernel << " s=" << geo.stride;
    }
  }
}

// ---- Workload-level consistency -------------------------------------------

quant::PrecisionProfile workload_profile() {
  quant::PrecisionProfile p;
  p.network = "orplane-wl";
  p.conv_act = {8};
  p.conv_weight = 10;
  p.dynamic_act_trim = 1.0;
  return p;
}

TEST(OrPlanes, WorkloadTableMatchesSingleQueries) {
  auto profile = workload_profile();
  nn::Network net("orplane-wl", nn::Shape3{8, 12, 12});
  net.add_conv("c1", 16, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);
  LayerWorkload& lw = wl.layer(0);
  const nn::Layer& layer = lw.layer();

  for (const int cols : {4, 16}) {
    const ActPrecisionTable table = lw.act_group_precision_table(cols);
    const std::int64_t wb_count = ceil_div(layer.windows(), cols);
    const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
    for (std::int64_t wb = 0; wb < wb_count; ++wb) {
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        EXPECT_EQ(table.at(0, wb, ic), lw.act_group_precision(0, wb, ic, cols));
      }
    }
  }
}

TEST(OrPlanes, WorkloadRejectsOutOfRangeArguments) {
  auto profile = workload_profile();
  nn::Network net("orplane-wl", nn::Shape3{8, 12, 12});
  net.add_conv("c1", 16, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);
  LayerWorkload& lw = wl.layer(0);
  (void)lw.act_group_precision(0, 0, 0, 16);
  EXPECT_THROW((void)lw.act_group_precision(1, 0, 0, 16), ContractViolation);
  EXPECT_THROW((void)lw.act_group_precision(0, -1, 0, 16), ContractViolation);
  EXPECT_THROW((void)lw.act_group_precision(0, 0, 1000, 16), ContractViolation);
}

// ---- Golden byte-identity vs pre-OR-plane main ----------------------------
// FNV-1a digests of full RunResults captured on main immediately before the
// OR-plane engine landed (same seeds, same profiles, same configs). The
// engine is pure mechanical sympathy: any digest change is a model change
// and must be rejected. Values assume IEEE-754 doubles and glibc's
// correctly-rounded pow/exp (any Linux/x86-64 CI runner).

using golden::Fnv;

std::uint64_t digest(const RunResult& r) {
  Fnv f;
  f.str(r.arch_name);
  f.str(r.network);
  f.u64(static_cast<std::uint64_t>(r.bits_per_cycle));
  for (const auto& l : r.layers) {
    f.str(l.name);
    f.u64(static_cast<std::uint64_t>(l.kind));
    f.u64(l.compute_cycles);
    f.u64(l.stall_cycles);
    f.i64(l.macs);
    f.f64(l.utilization);
    f.f64(l.mean_act_precision);
    f.f64(l.mean_weight_precision);
    const auto& a = l.activity;
    f.u64(a.mac_ops);
    f.u64(a.sip_lane_bit_ops);
    f.u64(a.stripes_lane_ops);
    f.u64(a.sip_idle_lane_cycles);
    f.u64(a.stripes_idle_lane_cycles);
    f.u64(a.mac_idle_cycles);
    f.u64(a.wr_bits_loaded);
    f.u64(a.detector_values);
    f.u64(a.transposer_bits);
    f.u64(a.abin_read_bits);
    f.u64(a.abin_write_bits);
    f.u64(a.about_read_bits);
    f.u64(a.about_write_bits);
    f.u64(a.am_read_bits);
    f.u64(a.am_write_bits);
    f.u64(a.wm_read_bits);
    f.u64(a.wm_write_bits);
    f.u64(a.dram_read_bits);
    f.u64(a.dram_write_bits);
    f.u64(a.cycles);
  }
  return f.h;
}

TEST(OrPlanes, GoldenRunResultsByteIdenticalToPreChangeMain) {
  {
    quant::PrecisionProfile p;
    p.network = "golden-a";
    p.conv_act = {8, 6};
    p.conv_weight = 10;
    p.fc_weight = {9};
    p.dynamic_act_trim = 1.0;
    nn::Network net("golden-a", nn::Shape3{8, 16, 16});
    net.add_conv("c1", 32, 3, 1, 1).precision_group = 0;
    net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
    net.add_fc("f1", 100);
    quant::apply_profile(net, p);
    NetworkWorkload wl(std::move(net), p);

    auto loom_sim = make_loom_simulator(arch::LoomConfig{}, {});
    EXPECT_EQ(digest(loom_sim->run(wl)), 0x88b41b8aadf8f127ull);

    arch::StripesConfig scfg;
    scfg.dynamic_act_precision = true;
    auto stripes = make_stripes_simulator(scfg, {});
    EXPECT_EQ(digest(stripes->run(wl)), 0x85b0a9b1eced15b2ull);
  }
  {
    quant::PrecisionProfile p;
    p.network = "golden-b";
    p.conv_act = {9, 7, 8};
    p.conv_weight = 11;
    p.dynamic_act_trim = 1.5;
    // Edge-case geometry: grouped conv, stride-2 with asymmetric tail,
    // 1x1 kernel without padding, 5x5 kernel with heavy padding.
    nn::Network net("golden-b", nn::Shape3{16, 13, 13});
    net.add_conv("g1", 32, 3, 2, 1, 4).precision_group = 0;
    net.add_conv("p0", 24, 1, 1, 0).precision_group = 1;
    net.add_conv("k5", 16, 5, 3, 2).precision_group = 2;
    quant::apply_profile(net, p);
    NetworkWorkload wl(std::move(net), p);

    arch::LoomConfig lcfg;
    lcfg.per_group_weights = true;
    auto loom_sim = make_loom_simulator(lcfg, {});
    EXPECT_EQ(digest(loom_sim->run(wl)), 0xed3820f81fa8b8a6ull);

    arch::StripesConfig scfg;
    scfg.dynamic_act_precision = true;
    auto stripes = make_stripes_simulator(scfg, {});
    EXPECT_EQ(digest(stripes->run(wl)), 0x59437d6fec131150ull);
  }
}

}  // namespace
}  // namespace loom::sim
