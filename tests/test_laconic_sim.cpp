// Term-serial (Laconic-style) simulator: brute-force per-group term-count
// oracle vs the popcount fast path (same padding / stride / grouped-conv /
// tail geometries as test_or_planes), the NAF-vs-sign-magnitude term
// reconciliation pins, functional byte-identity against the scalar oracle,
// golden FNV digests on two zoo networks, and the compute-callbacks-sum-
// exactly invariant under constrained memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>

#include "arch/config.hpp"
#include "common/bitops.hpp"
#include "common/error.hpp"
#include "golden.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic.hpp"
#include "quant/profiles.hpp"
#include "sim/laconic_sim.hpp"
#include "sim/or_planes.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

// ---- Brute-force term-count oracle ----------------------------------------
// Deliberately independent of the plane builder: the original per-value
// div/mod + bounds-check im2col mapping, ORed over the detection group,
// masked to the layer Pa and popcounted — the cycles a sequencer
// synchronizing the group at its slowest lane spends on the activation side.

Value brute_window_value(const nn::Layer& layer, const nn::Tensor& input,
                         std::int64_t g, std::int64_t window,
                         std::int64_t flat) {
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  const std::int64_t oy = window / layer.out.w;
  const std::int64_t ox = window % layer.out.w;
  const std::int64_t ci = flat / (kh * kw);
  const std::int64_t rem = flat % (kh * kw);
  const std::int64_t iy = oy * layer.stride + rem / kw - layer.pad;
  const std::int64_t ix = ox * layer.stride + rem % kw - layer.pad;
  if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) return 0;
  return input.at3(g * layer.group_in_channels() + ci, iy, ix);
}

int brute_group_terms(const nn::Layer& layer, const nn::Tensor& input,
                      std::int64_t g, std::int64_t wb, std::int64_t ic,
                      int cols, int lanes) {
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  std::uint32_t ored = 0;
  const std::int64_t w_end = std::min<std::int64_t>((wb + 1) * cols, windows);
  const std::int64_t f_end = std::min<std::int64_t>((ic + 1) * lanes, inner);
  for (std::int64_t w = wb * cols; w < w_end; ++w) {
    for (std::int64_t f = ic * lanes; f < f_end; ++f) {
      ored |= static_cast<std::uint16_t>(brute_window_value(layer, input, g, w, f));
    }
  }
  const std::uint32_t mask =
      (std::uint32_t{1} << layer.act_precision) - 1u;
  return std::max(1, std::popcount(ored & mask));
}

struct Geometry {
  std::int64_t in_c, in_h, in_w;
  int out_c, kernel, stride, pad, groups;
};

// The same padding / stride / grouped-conv / tail-block edge cases
// test_or_planes sweeps: 1x1 kernels without padding, 5x5 with heavy
// padding, stride > kernel, groups with a non-multiple-of-16 inner length,
// and odd spatial extents.
const Geometry kGeometries[] = {
    {8, 9, 9, 12, 3, 1, 1, 1},    // classic 3x3 same-conv, inner tail (72)
    {8, 7, 11, 8, 1, 1, 0, 1},    // 1x1, no padding, non-square
    {3, 13, 13, 10, 5, 2, 2, 1},  // 5x5 stride 2, heavy padding
    {16, 11, 9, 32, 3, 2, 1, 4},  // grouped, stride 2, inner tail (36)
    {4, 10, 10, 6, 3, 3, 1, 1},   // stride 3 > pad
    {8, 6, 6, 8, 5, 1, 2, 2},     // kernel ~ input size, grouped
};

nn::Layer make_layer(const Geometry& g) {
  nn::Layer layer = nn::make_conv("t", nn::Shape3{g.in_c, g.in_h, g.in_w},
                                  g.out_c, g.kernel, g.stride, g.pad, g.groups);
  layer.act_precision = 9;
  return layer;
}

TEST(LaconicSim, TermCountsMatchBruteForceScanAcrossGeometries) {
  constexpr int kLanes = 16;
  for (const Geometry& geo : kGeometries) {
    const nn::Layer layer = make_layer(geo);
    nn::SyntheticSpec spec;
    spec.precision = 9;
    spec.alpha = 3.0;
    spec.zero_fraction = 0.45;
    const nn::Tensor input = nn::make_activation_tensor(layer.in, spec, 7, 11);

    ActOrPlanes planes(layer, kLanes);
    planes.build(input);
    const std::uint32_t mask =
        (std::uint32_t{1} << layer.act_precision) - 1u;

    const std::int64_t windows = layer.windows();
    for (const int cols : {1, 3, 16, static_cast<int>(windows) + 5}) {
      const std::int64_t wb_count = ceil_div(windows, cols);
      for (std::int64_t g = 0; g < layer.groups; ++g) {
        for (std::int64_t wb = 0; wb < wb_count; ++wb) {
          for (std::int64_t ic = 0; ic < planes.ic_count(); ++ic) {
            const int expected =
                brute_group_terms(layer, input, g, wb, ic, cols, kLanes);
            const int got = std::max(
                1, std::popcount(static_cast<std::uint32_t>(
                       planes.group_or(g, ic, wb, cols)) &
                   mask));
            ASSERT_EQ(got, expected)
                << "k=" << geo.kernel << " s=" << geo.stride << " p=" << geo.pad
                << " groups=" << geo.groups << " cols=" << cols << " g=" << g
                << " wb=" << wb << " ic=" << ic;
          }
        }
      }
    }
  }
}

// ---- Workload-level fast path ---------------------------------------------

quant::PrecisionProfile workload_profile() {
  quant::PrecisionProfile p;
  p.network = "laconic-wl";
  p.conv_act = {8};
  p.conv_weight = 10;
  p.dynamic_act_trim = 1.0;
  return p;
}

TEST(LaconicSim, WorkloadTermTableMatchesSingleQueries) {
  auto profile = workload_profile();
  nn::Network net("laconic-wl", nn::Shape3{8, 12, 12});
  net.add_conv("c1", 16, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);
  LayerWorkload& lw = wl.layer(0);
  const nn::Layer& layer = lw.layer();

  for (const int cols : {4, 16}) {
    const ActTermTable table = lw.act_group_term_table(cols);
    const std::int64_t wb_count = ceil_div(layer.windows(), cols);
    const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
    for (std::int64_t wb = 0; wb < wb_count; ++wb) {
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        const int terms = lw.act_group_term_count(0, wb, ic, cols);
        EXPECT_EQ(table.at(0, wb, ic), terms);
        // Essential planes are a subset of the positional planes: the term
        // count never exceeds the detected precision and never drops to 0.
        EXPECT_LE(terms, lw.act_group_precision(0, wb, ic, cols));
        EXPECT_GE(terms, 1);
      }
    }
  }
}

TEST(LaconicSim, WorkloadRejectsOutOfRangeTermArguments) {
  auto profile = workload_profile();
  nn::Network net("laconic-wl", nn::Shape3{8, 12, 12});
  net.add_conv("c1", 16, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);
  LayerWorkload& lw = wl.layer(0);
  (void)lw.act_group_term_count(0, 0, 0, 16);
  EXPECT_THROW((void)lw.act_group_term_count(1, 0, 0, 16), ContractViolation);
  EXPECT_THROW((void)lw.act_group_term_count(0, -1, 0, 16), ContractViolation);
  EXPECT_THROW((void)lw.act_group_term_count(0, 0, 1000, 16), ContractViolation);
}

// ---- NAF vs sign-magnitude reconciliation ---------------------------------
// essential_weight_planes counts *sign-magnitude* planes (storage layout,
// what sparse_weight_skipping prices); the term-serial compute path follows
// the NAF digit serialization. The two differ by design: NAF folds the sign
// pass into signed digits and needs no digit at runs of adjacent ones.

TEST(LaconicSim, NafTermsReconcileWithSignMagnitudePlanes) {
  // Weight 7 = 0b111: three magnitude planes + one sign pass = 4
  // sign-magnitude planes, but NAF is 8 - 1 — two digits at positions 3,0.
  EXPECT_EQ(needed_bits_unsigned(7) + 1, 4);
  EXPECT_EQ(naf_term_count(7), 2);
  const NafDigits d7 = naf_digits(7);
  EXPECT_EQ(d7.plus, 0b1000u);
  EXPECT_EQ(d7.minus, 0b0001u);
  EXPECT_EQ(d7.positions(), 0b1001u);

  // 21 = 0b10101 has no adjacent ones: NAF keeps the three set bits but
  // still drops the 5+1-plane sign-magnitude walk to 3 terms.
  EXPECT_EQ(needed_bits_unsigned(21) + 1, 6);
  EXPECT_EQ(naf_term_count(21), 3);
  EXPECT_EQ(naf_digits(21).positions(), 0b10101u);

  // Zero has no terms at the lane level; group models clamp to 1 themselves.
  EXPECT_EQ(naf_term_count(0), 0);

  // Workload level, measured over the same streamed weight source: the
  // per-weight NAF mean undercuts the sign-magnitude plane count, and the
  // synchronized group walk sits between the two definitions' regimes —
  // at least the per-weight mean, never more than Pw + 1 positions.
  auto profile = workload_profile();
  nn::Network net("laconic-wl", nn::Shape3{8, 12, 12});
  net.add_conv("c1", 16, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);
  LayerWorkload& lw = wl.layer(0);
  const LayerWorkload::WeightTermStats terms = lw.naf_weight_terms();
  const double planes = lw.essential_weight_planes();
  EXPECT_LT(terms.mean_per_weight, planes);
  EXPECT_GE(terms.synced_per_group, terms.mean_per_weight);
  EXPECT_LE(terms.synced_per_group,
            static_cast<double>(lw.profile_weight_precision()) + 1.0);
  EXPECT_GE(terms.synced_per_group, 1.0);
}

// ---- Functional byte-identity vs the scalar oracle ------------------------

TEST(LaconicSim, FunctionalConvMatchesScalarOracle) {
  for (const Geometry& geo : {kGeometries[0], kGeometries[3]}) {
    nn::Layer layer = make_layer(geo);
    layer.act_precision = 7;
    layer.weight_precision = 8;
    nn::SyntheticSpec act{.precision = 7, .alpha = 3.0, .is_signed = false,
                          .zero_fraction = 0.45};
    const nn::Tensor input = nn::make_activation_tensor(layer.in, act, 3, 5);
    nn::SyntheticSpec wspec{.precision = 8, .alpha = 2.0, .is_signed = true};
    const nn::Tensor weights =
        nn::make_weight_tensor(layer.weight_count(), wspec, 3, 9);

    const LaconicFunctionalRun run = run_laconic_conv(layer, input, weights);
    const nn::WideTensor golden = nn::conv_forward(input, weights, layer);
    ASSERT_EQ(run.wide.elements(), golden.elements());
    for (std::int64_t i = 0; i < golden.elements(); ++i) {
      ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << "i=" << i;
    }

    EXPECT_GT(run.cycles, 0u);
    EXPECT_GE(run.mean_act_terms, 1.0);
    EXPECT_LE(run.mean_act_terms, static_cast<double>(layer.act_precision));
    EXPECT_GE(run.mean_weight_terms, 1.0);
  }
}

// ---- Golden digests on two zoo networks -----------------------------------
// FNV-1a digests of full term-serial RunResults captured when the simulator
// landed (same seeds, same profiles, default LaconicConfig, unconstrained
// §4.3 memory). Any digest change is a model change and must be explained.
// Values assume IEEE-754 doubles and glibc's correctly-rounded pow/exp.

using golden::Fnv;

std::uint64_t digest(const RunResult& r) {
  Fnv f;
  f.str(r.arch_name);
  f.str(r.network);
  f.u64(static_cast<std::uint64_t>(r.bits_per_cycle));
  for (const auto& l : r.layers) {
    f.str(l.name);
    f.u64(static_cast<std::uint64_t>(l.kind));
    f.u64(l.compute_cycles);
    f.u64(l.stall_cycles);
    f.i64(l.macs);
    f.f64(l.utilization);
    f.f64(l.mean_act_precision);
    f.f64(l.mean_weight_precision);
    const auto& a = l.activity;
    f.u64(a.laconic_lane_term_ops);
    f.u64(a.laconic_idle_lane_cycles);
    f.u64(a.wr_bits_loaded);
    f.u64(a.detector_values);
    f.u64(a.transposer_bits);
    f.u64(a.abin_read_bits);
    f.u64(a.abin_write_bits);
    f.u64(a.about_read_bits);
    f.u64(a.about_write_bits);
    f.u64(a.am_read_bits);
    f.u64(a.am_write_bits);
    f.u64(a.wm_read_bits);
    f.u64(a.wm_write_bits);
    f.u64(a.dram_read_bits);
    f.u64(a.dram_write_bits);
    f.u64(a.cycles);
  }
  return f.h;
}

TEST(LaconicSim, GoldenRunResultsOnZooNetworks) {
  auto sim = make_laconic_simulator(arch::LaconicConfig{}, {});
  {
    auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
    EXPECT_EQ(digest(sim->run(*wl)), 0x10190b3f19115f6bull);
  }
  {
    auto wl = prepare_network("nin", quant::AccuracyTarget::k100);
    EXPECT_EQ(digest(sim->run(*wl)), 0xe20f6cce4847c40bull);
  }
}

// ---- Compute/memory separation under constrained memory -------------------

TEST(LaconicSim, ComputeCallbacksSumExactlyUnderConstrainedMemory) {
  // Starved AM/WM force multi-tile schedules on every layer; the tiled
  // BlockCompute callbacks must still sum exactly to the analytic compute
  // cycles — memory never changes compute, only stalls.
  quant::PrecisionProfile p;
  p.network = "laconic-mem";
  p.conv_act = {8, 6};
  p.conv_weight = 10;
  p.fc_weight = {9};
  p.dynamic_act_trim = 1.0;
  nn::Network net("laconic-mem", nn::Shape3{8, 16, 16});
  net.add_conv("c1", 32, 3, 1, 1).precision_group = 0;
  net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
  net.add_fc("f1", 100);
  quant::apply_profile(net, p);
  NetworkWorkload wl(std::move(net), p);

  auto free_sim = make_laconic_simulator(arch::LaconicConfig{}, {});
  const RunResult free_run = free_sim->run(wl);

  SimOptions constrained;
  constrained.model_offchip = true;
  constrained.am_bytes = 64 << 10;
  constrained.wm_bytes = 64 << 10;
  auto tight_sim = make_laconic_simulator(arch::LaconicConfig{}, constrained);
  const RunResult tight_run = tight_sim->run(wl);

  EXPECT_GT(tight_run.offchip_bits(), 0u);
  EXPECT_EQ(free_run.offchip_bits(), 0u);
  EXPECT_EQ(free_run.stall_cycles(), 0u);

  ASSERT_EQ(tight_run.layers.size(), free_run.layers.size());
  for (std::size_t i = 0; i < tight_run.layers.size(); ++i) {
    EXPECT_EQ(tight_run.layers[i].compute_cycles,
              free_run.layers[i].compute_cycles)
        << "layer " << i;
  }
}

}  // namespace
}  // namespace loom::sim
