// Energy and area models: linearity in activity, leakage accounting, and
// the §4.4 area-ratio calibration bands.
#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "common/error.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "mem/hierarchy.hpp"

namespace loom::energy {
namespace {

TEST(EnergyModel, LinearInActivity) {
  const EnergyModel model(default_energy_coefficients(), 10.0, 1);
  Activity a;
  a.mac_ops = 1000;
  a.sip_lane_bit_ops = 5000;
  a.cycles = 100;
  const double e1 = model.evaluate(a).total_pj();
  a.mac_ops *= 2;
  a.sip_lane_bit_ops *= 2;
  a.cycles *= 2;
  const double e2 = model.evaluate(a).total_pj();
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
}

TEST(EnergyModel, LeakageProportionalToAreaAndCycles) {
  Activity a;
  a.cycles = 1000;
  const EnergyModel small(default_energy_coefficients(), 1.0, 1);
  const EnergyModel big(default_energy_coefficients(), 4.0, 1);
  EXPECT_NEAR(big.evaluate(a).leakage_pj, 4.0 * small.evaluate(a).leakage_pj,
              1e-9);
}

TEST(EnergyModel, SipLaneEnergyAmortizesWithBits) {
  const auto& c = default_energy_coefficients();
  EXPECT_GT(c.sip_lane_bit_pj(1), c.sip_lane_bit_pj(2));
  EXPECT_GT(c.sip_lane_bit_pj(2), c.sip_lane_bit_pj(4));
  EXPECT_GT(c.sip_lane_bit_pj(4), c.sip_lane_base_pj);
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  const EnergyModel model(default_energy_coefficients(), 5.0, 2);
  Activity a;
  a.mac_ops = 10;
  a.sip_lane_bit_ops = 20;
  a.stripes_lane_ops = 30;
  a.wr_bits_loaded = 40;
  a.detector_values = 50;
  a.transposer_bits = 60;
  a.abin_read_bits = 70;
  a.about_write_bits = 80;
  a.am_read_bits = 90;
  a.wm_read_bits = 100;
  a.dram_read_bits = 110;
  a.cycles = 120;
  const auto e = model.evaluate(a);
  EXPECT_NEAR(e.total_pj(),
              e.compute_pj + e.registers_pj + e.detector_pj + e.transposer_pj +
                  e.sram_pj + e.edram_pj + e.dram_pj + e.leakage_pj,
              1e-12);
  EXPECT_GT(e.total_onchip_pj(), 0.0);
  EXPECT_LT(e.total_onchip_pj(), e.total_pj());
}

TEST(EnergyModel, AveragePowerAtOneGhz) {
  const EnergyModel model(default_energy_coefficients(), 1.0, 1);
  Activity a;
  a.cycles = 1000;
  a.mac_ops = 1000;  // 4 pJ each -> 4000 pJ + leakage 2500 pJ
  // 6.5 nJ over 1 us -> 6.5 mW.
  EXPECT_NEAR(model.average_power_w(a), 6.5e-3, 1e-4);
}

TEST(AreaModel, Section44CalibrationBands) {
  // §4.4: LM1b 1.34x, LM2b 1.25x, LM4b 1.16x over DPNN (logic + buffers).
  const auto mem_dpnn = mem::default_memory_config(128, false);
  const auto mem_lm = mem::default_memory_config(128, true);
  const double dpnn = dpnn_area(arch::DpnnConfig{}, mem_dpnn).core_mm2();

  arch::LoomConfig lm1;
  arch::LoomConfig lm2;
  lm2.bits_per_cycle = 2;
  arch::LoomConfig lm4;
  lm4.bits_per_cycle = 4;
  const double r1 = loom_area(lm1, mem_lm).core_mm2() / dpnn;
  const double r2 = loom_area(lm2, mem_lm).core_mm2() / dpnn;
  const double r4 = loom_area(lm4, mem_lm).core_mm2() / dpnn;

  EXPECT_NEAR(r1, 1.34, 0.10);
  EXPECT_NEAR(r2, 1.25, 0.10);
  EXPECT_NEAR(r4, 1.16, 0.10);
  EXPECT_GT(r1, r2);
  EXPECT_GT(r2, r4);
  EXPECT_GT(r4, 1.0);
}

TEST(AreaModel, StripesOverheadBand) {
  const auto mem_s = mem::default_memory_config(128, true);
  const auto mem_d = mem::default_memory_config(128, false);
  arch::StripesConfig s;
  const double ratio = stripes_area(s, mem_s).core_mm2() /
                       dpnn_area(arch::DpnnConfig{}, mem_d).core_mm2();
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 1.6);
}

TEST(AreaModel, MemoriesDominateTotalArea) {
  const auto mem_cfg = mem::default_memory_config(128, false);
  const auto a = dpnn_area(arch::DpnnConfig{}, mem_cfg);
  EXPECT_GT(a.edram_mm2, a.core_mm2());
  EXPECT_GT(a.total_mm2(), a.core_mm2());
}

TEST(AreaModel, LoomTotalAreaScalesWithE) {
  const auto mem32 = mem::default_memory_config(32, true);
  const auto mem512 = mem::default_memory_config(512, true);
  arch::LoomConfig small;
  small.equiv_macs = 32;
  arch::LoomConfig big;
  big.equiv_macs = 512;
  EXPECT_GT(loom_area(big, mem512).total_mm2(),
            4.0 * loom_area(small, mem32).total_mm2() / 2.0);
}

TEST(EnergyModel, InvalidConstructionThrows) {
  EXPECT_THROW(EnergyModel(default_energy_coefficients(), -1.0, 1),
               loom::ContractViolation);
  EXPECT_THROW(EnergyModel(default_energy_coefficients(), 1.0, 3),
               loom::ContractViolation);
}

}  // namespace
}  // namespace loom::energy
