#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/tensor.hpp"

namespace loom::nn {
namespace {

TEST(Shape, ElementsAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.elements(), 24);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.to_string(), "[2x3x4]");
}

TEST(Shape, EmptyHasZeroElements) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.elements(), 0);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({-1, 2}), ContractViolation);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s{2};
  EXPECT_THROW((void)s.dim(1), ContractViolation);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t(Shape{2, 3});
  const std::int64_t idx01[] = {0, 1};
  const std::int64_t idx10[] = {1, 0};
  t.at(idx01) = 5;
  t.at(idx10) = 7;
  EXPECT_EQ(t.flat(1), 5);
  EXPECT_EQ(t.flat(3), 7);
}

TEST(Tensor, At3MatchesFlat) {
  Tensor t(Shape{2, 2, 2});
  t.at3(1, 0, 1) = 9;
  EXPECT_EQ(t.flat(1 * 4 + 0 * 2 + 1), 9);
}

TEST(Tensor, At4MatchesFlat) {
  Tensor t(Shape{2, 2, 2, 2});
  t.at4(1, 1, 0, 1) = 3;
  EXPECT_EQ(t.flat(8 + 4 + 0 + 1), 3);
}

TEST(Tensor, OutOfBoundsThrows) {
  Tensor t(Shape{2, 2});
  const std::int64_t bad[] = {2, 0};
  EXPECT_THROW((void)t.at(bad), ContractViolation);
  const std::int64_t wrong_rank[] = {0};
  EXPECT_THROW((void)t.at(wrong_rank), ContractViolation);
}

TEST(Tensor, FillValue) {
  const Tensor t(Shape{4}, 7);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.flat(i), 7);
}

TEST(Tensor, MaxPrecision) {
  Tensor t(Shape{3});
  t.set_flat(0, 5);    // 4 bits signed
  t.set_flat(1, -70);  // 8 bits signed
  t.set_flat(2, 0);
  EXPECT_EQ(t.max_precision_signed(), 8);
}

TEST(Tensor, MaxPrecisionUnsigned) {
  Tensor t(Shape{2});
  t.set_flat(0, 255);
  t.set_flat(1, 3);
  EXPECT_EQ(t.max_precision_unsigned(), 8);
}

TEST(WideTensor, StoresWideAccumulators) {
  WideTensor t(Shape{2, 1, 1});
  t.at3(1, 0, 0) = (Wide{1} << 40);
  EXPECT_EQ(t.at3(1, 0, 0), Wide{1} << 40);
  EXPECT_EQ(t.elements(), 2);
}

}  // namespace
}  // namespace loom::nn
