// Counter-based RNG: determinism is load-bearing (the whole synthetic
// workload system assumes element i of a stream is a pure function).
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace loom {
namespace {

TEST(CounterRng, DeterministicAcrossInstances) {
  const CounterRng a(42, 7);
  const CounterRng b(42, 7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.bits(i), b.bits(i));
  }
}

TEST(CounterRng, StreamsAreIndependent) {
  const CounterRng a(42, 1);
  const CounterRng b(42, 2);
  int collisions = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.bits(i) == b.bits(i)) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(CounterRng, SeedsAreIndependent) {
  const CounterRng a(1, 0);
  const CounterRng b(2, 0);
  int collisions = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.bits(i) == b.bits(i)) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(CounterRng, UniformInUnitInterval) {
  const CounterRng rng(7, 0);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform(static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(CounterRng, BelowStaysInRange) {
  const CounterRng rng(9, 3);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (std::uint64_t i = 0; i < 500; ++i) {
      EXPECT_LT(rng.below(i, n), n);
    }
  }
  EXPECT_EQ(rng.below(0, 0), 0u);
}

TEST(CounterRng, BelowCoversRange) {
  const CounterRng rng(11, 0);
  bool seen[8] = {};
  for (std::uint64_t i = 0; i < 400; ++i) seen[rng.below(i, 8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(CounterRng, NormalMoments) {
  const CounterRng rng(13, 0);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(static_cast<std::uint64_t>(i));
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(CounterRng, ExponentialMean) {
  const CounterRng rng(17, 0);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(static_cast<std::uint64_t>(i));
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.05);
}

TEST(SequentialRng, AdvancesCounter) {
  SequentialRng rng(21);
  const auto a = rng.next_bits();
  const auto b = rng.next_bits();
  EXPECT_NE(a, b);
}

TEST(Mix64, AvalancheSmoke) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += std::popcount(mix64(0x1234567890ABCDEFull) ^
                           mix64(0x1234567890ABCDEFull ^ (1ull << bit)));
  }
  const double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

}  // namespace
}  // namespace loom
