// Shared golden-digest helpers for the test suite. FNV-1a over the exact
// byte encodings the original per-file copies used, so digests captured
// before the dedupe remain valid: integers hash as their 8-byte
// two's-complement little-endian form, doubles as their IEEE-754 bytes,
// tensors element-wise in flat (row-major) order via i64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "nn/tensor.hpp"

namespace loom::golden {

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
  void tensor(const nn::Tensor& t) {
    for (std::int64_t i = 0; i < t.elements(); ++i) i64(t.flat(i));
  }
  void wide(const nn::WideTensor& t) {
    for (std::int64_t i = 0; i < t.elements(); ++i) i64(t.flat(i));
  }
};

}  // namespace loom::golden
