#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "arch/adder_tree.hpp"
#include "arch/ip_unit.hpp"
#include "common/error.hpp"

namespace loom::arch {
namespace {

TEST(AdderTree, DepthIsCeilLog2) {
  EXPECT_EQ(AdderTree(1).depth(), 0);
  EXPECT_EQ(AdderTree(2).depth(), 1);
  EXPECT_EQ(AdderTree(3).depth(), 2);
  EXPECT_EQ(AdderTree(16).depth(), 4);
  EXPECT_EQ(AdderTree(17).depth(), 5);
}

TEST(AdderTree, ReduceSums) {
  const AdderTree tree(4);
  const std::array<Wide, 4> in = {1, -2, 3, 10};
  EXPECT_EQ(tree.reduce(in), 12);
}

TEST(AdderTree, ReduceIgnoresBeyondFanIn) {
  const AdderTree tree(2);
  const std::array<Wide, 4> in = {1, 2, 100, 100};
  EXPECT_EQ(tree.reduce(in), 3);
}

TEST(AdderTree, ReduceBitsPopcount) {
  const AdderTree tree(16);
  EXPECT_EQ(tree.reduce_bits(0xFFFF), 16);
  EXPECT_EQ(tree.reduce_bits(0x0101), 2);
  // Bits above fan-in are masked.
  EXPECT_EQ(tree.reduce_bits(0xFFFF0000), 0);
}

TEST(AdderTree, InvalidFanInThrows) {
  EXPECT_THROW(AdderTree(0), ContractViolation);
}

TEST(IpUnit, AccumulatesDotProducts) {
  IpUnit ip(16);
  ip.begin_output();
  const std::vector<Value> a = {2, 3};
  const std::vector<Value> w = {10, -1};
  ip.cycle(a, w);
  EXPECT_EQ(ip.output(), 17);
  ip.cycle(a, w);
  EXPECT_EQ(ip.output(), 34);
  EXPECT_EQ(ip.cycles(), 2u);
}

TEST(IpUnit, BeginOutputClearsAccumulator) {
  IpUnit ip(4);
  const std::vector<Value> a = {1};
  const std::vector<Value> w = {1};
  ip.cycle(a, w);
  ip.begin_output();
  EXPECT_EQ(ip.output(), 0);
}

TEST(IpUnit, FullPrecisionProductsDoNotOverflow) {
  IpUnit ip(16);
  ip.begin_output();
  const std::vector<Value> a(16, 32767);
  const std::vector<Value> w(16, -32768);
  ip.cycle(a, w);
  EXPECT_EQ(ip.output(), 16 * (Wide{32767} * -32768));
}

TEST(IpUnit, PipelineDepthIncludesMultiplier) {
  EXPECT_EQ(IpUnit(16).pipeline_depth(), 5);  // 4 tree levels + multiply
}

}  // namespace
}  // namespace loom::arch
