// Functional engine: whole layers and networks executed through the
// bit-serial datapath must match the bit-parallel golden model exactly,
// and the wall-clock cycles must agree with the analytic cycle model.
#include <gtest/gtest.h>

#include "sim/functional.hpp"
#include "sim/loom_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

struct SmallNet {
  nn::Network net;
  std::vector<nn::Tensor> weights;
  nn::Tensor input;
};

SmallNet make_small_net() {
  nn::Network net("tiny", nn::Shape3{4, 12, 12});
  net.add_conv("c1", 8, 3, 1, 1).precision_group = 0;
  net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
  net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
  net.add_fc("f1", 10);
  quant::PrecisionProfile p;
  p.network = "tiny";
  p.conv_act = {7, 6};
  p.conv_weight = 8;
  p.fc_weight = {7};
  quant::apply_profile(net, p);

  SmallNet s{std::move(net), {}, nn::Tensor{}};
  // High alpha concentrates values so per-group dynamic detection has
  // something to trim (overlapping windows share values, so a group sees
  // ~50 distinct draws, not 256).
  nn::SyntheticSpec act{.precision = 7, .alpha = 40.0, .is_signed = false};
  s.input = nn::make_activation_tensor(s.net.layer(0).in, act, 1, 1);
  std::uint64_t stream = 100;
  for (const auto& l : s.net.layers()) {
    if (!l.has_weights()) continue;
    nn::SyntheticSpec w{.precision = l.weight_precision, .alpha = 2.0,
                        .is_signed = true};
    s.weights.push_back(nn::make_weight_tensor(l.weight_count(), w, 2, stream++));
  }
  return s;
}

TEST(Functional, ConvLayerMatchesGoldenModel) {
  SmallNet s = make_small_net();
  FunctionalLoomEngine engine(FunctionalOptions{.rows = 8, .cols = 16});
  const auto run = engine.run_conv(s.net.layer(0), s.input, s.weights[0], 16);
  const nn::WideTensor golden =
      nn::conv_forward(s.input, s.weights[0], s.net.layer(0));
  ASSERT_EQ(run.wide.elements(), golden.elements());
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

TEST(Functional, ConvMatchesGoldenWithDynamicPrecisionOff) {
  SmallNet s = make_small_net();
  FunctionalLoomEngine engine(
      FunctionalOptions{.rows = 4, .cols = 8, .dynamic_act_precision = false});
  const auto run = engine.run_conv(s.net.layer(0), s.input, s.weights[0], 16);
  const nn::WideTensor golden =
      nn::conv_forward(s.input, s.weights[0], s.net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

TEST(Functional, DynamicPrecisionSavesCyclesLosslessly) {
  SmallNet s = make_small_net();
  FunctionalLoomEngine dyn(FunctionalOptions{.rows = 8, .cols = 16});
  FunctionalLoomEngine stat(
      FunctionalOptions{.rows = 8, .cols = 16, .dynamic_act_precision = false});
  const auto run_dyn = dyn.run_conv(s.net.layer(0), s.input, s.weights[0], 16);
  const auto run_stat = stat.run_conv(s.net.layer(0), s.input, s.weights[0], 16);
  EXPECT_LT(run_dyn.cycles, run_stat.cycles);
  for (std::int64_t i = 0; i < run_stat.wide.elements(); ++i) {
    ASSERT_EQ(run_dyn.wide.flat(i), run_stat.wide.flat(i)) << i;
  }
  EXPECT_LT(run_dyn.mean_streamed_precision, 7.0);
}

TEST(Functional, FcLayerMatchesGoldenModel) {
  SmallNet s = make_small_net();
  // Run the net up to the FC input using the golden path.
  nn::Tensor x = s.input;
  const nn::WideTensor c1 = nn::conv_forward(x, s.weights[0], s.net.layer(0));
  x = nn::requantize(c1, nn::choose_requant_shift(c1, 6), 6, true);
  x = nn::pool_forward(x, s.net.layer(1));
  const nn::WideTensor c2 = nn::conv_forward(x, s.weights[1], s.net.layer(2));
  x = nn::requantize(c2, nn::choose_requant_shift(c2, 16), 16, true);

  FunctionalLoomEngine engine(FunctionalOptions{});
  const auto run = engine.run_fc(s.net.layer(3), x, s.weights[2], 16);
  const nn::WideTensor golden = nn::fc_forward(x, s.weights[2], s.net.layer(3));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

TEST(Functional, WholeNetworkMatchesGoldenPipeline) {
  SmallNet s = make_small_net();
  FunctionalLoomEngine engine(FunctionalOptions{.rows = 8, .cols = 8});
  const auto run = engine.run_network(s.net, s.input, s.weights);
  ASSERT_EQ(run.layers.size(), 3u);
  EXPECT_EQ(run.output.elements(), 10);
  EXPECT_GT(run.total_cycles, 0u);

  // Golden pipeline with identical requantization decisions.
  nn::Tensor x = s.input;
  const nn::WideTensor c1 = nn::conv_forward(x, s.weights[0], s.net.layer(0));
  ASSERT_EQ(run.layers[0].out_bits, 6);  // consumer c2's profile Pa
  x = nn::requantize(c1, run.layers[0].requant_shift, 6, true);
  x = nn::pool_forward(x, s.net.layer(1));
  const nn::WideTensor c2 = nn::conv_forward(x, s.weights[1], s.net.layer(2));
  x = nn::requantize(c2, run.layers[1].requant_shift, 16, true);
  const nn::WideTensor f1 = nn::fc_forward(x, s.weights[2], s.net.layer(3));
  const nn::Tensor golden_out =
      nn::requantize(f1, run.layers[2].requant_shift, 16, true);
  for (std::int64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(run.output.flat(i), golden_out.flat(i)) << i;
  }
}

TEST(Functional, CyclesAgreeWithAnalyticModel) {
  // The chunk-counting simulator and the actually-driven datapath must
  // report the same cycles in static mode (up to the pipeline-fill
  // constant) on a 16x16-grid-compatible layer.
  nn::Network net("tiny", nn::Shape3{8, 16, 16});
  net.add_conv("c", 16, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "tiny";
  p.conv_act = {7};
  p.conv_weight = 9;
  quant::apply_profile(net, p);

  nn::SyntheticSpec act{.precision = 7, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 9, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 1, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 2, 2);

  FunctionalLoomEngine engine(
      FunctionalOptions{.rows = 16, .cols = 16, .dynamic_act_precision = false});
  const auto fun = engine.run_conv(net.layer(0), input, weights, 16);

  arch::LoomConfig cfg;
  cfg.equiv_macs = 16;  // rows = 16 like the functional grid
  cfg.dynamic_act_precision = false;
  LoomSimulator sim(cfg, SimOptions{});
  NetworkWorkload wl(std::move(net), p);
  const auto analytic = sim.run(wl);
  EXPECT_NEAR(static_cast<double>(fun.cycles),
              static_cast<double>(analytic.layers[0].compute_cycles), 16.0);
}

TEST(Functional, GroupedConvolutionSupported) {
  nn::Network net("g", nn::Shape3{4, 6, 6});
  net.add_conv("c", 8, 3, 1, 1, /*groups=*/2).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "g";
  p.conv_act = {6};
  p.conv_weight = 7;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 6, .alpha = 1.5, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 7, .alpha = 1.5, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 3, 3);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 4, 4);

  FunctionalLoomEngine engine(FunctionalOptions{.rows = 4, .cols = 8});
  const auto run = engine.run_conv(net.layer(0), input, weights, 16);
  const nn::WideTensor golden = nn::conv_forward(input, weights, net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

}  // namespace
}  // namespace loom::sim
