#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/synthetic.hpp"
#include "quant/profiler.hpp"
#include "quant/quantize.hpp"

namespace loom::quant {
namespace {

TEST(ClipSigned, SaturatesSymmetrically) {
  EXPECT_EQ(clip_signed(100, 8), 100);
  EXPECT_EQ(clip_signed(200, 8), 127);
  EXPECT_EQ(clip_signed(-200, 8), -128);
}

TEST(ClipUnsigned, FloorsAtZero) {
  EXPECT_EQ(clip_unsigned(-5, 8), 0);
  EXPECT_EQ(clip_unsigned(300, 8), 255);
  EXPECT_EQ(clip_unsigned(42, 8), 42);
}

TEST(QuantizeSigned, RoundTripWithinQuantum) {
  const std::vector<float> values = {0.5f, -0.25f, 0.125f, -0.6f};
  const Quantized q = quantize_signed(values, 8);
  const double scale = std::ldexp(1.0, q.scale_exp);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double recovered = q.tensor.flat(static_cast<std::int64_t>(i)) / scale;
    EXPECT_NEAR(recovered, values[i], 1.0 / scale + 1e-9) << i;
  }
}

TEST(QuantizeSigned, PeakMapsInsideRange) {
  const std::vector<float> values = {1.0f, -1.0f, 0.3f};
  const Quantized q = quantize_signed(values, 8);
  for (std::int64_t i = 0; i < q.tensor.elements(); ++i) {
    EXPECT_LE(needed_bits_signed(q.tensor.flat(i)), 8);
  }
  // The peak should use most of the range (within one power of two).
  int max_bits = 0;
  for (std::int64_t i = 0; i < q.tensor.elements(); ++i) {
    max_bits = std::max(max_bits, needed_bits_signed(q.tensor.flat(i)));
  }
  EXPECT_GE(max_bits, 7);
}

TEST(QuantizeSigned, AllZerosIsFine) {
  const std::vector<float> values = {0.0f, 0.0f};
  const Quantized q = quantize_signed(values, 8);
  EXPECT_EQ(q.tensor.flat(0), 0);
}

TEST(ClipMse, ZeroWhenEverythingFits) {
  nn::Tensor t(nn::Shape{3});
  t.set_flat(0, 3);
  t.set_flat(1, -4);
  t.set_flat(2, 7);
  EXPECT_EQ(clip_mse_signed(t, 4), 0.0);
  EXPECT_GT(clip_mse_signed(t, 3), 0.0);
}

TEST(Profiler, TightPrecisionMatchesMaxNeeded) {
  nn::SyntheticSpec spec{.precision = 9, .alpha = 1.0, .is_signed = true};
  const nn::Tensor t = nn::make_weight_tensor(4096, spec, 3, 1);
  EXPECT_EQ(tight_precision(t, true), 9);
}

TEST(Profiler, LosslessBudgetFindsTightPrecision) {
  nn::SyntheticSpec spec{.precision = 7, .alpha = 1.0, .is_signed = true};
  const nn::Tensor t = nn::make_weight_tensor(4096, spec, 5, 1);
  const int p = profile_precision(t, {.mse_budget = 0.0, .is_signed = true});
  EXPECT_EQ(p, tight_precision(t, true));
}

TEST(Profiler, BudgetMonotonicallyLowersPrecision) {
  nn::SyntheticSpec spec{.precision = 12, .alpha = 4.0, .is_signed = true};
  const nn::Tensor t = nn::make_weight_tensor(8192, spec, 7, 1);
  int prev = 17;
  for (const double budget : {0.0, 1e-6, 1e-4, 1e-2, 1.0}) {
    const int p = profile_precision(t, {.mse_budget = budget, .is_signed = true});
    EXPECT_LE(p, prev) << budget;
    prev = p;
  }
}

TEST(Profiler, UnsignedActivationsProfile) {
  nn::SyntheticSpec spec{.precision = 8, .alpha = 1.0, .is_signed = false};
  const nn::Tensor t =
      nn::make_activation_tensor(nn::Shape3{4, 16, 16}, spec, 9, 1);
  const int p = profile_precision(t, {.mse_budget = 0.0, .is_signed = false});
  EXPECT_EQ(p, 8);
}

}  // namespace
}  // namespace loom::quant
