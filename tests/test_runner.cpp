// End-to-end integration through the public API: the runner reproduces the
// paper's qualitative results on AlexNet within generous bands.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/loom.hpp"

namespace loom::core {
namespace {

/// The paper's §4.3 evaluation: activations on chip, weights
/// unconstrained. Roster sweeps default to the constrained §4.5 mode, so
/// the band-reproduction tests pin the mode explicitly.
RunnerOptions paper_opts() {
  RunnerOptions opts;
  opts.model_offchip = false;
  return opts;
}

TEST(Runner, RosterNamesFollowOptions) {
  RunnerOptions opts;
  opts.include_dstripes = true;
  ExperimentRunner runner(opts);
  const auto names = runner.roster_names();
  // Stripes, DStripes, LM1b, LM2b, LM4b, Laconic (term-serial rides last so
  // the historical indices stay put).
  ASSERT_EQ(names.size(), 6u);
  EXPECT_NE(names[0].find("Stripes"), std::string::npos);
  EXPECT_NE(names[1].find("DStripes"), std::string::npos);
  EXPECT_NE(names[2].find("LM1b"), std::string::npos);
  EXPECT_NE(names.back().find("Laconic"), std::string::npos);

  RunnerOptions no_laconic;
  no_laconic.include_laconic = false;
  EXPECT_EQ(ExperimentRunner(no_laconic).roster_names().size(), 4u);
}

TEST(Runner, AlexNetReproducesPaperBands) {
  ExperimentRunner runner(paper_opts());
  const sim::Comparison cmp = runner.compare({"alexnet"});
  const auto find = [&](const std::string& prefix, sim::RunResult::Filter f) {
    for (const auto& e : cmp.entries(f)) {
      if (e.arch.rfind(prefix, 0) == 0) return e;
    }
    ADD_FAILURE() << "missing " << prefix;
    return cmp.entries(f).front();
  };

  // Paper Table 2, AlexNet 100%: FCL LM1b 1.65, CVL LM1b 4.25,
  // CVL Stripes 2.34.
  const auto fc_lm1 = find("LM1b", sim::RunResult::Filter::kFc);
  EXPECT_NEAR(fc_lm1.perf, 1.65, 0.08);
  const auto cv_lm1 = find("LM1b", sim::RunResult::Filter::kConv);
  EXPECT_NEAR(cv_lm1.perf, 4.25, 0.35);
  const auto cv_st = find("Stripes", sim::RunResult::Filter::kConv);
  EXPECT_NEAR(cv_st.perf, 2.34, 0.15);

  // Orderings the paper reports: LM1b fastest on CVLs, the multi-bit
  // variants slower but (at 4b vs 1b) more energy-efficient; Stripes gains
  // nothing on FCLs.
  const auto cv_lm2 = find("LM2b", sim::RunResult::Filter::kConv);
  const auto cv_lm4 = find("LM4b", sim::RunResult::Filter::kConv);
  EXPECT_GT(cv_lm1.perf, cv_lm2.perf);
  EXPECT_GT(cv_lm2.perf, cv_lm4.perf);
  EXPECT_GT(cv_lm4.eff, cv_lm1.eff);
  const auto fc_st = find("Stripes", sim::RunResult::Filter::kFc);
  EXPECT_NEAR(fc_st.perf, 1.0, 0.02);
  EXPECT_LT(fc_st.eff, 1.0);
}

TEST(Runner, NinHasNoFcEntries) {
  ExperimentRunner runner;
  const sim::Comparison cmp = runner.compare({"nin"});
  EXPECT_TRUE(cmp.entries(sim::RunResult::Filter::kFc).empty());
  EXPECT_FALSE(cmp.entries(sim::RunResult::Filter::kConv).empty());
}

TEST(Runner, GeomeansAggregateAcrossNetworks) {
  ExperimentRunner runner;
  const sim::Comparison cmp = runner.compare({"alexnet", "nin"});
  const auto names = runner.roster_names();
  const auto g = cmp.geomeans(names.back(), sim::RunResult::Filter::kConv);
  EXPECT_GT(g.perf, 1.0);
  EXPECT_GT(g.eff, 1.0);
}

TEST(Runner, PerGroupModeBeatsProfileMode) {
  // §4.6 is a compute-time estimate: compare without memory stalls (a
  // bandwidth-bound layer hides compute gains under either mode).
  RunnerOptions base = paper_opts();
  base.loom_bits = {1};
  base.include_stripes = false;
  RunnerOptions grouped = base;
  grouped.per_group_weights = true;
  ExperimentRunner r_base(base);
  ExperimentRunner r_grouped(grouped);
  const auto cmp_base = r_base.compare({"alexnet"});
  const auto cmp_grouped = r_grouped.compare({"alexnet"});
  const auto all = sim::RunResult::Filter::kAll;
  EXPECT_GT(cmp_grouped.entries(all)[0].perf, cmp_base.entries(all)[0].perf);
}

TEST(Runner, RunSingleMatchesComparisonBaseline) {
  ExperimentRunner runner;
  const auto dpnn = runner.run_single("dpnn", "alexnet");
  const auto lm1 = runner.run_single("lm1b", "alexnet");
  EXPECT_GT(dpnn.cycles(sim::RunResult::Filter::kAll),
            lm1.cycles(sim::RunResult::Filter::kAll));
  EXPECT_THROW((void)runner.run_single("tpu", "alexnet"), ConfigError);
}

TEST(Runner, The99ProfileIsFasterThan100) {
  RunnerOptions o100 = paper_opts();
  o100.loom_bits = {1};
  o100.include_stripes = false;
  RunnerOptions o99 = o100;
  o99.target = quant::AccuracyTarget::k99;
  ExperimentRunner r100(o100);
  ExperimentRunner r99(o99);
  const auto all = sim::RunResult::Filter::kAll;
  const double p100 = r100.compare({"alexnet"}).entries(all)[0].perf;
  const double p99 = r99.compare({"alexnet"}).entries(all)[0].perf;
  EXPECT_GE(p99, p100);
}

TEST(Reports, FormattersProduceTables) {
  ExperimentRunner runner;
  const auto cmp = runner.compare({"alexnet"});
  const auto names = runner.roster_names();
  const std::string t2 = format_table2(cmp, names, "Test");
  EXPECT_NE(t2.find("FULLY-CONNECTED"), std::string::npos);
  EXPECT_NE(t2.find("CONVOLUTIONAL"), std::string::npos);
  EXPECT_NE(t2.find("alexnet"), std::string::npos);
  EXPECT_NE(t2.find("geomean"), std::string::npos);

  const std::string t1 = format_table1();
  EXPECT_NE(t1.find("9-8-5-5-7"), std::string::npos);  // AlexNet 100% acts

  const auto run = runner.run_single("lm1b", "alexnet");
  const std::string breakdown = format_layer_breakdown(run);
  EXPECT_NE(breakdown.find("conv1"), std::string::npos);
  EXPECT_NE(breakdown.find("fc8"), std::string::npos);
}

TEST(Runner, ConstrainedModeIsTheSweepDefault) {
  // Default roster sweeps model the §4.5 memory hierarchy: weights stream
  // from DRAM, so every run reports off-chip traffic; the unconstrained
  // mode reports none.
  RunnerOptions defaults;
  EXPECT_TRUE(defaults.model_offchip);

  ExperimentRunner constrained{RunnerOptions{}};
  const auto run = constrained.run_single("lm1b", "alexnet");
  EXPECT_GT(run.offchip_bits(), 0u);

  ExperimentRunner unconstrained(paper_opts());
  const auto free_run = unconstrained.run_single("lm1b", "alexnet");
  EXPECT_EQ(free_run.offchip_bits(), 0u);
  EXPECT_EQ(free_run.stall_cycles(), 0u);

  // Memory never changes compute: per-layer compute cycles agree exactly.
  ASSERT_EQ(run.layers.size(), free_run.layers.size());
  for (std::size_t i = 0; i < run.layers.size(); ++i) {
    EXPECT_EQ(run.layers[i].compute_cycles, free_run.layers[i].compute_cycles)
        << "layer " << i;
  }
}

TEST(Runner, CapacityOverridesReachTheSimulators) {
  // Starving the AM forces activation spills: traffic and stalls rise
  // versus the default sizing on the same network.
  RunnerOptions small;
  small.am_bytes = 64 << 10;
  small.wm_bytes = 128 << 10;
  ExperimentRunner starved(small);
  ExperimentRunner roomy{RunnerOptions{}};
  const auto starved_run = starved.run_single("lm1b", "alexnet");
  const auto roomy_run = roomy.run_single("lm1b", "alexnet");
  EXPECT_GT(starved_run.offchip_bits(), roomy_run.offchip_bits());
  EXPECT_GE(starved_run.stall_cycles(), roomy_run.stall_cycles());
}

TEST(Runner, CliFlagsMapToRunnerOptions) {
  const char* argv[] = {"prog",           "--equiv=256",
                        "--target=99",    "--model-offchip=false",
                        "--am-kb=512",    "--wm-kb=1024",
                        "--loom-bits=1,4", "--dstripes",
                        "--jobs=3",       "--seed=7"};
  const Options cli(10, argv);
  const RunnerOptions opts = runner_options_from_cli(cli);
  EXPECT_EQ(opts.equiv_macs, 256);
  EXPECT_EQ(opts.target, quant::AccuracyTarget::k99);
  EXPECT_FALSE(opts.model_offchip);
  EXPECT_EQ(opts.am_bytes, 512 * 1024);
  EXPECT_EQ(opts.wm_bytes, 1024 * 1024);
  ASSERT_EQ(opts.loom_bits.size(), 2u);
  EXPECT_EQ(opts.loom_bits[1], 4);
  EXPECT_TRUE(opts.include_dstripes);
  EXPECT_TRUE(opts.include_stripes);
  EXPECT_TRUE(opts.include_laconic);
  EXPECT_EQ(opts.jobs, 3);
  EXPECT_EQ(opts.seed, 7u);

  const char* trimmed[] = {"prog", "--no-laconic", "--no-stripes"};
  const RunnerOptions lean = runner_options_from_cli(Options(3, trimmed));
  EXPECT_FALSE(lean.include_laconic);
  EXPECT_FALSE(lean.include_stripes);

  // The historical --offchip spelling still works; defaults stay
  // constrained when neither flag is given.
  const char* legacy[] = {"prog", "--offchip=false"};
  EXPECT_FALSE(runner_options_from_cli(Options(2, legacy)).model_offchip);
  const char* none[] = {"prog"};
  EXPECT_TRUE(runner_options_from_cli(Options(1, none)).model_offchip);
}

TEST(Options, ParsesFlagsAndLists) {
  const char* argv[] = {"prog", "--equiv=256", "--offchip",
                        "--networks=alexnet,nin", "positional"};
  const Options opts(5, argv);
  EXPECT_EQ(opts.get_int("equiv", 128), 256);
  EXPECT_TRUE(opts.get_bool("offchip", false));
  EXPECT_EQ(opts.get_list("networks", {}).size(), 2u);
  EXPECT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 1.5), 1.5);
}

}  // namespace
}  // namespace loom::core
