// SIP-grid tile: the functional model of Figure 2b. A conv block must
// compute exactly what the golden model computes for every (row, column)
// output, with the cycle count the paper's model predicts.
#include <gtest/gtest.h>

#include <vector>

#include "arch/tile.hpp"
#include "common/rng.hpp"

namespace loom::arch {
namespace {

std::vector<Value> random_vec(SequentialRng& rng, std::size_t n, int bits,
                              bool is_signed) {
  std::vector<Value> out(n);
  for (auto& v : out) {
    if (is_signed) {
      const std::int64_t range = std::int64_t{1} << bits;
      v = static_cast<Value>(
          static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(range))) -
          (range >> 1));
    } else {
      v = static_cast<Value>(rng.next_below(std::uint64_t{1} << bits));
    }
  }
  return out;
}

Wide dot(const std::vector<Value>& a, const std::vector<Value>& b) {
  Wide acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += Wide{a[i]} * b[i];
  return acc;
}

TEST(SipTile, TwoByTwoExampleFromPaper) {
  // Section 2's example engine: 2x2 subunits, 2 lanes, 2-bit data.
  SipTile tile(TileConfig{.rows = 2, .cols = 2, .lanes = 2});
  const std::vector<std::vector<Value>> acts = {{1, 2}, {3, 1}};
  const std::vector<std::vector<Value>> weights = {{1, 1}, {1, -2}};
  const auto result = tile.conv_block(acts, weights, /*pa=*/2, /*pw=*/2);
  EXPECT_EQ(result.outputs[0 * 2 + 0], dot(weights[0], acts[0]));
  EXPECT_EQ(result.outputs[0 * 2 + 1], dot(weights[0], acts[1]));
  EXPECT_EQ(result.outputs[1 * 2 + 0], dot(weights[1], acts[0]));
  EXPECT_EQ(result.outputs[1 * 2 + 1], dot(weights[1], acts[1]));
  // One chunk of 2 lanes: pa x pw cycles.
  EXPECT_EQ(result.cycles, 4u);
}

TEST(SipTile, MultiChunkLengths) {
  SipTile tile(TileConfig{.rows = 3, .cols = 2, .lanes = 4});
  SequentialRng rng(77);
  const std::size_t length = 11;  // 3 chunks of 4 lanes (last partial)
  std::vector<std::vector<Value>> acts(2), weights(3);
  for (auto& a : acts) a = random_vec(rng, length, 6, false);
  for (auto& w : weights) w = random_vec(rng, length, 5, true);
  const auto result = tile.conv_block(acts, weights, 7, 6);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(result.outputs[static_cast<std::size_t>(r) * 2 + c],
                dot(weights[static_cast<std::size_t>(r)],
                    acts[static_cast<std::size_t>(c)]))
          << r << "," << c;
    }
  }
  EXPECT_EQ(result.cycles, 3u * 7 * 6);
}

TEST(SipTile, PartialGridUse) {
  SipTile tile(TileConfig{.rows = 8, .cols = 8, .lanes = 16});
  SequentialRng rng(99);
  std::vector<std::vector<Value>> acts(3), weights(5);
  for (auto& a : acts) a = random_vec(rng, 16, 8, false);
  for (auto& w : weights) w = random_vec(rng, 16, 7, true);
  const auto result = tile.conv_block(acts, weights, 8, 8);
  for (std::size_t r = 0; r < weights.size(); ++r) {
    for (std::size_t c = 0; c < acts.size(); ++c) {
      EXPECT_EQ(result.outputs[r * 8 + c], dot(weights[r], acts[c]));
    }
  }
}

TEST(SipTile, SixteenBitWorstCase) {
  // With 16b/16b data the tile must still be exact (256 cycles per chunk).
  SipTile tile(TileConfig{.rows = 2, .cols = 1, .lanes = 4});
  SequentialRng rng(123);
  std::vector<std::vector<Value>> acts = {random_vec(rng, 4, 15, false)};
  std::vector<std::vector<Value>> weights = {random_vec(rng, 4, 15, true),
                                             random_vec(rng, 4, 15, true)};
  const auto result = tile.conv_block(acts, weights, 16, 16);
  EXPECT_EQ(result.outputs[0], dot(weights[0], acts[0]));
  EXPECT_EQ(result.outputs[1], dot(weights[1], acts[0]));
  EXPECT_EQ(result.cycles, 256u);
}

TEST(SipTile, CascadeReduceSumsGroups) {
  SipTile tile(TileConfig{.rows = 1, .cols = 4, .lanes = 4});
  const std::vector<Wide> partials = {1, 2, 3, 4};
  const auto reduced = tile.cascade_reduce(partials, 2);
  EXPECT_EQ(reduced.reduced, (std::vector<Wide>{3, 7}));
  EXPECT_EQ(reduced.cycles, 1u);
}

TEST(SipTile, CascadeWaysOneIsIdentity) {
  SipTile tile(TileConfig{});
  const std::vector<Wide> partials = {5, -3};
  const auto reduced = tile.cascade_reduce(partials, 1);
  EXPECT_EQ(reduced.reduced, partials);
  EXPECT_EQ(reduced.cycles, 0u);
}

TEST(SipTile, CascadeEquivalentToSlicedInnerProduct) {
  // Slicing an inner product across 2 SIPs and cascading equals computing
  // it whole — the §3.2 claim behind the few-outputs mode.
  SequentialRng rng(321);
  const auto a = random_vec(rng, 32, 7, false);
  const auto w = random_vec(rng, 32, 6, true);
  SipTile tile(TileConfig{.rows = 1, .cols = 2, .lanes = 16});
  const std::vector<std::vector<Value>> acts = {
      {a.begin(), a.begin() + 16}, {a.begin() + 16, a.end()}};
  // Column c gets weight slice c via the per-row weights: emulate by
  // running two single-column blocks.
  SipTile half(TileConfig{.rows = 1, .cols = 1, .lanes = 16});
  const auto p0 = half.conv_block({{a.begin(), a.begin() + 16}},
                                  {{w.begin(), w.begin() + 16}}, 7, 7);
  const auto p1 = half.conv_block({{a.begin() + 16, a.end()}},
                                  {{w.begin() + 16, w.end()}}, 7, 7);
  const auto reduced = tile.cascade_reduce({p0.outputs[0], p1.outputs[0]}, 2);
  EXPECT_EQ(reduced.reduced[0], dot(w, a));
}

}  // namespace
}  // namespace loom::arch
