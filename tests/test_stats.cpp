#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace loom {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, Basic) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Geomean, MatchesPaperStyleAggregation) {
  const std::array<double, 2> xs = {2.0, 8.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 4.0);
}

TEST(Geomean, RejectsNonPositive) {
  const std::array<double, 2> xs = {1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), ContractViolation);
}

TEST(Geomean, EmptyIsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(WeightedMean, WeightsApply) {
  const std::array<double, 2> xs = {10.0, 20.0};
  const std::array<double, 2> ws = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 17.5);
}

TEST(WeightedMean, SizeMismatchThrows) {
  const std::array<double, 2> xs = {1.0, 2.0};
  const std::array<double, 1> ws = {1.0};
  EXPECT_THROW((void)weighted_mean(xs, ws), ContractViolation);
}

TEST(Stddev, KnownValue) {
  const std::array<double, 4> xs = {2.0, 4.0, 4.0, 6.0};
  EXPECT_NEAR(stddev(xs), 1.63299, 1e-4);
}

TEST(Stddev, DegenerateIsZero) {
  const std::array<double, 1> xs = {5.0};
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Accumulator, TracksMinMaxMean) {
  Accumulator acc;
  for (const double x : {3.0, 1.0, 2.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Accumulator, MergeEquivalentToSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.5 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

TEST(IntHistogram, MeanAndCounts) {
  IntHistogram h(17);
  h.add(4, 3);
  h.add(8, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(4), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(IntHistogram, OutOfRangeThrows) {
  IntHistogram h(4);
  EXPECT_THROW(h.add(4), ContractViolation);
  EXPECT_THROW(h.add(-1), ContractViolation);
  EXPECT_THROW((void)h.count(9), ContractViolation);
}

TEST(IntHistogram, EmptyMeanIsZero) {
  IntHistogram h(4);
  EXPECT_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace loom
