#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace loom {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, Basic) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Geomean, MatchesPaperStyleAggregation) {
  const std::array<double, 2> xs = {2.0, 8.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 4.0);
}

TEST(Geomean, RejectsNonPositive) {
  const std::array<double, 2> xs = {1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), ContractViolation);
}

TEST(Geomean, EmptyIsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(WeightedMean, WeightsApply) {
  const std::array<double, 2> xs = {10.0, 20.0};
  const std::array<double, 2> ws = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 17.5);
}

TEST(WeightedMean, SizeMismatchThrows) {
  const std::array<double, 2> xs = {1.0, 2.0};
  const std::array<double, 1> ws = {1.0};
  EXPECT_THROW((void)weighted_mean(xs, ws), ContractViolation);
}

TEST(Stddev, KnownValue) {
  const std::array<double, 4> xs = {2.0, 4.0, 4.0, 6.0};
  EXPECT_NEAR(stddev(xs), 1.63299, 1e-4);
}

TEST(Stddev, DegenerateIsZero) {
  const std::array<double, 1> xs = {5.0};
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Accumulator, TracksMinMaxMean) {
  Accumulator acc;
  for (const double x : {3.0, 1.0, 2.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Accumulator, MergeEquivalentToSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.5 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

TEST(IntHistogram, MeanAndCounts) {
  IntHistogram h(17);
  h.add(4, 3);
  h.add(8, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(4), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(IntHistogram, OutOfRangeThrows) {
  IntHistogram h(4);
  EXPECT_THROW(h.add(4), ContractViolation);
  EXPECT_THROW(h.add(-1), ContractViolation);
  EXPECT_THROW((void)h.count(9), ContractViolation);
}

TEST(IntHistogram, EmptyMeanIsZero) {
  IntHistogram h(4);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogram, BucketOfIsMonotoneAndExactForSmallValues) {
  // Values below 2^kSubBits get exact one-value buckets.
  for (std::uint64_t v = 0; v < (1u << LatencyHistogram::kSubBits); ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
  }
  // Bucket index never decreases as the sample grows, and every octave
  // splits into 2^kSubBits sub-buckets.
  std::size_t prev = 0;
  for (const std::uint64_t v :
       {4ull, 5ull, 7ull, 8ull, 100ull, 1000ull, 1ull << 20, 1ull << 40,
        ~0ull}) {
    const std::size_t b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev) << "sample " << v;
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
  // Within one octave the sub-bucket is picked by the bits below the MSB:
  // 8..9 share a bucket, 10..11 the next, at kSubBits=2.
  EXPECT_EQ(LatencyHistogram::bucket_of(8), LatencyHistogram::bucket_of(9));
  EXPECT_NE(LatencyHistogram::bucket_of(9), LatencyHistogram::bucket_of(10));
}

TEST(LatencyHistogram, TracksCountMinMaxMeanExactly) {
  LatencyHistogram h;
  for (const std::uint64_t v : {100u, 300u, 200u, 900u}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 900u);
  EXPECT_DOUBLE_EQ(h.mean(), 375.0);
}

TEST(LatencyHistogram, QuantilesWithinRelativeErrorBound) {
  // With kSubBits sub-buckets per octave the bucket width is at most
  // 2^-kSubBits of the value, so any quantile is within ~12.5% relative
  // error of the true order statistic.
  LatencyHistogram h;
  constexpr int kN = 10000;
  for (int i = 1; i <= kN; ++i) h.add(static_cast<std::uint64_t>(i));
  const double rel = 1.0 / (1u << LatencyHistogram::kSubBits) / 2.0;
  EXPECT_NEAR(h.p50(), kN * 0.50, kN * 0.50 * rel);
  EXPECT_NEAR(h.p99(), kN * 0.99, kN * 0.99 * rel);
  EXPECT_NEAR(h.quantile(0.10), kN * 0.10, kN * 0.10 * rel);
  // Quantiles clamp to the observed extremes and are monotone in q.
  EXPECT_GE(h.quantile(0.0), static_cast<double>(h.min()));
  EXPECT_LE(h.quantile(1.0), static_cast<double>(h.max()));
  EXPECT_LE(h.p50(), h.p99());
}

TEST(LatencyHistogram, SingleSampleQuantilesClampToIt) {
  LatencyHistogram h;
  h.add(777);
  EXPECT_EQ(h.p50(), 777.0);
  EXPECT_EQ(h.p99(), 777.0);
  EXPECT_EQ(h.quantile(0.0), 777.0);
  EXPECT_EQ(h.quantile(1.0), 777.0);
}

TEST(LatencyHistogram, MergeEquivalentToSequential) {
  LatencyHistogram a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint64_t>(i * i + 1);
    (i % 3 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.p50(), all.p50());
  EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(LatencyHistogram, MergeWithEmpty) {
  LatencyHistogram a, empty;
  a.add(42);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42u);
  EXPECT_EQ(empty.max(), 42u);
}

}  // namespace
}  // namespace loom
