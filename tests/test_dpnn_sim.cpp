// DPNN cycle model: hand-computed counts for the DaDianNao-style baseline.
#include <gtest/gtest.h>

#include "sim/dpnn_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

quant::PrecisionProfile profile_two_conv_one_fc() {
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {8, 6};
  p.conv_weight = 10;
  p.fc_weight = {9};
  return p;
}

NetworkWorkload make_workload(int co1 = 32) {
  nn::Network net("custom", nn::Shape3{8, 16, 16});
  net.add_conv("c1", co1, 3, 1, 1).precision_group = 0;
  net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
  net.add_fc("f1", 100);
  const auto profile = profile_two_conv_one_fc();
  quant::apply_profile(net, profile);
  return NetworkWorkload(std::move(net), profile);
}

TEST(DpnnSim, ConvCyclesByHand) {
  NetworkWorkload wl = make_workload();
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  // c1: 256 windows x ceil(72/16)=5 chunks x ceil(32/8)=4 blocks (+6 fill).
  EXPECT_EQ(r.layers[0].compute_cycles, 256u * 5 * 4 + 6);
  // c2: in 32x16x16, 256 windows x ceil(288/16)=18 x ceil(16/8)=2.
  EXPECT_EQ(r.layers[1].compute_cycles, 256u * 18 * 2 + 6);
  // f1: in 16*16*16=4096 -> ceil(4096/16)=256 x ceil(100/8)=13.
  EXPECT_EQ(r.layers[2].compute_cycles, 256u * 13 + 6);
}

TEST(DpnnSim, UtilizationReflectsPadding) {
  NetworkWorkload wl = make_workload();
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  // c1 is fully divisible: 72 is not a multiple of 16, so lanes idle in the
  // 5th chunk: utilization = 72/80.
  EXPECT_NEAR(r.layers[0].utilization, 72.0 / 80.0, 0.01);
  EXPECT_LE(r.layers[2].utilization, 1.0);
}

TEST(DpnnSim, GroupedConvProcessesGroupsIndependently) {
  nn::Network net("custom", nn::Shape3{8, 8, 8});
  net.add_conv("g", 16, 3, 1, 1, /*groups=*/2).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {8};
  p.conv_weight = 10;
  quant::apply_profile(net, p);
  NetworkWorkload wl(std::move(net), p);
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  // Per group: inner = 4*9=36 -> 3 chunks; cog=8 -> 1 block; 2 groups.
  EXPECT_EQ(r.layers[0].compute_cycles, 64u * 3 * 2 + 6);
}

TEST(DpnnSim, EquivalentMacsScaleFilters) {
  NetworkWorkload wl = make_workload(/*co1=*/128);
  arch::DpnnConfig big;
  big.equiv_macs = 256;  // 16 filters per cycle
  DpnnSimulator sim128(arch::DpnnConfig{}, SimOptions{});
  DpnnSimulator sim256(big, SimOptions{});
  const auto r128 = sim128.run(wl);
  const auto r256 = sim256.run(wl);
  // c1 filter blocks halve: 128/8=16 vs 128/16=8.
  EXPECT_NEAR(static_cast<double>(r128.layers[0].compute_cycles),
              2.0 * static_cast<double>(r256.layers[0].compute_cycles), 16.0);
}

TEST(DpnnSim, MacsMatchLayerWork) {
  NetworkWorkload wl = make_workload();
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  for (const auto& l : r.layers) {
    EXPECT_EQ(l.activity.mac_ops, static_cast<std::uint64_t>(l.macs));
  }
  EXPECT_EQ(r.macs(RunResult::Filter::kAll),
            wl.network().total_macs());
}

TEST(DpnnSim, OffchipStallsOnWeightHeavyFc) {
  // A fat FC is DRAM-bound: 4096x4096 16-bit weights over one LPDDR4
  // channel takes far longer than the compute.
  nn::Network net("custom", nn::Shape3{4096, 1, 1});
  net.add_fc("fat", 4096);
  quant::PrecisionProfile p;
  p.network = "custom";
  p.fc_weight = {16};
  quant::apply_profile(net, p);
  NetworkWorkload wl(std::move(net), p);

  SimOptions offchip;
  offchip.model_offchip = true;
  DpnnSimulator sim(arch::DpnnConfig{}, offchip);
  RunResult r = sim.run(wl);
  EXPECT_GT(r.layers[0].stall_cycles, r.layers[0].compute_cycles);
  EXPECT_GT(r.layers[0].activity.dram_read_bits,
            static_cast<std::uint64_t>(4096) * 4096 * 16 - 1);
}

TEST(DpnnSim, NoOffchipTrafficInUnconstrainedMode) {
  NetworkWorkload wl = make_workload();
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_EQ(r.offchip_bits(), 0u);
  for (const auto& l : r.layers) EXPECT_EQ(l.stall_cycles, 0u);
}

TEST(DpnnSim, PoolingLayersAreFree) {
  nn::Network net("custom", nn::Shape3{4, 8, 8});
  net.add_conv("c", 8, 3, 1, 1).precision_group = 0;
  net.add_pool("p", nn::PoolKind::kMax, 2, 2);
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {8};
  p.conv_weight = 10;
  quant::apply_profile(net, p);
  NetworkWorkload wl(std::move(net), p);
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_EQ(r.layers.size(), 1u);  // pool layers are not simulated
}

}  // namespace
}  // namespace loom::sim
