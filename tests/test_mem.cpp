#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mem/bitpacked.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"

namespace loom::mem {
namespace {

TEST(Packed, PackedSmallerThanParallel) {
  // 2048 13-bit weights: the §3.2 example. Packed = 13 rows of 2048 bits.
  EXPECT_EQ(packed_bits(2048, 13), 13 * 2048);
  EXPECT_EQ(parallel_bits(2048), 16 * 2048);
  EXPECT_GT(compression_ratio(2048, 13), 1.2);
}

TEST(Packed, SixteenBitsHasNoBenefit) {
  EXPECT_DOUBLE_EQ(compression_ratio(1 << 20, 16), 1.0);
}

TEST(Packed, RowPaddingAccounted) {
  // 100 values at 5 bits on a 2048-bit interface: one row per plane.
  EXPECT_EQ(packed_bits(100, 5), 5 * 2048);
}

TEST(Packed, InvalidArgsThrow) {
  EXPECT_THROW((void)packed_bits(10, 0), ContractViolation);
  EXPECT_THROW((void)packed_bits(-1, 8), ContractViolation);
}

TEST(Dram, PeakBandwidthMath) {
  DramChannel ch(DramConfig{.peak_gbps = 17.066, .efficiency = 1.0});
  EXPECT_NEAR(ch.bytes_per_cycle(), 17.066, 1e-9);
  // 17066 bytes at ~17 B/cycle -> ~1000 cycles.
  const auto cycles = ch.cycles_for_bits(17066 * 8);
  EXPECT_NEAR(static_cast<double>(cycles), 1000.0, 5.0);
}

TEST(Dram, EfficiencyScalesCycles) {
  DramChannel full(DramConfig{.efficiency = 1.0});
  DramChannel half(DramConfig{.efficiency = 0.5});
  const std::uint64_t bits = 1 << 20;
  EXPECT_NEAR(static_cast<double>(half.cycles_for_bits(bits)),
              2.0 * static_cast<double>(full.cycles_for_bits(bits)), 2.0);
}

TEST(Dram, BurstGranularityRoundsUp) {
  DramChannel ch(DramConfig{.peak_gbps = 8.0, .efficiency = 1.0,
                            .burst_bytes = 64});
  // 1 bit still costs a whole 64-byte burst.
  EXPECT_EQ(ch.cycles_for_bits(1), ch.cycles_for_bits(64 * 8));
  EXPECT_EQ(ch.cycles_for_bits(0), 0u);
}

TEST(Dram, InvalidConfigThrows) {
  EXPECT_THROW(DramChannel(DramConfig{.peak_gbps = -1.0}), ContractViolation);
  EXPECT_THROW(DramChannel(DramConfig{.efficiency = 0.0}), ContractViolation);
}

TEST(DefaultMemory, PaperSizing) {
  // §4.5: DPNN needs 2 MB of AM; Loom's packed storage needs 1 MB.
  const auto dpnn = default_memory_config(128, /*bit_packed=*/false);
  const auto lm = default_memory_config(128, /*bit_packed=*/true);
  EXPECT_EQ(dpnn.am_bytes, 2 << 20);
  EXPECT_EQ(lm.am_bytes, 1 << 20);
  // Figure 5 weight-memory labels: 512 KB at E=32 ... 8 MB at E=512.
  EXPECT_EQ(default_memory_config(32, true).wm_bytes, 512 << 10);
  EXPECT_EQ(default_memory_config(128, true).wm_bytes, 2 << 20);
  EXPECT_EQ(default_memory_config(512, true).wm_bytes, 8 << 20);
}

TEST(MemorySystem, FitsAndTraffic) {
  MemorySystemConfig cfg = default_memory_config(128, true);
  MemorySystem mem(cfg);
  EXPECT_TRUE(mem.activations_fit(cfg.am_bytes * 8));
  EXPECT_FALSE(mem.activations_fit(cfg.am_bytes * 8 + 1));

  const auto cycles = mem.offchip_read(1 << 20);
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(mem.offchip_traffic().read_bits, 1u << 20);
  mem.offchip_write(100);
  EXPECT_EQ(mem.offchip_traffic().write_bits, 100u);
}

TEST(Buffers, CountersAccumulate) {
  SramBuffer buf("ABin", 8192 * 8, 256);
  buf.read(256);
  buf.read(256);
  buf.write(100);
  EXPECT_EQ(buf.traffic().read_bits, 512u);
  EXPECT_EQ(buf.traffic().read_ops, 2u);
  EXPECT_EQ(buf.traffic().write_bits, 100u);
  buf.reset();
  EXPECT_EQ(buf.traffic().total_bits(), 0u);
}

TEST(Edram, CapacityCheck) {
  EdramArray am("AM", 1 << 23, 256);
  EXPECT_TRUE(am.fits(1 << 23));
  EXPECT_FALSE(am.fits((1 << 23) + 1));
}

TEST(Traffic, MergeCombines) {
  TrafficCounters a, b;
  a.add_read(10);
  b.add_write(20);
  a.merge(b);
  EXPECT_EQ(a.total_bits(), 30u);
  EXPECT_EQ(a.write_ops, 1u);
}

}  // namespace
}  // namespace loom::mem
