#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/serializer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mem/bitpacked.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"

namespace loom::mem {
namespace {

// ---- Naive per-element references for the footprint math ------------------

std::int64_t naive_packed_bits(std::int64_t count, int precision,
                               int row_bits) {
  // Walk the bit-plane layout value by value: each plane fills rows of
  // row_bits, a new row starting whenever the previous is full.
  std::int64_t rows = 0;
  std::int64_t used = row_bits;  // forces a first row on the first value
  for (std::int64_t i = 0; i < count; ++i) {
    if (used == row_bits) {
      ++rows;
      used = 0;
    }
    ++used;
  }
  return rows * row_bits * precision;
}

std::int64_t naive_parallel_bits(std::int64_t count, int row_bits) {
  const std::int64_t per_row = row_bits / kBasePrecision;
  std::int64_t rows = 0;
  std::int64_t used = per_row;
  for (std::int64_t i = 0; i < count; ++i) {
    if (used == per_row) {
      ++rows;
      used = 0;
    }
    ++used;
  }
  return rows * row_bits;
}

TEST(Packed, PackedSmallerThanParallel) {
  // 2048 13-bit weights: the §3.2 example. Packed = 13 rows of 2048 bits.
  EXPECT_EQ(packed_bits(2048, 13), 13 * 2048);
  EXPECT_EQ(parallel_bits(2048), 16 * 2048);
  EXPECT_GT(compression_ratio(2048, 13), 1.2);
}

TEST(Packed, SixteenBitsHasNoBenefit) {
  EXPECT_DOUBLE_EQ(compression_ratio(1 << 20, 16), 1.0);
}

TEST(Packed, RowPaddingAccounted) {
  // 100 values at 5 bits on a 2048-bit interface: one row per plane.
  EXPECT_EQ(packed_bits(100, 5), 5 * 2048);
}

TEST(Packed, InvalidArgsThrow) {
  EXPECT_THROW((void)packed_bits(10, 0), ContractViolation);
  EXPECT_THROW((void)packed_bits(-1, 8), ContractViolation);
}

TEST(Packed, BruteForceFootprintMatchesNaiveReference) {
  // Property sweep: the closed-form row arithmetic equals a per-element
  // walk of the layout for every (count, precision, row width).
  SequentialRng rng(7);
  for (int it = 0; it < 400; ++it) {
    const auto count = static_cast<std::int64_t>(rng.next_below(5000));
    const int precision = 1 + static_cast<int>(rng.next_below(16));
    const int row_bits = 1 << (6 + rng.next_below(6));  // 64 .. 2048
    EXPECT_EQ(packed_bits(count, precision, row_bits),
              naive_packed_bits(count, precision, row_bits))
        << count << "x" << precision << " rows " << row_bits;
    EXPECT_EQ(parallel_bits(count, row_bits),
              naive_parallel_bits(count, row_bits))
        << count << " rows " << row_bits;
    // On row-aligned counts the packed layout saves exactly the trimmed
    // planes relative to the 16-bit layout.
    const std::int64_t aligned = ceil_div(std::max<std::int64_t>(count, 1),
                                          row_bits) * row_bits;
    EXPECT_EQ(packed_bits(aligned, precision, row_bits) * 16,
              parallel_bits(aligned, row_bits) * precision);
  }
}

TEST(Packed, FootprintPricesTheRealBitplaneLayoutRoundTrip) {
  // Brute-force tie between the accounting and the packing the simulators
  // actually model: arch::serialize's plane-major words occupy exactly
  // packed_bits(count, precision, row_bits=64) bits — and the layout
  // round-trips losslessly, signed and unsigned, across precisions and
  // ragged (non-multiple-of-64) counts.
  SequentialRng rng(11);
  for (int it = 0; it < 200; ++it) {
    const auto count = 1 + static_cast<std::int64_t>(rng.next_below(300));
    const int precision = 1 + static_cast<int>(rng.next_below(16));
    const bool is_signed = rng.next_below(2) != 0;
    std::vector<Value> values(static_cast<std::size_t>(count));
    const std::int64_t lo = is_signed ? -(std::int64_t{1} << (precision - 1)) : 0;
    const std::int64_t hi = is_signed ? (std::int64_t{1} << (precision - 1)) - 1
                                      : (std::int64_t{1} << precision) - 1;
    for (auto& v : values) {
      v = static_cast<Value>(
          lo + static_cast<std::int64_t>(rng.next_below(
                   static_cast<std::uint64_t>(hi - lo + 1))));
    }
    const arch::BitPlanes planes = arch::serialize(values, precision);
    EXPECT_EQ(static_cast<std::int64_t>(planes.words().size()) * 64,
              packed_bits(count, precision, /*row_bits=*/64));
    const auto back = arch::deserialize(planes, is_signed);
    ASSERT_EQ(back.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(back[i], values[i])
          << "i=" << i << " precision=" << precision << " signed=" << is_signed;
    }
  }
}

TEST(Packed, FootprintBitplaneEdgeCases) {
  // Word boundaries and two's-complement extremes through the same tie.
  std::vector<Value> values(128, 0);
  values[0] = -1;                 // all ones in two's complement
  values[63] = 1;                 // word boundary
  values[64] = Value{0x7f};       // next word
  values[127] = Value{-128};
  const arch::BitPlanes planes = arch::serialize(values, 8);
  EXPECT_EQ(planes.words().size(), 8u * 2u);  // 8 planes x 2 words
  EXPECT_EQ(static_cast<std::int64_t>(planes.words().size()) * 64,
            packed_bits(128, 8, /*row_bits=*/64));
  const auto back = arch::deserialize(planes, true);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << i;
  }
}

TEST(MemorySystem, FootprintMathMatchesNaiveAccounting) {
  // activations_fit against a per-element reckoning of packed vs unpacked
  // layer footprints around the capacity boundary.
  SequentialRng rng(13);
  for (int it = 0; it < 100; ++it) {
    MemorySystemConfig cfg;
    cfg.am_bytes = 1 << (10 + rng.next_below(10));
    MemorySystem mem(cfg);
    const std::int64_t capacity_bits = cfg.am_bytes * 8;
    const auto elements = static_cast<std::int64_t>(rng.next_below(20000));
    const int in_prec = 1 + static_cast<int>(rng.next_below(16));
    // Naive reference: every element spends exactly its storage precision.
    std::int64_t naive = 0;
    for (std::int64_t e = 0; e < elements; ++e) naive += in_prec;
    EXPECT_EQ(naive, elements * in_prec);
    EXPECT_EQ(mem.activations_fit(naive), naive <= capacity_bits);
    // Packed always fits wherever unpacked fits.
    if (mem.activations_fit(elements * kBasePrecision)) {
      EXPECT_TRUE(mem.activations_fit(elements * in_prec));
    }
  }
}

TEST(Dram, PeakBandwidthMath) {
  DramChannel ch(DramConfig{.peak_gbps = 17.066, .efficiency = 1.0});
  EXPECT_NEAR(ch.bytes_per_cycle(), 17.066, 1e-9);
  // 17066 bytes at ~17 B/cycle -> ~1000 cycles.
  const auto cycles = ch.cycles_for_bits(17066 * 8);
  EXPECT_NEAR(static_cast<double>(cycles), 1000.0, 5.0);
}

TEST(Dram, EfficiencyScalesCycles) {
  DramChannel full(DramConfig{.efficiency = 1.0});
  DramChannel half(DramConfig{.efficiency = 0.5});
  const std::uint64_t bits = 1 << 20;
  EXPECT_NEAR(static_cast<double>(half.cycles_for_bits(bits)),
              2.0 * static_cast<double>(full.cycles_for_bits(bits)), 2.0);
}

TEST(Dram, BurstGranularityRoundsUp) {
  DramChannel ch(DramConfig{.peak_gbps = 8.0, .efficiency = 1.0,
                            .burst_bytes = 64});
  // 1 bit still costs a whole 64-byte burst.
  EXPECT_EQ(ch.cycles_for_bits(1), ch.cycles_for_bits(64 * 8));
  EXPECT_EQ(ch.cycles_for_bits(0), 0u);
}

TEST(Dram, InvalidConfigThrows) {
  EXPECT_THROW(DramChannel(DramConfig{.peak_gbps = -1.0}), ContractViolation);
  EXPECT_THROW(DramChannel(DramConfig{.efficiency = 0.0}), ContractViolation);
}

TEST(DefaultMemory, PaperSizing) {
  // §4.5: DPNN needs 2 MB of AM; Loom's packed storage needs 1 MB.
  const auto dpnn = default_memory_config(128, /*bit_packed=*/false);
  const auto lm = default_memory_config(128, /*bit_packed=*/true);
  EXPECT_EQ(dpnn.am_bytes, 2 << 20);
  EXPECT_EQ(lm.am_bytes, 1 << 20);
  // Figure 5 weight-memory labels: 512 KB at E=32 ... 8 MB at E=512.
  EXPECT_EQ(default_memory_config(32, true).wm_bytes, 512 << 10);
  EXPECT_EQ(default_memory_config(128, true).wm_bytes, 2 << 20);
  EXPECT_EQ(default_memory_config(512, true).wm_bytes, 8 << 20);
}

TEST(MemorySystem, FitsAndTraffic) {
  MemorySystemConfig cfg = default_memory_config(128, true);
  MemorySystem mem(cfg);
  EXPECT_TRUE(mem.activations_fit(cfg.am_bytes * 8));
  EXPECT_FALSE(mem.activations_fit(cfg.am_bytes * 8 + 1));

  const auto cycles = mem.offchip_read(1 << 20);
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(mem.offchip_traffic().read_bits, 1u << 20);
  mem.offchip_write(100);
  EXPECT_EQ(mem.offchip_traffic().write_bits, 100u);
}

TEST(Buffers, CountersAccumulate) {
  SramBuffer buf("ABin", 8192 * 8, 256);
  buf.read(256);
  buf.read(256);
  buf.write(100);
  EXPECT_EQ(buf.traffic().read_bits, 512u);
  EXPECT_EQ(buf.traffic().read_ops, 2u);
  EXPECT_EQ(buf.traffic().write_bits, 100u);
  buf.reset();
  EXPECT_EQ(buf.traffic().total_bits(), 0u);
}

TEST(Edram, CapacityCheck) {
  EdramArray am("AM", 1 << 23, 256);
  EXPECT_TRUE(am.fits(1 << 23));
  EXPECT_FALSE(am.fits((1 << 23) + 1));
}

TEST(Traffic, MergeCombines) {
  TrafficCounters a, b;
  a.add_read(10);
  b.add_write(20);
  a.merge(b);
  EXPECT_EQ(a.total_bits(), 30u);
  EXPECT_EQ(a.write_ops, 1u);
}

}  // namespace
}  // namespace loom::mem
