// The central datapath claim: a SIP computing bit-serially over Pa x Pw
// cycles produces exactly the inner product the bit-parallel reference
// computes. Swept over all precision combinations and operand signednesses.
#include <gtest/gtest.h>

#include <vector>

#include "arch/sip.hpp"
#include "common/rng.hpp"

namespace loom::arch {
namespace {

Wide reference_dot(const std::vector<Value>& a, const std::vector<Value>& w) {
  Wide acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<Wide>(a[i]) * static_cast<Wide>(w[i]);
  }
  return acc;
}

std::vector<Value> random_values(SequentialRng& rng, int n, int bits,
                                 bool is_signed) {
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (auto& v : out) {
    if (is_signed) {
      const std::int64_t range = (std::int64_t{1} << bits);  // [-2^(b-1), 2^(b-1))
      v = static_cast<Value>(static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(range))) -
          (range >> 1));
    } else {
      v = static_cast<Value>(rng.next_below(std::uint64_t{1} << bits));
    }
  }
  return out;
}

TEST(Sip, SingleLaneMinimalPrecisions) {
  Sip sip(SipConfig{.lanes = 1, .act_signed = false, .weight_signed = true});
  // +1 needs two signed bits (sign + magnitude).
  const std::vector<Value> a = {1};
  const std::vector<Value> w_pos = {1};
  EXPECT_EQ(sip_inner_product(sip, a, w_pos, 1, 2), 1);
  // -1 is the one value expressible in a single signed bit.
  const std::vector<Value> w_neg = {-1};
  EXPECT_EQ(sip_inner_product(sip, a, w_neg, 1, 1), -1);
}

TEST(Sip, NegativeWeightMsbNegation) {
  Sip sip(SipConfig{.lanes = 2});
  const std::vector<Value> a = {3, 5};
  const std::vector<Value> w = {-2, 4};  // needs 4 bits signed
  EXPECT_EQ(sip_inner_product(sip, a, w, 3, 4), 3 * -2 + 5 * 4);
}

TEST(Sip, AllZeros) {
  Sip sip(SipConfig{});
  const std::vector<Value> a(16, 0);
  const std::vector<Value> w(16, 0);
  EXPECT_EQ(sip_inner_product(sip, a, w, 1, 1), 0);
}

TEST(Sip, ExtremeValuesAtFullPrecision) {
  Sip sip(SipConfig{.lanes = 2, .act_signed = true});
  const std::vector<Value> a = {32767, -32768};
  const std::vector<Value> w = {-32768, 32767};
  EXPECT_EQ(sip_inner_product(sip, a, w, 16, 16),
            Wide{32767} * -32768 + Wide{-32768} * 32767);
}

TEST(Sip, CyclesEqualPaTimesPw) {
  Sip sip(SipConfig{});
  const std::vector<Value> a(16, 3);
  const std::vector<Value> w(16, 2);
  (void)sip_inner_product(sip, a, w, 5, 7);
  EXPECT_EQ(sip.cycles(), 35u);
}

TEST(Sip, CascadeAccumulatesPartial) {
  Sip sip(SipConfig{.lanes = 2});
  const std::vector<Value> a = {1, 2};
  const std::vector<Value> w = {3, 4};
  const Wide own = sip_inner_product(sip, a, w, 3, 4);
  sip.cascade_in(100);
  EXPECT_EQ(sip.output(), own + 100);
}

TEST(Sip, MaxUnitComparator) {
  Sip sip(SipConfig{.lanes = 1});
  const std::vector<Value> a = {2};
  const std::vector<Value> w = {3};
  (void)sip_inner_product(sip, a, w, 2, 3);  // OR = 6
  EXPECT_EQ(sip.max_unit(4), 6);
  EXPECT_EQ(sip.max_unit(9), 9);
}

struct SweepCase {
  int pa;
  int pw;
  bool act_signed;
};

class SipPrecisionSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SipPrecisionSweep, MatchesReferenceOnRandomVectors) {
  const SweepCase c = GetParam();
  SequentialRng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(c.pa) << 8) ^
                    static_cast<std::uint64_t>(c.pw));
  Sip sip(SipConfig{.lanes = 16, .act_signed = c.act_signed,
                    .weight_signed = true});
  for (int trial = 0; trial < 24; ++trial) {
    // Unsigned activations use pa magnitude bits; signed use pa incl. sign.
    const auto a = c.act_signed
                       ? random_values(rng, 16, c.pa - 1, true)
                       : random_values(rng, 16, c.pa, false);
    const auto w = random_values(rng, 16, c.pw - 1, true);
    const Wide got = sip_inner_product(sip, a, w, c.pa, c.pw);
    EXPECT_EQ(got, reference_dot(a, w))
        << "pa=" << c.pa << " pw=" << c.pw << " trial=" << trial;
  }
}

std::vector<SweepCase> all_precision_pairs() {
  std::vector<SweepCase> cases;
  // Unsigned activations cap at 15 magnitude bits in a 16-bit container.
  for (int pa = 2; pa <= 15; ++pa) {
    for (int pw = 2; pw <= 16; pw += 3) {
      cases.push_back({pa, pw, false});
    }
  }
  // Signed activations (the SIP supports them even though post-ReLU conv
  // activations are unsigned).
  for (int pa = 2; pa <= 16; pa += 2) {
    cases.push_back({pa, 8, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, SipPrecisionSweep,
                         ::testing::ValuesIn(all_precision_pairs()));

TEST(Sip, PartialLanesReadAsZero) {
  Sip sip(SipConfig{.lanes = 16});
  const std::vector<Value> a = {7, 3};  // only 2 of 16 lanes carry data
  const std::vector<Value> w = {2, -1};
  EXPECT_EQ(sip_inner_product(sip, a, w, 4, 3), 7 * 2 - 3);
}

TEST(Sip, MultiChunkAccumulationInOr) {
  // Two chunks accumulated into the same OR: begin_output only once.
  Sip sip(SipConfig{.lanes = 4});
  const std::vector<Value> a1 = {1, 2, 3, 4};
  const std::vector<Value> w1 = {1, 1, 1, 1};
  const std::vector<Value> a2 = {5, 6, 7, 8};
  const std::vector<Value> w2 = {2, 2, 2, 2};

  sip.begin_output();
  for (const auto& [a, w] : {std::pair{a1, w1}, std::pair{a2, w2}}) {
    for (int wb = 0; wb < 3; ++wb) {
      std::uint32_t wr = 0;
      for (std::size_t lane = 0; lane < w.size(); ++lane) {
        wr |= static_cast<std::uint32_t>(bit_of(w[lane], wb)) << lane;
      }
      sip.begin_weight_pass(wr, wb, wb == 2);
      for (int ab = 3; ab >= 0; --ab) {
        std::uint32_t bits = 0;
        for (std::size_t lane = 0; lane < a.size(); ++lane) {
          bits |= static_cast<std::uint32_t>(bit_of(a[lane], ab)) << lane;
        }
        sip.cycle(bits, ab == 3);
      }
      sip.end_weight_pass();
    }
  }
  EXPECT_EQ(sip.output(), (1 + 2 + 3 + 4) + 2 * (5 + 6 + 7 + 8));
}

}  // namespace
}  // namespace loom::arch
