// CPU feature detection and SIMD tier override parsing (common/cpuid).
// simd_cap_from_env is pure — the env-var strings come in as arguments — so
// the parsing table is testable without mutating the process environment
// (simd_level() itself is cached at first use and deliberately not poked).
#include <gtest/gtest.h>

#include "common/cpuid.hpp"
#include "common/error.hpp"

namespace loom::common {
namespace {

TEST(Cpuid, LevelNamesAreStable) {
  // Persisted in autotune cache keys — renaming invalidates caches.
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(Cpuid, UnsetEnvLeavesHardwareUncapped) {
  EXPECT_EQ(simd_cap_from_env(nullptr, nullptr), SimdLevel::kAvx512);
  EXPECT_EQ(simd_cap_from_env("", ""), SimdLevel::kAvx512);
  EXPECT_EQ(simd_cap_from_env("0", nullptr), SimdLevel::kAvx512);
}

TEST(Cpuid, ForceScalarWinsOverLevel) {
  EXPECT_EQ(simd_cap_from_env("1", nullptr), SimdLevel::kScalar);
  EXPECT_EQ(simd_cap_from_env("1", "avx512"), SimdLevel::kScalar);
  EXPECT_EQ(simd_cap_from_env("yes", "native"), SimdLevel::kScalar);
}

TEST(Cpuid, LevelStringsParse) {
  EXPECT_EQ(simd_cap_from_env(nullptr, "scalar"), SimdLevel::kScalar);
  EXPECT_EQ(simd_cap_from_env(nullptr, "avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(simd_cap_from_env(nullptr, "avx512"), SimdLevel::kAvx512);
  EXPECT_EQ(simd_cap_from_env(nullptr, "native"), SimdLevel::kAvx512);
}

TEST(Cpuid, JunkLevelIsTypedError) {
  EXPECT_THROW((void)simd_cap_from_env(nullptr, "sse9"), ConfigError);
  EXPECT_THROW((void)simd_cap_from_env(nullptr, "AVX2"), ConfigError);
}

TEST(Cpuid, EffectiveLevelNeverExceedsHardware) {
  EXPECT_LE(simd_level(), hardware_simd_level());
  EXPECT_EQ(have_avx2(), simd_level() >= SimdLevel::kAvx2);
  EXPECT_EQ(have_avx512(), simd_level() >= SimdLevel::kAvx512);
}

}  // namespace
}  // namespace loom::common
