// Randomized property tests for batched (multi-request) execution: random
// layer geometries, batch sizes 1-9 (crossing the FC request-packing
// threshold), Pa/Pw in 1..16, pad/stride/groups/lane-tail cases. Every
// iteration cross-checks three independent implementations —
//   * the batched bit-sliced engine,
//   * the scalar arch::Sip/IpUnit oracle run one request at a time, and
//   * the nn::reference bit-parallel golden model —
// plus deterministic coverage for the cols>64 auto-fallback and the
// degenerate batches (batch=1, all-zero activation requests, zero-precision
// groups) on both the Loom and DPNN functional backends.
//
// Failures print the iteration seed: rerun with
//   LOOM_BATCH_PROP_SEED=<seed> ./test_batch_properties
// to replay just that case (iteration count drops to 1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/reference.hpp"
#include "sim/dpnn_functional.hpp"
#include "sim/functional.hpp"

namespace loom::sim {
namespace {

struct Case {
  nn::Layer layer;
  std::vector<nn::Tensor> inputs;  // one per request
  nn::Tensor weights;
};

/// Uniform signed/unsigned values that fit the given streamed precision
/// exactly, with a `zero_run` chance of zeroing stretches (exercises
/// zero-precision detection groups and empty bit-planes).
nn::Tensor random_tensor(const nn::Shape& shape, int precision, bool is_signed,
                         SequentialRng& base, std::uint64_t stream,
                         double zero_run_p) {
  nn::Tensor t(shape);
  CounterRng rng(base.next_bits(), stream);
  bool zeroing = false;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const std::uint64_t u = rng.bits(static_cast<std::uint64_t>(i));
    if ((u & 0xffu) < static_cast<std::uint64_t>(zero_run_p * 256.0)) {
      zeroing = !zeroing;
    }
    if (zeroing) {
      t.set_flat(i, 0);
      continue;
    }
    if (is_signed) {
      const auto span = std::int64_t{1} << precision;  // [-2^(p-1), 2^(p-1))
      t.set_flat(i, static_cast<Value>(static_cast<std::int64_t>(u % span) -
                                       (span >> 1)));
    } else {
      // Conv activations are unsigned bit patterns, but Tensor stores int16:
      // keep bit 15 clear so the signed reference model and the hardware's
      // unsigned streams agree (post-ReLU activations are non-negative, so
      // a 16-bit profile still never uses the top bit for magnitude).
      const int bits = std::min(precision, 15);
      t.set_flat(i, static_cast<Value>(u & ((1u << bits) - 1)));
    }
  }
  return t;
}

Case random_conv_case(std::uint64_t seed) {
  SequentialRng rng(seed, 1);
  const int groups = 1 + static_cast<int>(rng.next_below(3));
  const auto cig = 1 + static_cast<std::int64_t>(rng.next_below(4));
  const auto cog = 1 + static_cast<std::int64_t>(rng.next_below(5));
  const int in_h = 3 + static_cast<int>(rng.next_below(10));
  const int in_w = 3 + static_cast<int>(rng.next_below(10));
  const int kernel = 1 + static_cast<int>(rng.next_below(
                             std::min(4, std::min(in_h, in_w))));
  const int stride = 1 + static_cast<int>(rng.next_below(3));
  const int pad = static_cast<int>(rng.next_below(3));
  const int pa = 1 + static_cast<int>(rng.next_below(16));
  const int pw = 1 + static_cast<int>(rng.next_below(16));
  const int batch = 1 + static_cast<int>(rng.next_below(9));

  Case c{nn::make_conv("prop", nn::Shape3{cig * groups, in_h, in_w},
                       static_cast<int>(cog * groups), kernel, stride, pad,
                       groups),
         {}, nn::Tensor{}};
  c.layer.act_precision = pa;
  c.layer.weight_precision = pw;
  for (int r = 0; r < batch; ++r) {
    nn::Tensor t = random_tensor(nn::Shape{c.layer.in.c, c.layer.in.h,
                                           c.layer.in.w},
                                 pa, /*is_signed=*/false, rng, 100 + r, 0.1);
    // Degenerate coverage: occasionally a whole request of zeros — every
    // detection group it dominates has zero precision.
    if (rng.next_below(8) == 0) t = nn::Tensor(t.shape());
    c.inputs.push_back(std::move(t));
  }
  c.weights = random_tensor(nn::Shape{c.layer.weight_count()}, pw,
                            /*is_signed=*/true, rng, 999, 0.05);
  return c;
}

Case random_fc_case(std::uint64_t seed) {
  SequentialRng rng(seed, 2);
  const auto ci = 1 + static_cast<std::int64_t>(rng.next_below(96));
  const int co = 1 + static_cast<int>(rng.next_below(80));
  const int pw = 1 + static_cast<int>(rng.next_below(16));
  const int batch = 1 + static_cast<int>(rng.next_below(9));

  Case c{nn::make_fc("prop_fc", nn::Shape3{ci, 1, 1}, co), {}, nn::Tensor{}};
  c.layer.weight_precision = pw;
  for (int r = 0; r < batch; ++r) {
    // FC activations stream all 16 signed bits.
    c.inputs.push_back(random_tensor(nn::Shape{ci}, kBasePrecision,
                                     /*is_signed=*/true, rng, 200 + r, 0.1));
  }
  c.weights = random_tensor(nn::Shape{c.layer.weight_count()}, pw,
                            /*is_signed=*/true, rng, 998, 0.05);
  return c;
}

FunctionalOptions random_grid(std::uint64_t seed) {
  SequentialRng rng(seed, 3);
  FunctionalOptions opts;
  opts.rows = 1 + static_cast<int>(rng.next_below(12));
  opts.cols = 1 + static_cast<int>(rng.next_below(20));
  opts.lanes = 1 + static_cast<int>(rng.next_below(16));
  opts.dynamic_act_precision = rng.next_below(2) == 0;
  opts.jobs = 1 + static_cast<int>(rng.next_below(3));
  return opts;
}

/// Iteration seeds: LOOM_BATCH_PROP_SEED replays one failing case.
std::vector<std::uint64_t> iteration_seeds(std::uint64_t base, int count) {
  if (const char* env = std::getenv("LOOM_BATCH_PROP_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

// ---- Conv: batched bit-sliced vs scalar oracle vs reference ---------------

TEST(BatchProperties, ConvBatchedMatchesScalarOracleAndReference) {
  for (const std::uint64_t seed : iteration_seeds(0xC0111D, 40)) {
    SCOPED_TRACE("LOOM_BATCH_PROP_SEED=" + std::to_string(seed));
    const Case c = random_conv_case(seed);
    const FunctionalOptions opts = random_grid(seed);

    FunctionalLoomEngine sliced(opts);
    ASSERT_TRUE(sliced.bitsliced());
    const FunctionalBatchLayerRun batched =
        sliced.run_conv_batch(c.layer, c.inputs, c.weights, kBasePrecision);

    FunctionalOptions scalar_opts = opts;
    scalar_opts.force_scalar = true;
    FunctionalLoomEngine scalar(scalar_opts);
    ASSERT_FALSE(scalar.bitsliced());

    for (std::size_t r = 0; r < c.inputs.size(); ++r) {
      SCOPED_TRACE("request " + std::to_string(r));
      // Solo scalar oracle: the batching semantics ground truth.
      const FunctionalLayerRun solo =
          scalar.run_conv(c.layer, c.inputs[r], c.weights, kBasePrecision);
      EXPECT_EQ(batched.wides[r], solo.wide);
      EXPECT_EQ(batched.outputs[r], solo.output);
      EXPECT_EQ(batched.requant_shifts[r], solo.requant_shift);
      // Bit-parallel golden reference (engine streams exactly pa/pw bits,
      // and the inputs are generated to fit them, so values agree exactly).
      EXPECT_EQ(batched.wides[r],
                nn::conv_forward(c.inputs[r], c.weights, c.layer));
    }
  }
}

// ---- FC: request packing both sides of the threshold ----------------------

TEST(BatchProperties, FcBatchedMatchesScalarOracleAndReference) {
  for (const std::uint64_t seed : iteration_seeds(0xFC5EED, 40)) {
    SCOPED_TRACE("LOOM_BATCH_PROP_SEED=" + std::to_string(seed));
    const Case c = random_fc_case(seed);
    const FunctionalOptions opts = random_grid(seed);

    FunctionalLoomEngine sliced(opts);
    ASSERT_TRUE(sliced.bitsliced());
    const FunctionalBatchLayerRun batched =
        sliced.run_fc_batch(c.layer, c.inputs, c.weights, kBasePrecision);

    FunctionalOptions scalar_opts = opts;
    scalar_opts.force_scalar = true;
    FunctionalLoomEngine scalar(scalar_opts);

    for (std::size_t r = 0; r < c.inputs.size(); ++r) {
      SCOPED_TRACE("request " + std::to_string(r));
      const FunctionalLayerRun solo =
          scalar.run_fc(c.layer, c.inputs[r], c.weights, kBasePrecision);
      EXPECT_EQ(batched.wides[r], solo.wide);
      EXPECT_EQ(batched.outputs[r], solo.output);
      EXPECT_EQ(batched.wides[r],
                nn::fc_forward(c.inputs[r], c.weights, c.layer));
    }
  }
}

// Deterministic lane-fill coverage: batches of 8..9 requests always take the
// request-packed FC path (the <8 fallback is covered by the random sizes
// above); this pins the packed layout against the solo engine directly.
TEST(BatchProperties, FcPackedPathMatchesSoloBitsliced) {
  for (const std::uint64_t seed : iteration_seeds(0xFCAA, 10)) {
    SCOPED_TRACE("LOOM_BATCH_PROP_SEED=" + std::to_string(seed));
    Case c = random_fc_case(seed);
    SequentialRng rng(seed, 7);
    while (c.inputs.size() < 8) {
      c.inputs.push_back(random_tensor(
          nn::Shape{c.layer.in.elements()}, kBasePrecision,
          /*is_signed=*/true, rng, 300 + c.inputs.size(), 0.1));
    }
    FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1});
    ASSERT_TRUE(eng.bitsliced());
    const FunctionalBatchLayerRun batched =
        eng.run_fc_batch(c.layer, c.inputs, c.weights, kBasePrecision);
    for (std::size_t r = 0; r < c.inputs.size(); ++r) {
      const FunctionalLayerRun solo =
          eng.run_fc(c.layer, c.inputs[r], c.weights, kBasePrecision);
      EXPECT_EQ(batched.wides[r], solo.wide) << "request " << r;
    }
  }
}

// ---- DPNN backend: batched vs solo vs reference ---------------------------

TEST(BatchProperties, DpnnConvAndFcBatchedMatchSolo) {
  for (const std::uint64_t seed : iteration_seeds(0xD9AA, 12)) {
    SCOPED_TRACE("LOOM_BATCH_PROP_SEED=" + std::to_string(seed));
    const Case conv = random_conv_case(seed);
    const Case fc = random_fc_case(seed);
    FunctionalDpnnEngine eng(DpnnFunctionalOptions{.jobs = 1});

    const auto conv_batch =
        eng.run_conv_batch(conv.layer, conv.inputs, conv.weights,
                           kBasePrecision);
    ASSERT_EQ(conv_batch.size(), conv.inputs.size());
    for (std::size_t r = 0; r < conv.inputs.size(); ++r) {
      const DpnnFunctionalRun solo =
          eng.run_conv(conv.layer, conv.inputs[r], conv.weights,
                       kBasePrecision);
      EXPECT_EQ(conv_batch[r].wide, solo.wide) << "conv request " << r;
      EXPECT_EQ(conv_batch[r].output, solo.output) << "conv request " << r;
      EXPECT_EQ(conv_batch[r].cycles, solo.cycles) << "conv request " << r;
      EXPECT_EQ(conv_batch[r].wide,
                nn::conv_forward(conv.inputs[r], conv.weights, conv.layer));
    }

    const auto fc_batch =
        eng.run_fc_batch(fc.layer, fc.inputs, fc.weights, kBasePrecision);
    for (std::size_t r = 0; r < fc.inputs.size(); ++r) {
      const DpnnFunctionalRun solo =
          eng.run_fc(fc.layer, fc.inputs[r], fc.weights, kBasePrecision);
      EXPECT_EQ(fc_batch[r].wide, solo.wide) << "fc request " << r;
      EXPECT_EQ(fc_batch[r].cycles, solo.cycles) << "fc request " << r;
    }
  }
}

// ---- cols > 64: automatic scalar-oracle fallback --------------------------

TEST(BatchFallback, ColsAbove64FallsBackToScalarForBatches) {
  const Case c = random_conv_case(0xFA11);
  FunctionalLoomEngine wide_grid(FunctionalOptions{.cols = 80, .jobs = 1});
  EXPECT_FALSE(wide_grid.bitsliced());  // unpackable: auto-fallback
  const FunctionalBatchLayerRun batched =
      wide_grid.run_conv_batch(c.layer, c.inputs, c.weights, kBasePrecision);
  for (std::size_t r = 0; r < c.inputs.size(); ++r) {
    EXPECT_EQ(batched.wides[r],
              nn::conv_forward(c.inputs[r], c.weights, c.layer))
        << "request " << r;
  }

  // DPNN: an unpackable lane count (> 32) forces the IpUnit oracle.
  const Case fc = random_fc_case(0xFA12);
  FunctionalDpnnEngine dpnn_scalar(
      DpnnFunctionalOptions{.act_lanes = 40, .jobs = 1});
  const auto runs =
      dpnn_scalar.run_fc_batch(fc.layer, fc.inputs, fc.weights, kBasePrecision);
  for (std::size_t r = 0; r < fc.inputs.size(); ++r) {
    EXPECT_EQ(runs[r].wide, nn::fc_forward(fc.inputs[r], fc.weights, fc.layer))
        << "request " << r;
  }
}

// ---- Degenerate batches ---------------------------------------------------

TEST(BatchDegenerate, BatchOfOneIsByteIdenticalToSoloApi) {
  const Case c = random_conv_case(0xB1);
  FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1});
  const std::vector<nn::Tensor> one{c.inputs[0]};
  const FunctionalBatchLayerRun batched =
      eng.run_conv_batch(c.layer, one, c.weights, kBasePrecision);
  const FunctionalLayerRun solo =
      eng.run_conv(c.layer, c.inputs[0], c.weights, kBasePrecision);
  ASSERT_EQ(batched.outputs.size(), 1u);
  EXPECT_EQ(batched.wides[0], solo.wide);
  EXPECT_EQ(batched.outputs[0], solo.output);
  // A batch of one is the same work; even the modeled cycles must agree.
  EXPECT_EQ(batched.cycles, solo.cycles);
  EXPECT_EQ(batched.mean_streamed_precision, solo.mean_streamed_precision);
}

TEST(BatchDegenerate, AllZeroBatchesOnBothBackends) {
  // Every request all-zero: every dynamic-detection group has zero needed
  // bits (the "zero-precision group" edge), all bit-planes are empty, and
  // the exact accumulators must still come out as exact zeros.
  Case c = random_conv_case(0x2E80);
  for (nn::Tensor& t : c.inputs) t = nn::Tensor(t.shape());

  FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1});
  const FunctionalBatchLayerRun batched =
      eng.run_conv_batch(c.layer, c.inputs, c.weights, kBasePrecision);
  FunctionalDpnnEngine dpnn(DpnnFunctionalOptions{.jobs = 1});
  const auto dpnn_runs =
      dpnn.run_conv_batch(c.layer, c.inputs, c.weights, kBasePrecision);
  for (std::size_t r = 0; r < c.inputs.size(); ++r) {
    const nn::WideTensor zero(batched.wides[r].shape());
    EXPECT_EQ(batched.wides[r], zero) << "loom request " << r;
    EXPECT_EQ(dpnn_runs[r].wide, zero) << "dpnn request " << r;
  }
  // Dynamic detection saw only zero groups; the detector clamps them to the
  // 1-plane minimum (needed_bits_unsigned(0) == 1), same as the scalar
  // dispatcher.
  EXPECT_EQ(batched.mean_streamed_precision, 1.0);
}

}  // namespace
}  // namespace loom::sim
