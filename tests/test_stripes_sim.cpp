// Stripes / DStripes cycle model: activation-serial only. Conv layers scale
// with Pa/16; FC layers match the baseline.
#include <gtest/gtest.h>

#include "sim/dpnn_sim.hpp"
#include "sim/stripes_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

NetworkWorkload conv_only(int ci, int hw, int co, int pa, int pw) {
  nn::Network net("custom", nn::Shape3{ci, hw, hw});
  net.add_conv("c", co, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {pa};
  p.conv_weight = pw;
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

NetworkWorkload fc_only(int ci, int co, int pw) {
  nn::Network net("custom", nn::Shape3{ci, 1, 1});
  net.add_fc("f", co);
  quant::PrecisionProfile p;
  p.network = "custom";
  p.fc_weight = {pw};
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

arch::StripesConfig static_cfg(bool dynamic = false) {
  arch::StripesConfig cfg;
  cfg.dynamic_act_precision = dynamic;
  return cfg;
}

TEST(StripesSim, ConvCyclesByHand) {
  // 256 windows -> 16 blocks, IC=5, FB=ceil(32/8)=4, Pa=8 per chunk.
  NetworkWorkload wl = conv_only(8, 16, 32, 8, 10);
  StripesSimulator sim(static_cfg(), SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_EQ(r.layers[0].compute_cycles, 16u * 5 * 4 * 8 + 8);
}

TEST(StripesSim, ConvSpeedupIs16OverPa) {
  for (const int pa : {4, 8, 13, 16}) {
    NetworkWorkload wl = conv_only(8, 16, 64, pa, 12);
    StripesSimulator st(static_cfg(), SimOptions{});
    DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
    const double speedup =
        speedup_vs(st.run(wl), dp.run(wl), RunResult::Filter::kConv);
    EXPECT_NEAR(speedup, 16.0 / pa, 0.03 * 16.0 / pa) << pa;
  }
}

TEST(StripesSim, WeightPrecisionIsIrrelevant) {
  NetworkWorkload a = conv_only(8, 16, 64, 8, 10);
  NetworkWorkload b = conv_only(8, 16, 64, 8, 16);
  StripesSimulator sim(static_cfg(), SimOptions{});
  EXPECT_EQ(sim.run(a).cycles(RunResult::Filter::kConv),
            sim.run(b).cycles(RunResult::Filter::kConv));
}

TEST(StripesSim, FcMatchesBaseline) {
  NetworkWorkload wl = fc_only(4096, 2048, 9);
  StripesSimulator st(static_cfg(), SimOptions{});
  DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
  const double speedup =
      speedup_vs(st.run(wl), dp.run(wl), RunResult::Filter::kFc);
  EXPECT_NEAR(speedup, 1.0, 0.02);
}

TEST(StripesSim, FilterParallelismMatchesDpnnAcrossScales) {
  // Figure 5: DStripes' relative performance is constant in E because its
  // filter parallelism mirrors the baseline's.
  for (const int e : {32, 128, 512}) {
    NetworkWorkload wl = conv_only(8, 16, 96, 8, 10);
    arch::StripesConfig scfg = static_cfg();
    scfg.equiv_macs = e;
    arch::DpnnConfig dcfg;
    dcfg.equiv_macs = e;
    StripesSimulator st(scfg, SimOptions{});
    DpnnSimulator dp(dcfg, SimOptions{});
    const double speedup =
        speedup_vs(st.run(wl), dp.run(wl), RunResult::Filter::kConv);
    EXPECT_NEAR(speedup, 2.0, 0.1) << "E=" << e;  // 16/Pa = 2
  }
}

TEST(StripesSim, DynamicTrimsBelowProfile) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  StripesSimulator stripes(static_cfg(false), SimOptions{});
  StripesSimulator dstripes(static_cfg(true), SimOptions{});
  const auto conv = RunResult::Filter::kConv;
  EXPECT_LT(dstripes.run(*wl).cycles(conv), stripes.run(*wl).cycles(conv));
}

TEST(StripesSim, WeightsStay16BitOffchip) {
  NetworkWorkload wl = fc_only(1024, 1024, 8);
  SimOptions offchip;
  offchip.model_offchip = true;
  StripesSimulator sim(static_cfg(), offchip);
  RunResult r = sim.run(wl);
  EXPECT_GE(r.offchip_bits(), static_cast<std::uint64_t>(1024) * 1024 * 16);
}

TEST(StripesSim, LaneOpsScaleWithPa) {
  NetworkWorkload lo = conv_only(8, 16, 64, 4, 10);
  NetworkWorkload hi = conv_only(8, 16, 64, 8, 10);
  StripesSimulator sim(static_cfg(), SimOptions{});
  const auto a_lo = sim.run(lo).activity(RunResult::Filter::kConv);
  const auto a_hi = sim.run(hi).activity(RunResult::Filter::kConv);
  EXPECT_NEAR(static_cast<double>(a_hi.stripes_lane_ops) /
                  static_cast<double>(a_lo.stripes_lane_ops),
              2.0, 0.01);
}

}  // namespace
}  // namespace loom::sim
