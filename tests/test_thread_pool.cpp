// Unit tests for the common thread pool backing the runner's `jobs` fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace loom {
namespace {

TEST(ThreadPool, RunsSubmittedTasksToCompletion) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);

  // The pool survives a throwing task.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i % 2 == 1) throw std::invalid_argument("odd");
                        }),
      std::invalid_argument);
}

TEST(ThreadPool, SingleWorkerMatchesSerialExecution) {
  // With one worker, tasks run in submission order, so order-sensitive
  // results equal a plain serial loop.
  constexpr std::size_t kTasks = 100;
  std::vector<std::size_t> serial;
  for (std::size_t i = 0; i < kTasks; ++i) serial.push_back(i);

  std::vector<std::size_t> pooled;
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (std::size_t i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&pooled, i] { pooled.push_back(i); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(pooled, serial);
}

TEST(ThreadPool, StressTenThousandNoopTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    futures.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      futures.push_back(pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.load(), 10000);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  ThreadPool pool(4);
  pool.parallel_for(kCount, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      // Intentionally discard the futures: the destructor must still run
      // everything already queued.
      (void)pool.submit([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace loom
