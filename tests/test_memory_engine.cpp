// The shared memory-timing core (sim/engine) end to end: constrained runs
// keep compute byte-identical and only add per-tile stalls/traffic, an
// AM-spilling VGG-style layer produces real tile schedules with nonzero
// stalls, Loom's packed traffic undercuts DPNN's unpacked traffic, output
// drains price at the consumer layer's input precision, and the capacity
// knobs reach the plans.
#include <gtest/gtest.h>

#include "mem/bitpacked.hpp"
#include "nn/zoo/zoo.hpp"
#include "sim/dpnn_sim.hpp"
#include "sim/loom_sim.hpp"
#include "sim/stripes_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

NetworkWorkload vgg_conv_layer() {
  // VGG conv2_1 shape: 128ch 112x112 -> 128 filters 3x3. Activations are
  // ~4.6 MB unpacked — far beyond every AM sizing.
  nn::Network net("vggish", nn::Shape3{128, 112, 112});
  net.add_conv("conv", 128, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "vggish";
  p.conv_act = {9};
  p.conv_weight = 12;
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

NetworkWorkload two_conv_net(int consumer_act_precision) {
  nn::Network net("chain", nn::Shape3{16, 32, 32});
  net.add_conv("producer", 32, 3, 1, 1).precision_group = 0;
  net.add_conv("consumer", 16, 3, 1, 1).precision_group = 1;
  quant::PrecisionProfile p;
  p.network = "chain";
  p.conv_act = {8, consumer_act_precision};
  p.conv_weight = 10;
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

SimOptions constrained(std::int64_t am_bytes = 0, std::int64_t wm_bytes = 0) {
  SimOptions o;
  o.model_offchip = true;
  o.am_bytes = am_bytes;
  o.wm_bytes = wm_bytes;
  return o;
}

TEST(MemoryEngine, ConstrainedModeNeverChangesComputeCycles) {
  // The tile scheduler's per-block cycle callbacks must sum exactly to the
  // analytic layer totals for all three simulators, conv and FC, static
  // and dynamic precision, grouped and plain.
  nn::Network net = nn::zoo::make("alexnet");
  const auto& profile =
      quant::profile_for("alexnet", quant::AccuracyTarget::k100);
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);

  const auto check = [&](auto make_sim) {
    auto free_sim = make_sim(SimOptions{});
    auto tight_sim = make_sim(constrained(96 << 10, 256 << 10));
    const RunResult free_run = free_sim->run(wl);
    const RunResult tight_run = tight_sim->run(wl);
    ASSERT_EQ(free_run.layers.size(), tight_run.layers.size());
    for (std::size_t i = 0; i < free_run.layers.size(); ++i) {
      EXPECT_EQ(free_run.layers[i].compute_cycles,
                tight_run.layers[i].compute_cycles)
          << free_run.arch_name << " layer " << free_run.layers[i].name;
      EXPECT_EQ(free_run.layers[i].stall_cycles, 0u);
    }
    EXPECT_GT(tight_run.offchip_bits(), 0u);
  };

  check([](const SimOptions& o) {
    arch::LoomConfig cfg;
    return make_loom_simulator(cfg, o);
  });
  check([](const SimOptions& o) {
    arch::StripesConfig cfg;
    cfg.dynamic_act_precision = true;
    return make_stripes_simulator(cfg, o);
  });
  check([](const SimOptions& o) {
    return make_dpnn_simulator(arch::DpnnConfig{}, o);
  });
}

TEST(MemoryEngine, AmSpillingVggLayerStallsPerTile) {
  NetworkWorkload wl = vgg_conv_layer();
  LoomSimulator sim(arch::LoomConfig{}, constrained());
  const RunResult r = sim.run(wl);
  ASSERT_EQ(r.layers.size(), 1u);
  const LayerResult& l = r.layers[0];

  // The layer spills the 1 MB packed AM: the plan tiles the window axis,
  // several tiles wait on the channel, and the drains are real.
  EXPECT_FALSE(l.memory.acts_resident);
  EXPECT_GT(l.memory.tiles, 1u);
  EXPECT_GT(l.stall_cycles, 0u);
  EXPECT_GT(l.memory.stalled_tiles, 0u);
  EXPECT_GT(l.memory.max_tile_stall, 0u);
  EXPECT_LE(l.memory.max_tile_stall, l.stall_cycles);
  EXPECT_GT(l.memory.act_fill_bits, 0u);
  EXPECT_GT(l.memory.out_drain_bits, 0u);
  EXPECT_EQ(l.activity.dram_read_bits,
            l.memory.act_fill_bits + l.memory.weight_fill_bits);
  EXPECT_EQ(l.activity.dram_write_bits, l.memory.out_drain_bits);
  EXPECT_EQ(l.activity.dram_stall_cycles, l.stall_cycles);
}

TEST(MemoryEngine, LoomPackedTrafficStrictlyBelowDpnnUnpacked) {
  NetworkWorkload wl_lm = vgg_conv_layer();
  NetworkWorkload wl_dp = vgg_conv_layer();
  LoomSimulator lm(arch::LoomConfig{}, constrained());
  DpnnSimulator dp(arch::DpnnConfig{}, constrained());
  const RunResult rl = lm.run(wl_lm);
  const RunResult rd = dp.run(wl_dp);
  // Both spill (even DPNN's 2 MB AM is far too small), but Loom moves
  // bit-packed activations and weights where DPNN moves 16-bit words.
  EXPECT_FALSE(rl.layers[0].memory.acts_resident);
  EXPECT_FALSE(rd.layers[0].memory.acts_resident);
  EXPECT_LT(rl.offchip_bits(), rd.offchip_bits());
  // The packing advantage is large, not marginal: Pa<=9 of 16 on the
  // activation stream and 12 of 16 on weights.
  EXPECT_LT(static_cast<double>(rl.offchip_bits()),
            0.85 * static_cast<double>(rd.offchip_bits()));
}

TEST(MemoryEngine, OutputDrainsPriceAtConsumerInputPrecision) {
  // Regression for the old add_offchip bug that priced output drains at
  // the *producer's input* precision: the producer's outputs are stored at
  // the precision the consumer layer will read them (its profile Pa).
  const auto drains_for = [](int consumer_pa) {
    NetworkWorkload wl = two_conv_net(consumer_pa);
    // Tiny AM forces both layers to spill, so the producer writes its
    // outputs off-chip.
    LoomSimulator sim(arch::LoomConfig{}, constrained(24 << 10));
    const RunResult r = sim.run(wl);
    return r.layers[0].memory.out_drain_bits;
  };
  const nn::Layer producer = [] {
    nn::Network net("chain", nn::Shape3{16, 32, 32});
    return net.add_conv("producer", 32, 3, 1, 1);
  }();
  const auto elements = static_cast<std::uint64_t>(producer.out.elements());
  // Drains scale with the consumer's Pa, element-exactly.
  EXPECT_EQ(drains_for(6), elements * 6);
  EXPECT_EQ(drains_for(12), elements * 12);
  // The old formula would have charged the producer's input precision
  // (8 bits) in both cases.
}

TEST(MemoryEngine, FatFcStreamsWeightsThroughChunks) {
  // 4096x4096 FC at Pw=8: the weight stream dwarfs the WM, the acts fit.
  NetworkWorkload wl = [] {
    nn::Network net("fat", nn::Shape3{4096, 1, 1});
    net.add_fc("fc", 4096);
    quant::PrecisionProfile p;
    p.network = "fat";
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    return NetworkWorkload(std::move(net), p);
  }();
  LoomSimulator sim(arch::LoomConfig{}, constrained());
  const RunResult r = sim.run(wl);
  const LayerResult& l = r.layers[0];
  EXPECT_TRUE(l.memory.acts_resident);
  EXPECT_FALSE(l.memory.weights_resident);
  EXPECT_GT(l.memory.tiles, 1u);
  // The stream passes exactly once: packed weight bits, no act traffic.
  EXPECT_EQ(l.memory.weight_fill_bits,
            static_cast<std::uint64_t>(
                mem::packed_bits(std::int64_t{4096} * 4096, 8)));
  EXPECT_EQ(l.memory.act_fill_bits, 0u);
  // Bandwidth-bound: the stall dominates compute.
  EXPECT_GT(l.stall_cycles, l.compute_cycles);
}

TEST(MemoryEngine, SmallerAmMeansMoreTrafficNeverLess) {
  NetworkWorkload wl_a = vgg_conv_layer();
  NetworkWorkload wl_b = vgg_conv_layer();
  LoomSimulator roomy(arch::LoomConfig{}, constrained(2 << 20));
  LoomSimulator tight(arch::LoomConfig{}, constrained(128 << 10));
  const auto roomy_bits = roomy.run(wl_a).offchip_bits();
  const auto tight_bits = tight.run(wl_b).offchip_bits();
  EXPECT_GE(tight_bits, roomy_bits);
}

TEST(MemoryEngine, CrossLayerPrefetchHidesWeightFills) {
  // Two layers whose weights fit the WM: layer 1's weight fill overlaps
  // layer 0's compute, so the whole-run stall is below the naive
  // sum of per-layer exposed fills.
  NetworkWorkload wl = two_conv_net(8);
  LoomSimulator sim(arch::LoomConfig{}, constrained());
  const RunResult r = sim.run(wl);
  ASSERT_EQ(r.layers.size(), 2u);
  // Both layers fit on chip here; only weight streams hit DRAM.
  EXPECT_TRUE(r.layers[0].memory.acts_resident);
  EXPECT_TRUE(r.layers[1].memory.acts_resident);
  // The second layer's weights prefetch under the first layer's compute:
  // its stall must be smaller than its raw fill time.
  EXPECT_LT(r.layers[1].stall_cycles, r.layers[1].memory.fill_cycles);
}

TEST(MemoryEngine, TileBlocksSumToAnalyticComputeExactly) {
  // Drift tripwire: every simulator's tile callback must mirror its
  // analytic loop value for value. With static integer precisions there is
  // no rounding, so the residual the engine absorbs on the first tile is
  // *exactly* the model's per-layer constants — kPipelineFill for conv,
  // plus the column stagger for Loom's FC. Someone editing one copy of a
  // chunk loop but not the other breaks these equalities.
  nn::Network net("mixed", nn::Shape3{8, 16, 16});
  net.add_conv("c", 32, 3, 1, 1).precision_group = 0;
  net.add_fc("f", 100);
  quant::PrecisionProfile p;
  p.network = "mixed";
  p.conv_act = {8};
  p.conv_weight = 10;
  p.fc_weight = {9};
  quant::apply_profile(net, p);
  NetworkWorkload wl(std::move(net), p);

  // Roomy enough that every layer schedules (an FC input can never split
  // below one window), tight enough that the FC weight stream chunks.
  const SimOptions tight = constrained(32 << 10, 64 << 10);

  arch::LoomConfig lcfg;
  lcfg.dynamic_act_precision = false;
  LoomSimulator lm(lcfg, tight);
  const RunResult rl = lm.run(wl);
  EXPECT_EQ(rl.layers[0].memory.compute_residual_cycles,
            static_cast<std::int64_t>(kPipelineFill));
  // FC: pipeline fill + the cols-1 column-stagger initiation cycles.
  EXPECT_EQ(rl.layers[1].memory.compute_residual_cycles,
            static_cast<std::int64_t>(kPipelineFill) + 15);

  arch::StripesConfig scfg;
  scfg.dynamic_act_precision = false;
  StripesSimulator st(scfg, tight);
  const RunResult rs = st.run(wl);
  EXPECT_EQ(rs.layers[0].memory.compute_residual_cycles,
            static_cast<std::int64_t>(kPipelineFill));
  EXPECT_EQ(rs.layers[1].memory.compute_residual_cycles,
            static_cast<std::int64_t>(kPipelineFill));

  DpnnSimulator dp(arch::DpnnConfig{}, tight);
  const RunResult rd = dp.run(wl);
  // DPNN's shallower pipeline charges its own 6-cycle fill per layer.
  EXPECT_EQ(rd.layers[0].memory.compute_residual_cycles, 6);
  EXPECT_EQ(rd.layers[1].memory.compute_residual_cycles, 6);

  // Dynamic detection changes the per-chunk values but not the mirroring:
  // the residual stays the same constant (table reads are integers too).
  LoomSimulator lm_dyn(arch::LoomConfig{}, tight);
  const RunResult rdy = lm_dyn.run(wl);
  EXPECT_EQ(rdy.layers[0].memory.compute_residual_cycles,
            static_cast<std::int64_t>(kPipelineFill));
}

TEST(MemoryEngine, StallAccessorSumsLayers) {
  NetworkWorkload wl = vgg_conv_layer();
  LoomSimulator sim(arch::LoomConfig{}, constrained());
  const RunResult r = sim.run(wl);
  std::uint64_t sum = 0;
  for (const auto& l : r.layers) sum += l.stall_cycles;
  EXPECT_EQ(r.stall_cycles(), sum);
  EXPECT_EQ(r.cycles(), r.cycles(RunResult::Filter::kAll));
  EXPECT_EQ(r.cycles() - r.stall_cycles(),
            r.layers[0].compute_cycles);
}

}  // namespace
}  // namespace loom::sim
