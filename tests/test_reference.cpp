// Golden-model tests: the reference executor is what every datapath and
// simulator functional claim is checked against, so it gets hand-computed
// cases for each geometry feature (padding, stride, groups, pooling).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic.hpp"

namespace loom::nn {
namespace {

Tensor filled(Shape shape, std::initializer_list<int> values) {
  Tensor t(std::move(shape));
  std::int64_t i = 0;
  for (const int v : values) t.set_flat(i++, static_cast<Value>(v));
  return t;
}

TEST(ConvForward, IdentityKernelCopiesInput) {
  // 1x1 kernel with weight 1: output == input.
  const Layer l = make_conv("c", Shape3{1, 3, 3}, 1, 1, 1, 0);
  const Tensor in = filled(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor w = filled(Shape{1}, {1});
  const WideTensor out = conv_forward(in, w, l);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(out.flat(i), in.flat(i));
}

TEST(ConvForward, HandComputed3x3) {
  const Layer l = make_conv("c", Shape3{1, 3, 3}, 1, 3, 1, 0);
  const Tensor in = filled(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor w = filled(Shape{9}, {1, 0, -1, 1, 0, -1, 1, 0, -1});
  const WideTensor out = conv_forward(in, w, l);
  EXPECT_EQ(out.elements(), 1);
  // Column sums: (1+4+7) - (3+6+9) = -6.
  EXPECT_EQ(out.flat(0), -6);
}

TEST(ConvForward, ZeroPaddingContributesNothing) {
  const Layer l = make_conv("c", Shape3{1, 2, 2}, 1, 3, 1, 1);
  const Tensor in = filled(Shape{1, 2, 2}, {1, 1, 1, 1});
  Tensor w(Shape{9}, 1);  // all-ones kernel
  const WideTensor out = conv_forward(in, w, l);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  // Each output sees the 4 real ones only.
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(out.flat(i), 4);
}

TEST(ConvForward, StrideSkipsWindows) {
  const Layer l = make_conv("c", Shape3{1, 4, 4}, 1, 2, 2, 0);
  Tensor in(Shape{1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) in.set_flat(i, static_cast<Value>(i));
  Tensor w(Shape{4}, 1);
  const WideTensor out = conv_forward(in, w, l);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(out.flat(0), 0 + 1 + 4 + 5);
  EXPECT_EQ(out.flat(3), 10 + 11 + 14 + 15);
}

TEST(ConvForward, GroupedConvolutionIsolatesChannels) {
  // 2 groups: filter 0 sees channel 0 only; filter 1 sees channel 1 only.
  const Layer l = make_conv("c", Shape3{2, 1, 1}, 2, 1, 1, 0, 2);
  const Tensor in = filled(Shape{2, 1, 1}, {3, 5});
  const Tensor w = filled(Shape{2}, {2, 7});
  const WideTensor out = conv_forward(in, w, l);
  EXPECT_EQ(out.flat(0), 6);   // 3*2
  EXPECT_EQ(out.flat(1), 35);  // 5*7
}

TEST(ConvForward, MultiChannelAccumulates) {
  const Layer l = make_conv("c", Shape3{3, 1, 1}, 1, 1, 1, 0);
  const Tensor in = filled(Shape{3, 1, 1}, {1, 2, 3});
  const Tensor w = filled(Shape{3}, {4, 5, 6});
  const WideTensor out = conv_forward(in, w, l);
  EXPECT_EQ(out.flat(0), 4 + 10 + 18);
}

TEST(FcForward, MatrixVectorProduct) {
  const Layer l = make_fc("f", Shape3{4, 1, 1}, 2);
  const Tensor in = filled(Shape{4, 1, 1}, {1, 2, 3, 4});
  const Tensor w = filled(Shape{8}, {1, 0, 0, 0, 1, 1, 1, 1});
  const WideTensor out = fc_forward(in, w, l);
  EXPECT_EQ(out.flat(0), 1);
  EXPECT_EQ(out.flat(1), 10);
}

TEST(FcForward, NegativeWeights) {
  const Layer l = make_fc("f", Shape3{2, 1, 1}, 1);
  const Tensor in = filled(Shape{2, 1, 1}, {10, 3});
  const Tensor w = filled(Shape{2}, {-1, 2});
  EXPECT_EQ(fc_forward(in, w, l).flat(0), -4);
}

TEST(PoolForward, MaxPooling) {
  const Layer l = make_pool("p", Shape3{1, 2, 2}, PoolKind::kMax, 2, 2);
  const Tensor in = filled(Shape{1, 2, 2}, {1, 9, -3, 4});
  const Tensor out = pool_forward(in, l);
  EXPECT_EQ(out.elements(), 1);
  EXPECT_EQ(out.flat(0), 9);
}

TEST(PoolForward, AveragePoolingCountsRealElements) {
  const Layer l = make_pool("p", Shape3{1, 2, 2}, PoolKind::kAvg, 2, 2);
  const Tensor in = filled(Shape{1, 2, 2}, {2, 4, 6, 8});
  EXPECT_EQ(pool_forward(in, l).flat(0), 5);
}

TEST(PoolForward, NegativeMaxWorks) {
  const Layer l = make_pool("p", Shape3{1, 2, 2}, PoolKind::kMax, 2, 2, 0);
  Tensor in = filled(Shape{1, 2, 2}, {-7, -2, -9, -5});
  // The max of negatives must not be clamped to 0.
  EXPECT_EQ(pool_forward(in, l).flat(0), -2);
}

TEST(Requantize, ShiftReluSaturate) {
  WideTensor acc(Shape{4});
  acc.set_flat(0, 1024);
  acc.set_flat(1, -1024);
  acc.set_flat(2, 70000);
  acc.set_flat(3, 5);
  const Tensor out = requantize(acc, /*shift=*/2, /*out_bits=*/8, /*relu=*/true);
  EXPECT_EQ(out.flat(0), 127);  // 256 saturates to 127
  EXPECT_EQ(out.flat(1), 0);    // ReLU
  EXPECT_EQ(out.flat(2), 127);
  EXPECT_EQ(out.flat(3), 1);    // 5 >> 2
}

TEST(Requantize, NoReluKeepsNegatives) {
  WideTensor acc(Shape{1});
  acc.set_flat(0, -40);
  EXPECT_EQ(requantize(acc, 2, 8, false).flat(0), -10);
}

TEST(ChooseRequantShift, BringsPeakInRange) {
  WideTensor acc(Shape{2});
  acc.set_flat(0, 100000);
  acc.set_flat(1, -50);
  const int shift = choose_requant_shift(acc, 8);
  EXPECT_LE(100000 >> shift, 127);
  EXPECT_GT(100000 >> (shift - 1), 127);
}

TEST(ConvForward, ShapeMismatchThrows) {
  const Layer l = make_conv("c", Shape3{1, 3, 3}, 1, 3, 1, 0);
  const Tensor in(Shape{1, 4, 4});
  const Tensor w(Shape{9});
  EXPECT_THROW((void)conv_forward(in, w, l), ContractViolation);
}

// Cross-check: reference conv on random data distributes over filters.
TEST(ConvForward, LinearInWeights) {
  const Layer l = make_conv("c", Shape3{2, 5, 5}, 2, 3, 1, 1);
  SyntheticSpec aspec{.precision = 6, .alpha = 1.0, .is_signed = false};
  SyntheticSpec wspec{.precision = 5, .alpha = 1.0, .is_signed = true};
  const Tensor in = make_activation_tensor(l.in, aspec, 1, 1);
  const Tensor w1 = make_weight_tensor(l.weight_count(), wspec, 2, 2);
  const Tensor w2 = make_weight_tensor(l.weight_count(), wspec, 3, 3);
  Tensor wsum(Shape{l.weight_count()});
  for (std::int64_t i = 0; i < l.weight_count(); ++i) {
    wsum.set_flat(i, static_cast<Value>(w1.flat(i) + w2.flat(i)));
  }
  const WideTensor o1 = conv_forward(in, w1, l);
  const WideTensor o2 = conv_forward(in, w2, l);
  const WideTensor os = conv_forward(in, wsum, l);
  for (std::int64_t i = 0; i < os.elements(); ++i) {
    EXPECT_EQ(os.flat(i), o1.flat(i) + o2.flat(i));
  }
}

}  // namespace
}  // namespace loom::nn
