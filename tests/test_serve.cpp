// Inference server: deterministic concurrency stress tests. N producer
// threads submit interleaved requests across two models (different
// networks *and* different precision profiles); every per-request output
// must be byte-identical to a solo run_network pass, backpressure on a full
// queue must not deadlock, and shutdown with in-flight work must drain
// cleanly. Server outputs are also pinned with a golden FNV digest
// (tests/golden.hpp) so engine drift cannot hide behind the identity
// checks.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "golden.hpp"
#include "serve/server.hpp"
#include "sim/functional.hpp"

namespace loom::serve {
namespace {

constexpr std::uint64_t kInputSeed = 77;

/// Two models: a conv stack and an FC tail, with distinct profiles.
void populate(ModelRegistry& registry) {
  {
    nn::Network net("convnet", nn::Shape3{6, 12, 12});
    net.add_conv("c1", 12, 3, 1, 1).precision_group = 0;
    net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
    net.add_conv("c2", 8, 3, 1, 0).precision_group = 1;
    net.add_fc("logits", 9);
    quant::PrecisionProfile p;
    p.network = "convnet";
    p.conv_act = {7, 6};
    p.conv_weight = 9;
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    registry.add_synthetic("convnet", std::move(net), p, /*seed=*/31);
  }
  {
    nn::Network net("mlp", nn::Shape3{96, 1, 1});
    net.add_fc("h1", 40);
    net.add_fc("logits", 12);
    quant::PrecisionProfile p;
    p.network = "mlp";
    p.conv_weight = 11;
    p.fc_weight = {10, 9};
    quant::apply_profile(net, p);
    registry.add_synthetic("mlp", std::move(net), p, /*seed=*/32);
  }
}

/// Solo ground truth for (model, stream): one request at a time through a
/// fresh engine — the byte-identity reference for every server output.
std::map<std::pair<std::string, int>, nn::Tensor> solo_outputs(
    const ModelRegistry& registry, int streams) {
  std::map<std::pair<std::string, int>, nn::Tensor> out;
  for (const std::string& name : registry.names()) {
    const auto model = registry.find(name);
    sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
    for (int s = 0; s < streams; ++s) {
      out.emplace(std::make_pair(name, s),
                  engine
                      .run_network(model->net,
                                   model->make_input(kInputSeed, s),
                                   model->weights)
                      .output);
    }
  }
  return out;
}

TEST(ServeStress, InterleavedProducersAcrossModelsAreByteIdentical) {
  ModelRegistry registry;
  populate(registry);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 12;
  const auto expected = solo_outputs(registry, kPerProducer);

  ServeOptions opts;
  opts.max_batch = 5;
  opts.batch_deadline = std::chrono::microseconds(500);
  opts.queue_depth = 16;
  opts.workers = 2;
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);

  struct Tagged {
    std::string model;
    int stream;
    std::future<InferenceResult> future;
  };
  std::vector<std::vector<Tagged>> per_producer(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&registry, &server, &per_producer, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::string name = (p + i) % 2 == 0 ? "convnet" : "mlp";
        const auto model = registry.find(name);
        per_producer[p].push_back(
            Tagged{name, i,
                   server.submit(model, model->make_input(kInputSeed, i))});
      }
    });
  }
  for (auto& t : producers) t.join();

  for (auto& tagged : per_producer) {
    for (Tagged& t : tagged) {
      InferenceResult res = t.future.get();
      EXPECT_EQ(res.output, expected.at({t.model, t.stream}))
          << t.model << " stream " << t.stream;
      EXPECT_GE(res.batch_size, 1);
      EXPECT_LE(res.batch_size, opts.max_batch);
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LE(stats.peak_queue_depth, opts.queue_depth);
}

TEST(ServeStress, QueueFullBackpressureDoesNotDeadlock) {
  ModelRegistry registry;
  populate(registry);
  const auto expected = solo_outputs(registry, 8);

  ServeOptions opts;
  opts.max_batch = 3;
  opts.batch_deadline = std::chrono::microseconds(0);  // flush immediately
  opts.queue_depth = 2;  // producers outpace this by far
  opts.workers = 1;
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);

  constexpr int kProducers = 3;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&registry, &server, &futures, p] {
      const auto model = registry.find(p % 2 == 0 ? "mlp" : "convnet");
      for (int i = 0; i < 8; ++i) {
        futures[p].push_back(
            server.submit(model, model->make_input(kInputSeed, i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    const std::string name = p % 2 == 0 ? "mlp" : "convnet";
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(futures[p][static_cast<std::size_t>(i)].get().output,
                expected.at({name, i}));
    }
  }
  // The bounded queue never overfilled: backpressure, not buffering.
  EXPECT_LE(server.stats().peak_queue_depth, 2u);
}

TEST(ServeStress, CleanShutdownDrainsInFlightWork) {
  ModelRegistry registry;
  populate(registry);
  const auto expected = solo_outputs(registry, 10);

  std::vector<std::future<InferenceResult>> futures;
  {
    ServeOptions opts;
    opts.max_batch = 4;
    opts.batch_deadline = std::chrono::microseconds(200);
    opts.queue_depth = 32;
    opts.workers = 2;
    opts.engine.jobs = 1;
    InferenceServer server(registry, opts);
    const auto model = registry.find("convnet");
    for (int i = 0; i < 10; ++i) {
      futures.push_back(server.submit(model, model->make_input(kInputSeed, i)));
    }
    // Destructor: refuse new work, run everything queued, join.
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().output,
              expected.at({"convnet", i}));
  }
}

TEST(Serve, SubmissionErrors) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);

  EXPECT_THROW((void)server.submit("no-such-model", nn::Tensor{}), ConfigError);
  // Wrong input volume for the model.
  EXPECT_THROW((void)server.submit("convnet",
                                   nn::Tensor(nn::Shape{3, 2, 2})),
               ConfigError);

  const auto model = registry.find("mlp");
  auto ok = server.submit(model, model->make_input(kInputSeed, 0));
  server.stop();
  EXPECT_NO_THROW((void)ok.get());  // in-flight work drained by stop()
  // Late submitters are refused for being late, not misconfigured: the
  // exception type is pinned so it cannot regress to ConfigError.
  EXPECT_THROW((void)server.submit(model, model->make_input(kInputSeed, 1)),
               ShutdownError);
  EXPECT_THROW((void)server.try_submit(model, model->make_input(kInputSeed, 1),
                                       std::chrono::milliseconds(5)),
               ShutdownError);
}

// ---- Robustness: admission control, deadlines, degradation ----------------

TEST(ServeRobustness, BestEffortShedsAtWatermarkUnderInjectedPressure) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.queue_depth = 8;
  opts.shed_watermark = 0.5;  // best-effort sheds at 4 pending
  opts.engine.jobs = 1;
  // Every admission decision observes a phantom full queue.
  opts.faults.seed = 9;
  opts.faults.queue_spike_prob = 1.0;
  opts.faults.queue_spike_depth = 8;
  InferenceServer server(registry, opts);

  const auto model = registry.find("mlp");
  // Best-effort: pressure >= watermark at admission -> OverloadError.
  EXPECT_THROW((void)server.submit(model, model->make_input(kInputSeed, 0),
                                   {.priority = Priority::kBestEffort}),
               OverloadError);
  // Batch: sheds only at a (phantom) full queue — which the spike fakes.
  EXPECT_THROW((void)server.submit(model, model->make_input(kInputSeed, 0),
                                   {.priority = Priority::kBatch}),
               OverloadError);
  // Interactive: never shed at admission; spikes cannot block it forever.
  auto fut = server.submit(model, model->make_input(kInputSeed, 0));
  EXPECT_NO_THROW((void)fut.get());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.for_priority(Priority::kBestEffort).rejected, 1u);
  EXPECT_EQ(stats.for_priority(Priority::kBatch).rejected, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_GE(server.fault_injector().queue_spikes_injected(), 2u);
}

TEST(ServeRobustness, TrySubmitBoundedWaitShedsInsteadOfBlocking) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.queue_depth = 4;
  opts.engine.jobs = 1;
  opts.faults.seed = 10;
  opts.faults.queue_spike_prob = 1.0;  // every admission sees a full queue
  opts.faults.queue_spike_depth = 4;
  InferenceServer server(registry, opts);

  const auto model = registry.find("mlp");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)server.try_submit(model, model->make_input(kInputSeed, 0),
                                       std::chrono::milliseconds(20),
                                       {.priority = Priority::kBatch}),
               OverloadError);
  const auto waited = std::chrono::steady_clock::now() - t0;
  // Bounded: it waited (roughly the timeout), then shed instead of hanging.
  EXPECT_GE(waited, std::chrono::milliseconds(15));
  EXPECT_LT(waited, std::chrono::seconds(15));
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServeRobustness, DeadlineExpiredRequestsResolveAsDeadlineExceeded) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.max_batch = 4;
  // Hold batches open far longer than the request deadlines: expiry must
  // come from the deadline cap, not the batch deadline elapsing first.
  opts.batch_deadline = std::chrono::microseconds(50'000);
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);

  const auto model = registry.find("convnet");
  // A generous deadline completes; a 1ns deadline cannot.
  auto ok = server.submit(model, model->make_input(kInputSeed, 0),
                          {.deadline = std::chrono::seconds(30)});
  auto doomed = server.submit(model, model->make_input(kInputSeed, 1),
                              {.priority = Priority::kBatch,
                               .deadline = std::chrono::nanoseconds(1)});
  EXPECT_NO_THROW((void)ok.get());
  EXPECT_THROW((void)doomed.get(), DeadlineExceededError);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.for_priority(Priority::kBatch).timed_out, 1u);
  // Satellite: queue_wait/run_time aggregate into per-class histograms.
  const ClassStats& inter = stats.for_priority(Priority::kInteractive);
  EXPECT_EQ(inter.latency_ns.count(), 1u);
  EXPECT_EQ(inter.queue_wait_ns.count(), 1u);
  EXPECT_EQ(inter.run_time_ns.count(), 1u);
  EXPECT_GT(inter.latency_ns.p50(), 0.0);
  EXPECT_GE(inter.latency_ns.p99(), inter.latency_ns.p50());
}

TEST(ServeRobustness, InteractiveArrivalEvictsQueuedBestEffortWhenFull) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.max_batch = 1;
  opts.batch_deadline = std::chrono::microseconds(0);
  opts.queue_depth = 2;
  opts.shed_watermark = 1.0;  // isolate eviction from watermark shedding
  opts.engine.jobs = 1;
  // Stall every batch so the queue reliably fills behind the worker.
  opts.faults.seed = 11;
  opts.faults.batcher_delay_prob = 1.0;
  opts.faults.batcher_delay = std::chrono::microseconds(150'000);
  InferenceServer server(registry, opts);

  const auto model = registry.find("mlp");
  // Warm-up request; wait until the worker has popped it and is stalled.
  auto warm = server.submit(model, model->make_input(kInputSeed, 0));
  while (server.fault_injector().batcher_delays_injected() == 0) {
    std::this_thread::yield();
  }
  // Fill the queue with best-effort work, then submit interactive: the
  // newest best-effort request is evicted to make room.
  auto be0 = server.submit(model, model->make_input(kInputSeed, 1),
                           {.priority = Priority::kBestEffort});
  auto be1 = server.submit(model, model->make_input(kInputSeed, 2),
                           {.priority = Priority::kBestEffort});
  auto inter = server.submit(model, model->make_input(kInputSeed, 3));

  EXPECT_THROW((void)be1.get(), OverloadError);  // evicted (newest)
  EXPECT_NO_THROW((void)inter.get());
  EXPECT_NO_THROW((void)be0.get());
  EXPECT_NO_THROW((void)warm.get());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.for_priority(Priority::kBestEffort).shed, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServeRobustness, EngineFaultsFallBackToScalarOracleByteIdentically) {
  ModelRegistry registry;
  populate(registry);
  const auto expected = solo_outputs(registry, 6);

  ServeOptions opts;
  opts.max_batch = 3;
  opts.engine.jobs = 1;
  opts.engine_retries = 1;
  opts.retry_backoff = std::chrono::microseconds(50);
  // Every bit-sliced attempt (primary + retry) fails; every batch must
  // degrade to the scalar oracle and still return byte-identical outputs.
  opts.faults.seed = 12;
  opts.faults.engine_failure_prob = 1.0;
  InferenceServer server(registry, opts);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        server.submit("convnet", registry.find("convnet")->make_input(
                                     kInputSeed, i)));
  }
  for (int i = 0; i < 6; ++i) {
    InferenceResult res = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(res.output, expected.at({"convnet", i})) << "stream " << i;
    EXPECT_TRUE(res.via_fallback);
    EXPECT_EQ(res.engine_attempts, 3);  // primary + 1 retry + fallback
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.fallbacks, stats.batches);
  EXPECT_EQ(stats.retries, stats.batches * 1u);
  EXPECT_GE(server.fault_injector().engine_failures_injected(),
            2 * stats.batches);
}

TEST(ServeRobustness, FallbackFailureFailsFuturesWithoutKillingWorker) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.max_batch = 1;
  opts.batch_deadline = std::chrono::microseconds(0);
  opts.engine.jobs = 1;
  opts.engine_retries = 0;
  opts.retry_backoff = std::chrono::microseconds(0);
  opts.faults.seed = 13;
  opts.faults.engine_failure_prob = 1.0;
  opts.faults.fallback_failure_prob = 1.0;  // scalar fallback fails too
  InferenceServer server(registry, opts);

  const auto model = registry.find("mlp");
  auto f0 = server.submit(model, model->make_input(kInputSeed, 0));
  EXPECT_THROW((void)f0.get(), TransientEngineError);

  // The worker thread survived: a healthy run still completes after we
  // disable injection... which we cannot do per-request, so instead verify
  // the *next* request also resolves (exceptionally) rather than hanging.
  auto f1 = server.submit(model, model->make_input(kInputSeed, 1));
  EXPECT_THROW((void)f1.get(), TransientEngineError);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.fallbacks, 2u);
}

TEST(Serve, RegistryErrors) {
  ModelRegistry registry;
  populate(registry);
  EXPECT_THROW((void)registry.find("missing"), ConfigError);
  nn::Network net("dup", nn::Shape3{4, 4, 4});
  net.add_conv("c", 4, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "dup";
  p.conv_act = {8};
  p.conv_weight = 8;
  quant::apply_profile(net, p);
  EXPECT_THROW((void)registry.add_synthetic("convnet", std::move(net), p, 1),
               ConfigError);
  // Weight-count mismatch.
  nn::Network net2("dup2", nn::Shape3{4, 4, 4});
  net2.add_conv("c", 4, 3, 1, 1).precision_group = 0;
  quant::apply_profile(net2, p);
  EXPECT_THROW((void)registry.add("dup2", std::move(net2), p, {}), ConfigError);
}

TEST(ServeRobustness, PreExpiredAbsoluteDeadlineRejectsImmediately) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);
  const auto model = registry.find("mlp");

  const auto expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)server.submit(model, model->make_input(kInputSeed, 0),
                                   {.deadline_at = expired}),
               DeadlineExceededError);
  // try_submit must not burn its admission-wait budget on a request that is
  // already dead: the rejection is immediate even with a long timeout.
  EXPECT_THROW((void)server.try_submit(model, model->make_input(kInputSeed, 0),
                                       std::chrono::seconds(10),
                                       {.deadline_at = expired}),
               DeadlineExceededError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));

  // Dead-on-arrival requests were never admitted: they count as rejected,
  // and the drain invariant stays exact.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.for_priority(Priority::kInteractive).rejected, 2u);

  // A future-dated absolute deadline admits normally.
  auto fut = server.submit(
      model, model->make_input(kInputSeed, 0),
      {.deadline_at = std::chrono::steady_clock::now() +
                      std::chrono::seconds(30)});
  EXPECT_NO_THROW((void)fut.get());
}

TEST(ServeRobustness, QueueSnapshotTracksPendingAndDrains) {
  ModelRegistry registry;
  populate(registry);
  ServeOptions opts;
  opts.max_batch = 8;
  // Hold the batch open so the queued requests are observable.
  opts.batch_deadline = std::chrono::microseconds(50'000);
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);
  const auto model = registry.find("mlp");

  const QueueSnapshot idle = server.queue_snapshot();
  EXPECT_EQ(idle.depth, 0u);
  EXPECT_EQ(idle.inflight, 0u);
  EXPECT_EQ(idle.oldest_age.count(), 0);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(model, model->make_input(kInputSeed, i)));
  }
  // The snapshot is published under the server lock before submit returns,
  // so the queued requests are visible immediately (the batcher may have
  // popped some already — depth + inflight covers them either way).
  const QueueSnapshot busy = server.queue_snapshot();
  EXPECT_GE(busy.depth + busy.inflight, 1u);
  if (busy.depth > 0) EXPECT_GE(busy.oldest_age.count(), 0);

  for (auto& fut : futures) EXPECT_NO_THROW((void)fut.get());
  server.stop();  // joins workers: all snapshot decrements have landed
  const QueueSnapshot drained = server.queue_snapshot();
  EXPECT_EQ(drained.depth, 0u);
  EXPECT_EQ(drained.inflight, 0u);
  EXPECT_EQ(drained.oldest_age.count(), 0);
}

// ---- Golden digest of server outputs --------------------------------------
// FNV-1a over the outputs of a fixed request roster served through the
// batcher, in submission order. Must equal both the pinned constant
// (captured from solo runs of the engine on this roster — serving cannot
// change results) and stay stable across batching compositions: the digest
// is independent of how the batcher happened to slice the roster.

constexpr std::uint64_t kServeGolden = 0xab0a1c6213d51055ull;

TEST(ServeGolden, OutputsMatchPinnedSoloDigest) {
  ModelRegistry registry;
  populate(registry);

  // Digest of the same roster run solo, computed in-test: serving must be
  // invisible in the results no matter how the batcher sliced the roster.
  golden::Fnv solo;
  {
    sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
    for (int i = 0; i < 12; ++i) {
      const auto model = registry.find(i % 2 == 0 ? "convnet" : "mlp");
      solo.tensor(engine
                      .run_network(model->net, model->make_input(kInputSeed, i),
                                   model->weights)
                      .output);
    }
  }
  EXPECT_EQ(solo.h, kServeGolden);

  ServeOptions opts;
  opts.max_batch = 6;
  opts.batch_deadline = std::chrono::microseconds(300);
  opts.workers = 1;
  opts.engine.jobs = 1;
  InferenceServer server(registry, opts);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    const auto model = registry.find(i % 2 == 0 ? "convnet" : "mlp");
    futures.push_back(server.submit(model, model->make_input(kInputSeed, i)));
  }
  golden::Fnv f;
  for (auto& fut : futures) f.tensor(fut.get().output);
  EXPECT_EQ(f.h, kServeGolden);
}

}  // namespace
}  // namespace loom::serve
