#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace loom {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Title");
  t.set_header({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta-long", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("beta-long"), std::string::npos);
  // The "Value" column of both rows starts at the same offset.
  const auto line_with = [&](const std::string& needle) {
    std::istringstream in(out);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find(needle) != std::string::npos) return line;
    }
    return std::string{};
  };
  EXPECT_EQ(line_with("alpha").find('1'), line_with("beta-long").find("22"));
}

TEST(TextTable, RuleSeparatesGroups) {
  TextTable t;
  t.add_row({"a"});
  t.add_rule();
  t.add_row({"b"});
  const std::string out = t.render();
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(TextTable, NumFormatsDigits) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b,c"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n1,2\n");
}

}  // namespace
}  // namespace loom
