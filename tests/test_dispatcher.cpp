#include <gtest/gtest.h>

#include <vector>

#include "arch/dispatcher.hpp"
#include "arch/sip.hpp"

namespace loom::arch {
namespace {

TEST(Dispatcher, ActivationStreamIsMsbFirst) {
  Dispatcher d(4);
  const std::vector<std::vector<Value>> cols = {{0b101, 0b010, 0, 0}};
  const ActivationStream s = d.stream_activations(cols, 3, /*dynamic=*/false);
  EXPECT_EQ(s.precision, 3);
  EXPECT_EQ(s.columns, 1);
  // Step 0 carries bit 2 (MSB): only value 0b101 has it -> lane 0.
  EXPECT_EQ(s.lanes(0, 0), 0b0001u);
  // Step 1 carries bit 1: only 0b010 -> lane 1.
  EXPECT_EQ(s.lanes(1, 0), 0b0010u);
  // Step 2 carries bit 0: only 0b101 -> lane 0.
  EXPECT_EQ(s.lanes(2, 0), 0b0001u);
}

TEST(Dispatcher, DynamicDetectionTrimsPlanes) {
  Dispatcher d(4);
  const std::vector<std::vector<Value>> cols = {{3, 1, 2, 0}};  // needs 2 bits
  const ActivationStream s = d.stream_activations(cols, 8, /*dynamic=*/true);
  EXPECT_EQ(s.precision, 2);
  EXPECT_EQ(d.detector().invocations(), 1u);
}

TEST(Dispatcher, DynamicDetectionClipsAtProfile) {
  Dispatcher d(4);
  const std::vector<std::vector<Value>> cols = {{255, 0, 0, 0}};  // 8 bits
  const ActivationStream s = d.stream_activations(cols, 6, /*dynamic=*/true);
  EXPECT_EQ(s.precision, 6);  // profile bound wins
}

TEST(Dispatcher, WeightStreamIsLsbFirst) {
  Dispatcher d(4);
  const std::vector<std::vector<Value>> rows = {{0b01, 0b10, 0, 0}};
  const WeightStream s = d.stream_weights(rows, 2);
  EXPECT_EQ(s.wr_word(0, 0), 0b0001u);  // bit 0: value 0b01 -> lane 0
  EXPECT_EQ(s.wr_word(1, 0), 0b0010u);  // bit 1: value 0b10 -> lane 1
}

TEST(Dispatcher, CountsStreamedBits) {
  Dispatcher d(16);
  const std::vector<std::vector<Value>> cols(2, std::vector<Value>(16, 1));
  (void)d.stream_activations(cols, 4, false);
  EXPECT_EQ(d.activation_bits_streamed(), 2u * 16 * 4);
  const std::vector<std::vector<Value>> rows(3, std::vector<Value>(16, 1));
  (void)d.stream_weights(rows, 5);
  EXPECT_EQ(d.weight_bits_streamed(), 3u * 16 * 5);
  d.reset();
  EXPECT_EQ(d.activation_bits_streamed(), 0u);
}

TEST(Dispatcher, StreamsDriveSipToExactProduct) {
  // Full path: dispatcher serialization -> SIP cycles == reference dot.
  Dispatcher d(8);
  const std::vector<Value> acts = {5, 0, 12, 7, 1, 3, 0, 9};
  const std::vector<Value> weights = {3, -2, 0, 7, -8, 1, 4, -1};
  const ActivationStream as = d.stream_activations({acts}, 4, true);
  const WeightStream ws = d.stream_weights({weights}, 5);

  Sip sip(SipConfig{.lanes = 8});
  sip.begin_output();
  for (int bit = 0; bit < ws.precision; ++bit) {
    sip.begin_weight_pass(ws.wr_word(bit, 0), bit, bit == ws.precision - 1);
    for (int step = 0; step < as.precision; ++step) {
      sip.cycle(as.lanes(step, 0), false);
    }
    sip.end_weight_pass();
  }
  Wide expect = 0;
  for (std::size_t i = 0; i < acts.size(); ++i) {
    expect += Wide{acts[i]} * weights[i];
  }
  EXPECT_EQ(sip.output(), expect);
}

}  // namespace
}  // namespace loom::arch
