#include <gtest/gtest.h>

#include <vector>

#include "arch/serializer.hpp"
#include "arch/transposer.hpp"
#include "common/error.hpp"
#include "nn/synthetic.hpp"

namespace loom::arch {
namespace {

TEST(BitPlanes, SetAndGet) {
  BitPlanes planes(100, 8);
  planes.set_bit(63, 3, 1);
  planes.set_bit(64, 3, 1);
  EXPECT_EQ(planes.bit(63, 3), 1);
  EXPECT_EQ(planes.bit(64, 3), 1);
  EXPECT_EQ(planes.bit(62, 3), 0);
  planes.set_bit(63, 3, 0);
  EXPECT_EQ(planes.bit(63, 3), 0);
}

TEST(BitPlanes, StorageBitsIsValuesTimesPrecision) {
  const BitPlanes planes(1000, 11);
  EXPECT_EQ(planes.storage_bits(), 11000);
}

TEST(BitPlanes, BoundsChecked) {
  BitPlanes planes(10, 4);
  EXPECT_THROW((void)planes.bit(10, 0), ContractViolation);
  EXPECT_THROW((void)planes.bit(0, 4), ContractViolation);
}

TEST(Serialize, RoundTripUnsigned) {
  const std::vector<Value> values = {0, 1, 127, 200, 255};
  const BitPlanes planes = serialize(values, 8);
  const auto back = deserialize(planes, /*is_signed=*/false);
  EXPECT_EQ(back, values);
}

TEST(Serialize, RoundTripSignedWithSignExtension) {
  const std::vector<Value> values = {-1, 1, -64, 63, 0};
  const BitPlanes planes = serialize(values, 7);
  const auto back = deserialize(planes, /*is_signed=*/true);
  EXPECT_EQ(back, values);
}

TEST(Serialize, RoundTripFullWidth) {
  const std::vector<Value> values = {-32768, 32767, -1, 0};
  const auto back = deserialize(serialize(values, 16), true);
  EXPECT_EQ(back, values);
}

TEST(Serialize, RandomRoundTripAcrossPrecisions) {
  for (int p = 2; p <= 15; ++p) {
    nn::SyntheticSpec spec{.precision = p, .alpha = 1.0, .is_signed = true};
    const nn::SyntheticSource src(p, 0, spec);
    std::vector<Value> values(257);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = src.at(i);
    }
    const auto back = deserialize(serialize(values, p), true);
    EXPECT_EQ(back, values) << "precision " << p;
  }
}

TEST(Serialize, PlaneLayoutIsBitInterleaved) {
  // "Pack first their bit 0, then their bit 1, ..." — plane b of value i
  // is bit b of value i.
  const std::vector<Value> values = {0b101, 0b010};
  const BitPlanes planes = serialize(values, 3);
  EXPECT_EQ(planes.bit(0, 0), 1);
  EXPECT_EQ(planes.bit(1, 0), 0);
  EXPECT_EQ(planes.bit(0, 1), 0);
  EXPECT_EQ(planes.bit(1, 1), 1);
  EXPECT_EQ(planes.bit(0, 2), 1);
  EXPECT_EQ(planes.bit(1, 2), 0);
}

TEST(Transposer, RotateCountsActivity) {
  Transposer t;
  const std::vector<Value> out_block(32, 5);
  const BitPlanes planes = t.rotate(out_block, 9);
  EXPECT_EQ(planes.values(), 32);
  EXPECT_EQ(planes.precision(), 9);
  EXPECT_EQ(t.rotations(), 1u);
  EXPECT_EQ(t.values_rotated(), 32u);
  t.reset();
  EXPECT_EQ(t.rotations(), 0u);
}

TEST(Transposer, RotationPreservesValues) {
  Transposer t;
  const std::vector<Value> block = {1, -2, 100, -100};
  const auto back = deserialize(t.rotate(block, 16), true);
  EXPECT_EQ(back, block);
}

}  // namespace
}  // namespace loom::arch
