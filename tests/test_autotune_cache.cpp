// Persistent autotune cache: format safety and cross-process memoization.
//
// The corruption battery mirrors test_model_snapshot.cpp: every truncation
// length and every flipped bit of a valid cache image must surface as a
// typed AutotuneCacheError — never a crash, never a silently-installed
// winner — and a rejected load leaves the in-memory autotuner exactly as it
// was. The round-trip tests simulate two processes with reset_for_test():
// converge, save, reset, load, and assert the second "process" answers every
// choose() from the cache with zero exploration measurements.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "sim/autotune_cache.hpp"
#include "sim/backend.hpp"
#include "sim/functional.hpp"

namespace loom::sim {
namespace {

/// Deterministic synthetic data (same idiom as test_lut_golden).
nn::Tensor synth(const nn::Shape& shape, int precision, bool is_signed,
                 std::uint64_t seed, std::uint64_t stream) {
  nn::Tensor t(shape);
  CounterRng rng(seed, stream);
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const std::uint64_t u = rng.bits(static_cast<std::uint64_t>(i));
    if (is_signed) {
      const auto span = std::int64_t{1} << precision;
      t.set_flat(i, static_cast<Value>(static_cast<std::int64_t>(u % span) -
                                       (span >> 1)));
    } else {
      const int bits = std::min(precision, 15);
      t.set_flat(i, static_cast<Value>(u & ((1u << bits) - 1)));
    }
  }
  return t;
}

class AutotuneCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("LOOM_AUTOTUNE_PIN");
    unsetenv("LOOM_AUTOTUNE_CACHE");
    auto& tuner = BackendAutotuner::instance();
    tuner.set_timing_override_for_test(nullptr);
    tuner.reset_for_test();
  }
  void TearDown() override {
    SetUp();
    std::remove(cache_path().c_str());
  }

  static std::string cache_path() {
    return testing::TempDir() + "loom_autotune_cache_test.bin";
  }

  static nn::Layer small_layer() {
    nn::Layer l = nn::make_conv("tune", nn::Shape3{8, 6, 6}, 12, 3, 1, 1);
    l.act_precision = 7;
    l.weight_precision = 3;
    return l;
  }

  /// Run the layer once through a fresh "auto" engine; returns the kernel
  /// that actually ran it.
  static std::string run_auto(const nn::Layer& layer, const nn::Tensor& input,
                              const nn::Tensor& weights) {
    FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1, .backend = "auto"});
    return eng.run_conv(layer, input, weights, kBasePrecision).backend;
  }

  /// Drive the real choose/record path to one decided cell (winner "lut"
  /// under the deterministic timings), then drop the override so later
  /// phases cannot re-measure behind our back.
  static void converge_one_cell() {
    auto& tuner = BackendAutotuner::instance();
    tuner.set_timing_override_for_test(
        [](const TuneKey&, const std::string& backend) -> std::uint64_t {
          if (backend == "lut") return 100;
          if (backend == "bitslice") return 200;
          return 300;  // lut-outer
        });
    const nn::Layer layer = small_layer();
    const nn::Tensor input = synth(
        nn::Shape{layer.in.c, layer.in.h, layer.in.w}, layer.act_precision,
        false, 1, 7);
    const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                     layer.weight_precision, true, 1, 9);
    ASSERT_EQ(run_auto(layer, input, weights), "lut");
    tuner.set_timing_override_for_test(nullptr);
  }

  /// A hand-built decided cell with distinctive values in every TuneKey
  /// field (fc-kind, so it also covers the non-conv path).
  static BackendAutotuner::Decision sample_decision() {
    BackendAutotuner::Decision d;
    d.key = TuneKey{.kind = 1,
                    .in_c = 4096,
                    .in_h = 1,
                    .in_w = 1,
                    .out_c = 1000,
                    .kernel_h = 1,
                    .kernel_w = 1,
                    .stride = 1,
                    .pad = 0,
                    .groups = 1,
                    .pa = 9,
                    .pw = 8,
                    .act_signed = false,
                    .dynamic = true,
                    .batch = 3,
                    .rows = 16,
                    .cols = 16,
                    .lanes = 16,
                    .jobs = 2};
    d.winner = "lut";
    d.samples = {{"bitslice", 222}, {"lut", 111}, {"lut-outer", 333}};
    return d;
  }

  static std::vector<std::uint8_t> image_of(
      const std::vector<BackendAutotuner::Decision>& ds) {
    return encode_autotune_cache(ds, current_autotune_cache_key());
  }
};

// ---- Two-"process" round trip ---------------------------------------------

TEST_F(AutotuneCacheTest, SecondProcessStartsWarmWithZeroExploration) {
  auto& tuner = BackendAutotuner::instance();
  const nn::Layer layer = small_layer();
  const nn::Tensor input = synth(nn::Shape{layer.in.c, layer.in.h, layer.in.w},
                                 layer.act_precision, false, 1, 7);
  const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                   layer.weight_precision, true, 1, 9);

  // Cold "process": real wall-clock exploration, one measurement per run,
  // until the cell decides (three candidates, so three runs suffice; the
  // bound is slack in case a claim is retimed).
  std::string winner;
  for (int i = 0; i < 10 && winner.empty(); ++i) {
    (void)run_auto(layer, input, weights);
    const auto ds = tuner.decisions();
    ASSERT_EQ(ds.size(), 1u);
    winner = ds[0].winner;
  }
  ASSERT_FALSE(winner.empty());
  EXPECT_GE(tuner.cache_stats().explore_records, 3u);  // one per candidate

  save_autotune_cache(cache_path());

  // "Process" two: empty autotuner, warm cache.
  tuner.reset_for_test();
  ASSERT_EQ(tuner.decisions().size(), 0u);
  ASSERT_EQ(load_autotune_cache(cache_path()), 1u);

  const auto ds = tuner.decisions();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].winner, winner);
  EXPECT_GE(ds[0].samples.size(), 3u);

  // Deterministic timings now favor a fixed candidate — but the installed
  // winner must answer immediately, with no re-measurement at all.
  tuner.set_timing_override_for_test(
      [](const TuneKey&, const std::string& backend) -> std::uint64_t {
        return backend == "lut-outer" ? 1 : 1000;
      });
  EXPECT_EQ(run_auto(layer, input, weights), winner);
  EXPECT_EQ(run_auto(layer, input, weights), winner);

  const auto cs = tuner.cache_stats();
  EXPECT_EQ(cs.loaded_cells, 1u);
  EXPECT_EQ(cs.hits, 2u);
  EXPECT_EQ(cs.misses, 0u);
  EXPECT_EQ(cs.explore_records, 0u);  // the all-hit warm-start criterion
}

TEST_F(AutotuneCacheTest, CellFieldsRoundTripExactly) {
  const BackendAutotuner::Decision d = sample_decision();
  const auto decoded =
      decode_autotune_cache(image_of({d}), current_autotune_cache_key());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, d.key);
  EXPECT_EQ(decoded[0].winner, d.winner);
  ASSERT_EQ(decoded[0].samples.size(), d.samples.size());
  for (std::size_t i = 0; i < d.samples.size(); ++i) {
    EXPECT_EQ(decoded[0].samples[i].backend, d.samples[i].backend);
    EXPECT_EQ(decoded[0].samples[i].ns, d.samples[i].ns);
  }
}

TEST_F(AutotuneCacheTest, EncodeSkipsUndecidedAndPinnedCells) {
  BackendAutotuner::Decision undecided = sample_decision();
  undecided.winner.clear();
  BackendAutotuner::Decision pinned = sample_decision();
  pinned.key.batch = 7;  // distinct cell
  pinned.pinned = true;
  BackendAutotuner::Decision orphan = sample_decision();
  orphan.key.batch = 8;
  orphan.winner = "not-sampled";
  const BackendAutotuner::Decision good = sample_decision();

  const auto decoded = decode_autotune_cache(
      image_of({undecided, pinned, orphan, good}),
      current_autotune_cache_key());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, good.key);
}

// ---- Corruption battery ----------------------------------------------------

TEST_F(AutotuneCacheTest, EveryTruncationFailsTyped) {
  const auto image = image_of({sample_decision()});
  EXPECT_NO_THROW(
      (void)decode_autotune_cache(image, current_autotune_cache_key()));
  for (std::size_t n = 0; n < image.size(); ++n) {
    const std::span<const std::uint8_t> prefix(image.data(), n);
    EXPECT_THROW(
        (void)decode_autotune_cache(prefix, current_autotune_cache_key()),
        AutotuneCacheError)
        << "truncated to " << n << " of " << image.size() << " bytes";
  }
}

TEST_F(AutotuneCacheTest, EveryBitFlipFailsTyped) {
  const auto image = image_of({sample_decision()});
  for (std::size_t bit = 0; bit < image.size() * 8; ++bit) {
    auto corrupt = image;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(
        (void)decode_autotune_cache(corrupt, current_autotune_cache_key()),
        AutotuneCacheError)
        << "flipped bit " << bit;
  }
  // The pristine image still decodes — the loop never mutated it.
  EXPECT_NO_THROW(
      (void)decode_autotune_cache(image, current_autotune_cache_key()));
}

TEST_F(AutotuneCacheTest, VersionSkewRejected) {
  auto image = image_of({sample_decision()});
  image[8] ^= 0x01;  // version u32 follows the 8-byte magic
  EXPECT_THROW(
      (void)decode_autotune_cache(image, current_autotune_cache_key()),
      AutotuneCacheError);
}

TEST_F(AutotuneCacheTest, ForeignKeysRejected) {
  const AutotuneCacheKey mine = current_autotune_cache_key();

  AutotuneCacheKey other_simd = mine;
  other_simd.simd = mine.simd == "scalar" ? "avx512" : "scalar";
  EXPECT_THROW((void)decode_autotune_cache(
                   encode_autotune_cache({{sample_decision()}}, other_simd),
                   mine),
               AutotuneCacheError);

  AutotuneCacheKey other_set = mine;
  other_set.backend_set_hash ^= 1;
  EXPECT_THROW((void)decode_autotune_cache(
                   encode_autotune_cache({{sample_decision()}}, other_set),
                   mine),
               AutotuneCacheError);
}

TEST_F(AutotuneCacheTest, MissingFileThrows) {
  EXPECT_THROW((void)load_autotune_cache(testing::TempDir() +
                                         "no_such_autotune_cache.bin"),
               AutotuneCacheError);
}

// ---- Rejection never poisons in-memory state -------------------------------

TEST_F(AutotuneCacheTest, RejectedLoadLeavesAutotunerUntouched) {
  auto& tuner = BackendAutotuner::instance();
  converge_one_cell();
  save_autotune_cache(cache_path());

  // Corrupt one payload byte on disk (past the 20-byte header).
  {
    std::FILE* f = std::fopen(cache_path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  const auto before = tuner.decisions();
  EXPECT_THROW((void)load_autotune_cache(cache_path()), AutotuneCacheError);
  const auto after = tuner.decisions();
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after[0].winner, before[0].winner);
  EXPECT_EQ(tuner.cache_stats().loaded_cells, 0u);
}

TEST_F(AutotuneCacheTest, InstallNeverOverridesInProcessCells) {
  auto& tuner = BackendAutotuner::instance();
  converge_one_cell();
  const auto ds = tuner.decisions();
  ASSERT_EQ(ds.size(), 1u);

  // A cache claiming a different winner for the same key must lose to the
  // cell this process measured itself.
  BackendAutotuner::Decision rival = ds[0];
  rival.winner = "bitslice";
  EXPECT_EQ(tuner.install({{rival}}), 0u);
  EXPECT_EQ(tuner.decisions()[0].winner, "lut");
}

TEST_F(AutotuneCacheTest, PinOutranksAnyCache) {
  ASSERT_EQ(setenv("LOOM_AUTOTUNE_PIN", "bitslice", 1), 0);
  auto& tuner = BackendAutotuner::instance();
  tuner.reset_for_test();  // re-reads the pin
  EXPECT_EQ(tuner.install({{sample_decision()}}), 0u);
  EXPECT_EQ(tuner.decisions().size(), 0u);
}

}  // namespace
}  // namespace loom::sim
