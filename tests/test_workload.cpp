// Workload preparation: group-precision detection from real (overlapping)
// window data, Table 3 reproduction via calibrated weight streams, and the
// output-precision chain.
#include <gtest/gtest.h>

#include "nn/zoo/zoo.hpp"
#include "quant/profiles.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

quant::PrecisionProfile custom_profile() {
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {8, 6};
  p.conv_weight = 10;
  p.fc_weight = {9};
  p.dynamic_act_trim = 1.0;
  return p;
}

nn::Network custom_network() {
  nn::Network net("custom", nn::Shape3{8, 16, 16});
  net.add_conv("c1", 32, 3, 1, 1).precision_group = 0;
  net.add_conv("c2", 16, 3, 1, 1).precision_group = 1;
  net.add_fc("f1", 100);
  return net;
}

NetworkWorkload make_workload() {
  nn::Network net = custom_network();
  const auto profile = custom_profile();
  quant::apply_profile(net, profile);
  return NetworkWorkload(std::move(net), profile);
}

TEST(Workload, GroupPrecisionWithinProfileBound) {
  NetworkWorkload wl = make_workload();
  LayerWorkload& lw = wl.layer(0);
  const nn::Layer& layer = lw.layer();
  const std::int64_t wb_count = ceil_div(layer.windows(), 16);
  const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
  for (std::int64_t wb = 0; wb < wb_count; ++wb) {
    for (std::int64_t ic = 0; ic < ic_count; ++ic) {
      const int p = lw.act_group_precision(0, wb, ic, 16);
      EXPECT_GE(p, 1);
      EXPECT_LE(p, layer.act_precision);
    }
  }
}

TEST(Workload, GroupPrecisionDeterministicAcrossInstances) {
  NetworkWorkload a = make_workload();
  NetworkWorkload b = make_workload();
  for (std::int64_t wb = 0; wb < 4; ++wb) {
    EXPECT_EQ(a.layer(0).act_group_precision(0, wb, 0, 16),
              b.layer(0).act_group_precision(0, wb, 0, 16));
  }
}

TEST(Workload, MeanDetectedPrecisionNearTrimTarget) {
  NetworkWorkload wl = make_workload();
  LayerWorkload& lw = wl.layer(0);
  const nn::Layer& layer = lw.layer();
  const std::int64_t wb_count = ceil_div(layer.windows(), 16);
  const std::int64_t ic_count = ceil_div(layer.inner_length(), 16);
  double sum = 0.0;
  std::int64_t n = 0;
  for (std::int64_t wb = 0; wb < wb_count; ++wb) {
    for (std::int64_t ic = 0; ic < ic_count; ++ic) {
      sum += lw.act_group_precision(0, wb, ic, 16);
      ++n;
    }
  }
  // Profile Pa = 8, trim target = 1.0 -> mean detected ~ 7.
  EXPECT_NEAR(sum / static_cast<double>(n), 7.0, 0.5);
}

TEST(Workload, SmallerColumnsNeverIncreasePrecision) {
  // A group of 4 windows is a subset of the 16-window group: its detected
  // precision cannot exceed the superset's.
  NetworkWorkload wl = make_workload();
  LayerWorkload& lw = wl.layer(0);
  for (std::int64_t wb16 = 0; wb16 < 4; ++wb16) {
    const int p16 = lw.act_group_precision(0, wb16, 0, 16);
    for (std::int64_t sub = 0; sub < 4; ++sub) {
      const int p4 = lw.act_group_precision(0, wb16 * 4 + sub, 0, 4);
      EXPECT_LE(p4, p16);
    }
  }
}

TEST(Workload, EffectiveWeightPrecisionBelowProfile) {
  NetworkWorkload wl = make_workload();
  const double eff = wl.layer(0).effective_weight_precision();
  EXPECT_GT(eff, 1.0);
  EXPECT_LT(eff, 10.0);  // profile Pw = 10, target 0.85x = 8.5
  EXPECT_NEAR(eff, 8.5, 0.5);
}

TEST(Workload, HonestPrecisionAtLeastMean) {
  NetworkWorkload wl = make_workload();
  LayerWorkload& lw = wl.layer(0);
  const double mean_p = lw.effective_weight_precision();
  const double honest1 = lw.honest_weight_precision(1);
  const double honest128 = lw.honest_weight_precision(128);
  EXPECT_GE(honest1 + 0.3, mean_p);  // single group ~ mean (MC tolerance)
  EXPECT_GE(honest128, honest1);     // max over more groups only grows
  EXPECT_LE(honest128, 10.0);
}

TEST(Workload, OutPrecisionFollowsConsumerProfile) {
  NetworkWorkload wl = make_workload();
  // c1 feeds c2 whose profile Pa is 6; c2 feeds the FC (16).
  EXPECT_EQ(wl.layer(0).out_precision, 6);
  EXPECT_EQ(wl.layer(1).out_precision, 16);
}

TEST(Workload, Table3TargetsReproducedOnZooNetwork) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  const auto& table3 = quant::effective_weight_precisions("alexnet");
  const auto conv_indices = wl->network().conv_indices();
  ASSERT_EQ(conv_indices.size(), table3.size());
  for (std::size_t i = 0; i < conv_indices.size(); ++i) {
    const double measured = wl->layer(conv_indices[i]).effective_weight_precision();
    EXPECT_NEAR(measured, table3[i], 0.25) << "conv layer " << i;
  }
}

TEST(Workload, FcWeightTargetUsesConvTrimRatio) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  const auto fc_indices = wl->network().fc_indices();
  const double eff = wl->layer(fc_indices[0]).effective_weight_precision();
  // fc6 profile Pw = 10; AlexNet conv trim ratio ~ 7.7/11 -> target ~ 7.0.
  EXPECT_GT(eff, 5.5);
  EXPECT_LT(eff, 10.0);
}

TEST(Workload, PrepareNetworkAppliesProfile) {
  auto wl = prepare_network("vggs", quant::AccuracyTarget::k99);
  const auto convs = wl->network().conv_indices();
  EXPECT_EQ(wl->network().layer(convs[0]).act_precision, 7);
  EXPECT_EQ(wl->network().layer(convs[0]).weight_precision, 11);
}

}  // namespace
}  // namespace loom::sim
