// Cross-backend differential property harness: every backend in the
// registry — present and future — is held to byte-identity against the
// scalar arch::Sip oracle and the nn::reference bit-parallel golden model
// over randomized geometry (pad/stride/groups/lane-tail/cols-tail) ×
// Pa,Pw ∈ {1..16} × batch 1–9. A new backend gets this coverage by
// registering, not by writing a new test file: the sweeps below enumerate
// BackendRegistry and skip nothing that claims to support the grid.
//
// Stats are part of the contract: every word-parallel backend must report
// the same ConvStats as the bit-sliced engine for the same batched run
// (the scalar oracle joins that comparison at batch == 1; for larger
// batches its N-solo chunk structure legitimately differs from the
// concatenated-window accounting).
//
// Failures print the iteration seed: rerun with
//   LOOM_BACKEND_PROP_SEED=<seed> ./test_backend_differential
// to replay just that case (iteration count drops to 1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/reference.hpp"
#include "sim/backend.hpp"
#include "sim/functional.hpp"
#include "sim/lut_engine.hpp"

namespace loom::sim {
namespace {

struct Case {
  nn::Layer layer;
  std::vector<nn::Tensor> inputs;  // one per request
  nn::Tensor weights;
};

/// Uniform signed/unsigned values that fit the given streamed precision
/// exactly, with a `zero_run` chance of zeroing stretches (exercises dead
/// LUT groups, zero-precision detection groups and empty bit-planes).
nn::Tensor random_tensor(const nn::Shape& shape, int precision, bool is_signed,
                         SequentialRng& base, std::uint64_t stream,
                         double zero_run_p) {
  nn::Tensor t(shape);
  CounterRng rng(base.next_bits(), stream);
  bool zeroing = false;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const std::uint64_t u = rng.bits(static_cast<std::uint64_t>(i));
    if ((u & 0xffu) < static_cast<std::uint64_t>(zero_run_p * 256.0)) {
      zeroing = !zeroing;
    }
    if (zeroing) {
      t.set_flat(i, 0);
      continue;
    }
    if (is_signed) {
      const auto span = std::int64_t{1} << precision;  // [-2^(p-1), 2^(p-1))
      t.set_flat(i, static_cast<Value>(static_cast<std::int64_t>(u % span) -
                                       (span >> 1)));
    } else {
      // Conv activations are unsigned bit patterns, but Tensor stores int16:
      // keep bit 15 clear so the signed reference model and the hardware's
      // unsigned streams agree (post-ReLU activations are non-negative, so
      // a 16-bit profile still never uses the top bit for magnitude).
      const int bits = std::min(precision, 15);
      t.set_flat(i, static_cast<Value>(u & ((1u << bits) - 1)));
    }
  }
  return t;
}

Case random_conv_case(std::uint64_t seed) {
  SequentialRng rng(seed, 1);
  const int groups = 1 + static_cast<int>(rng.next_below(3));
  const auto cig = 1 + static_cast<std::int64_t>(rng.next_below(4));
  const auto cog = 1 + static_cast<std::int64_t>(rng.next_below(5));
  const int in_h = 3 + static_cast<int>(rng.next_below(10));
  const int in_w = 3 + static_cast<int>(rng.next_below(10));
  const int kernel = 1 + static_cast<int>(rng.next_below(
                             std::min(4, std::min(in_h, in_w))));
  const int stride = 1 + static_cast<int>(rng.next_below(3));
  const int pad = static_cast<int>(rng.next_below(3));
  const int pa = 1 + static_cast<int>(rng.next_below(16));
  const int pw = 1 + static_cast<int>(rng.next_below(16));
  const int batch = 1 + static_cast<int>(rng.next_below(9));

  Case c{nn::make_conv("diff", nn::Shape3{cig * groups, in_h, in_w},
                       static_cast<int>(cog * groups), kernel, stride, pad,
                       groups),
         {}, nn::Tensor{}};
  c.layer.act_precision = pa;
  c.layer.weight_precision = pw;
  for (int r = 0; r < batch; ++r) {
    nn::Tensor t = random_tensor(nn::Shape{c.layer.in.c, c.layer.in.h,
                                           c.layer.in.w},
                                 pa, /*is_signed=*/false, rng, 100 + r, 0.1);
    if (rng.next_below(8) == 0) t = nn::Tensor(t.shape());  // all-zero request
    c.inputs.push_back(std::move(t));
  }
  c.weights = random_tensor(nn::Shape{c.layer.weight_count()}, pw,
                            /*is_signed=*/true, rng, 999, 0.05);
  return c;
}

Case random_fc_case(std::uint64_t seed) {
  SequentialRng rng(seed, 2);
  const auto ci = 1 + static_cast<std::int64_t>(rng.next_below(96));
  const int co = 1 + static_cast<int>(rng.next_below(80));
  const int pw = 1 + static_cast<int>(rng.next_below(16));
  const int batch = 1 + static_cast<int>(rng.next_below(9));

  Case c{nn::make_fc("diff_fc", nn::Shape3{ci, 1, 1}, co), {}, nn::Tensor{}};
  c.layer.weight_precision = pw;
  for (int r = 0; r < batch; ++r) {
    // FC activations stream all 16 signed bits.
    c.inputs.push_back(random_tensor(nn::Shape{ci}, kBasePrecision,
                                     /*is_signed=*/true, rng, 200 + r, 0.1));
  }
  c.weights = random_tensor(nn::Shape{c.layer.weight_count()}, pw,
                            /*is_signed=*/true, rng, 998, 0.05);
  return c;
}

/// Random grid, covering lane tails (lanes ∤ inner) and cols tails
/// (cols ∤ windows) alongside the parallel fan-out.
BackendContext random_ctx(std::uint64_t seed) {
  SequentialRng rng(seed, 3);
  BackendContext ctx;
  ctx.rows = 1 + static_cast<int>(rng.next_below(12));
  ctx.cols = 1 + static_cast<int>(rng.next_below(20));
  ctx.lanes = 1 + static_cast<int>(rng.next_below(16));
  ctx.jobs = 1 + static_cast<int>(rng.next_below(3));
  return ctx;
}

bool random_dynamic(std::uint64_t seed) {
  SequentialRng rng(seed, 4);
  return rng.next_below(2) == 0;
}

/// Iteration seeds: LOOM_BACKEND_PROP_SEED replays one failing case.
std::vector<std::uint64_t> iteration_seeds(std::uint64_t base, int count) {
  if (const char* env = std::getenv("LOOM_BACKEND_PROP_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

std::vector<nn::WideTensor> make_wides(const nn::Shape& shape, std::size_t n) {
  std::vector<nn::WideTensor> w;
  w.reserve(n);
  for (std::size_t r = 0; r < n; ++r) w.emplace_back(shape);
  return w;
}

void expect_stats_eq(const BitsliceEngine::ConvStats& a,
                     const BitsliceEngine::ConvStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.chunks, b.chunks);
  // streamed_pa is a sum of integers < 2^53, so the double is exact and
  // order-independent: bitwise equality is the contract, not a tolerance.
  EXPECT_EQ(a.streamed_pa, b.streamed_pa);
  EXPECT_EQ(a.act_bits_streamed, b.act_bits_streamed);
  EXPECT_EQ(a.weight_bits_streamed, b.weight_bits_streamed);
  EXPECT_EQ(a.detect_invocations, b.detect_invocations);
  EXPECT_EQ(a.detect_values, b.detect_values);
}

// ---- Conv: every registered backend vs scalar oracle vs reference ---------

TEST(BackendDifferential, ConvAllRegisteredBackendsByteIdentical) {
  auto& reg = BackendRegistry::instance();
  for (const std::uint64_t seed : iteration_seeds(0xD1FF, 30)) {
    SCOPED_TRACE("LOOM_BACKEND_PROP_SEED=" + std::to_string(seed));
    const Case c = random_conv_case(seed);
    const BackendContext ctx = random_ctx(seed);
    const BitsliceEngine::SliceSpec spec{
        .act_precision = c.layer.act_precision,
        .weight_precision = c.layer.weight_precision,
        .act_signed = false,
        .dynamic = random_dynamic(seed)};
    const std::size_t batch = c.inputs.size();
    const nn::Shape wide_shape{c.layer.out.c, c.layer.out.h, c.layer.out.w};

    // Scalar oracle, one request at a time: the ground truth every backend
    // (and the batching semantics itself) is pinned against.
    const BackendInfo* scalar_info = reg.find("scalar");
    ASSERT_NE(scalar_info, nullptr);
    auto scalar = scalar_info->make(ctx);
    std::vector<nn::WideTensor> oracle = make_wides(wide_shape, batch);
    std::vector<BitsliceEngine::ConvStats> oracle_stats;
    for (std::size_t r = 0; r < batch; ++r) {
      const nn::Tensor* in = &c.inputs[r];
      nn::WideTensor* out = &oracle[r];
      oracle_stats.push_back(scalar->run_conv_batch(
          c.layer, std::span<const nn::Tensor* const>(&in, 1), c.weights, spec,
          std::span<nn::WideTensor* const>(&out, 1)));
      EXPECT_EQ(oracle[r], nn::conv_forward(c.inputs[r], c.weights, c.layer))
          << "oracle vs reference, request " << r;
    }

    bool have_parallel_stats = false;
    BitsliceEngine::ConvStats parallel_stats;
    for (const std::string& name : reg.names()) {
      SCOPED_TRACE("backend " + name);
      const BackendInfo* info = reg.find(name);
      ASSERT_NE(info, nullptr);
      if (!info->supports(ctx)) continue;
      auto backend = info->make(ctx);

      std::vector<nn::WideTensor> wides = make_wides(wide_shape, batch);
      std::vector<const nn::Tensor*> in_ptrs;
      std::vector<nn::WideTensor*> wide_ptrs;
      for (std::size_t r = 0; r < batch; ++r) {
        in_ptrs.push_back(&c.inputs[r]);
        wide_ptrs.push_back(&wides[r]);
      }
      const BitsliceEngine::ConvStats st =
          backend->run_conv_batch(c.layer, in_ptrs, c.weights, spec, wide_ptrs);
      for (std::size_t r = 0; r < batch; ++r) {
        EXPECT_EQ(wides[r], oracle[r]) << "request " << r;
      }
      if (name == "scalar") {
        // The scalar backend's own batch is N solo runs by definition.
        BitsliceEngine::ConvStats sum;
        for (const auto& s : oracle_stats) {
          sum.cycles += s.cycles;
          sum.chunks += s.chunks;
          sum.streamed_pa += s.streamed_pa;
          sum.act_bits_streamed += s.act_bits_streamed;
          sum.weight_bits_streamed += s.weight_bits_streamed;
          sum.detect_invocations += s.detect_invocations;
          sum.detect_values += s.detect_values;
        }
        expect_stats_eq(st, sum);
        continue;
      }
      // Word-parallel backends share the concatenated-window accounting:
      // all must agree with each other, and with the scalar oracle whenever
      // the batch is a single request (same chunk structure).
      if (!have_parallel_stats) {
        parallel_stats = st;
        have_parallel_stats = true;
      } else {
        expect_stats_eq(st, parallel_stats);
      }
      if (batch == 1) expect_stats_eq(st, oracle_stats[0]);
    }
    EXPECT_TRUE(have_parallel_stats);  // bitslice at minimum supports 1..20 cols
  }
}

// ---- FC: every registered backend vs scalar oracle vs reference -----------

TEST(BackendDifferential, FcAllRegisteredBackendsByteIdentical) {
  auto& reg = BackendRegistry::instance();
  for (const std::uint64_t seed : iteration_seeds(0xFCD1FF, 30)) {
    SCOPED_TRACE("LOOM_BACKEND_PROP_SEED=" + std::to_string(seed));
    const Case c = random_fc_case(seed);
    const BackendContext ctx = random_ctx(seed);
    const std::size_t batch = c.inputs.size();
    const nn::Shape wide_shape{c.layer.out.c, 1, 1};

    const BackendInfo* scalar_info = reg.find("scalar");
    ASSERT_NE(scalar_info, nullptr);
    auto scalar = scalar_info->make(ctx);
    std::vector<nn::WideTensor> oracle = make_wides(wide_shape, batch);
    for (std::size_t r = 0; r < batch; ++r) {
      scalar->run_fc(c.layer, c.inputs[r], c.weights, c.layer.weight_precision,
                     oracle[r]);
      EXPECT_EQ(oracle[r], nn::fc_forward(c.inputs[r], c.weights, c.layer))
          << "oracle vs reference, request " << r;
    }

    for (const std::string& name : reg.names()) {
      SCOPED_TRACE("backend " + name);
      const BackendInfo* info = reg.find(name);
      ASSERT_NE(info, nullptr);
      if (!info->supports(ctx)) continue;
      auto backend = info->make(ctx);

      // Batched entry point (covers the request-packing paths)...
      std::vector<nn::WideTensor> wides = make_wides(wide_shape, batch);
      std::vector<const nn::Tensor*> in_ptrs;
      std::vector<nn::WideTensor*> wide_ptrs;
      for (std::size_t r = 0; r < batch; ++r) {
        in_ptrs.push_back(&c.inputs[r]);
        wide_ptrs.push_back(&wides[r]);
      }
      backend->run_fc_batch(c.layer, in_ptrs, c.weights,
                            c.layer.weight_precision, wide_ptrs);
      for (std::size_t r = 0; r < batch; ++r) {
        EXPECT_EQ(wides[r], oracle[r]) << "batched request " << r;
      }
      // ...and the solo entry point on the first request.
      nn::WideTensor solo(wide_shape);
      backend->run_fc(c.layer, c.inputs[0], c.weights,
                      c.layer.weight_precision, solo);
      EXPECT_EQ(solo, oracle[0]);
    }
  }
}

// ---- Registration is the coverage mechanism -------------------------------

// A backend registered by a test (or a future PR) is picked up by the same
// machinery the sweeps above use: the registry lists it, the autotuner sees
// it as a candidate, and resolve_backend_name() accepts it by name.
TEST(BackendRegistryTest, RegisteredBackendJoinsSweepAndResolution) {
  auto& reg = BackendRegistry::instance();
  const auto before = reg.names().size();
  reg.register_backend(BackendInfo{
      .name = "mirror-lut",
      .tunable = true,
      .supports = [](const BackendContext& ctx) {
        return LutEngine::supports({.rows = ctx.rows,
                                    .cols = ctx.cols,
                                    .lanes = ctx.lanes,
                                    .jobs = ctx.jobs});
      },
      .make = [](const BackendContext& ctx)
          -> std::unique_ptr<FunctionalBackend> {
        // A stand-in third-party kernel: LUT math under a new name. Being
        // correct, it survives the same differential checks as built-ins.
        class Mirror final : public FunctionalBackend {
         public:
          explicit Mirror(const BackendContext& c)
              : eng_({.rows = c.rows,
                      .cols = c.cols,
                      .lanes = c.lanes,
                      .jobs = c.jobs,
                      .group_tile = 16}) {}
          BitsliceEngine::ConvStats run_conv_batch(
              const nn::Layer& l, std::span<const nn::Tensor* const> in,
              const nn::Tensor& w, const BitsliceEngine::SliceSpec& s,
              std::span<nn::WideTensor* const> out) override {
            return eng_.run_conv_batch(l, in, w, s, out);
          }
          void run_fc(const nn::Layer& l, const nn::Tensor& in,
                      const nn::Tensor& w, int pw,
                      nn::WideTensor& out) override {
            eng_.run_fc(l, in, w, pw, out);
          }
          void run_fc_batch(const nn::Layer& l,
                            std::span<const nn::Tensor* const> in,
                            const nn::Tensor& w, int pw,
                            std::span<nn::WideTensor* const> out) override {
            eng_.run_fc_batch(l, in, w, pw, out);
          }

         private:
          LutEngine eng_;
        };
        return std::make_unique<Mirror>(ctx);
      }});
  EXPECT_EQ(reg.names().size(), before + 1);
  ASSERT_NE(reg.find("mirror-lut"), nullptr);

  const BackendContext ctx;  // default 16x16x16 grid
  const auto tunable = reg.tunable_names(ctx);
  EXPECT_NE(std::find(tunable.begin(), tunable.end(), "mirror-lut"),
            tunable.end());
  EXPECT_EQ(resolve_backend_name("mirror-lut", /*force_scalar=*/false, ctx),
            "mirror-lut");

  // It runs a real case byte-identically (one spot check here — the sweep
  // tests above now exercise it on every iteration of this binary).
  const Case c = random_conv_case(0x3A3A);
  FunctionalLoomEngine eng(
      FunctionalOptions{.jobs = 1, .backend = "mirror-lut"});
  EXPECT_TRUE(eng.bitsliced());
  EXPECT_EQ(eng.backend_name(), "mirror-lut");
  const FunctionalLayerRun run =
      eng.run_conv(c.layer, c.inputs[0], c.weights, kBasePrecision);
  EXPECT_EQ(run.backend, "mirror-lut");
  EXPECT_EQ(run.wide, nn::conv_forward(c.inputs[0], c.weights, c.layer));
}

// ---- Resolution precedence ------------------------------------------------

TEST(BackendResolution, PrecedenceAndFallbacks) {
  const BackendContext ok;                    // 16x16x16: everything packs
  BackendContext wide = ok;
  wide.cols = 80;                             // nothing word-parallel packs
  BackendContext deep = ok;
  deep.lanes = 40;                            // same, via the lane bound

  // force_scalar beats everything, explicit names included.
  EXPECT_EQ(resolve_backend_name("lut", true, ok), "scalar");
  // Explicit registered names resolve to themselves on a packable grid...
  EXPECT_EQ(resolve_backend_name("bitslice", false, ok), "bitslice");
  EXPECT_EQ(resolve_backend_name("lut", false, ok), "lut");
  EXPECT_EQ(resolve_backend_name("lut-outer", false, ok), "lut-outer");
  EXPECT_EQ(resolve_backend_name("scalar", false, ok), "scalar");
  // ...and fall back to the scalar oracle on an unpackable one (the
  // historical cols>64 behavior).
  EXPECT_EQ(resolve_backend_name("bitslice", false, wide), "scalar");
  EXPECT_EQ(resolve_backend_name("lut", false, wide), "scalar");
  // "" defers to the environment, then "auto"; "auto" with no viable
  // candidate is the scalar oracle.
  EXPECT_EQ(resolve_backend_name("", false, ok), "auto");
  EXPECT_EQ(resolve_backend_name("auto", false, wide), "scalar");
  EXPECT_EQ(resolve_backend_name("auto", false, deep), "scalar");
  // Unknown names are a configuration error, not a silent fallback.
  EXPECT_THROW((void)resolve_backend_name("no-such-kernel", false, ok),
               ConfigError);

  // LOOM_FUNCTIONAL_BACKEND fills an empty request only.
  ASSERT_EQ(setenv("LOOM_FUNCTIONAL_BACKEND", "lut", 1), 0);
  EXPECT_EQ(resolve_backend_name("", false, ok), "lut");
  EXPECT_EQ(resolve_backend_name("bitslice", false, ok), "bitslice");
  ASSERT_EQ(unsetenv("LOOM_FUNCTIONAL_BACKEND"), 0);

  // Engine-level: the resolved name is observable, and unknown names throw
  // at construction.
  FunctionalLoomEngine lut_eng(FunctionalOptions{.jobs = 1, .backend = "lut"});
  EXPECT_TRUE(lut_eng.bitsliced());
  EXPECT_EQ(lut_eng.backend_name(), "lut");
  FunctionalLoomEngine auto_eng(FunctionalOptions{.jobs = 1});
  EXPECT_EQ(auto_eng.backend_name(), "auto");
  EXPECT_THROW(FunctionalLoomEngine(FunctionalOptions{.backend = "bogus"}),
               ConfigError);
}

}  // namespace
}  // namespace loom::sim
