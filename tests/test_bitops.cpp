// Bit utilities: these underpin every precision computation in the library,
// so they are tested exhaustively over the 16-bit value range.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/bitops.hpp"

namespace loom {
namespace {

TEST(LeadingOne, ZeroIsMinusOne) { EXPECT_EQ(leading_one(0), -1); }

TEST(LeadingOne, PowersOfTwo) {
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(leading_one(1u << i), i) << "bit " << i;
  }
}

TEST(LeadingOne, AllOnesBelow) {
  for (int i = 1; i < 31; ++i) {
    EXPECT_EQ(leading_one((1u << i) - 1), i - 1);
  }
}

TEST(NeededBitsUnsigned, ZeroNeedsOneBit) { EXPECT_EQ(needed_bits_unsigned(0), 1); }

TEST(NeededBitsUnsigned, ExhaustiveAgainstDefinition) {
  for (std::uint32_t v = 0; v <= 0xFFFF; ++v) {
    const int p = needed_bits_unsigned(v);
    EXPECT_TRUE(fits_unsigned(v, p)) << v;
    if (p > 1) {
      EXPECT_FALSE(fits_unsigned(v, p - 1)) << v;
    }
  }
}

TEST(NeededBitsSigned, Boundaries) {
  EXPECT_EQ(needed_bits_signed(0), 1);
  EXPECT_EQ(needed_bits_signed(-1), 1);
  EXPECT_EQ(needed_bits_signed(1), 2);
  EXPECT_EQ(needed_bits_signed(-2), 2);
  EXPECT_EQ(needed_bits_signed(127), 8);
  EXPECT_EQ(needed_bits_signed(-128), 8);
  EXPECT_EQ(needed_bits_signed(128), 9);
  EXPECT_EQ(needed_bits_signed(-129), 9);
  EXPECT_EQ(needed_bits_signed(32767), 16);
  EXPECT_EQ(needed_bits_signed(-32768), 16);
}

TEST(NeededBitsSigned, ExhaustiveAgainstDefinition) {
  for (std::int32_t v = -40000; v <= 40000; ++v) {
    const int p = needed_bits_signed(v);
    EXPECT_TRUE(fits_signed(v, p)) << v;
    if (p > 1) {
      EXPECT_FALSE(fits_signed(v, p - 1)) << v;
    }
  }
}

TEST(GroupPrecision, UnsignedEqualsMaxOfNeededBits) {
  const std::array<Value, 6> group = {0, 3, 12, 1, 7, 2};
  // max value 12 -> 4 bits.
  EXPECT_EQ(group_precision_unsigned(group), 4);
}

TEST(GroupPrecision, UnsignedOrSemantics) {
  // 8 | 4 = 12 -> still 4 bits even though no single value is 12.
  const std::array<Value, 2> group = {8, 4};
  EXPECT_EQ(group_precision_unsigned(group), 4);
}

TEST(GroupPrecision, SignedTakesWorstCase) {
  const std::array<Value, 3> group = {-5, 2, 1};  // -5 needs 4 bits
  EXPECT_EQ(group_precision_signed(group), 4);
}

TEST(GroupPrecision, EmptyGroupIsOneBit) {
  EXPECT_EQ(group_precision_unsigned({}), 1);
  EXPECT_EQ(group_precision_signed({}), 1);
}

TEST(BitOf, TwosComplementNegative) {
  // -1 in 16-bit two's complement has every bit set.
  for (int b = 0; b < 16; ++b) EXPECT_EQ(bit_of(Value{-1}, b), 1);
  EXPECT_EQ(bit_of(Value{2}, 1), 1);
  EXPECT_EQ(bit_of(Value{2}, 0), 0);
}

TEST(BitsOf, ExtractsFields) {
  EXPECT_EQ(bits_of(Value{0b1011'0110}, 1, 3), 0b011u);
  EXPECT_EQ(bits_of(Value{-1}, 4, 4), 0xFu);
}

TEST(SaturateSigned, ClampsToRange) {
  EXPECT_EQ(saturate_signed(100, 8), 100);
  EXPECT_EQ(saturate_signed(300, 8), 127);
  EXPECT_EQ(saturate_signed(-300, 8), -128);
  EXPECT_EQ(saturate_signed(-129, 8), -128);
}

TEST(RoundUp, MultiplesOfBitsPerCycle) {
  EXPECT_EQ(round_up(5, 1), 5);
  EXPECT_EQ(round_up(5, 2), 6);
  EXPECT_EQ(round_up(5, 4), 8);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_up(1, 4), 4);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 16), 0);
  EXPECT_EQ(ceil_div(1, 16), 1);
  EXPECT_EQ(ceil_div(16, 16), 1);
  EXPECT_EQ(ceil_div(17, 16), 2);
}

// Property: group precision of a singleton equals needed bits of the value.
TEST(GroupPrecision, SingletonProperty) {
  for (std::int32_t v = -1024; v <= 1024; ++v) {
    const Value value = static_cast<Value>(v);
    EXPECT_EQ(group_precision_signed({&value, 1}), needed_bits_signed(v));
  }
}

}  // namespace
}  // namespace loom
