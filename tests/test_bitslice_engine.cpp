// Bit-sliced functional engine: byte-identity with the scalar arch::Sip
// oracle across awkward geometries and precisions, golden FNV digests
// captured on pre-change main, the 64x64 transpose primitive, thread-count
// invariance, and the cascade-aware FC cycle model shared with the
// analytic simulator.
#include <gtest/gtest.h>

#include "golden.hpp"
#include "sim/bitslice_engine.hpp"
#include "sim/dpnn_functional.hpp"
#include "sim/functional.hpp"
#include "sim/loom_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

using golden::Fnv;

struct TestNet {
  nn::Network net;
  std::vector<nn::Tensor> weights;
  nn::Tensor input;
};

// Awkward geometry on purpose: odd channel counts (lane tails), windows not
// a multiple of the column count, grouped conv, stride 2 + heavy padding,
// 1x1 kernel, pooling between convs, and an FC tail.
TestNet make_golden_net() {
  nn::Network net("bitslice-golden", nn::Shape3{5, 13, 13});
  net.add_conv("c1", 14, 3, 1, 1).precision_group = 0;
  net.add_conv("g1", 10, 3, 1, 1, /*groups=*/2).precision_group = 1;
  net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
  net.add_conv("s2", 12, 5, 2, 2).precision_group = 2;
  net.add_conv("k1", 9, 1, 1, 0).precision_group = 3;
  net.add_fc("f1", 17);
  quant::PrecisionProfile p;
  p.network = "bitslice-golden";
  p.conv_act = {7, 6, 8, 5};
  p.conv_weight = 9;
  p.fc_weight = {8};
  quant::apply_profile(net, p);

  TestNet s{std::move(net), {}, nn::Tensor{}};
  nn::SyntheticSpec act{.precision = 7, .alpha = 20.0, .is_signed = false};
  s.input = nn::make_activation_tensor(s.net.layer(0).in, act, 21, 1);
  std::uint64_t stream = 300;
  for (const auto& l : s.net.layers()) {
    if (!l.has_weights()) continue;
    nn::SyntheticSpec w{.precision = l.weight_precision, .alpha = 3.0,
                        .is_signed = true};
    s.weights.push_back(nn::make_weight_tensor(l.weight_count(), w, 22, stream++));
  }
  return s;
}

// Digest of a functional network run. FC-layer cycle counts are excluded:
// the functional FC cycle model became cascade-aware in the bit-slice PR
// and is pinned against the analytic model below instead.
std::uint64_t digest(const TestNet& s, const FunctionalNetworkRun& run,
                     const arch::Dispatcher& disp) {
  Fnv f;
  std::size_t li = 0;
  for (const auto& l : s.net.layers()) {
    if (!l.has_weights()) continue;
    const FunctionalLayerRun& lr = run.layers.at(li++);
    f.str(lr.name);
    f.u64(static_cast<std::uint64_t>(lr.out_bits));
    f.i64(lr.requant_shift);
    f.f64(lr.mean_streamed_precision);
    if (l.kind == nn::LayerKind::kConv) f.u64(lr.cycles);
    f.wide(lr.wide);
    f.tensor(lr.output);
  }
  f.tensor(run.output);
  f.u64(disp.activation_bits_streamed());
  f.u64(disp.weight_bits_streamed());
  f.u64(disp.detector().invocations());
  f.u64(disp.detector().values_inspected());
  return f.h;
}

// ---- Golden byte-identity vs pre-bit-slice main ---------------------------
// FNV-1a digests captured on main immediately before the bit-sliced engine
// landed, running the then-scalar functional engine on the net above. Both
// backends must reproduce them bit for bit: outputs, wide accumulators,
// requant shifts, conv cycle counts, streamed-precision means, and the
// dispatcher/detector statistics.

constexpr std::uint64_t kGoldenDyn = 0x2fb41436f3890f37ull;
constexpr std::uint64_t kGoldenStatic = 0x52ca7ea52eaee0f7ull;

TEST(BitsliceGolden, DynamicRunMatchesPreChangeMain) {
  TestNet s = make_golden_net();
  FunctionalLoomEngine eng(FunctionalOptions{.rows = 8, .cols = 16});
  ASSERT_TRUE(eng.bitsliced());
  const auto run = eng.run_network(s.net, s.input, s.weights);
  EXPECT_EQ(digest(s, run, eng.dispatcher()), kGoldenDyn);
}

TEST(BitsliceGolden, DynamicRunScalarOracleMatchesPreChangeMain) {
  TestNet s = make_golden_net();
  FunctionalLoomEngine eng(
      FunctionalOptions{.rows = 8, .cols = 16, .force_scalar = true});
  ASSERT_FALSE(eng.bitsliced());
  const auto run = eng.run_network(s.net, s.input, s.weights);
  EXPECT_EQ(digest(s, run, eng.dispatcher()), kGoldenDyn);
}

TEST(BitsliceGolden, StaticRunMatchesPreChangeMainBothBackends) {
  for (const bool scalar : {false, true}) {
    TestNet s = make_golden_net();
    FunctionalLoomEngine eng(FunctionalOptions{.rows = 16,
                                               .cols = 8,
                                               .dynamic_act_precision = false,
                                               .force_scalar = scalar});
    const auto run = eng.run_network(s.net, s.input, s.weights);
    EXPECT_EQ(digest(s, run, eng.dispatcher()), kGoldenStatic) << scalar;
  }
}

TEST(BitsliceGolden, JobsCountDoesNotChangeResults) {
  std::uint64_t reference = 0;
  for (const int jobs : {1, 3, 0}) {
    TestNet s = make_golden_net();
    FunctionalLoomEngine eng(
        FunctionalOptions{.rows = 8, .cols = 16, .jobs = jobs});
    const auto run = eng.run_network(s.net, s.input, s.weights);
    const std::uint64_t d = digest(s, run, eng.dispatcher());
    if (jobs == 1) {
      reference = d;
      EXPECT_EQ(d, kGoldenDyn);
    } else {
      EXPECT_EQ(d, reference) << jobs;
    }
  }
}

// ---- Brute-force equivalence vs the scalar grid ---------------------------

struct ConvCase {
  const char* name;
  nn::Shape3 in;
  int out_c, kernel, stride, pad, groups;
  int pa, pw;
  int rows, cols, lanes;
  bool dynamic;
};

void expect_conv_equivalent(const ConvCase& c) {
  nn::Network net("t", c.in);
  net.add_conv("c", c.out_c, c.kernel, c.stride, c.pad, c.groups)
      .precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {c.pa};
  p.conv_weight = c.pw;
  quant::apply_profile(net, p);
  const nn::Layer& layer = net.layer(0);
  nn::SyntheticSpec act{.precision = c.pa, .alpha = 2.0, .is_signed = false,
                        .zero_fraction = 0.2};
  nn::SyntheticSpec wsp{.precision = c.pw, .alpha = 1.5, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(layer.in, act, 5, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(layer.weight_count(), wsp, 6, 2);

  FunctionalOptions fo{.rows = c.rows, .cols = c.cols, .lanes = c.lanes,
                       .dynamic_act_precision = c.dynamic, .jobs = 1};
  FunctionalLoomEngine fast(fo);
  fo.force_scalar = true;
  FunctionalLoomEngine slow(fo);
  ASSERT_TRUE(fast.bitsliced()) << c.name;
  const auto rf = fast.run_conv(layer, input, weights, 16);
  const auto rs = slow.run_conv(layer, input, weights, 16);

  EXPECT_EQ(rf.cycles, rs.cycles) << c.name;
  EXPECT_EQ(rf.requant_shift, rs.requant_shift) << c.name;
  EXPECT_DOUBLE_EQ(rf.mean_streamed_precision, rs.mean_streamed_precision)
      << c.name;
  ASSERT_EQ(rf.wide.elements(), rs.wide.elements()) << c.name;
  for (std::int64_t i = 0; i < rs.wide.elements(); ++i) {
    ASSERT_EQ(rf.wide.flat(i), rs.wide.flat(i)) << c.name << " @" << i;
  }
  for (std::int64_t i = 0; i < rs.output.elements(); ++i) {
    ASSERT_EQ(rf.output.flat(i), rs.output.flat(i)) << c.name << " @" << i;
  }
  EXPECT_EQ(fast.dispatcher().activation_bits_streamed(),
            slow.dispatcher().activation_bits_streamed())
      << c.name;
  EXPECT_EQ(fast.dispatcher().weight_bits_streamed(),
            slow.dispatcher().weight_bits_streamed())
      << c.name;
  EXPECT_EQ(fast.dispatcher().detector().invocations(),
            slow.dispatcher().detector().invocations())
      << c.name;
  EXPECT_EQ(fast.dispatcher().detector().values_inspected(),
            slow.dispatcher().detector().values_inspected())
      << c.name;

  // Against the golden model when no truncation can occur (the generators
  // can emit values the streamed precision clips, e.g. +1 at Pw = 1).
  if (input.max_precision_unsigned() <= c.pa &&
      weights.max_precision_signed() <= c.pw) {
    const nn::WideTensor golden = nn::conv_forward(input, weights, layer);
    for (std::int64_t i = 0; i < golden.elements(); ++i) {
      ASSERT_EQ(rf.wide.flat(i), golden.flat(i)) << c.name << " golden @" << i;
    }
  }
}

TEST(BitsliceEquivalence, AwkwardConvGeometries) {
  const ConvCase cases[] = {
      {"pad", {3, 9, 9}, 5, 3, 1, 1, 1, 8, 9, 4, 16, 16, true},
      {"stride2", {4, 11, 11}, 6, 3, 2, 1, 1, 7, 8, 8, 16, 16, true},
      {"grouped", {6, 8, 8}, 9, 3, 1, 1, 3, 6, 7, 4, 8, 16, true},
      {"lane-tail", {5, 7, 7}, 4, 3, 1, 0, 1, 8, 9, 16, 16, 16, true},
      {"cols-tail", {2, 5, 5}, 3, 3, 1, 2, 1, 5, 6, 2, 16, 16, true},
      {"cols-odd", {3, 8, 8}, 4, 3, 1, 1, 1, 7, 9, 4, 10, 16, true},
      {"cols-64", {3, 10, 10}, 4, 3, 1, 1, 1, 7, 9, 4, 64, 16, true},
      {"lanes-8", {4, 7, 7}, 5, 3, 1, 1, 1, 8, 8, 4, 16, 8, true},
      {"lanes-32", {4, 9, 9}, 5, 5, 1, 2, 1, 9, 10, 4, 16, 32, true},
      {"static", {4, 9, 9}, 6, 3, 1, 1, 1, 8, 11, 8, 16, 16, false},
      {"pa1", {3, 6, 6}, 4, 3, 1, 1, 1, 1, 8, 4, 16, 16, true},
      {"pw1", {3, 6, 6}, 4, 3, 1, 1, 1, 8, 1, 4, 16, 16, true},
      {"pa15pw15", {3, 6, 6}, 4, 3, 1, 1, 1, 15, 15, 4, 16, 16, true},
      {"k1x1", {7, 6, 6}, 5, 1, 1, 0, 1, 7, 9, 4, 16, 16, true},
  };
  for (const auto& c : cases) expect_conv_equivalent(c);
}

TEST(BitsliceEquivalence, OutOfProfileActivationsDetectLikeTheDispatcher) {
  // The OR detector inspects raw values and clamps to the profile after
  // leading-one detection. Feed activations wider than the profile: both
  // backends must stream the same (clamped) precision and truncate the
  // same bits.
  nn::Network net("t", nn::Shape3{3, 7, 7});
  net.add_conv("c", 4, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {6};  // profile narrower than the data below
  p.conv_weight = 8;
  quant::apply_profile(net, p);
  // Values whose low 6 bits are zero: a detector looking only at the
  // profile-masked bits would report Pa = 1 instead of the clamped 6.
  nn::Tensor input(nn::Shape{3, 7, 7});
  for (std::int64_t i = 0; i < input.elements(); ++i) {
    input.set_flat(i, static_cast<Value>(448 + (i % 4) * 64));
  }
  nn::SyntheticSpec wsp{.precision = 8, .alpha = 1.5, .is_signed = true};
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 32, 2);

  FunctionalOptions fo{.rows = 4, .cols = 16, .jobs = 1};
  FunctionalLoomEngine fast(fo);
  fo.force_scalar = true;
  FunctionalLoomEngine slow(fo);
  const auto rf = fast.run_conv(net.layer(0), input, weights, 16);
  const auto rs = slow.run_conv(net.layer(0), input, weights, 16);
  EXPECT_EQ(rf.cycles, rs.cycles);
  EXPECT_DOUBLE_EQ(rf.mean_streamed_precision, rs.mean_streamed_precision);
  EXPECT_EQ(fast.dispatcher().activation_bits_streamed(),
            slow.dispatcher().activation_bits_streamed());
  for (std::int64_t i = 0; i < rs.wide.elements(); ++i) {
    ASSERT_EQ(rf.wide.flat(i), rs.wide.flat(i)) << i;
  }
}

TEST(BitsliceEquivalence, FullPrecisionEngineAgreement) {
  // Pa = Pw = 16: engine-vs-engine only (the unsigned-activation streaming
  // semantics differ from the signed golden model once bit 15 is set).
  const ConvCase c{"p16", {3, 7, 7}, 4, 3, 1, 1, 1,
                   16, 16, 4, 16, 16, false};
  nn::Network net("t", c.in);
  net.add_conv("c", c.out_c, c.kernel, c.stride, c.pad, c.groups)
      .precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {16};
  p.conv_weight = 16;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 16, .alpha = 1.2, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 16, .alpha = 1.2, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 7, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 8, 2);
  FunctionalOptions fo{.rows = c.rows, .cols = c.cols, .jobs = 1};
  FunctionalLoomEngine fast(fo);
  fo.force_scalar = true;
  FunctionalLoomEngine slow(fo);
  const auto rf = fast.run_conv(net.layer(0), input, weights, 16);
  const auto rs = slow.run_conv(net.layer(0), input, weights, 16);
  for (std::int64_t i = 0; i < rs.wide.elements(); ++i) {
    ASSERT_EQ(rf.wide.flat(i), rs.wide.flat(i)) << i;
  }
  EXPECT_EQ(rf.cycles, rs.cycles);
}

TEST(BitsliceEquivalence, SignedFcActivations) {
  // run_fc streams signed 16-bit activations; drive both backends with a
  // genuinely negative input tensor and check against the golden model.
  nn::Network net("t", nn::Shape3{37, 1, 1});
  net.add_fc("f", 70);  // > 64 outputs: exercises the slab tail
  quant::PrecisionProfile p;
  p.network = "t";
  p.fc_weight = {9};
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 11, .alpha = 1.5, .is_signed = true};
  nn::SyntheticSpec wsp{.precision = 9, .alpha = 1.5, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 9, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 10, 2);

  FunctionalOptions fo{.jobs = 1};
  FunctionalLoomEngine fast(fo);
  fo.force_scalar = true;
  FunctionalLoomEngine slow(fo);
  const auto rf = fast.run_fc(net.layer(0), input, weights, 16);
  const auto rs = slow.run_fc(net.layer(0), input, weights, 16);
  const nn::WideTensor golden = nn::fc_forward(input, weights, net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(rf.wide.flat(i), rs.wide.flat(i)) << i;
    ASSERT_EQ(rf.wide.flat(i), golden.flat(i)) << i;
  }
  EXPECT_EQ(rf.cycles, rs.cycles);
}

TEST(BitsliceEquivalence, DpnnBackendsAgree) {
  nn::Network net("t", nn::Shape3{5, 9, 9});
  net.add_conv("c", 7, 3, 2, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {9};
  p.conv_weight = 10;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 10, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 11, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 12, 2);

  FunctionalDpnnEngine fast(DpnnFunctionalOptions{.jobs = 1});
  FunctionalDpnnEngine slow(DpnnFunctionalOptions{.force_scalar = true});
  const auto rf = fast.run_conv(net.layer(0), input, weights, 16);
  const auto rs = slow.run_conv(net.layer(0), input, weights, 16);
  EXPECT_EQ(rf.cycles, rs.cycles);
  EXPECT_EQ(rf.requant_shift, rs.requant_shift);
  for (std::int64_t i = 0; i < rs.wide.elements(); ++i) {
    ASSERT_EQ(rf.wide.flat(i), rs.wide.flat(i)) << i;
  }
}

// ---- Fully-connected cycle model ------------------------------------------

TEST(BitsliceFcCycles, MatchCascadeAwareAnalyticModel) {
  // The functional FC cycle count must equal the analytic simulate_fc for a
  // matching configuration (16x16 grid), up to the analytic model's
  // kPipelineFill constant which the functional counts exclude.
  nn::Network net("t", nn::Shape3{64, 1, 1});
  net.add_fc("f", 24);  // fewer outputs than SIPs: cascading must engage
  quant::PrecisionProfile p;
  p.network = "t";
  p.fc_weight = {11};
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 11, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 13, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 14, 2);

  FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1});
  const auto run = eng.run_fc(net.layer(0), input, weights, 16);

  arch::LoomConfig cfg;
  cfg.equiv_macs = 16;  // rows() = 16 like the functional grid
  LoomSimulator sim(cfg, SimOptions{});
  NetworkWorkload wl(std::move(net), p);
  mem::MemorySystem mem(mem::default_memory_config(cfg.equiv_macs, true));
  const LayerResult analytic = sim.simulate_layer(wl.layer(0), mem);
  EXPECT_EQ(run.cycles + kPipelineFill, analytic.compute_cycles);

  // Cascading must actually help a few-outputs layer: the plan picks
  // ways > 1 and beats the no-cascade count.
  const FcCascadePlan plan = plan_fc_cascade(16, 16, 16, 24, 64, 11.0, 16.0,
                                             /*cascading=*/true);
  const FcCascadePlan flat = plan_fc_cascade(16, 16, 16, 24, 64, 11.0, 16.0,
                                             /*cascading=*/false);
  EXPECT_GT(plan.ways, 1);
  EXPECT_LT(plan.cycles, flat.cycles);
}

// ---- Primitives -----------------------------------------------------------

TEST(BitslicePrimitives, Transpose64RoundTripsAndMapsBits) {
  std::uint64_t a[64] = {};
  // Value 11 (bits 0, 1, 3) in column 5; value 1 in column 63.
  a[0] = (std::uint64_t{1} << 5) | (std::uint64_t{1} << 63);
  a[1] = std::uint64_t{1} << 5;
  a[3] = std::uint64_t{1} << 5;
  std::uint64_t t[64];
  std::copy(std::begin(a), std::end(a), std::begin(t));
  transpose64(t);
  EXPECT_EQ(t[5], 11u);
  EXPECT_EQ(t[63], 1u);
  EXPECT_EQ(t[0], 0u);
  transpose64(t);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(t[i], a[i]) << i;
}

TEST(BitslicePrimitives, UnsupportedColumnCountsFallBackToScalar) {
  EXPECT_FALSE(BitsliceEngine::supports(BitsliceEngine::Options{.cols = 65}));
  FunctionalLoomEngine eng(FunctionalOptions{.rows = 2, .cols = 65});
  EXPECT_FALSE(eng.bitsliced());

  // The fallback still computes correct results.
  nn::Network net("t", nn::Shape3{2, 5, 5});
  net.add_conv("c", 3, 3, 1, 1).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {6};
  p.conv_weight = 7;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 6, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 7, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 15, 1);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 16, 2);
  const auto run = eng.run_conv(net.layer(0), input, weights, 16);
  const nn::WideTensor golden = nn::conv_forward(input, weights, net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

}  // namespace
}  // namespace loom::sim
