// Model zoo integrity: layer counts, precision-group structure and MAC
// totals must line up with the published architectures and with the paper's
// Table 1 profile shapes.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/network.hpp"
#include "nn/zoo/zoo.hpp"
#include "quant/profiles.hpp"

namespace loom::nn {
namespace {

TEST(Network, ShapeChaining) {
  Network net("t", Shape3{3, 32, 32});
  net.add_conv("c1", 8, 3, 1, 1);
  net.add_pool("p1", PoolKind::kMax, 2, 2);
  net.add_fc("f1", 10);
  EXPECT_EQ(net.layer(0).out, (Shape3{8, 32, 32}));
  EXPECT_EQ(net.layer(1).out, (Shape3{8, 16, 16}));
  EXPECT_EQ(net.layer(2).in.elements(), 8 * 16 * 16);
  EXPECT_EQ(net.layer(2).out.c, 10);
}

TEST(Network, IndicesAndTotals) {
  Network net("t", Shape3{3, 8, 8});
  net.add_conv("c1", 4, 3, 1, 1);
  net.add_fc("f1", 10);
  EXPECT_EQ(net.conv_indices().size(), 1u);
  EXPECT_EQ(net.fc_indices().size(), 1u);
  EXPECT_EQ(net.total_macs(), net.conv_macs() + net.fc_macs());
  EXPECT_GT(net.peak_activation_values(), 0);
}

TEST(Zoo, AlexNetStructure) {
  const Network net = zoo::make_alexnet();
  EXPECT_EQ(net.conv_indices().size(), 5u);
  EXPECT_EQ(net.fc_indices().size(), 3u);
  EXPECT_EQ(net.conv_precision_groups(), 5);
  // Published totals: ~666M conv MACs, ~58.6M FC MACs.
  EXPECT_NEAR(static_cast<double>(net.conv_macs()), 666e6, 10e6);
  EXPECT_NEAR(static_cast<double>(net.fc_macs()), 58.6e6, 1e6);
}

TEST(Zoo, NiNStructure) {
  const Network net = zoo::make_nin();
  EXPECT_EQ(net.conv_indices().size(), 12u);  // Table 1 lists 12 precisions
  EXPECT_TRUE(net.fc_indices().empty());      // FCL rows are n/a in Table 2
  EXPECT_EQ(net.conv_precision_groups(), 12);
  EXPECT_GT(net.conv_macs(), 1000e6 * 0.9);
}

TEST(Zoo, GoogLeNetStructure) {
  const Network net = zoo::make_googlenet();
  // 3 stem convs + 9 modules x 6 branch convs = 57 convolutions.
  EXPECT_EQ(net.conv_indices().size(), 57u);
  EXPECT_EQ(net.fc_indices().size(), 1u);
  EXPECT_EQ(net.conv_precision_groups(), 11);  // Table 1 lists 11 precisions
  // ~1.58G MACs for one 224x224 inference (single crop, main branch).
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 1.58e9, 0.2e9);
  // The classifier reads the 1024-channel global average pool.
  EXPECT_EQ(net.layer(net.fc_indices()[0]).in.elements(), 1024);
  EXPECT_EQ(net.layer(net.fc_indices()[0]).out.c, 1000);
}

TEST(Zoo, Vgg19Structure) {
  const Network net = zoo::make_vgg19();
  EXPECT_EQ(net.conv_indices().size(), 16u);
  EXPECT_EQ(net.fc_indices().size(), 3u);
  EXPECT_EQ(net.conv_precision_groups(), 16);
  // ~19.5G conv MACs, ~123.6M FC MACs (published).
  EXPECT_NEAR(static_cast<double>(net.conv_macs()), 19.5e9, 0.5e9);
  EXPECT_NEAR(static_cast<double>(net.fc_macs()), 123.6e6, 2e6);
}

TEST(Zoo, VggSAndVggMStructure) {
  for (const auto* name : {"vggs", "vggm"}) {
    const Network net = zoo::make(name);
    EXPECT_EQ(net.conv_indices().size(), 5u) << name;
    EXPECT_EQ(net.fc_indices().size(), 3u) << name;
    EXPECT_EQ(net.conv_precision_groups(), 5) << name;
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW((void)zoo::make("resnet"), ConfigError);
}

TEST(Zoo, EveryNetworkMatchesItsProfiles) {
  for (const std::string& name : zoo::paper_networks()) {
    const Network net = zoo::make(name);
    for (const auto target :
         {quant::AccuracyTarget::k100, quant::AccuracyTarget::k99}) {
      const auto& profile = quant::profile_for(name, target);
      EXPECT_EQ(static_cast<int>(profile.conv_act.size()),
                net.conv_precision_groups())
          << name << " " << quant::to_string(target);
      EXPECT_EQ(profile.fc_weight.size(), net.fc_indices().size())
          << name << " " << quant::to_string(target);
    }
  }
}

TEST(Zoo, PrecisionGroupsAreContiguousFromZero) {
  for (const std::string& name : zoo::paper_networks()) {
    const Network net = zoo::make(name);
    std::vector<bool> seen(static_cast<std::size_t>(net.conv_precision_groups()),
                           false);
    for (const auto idx : net.conv_indices()) {
      const int g = net.layer(idx).precision_group;
      ASSERT_GE(g, 0) << name;
      ASSERT_LT(g, net.conv_precision_groups()) << name;
      seen[static_cast<std::size_t>(g)] = true;
    }
    for (const bool s : seen) EXPECT_TRUE(s) << name;
  }
}

}  // namespace
}  // namespace loom::nn
