// Shard-router chaos harness: 4 producer threads vs 3 shards whose models
// are restored from binary snapshots, with injected shard kills, stalls,
// engine faults and corrupt-snapshot-on-restart all armed at 20%.
// Invariants, per seed:
//   - zero lost requests: every submit() returns a result or throws a
//     typed error — outcome tally == submit count;
//   - every successful output is byte-identical to a solo run_network
//     (failover, hedging, restarts and snapshot restores never change
//     *what* was computed);
//   - RouterStats reconcile exactly:
//     submitted == completed + quota_rejected + shed + timed_out + failed,
//     in aggregate and per tenant, and the latency histogram holds exactly
//     the completed requests;
//   - the injected fault multiset replays: same seed -> same fired
//     counters (LOOM_ROUTER_FAULT_SEED pins one iteration for replay).
// Runs under TSan/ASan via the sim test label.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/shard_router.hpp"
#include "sim/functional.hpp"

namespace loom::serve {
namespace {

constexpr std::uint64_t kInputSeed = 77;
constexpr int kProducers = 4;
constexpr int kPerProducer = 10;
constexpr int kShards = 3;

std::shared_ptr<ModelRegistry> populate() {
  auto registry = std::make_shared<ModelRegistry>();
  {
    nn::Network net("convnet", nn::Shape3{6, 12, 12});
    net.add_conv("c1", 12, 3, 1, 1).precision_group = 0;
    net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
    net.add_fc("logits", 9);
    quant::PrecisionProfile p;
    p.network = "convnet";
    p.conv_act = {7};
    p.conv_weight = 9;
    p.fc_weight = {8};
    quant::apply_profile(net, p);
    registry->add_synthetic("convnet", std::move(net), p, /*seed=*/31);
  }
  {
    nn::Network net("mlp", nn::Shape3{96, 1, 1});
    net.add_fc("h1", 40);
    net.add_fc("logits", 12);
    quant::PrecisionProfile p;
    p.network = "mlp";
    p.conv_weight = 11;
    p.fc_weight = {10, 9};
    quant::apply_profile(net, p);
    registry->add_synthetic("mlp", std::move(net), p, /*seed=*/32);
  }
  return registry;
}

/// Solo ground truth, keyed (model, stream).
std::map<std::pair<std::string, int>, nn::Tensor> solo_outputs(
    const ModelRegistry& registry, int streams) {
  std::map<std::pair<std::string, int>, nn::Tensor> out;
  for (const std::string& name : registry.names()) {
    const auto model = registry.find(name);
    sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
    for (int s = 0; s < streams; ++s) {
      out.emplace(
          std::make_pair(name, s),
          engine
              .run_network(model->net, model->make_input(kInputSeed, s),
                           model->weights)
              .output);
    }
  }
  return out;
}

std::vector<std::uint64_t> iteration_seeds(std::uint64_t base, int count) {
  if (const char* env = std::getenv("LOOM_ROUTER_FAULT_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

struct Observed {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t failed = 0;
  std::uint64_t mismatched = 0;  ///< byte-identity violations (must be 0)
};

TEST(ShardRouterChaos, KillsStallsAndCorruptSnapshotsKeepEveryInvariant) {
  const auto source = populate();
  const auto expected = solo_outputs(*source, kProducers * kPerProducer);

  // Shards restore their models from snapshot files — the crash-safe
  // restart path. Rebuilds (not the initial construction) go through the
  // router's injector, so a restart may hit a corrupted image, throw
  // SnapshotError, and leave the shard dead for another backoff.
  const std::string dir = testing::TempDir();
  for (const std::string& name : source->names()) {
    save_snapshot(*source->find(name), dir + name + ".snap");
  }

  for (const std::uint64_t seed : iteration_seeds(0x50DA, 2)) {
    SCOPED_TRACE("LOOM_ROUTER_FAULT_SEED=" + std::to_string(seed));

    RouterOptions opts;
    opts.shards = kShards;
    opts.shard.max_batch = 4;
    opts.shard.batch_deadline = std::chrono::microseconds(200);
    opts.shard.queue_depth = 8;
    opts.shard.workers = 1;
    opts.shard.engine_retries = 1;
    opts.shard.retry_backoff = std::chrono::microseconds(50);
    opts.shard.engine.jobs = 1;
    opts.attempt_timeout = std::chrono::microseconds(250'000);
    opts.hedge_delay = std::chrono::microseconds(500);
    opts.probation_backoff = std::chrono::milliseconds(2);
    opts.max_backoff = std::chrono::milliseconds(50);
    opts.probe_interval = std::chrono::milliseconds(5);
    opts.probe_timeout = std::chrono::microseconds(100'000);
    opts.faults.seed = seed;
    opts.faults.engine_failure_prob = 0.20;
    opts.faults.fallback_failure_prob = 0.05;
    opts.faults.shard_kill_prob = 0.20;
    opts.faults.shard_stall_prob = 0.20;
    opts.faults.shard_stall = std::chrono::microseconds(2'000);
    opts.faults.probe_failure_prob = 0.20;
    opts.faults.snapshot_corrupt_prob = 0.20;

    std::array<std::atomic<int>, kShards> builds{};
    const ServeOptions shard_opts = [&] {
      ServeOptions so = opts.shard;
      so.faults = opts.faults;
      return so;
    }();
    ShardFactory factory = [&, dir](const ShardContext& ctx) -> ShardInstance {
      const bool rebuild =
          builds[static_cast<std::size_t>(ctx.shard)].fetch_add(1) > 0;
      auto registry = std::make_shared<ModelRegistry>();
      for (const std::string& name : {std::string("convnet"),
                                      std::string("mlp")}) {
        registry->add(*load_snapshot(dir + name + ".snap",
                                     rebuild ? &ctx.faults : nullptr));
      }
      auto server = std::make_shared<InferenceServer>(*registry, shard_opts);
      return ShardInstance{std::move(registry), std::move(server)};
    };

    Observed tally;
    std::mutex tally_mutex;
    RouterStats stats;
    std::uint64_t kills_fired = 0;

    {
      ShardRouter router(factory, opts);
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p, seed] {
          SequentialRng rng(seed, static_cast<std::uint64_t>(p) + 500);
          Observed local;
          for (int i = 0; i < kPerProducer; ++i) {
            const int stream = p * kPerProducer + i;
            const std::string name = stream % 2 == 0 ? "convnet" : "mlp";
            const auto model = source->find(name);
            RouteOptions ropts;
            ropts.tenant = "tenant-" + std::to_string(p % 2);
            const std::uint64_t pick = rng.next_below(4);
            ropts.priority = pick == 0   ? Priority::kBatch
                             : pick == 1 ? Priority::kBestEffort
                                         : Priority::kInteractive;
            if (rng.next_below(4) == 0) {
              ropts.deadline = std::chrono::milliseconds(400);
            }
            ropts.allow_hedge = rng.next_below(2) == 0;
            try {
              const InferenceResult res = router.submit(
                  name, model->make_input(kInputSeed, stream), ropts);
              ++local.completed;
              EXPECT_GE(res.shard, 0);
              EXPECT_LT(res.shard, kShards);
              if (!(res.output == expected.at({name, stream}))) {
                ++local.mismatched;
              }
            } catch (const TenantQuotaError&) {
              ADD_FAILURE() << "no quotas configured, none may reject";
            } catch (const OverloadError&) {
              ++local.shed;
            } catch (const DeadlineExceededError&) {
              ++local.timed_out;
            } catch (const std::exception&) {
              ++local.failed;
            }
          }
          const std::lock_guard<std::mutex> lock(tally_mutex);
          tally.completed += local.completed;
          tally.shed += local.shed;
          tally.timed_out += local.timed_out;
          tally.failed += local.failed;
          tally.mismatched += local.mismatched;
        });
      }
      for (std::thread& t : producers) t.join();
      stats = router.stats();
      kills_fired = router.fault_injector().shard_kills_injected();
      if (kills_fired > 0) {
        EXPECT_FALSE(router.transitions().empty());
      }
      router.stop();
    }

    const std::uint64_t total =
        static_cast<std::uint64_t>(kProducers) * kPerProducer;

    // Zero lost requests: every call ended in exactly one tally bucket.
    EXPECT_EQ(tally.completed + tally.shed + tally.timed_out + tally.failed,
              total);
    // Byte-identity: sharding/failover never changed a result.
    EXPECT_EQ(tally.mismatched, 0u);

    // Router accounting reconciles exactly with what the callers saw.
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.completed, tally.completed);
    EXPECT_EQ(stats.quota_rejected, 0u);
    EXPECT_EQ(stats.shed, tally.shed);
    EXPECT_EQ(stats.timed_out, tally.timed_out);
    EXPECT_EQ(stats.failed, tally.failed);
    EXPECT_EQ(stats.submitted, stats.completed + stats.quota_rejected +
                                   stats.shed + stats.timed_out + stats.failed);
    EXPECT_EQ(stats.latency_ns.count(), stats.completed);

    // Per-tenant buckets sum to the aggregate and reconcile individually.
    std::uint64_t t_submitted = 0;
    std::uint64_t t_terminal = 0;
    for (const auto& [tenant, ts] : stats.tenants) {
      EXPECT_EQ(ts.submitted, ts.completed + ts.quota_rejected + ts.shed +
                                  ts.timed_out + ts.failed)
          << "tenant " << tenant;
      t_submitted += ts.submitted;
      t_terminal += ts.completed + ts.quota_rejected + ts.shed + ts.timed_out +
                    ts.failed;
    }
    EXPECT_EQ(t_submitted, stats.submitted);
    EXPECT_EQ(t_terminal, stats.submitted);

    // Shard-level sanity: all recorded kills trace back to injected ones
    // (an injected kill against an already-dead shard is a no-op, so the
    // recorded total may be lower but never higher).
    ASSERT_EQ(stats.shards.size(), static_cast<std::size_t>(kShards));
    std::uint64_t recorded_kills = 0;
    for (const ShardStats& s : stats.shards) recorded_kills += s.kills;
    EXPECT_LE(recorded_kills, kills_fired);
  }
}

TEST(ShardRouterChaos, SameSeedReplaysTheSameFaultMultiset) {
  const auto registry = populate();
  const auto expected = solo_outputs(*registry, 2 * kPerProducer);

  const auto run = [&](std::uint64_t seed) {
    RouterOptions opts;
    opts.shards = kShards;
    opts.shard.max_batch = 4;
    opts.shard.queue_depth = 64;
    opts.shard.workers = 1;
    opts.shard.engine.jobs = 1;
    opts.attempt_timeout = std::chrono::microseconds(2'000'000);
    opts.hedge_delay = std::chrono::microseconds(0);  // determinism: no races
    opts.probation_backoff = std::chrono::milliseconds(1);
    opts.faults.seed = seed;
    opts.faults.shard_kill_prob = 0.25;  // kills only; restarts cannot fail

    ShardRouter router(registry, opts);
    std::uint64_t completed = 0;
    for (int i = 0; i < 2 * kPerProducer; ++i) {
      const std::string name = i % 2 == 0 ? "convnet" : "mlp";
      const auto model = registry->find(name);
      const InferenceResult res =
          router.submit(name, model->make_input(kInputSeed, i));
      EXPECT_EQ(res.output, expected.at({name, i})) << "request " << i;
      ++completed;
    }
    const RouterStats stats = router.stats();
    // Interactive, no deadline, restart-capable: nothing may be lost even
    // with a 25% kill rate — forced recovery guarantees availability.
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.submitted, stats.completed);
    return router.fault_injector().shard_kills_injected();
  };

  const std::uint64_t first = run(0xD00D);
  const std::uint64_t second = run(0xD00D);
  EXPECT_EQ(first, second);  // same seed -> same injected kill multiset
  EXPECT_GT(first, 0u);      // 25% over 20 sequential draws: fires
}

TEST(ShardRouter, TenantQuotasRejectSeparatelyFromSheds) {
  const auto registry = populate();
  RouterOptions opts;
  opts.shards = 1;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  // ~No refill during the test: 2-token burst, then rejections.
  opts.tenant_quotas["limited"] = TenantQuota{0.001, 2.0};

  ShardRouter router(registry, opts);
  const auto model = registry->find("mlp");
  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      (void)router.submit("mlp", model->make_input(kInputSeed, i),
                          RouteOptions{.tenant = "limited"});
      ++ok;
    } catch (const TenantQuotaError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, 3);
  // The default tenant is unlimited and unaffected.
  EXPECT_NO_THROW((void)router.submit("mlp", model->make_input(kInputSeed, 9)));

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.quota_rejected, 3u);
  EXPECT_EQ(stats.shed, 0u);
  const TenantStats& limited = stats.tenants.at("limited");
  EXPECT_EQ(limited.submitted, 5u);
  EXPECT_EQ(limited.completed, 2u);
  EXPECT_EQ(limited.quota_rejected, 3u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.quota_rejected +
                                 stats.shed + stats.timed_out + stats.failed);
}

TEST(ShardRouter, PreExpiredDeadlineRejectsAtTheRouter) {
  const auto registry = populate();
  RouterOptions opts;
  opts.shards = 2;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  ShardRouter router(registry, opts);
  const auto model = registry->find("mlp");

  RouteOptions ropts;
  ropts.deadline_at =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)router.submit("mlp", model->make_input(kInputSeed, 0), ropts),
      DeadlineExceededError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ShardRouter, RendezvousRankingIsAStablePermutation) {
  const auto registry = populate();
  RouterOptions opts;
  opts.shards = 4;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  ShardRouter router(registry, opts);

  std::vector<int> primaries;
  for (const char* model : {"convnet", "mlp", "a", "b", "c", "d"}) {
    for (const char* tenant : {"t0", "t1"}) {
      const std::vector<int> rank = router.rank_shards(model, tenant);
      ASSERT_EQ(rank.size(), 4u);
      std::vector<int> sorted = rank;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}))
          << model << "/" << tenant;
      EXPECT_EQ(rank, router.rank_shards(model, tenant));  // stable
      primaries.push_back(rank.front());
    }
  }
  // Rendezvous spreads keys: not every key lands on the same primary.
  EXPECT_GT(std::set<int>(primaries.begin(), primaries.end()).size(), 1u);

  // Ranking ignores health: a kill does not reshuffle affinity.
  const std::vector<int> before = router.rank_shards("convnet", "t0");
  router.kill_shard(before.front());
  EXPECT_EQ(router.rank_shards("convnet", "t0"), before);
}

TEST(ShardRouter, FailoverServesFromNextRankedShardAfterKill) {
  const auto registry = populate();
  const auto expected = solo_outputs(*registry, 4);
  RouterOptions opts;
  opts.shards = 2;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  opts.probation_backoff = std::chrono::milliseconds(250);  // stays ejected
  opts.max_backoff = std::chrono::milliseconds(500);
  opts.reenter_successes = 2;
  // Generous attempt budget: a timed-out attempt counts as a probation
  // failure and would re-eject the freshly restarted shard on slow
  // (sanitizer) builds.
  opts.attempt_timeout = std::chrono::microseconds(5'000'000);
  ShardRouter router(registry, opts);
  const auto model = registry->find("convnet");
  const std::vector<int> rank = router.rank_shards("convnet", "default");

  router.kill_shard(rank[0]);
  const InferenceResult res =
      router.submit("convnet", model->make_input(kInputSeed, 0));
  EXPECT_EQ(res.shard, rank[1]);  // failover target, not the dead primary
  EXPECT_EQ(res.output, expected.at({"convnet", 0}));

  // Manual restart: the shard re-enters through probation and serves again
  // (it is the rendezvous primary, so traffic returns to it).
  ASSERT_TRUE(router.restart_shard(rank[0]));
  for (int i = 1; i <= 3; ++i) {
    const InferenceResult r =
        router.submit("convnet", model->make_input(kInputSeed, i));
    EXPECT_EQ(r.shard, rank[0]) << "request " << i;
    EXPECT_EQ(r.output, (expected.at({"convnet", i})));
  }

  // The breaker walked ejected -> probation -> healthy; stats agree.
  const RouterStats stats = router.stats();
  const ShardStats& revived = stats.shards[static_cast<std::size_t>(rank[0])];
  EXPECT_EQ(revived.health, ShardHealth::kHealthy);
  EXPECT_TRUE(revived.alive);
  EXPECT_EQ(revived.kills, 1u);
  EXPECT_EQ(revived.restarts, 1u);
  bool saw_probation = false;
  bool saw_healthy_reentry = false;
  for (const HealthTransition& t : router.transitions()) {
    if (t.shard != rank[0]) continue;
    if (t.to == ShardHealth::kProbation) saw_probation = true;
    if (t.from == ShardHealth::kProbation && t.to == ShardHealth::kHealthy) {
      saw_healthy_reentry = true;
    }
  }
  EXPECT_TRUE(saw_probation);
  EXPECT_TRUE(saw_healthy_reentry);
  EXPECT_GE(stats.recovery_ms.count(), 1u);
}

TEST(ShardRouter, HedgedInteractiveRequestRacesTwoShards) {
  const auto registry = populate();
  const auto expected = solo_outputs(*registry, 4);
  RouterOptions opts;
  opts.shards = 2;
  opts.shard.workers = 1;
  opts.shard.engine.jobs = 1;
  // Single requests hold their batch open 20ms; the hedge fires after
  // 100us and races the next-ranked shard. Generous attempt budget so the
  // race is decided by completion, not timeout (sanitizer builds are slow).
  opts.shard.max_batch = 8;
  opts.shard.batch_deadline = std::chrono::microseconds(20'000);
  opts.hedge_delay = std::chrono::microseconds(100);
  opts.attempt_timeout = std::chrono::microseconds(5'000'000);
  ShardRouter router(registry, opts);
  const auto model = registry->find("mlp");

  for (int i = 0; i < 4; ++i) {
    const InferenceResult res =
        router.submit("mlp", model->make_input(kInputSeed, i));
    EXPECT_EQ(res.output, (expected.at({"mlp", i}))) << "request " << i;
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_LE(stats.hedge_wins, stats.hedges);
}

}  // namespace
}  // namespace loom::serve
