// Golden digests for the LUT backend on real zoo geometry, plus autotuner
// determinism. The digests pin the exact bytes (accumulators, requantized
// outputs, cycles, streamed-precision mean) the LUT kernels produce on
// profiled AlexNet and NiN layers — any change to the table build, the
// slice decomposition, the dead-group skip or the stats replication shows
// up as a digest break here before it can drift. Both LUT tilings and the
// bit-sliced engine must produce the *same* digest: byte-identity is the
// contract, the constant just anchors it to history.
//
// The autotuner tests drive the real choose/record path with a
// deterministic timing override (and the LOOM_AUTOTUNE_PIN escape hatch)
// and assert that decisions are reproducible: pinned timings give the same
// winner on every engine, memoized winners survive engine re-construction
// and registry re-resolution, and a pin beats measurements.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "golden.hpp"
#include "nn/zoo/zoo.hpp"
#include "quant/profiles.hpp"
#include "sim/backend.hpp"
#include "sim/functional.hpp"

namespace loom::sim {
namespace {

using golden::Fnv;

/// Find a weighted layer by name in a profiled zoo network.
nn::Layer zoo_layer(const std::string& network, const std::string& layer) {
  nn::Network net = nn::zoo::make(network);
  quant::apply_profile(net, quant::profile_for(network,
                                               quant::AccuracyTarget::k100));
  for (const nn::Layer& l : net.layers()) {
    if (l.name == layer) return l;
  }
  ADD_FAILURE() << network << " has no layer " << layer;
  return net.layers().front();
}

/// Deterministic synthetic data: unsigned profiled-precision activations
/// (top bit clear — post-ReLU), signed profiled-precision weights.
nn::Tensor synth(const nn::Shape& shape, int precision, bool is_signed,
                 std::uint64_t seed, std::uint64_t stream) {
  nn::Tensor t(shape);
  CounterRng rng(seed, stream);
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const std::uint64_t u = rng.bits(static_cast<std::uint64_t>(i));
    if (is_signed) {
      const auto span = std::int64_t{1} << precision;
      t.set_flat(i, static_cast<Value>(static_cast<std::int64_t>(u % span) -
                                       (span >> 1)));
    } else {
      const int bits = std::min(precision, 15);
      t.set_flat(i, static_cast<Value>(u & ((1u << bits) - 1)));
    }
  }
  return t;
}

std::uint64_t digest(const FunctionalLayerRun& run) {
  Fnv f;
  f.wide(run.wide);
  f.tensor(run.output);
  f.u64(run.cycles);
  f.i64(run.requant_shift);
  f.f64(run.mean_streamed_precision);
  return f.h;
}

struct GoldenCase {
  const char* network;
  const char* layer;
  std::uint64_t want;
};

// FNV-1a digests captured from the LUT backend when it was introduced;
// bitslice produced identical bytes (asserted below, not assumed).
constexpr GoldenCase kGoldenConv[] = {
    {"alexnet", "conv5", 0xe5724174fa286308ull},
    {"nin", "cccp3", 0x8b65031dd9e57c41ull},
    {"nin", "cccp6", 0x6245af9a014fec88ull},
};
constexpr std::uint64_t kGoldenAlexnetFc8 = 0x7b0e56705ac3b0e7ull;

TEST(LutGolden, ConvDigestsOnZooLayers) {
  for (const GoldenCase& gc : kGoldenConv) {
    SCOPED_TRACE(std::string(gc.network) + "/" + gc.layer);
    const nn::Layer layer = zoo_layer(gc.network, gc.layer);
    const nn::Tensor input =
        synth(nn::Shape{layer.in.c, layer.in.h, layer.in.w},
              layer.act_precision, false, 0x10CAu, 7);
    const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                     layer.weight_precision, true, 0x10CAu, 9);
    std::uint64_t first = 0;
    for (const char* backend : {"lut", "lut-outer", "bitslice"}) {
      SCOPED_TRACE(backend);
      FunctionalLoomEngine eng(
          FunctionalOptions{.jobs = 1, .backend = backend});
      const FunctionalLayerRun run =
          eng.run_conv(layer, input, weights, kBasePrecision);
      EXPECT_EQ(run.backend, backend);
      const std::uint64_t d = digest(run);
      if (first == 0) first = d;
      EXPECT_EQ(d, first) << "backends disagree";
      EXPECT_EQ(d, gc.want) << std::hex << "digest 0x" << d;
    }
  }
}

TEST(LutGolden, FcDigestOnAlexnetFc8) {
  const nn::Layer layer = zoo_layer("alexnet", "fc8");
  const nn::Tensor input = synth(nn::Shape{layer.in.elements()},
                                 kBasePrecision, true, 0xFC8u, 7);
  const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                   layer.weight_precision, true, 0xFC8u, 9);
  std::uint64_t first = 0;
  for (const char* backend : {"lut", "lut-outer", "bitslice"}) {
    SCOPED_TRACE(backend);
    FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1, .backend = backend});
    const FunctionalLayerRun run =
        eng.run_fc(layer, input, weights, kBasePrecision);
    EXPECT_EQ(run.backend, backend);
    const std::uint64_t d = digest(run);
    if (first == 0) first = d;
    EXPECT_EQ(d, first) << "backends disagree";
    EXPECT_EQ(d, kGoldenAlexnetFc8) << std::hex << "digest 0x" << d;
  }
}

// ---- Autotuner determinism ------------------------------------------------

class AutotunerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("LOOM_AUTOTUNE_PIN");
    BackendAutotuner::instance().set_timing_override_for_test(nullptr);
    BackendAutotuner::instance().reset_for_test();
  }

  static nn::Layer small_layer() {
    nn::Layer l = nn::make_conv("tune", nn::Shape3{8, 6, 6}, 12, 3, 1, 1);
    l.act_precision = 7;
    l.weight_precision = 3;
    return l;
  }

  /// Run the layer once through a fresh "auto" engine; returns the kernel
  /// that actually ran it.
  static std::string run_auto(const nn::Layer& layer, const nn::Tensor& input,
                              const nn::Tensor& weights) {
    FunctionalLoomEngine eng(FunctionalOptions{.jobs = 1, .backend = "auto"});
    EXPECT_EQ(eng.backend_name(), "auto");
    return eng.run_conv(layer, input, weights, kBasePrecision).backend;
  }
};

TEST_F(AutotunerTest, PinnedTimingsGiveSameChoiceEverywhere) {
  auto& tuner = BackendAutotuner::instance();
  tuner.reset_for_test();
  tuner.set_timing_override_for_test(
      [](const TuneKey&, const std::string& backend) -> std::uint64_t {
        if (backend == "lut") return 100;
        if (backend == "bitslice") return 200;
        return 300;  // lut-outer
      });

  const nn::Layer layer = small_layer();
  const nn::Tensor input = synth(nn::Shape{layer.in.c, layer.in.h, layer.in.w},
                                 layer.act_precision, false, 1, 7);
  const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                   layer.weight_precision, true, 1, 9);

  // With the override, the very first choose() samples every candidate and
  // decides — so even the first run uses the winner.
  EXPECT_EQ(run_auto(layer, input, weights), "lut");
  // A fresh engine re-resolves against the registry and consults the same
  // memoized cell: same choice, no re-exploration.
  EXPECT_EQ(run_auto(layer, input, weights), "lut");

  std::vector<BackendAutotuner::Decision> ds = tuner.decisions();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].winner, "lut");
  EXPECT_FALSE(ds[0].pinned);
  EXPECT_EQ(ds[0].samples.size(), 3u);

  // Memoization beats new (different) timings: flipping the override does
  // not flip a decided cell...
  tuner.set_timing_override_for_test(
      [](const TuneKey&, const std::string& backend) -> std::uint64_t {
        return backend == "bitslice" ? 10 : 1000;
      });
  EXPECT_EQ(run_auto(layer, input, weights), "lut");
  // ...but after a reset the new timings decide afresh.
  tuner.reset_for_test();
  EXPECT_EQ(run_auto(layer, input, weights), "bitslice");
}

TEST_F(AutotunerTest, PinOverridesMeasurementsAndSurvivesReResolution) {
  ASSERT_EQ(setenv("LOOM_AUTOTUNE_PIN", "bitslice", 1), 0);
  auto& tuner = BackendAutotuner::instance();
  tuner.reset_for_test();  // re-reads the pin
  // Timings say "lut"; the pin must win anyway.
  tuner.set_timing_override_for_test(
      [](const TuneKey&, const std::string& backend) -> std::uint64_t {
        return backend == "lut" ? 1 : 1000;
      });

  const nn::Layer layer = small_layer();
  const nn::Tensor input = synth(nn::Shape{layer.in.c, layer.in.h, layer.in.w},
                                 layer.act_precision, false, 2, 7);
  const nn::Tensor weights = synth(nn::Shape{layer.weight_count()},
                                   layer.weight_precision, true, 2, 9);

  EXPECT_EQ(run_auto(layer, input, weights), "bitslice");
  EXPECT_EQ(run_auto(layer, input, weights), "bitslice");  // re-resolution

  std::vector<BackendAutotuner::Decision> ds = tuner.decisions();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].winner, "bitslice");
  EXPECT_TRUE(ds[0].pinned);
}

TEST_F(AutotunerTest, DistinctGeometriesGetDistinctCells) {
  auto& tuner = BackendAutotuner::instance();
  tuner.reset_for_test();
  tuner.set_timing_override_for_test(
      [](const TuneKey& key, const std::string& backend) -> std::uint64_t {
        // Make the winner depend on the geometry: lut for low Pw, bitslice
        // otherwise — the autotuner must keep them apart per cell.
        const bool low_pw = key.pw <= 4;
        if (backend == "lut") return low_pw ? 10 : 100;
        if (backend == "bitslice") return low_pw ? 100 : 10;
        return 200;
      });

  nn::Layer low = small_layer();  // pw = 3
  nn::Layer high = small_layer();
  high.weight_precision = 12;
  const nn::Tensor input = synth(nn::Shape{low.in.c, low.in.h, low.in.w},
                                 low.act_precision, false, 3, 7);
  const nn::Tensor w_low = synth(nn::Shape{low.weight_count()},
                                 low.weight_precision, true, 3, 9);
  const nn::Tensor w_high = synth(nn::Shape{high.weight_count()},
                                  high.weight_precision, true, 3, 11);

  EXPECT_EQ(run_auto(low, input, w_low), "lut");
  EXPECT_EQ(run_auto(high, input, w_high), "bitslice");
  EXPECT_EQ(tuner.decisions().size(), 2u);
}

}  // namespace
}  // namespace loom::sim
