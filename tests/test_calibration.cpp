// Distribution calibration: the mechanism that makes synthetic workloads
// reproduce the paper's published effective precisions (Table 3 and the
// dynamic activation trims). Parameterized over a (precision, target) grid.
#include <gtest/gtest.h>

#include "quant/calibration.hpp"
#include "quant/group_precision.hpp"

namespace loom::quant {
namespace {

TEST(Calibration, MeasureIsMonotoneInAlpha) {
  nn::SyntheticSpec spec{.precision = 10, .alpha = 1.0, .is_signed = true};
  CalibrationOptions opts;
  double prev = 1e9;
  for (const double alpha : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    spec.alpha = alpha;
    const double m = measure_mean_group_precision(spec, opts);
    EXPECT_LE(m, prev + 0.05) << alpha;
    prev = m;
  }
}

struct GridCase {
  int precision;
  bool is_signed;
  double target;
};

class CalibrationGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(CalibrationGrid, HitsTargetWithinTolerance) {
  const GridCase c = GetParam();
  nn::SyntheticSpec spec;
  spec.precision = c.precision;
  spec.is_signed = c.is_signed;
  CalibrationOptions opts;
  opts.group_size = 16;
  const nn::SyntheticSpec calibrated =
      calibrate_to_group_precision(spec, c.target, opts);
  const double measured = measure_mean_group_precision(calibrated, opts);
  EXPECT_NEAR(measured, c.target, 0.15)
      << "precision=" << c.precision << " target=" << c.target;
}

INSTANTIATE_TEST_SUITE_P(
    WeightLikeTargets, CalibrationGrid,
    ::testing::Values(GridCase{11, true, 8.36},   // AlexNet Table 3
                      GridCase{11, true, 6.19},   // GoogLeNet Table 3
                      GridCase{12, true, 9.94},   // VGGS Table 3
                      GridCase{12, true, 7.20},   // VGG19 Table 3
                      GridCase{10, true, 8.0},
                      GridCase{11, true, 4.83}));  // GoogLeNet minimum

INSTANTIATE_TEST_SUITE_P(
    ActivationLikeTargets, CalibrationGrid,
    ::testing::Values(GridCase{8, false, 6.5}, GridCase{9, false, 7.0},
                      GridCase{13, false, 10.0}, GridCase{5, false, 3.5}));

TEST(Calibration, UnreachableHighTargetFallsBackToAlphaOne) {
  nn::SyntheticSpec spec{.precision = 8, .alpha = 1.0, .is_signed = true};
  const nn::SyntheticSpec calibrated =
      calibrate_to_group_precision(spec, 15.0, {});
  EXPECT_DOUBLE_EQ(calibrated.alpha, 1.0);
}

TEST(Calibration, CacheReturnsSameSpec) {
  const auto& a = calibrated_spec_cached(11, true, 0.0, 16, 8.36);
  const auto& b = calibrated_spec_cached(11, true, 0.0, 16, 8.36);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.precision, 11);
  EXPECT_TRUE(a.is_signed);
}

TEST(Calibration, ZeroFractionCompatible) {
  nn::SyntheticSpec spec{.precision = 9, .alpha = 1.0, .is_signed = false,
                         .zero_fraction = 0.45};
  CalibrationOptions opts;
  opts.group_size = 256;
  const auto calibrated = calibrate_to_group_precision(spec, 7.0, opts);
  EXPECT_NEAR(measure_mean_group_precision(calibrated, opts), 7.0, 0.15);
}

}  // namespace
}  // namespace loom::quant
