// Functional DPNN engine: exact outputs vs the golden model and cycle
// agreement with the analytic DPNN cycle model; plus the headline
// cross-architecture check — the bit-parallel and bit-serial functional
// engines compute identical results while spending cycles in the ratio the
// paper predicts.
#include <gtest/gtest.h>

#include "sim/dpnn_functional.hpp"
#include "sim/dpnn_sim.hpp"
#include "sim/functional.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

struct Case {
  nn::Network net;
  nn::Tensor input;
  nn::Tensor weights;
};

Case conv_case(int groups = 1) {
  nn::Network net("t", nn::Shape3{8, 10, 10});
  net.add_conv("c", 16, 3, 1, 1, groups).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {7};
  p.conv_weight = 8;
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 7, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 8, .alpha = 2.0, .is_signed = true};
  Case c{std::move(net), {}, {}};
  c.input = nn::make_activation_tensor(c.net.layer(0).in, act, 1, 1);
  c.weights = nn::make_weight_tensor(c.net.layer(0).weight_count(), wsp, 2, 2);
  return c;
}

TEST(DpnnFunctional, ConvMatchesGolden) {
  Case c = conv_case();
  FunctionalDpnnEngine engine;
  const auto run = engine.run_conv(c.net.layer(0), c.input, c.weights, 16);
  const nn::WideTensor golden =
      nn::conv_forward(c.input, c.weights, c.net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

TEST(DpnnFunctional, GroupedConvMatchesGolden) {
  Case c = conv_case(/*groups=*/2);
  FunctionalDpnnEngine engine;
  const auto run = engine.run_conv(c.net.layer(0), c.input, c.weights, 16);
  const nn::WideTensor golden =
      nn::conv_forward(c.input, c.weights, c.net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
}

TEST(DpnnFunctional, ConvCyclesMatchAnalyticModel) {
  Case c = conv_case();
  FunctionalDpnnEngine engine;
  const auto fun = engine.run_conv(c.net.layer(0), c.input, c.weights, 16);

  quant::PrecisionProfile p;
  p.network = "t";
  p.conv_act = {7};
  p.conv_weight = 8;
  NetworkWorkload wl(c.net, p);
  DpnnSimulator sim(arch::DpnnConfig{}, SimOptions{});
  const auto analytic = sim.run(wl);
  EXPECT_NEAR(static_cast<double>(fun.cycles),
              static_cast<double>(analytic.layers[0].compute_cycles), 8.0);
}

TEST(DpnnFunctional, FcMatchesGoldenAndModel) {
  nn::Network net("t", nn::Shape3{64, 1, 1});
  net.add_fc("f", 40);
  quant::PrecisionProfile p;
  p.network = "t";
  p.fc_weight = {8};
  quant::apply_profile(net, p);
  nn::SyntheticSpec act{.precision = 9, .alpha = 2.0, .is_signed = false};
  nn::SyntheticSpec wsp{.precision = 8, .alpha = 2.0, .is_signed = true};
  const nn::Tensor input = nn::make_activation_tensor(net.layer(0).in, act, 3, 3);
  const nn::Tensor weights =
      nn::make_weight_tensor(net.layer(0).weight_count(), wsp, 4, 4);

  FunctionalDpnnEngine engine;
  const auto run = engine.run_fc(net.layer(0), input, weights, 16);
  const nn::WideTensor golden = nn::fc_forward(input, weights, net.layer(0));
  for (std::int64_t i = 0; i < golden.elements(); ++i) {
    ASSERT_EQ(run.wide.flat(i), golden.flat(i)) << i;
  }
  // ceil(64/16) x ceil(40/8) = 4 x 5 = 20 cycles.
  EXPECT_EQ(run.cycles, 20u);
}

TEST(CrossEngine, SerialAndParallelEnginesAgreeBitExactly) {
  // The paper's equivalence claim, executed: both datapaths produce the
  // same integers; Loom spends ~Pa*Pw/256 of the baseline's cycles scaled
  // by the compute-bandwidth ratio of the two functional configs.
  Case c = conv_case();
  FunctionalDpnnEngine dpnn;  // 16 lanes x 8 filters
  FunctionalLoomEngine lm(FunctionalOptions{
      .rows = 8, .cols = 16, .dynamic_act_precision = false});
  const auto rd = dpnn.run_conv(c.net.layer(0), c.input, c.weights, 16);
  const auto rl = lm.run_conv(c.net.layer(0), c.input, c.weights, 16);
  for (std::int64_t i = 0; i < rd.wide.elements(); ++i) {
    ASSERT_EQ(rd.wide.flat(i), rl.wide.flat(i)) << i;
  }
  // Exact cycle accounting: DPNN walks 2 filter blocks x 100 windows x 5
  // chunks = 1000 cycles; the 8x16 Loom grid spends 2 x ceil(100/16) x 5
  // chunks x Pa(7) x Pw(8) = 3920 cycles (it has 16-window parallelism but
  // 1/16 of the per-lane bit bandwidth -> ratio 3.92 = 7*8*[112/100]/16).
  const double ratio =
      static_cast<double>(rl.cycles) / static_cast<double>(rd.cycles);
  EXPECT_NEAR(ratio, 3.92, 0.05);
}

TEST(SparsityExtension, PlaneSkippingEstimateIsFasterAndBounded) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  auto dpnn = sim::make_dpnn_simulator(arch::DpnnConfig{}, SimOptions{});
  const auto base = dpnn->run(*wl);

  arch::LoomConfig plain;
  arch::LoomConfig grouped;
  grouped.per_group_weights = true;
  arch::LoomConfig sparse;
  sparse.sparse_weight_skipping = true;

  auto s_plain = sim::make_loom_simulator(plain, SimOptions{})->run(*wl);
  auto s_grouped = sim::make_loom_simulator(grouped, SimOptions{})->run(*wl);
  auto s_sparse = sim::make_loom_simulator(sparse, SimOptions{})->run(*wl);

  const auto all = RunResult::Filter::kAll;
  // Plane skipping subsumes leading-zero trimming: strictly faster than
  // profile-only and on par or better than the per-group precision
  // estimate (within a small margin — a rare group whose magnitudes OR to
  // a dense pattern can cost one extra sign pass).
  EXPECT_LT(s_sparse.cycles(all), s_plain.cycles(all));
  EXPECT_LE(static_cast<double>(s_sparse.cycles(all)),
            static_cast<double>(s_grouped.cycles(all)) * 1.05);
}

TEST(SparsityExtension, EssentialPlanesBelowGroupPrecision) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  const auto convs = wl->network().conv_indices();
  for (const auto li : convs) {
    const double essential = wl->layer(li).essential_weight_planes();
    const double group = wl->layer(li).effective_weight_precision();
    // Interior-zero skipping beats leading-zero trimming up to the sign
    // pass (a group {-8, 7} needs 4 signed bits but 4+1 essential planes).
    EXPECT_LE(essential, group + 1.0) << li;
    EXPECT_GE(essential, 1.0);
  }
}

}  // namespace
}  // namespace loom::sim
