// Tile scheduler invariants (mem/tile_plan) and the double-buffered
// timeline (mem/timeline): coverage-exactly-once over the (window, filter,
// chunk) space, capacity-respecting footprints, degenerate geometries, the
// dataflow choice, and the pipeline's overlap/stall arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mem/bitpacked.hpp"
#include "mem/tile_plan.hpp"
#include "mem/timeline.hpp"

namespace loom::mem {
namespace {

/// Every (conv group, window, filter) cell covered by exactly one tile
/// block, every block's chunk sequence 0..n-1 exactly once, and the plan
/// totals equal to the sum over tiles.
void check_invariants(const TilePlanRequest& req, const TilePlan& plan) {
  // Tile blocks keyed by (group, window_begin, filter_begin).
  struct BlockSeen {
    int chunks_seen = 0;
    int chunk_count = 0;
    std::int64_t weight_values = 0;
    std::int64_t block_weights = 0;
    std::int64_t cells = 0;
  };
  std::map<std::tuple<int, std::int64_t, std::int64_t>, BlockSeen> blocks;

  std::int64_t act_fill = 0;
  std::int64_t weight_fill = 0;
  std::int64_t drains = 0;
  for (const TileExtent& t : plan.tiles) {
    ASSERT_GT(t.window_count(), 0);
    ASSERT_GT(t.filter_count(), 0);
    ASSERT_GE(t.window_begin, 0);
    ASSERT_LE(t.window_end, req.windows);
    ASSERT_GE(t.filter_begin, 0);
    ASSERT_LE(t.filter_end, req.group_out_channels);
    ASSERT_GE(t.conv_group, 0);
    ASSERT_LT(t.conv_group, req.conv_groups);
    // Footprints never exceed the capacities.
    EXPECT_LE(t.act_footprint_bits, req.am_bits);
    EXPECT_LE(t.weight_footprint_bits, req.wm_bits);
    // Quantum alignment (interior boundaries only; tails may be short).
    EXPECT_EQ(t.window_begin % req.window_quantum, 0);
    EXPECT_EQ(t.filter_begin % req.filter_quantum, 0);

    BlockSeen& b = blocks[{t.conv_group, t.window_begin, t.filter_begin}];
    EXPECT_EQ(t.chunk, b.chunks_seen) << "chunk sequence out of order";
    if (t.chunk == 0) {
      b.chunk_count = t.chunk_count;
      b.cells = t.window_count() * t.filter_count();
      b.block_weights = t.filter_count() * req.inner_length;
    }
    ++b.chunks_seen;
    b.weight_values += t.weight_values;

    act_fill += t.act_fill_bits;
    weight_fill += t.weight_fill_bits;
    drains += t.out_drain_bits;
  }
  EXPECT_EQ(act_fill, plan.act_fill_bits);
  EXPECT_EQ(weight_fill, plan.weight_fill_bits);
  EXPECT_EQ(drains, plan.out_drain_bits);

  // Each (group, slab, filter-range) block appears exactly once with its
  // full chunk sequence, its chunks re-sum to the block's weights, and the
  // distinct blocks tile the whole (window, filter) space exactly once.
  std::int64_t cells = 0;
  for (const auto& [key, b] : blocks) {
    EXPECT_EQ(b.chunks_seen, b.chunk_count);
    EXPECT_EQ(b.weight_values, b.block_weights)
        << "weight-stream chunks must cover the block's weights exactly";
    cells += b.cells;
  }
  EXPECT_EQ(cells,
            static_cast<std::int64_t>(req.conv_groups) * req.windows *
                req.group_out_channels)
      << "every (window, filter) cell must be covered exactly once";
}

TilePlanRequest conv_request() {
  TilePlanRequest req;
  req.windows = 28 * 28;
  req.out_w = 28;
  req.conv_groups = 1;
  req.group_out_channels = 128;
  req.inner_length = 64 * 9;
  req.group_in_channels = 64;
  req.in_h = 28;
  req.in_w = 28;
  req.kernel_h = 3;
  req.stride = 1;
  req.pad = 1;
  req.window_quantum = 16;
  req.filter_quantum = 128;
  req.act_precision = 9;
  req.weight_precision = 11;
  req.weights_bit_packed = true;
  req.out_precision = 8;
  req.am_bits = (1 << 20) * 8;
  req.wm_bits = (2 << 20) * 8;
  return req;
}

TEST(TilePlan, ResidentLayerIsOneTilePerGroup) {
  const TilePlanRequest req = conv_request();
  const TilePlan plan = build_tile_plan(req);
  EXPECT_TRUE(plan.acts_resident);
  EXPECT_TRUE(plan.weights_resident);
  ASSERT_EQ(plan.tiles.size(), 1u);
  // Weights still stream from DRAM exactly once; resident acts never do.
  EXPECT_EQ(plan.act_fill_bits, 0);
  EXPECT_EQ(plan.weight_fill_bits,
            packed_bits(req.group_out_channels * req.inner_length, 11));
  EXPECT_EQ(plan.out_drain_bits, 0);
  check_invariants(req, plan);
}

TEST(TilePlan, AmSpillTilesWindowsAndDrainsOutputs) {
  TilePlanRequest req = conv_request();
  req.am_bits = 256 << 10;  // 32 KB: far below the layer's activations
  const TilePlan plan = build_tile_plan(req);
  EXPECT_FALSE(plan.acts_resident);
  EXPECT_GT(plan.window_tiles, 1);
  EXPECT_GT(plan.act_fill_bits, 0);
  EXPECT_GT(plan.out_drain_bits, 0);
  // Outputs drain once: windows x filters x out_precision.
  EXPECT_EQ(plan.out_drain_bits,
            req.windows * req.group_out_channels * req.out_precision);
  check_invariants(req, plan);
}

TEST(TilePlan, WmSpillTilesFiltersOrChunksStream) {
  TilePlanRequest req = conv_request();
  req.group_out_channels = 512;
  req.filter_quantum = 128;
  req.wm_bits = 1 << 20;  // 128 KB
  const TilePlan plan = build_tile_plan(req);
  EXPECT_FALSE(plan.weights_resident);
  EXPECT_GT(plan.filter_tiles, 1);
  // Acts still resident: weights stream exactly once in total.
  EXPECT_TRUE(plan.acts_resident);
  std::int64_t streamed = 0;
  for (const auto& t : plan.tiles) streamed += t.weight_values;
  EXPECT_EQ(streamed, req.group_out_channels * req.inner_length);
  check_invariants(req, plan);
}

TEST(TilePlan, FatFcChunksTheWeightStream) {
  // VGG fc6 shape: one window, weights far beyond the WM.
  TilePlanRequest req;
  req.windows = 1;
  req.out_w = 1;
  req.group_out_channels = 4096;
  req.inner_length = 25088;
  req.group_in_channels = 25088;
  req.window_quantum = 1;
  req.filter_quantum = 2048;
  req.act_precision = 16;
  req.weight_precision = 6;
  req.weights_bit_packed = true;
  req.out_precision = 16;
  req.am_bits = (1 << 20) * 8;
  req.wm_bits = (2 << 20) * 8;
  const TilePlan plan = build_tile_plan(req);
  EXPECT_FALSE(plan.weights_resident);
  EXPECT_TRUE(plan.acts_resident);
  ASSERT_GT(plan.tiles.size(), 1u);
  bool any_chunked = false;
  for (const auto& t : plan.tiles) {
    any_chunked |= t.chunk_count > 1;
    EXPECT_LE(t.weight_footprint_bits, req.wm_bits / 2)
        << "chunks must double-buffer through half the WM";
  }
  EXPECT_TRUE(any_chunked);
  // The whole stream passes exactly once (acts resident -> single slab).
  std::int64_t streamed = 0;
  for (const auto& t : plan.tiles) streamed += t.weight_values;
  EXPECT_EQ(streamed, req.group_out_channels * req.inner_length);
  check_invariants(req, plan);
}

TEST(TilePlan, DegenerateGeometriesProduceValidPlans) {
  // 1x1 kernel, no padding.
  {
    TilePlanRequest req = conv_request();
    req.kernel_h = 1;
    req.pad = 0;
    req.inner_length = 64;
    check_invariants(req, build_tile_plan(req));
  }
  // Pad-heavy 5x5 with stride 3 and an asymmetric tail.
  {
    TilePlanRequest req = conv_request();
    req.in_h = 13;
    req.in_w = 13;
    req.out_w = 5;
    req.windows = 25;
    req.kernel_h = 5;
    req.stride = 3;
    req.pad = 2;
    req.inner_length = 64 * 25;
    req.am_bits = 112 << 10;  // one 16-window slab nearly fills it
    check_invariants(req, build_tile_plan(req));
  }
  // Grouped conv with non-divisible window tail.
  {
    TilePlanRequest req = conv_request();
    req.conv_groups = 4;
    req.group_in_channels = 16;
    req.group_out_channels = 24;  // not a multiple of the quantum
    req.filter_quantum = 16;
    req.windows = 27 * 27;
    req.out_w = 27;
    req.in_h = 27;
    req.in_w = 27;
    req.inner_length = 16 * 9;
    req.am_bits = 32 << 10;
    const TilePlan plan = build_tile_plan(req);
    check_invariants(req, plan);
  }
  // FC with a single output block.
  {
    TilePlanRequest req;
    req.windows = 1;
    req.out_w = 1;
    req.group_out_channels = 10;
    req.inner_length = 48;
    req.group_in_channels = 48;
    req.window_quantum = 1;
    req.filter_quantum = 2048;
    req.am_bits = 8 << 10;
    req.wm_bits = 8 << 10;
    const TilePlan plan = build_tile_plan(req);
    EXPECT_EQ(plan.tiles.size(), 1u);
    check_invariants(req, plan);
  }
}

TEST(TilePlan, RandomizedInvariantSweep) {
  SequentialRng rng(20260726);
  int planned = 0;
  for (int it = 0; it < 300; ++it) {
    TilePlanRequest req;
    req.conv_groups = 1 + static_cast<int>(rng.next_below(3));
    req.group_out_channels = 1 + static_cast<std::int64_t>(rng.next_below(200));
    req.group_in_channels = 1 + static_cast<std::int64_t>(rng.next_below(48));
    req.in_h = 1 + static_cast<std::int64_t>(rng.next_below(30));
    req.in_w = 1 + static_cast<std::int64_t>(rng.next_below(30));
    req.kernel_h = 1 + static_cast<int>(rng.next_below(5));
    req.stride = 1 + static_cast<int>(rng.next_below(3));
    req.pad = static_cast<int>(rng.next_below(3));
    const std::int64_t out_h =
        (req.in_h + 2 * req.pad - req.kernel_h) / req.stride + 1;
    const std::int64_t out_w =
        (req.in_w + 2 * req.pad - req.kernel_h) / req.stride + 1;
    if (out_h < 1 || out_w < 1) continue;
    req.out_w = out_w;
    req.windows = out_h * out_w;
    req.inner_length = req.group_in_channels * req.kernel_h * req.kernel_h;
    req.window_quantum = 16;
    req.filter_quantum = 1 + static_cast<std::int64_t>(rng.next_below(64));
    req.act_precision = 1 + static_cast<int>(rng.next_below(16));
    req.weight_precision = 1 + static_cast<int>(rng.next_below(16));
    req.weights_bit_packed = rng.next_below(2) != 0;
    req.out_precision = 1 + static_cast<int>(rng.next_below(16));
    req.am_bits = std::int64_t{1} << (12 + rng.next_below(12));
    req.wm_bits = std::int64_t{1} << (12 + rng.next_below(12));
    // Dynamic per-block precisions on half the cases.
    if (rng.next_below(2) != 0) {
      const std::int64_t blocks = ceil_div(req.windows, req.window_quantum);
      req.act_block_precision.assign(
          static_cast<std::size_t>(req.conv_groups * blocks), 0);
      for (auto& p : req.act_block_precision) {
        p = 1 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(req.act_precision)));
      }
    }
    TilePlan plan;
    try {
      plan = build_tile_plan(req);
    } catch (const ContractViolation&) {
      continue;  // AM below a single minimum slab: a rejected sizing
    }
    ++planned;
    check_invariants(req, plan);
  }
  EXPECT_GT(planned, 100) << "the sweep should mostly produce valid plans";
}

TEST(TilePlan, DynamicPrecisionShrinksFillsNeverFootprints) {
  TilePlanRequest req = conv_request();
  req.am_bits = 256 << 10;  // spill so fills exist
  const TilePlan static_plan = build_tile_plan(req);

  const std::int64_t blocks = ceil_div(req.windows, req.window_quantum);
  req.act_block_precision.assign(static_cast<std::size_t>(blocks), 5);
  const TilePlan dyn_plan = build_tile_plan(req);

  EXPECT_LT(dyn_plan.act_fill_bits, static_plan.act_fill_bits);
  EXPECT_EQ(dyn_plan.tiles.size(), static_plan.tiles.size())
      << "packing precision must not change the tiling, only the traffic";
}

TEST(TilePlan, InvalidRequestsThrow) {
  TilePlanRequest req = conv_request();
  req.am_bits = 0;
  EXPECT_THROW((void)build_tile_plan(req), ContractViolation);
  req = conv_request();
  req.act_precision = 17;
  EXPECT_THROW((void)build_tile_plan(req), ContractViolation);
  req = conv_request();
  req.act_block_precision = {5};  // wrong extent
  EXPECT_THROW((void)build_tile_plan(req), ContractViolation);
}

// ---- MemoryTimeline -------------------------------------------------------

TEST(Timeline, FullyOverlappedFillsCauseNoSteadyStateStall) {
  MemoryTimeline tl;
  tl.begin_layer();
  // First tile: cold fill is exposed. After that, fills (10) hide under
  // compute (100).
  for (int i = 0; i < 8; ++i) tl.add_tile(10, 0, 0, 100);
  const auto stats = tl.end_layer();
  EXPECT_EQ(stats.tiles, 8u);
  EXPECT_EQ(stats.stall_cycles, 10u);  // cold start only
  EXPECT_EQ(stats.stalled_tiles, 1u);
  EXPECT_EQ(tl.finish(), 0u);
}

TEST(Timeline, BandwidthBoundTilesStallByTheDeficit) {
  MemoryTimeline tl;
  tl.begin_layer();
  for (int i = 0; i < 4; ++i) tl.add_tile(100, 0, 0, 30);
  const auto stats = tl.end_layer();
  // Tile 0 exposes its full fill; each later tile stalls fill - compute.
  EXPECT_EQ(stats.stall_cycles, 100u + 3 * 70u);
  EXPECT_EQ(stats.max_tile_stall, 100u);
  EXPECT_EQ(stats.stalled_tiles, 4u);
}

TEST(Timeline, WeightPrefetchCrossesLayersActFillsDoNot) {
  MemoryTimeline tl;
  tl.begin_layer();
  tl.add_tile(10, 0, 0, 1000);  // long compute leaves the channel idle
  (void)tl.end_layer();

  // Next layer's weight fill hides entirely under the previous compute...
  tl.begin_layer();
  tl.add_tile(50, 0, 0, 10);
  const auto prefetched = tl.end_layer();
  EXPECT_EQ(prefetched.stall_cycles, 0u);

  // ...but an activation fill must wait for the producer to retire.
  MemoryTimeline tl2;
  tl2.begin_layer();
  tl2.add_tile(10, 0, 0, 1000);
  (void)tl2.end_layer();
  tl2.begin_layer();
  tl2.add_tile(0, 50, 0, 10);
  const auto dependent = tl2.end_layer();
  EXPECT_EQ(dependent.stall_cycles, 50u);
}

TEST(Timeline, FillsNeverRunMoreThanOneTileAhead) {
  // Double buffering means tile i's fill reuses the buffer tile i-2
  // computed from: with fills {10, 10, 1000} and compute 100, the third
  // fill cannot start before the first compute retires at cycle 110 —
  // an unbounded channel would have started it at cycle 20.
  MemoryTimeline tl;
  tl.begin_layer();
  tl.add_tile(10, 0, 0, 100);    // fill 0..10, compute 10..110
  tl.add_tile(10, 0, 0, 100);    // fill 10..20, compute 110..210
  tl.add_tile(1000, 0, 0, 100);  // fill gated to 110..1110, not 20..1020
  const auto stats = tl.end_layer();
  // Stalls: 10 (cold) + 0 + (1110 - 210) = 910.
  EXPECT_EQ(stats.stall_cycles, 10u + 900u);
  EXPECT_EQ(stats.max_tile_stall, 900u);
}

TEST(Timeline, DrainsDeferBehindNextFillAndFlushAtFinish) {
  MemoryTimeline tl;
  tl.begin_layer();
  tl.add_tile(10, 0, 40, 20);   // drain queued, not yet on the channel
  tl.add_tile(10, 0, 0, 1000);  // fill goes first (read priority)
  const auto stats = tl.end_layer();
  // Tile 1's fill starts right after tile 0's (cycle 20), never behind the
  // 40-cycle drain; no stall beyond tile 0's cold fill.
  EXPECT_EQ(stats.stall_cycles, 10u);
  EXPECT_EQ(tl.finish(), 0u);  // drain finished during the long compute

  MemoryTimeline tl2;
  tl2.begin_layer();
  tl2.add_tile(10, 0, 40, 20);  // drain after the last compute
  (void)tl2.end_layer();
  EXPECT_EQ(tl2.finish(), 40u);  // tail exposed at the end of the run
}

}  // namespace
}  // namespace loom::mem
