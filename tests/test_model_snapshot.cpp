// Crash-safe binary model snapshots: round-trip exactness and fuzz-style
// corruption coverage. The format promises that EVERY malformed input —
// truncation at any byte, a flip of any bit, version skew, tampered
// lengths, trailing garbage — fails decode with a typed SnapshotError,
// never UB and never a silently-wrong model. These tests pin that promise
// by attacking a real encoded snapshot byte by byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/fault_injector.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "sim/functional.hpp"

namespace loom::serve {
namespace {

Model make_model() {
  ModelRegistry registry;
  nn::Network net("convnet", nn::Shape3{6, 12, 12});
  net.add_conv("c1", 12, 3, 1, 1).precision_group = 0;
  net.add_pool("p1", nn::PoolKind::kMax, 2, 2);
  net.add_fc("logits", 9);
  quant::PrecisionProfile p;
  p.network = "convnet";
  p.conv_act = {7};
  p.conv_weight = 9;
  p.fc_weight = {8};
  p.dynamic_act_trim = 1.5;
  quant::apply_profile(net, p);
  registry.add_synthetic("convnet", std::move(net), p, /*seed=*/31);
  return *registry.find("convnet");
}

void expect_equal_models(const Model& a, const Model& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.net.name(), b.net.name());
  EXPECT_EQ(a.net.input(), b.net.input());
  EXPECT_EQ(a.net.current(), b.net.current());
  ASSERT_EQ(a.net.size(), b.net.size());
  for (std::size_t i = 0; i < a.net.size(); ++i) {
    const nn::Layer& la = a.net.layer(i);
    const nn::Layer& lb = b.net.layer(i);
    EXPECT_EQ(la.kind, lb.kind) << "layer " << i;
    EXPECT_EQ(la.name, lb.name) << "layer " << i;
    EXPECT_EQ(la.in, lb.in) << "layer " << i;
    EXPECT_EQ(la.out, lb.out) << "layer " << i;
    EXPECT_EQ(la.kernel_h, lb.kernel_h) << "layer " << i;
    EXPECT_EQ(la.kernel_w, lb.kernel_w) << "layer " << i;
    EXPECT_EQ(la.stride, lb.stride) << "layer " << i;
    EXPECT_EQ(la.pad, lb.pad) << "layer " << i;
    EXPECT_EQ(la.groups, lb.groups) << "layer " << i;
    EXPECT_EQ(la.pool, lb.pool) << "layer " << i;
    EXPECT_EQ(la.act_precision, lb.act_precision) << "layer " << i;
    EXPECT_EQ(la.weight_precision, lb.weight_precision) << "layer " << i;
    EXPECT_EQ(la.precision_group, lb.precision_group) << "layer " << i;
  }
  EXPECT_EQ(a.profile.network, b.profile.network);
  EXPECT_EQ(a.profile.target, b.profile.target);
  EXPECT_EQ(a.profile.conv_act, b.profile.conv_act);
  EXPECT_EQ(a.profile.conv_weight, b.profile.conv_weight);
  EXPECT_EQ(a.profile.fc_weight, b.profile.fc_weight);
  EXPECT_EQ(a.profile.dynamic_act_trim, b.profile.dynamic_act_trim);
  EXPECT_EQ(a.input_spec.precision, b.input_spec.precision);
  EXPECT_EQ(a.input_spec.alpha, b.input_spec.alpha);
  EXPECT_EQ(a.input_spec.is_signed, b.input_spec.is_signed);
  EXPECT_EQ(a.input_spec.zero_fraction, b.input_spec.zero_fraction);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight tensor " << i;
  }
}

TEST(ModelSnapshot, EncodeDecodeRoundTripIsExact) {
  const Model original = make_model();
  const std::vector<std::uint8_t> bytes = encode_snapshot(original);
  const Model decoded = decode_snapshot(bytes);
  expect_equal_models(original, decoded);

  // Encoding is deterministic: the same model snapshots to the same bytes.
  EXPECT_EQ(bytes, encode_snapshot(decoded));

  // The restored model serves byte-identical outputs.
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  const nn::Tensor input = original.make_input(/*seed=*/7, /*stream=*/0);
  const nn::Tensor a =
      engine.run_network(original.net, input, original.weights).output;
  const nn::Tensor b =
      engine.run_network(decoded.net, input, decoded.weights).output;
  EXPECT_EQ(a, b);
}

TEST(ModelSnapshot, SaveLoadRoundTripsThroughDisk) {
  const Model original = make_model();
  const std::string path = testing::TempDir() + "loom_snapshot_roundtrip.bin";
  save_snapshot(original, path);
  const std::shared_ptr<const Model> loaded = load_snapshot(path);
  expect_equal_models(original, *loaded);
  EXPECT_EQ(std::remove(path.c_str()), 0);
  // The tmp file used for the atomic rename must not survive.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(ModelSnapshot, LoadedModelRegistersAndServes) {
  const Model original = make_model();
  const std::string path = testing::TempDir() + "loom_snapshot_register.bin";
  save_snapshot(original, path);

  ModelRegistry registry;
  registry.add(*load_snapshot(path));
  const auto handle = registry.find("convnet");
  sim::FunctionalLoomEngine engine(sim::FunctionalOptions{.jobs = 1});
  const nn::Tensor input = original.make_input(/*seed=*/7, /*stream=*/1);
  EXPECT_EQ(engine.run_network(original.net, input, original.weights).output,
            engine.run_network(handle->net, input, handle->weights).output);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ModelSnapshot, RegistryAddRejectsWeightMismatch) {
  Model model = make_model();
  model.weights.pop_back();
  ModelRegistry registry;
  EXPECT_THROW(registry.add(std::move(model)), ConfigError);
}

TEST(ModelSnapshot, TruncationAtEveryLengthFails) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(make_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_snapshot(cut), SnapshotError)
        << "truncated to " << len << " of " << bytes.size() << " bytes";
  }
}

TEST(ModelSnapshot, AnyBitFlipFails) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(make_model());
  const std::uint64_t total_bits = bytes.size() * 8;

  // Every bit of the header + first section descriptors (the structural
  // bytes), plus a deterministic random sample across the whole image.
  std::vector<std::uint64_t> positions;
  for (std::uint64_t b = 0; b < 96 * 8; ++b) positions.push_back(b);
  const CounterRng rng(0x5EED, 0);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    positions.push_back(rng.below(i, total_bits));
  }

  for (const std::uint64_t bit : positions) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW((void)decode_snapshot(mutated), SnapshotError)
        << "bit " << bit << " of " << total_bits;
  }
}

TEST(ModelSnapshot, VersionSkewFails) {
  std::vector<std::uint8_t> bytes = encode_snapshot(make_model());
  bytes[8] = static_cast<std::uint8_t>(kSnapshotVersion + 1);  // version u32 LE
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(ModelSnapshot, TamperedSectionLengthFails) {
  std::vector<std::uint8_t> bytes = encode_snapshot(make_model());
  // First section descriptor starts after magic(8) + version(4) + count(4);
  // its length u64 follows the id u32.
  const std::size_t length_at = 8 + 4 + 4 + 4;
  for (const int delta : {+1, -1}) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[length_at] = static_cast<std::uint8_t>(
        static_cast<int>(mutated[length_at]) + delta);
    EXPECT_THROW((void)decode_snapshot(mutated), SnapshotError)
        << "length delta " << delta;
  }
}

TEST(ModelSnapshot, TrailingGarbageFails) {
  std::vector<std::uint8_t> bytes = encode_snapshot(make_model());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(ModelSnapshot, GarbageAndEmptyInputsFail) {
  EXPECT_THROW((void)decode_snapshot(std::vector<std::uint8_t>{}),
               SnapshotError);
  std::vector<std::uint8_t> garbage(64);
  const CounterRng rng(0xBAD, 1);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(rng.bits(i));
  }
  EXPECT_THROW((void)decode_snapshot(garbage), SnapshotError);
}

TEST(ModelSnapshot, MissingFileFails) {
  EXPECT_THROW((void)load_snapshot(testing::TempDir() + "does_not_exist.bin"),
               SnapshotError);
}

TEST(ModelSnapshot, InjectedCorruptionOnLoadIsCaught) {
  const Model original = make_model();
  const std::string path = testing::TempDir() + "loom_snapshot_corrupt.bin";
  save_snapshot(original, path);

  FaultPlan plan;
  plan.seed = 9;
  plan.snapshot_corrupt_prob = 1.0;
  FaultInjector injector(plan);
  EXPECT_THROW((void)load_snapshot(path, &injector), SnapshotError);
  EXPECT_EQ(injector.snapshot_corruptions_injected(), 1u);

  // The same injector seed flips the same bit: the failure replays.
  FaultInjector replay(plan);
  EXPECT_THROW((void)load_snapshot(path, &replay), SnapshotError);
  EXPECT_EQ(replay.snapshot_corruptions_injected(), 1u);

  // With the site disabled the very same file loads fine.
  const std::shared_ptr<const Model> loaded = load_snapshot(path);
  expect_equal_models(original, *loaded);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

}  // namespace
}  // namespace loom::serve
