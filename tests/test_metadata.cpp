#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "quant/metadata.hpp"

namespace loom::quant {
namespace {

TEST(GroupMetadata, EncodeValuesKnownGroups) {
  const std::vector<Value> values = {1, -1, 3, 0,      // 3 bits (value 3)
                                     100, 2, 0, -1,    // 8 bits (100)
                                     -128, 0, 0, 0};   // 8 bits (-128)
  const GroupMetadata md = GroupMetadata::encode_values(values, 4);
  ASSERT_EQ(md.groups(), 3);
  EXPECT_EQ(md.group_precision(0), 3);
  EXPECT_EQ(md.group_precision(1), 8);
  EXPECT_EQ(md.group_precision(2), 8);
  EXPECT_EQ(md.metadata_bits(), 12);
  EXPECT_EQ(md.packed_value_bits(), (3 + 8 + 8) * 4);
  EXPECT_DOUBLE_EQ(md.mean_precision(), 19.0 / 3.0);
}

TEST(GroupMetadata, StreamedEncodeMatchesValues) {
  nn::SyntheticSpec spec{.precision = 9, .alpha = 4.0, .is_signed = true};
  const nn::SyntheticSource src(5, 5, spec);
  constexpr std::int64_t kCount = 1024;
  std::vector<Value> values(kCount);
  for (std::int64_t i = 0; i < kCount; ++i) {
    values[static_cast<std::size_t>(i)] = src.at(static_cast<std::uint64_t>(i));
  }
  const GroupMetadata a = GroupMetadata::encode(src, kCount, 16);
  const GroupMetadata b = GroupMetadata::encode_values(values, 16);
  ASSERT_EQ(a.groups(), b.groups());
  for (std::int64_t g = 0; g < a.groups(); ++g) {
    EXPECT_EQ(a.group_precision(g), b.group_precision(g)) << g;
  }
}

TEST(GroupMetadata, PartialFinalGroup) {
  const std::vector<Value> values = {1, 1, 1, 1, 1, 63};
  const GroupMetadata md = GroupMetadata::encode_values(values, 4);
  ASSERT_EQ(md.groups(), 2);
  EXPECT_EQ(md.group_precision(1), 7);
  // Packed bits charge the full group width (hardware lane granularity).
  EXPECT_EQ(md.packed_value_bits(), 2 * 4 + 7 * 4);
}

TEST(GroupMetadata, BoundsChecked) {
  const std::vector<Value> values = {1};
  const GroupMetadata md = GroupMetadata::encode_values(values, 4);
  EXPECT_THROW((void)md.group_precision(1), ContractViolation);
}

TEST(WeightFootprint, PerGroupBeatsPerLayerOnSkewedData) {
  nn::SyntheticSpec spec{.precision = 11, .alpha = 30.0, .is_signed = true};
  const nn::SyntheticSource src(7, 7, spec);
  const FootprintReport r = weight_footprint(src, 1 << 16, 11, 16);
  EXPECT_EQ(r.baseline_bits, (1 << 16) * 16);
  EXPECT_EQ(r.per_layer_bits, (1 << 16) * 11);
  EXPECT_GT(r.per_group_ratio, r.per_layer_ratio);
  EXPECT_GT(r.per_layer_ratio, 1.0);
}

TEST(WeightFootprint, MetadataOverheadCannotBeBeatenOnUniformData) {
  // If every group needs the full layer precision, per-group packing pays
  // the metadata for nothing.
  nn::SyntheticSpec spec{.precision = 8, .alpha = 1.0, .is_signed = true};
  const nn::SyntheticSource src(9, 9, spec);
  const FootprintReport r = weight_footprint(src, 1 << 16, 8, 16);
  EXPECT_LE(r.per_group_ratio, r.per_layer_ratio * 1.02);
}

}  // namespace
}  // namespace loom::quant
