#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/detector.hpp"
#include "arch/serializer.hpp"
#include "common/error.hpp"
#include "nn/synthetic.hpp"
#include "quant/dynamic_precision.hpp"

namespace loom {
namespace {

TEST(PerGroupPrecisions, MatchesBruteForce) {
  const std::vector<Value> values = {1, 2, 3, 0, 250, 1, 0, 0, 15};
  const auto groups = quant::per_group_precisions(values, 3, /*is_signed=*/false);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], 2);  // max 3
  EXPECT_EQ(groups[1], 8);  // max 250
  EXPECT_EQ(groups[2], 4);  // max 15
}

TEST(PerGroupPrecisions, PartialFinalGroup) {
  const std::vector<Value> values = {1, 1, 1, 1, 127};
  const auto groups = quant::per_group_precisions(values, 4, false);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1], 7);
}

TEST(PerGroupPrecisions, SignedWeights) {
  const std::vector<Value> values = {-1, 1, -128, 2};
  const auto groups = quant::per_group_precisions(values, 2, true);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], 2);
  EXPECT_EQ(groups[1], 8);
}

TEST(MeanGroupPrecision, AveragesGroups) {
  const std::vector<Value> values = {1, 1, 255, 255};
  EXPECT_DOUBLE_EQ(quant::mean_group_precision(values, 2, false), 4.5);
}

TEST(PrecisionDetector, CountsInvocations) {
  quant::PrecisionDetector det;
  const std::vector<Value> group = {1, 2, 3};
  (void)det.detect_unsigned(group);
  (void)det.detect_signed(group);
  EXPECT_EQ(det.invocations(), 2u);
  det.reset();
  EXPECT_EQ(det.invocations(), 0u);
}

TEST(DynamicPrecisionUnit, DetectMatchesGroupPrecision) {
  arch::DynamicPrecisionUnit unit;
  const std::vector<Value> group = {0, 5, 9, 2};
  EXPECT_EQ(unit.detect(group), group_precision_unsigned(group));
  EXPECT_EQ(unit.invocations(), 1u);
  EXPECT_EQ(unit.values_inspected(), 4u);
}

TEST(DynamicPrecisionUnit, PlaneDetectionEqualsValueDetection) {
  // The OR-tree-over-bit-planes formulation must agree with the direct
  // value formulation on random data.
  nn::SyntheticSpec spec{.precision = 9, .alpha = 2.0, .is_signed = false};
  const nn::SyntheticSource src(3, 0, spec);
  arch::DynamicPrecisionUnit unit;
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<Value> group(64);
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i] = src.at(static_cast<std::uint64_t>(trial) * 64 + i);
    }
    const arch::BitPlanes planes = arch::serialize(group, 16);
    EXPECT_EQ(unit.detect_planes(planes), unit.detect(group)) << trial;
  }
}

TEST(DynamicPrecisionUnit, AllZerosStillOneBit) {
  arch::DynamicPrecisionUnit unit;
  const std::vector<Value> zeros(16, 0);
  EXPECT_EQ(unit.detect(zeros), 1);
  EXPECT_EQ(unit.detect_planes(arch::serialize(zeros, 8)), 1);
}

TEST(PerGroupPrecisions, GroupSizeOneIsPerValue) {
  const std::vector<Value> values = {0, 1, 2, 4, 8};
  const auto groups = quant::per_group_precisions(values, 1, false);
  const std::vector<int> expected = {1, 1, 2, 3, 4};
  EXPECT_EQ(groups, expected);
}

TEST(PerGroupPrecisions, InvalidGroupThrows) {
  const std::vector<Value> values = {1};
  EXPECT_THROW((void)quant::per_group_precisions(values, 0, false),
               ContractViolation);
}

}  // namespace
}  // namespace loom
