// Loom cycle model: hand-computed counts in static-precision mode, the
// paper's ideal-speedup laws on divisible geometries, cascading, the
// LM2b/LM4b precision-rounding behaviour, and §4.6 group-precision modes.
#include <gtest/gtest.h>

#include "nn/zoo/zoo.hpp"
#include "sim/dpnn_sim.hpp"
#include "sim/loom_sim.hpp"
#include "sim/workload.hpp"

namespace loom::sim {
namespace {

NetworkWorkload conv_only(int ci, int hw, int co, int pa, int pw, int kernel = 3,
                          int pad = 1) {
  nn::Network net("custom", nn::Shape3{ci, hw, hw});
  net.add_conv("c", co, kernel, 1, pad).precision_group = 0;
  quant::PrecisionProfile p;
  p.network = "custom";
  p.conv_act = {pa};
  p.conv_weight = pw;
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

NetworkWorkload fc_only(int ci, int co, int pw) {
  nn::Network net("custom", nn::Shape3{ci, 1, 1});
  net.add_fc("f", co);
  quant::PrecisionProfile p;
  p.network = "custom";
  p.fc_weight = {pw};
  quant::apply_profile(net, p);
  return NetworkWorkload(std::move(net), p);
}

arch::LoomConfig static_cfg(int bits = 1) {
  arch::LoomConfig cfg;
  cfg.bits_per_cycle = bits;
  cfg.dynamic_act_precision = false;
  return cfg;
}

TEST(LoomSim, ConvCyclesByHand) {
  // 8x16x16 input, 32 filters, k3 p1, Pa=8, Pw=10 at E=128:
  // FB=1, WB=ceil(256/16)=16, IC=ceil(72/16)=5, chunk = 8*10.
  NetworkWorkload wl = conv_only(8, 16, 32, 8, 10);
  LoomSimulator sim(static_cfg(), SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_EQ(r.layers[0].compute_cycles, 16u * 5 * 80 + 8);
}

TEST(LoomSim, IdealConvSpeedupOnDivisibleGeometry) {
  // Co=128 fills the 128 rows exactly; 256 windows fill 16 columns.
  for (const auto& [pa, pw] : {std::pair{8, 10}, {5, 11}, {16, 16}, {4, 4}}) {
    NetworkWorkload wl = conv_only(8, 16, 128, pa, pw);
    LoomSimulator lm(static_cfg(), SimOptions{});
    DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
    const double speedup = speedup_vs(lm.run(wl), dp.run(wl),
                                      RunResult::Filter::kConv);
    EXPECT_NEAR(speedup, 256.0 / (pa * pw), 0.02 * 256.0 / (pa * pw))
        << "pa=" << pa << " pw=" << pw;
  }
}

TEST(LoomSim, SixteenBitWorstCaseMatchesBaseline) {
  NetworkWorkload wl = conv_only(8, 16, 128, 16, 16);
  LoomSimulator lm(static_cfg(), SimOptions{});
  DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
  const auto rl = lm.run(wl);
  const auto rd = dp.run(wl);
  EXPECT_NEAR(static_cast<double>(rl.cycles(RunResult::Filter::kConv)),
              static_cast<double>(rd.cycles(RunResult::Filter::kConv)), 16.0);
}

TEST(LoomSim, FilterUnderutilizationCutsSpeedup) {
  // 32 filters on 128 rows: only a quarter of the array works.
  NetworkWorkload full = conv_only(8, 16, 128, 8, 8);
  NetworkWorkload quarter = conv_only(8, 16, 32, 8, 8);
  LoomSimulator lm(static_cfg(), SimOptions{});
  DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
  const double s_full =
      speedup_vs(lm.run(full), dp.run(full), RunResult::Filter::kConv);
  const double s_quarter =
      speedup_vs(lm.run(quarter), dp.run(quarter), RunResult::Filter::kConv);
  EXPECT_NEAR(s_quarter, s_full / 4.0, 0.1);
  NetworkWorkload wl = conv_only(8, 16, 32, 8, 8);
  RunResult r = lm.run(wl);
  EXPECT_NEAR(r.layers[0].utilization, 32.0 / 128.0 * (72.0 / 80.0), 0.02);
}

TEST(LoomSim, FcCyclesByHand) {
  // Ci=1024, Co=2048, Pw=9: FB=1, rounds=64, 16 act passes
  // + 15 stagger + 8 pipeline fill.
  NetworkWorkload wl = fc_only(1024, 2048, 9);
  LoomSimulator sim(static_cfg(), SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_EQ(r.layers[0].compute_cycles, 64u * 16 * 9 + 15 + 8);
}

TEST(LoomSim, FcIdealSpeedupIs16OverPw) {
  for (const int pw : {8, 9, 10, 16}) {
    NetworkWorkload wl = fc_only(4096, 2048, pw);
    LoomSimulator lm(static_cfg(), SimOptions{});
    DpnnSimulator dp(arch::DpnnConfig{}, SimOptions{});
    const double speedup =
        speedup_vs(lm.run(wl), dp.run(wl), RunResult::Filter::kFc);
    EXPECT_NEAR(speedup, 16.0 / pw, 0.03 * 16.0 / pw) << pw;
  }
}

TEST(LoomSim, CascadingRecoversSmallOutputFc) {
  // Co=512 uses a quarter of the SIPs without cascading.
  NetworkWorkload wl = fc_only(4096, 512, 8);
  arch::LoomConfig with = static_cfg();
  arch::LoomConfig without = static_cfg();
  without.cascading = false;
  LoomSimulator sim_with(with, SimOptions{});
  LoomSimulator sim_without(without, SimOptions{});
  NetworkWorkload wl2 = fc_only(4096, 512, 8);
  const auto cycles_with = sim_with.run(wl).cycles(RunResult::Filter::kFc);
  const auto cycles_without =
      sim_without.run(wl2).cycles(RunResult::Filter::kFc);
  EXPECT_NEAR(static_cast<double>(cycles_without) /
                  static_cast<double>(cycles_with),
              4.0, 0.2);
}

TEST(LoomSim, GoogleNetStyleFcUtilization) {
  // 1000 outputs on 2048 SIPs: ways=2 cascading -> ~97.7% utilization.
  NetworkWorkload wl = fc_only(1024, 1000, 7);
  LoomSimulator sim(static_cfg(), SimOptions{});
  RunResult r = sim.run(wl);
  EXPECT_GT(r.layers[0].utilization, 0.90);
}

TEST(LoomSim, MultiBitVariantsRoundPrecisionUp) {
  // Pa=5: LM1b processes 5 serial steps; LM4b needs ceil(5/4)=2 passes of
  // 4 bits — the §3.2 example where reducing 8->5 bits does not help LM4b.
  NetworkWorkload wl5 = conv_only(8, 16, 128, 5, 8);
  NetworkWorkload wl8 = conv_only(8, 16, 128, 8, 8);
  LoomSimulator lm4(static_cfg(4), SimOptions{});
  const auto c5 = lm4.run(wl5).cycles(RunResult::Filter::kConv);
  const auto c8 = lm4.run(wl8).cycles(RunResult::Filter::kConv);
  EXPECT_EQ(c5, c8);  // both take 2 passes per weight bit

  // LM1b does benefit: 5/8 of the cycles.
  LoomSimulator lm1(static_cfg(1), SimOptions{});
  const auto c5_1b = lm1.run(wl5).cycles(RunResult::Filter::kConv);
  const auto c8_1b = lm1.run(wl8).cycles(RunResult::Filter::kConv);
  EXPECT_NEAR(static_cast<double>(c8_1b) / static_cast<double>(c5_1b),
              8.0 / 5.0, 0.05);
}

TEST(LoomSim, MultiBitNeverFasterThanOneBitStatic) {
  for (const int pa : {5, 7, 8, 11, 13}) {
    NetworkWorkload wl1 = conv_only(8, 16, 128, pa, 9);
    NetworkWorkload wl2 = conv_only(8, 16, 128, pa, 9);
    NetworkWorkload wl4 = conv_only(8, 16, 128, pa, 9);
    LoomSimulator lm1(static_cfg(1), SimOptions{});
    LoomSimulator lm2(static_cfg(2), SimOptions{});
    LoomSimulator lm4(static_cfg(4), SimOptions{});
    const auto c1 = lm1.run(wl1).cycles(RunResult::Filter::kConv);
    const auto c2 = lm2.run(wl2).cycles(RunResult::Filter::kConv);
    const auto c4 = lm4.run(wl4).cycles(RunResult::Filter::kConv);
    EXPECT_LE(c1, c2 + 32) << pa;
    EXPECT_LE(c2, c4 + 32) << pa;
  }
}

TEST(LoomSim, DynamicPrecisionNeverSlowerThanStatic) {
  nn::Network net = nn::zoo::make("alexnet");
  const auto& profile = quant::profile_for("alexnet", quant::AccuracyTarget::k100);
  quant::apply_profile(net, profile);
  NetworkWorkload wl(std::move(net), profile);

  arch::LoomConfig dyn;
  arch::LoomConfig stat;
  stat.dynamic_act_precision = false;
  LoomSimulator sim_dyn(dyn, SimOptions{});
  LoomSimulator sim_stat(stat, SimOptions{});
  EXPECT_LE(sim_dyn.run(wl).cycles(RunResult::Filter::kConv),
            sim_stat.run(wl).cycles(RunResult::Filter::kConv));
}

TEST(LoomSim, PerGroupWeightsFasterThanProfile) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  arch::LoomConfig base;
  arch::LoomConfig grouped;
  grouped.per_group_weights = true;
  LoomSimulator sim_base(base, SimOptions{});
  LoomSimulator sim_grouped(grouped, SimOptions{});
  const auto all = RunResult::Filter::kAll;
  EXPECT_LT(sim_grouped.run(*wl).cycles(all), sim_base.run(*wl).cycles(all));
}

TEST(LoomSim, HonestGroupTimingSlowerThanLinearEstimate) {
  auto wl = prepare_network("alexnet", quant::AccuracyTarget::k100);
  arch::LoomConfig linear;
  linear.per_group_weights = true;
  arch::LoomConfig honest = linear;
  honest.honest_group_weight_timing = true;
  LoomSimulator sim_linear(linear, SimOptions{});
  LoomSimulator sim_honest(honest, SimOptions{});
  const auto all = RunResult::Filter::kAll;
  EXPECT_GE(sim_honest.run(*wl).cycles(all), sim_linear.run(*wl).cycles(all));
}

TEST(LoomSim, PackedWeightsShrinkOffchipTraffic) {
  NetworkWorkload wl_lm = fc_only(4096, 4096, 8);
  NetworkWorkload wl_dp = fc_only(4096, 4096, 8);
  SimOptions offchip;
  offchip.model_offchip = true;
  LoomSimulator lm(static_cfg(), offchip);
  DpnnSimulator dp(arch::DpnnConfig{}, offchip);
  const auto lm_bits = lm.run(wl_lm).offchip_bits();
  const auto dp_bits = dp.run(wl_dp).offchip_bits();
  // Pw=8 halves the weight traffic.
  EXPECT_NEAR(static_cast<double>(lm_bits) / static_cast<double>(dp_bits),
              0.5, 0.02);
}

}  // namespace
}  // namespace loom::sim
