// Published profile data (paper Tables 1 and 3) and its application to
// networks.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/zoo/zoo.hpp"
#include "quant/profiles.hpp"

namespace loom::quant {
namespace {

TEST(Profiles, Table1SpotChecks) {
  const auto& alex100 = profile_for("alexnet", AccuracyTarget::k100);
  EXPECT_EQ(alex100.conv_act, (std::vector<int>{9, 8, 5, 5, 7}));
  EXPECT_EQ(alex100.conv_weight, 11);
  EXPECT_EQ(alex100.fc_weight, (std::vector<int>{10, 9, 9}));

  const auto& alex99 = profile_for("alexnet", AccuracyTarget::k99);
  EXPECT_EQ(alex99.conv_act, (std::vector<int>{9, 7, 4, 5, 7}));
  EXPECT_EQ(alex99.fc_weight, (std::vector<int>{9, 8, 8}));

  const auto& goog = profile_for("googlenet", AccuracyTarget::k100);
  EXPECT_EQ(goog.conv_act.size(), 11u);
  EXPECT_EQ(goog.fc_weight, (std::vector<int>{7}));

  const auto& nin = profile_for("nin", AccuracyTarget::k99);
  EXPECT_EQ(nin.conv_weight, 10);
  EXPECT_TRUE(nin.fc_weight.empty());

  const auto& vgg19 = profile_for("vgg19", AccuracyTarget::k100);
  EXPECT_EQ(vgg19.conv_act.size(), 16u);
  EXPECT_EQ(vgg19.conv_act.front(), 12);
  EXPECT_EQ(vgg19.conv_act.back(), 13);
}

TEST(Profiles, PrecisionsAreInRange) {
  for (const std::string& net : nn::zoo::paper_networks()) {
    for (const auto t : {AccuracyTarget::k100, AccuracyTarget::k99}) {
      const auto& p = profile_for(net, t);
      for (const int a : p.conv_act) {
        EXPECT_GE(a, 4);
        EXPECT_LE(a, 13);
      }
      EXPECT_GE(p.conv_weight, 10);
      EXPECT_LE(p.conv_weight, 12);
      for (const int w : p.fc_weight) {
        EXPECT_GE(w, 7);
        EXPECT_LE(w, 10);
      }
      EXPECT_GE(p.dynamic_act_trim, 0.0);
      EXPECT_LT(p.dynamic_act_trim, 4.0);
    }
  }
}

TEST(Profiles, The99ProfileIsNoWiderOverall) {
  // Note: the published Table 1 contains a few individual layers whose 99%
  // precision exceeds the 100% one by a bit (profiling noise in the paper,
  // e.g. GoogLeNet layer 7 and VGGM layer 2) — so the invariant holds per
  // layer only up to +1 bit, and strictly for the totals.
  for (const std::string& net : nn::zoo::paper_networks()) {
    const auto& p100 = profile_for(net, AccuracyTarget::k100);
    const auto& p99 = profile_for(net, AccuracyTarget::k99);
    ASSERT_EQ(p100.conv_act.size(), p99.conv_act.size()) << net;
    int sum100 = 0;
    int sum99 = 0;
    for (std::size_t i = 0; i < p100.conv_act.size(); ++i) {
      EXPECT_LE(p99.conv_act[i], p100.conv_act[i] + 1) << net << " layer " << i;
      sum100 += p100.conv_act[i];
      sum99 += p99.conv_act[i];
    }
    EXPECT_LE(sum99, sum100) << net;
    EXPECT_LE(p99.conv_weight, p100.conv_weight) << net;
    for (std::size_t i = 0; i < p100.fc_weight.size(); ++i) {
      EXPECT_LE(p99.fc_weight[i], p100.fc_weight[i]) << net;
    }
  }
}

TEST(Profiles, UnknownNetworkThrows) {
  EXPECT_THROW((void)profile_for("lenet", AccuracyTarget::k100), ConfigError);
  EXPECT_THROW((void)effective_weight_precisions("lenet"), ConfigError);
}

TEST(Table3, EffectivePrecisionsBelowProfile) {
  for (const std::string& net : nn::zoo::paper_networks()) {
    const auto& eff = effective_weight_precisions(net);
    const auto& p = profile_for(net, AccuracyTarget::k100);
    EXPECT_EQ(eff.size(), p.conv_act.size()) << net;
    for (const double e : eff) {
      EXPECT_GT(e, 4.0) << net;
      EXPECT_LT(e, static_cast<double>(p.conv_weight)) << net;
    }
  }
}

TEST(ApplyProfile, StampsConvAndFcLayers) {
  nn::Network net = nn::zoo::make_alexnet();
  apply_profile(net, profile_for("alexnet", AccuracyTarget::k100));
  const auto convs = net.conv_indices();
  EXPECT_EQ(net.layer(convs[0]).act_precision, 9);
  EXPECT_EQ(net.layer(convs[2]).act_precision, 5);
  EXPECT_EQ(net.layer(convs[0]).weight_precision, 11);
  const auto fcs = net.fc_indices();
  EXPECT_EQ(net.layer(fcs[0]).weight_precision, 10);
  EXPECT_EQ(net.layer(fcs[2]).weight_precision, 9);
  // FCLs stream full-width activations.
  EXPECT_EQ(net.layer(fcs[0]).act_precision, 16);
}

TEST(ApplyProfile, GoogLeNetGroupsShareProfileEntries) {
  nn::Network net = nn::zoo::make_googlenet();
  apply_profile(net, profile_for("googlenet", AccuracyTarget::k100));
  // All six convs of inception_3a (group 2) share the entry value 10.
  int count = 0;
  for (const auto& l : net.layers()) {
    if (l.kind == nn::LayerKind::kConv && l.precision_group == 2) {
      EXPECT_EQ(l.act_precision, 10);
      ++count;
    }
  }
  EXPECT_EQ(count, 6);
}

TEST(ToString, Targets) {
  EXPECT_EQ(to_string(AccuracyTarget::k100), "100%");
  EXPECT_EQ(to_string(AccuracyTarget::k99), "99%");
}

}  // namespace
}  // namespace loom::quant
