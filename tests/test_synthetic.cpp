#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/synthetic.hpp"

namespace loom::nn {
namespace {

TEST(SyntheticSource, Deterministic) {
  SyntheticSpec spec{.precision = 8, .alpha = 2.0, .is_signed = true};
  const SyntheticSource a(1, 2, spec);
  const SyntheticSource b(1, 2, spec);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(SyntheticSource, RespectsUnsignedPrecision) {
  SyntheticSpec spec{.precision = 6, .alpha = 1.0, .is_signed = false};
  const SyntheticSource src(3, 0, spec);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const Value v = src.at(i);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 63);
  }
}

TEST(SyntheticSource, RespectsSignedPrecision) {
  SyntheticSpec spec{.precision = 7, .alpha = 1.0, .is_signed = true};
  const SyntheticSource src(3, 1, spec);
  bool saw_negative = false;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const Value v = src.at(i);
    ASSERT_LE(needed_bits_signed(v), 7);
    saw_negative |= v < 0;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(SyntheticSource, AttainsFullPrecisionWithHighProbability) {
  SyntheticSpec spec{.precision = 8, .alpha = 1.0, .is_signed = false};
  const SyntheticSource src(5, 0, spec);
  int max_bits = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    max_bits = std::max(max_bits,
                        needed_bits_unsigned(static_cast<std::uint16_t>(src.at(i))));
  }
  EXPECT_EQ(max_bits, 8);
}

TEST(SyntheticSource, ZeroFractionProducesZeros) {
  SyntheticSpec spec{.precision = 8, .alpha = 1.0, .is_signed = false,
                     .zero_fraction = 0.5};
  const SyntheticSource src(7, 0, spec);
  int zeros = 0;
  constexpr int kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (src.at(i) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / kN, 0.5, 0.03);
}

TEST(SyntheticSource, LargerAlphaConcentratesTowardZero) {
  SyntheticSpec lo{.precision = 10, .alpha = 1.0, .is_signed = false};
  SyntheticSpec hi{.precision = 10, .alpha = 50.0, .is_signed = false};
  const SyntheticSource a(9, 0, lo);
  const SyntheticSource b(9, 0, hi);
  double mean_a = 0.0, mean_b = 0.0;
  constexpr int kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    mean_a += a.at(i);
    mean_b += b.at(i);
  }
  EXPECT_GT(mean_a / kN, 10.0 * mean_b / kN);
}

TEST(SyntheticSource, InvalidSpecThrows) {
  SyntheticSpec bad{.precision = 0};
  EXPECT_THROW(SyntheticSource(1, 1, bad), ContractViolation);
  SyntheticSpec bad_alpha{.precision = 4, .alpha = 0.5};
  EXPECT_THROW(SyntheticSource(1, 1, bad_alpha), ContractViolation);
}

TEST(MakeActivationTensor, MatchesSourceValues) {
  SyntheticSpec spec{.precision = 8, .alpha = 2.0, .is_signed = false};
  const Tensor t = make_activation_tensor(Shape3{2, 3, 4}, spec, 11, 5);
  const SyntheticSource src(11, 5, spec);
  EXPECT_EQ(t.elements(), 24);
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    EXPECT_EQ(t.flat(i), src.at(static_cast<std::uint64_t>(i)));
  }
}

TEST(MakeWeightTensor, FlatAndDeterministic) {
  SyntheticSpec spec{.precision = 9, .alpha = 3.0, .is_signed = true};
  const Tensor a = make_weight_tensor(100, spec, 13, 7);
  const Tensor b = make_weight_tensor(100, spec, 13, 7);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(Streams, ActAndWeightStreamsDiffer) {
  EXPECT_NE(activation_stream(3), weight_stream(3));
  EXPECT_NE(activation_stream(3), activation_stream(4));
}

}  // namespace
}  // namespace loom::nn
