#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/layer.hpp"

namespace loom::nn {
namespace {

TEST(ConvOutExtent, FloorAndCeilModes) {
  // (54 - 3) / 2 + 1: floor = 26, ceil = 27 (Caffe-style).
  EXPECT_EQ(conv_out_extent(54, 3, 2, 0, false), 26);
  EXPECT_EQ(conv_out_extent(54, 3, 2, 0, true), 27);
  EXPECT_EQ(conv_out_extent(224, 11, 4, 0, false), 54);
  EXPECT_EQ(conv_out_extent(227, 11, 4, 0, false), 55);
}

TEST(MakeConv, AlexNetConv1Geometry) {
  const Layer l = make_conv("conv1", Shape3{3, 227, 227}, 96, 11, 4, 0);
  EXPECT_EQ(l.out.c, 96);
  EXPECT_EQ(l.out.h, 55);
  EXPECT_EQ(l.out.w, 55);
  EXPECT_EQ(l.weight_count(), 96 * 3 * 11 * 11);
  EXPECT_EQ(l.macs(), 55LL * 55 * 96 * 3 * 11 * 11);  // 105,415,200
  EXPECT_EQ(l.macs(), 105415200);
  EXPECT_EQ(l.windows(), 55 * 55);
  EXPECT_EQ(l.inner_length(), 363);
}

TEST(MakeConv, GroupedConvolutionSplitsChannels) {
  // AlexNet conv2: 256 filters over 96 channels in 2 groups.
  const Layer l = make_conv("conv2", Shape3{96, 27, 27}, 256, 5, 1, 2, 2);
  EXPECT_EQ(l.group_in_channels(), 48);
  EXPECT_EQ(l.group_out_channels(), 128);
  EXPECT_EQ(l.inner_length(), 48 * 25);
  EXPECT_EQ(l.macs(), 27LL * 27 * 256 * 48 * 25);  // 223,948,800
  EXPECT_EQ(l.weight_count(), 256LL * 48 * 25);
}

TEST(MakeConv, PaddingPreservesExtent) {
  const Layer l = make_conv("c", Shape3{8, 13, 13}, 16, 3, 1, 1);
  EXPECT_EQ(l.out.h, 13);
  EXPECT_EQ(l.out.w, 13);
}

TEST(MakeConv, InvalidGroupsThrow) {
  EXPECT_THROW(make_conv("c", Shape3{3, 8, 8}, 4, 3, 1, 0, 2),
               ContractViolation);  // 3 % 2 != 0
}

TEST(MakeFc, FlattensInput) {
  const Layer l = make_fc("fc6", Shape3{256, 6, 6}, 4096);
  EXPECT_EQ(l.in.elements(), 9216);
  EXPECT_EQ(l.out.c, 4096);
  EXPECT_EQ(l.macs(), 9216LL * 4096);
  EXPECT_EQ(l.weight_count(), 9216LL * 4096);
  EXPECT_EQ(l.windows(), 1);
  EXPECT_EQ(l.inner_length(), 9216);
}

TEST(MakePool, CeilModeMatchesCaffe) {
  const Layer l = make_pool("pool", Shape3{96, 54, 54}, PoolKind::kMax, 3, 2);
  EXPECT_EQ(l.out.h, 27);
  EXPECT_EQ(l.out.c, 96);
  EXPECT_EQ(l.macs(), 0);
  EXPECT_EQ(l.weight_count(), 0);
  EXPECT_FALSE(l.has_weights());
}

TEST(MakePool, AveragePoolKind) {
  const Layer l = make_pool("gap", Shape3{1000, 6, 6}, PoolKind::kAvg, 6, 1,
                            0, false);
  EXPECT_EQ(l.out.h, 1);
  EXPECT_EQ(l.pool, PoolKind::kAvg);
}

TEST(Layer, DefaultPrecisionsAreBaseline) {
  const Layer l = make_conv("c", Shape3{3, 8, 8}, 4, 3, 1, 0);
  EXPECT_EQ(l.act_precision, 16);
  EXPECT_EQ(l.weight_precision, 16);
  EXPECT_EQ(l.precision_group, -1);
}

}  // namespace
}  // namespace loom::nn
