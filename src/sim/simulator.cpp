#include "sim/simulator.hpp"

#include "sim/dpnn_sim.hpp"
#include "sim/loom_sim.hpp"
#include "sim/stripes_sim.hpp"

namespace loom::sim {

std::unique_ptr<Simulator> make_dpnn_simulator(const arch::DpnnConfig& cfg,
                                               const SimOptions& opts) {
  return std::make_unique<DpnnSimulator>(cfg, opts);
}

std::unique_ptr<Simulator> make_loom_simulator(const arch::LoomConfig& cfg,
                                               const SimOptions& opts) {
  return std::make_unique<LoomSimulator>(cfg, opts);
}

std::unique_ptr<Simulator> make_stripes_simulator(const arch::StripesConfig& cfg,
                                                  const SimOptions& opts) {
  return std::make_unique<StripesSimulator>(cfg, opts);
}

}  // namespace loom::sim
