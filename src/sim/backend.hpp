// Functional backend registry + per-layer autotuner.
//
// A FunctionalBackend is one interchangeable kernel implementation of the
// functional engines' layer math: exact integer conv/FC accumulators plus
// the analytic streaming statistics (BitsliceEngine::ConvStats) the
// dispatcher-driven scalar grid would report. Every backend is held to the
// same contract — byte-identical accumulators AND byte-identical stats —
// so FunctionalLoomEngine can swap kernels per layer without any observable
// difference beyond wall-clock time (pinned by
// tests/test_backend_differential.cpp).
//
// Registered built-ins:
//   scalar     — the arch::Sip oracle, bit-by-bit through a dispatcher
//                (ground truth; never an autotuner candidate)
//   bitslice   — 64 SIP columns per machine word (sim/bitslice_engine.hpp)
//   lut        — T-MAC-style per-activation-group partial-sum LUTs
//                (sim/lut_engine.hpp), L1-tiled table working set
//   lut-outer  — the LUT kernel with all tables built up front (one big
//                working set; wins when the whole slab's tables fit cache)
//
// Backend selection (resolve_backend_name): FunctionalOptions::force_scalar
// or LOOM_FUNCTIONAL_SCALAR pick "scalar"; otherwise an explicit
// FunctionalOptions::backend, then the LOOM_FUNCTIONAL_BACKEND environment
// variable, then "auto". "auto" hands each (layer geometry, precision,
// batch) cell to the BackendAutotuner, which samples every tunable backend
// once on the real layer run, memoizes the fastest, and exposes its
// decisions; LOOM_AUTOTUNE_PIN=<name> pins every cell for reproducible
// runs. A named backend that cannot pack the grid falls back to "scalar",
// matching the historical cols>64 behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "sim/bitslice_engine.hpp"

namespace loom::sim {

/// The grid shape a backend instance is built for (mirrors the engine's
/// FunctionalOptions rows/cols/lanes/jobs).
struct BackendContext {
  int rows = 16;
  int cols = 16;
  int lanes = 16;
  int jobs = 1;
};

/// One functional kernel. Conv returns the analytic streaming stats; FC
/// reports none (the FC cycle model is analytic in the engine). Instances
/// are engine-confined: calls need no internal synchronization beyond what
/// the implementation's own (group, slab) fan-out does.
class FunctionalBackend {
 public:
  virtual ~FunctionalBackend() = default;

  virtual BitsliceEngine::ConvStats run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
      const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
      std::span<nn::WideTensor* const> wides) = 0;

  virtual void run_fc(const nn::Layer& layer, const nn::Tensor& input,
                      const nn::Tensor& weights, int weight_precision,
                      nn::WideTensor& wide) = 0;

  virtual void run_fc_batch(const nn::Layer& layer,
                            std::span<const nn::Tensor* const> inputs,
                            const nn::Tensor& weights, int weight_precision,
                            std::span<nn::WideTensor* const> wides) = 0;
};

/// Registry entry: plain function pointers so registration is a static
/// data operation (no captured state to synchronize).
struct BackendInfo {
  std::string name;
  /// Autotuner candidate? The scalar oracle is registered non-tunable: it
  /// exists for ground truth and fallback, and is never competitive.
  bool tunable = false;
  bool (*supports)(const BackendContext&) = nullptr;
  std::unique_ptr<FunctionalBackend> (*make)(const BackendContext&) = nullptr;
};

/// Process-wide named-backend table. Built-ins self-register on first
/// access; tests may register additional backends (by a fresh name, or
/// re-registering an existing one replaces it) and they automatically gain
/// differential-test coverage.
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  void register_backend(BackendInfo info);
  /// nullptr when `name` is not registered.
  [[nodiscard]] const BackendInfo* find(std::string_view name) const;
  /// Every registered name, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Tunable backends whose supports() accepts `ctx`, registration order —
  /// the autotuner candidate list (deterministic sampling order).
  [[nodiscard]] std::vector<std::string> tunable_names(
      const BackendContext& ctx) const;

 private:
  BackendRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton state, never destroyed
};

/// Resolve the backend an engine will run: "scalar", "auto", or a concrete
/// registered name. `requested` is FunctionalOptions::backend ("" = defer
/// to LOOM_FUNCTIONAL_BACKEND, then "auto"). Precedence: force_scalar /
/// LOOM_FUNCTIONAL_SCALAR first (preserved escape hatch), explicit request
/// next, environment last. Unknown names throw ConfigError; a known name
/// (or "auto" with no viable candidate) that cannot pack `ctx` resolves to
/// "scalar".
[[nodiscard]] std::string resolve_backend_name(std::string_view requested,
                                               bool force_scalar,
                                               const BackendContext& ctx);

/// One autotuner memoization cell: a layer's geometry + streamed
/// precisions + batch + grid + thread fan-out. Everything that changes
/// which kernel wins (jobs matters: the kernels scale differently with
/// stripe count, and a persisted winner must not leak across fan-outs).
struct TuneKey {
  int kind = 0;  ///< 0 = conv, 1 = fc
  std::int64_t in_c = 0, in_h = 0, in_w = 0, out_c = 0;
  int kernel_h = 0, kernel_w = 0, stride = 1, pad = 0, groups = 1;
  int pa = 0, pw = 0;
  bool act_signed = false;
  bool dynamic = false;
  int batch = 1;
  int rows = 0, cols = 0, lanes = 0, jobs = 0;

  friend bool operator==(const TuneKey&, const TuneKey&) = default;
  friend auto operator<=>(const TuneKey&, const TuneKey&) = default;
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] TuneKey conv_tune_key(const nn::Layer& layer,
                                    const BitsliceEngine::SliceSpec& spec,
                                    int batch, const BackendContext& ctx);
[[nodiscard]] TuneKey fc_tune_key(const nn::Layer& layer, int weight_precision,
                                  int batch, const BackendContext& ctx);

/// Thread-safe process-wide winner memo. choose() hands back the memoized
/// winner, or — while a cell is still being explored — the next unsampled
/// candidate so the timing piggybacks on a real layer run (every candidate
/// computes identical bytes, so exploration is free of rework). record()
/// feeds the measured wall clock back; once every candidate has a sample
/// the argmin wins (first-registered wins ties). LOOM_AUTOTUNE_PIN=<name>
/// short-circuits every cell whose candidate list contains <name> — the
/// reproducibility switch for tests and CI. Timing can be overridden with
/// an injected function for deterministic autotuner tests.
class BackendAutotuner {
 public:
  static BackendAutotuner& instance();

  [[nodiscard]] std::string choose(const TuneKey& key,
                                   std::span<const std::string> candidates);
  void record(const TuneKey& key, std::string_view backend, std::uint64_t ns);

  struct Sample {
    std::string backend;
    std::uint64_t ns = 0;
  };
  struct Decision {
    TuneKey key;
    std::string winner;  ///< empty while the cell is still exploring
    bool pinned = false;
    std::vector<Sample> samples;
  };
  /// Snapshot of every cell, deterministic (key-sorted) order.
  [[nodiscard]] std::vector<Decision> decisions() const;

  /// Install decided cells parsed from a persistent cache
  /// (sim/autotune_cache.hpp): each becomes a memoized winner, so choose()
  /// answers immediately — no per-process re-measurement. Entries without a
  /// winner, whose winner is not among their samples, or whose key already
  /// has a cell are skipped; when LOOM_AUTOTUNE_PIN is set nothing installs
  /// (the pin outranks any cache). Returns the number installed.
  std::size_t install(std::span<const Decision> decisions);

  /// Cross-process memoization counters. hits/misses are per choose() call:
  /// a hit means a cache-installed winner answered; explore_records counts
  /// record() calls that fed a still-undecided cell (zero on a process that
  /// started from a warm cache). Process-wide, like the autotuner itself.
  struct CacheStats {
    std::uint64_t loaded_cells = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t explore_records = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Deterministic timing for tests: when set, choose() samples every
  /// candidate through `fn` immediately and decides the cell. Null resets
  /// to wall-clock timing.
  void set_timing_override_for_test(
      std::function<std::uint64_t(const TuneKey&, const std::string&)> fn);
  /// Drop all cells and re-read LOOM_AUTOTUNE_PIN (tests mutate the
  /// environment between cases).
  void reset_for_test();

 private:
  BackendAutotuner();
  struct Impl;
  Impl* impl_;  // leaked singleton state, never destroyed
};

}  // namespace loom::sim
