// Functional DPNN engine: the bit-parallel twin of FunctionalLoomEngine.
// Models the IP units (16 MACs + adder tree per filter) over real layers,
// producing exact outputs and the wall-clock cycles of the baseline's
// window-sequential schedule — the ground truth the DPNN cycle model is
// cross-validated against.
//
// Values are computed by a registry backend (sim/backend.hpp) at full
// signed 16-bit precision for both operands (bit-identical to driving
// arch::IpUnit cycle by cycle); cycle counts follow the exact chunk
// schedule the scalar loop walks. Set DpnnFunctionalOptions::force_scalar
// or LOOM_FUNCTIONAL_SCALAR to drive the scalar IP units instead; the
// DpnnFunctionalOptions::backend / LOOM_FUNCTIONAL_BACKEND selection and
// the "auto" autotuner work exactly as on the Loom engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/ip_unit.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/tensor.hpp"
#include "sim/backend.hpp"

namespace loom::sim {

struct DpnnFunctionalOptions {
  int act_lanes = 16;
  int filters = 8;
  bool relu = true;
  /// Worker threads for the word-parallel backends (0 = all, 1 = serial).
  int jobs = 0;
  /// Force the scalar arch::IpUnit oracle (also: LOOM_FUNCTIONAL_SCALAR=1).
  bool force_scalar = false;
  /// Kernel selection, as FunctionalOptions::backend: "" defers to
  /// LOOM_FUNCTIONAL_BACKEND, then "auto". "scalar" selects the IpUnit
  /// oracle (DPNN's own scalar semantics, not the registry's SIP grid).
  std::string backend = {};
};

struct DpnnFunctionalRun {
  std::string name;
  nn::Tensor output;
  nn::WideTensor wide;
  std::uint64_t cycles = 0;
  int requant_shift = 0;
};

class FunctionalDpnnEngine {
 public:
  explicit FunctionalDpnnEngine(DpnnFunctionalOptions opts = {});

  [[nodiscard]] DpnnFunctionalRun run_conv(const nn::Layer& layer,
                                           const nn::Tensor& input,
                                           const nn::Tensor& weights,
                                           int out_bits);
  [[nodiscard]] DpnnFunctionalRun run_fc(const nn::Layer& layer,
                                         const nn::Tensor& input,
                                         const nn::Tensor& weights,
                                         int out_bits);

  /// Batched variants: one coalesced word-parallel pass over N same-shape
  /// requests (the scalar oracle falls back to N solo runs). Each returned
  /// run is byte-identical to the corresponding solo run — the DPNN
  /// baseline's window-sequential schedule is data-independent, so even the
  /// per-request cycle counts match solo execution exactly.
  [[nodiscard]] std::vector<DpnnFunctionalRun> run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);
  [[nodiscard]] std::vector<DpnnFunctionalRun> run_fc_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);

  [[nodiscard]] const DpnnFunctionalOptions& options() const noexcept {
    return opts_;
  }
  /// "scalar", "auto", or a concrete registered backend name; resolved at
  /// construction like FunctionalLoomEngine (force_scalar, the environment
  /// hatches, or an unpackable configuration select the scalar oracle).
  [[nodiscard]] const std::string& backend_name() const noexcept {
    return resolved_;
  }

 private:
  FunctionalBackend& backend_for(const std::string& name);
  /// Run one conv/fc batch on the selected kernel (never "scalar" — callers
  /// branch to the IpUnit loops first); under "auto" consults the autotuner.
  void dispatch_conv(const nn::Layer& layer,
                     std::span<const nn::Tensor* const> inputs,
                     const nn::Tensor& weights,
                     std::span<nn::WideTensor* const> wides);
  void dispatch_fc(const nn::Layer& layer,
                   std::span<const nn::Tensor* const> inputs,
                   const nn::Tensor& weights,
                   std::span<nn::WideTensor* const> wides);

  DpnnFunctionalOptions opts_;
  BackendContext ctx_;
  std::string resolved_;
  std::vector<std::string> candidates_;  ///< tuner candidates under "auto"
  std::map<std::string, std::unique_ptr<FunctionalBackend>> backends_;
};

}  // namespace loom::sim
