// Functional DPNN engine: the bit-parallel twin of FunctionalLoomEngine.
// Drives the IP units (16 MACs + adder tree per filter) over real layers,
// producing exact outputs and the wall-clock cycles of the baseline's
// window-sequential schedule — the ground truth the DPNN cycle model is
// cross-validated against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/ip_unit.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/tensor.hpp"

namespace loom::sim {

struct DpnnFunctionalOptions {
  int act_lanes = 16;
  int filters = 8;
  bool relu = true;
};

struct DpnnFunctionalRun {
  std::string name;
  nn::Tensor output;
  nn::WideTensor wide;
  std::uint64_t cycles = 0;
  int requant_shift = 0;
};

class FunctionalDpnnEngine {
 public:
  explicit FunctionalDpnnEngine(DpnnFunctionalOptions opts = {});

  [[nodiscard]] DpnnFunctionalRun run_conv(const nn::Layer& layer,
                                           const nn::Tensor& input,
                                           const nn::Tensor& weights,
                                           int out_bits);
  [[nodiscard]] DpnnFunctionalRun run_fc(const nn::Layer& layer,
                                         const nn::Tensor& input,
                                         const nn::Tensor& weights,
                                         int out_bits);

  [[nodiscard]] const DpnnFunctionalOptions& options() const noexcept {
    return opts_;
  }

 private:
  DpnnFunctionalOptions opts_;
};

}  // namespace loom::sim
