// Functional DPNN engine: the bit-parallel twin of FunctionalLoomEngine.
// Models the IP units (16 MACs + adder tree per filter) over real layers,
// producing exact outputs and the wall-clock cycles of the baseline's
// window-sequential schedule — the ground truth the DPNN cycle model is
// cross-validated against.
//
// Values are computed by the bit-sliced engine at full signed 16-bit
// precision for both operands (bit-identical to driving arch::IpUnit cycle
// by cycle); cycle counts follow the exact chunk schedule the scalar loop
// walks. Set DpnnFunctionalOptions::force_scalar or LOOM_FUNCTIONAL_SCALAR
// to drive the scalar IP units instead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/ip_unit.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/tensor.hpp"

namespace loom::sim {

struct DpnnFunctionalOptions {
  int act_lanes = 16;
  int filters = 8;
  bool relu = true;
  /// Worker threads for the bit-sliced backend (0 = all, 1 = serial).
  int jobs = 0;
  /// Force the scalar arch::IpUnit oracle (also: LOOM_FUNCTIONAL_SCALAR=1).
  bool force_scalar = false;
};

struct DpnnFunctionalRun {
  std::string name;
  nn::Tensor output;
  nn::WideTensor wide;
  std::uint64_t cycles = 0;
  int requant_shift = 0;
};

class FunctionalDpnnEngine {
 public:
  explicit FunctionalDpnnEngine(DpnnFunctionalOptions opts = {});

  [[nodiscard]] DpnnFunctionalRun run_conv(const nn::Layer& layer,
                                           const nn::Tensor& input,
                                           const nn::Tensor& weights,
                                           int out_bits);
  [[nodiscard]] DpnnFunctionalRun run_fc(const nn::Layer& layer,
                                         const nn::Tensor& input,
                                         const nn::Tensor& weights,
                                         int out_bits);

  /// Batched variants: one coalesced bit-sliced pass over N same-shape
  /// requests (the scalar oracle falls back to N solo runs). Each returned
  /// run is byte-identical to the corresponding solo run — the DPNN
  /// baseline's window-sequential schedule is data-independent, so even the
  /// per-request cycle counts match solo execution exactly.
  [[nodiscard]] std::vector<DpnnFunctionalRun> run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);
  [[nodiscard]] std::vector<DpnnFunctionalRun> run_fc_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);

  [[nodiscard]] const DpnnFunctionalOptions& options() const noexcept {
    return opts_;
  }

 private:
  DpnnFunctionalOptions opts_;
  /// Decided at construction, like FunctionalLoomEngine: force_scalar,
  /// the LOOM_FUNCTIONAL_SCALAR environment hatch, or an unpackable
  /// configuration select the scalar IpUnit oracle.
  bool use_bitslice_ = false;
};

}  // namespace loom::sim
