// Cycle model of Loom (§3.2, Figure 2b): rows() x cols() SIPs; both
// operands bit-serial.
//
// Convolutional layers: rows <- filters, cols <- windows. Each chunk (one
// window block x one 16-activation input chunk) costs ceil(Pa/bpc) x Pw
// cycles, where Pa is the per-group precision the dynamic detector finds in
// the actual data and Pw is the layer weight precision (or, in §4.6 mode,
// the measured mean effective per-group precision under the paper's
// linear-scaling estimate).
//
// Fully-connected layers: one output per SIP (rows x cols concurrent),
// column-staggered weight-bit loading, each weight bit reused over the full
// 16 activation bits (16/bpc cycles), so FCL time scales with Pw only.
// SIP cascading slices outputs across `ways` SIPs when the layer has fewer
// outputs than SIPs (§3.2 "Processing Layers with Few Outputs").
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace loom::sim {

/// Cascade slicing of a fully-connected layer: the `ways`, block and round
/// counts minimizing cycles when an output's inner dimension is split over
/// `ways` adjacent SIPs at a reduction cost of ways-1 cycles per block
/// (§3.2 "Processing Layers with Few Outputs"). Shared by the analytic
/// model (LoomSimulator::simulate_fc) and the functional engine
/// (FunctionalLoomEngine::run_fc) so their FC cycle counts cannot drift.
struct FcCascadePlan {
  std::int64_t ways = 1;
  std::int64_t blocks = 0;   ///< output blocks (fb)
  std::int64_t rounds = 0;   ///< input chunks per block at the chosen ways
  double cycles = 0.0;       ///< blocks * (rounds * act_passes * pw + ways-1)
};

[[nodiscard]] FcCascadePlan plan_fc_cascade(std::int64_t rows,
                                            std::int64_t cols,
                                            std::int64_t lanes,
                                            std::int64_t out_channels,
                                            std::int64_t in_elements,
                                            double weight_precision,
                                            double act_passes, bool cascading);

class LoomSimulator final : public Simulator {
 public:
  LoomSimulator(const arch::LoomConfig& cfg, const SimOptions& opts);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] RunResult run(NetworkWorkload& workload) override;

  /// Simulate one layer against a run-wide timing core (the shared tile
  /// scheduler + memory timeline; see sim/engine.hpp).
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           engine::TimingCore& core) const;
  /// Convenience overload for single-layer callers: a transient per-layer
  /// timeline (no cross-layer prefetch), drain tail included.
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           mem::MemorySystem& mem) const;

 private:
  [[nodiscard]] LayerResult simulate_conv(LayerWorkload& lw) const;
  [[nodiscard]] LayerResult simulate_fc(LayerWorkload& lw) const;
  void apply_memory(LayerResult& r, LayerWorkload& lw,
                    engine::TimingCore& core) const;
  /// Weight precision (possibly fractional) used for timing this layer.
  [[nodiscard]] double timing_weight_precision(LayerWorkload& lw) const;

  arch::LoomConfig cfg_;
  SimOptions opts_;
};

}  // namespace loom::sim
