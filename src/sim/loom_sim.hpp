// Cycle model of Loom (§3.2, Figure 2b): rows() x cols() SIPs; both
// operands bit-serial.
//
// Convolutional layers: rows <- filters, cols <- windows. Each chunk (one
// window block x one 16-activation input chunk) costs ceil(Pa/bpc) x Pw
// cycles, where Pa is the per-group precision the dynamic detector finds in
// the actual data and Pw is the layer weight precision (or, in §4.6 mode,
// the measured mean effective per-group precision under the paper's
// linear-scaling estimate).
//
// Fully-connected layers: one output per SIP (rows x cols concurrent),
// column-staggered weight-bit loading, each weight bit reused over the full
// 16 activation bits (16/bpc cycles), so FCL time scales with Pw only.
// SIP cascading slices outputs across `ways` SIPs when the layer has fewer
// outputs than SIPs (§3.2 "Processing Layers with Few Outputs").
#pragma once

#include "sim/simulator.hpp"

namespace loom::sim {

class LoomSimulator final : public Simulator {
 public:
  LoomSimulator(const arch::LoomConfig& cfg, const SimOptions& opts);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] RunResult run(NetworkWorkload& workload) override;

  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           mem::MemorySystem& mem) const;

 private:
  [[nodiscard]] LayerResult simulate_conv(LayerWorkload& lw) const;
  [[nodiscard]] LayerResult simulate_fc(LayerWorkload& lw) const;
  void add_offchip(LayerResult& r, const nn::Layer& layer,
                   mem::MemorySystem& mem) const;
  /// Weight precision (possibly fractional) used for timing this layer.
  [[nodiscard]] double timing_weight_precision(LayerWorkload& lw) const;

  arch::LoomConfig cfg_;
  SimOptions opts_;
};

}  // namespace loom::sim
