// LUT functional engine: T-MAC-style table-lookup matmul (see SNIPPETS.md,
// MiCo-Lib qmatmul.c). Activations are cut into groups of 8; each group
// precomputes the 256-entry table of all partial sums
//
//     lut[m] = sum_{j in m} a[j]          (m = an 8-bit weight-slice mask)
//
// with the classic doubling fill (one add per entry), once per (window,
// group) and *outside* the output-feature loop — so for Co output features
// the build cost amortizes to 256/Co adds per group. A weight's Pw-bit
// two's-complement row decomposes into shifted 1-bit slices:
//
//     w = u - msb * 2^Pw,  u = raw & (2^Pw - 1)
//  => sum_j a_j w_j = sum_{b<Pw-1} lut[slice_b] << b  -  lut[slice_{Pw-1}] << (Pw-1)
//
// so the hot loop is Pw table lookups per (output, group) — zero multiplies,
// and the cost is *independent of the activation precision* (the bit-sliced
// engine's cost grows with every streamed activation plane). That makes the
// LUT kernel the fast path for high-Pa / low-Pw layers, which the backend
// autotuner discovers empirically.
//
// The OR-plane detected group precisions are reused two ways:
//   - dead groups (all-zero activations) are skipped entirely via a live
//     list (their table would be identically zero);
//   - tables are built in int16 when the group's partial sums provably fit
//     (detected magnitude <= 12 bits), halving the table bytes the hot
//     loop touches.
//
// Contract: byte-identical exact accumulators AND byte-identical ConvStats
// to BitsliceEngine / the scalar oracle — the stats pass replicates the
// dispatcher's per-(column-group, chunk) accounting with the same (group,
// slab) task striping, so even the floating-point summation order of
// streamed_pa matches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/cpuid.hpp"
#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "sim/bitslice_engine.hpp"

namespace loom::sim {

/// The engine's two hot loops as standalone kernels with an explicit SIMD
/// tier, runtime-dispatched (scalar / AVX2 / AVX-512) behind the shared
/// common/cpuid probe. Exposed so benches and tests can pit tiers against
/// each other directly; the engine itself calls them at common::simd_level().
/// Every tier computes bit-exact identical results — the vector paths are
/// pure integer reassociations of the scalar fill/walk, so the registry-wide
/// byte-identity contract holds under any forced tier.
namespace lut_kernels {

/// Padding contract for the vector paths: dword gathers may *read* (never
/// write) a few bytes past the logical end of a buffer. Table buffers need
/// kLutPadEntries extra entries beyond the last 256-entry table; packed
/// weight-slice buffers need kWeightPadBytes extra bytes.
inline constexpr std::size_t kLutPadEntries = 2;
inline constexpr std::size_t kWeightPadBytes = 4;

/// Doubling fill of one 256-entry partial-sum table from the group's 8
/// activation values: lut[m | 1<<j] = lut[m] + a[j]. The requested tier is
/// clamped to what the hardware supports.
void build_table_i16(common::SimdLevel level, const std::int32_t* a,
                     std::int16_t* lut) noexcept;
void build_table_i32(common::SimdLevel level, const std::int32_t* a,
                     std::int32_t* lut) noexcept;

/// Lookup+accumulate walk over `n` group tables for one output feature:
/// returns sum over t < n of the signed slice decomposition
///   sum_{b<pw-1} lut_t[wb_t[b]] << b  -  lut_t[wb_t[pw-1]] << (pw-1)
/// where lut_t = luts + t*256 and wb_t = wbytes + bidx[t] (bidx holds byte
/// offsets of each group's pw slice bytes — absolute, so callers can walk a
/// live-group subset of a larger packed row without copying).
std::int64_t accumulate_i16(common::SimdLevel level, const std::int16_t* luts,
                            const std::uint8_t* wbytes,
                            const std::int32_t* bidx, std::int64_t n,
                            int pw) noexcept;
std::int64_t accumulate_i32(common::SimdLevel level, const std::int32_t* luts,
                            const std::uint8_t* wbytes,
                            const std::int32_t* bidx, std::int64_t n,
                            int pw) noexcept;

}  // namespace lut_kernels

class LutEngine {
 public:
  struct Options {
    int rows = 16;   ///< SIP rows (cycle accounting only)
    int cols = 16;   ///< dynamic-detection group width (stats accounting)
    int lanes = 16;  ///< products per SIP per cycle (stats accounting)
    int jobs = 1;    ///< (group, slab) fan-out over the shared pool; 0 = all
    /// Conv table tiling: tables live for `group_tile` 8-activation groups
    /// at a time (tile working set = group_tile * 256 entries, sized for
    /// L1). 0 = build every group's table up front (the "outer" variant —
    /// one pass over the weights, larger working set).
    int group_tile = 64;
  };

  using SliceSpec = BitsliceEngine::SliceSpec;
  using ConvStats = BitsliceEngine::ConvStats;

  /// Same packing envelope as the bit-sliced engine (the stats contract
  /// needs cols <= 64 slabs and lanes <= 32 chunks).
  [[nodiscard]] static bool supports(const Options& opts) noexcept {
    return opts.cols >= 1 && opts.cols <= 64 && opts.lanes >= 1 &&
           opts.lanes <= 32 && opts.rows >= 1 && opts.group_tile >= 0;
  }

  explicit LutEngine(Options opts);

  /// Batched convolution, same window-concatenation semantics and stats as
  /// BitsliceEngine::run_conv_batch. Accumulators land in wides[r]
  /// (preallocated, one per input).
  ConvStats run_conv_batch(const nn::Layer& layer,
                           std::span<const nn::Tensor* const> inputs,
                           const nn::Tensor& weights, const SliceSpec& spec,
                           std::span<nn::WideTensor* const> wides);

  /// Fully-connected layer: signed 16-bit activations, `weight_precision`
  /// two's-complement weight planes. Tables build once per request over
  /// the whole input, then every output neuron is Pw lookups per group.
  void run_fc(const nn::Layer& layer, const nn::Tensor& input,
              const nn::Tensor& weights, int weight_precision,
              nn::WideTensor& wide);

  /// Batched FC: per-request runs (each already amortizes its tables over
  /// all output neurons; the bit-sliced engine's request-packed layout is
  /// the better batch kernel, and the autotuner keys on batch size).
  void run_fc_batch(const nn::Layer& layer,
                    std::span<const nn::Tensor* const> inputs,
                    const nn::Tensor& weights, int weight_precision,
                    std::span<nn::WideTensor* const> wides);

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

 private:
  struct Scratch {
    std::vector<std::int32_t> acts;      ///< gathered group values
    std::vector<std::int32_t> live;      ///< live 8-act group indices
    std::vector<std::int32_t> bidx;      ///< live groups' slice byte offsets
    std::vector<std::int32_t> lut32;     ///< tables, wide entries
    std::vector<std::int16_t> lut16;     ///< tables, narrow entries
    std::vector<std::int64_t> acc;       ///< per-output accumulators
    std::vector<std::uint8_t> wpack;     ///< packed weight slices [co][g8][b]
  };

  void conv_slab(const nn::Layer& layer,
                 std::span<const nn::Tensor* const> inputs,
                 const nn::Tensor& weights, const SliceSpec& spec,
                 std::int64_t g, std::int64_t slab,
                 std::span<nn::WideTensor* const> wides,
                 std::span<const std::uint8_t> wpack, Scratch& scratch,
                 ConvStats& stats) const;

  Options opts_;
  std::int64_t slab_windows_;  ///< windows per slab (multiple of cols)
  common::SimdLevel simd_;     ///< effective dispatch tier, probed once
};

}  // namespace loom::sim
