// OR-plane precision engine: single-pass dense precomputation for
// dynamic-precision detection (paper §3.2's per-bit OR trees over 16x16
// activation groups).
//
// The cycle models ask "what precision does the detector find for the
// `cols` windows x `lanes` inner positions processed concurrently?" many
// millions of times per layer. Instead of re-deriving im2col indices (with
// per-value div/mod and padding checks) for every query, ActOrPlanes
// materializes, in one padding-aware pass per conv layer, a dense
// (groups * ic_count) x windows matrix of uint16 OR masks — entry
// (g, ic, w) is the OR of the activation magnitudes window `w` reads at
// inner positions [ic*lanes, (ic+1)*lanes). Any group precision for any
// `cols` then reduces to OR-ing `cols` contiguous entries of one row and a
// leading-one detection, byte-identical to the scattered scan it replaces.
//
// CalibrationPlanes is the SyntheticSource-backed companion used before the
// input tensor exists: it reduces each sampled detection group to the
// maximum uniform draw behind its live activations. The synthetic magnitude
// is monotone in the draw and the OR of a group shares its most significant
// bit with the group maximum, so one raw-RNG pass warm-starts every
// measurement of the calibration bisection — each iteration costs one
// pow per sampled group instead of a fresh 256-value source scan.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "nn/layer.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"

namespace loom::sim {

/// Dense per-layer table of activation OR masks (see file comment). Rows
/// are (conv group, input chunk) pairs; columns are sliding windows.
class ActOrPlanes {
 public:
  /// Captures the conv geometry; `build` fills the table. Conv layers only.
  ActOrPlanes(const nn::Layer& layer, int lanes);

  /// One vectorized padding-aware pass over the input tensor. Interior
  /// spans run as straight-line strided loops; border windows are excluded
  /// by per-(kernel-position, output-row) range arithmetic, so the inner
  /// loop carries no bounds checks. Parallelized across row stripes on the
  /// shared plane pool — rows are disjoint, so the result is byte-identical
  /// regardless of scheduling.
  void build(const nn::Tensor& input);

  [[nodiscard]] std::int64_t windows() const noexcept { return windows_; }
  [[nodiscard]] std::int64_t ic_count() const noexcept { return ic_count_; }

  /// OR mask of the detection group at (conv group g, window block wb,
  /// input chunk ic) with `cols` concurrent windows (clipped at the window
  /// count, matching the hardware's partial tail block).
  [[nodiscard]] std::uint16_t group_or(std::int64_t g, std::int64_t ic,
                                       std::int64_t wb,
                                       int cols) const noexcept {
    const std::uint16_t* r = row_ptr(g, ic);
    const std::int64_t w0 = wb * cols;
    const std::int64_t w1 = std::min(windows_, w0 + cols);
    std::uint16_t ored = 0;
    for (std::int64_t w = w0; w < w1; ++w) ored |= r[w];
    return ored;
  }

  /// Term count of the same detection group: the popcount of its OR mask —
  /// how many essential activation bit-planes a term-serial sequencer that
  /// synchronizes the group at its slowest lane must walk. An all-zero
  /// group still costs one cycle (same convention as needed_bits).
  [[nodiscard]] int group_term_count(std::int64_t g, std::int64_t ic,
                                     std::int64_t wb, int cols) const noexcept {
    return std::max(1, std::popcount(group_or(g, ic, wb, cols)));
  }

 private:
  [[nodiscard]] const std::uint16_t* row_ptr(std::int64_t g,
                                             std::int64_t ic) const noexcept {
    return masks_.data() +
           static_cast<std::size_t>((g * ic_count_ + ic) * windows_);
  }
  void build_row(const Value* input, std::int64_t g, std::int64_t ic,
                 std::uint16_t* row, bool zero_row) const;

  // Geometry, copied out of the layer so the plane is self-contained.
  std::int64_t in_h_, in_w_;
  std::int64_t out_h_, out_w_;
  std::int64_t kernel_h_, kernel_w_;
  std::int64_t stride_, pad_;
  std::int64_t groups_, group_in_channels_;
  std::int64_t inner_, windows_, ic_count_;
  int lanes_;
  std::vector<std::uint16_t> masks_;
};

/// Source-backed reduction used by the group-calibration bisection: one
/// max-uniform-draw entry per sampled detection group (see file comment).
/// Sampling replicates the strided enumeration of the scan it replaces, so
/// the measured means are byte-identical.
class CalibrationPlanes {
 public:
  /// Streams the raw draws behind every sampled group of `layer` once.
  /// `draws` must share seed/stream/zero_fraction with the sources later
  /// passed to `mean_precision` (alpha may differ — draws ignore it).
  CalibrationPlanes(const nn::Layer& layer, int lanes, int cols,
                    int max_groups, const nn::SyntheticSource& draws);

  /// Mean detected precision over the sampled groups under `src`'s spec,
  /// clipped per group to `act_precision`.
  [[nodiscard]] double mean_precision(const nn::SyntheticSource& src,
                                      int act_precision) const;

 private:
  std::vector<double> group_max_draw_;  ///< -1 when a group has no live value
};

}  // namespace loom::sim
