// Simulator interface and factory. Each simulator turns a NetworkWorkload
// into a RunResult using its architecture's cycle model; all share the
// off-chip modeling options.
#pragma once

#include <memory>
#include <string>

#include "arch/config.hpp"
#include "mem/hierarchy.hpp"
#include "sim/result.hpp"
#include "sim/workload.hpp"

namespace loom::sim {

/// Adder tree (4 levels) + AC1/AC2 stages, charged once per layer by the
/// bit-serial analytic models (Loom and Stripes; DPNN's shallower pipeline
/// keeps its own constant). The functional engines report raw grid cycles
/// without it (tests compare `functional + kPipelineFill == analytic`).
inline constexpr std::uint64_t kPipelineFill = 8;

struct SimOptions {
  /// false reproduces §4.3's setup (activations on chip, weights
  /// unconstrained); true adds the single-channel LPDDR4-4267 and AM/WM
  /// capacity effects of §4.5 / Figure 5, modeled by the shared tile
  /// scheduler + memory timeline (sim/engine).
  bool model_offchip = false;
  /// Capacity overrides for sizing sweeps; 0 keeps the §4.5 default the
  /// architecture implies (mem::default_memory_config).
  std::int64_t am_bytes = 0;
  std::int64_t wm_bytes = 0;
  mem::DramConfig dram;
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Simulate one inference pass of the workload's network.
  [[nodiscard]] virtual RunResult run(NetworkWorkload& workload) = 0;
};

[[nodiscard]] std::unique_ptr<Simulator> make_dpnn_simulator(
    const arch::DpnnConfig& cfg, const SimOptions& opts = {});
[[nodiscard]] std::unique_ptr<Simulator> make_loom_simulator(
    const arch::LoomConfig& cfg, const SimOptions& opts = {});
[[nodiscard]] std::unique_ptr<Simulator> make_stripes_simulator(
    const arch::StripesConfig& cfg, const SimOptions& opts = {});
[[nodiscard]] std::unique_ptr<Simulator> make_laconic_simulator(
    const arch::LaconicConfig& cfg, const SimOptions& opts = {});

}  // namespace loom::sim
