#include "sim/result.hpp"

#include "arch/config.hpp"
#include "common/error.hpp"

namespace loom::sim {

namespace {

bool matches(nn::LayerKind kind, RunResult::Filter f) {
  switch (f) {
    case RunResult::Filter::kAll: return kind != nn::LayerKind::kPool;
    case RunResult::Filter::kConv: return kind == nn::LayerKind::kConv;
    case RunResult::Filter::kFc: return kind == nn::LayerKind::kFullyConnected;
  }
  return false;
}

}  // namespace

std::uint64_t RunResult::cycles(Filter f) const noexcept {
  std::uint64_t n = 0;
  for (const LayerResult& l : layers) {
    if (matches(l.kind, f)) n += l.cycles();
  }
  return n;
}

std::uint64_t RunResult::stall_cycles(Filter f) const noexcept {
  std::uint64_t n = 0;
  for (const LayerResult& l : layers) {
    if (matches(l.kind, f)) n += l.stall_cycles;
  }
  return n;
}

std::int64_t RunResult::macs(Filter f) const noexcept {
  std::int64_t n = 0;
  for (const LayerResult& l : layers) {
    if (matches(l.kind, f)) n += l.macs;
  }
  return n;
}

energy::Activity RunResult::activity(Filter f) const noexcept {
  energy::Activity a;
  for (const LayerResult& l : layers) {
    if (matches(l.kind, f)) a.merge(l.activity);
  }
  return a;
}

double RunResult::energy_pj(Filter f,
                            const energy::EnergyCoefficients& coeffs) const noexcept {
  const energy::EnergyModel model(coeffs, area.total_mm2(), bits_per_cycle);
  return model.evaluate(activity(f)).total_pj();
}

double RunResult::fps() const noexcept {
  const std::uint64_t c = cycles(Filter::kAll);
  if (c == 0) return 0.0;
  return arch::kClockGhz * 1e9 / static_cast<double>(c);
}

std::uint64_t RunResult::offchip_bits() const noexcept {
  const energy::Activity a = activity(Filter::kAll);
  return a.dram_read_bits + a.dram_write_bits;
}

double speedup_vs(const RunResult& arch, const RunResult& baseline,
                  RunResult::Filter f) {
  const std::uint64_t mine = arch.cycles(f);
  const std::uint64_t base = baseline.cycles(f);
  LOOM_EXPECTS(mine > 0);
  return static_cast<double>(base) / static_cast<double>(mine);
}

double efficiency_vs(const RunResult& arch, const RunResult& baseline,
                     RunResult::Filter f) {
  const double mine = arch.energy_pj(f);
  const double base = baseline.energy_pj(f);
  LOOM_EXPECTS(mine > 0.0);
  return base / mine;
}

}  // namespace loom::sim
