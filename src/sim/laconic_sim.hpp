// Cycle model of a term-serial accelerator in the Pragmatic/Laconic lineage
// (the §6 future-work direction): the same rows() x cols() SIP grid as LM1b,
// but each lane processes one *effectual* activation-term x weight-term pair
// per cycle instead of one bit-plane pair, so cycles scale with popcounts
// rather than bit-widths.
//
// Convolutional layers: rows <- filters, cols <- windows. Each chunk (one
// window block x one 16-activation input chunk) costs Ta x Tw cycles, where
//  * Ta is the chunk's activation term count — the popcount of the detection
//    group's OR mask (LayerWorkload::act_group_term_table over the same OR
//    planes the precision detector uses). The group sequencer synchronizes
//    at the slowest lane: it walks every essential bit-plane, i.e. every
//    position at which *any* of the 256 activations has a one.
//  * Tw is the measured mean synchronized weight-group term length — the
//    popcount of the union of NAF digit positions over a 16-weight group
//    (LayerWorkload::naf_weight_terms().synced_per_group). In the
//    LaconicConfig::linear_term_scaling estimate mode it is instead the mean
//    NAF digits *per weight*, the optimistic arithmetic bench_sparsity's old
//    linear-scaling estimates applied (every lane independent, no
//    synchronization) — kept so the estimate-vs-measured delta is visible.
//
// Fully-connected layers: the FC path has no OR planes, so activations
// stream dense (16 passes) and only the weight side is term-serial; the
// cascade slicing is shared with Loom (plan_fc_cascade).
//
// Storage and memory timing are positional, exactly like LM1b: activations
// lay out bit-packed at the *detected precision* (terms cannot be addressed
// without offsets, so AM/ABin traffic follows needed_bits, not popcounts)
// and weights dense at the profile precision — term extraction happens at
// the PE. Only compute cycles follow the term tables.
#pragma once

#include <cstdint>

#include "nn/tensor.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace loom::sim {

class LaconicSimulator final : public Simulator {
 public:
  LaconicSimulator(const arch::LaconicConfig& cfg, const SimOptions& opts);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] RunResult run(NetworkWorkload& workload) override;

  /// Simulate one layer against a run-wide timing core (shared tile
  /// scheduler + memory timeline; see sim/engine.hpp).
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           engine::TimingCore& core) const;
  /// Convenience overload for single-layer callers: a transient per-layer
  /// timeline (no cross-layer prefetch), drain tail included.
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           mem::MemorySystem& mem) const;

 private:
  [[nodiscard]] LayerResult simulate_conv(LayerWorkload& lw) const;
  [[nodiscard]] LayerResult simulate_fc(LayerWorkload& lw) const;
  void apply_memory(LayerResult& r, LayerWorkload& lw,
                    engine::TimingCore& core) const;
  /// Weight-side term count (possibly fractional) used for timing.
  [[nodiscard]] double timing_weight_terms(LayerWorkload& lw) const;

  arch::LaconicConfig cfg_;
  SimOptions opts_;
};

/// Functional term-serial run of one convolution layer: exact accumulators
/// from the bit-sliced engine (byte-identical to nn::conv_forward) plus
/// *data-driven* term-serial grid cycles — per (filter block, window block,
/// input chunk) the product of the chunk's activation term count and the
/// slowest row's weight-group NAF union length. Unlike the analytic model,
/// which works from streamed statistical means, this walks the actual
/// tensors; tests pin it with golden digests rather than asserting equality
/// with the analytic count.
struct LaconicFunctionalRun {
  nn::WideTensor wide;         ///< exact accumulators [out.c][out.h][out.w]
  std::uint64_t cycles = 0;    ///< term-serial grid cycles (no pipeline fill)
  double mean_act_terms = 0.0; ///< mean chunk activation term count
  double mean_weight_terms = 0.0;  ///< mean per-block synced weight terms
};

struct LaconicFunctionalOptions {
  int rows = 16;
  int cols = 16;
  int lanes = 16;
  int jobs = 1;
};

[[nodiscard]] LaconicFunctionalRun run_laconic_conv(
    const nn::Layer& layer, const nn::Tensor& input, const nn::Tensor& weights,
    const LaconicFunctionalOptions& opts = {});

}  // namespace loom::sim
