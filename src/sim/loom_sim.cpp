#include "sim/loom_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace loom::sim {

FcCascadePlan plan_fc_cascade(std::int64_t rows, std::int64_t cols,
                              std::int64_t lanes, std::int64_t out_channels,
                              std::int64_t in_elements,
                              double weight_precision, double act_passes,
                              bool cascading) {
  const std::int64_t concurrent = rows * cols;
  FcCascadePlan best;
  const std::int64_t max_ways = cascading ? cols : 1;
  for (std::int64_t ways = 1; ways <= max_ways; ways *= 2) {
    const std::int64_t outputs_per_block = concurrent / ways;
    if (outputs_per_block == 0) break;
    const std::int64_t fb = ceil_div(out_channels, outputs_per_block);
    const std::int64_t rounds = ceil_div(in_elements, lanes * ways);
    const double cyc =
        static_cast<double>(fb) *
        (static_cast<double>(rounds) * act_passes * weight_precision +
         static_cast<double>(ways - 1));
    if (best.blocks == 0 || cyc < best.cycles) {
      best.cycles = cyc;
      best.ways = ways;
      best.blocks = fb;
      best.rounds = rounds;
    }
  }
  return best;
}

LoomSimulator::LoomSimulator(const arch::LoomConfig& cfg, const SimOptions& opts)
    : cfg_(cfg), opts_(opts) {
  cfg_.validate();
}

std::string LoomSimulator::name() const { return cfg_.to_string(); }

double LoomSimulator::timing_weight_precision(LayerWorkload& lw) const {
  if (cfg_.sparse_weight_skipping) {
    // §6 future-work estimate: serial passes shrink to the essential
    // (any-weight-has-a-one) bit-planes under sign-magnitude streaming.
    const double essential = lw.essential_weight_planes();
    if (cfg_.per_group_weights) {
      return std::min(essential, lw.effective_weight_precision());
    }
    return std::min(essential,
                    static_cast<double>(lw.layer().weight_precision));
  }
  if (!cfg_.per_group_weights) {
    return static_cast<double>(lw.layer().weight_precision);
  }
  if (cfg_.honest_group_weight_timing) {
    // All rows load their weight-group bits in lock step, so a chunk's
    // serial passes must cover the worst group among the rows x lanes/16
    // groups loaded together.
    const int rows_groups = cfg_.rows() * cfg_.lanes / cfg_.weight_group();
    return lw.honest_weight_precision(rows_groups);
  }
  // Paper §4.6: assume performance scales linearly with the measured mean
  // effective per-group weight precision.
  return lw.effective_weight_precision();
}

LayerResult LoomSimulator::simulate_conv(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();

  const int rows = cfg_.rows();
  const int cols = cfg_.cols();
  const int lanes = cfg_.lanes;
  const int bpc = cfg_.bits_per_cycle;

  const double pw = timing_weight_precision(lw);
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t wb_count = ceil_div(windows, cols);
  const std::int64_t ic_count = ceil_div(inner, lanes);

  // Dynamic detection happens at the dispatcher on AM-fetch groups of
  // 16 windows x 16 lanes (256 activations) regardless of the SIP
  // column count, so the LM2b/4b variants see the same per-group
  // precisions as LM1b (paper §3.2). The whole per-layer table is filled
  // from the OR planes up front; the loops below are plain array reads.
  ActPrecisionTable pa_table;
  if (cfg_.dynamic_act_precision) {
    pa_table = lw.act_group_precision_table(16);
    // One-time loop-bound contract for the whole layer (replaces the old
    // per-query argument checks): a config with *finer* lanes than the
    // workload table would read past it, so it must fail loudly here. (A
    // coarser-lanes config passes, reading sub-chunk precisions — the same
    // silent semantics as before. The wb index (wb*cols)/16 is in bounds
    // by construction for a cols=16 table of the same layer.)
    LOOM_EXPECTS(ic_count <= pa_table.ic_count());
  }

  double cycles = 0.0;
  double busy_lane_cycles = 0.0;
  double pa_weighted = 0.0;
  std::uint64_t chunks = 0;

  for (int g = 0; g < layer.groups; ++g) {
    const std::int64_t cog = layer.group_out_channels();
    const std::int64_t fb = ceil_div(cog, rows);
    const auto dcog = static_cast<double>(cog);
    // Weight-memory reads are invariant per chunk: hoist the per-chunk
    // truncation once and scale by the chunk count (integer-exact).
    r.activity.wm_read_bits +=
        static_cast<std::uint64_t>(dcog * static_cast<double>(lanes) * pw) *
        static_cast<std::uint64_t>(wb_count * ic_count);
    for (std::int64_t wb = 0; wb < wb_count; ++wb) {
      const std::int64_t cols_used =
          std::min<std::int64_t>(cols, windows - wb * cols);
      // Per-(wb, ic) accounting that does not depend on the detected
      // precision, hoisted out of the chunk loop (integer-exact: every
      // chunk of this wb contributes the identical truncated value, and
      // the lanes_used tail sums to `inner` across the ic chunks).
      r.activity.wr_bits_loaded += static_cast<std::uint64_t>(
                                       dcog * static_cast<double>(cols_used * lanes) * pw) *
                                   static_cast<std::uint64_t>(ic_count);
      if (cfg_.dynamic_act_precision) {
        r.activity.detector_values +=
            static_cast<std::uint64_t>(cols_used * inner);
      }
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        const std::int64_t lanes_used =
            std::min<std::int64_t>(lanes, inner - ic * lanes);
        const int pa = cfg_.dynamic_act_precision
                           ? pa_table.at(g, (wb * cols) / 16, ic)
                           : layer.act_precision;
        const auto pa_serial = static_cast<double>(ceil_div(pa, bpc));
        const double chunk_cycles = pa_serial * pw;

        cycles += chunk_cycles * static_cast<double>(fb);
        pa_weighted += pa;
        ++chunks;

        // Active rows summed over the fb filter blocks equal cog exactly.
        r.activity.sip_lane_bit_ops += static_cast<std::uint64_t>(
            dcog * static_cast<double>(cols_used * lanes_used) *
            static_cast<double>(pa) * pw);
        // A SIP is "busy" for the chunk's serial cycles; scale by the
        // fraction of its lanes carrying real data.
        busy_lane_cycles += dcog * static_cast<double>(cols_used) *
                            (static_cast<double>(lanes_used) /
                             static_cast<double>(lanes)) *
                            pa_serial * pw;
        r.activity.abin_read_bits += static_cast<std::uint64_t>(
            static_cast<double>(cols_used * lanes * pa) * pw *
            static_cast<double>(fb));
        // AM -> ABin fetch, bit-packed at the detected precision, once per
        // filter block.
        const std::uint64_t am_bits = static_cast<std::uint64_t>(
            cols_used * lanes_used * pa * fb);
        r.activity.am_read_bits += am_bits;
        r.activity.abin_write_bits += am_bits;
      }
    }
  }

  r.compute_cycles = static_cast<std::uint64_t>(std::llround(cycles)) + kPipelineFill;
  r.mean_act_precision = chunks ? pa_weighted / static_cast<double>(chunks) : 0.0;
  r.mean_weight_precision = pw;
  r.utilization = busy_lane_cycles /
                  (static_cast<double>(r.compute_cycles) *
                   static_cast<double>(rows) * static_cast<double>(cols));
  // Idle lane slots still clock (underutilization energy penalty).
  const double lane_slots = static_cast<double>(r.compute_cycles) *
                            static_cast<double>(rows) *
                            static_cast<double>(cols) *
                            static_cast<double>(lanes);
  r.activity.sip_idle_lane_cycles = static_cast<std::uint64_t>(
      std::max(0.0, lane_slots - busy_lane_cycles * static_cast<double>(lanes)));

  const std::uint64_t out_bits =
      static_cast<std::uint64_t>(layer.out.elements()) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  const std::uint64_t packed_out = static_cast<std::uint64_t>(
      layer.out.elements() * lw.out_precision);
  r.activity.am_write_bits = packed_out;
  r.activity.transposer_bits = packed_out;
  return r;
}

LayerResult LoomSimulator::simulate_fc(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();

  const int rows = cfg_.rows();
  const int cols = cfg_.cols();
  const int lanes = cfg_.lanes;
  const int bpc = cfg_.bits_per_cycle;
  const std::int64_t concurrent = static_cast<std::int64_t>(rows) * cols;
  const std::int64_t co = layer.out.c;
  const std::int64_t ci = layer.in.elements();
  const double pw = timing_weight_precision(lw);
  const double act_passes = static_cast<double>(kBasePrecision / bpc);

  // Choose the cascade slicing that minimizes cycles (ways = 1 disables
  // cascading; larger ways split an output's inner dimension over adjacent
  // SIPs at a reduction cost of ways-1 cycles per block).
  const FcCascadePlan plan = plan_fc_cascade(rows, cols, lanes, co, ci, pw,
                                             act_passes, cfg_.cascading);
  const double best_cycles = plan.cycles;
  const std::int64_t best_ways = plan.ways;
  const std::int64_t best_fb = plan.blocks;
  const std::int64_t best_rounds = plan.rounds;

  // Column-staggered weight loading: cols-1 cycles of initiation per layer
  // (§3.2 "after the first 15 cycles all SIPs are fully utilized").
  const double stagger = static_cast<double>(cols - 1);
  r.compute_cycles = static_cast<std::uint64_t>(std::llround(best_cycles + stagger)) +
                     kPipelineFill;
  r.mean_act_precision = kBasePrecision;
  r.mean_weight_precision = pw;

  // Activity. Every output occupies `ways` SIPs; per round each of those
  // SIPs loads `lanes` fresh weights (pw bits each, no bus sharing — all
  // weights are distinct) and ANDs lanes x 16 x pw lane-bit products.
  const double sip_rounds = static_cast<double>(co) *
                            static_cast<double>(best_ways) *
                            static_cast<double>(best_rounds);
  r.activity.wr_bits_loaded =
      static_cast<std::uint64_t>(sip_rounds * static_cast<double>(lanes) * pw);
  r.activity.wm_read_bits = r.activity.wr_bits_loaded;
  // Each MAC streams 16 activation bits against pw weight bits.
  r.activity.sip_lane_bit_ops =
      static_cast<std::uint64_t>(static_cast<double>(r.macs) * 16.0 * pw);
  // Activation bus: lanes x cols x bpc bits per cycle while computing.
  r.activity.abin_read_bits = static_cast<std::uint64_t>(
      best_cycles * static_cast<double>(lanes * cols * bpc));
  const std::uint64_t am_fetch =
      static_cast<std::uint64_t>(ci) * 16 * static_cast<std::uint64_t>(best_fb);
  r.activity.am_read_bits = am_fetch;
  r.activity.abin_write_bits = am_fetch;

  const std::uint64_t out_bits = static_cast<std::uint64_t>(co) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  r.activity.am_write_bits = out_bits;

  // Busy SIP-cycles: each output's `ways` SIPs run for its block's serial
  // cycles.
  const double busy = static_cast<double>(co) * static_cast<double>(best_ways) *
                      static_cast<double>(best_rounds) * act_passes * pw;
  const double slots = static_cast<double>(r.compute_cycles) *
                       static_cast<double>(concurrent);
  r.utilization = slots > 0.0 ? std::min(1.0, busy / slots) : 0.0;
  r.activity.sip_idle_lane_cycles = static_cast<std::uint64_t>(
      std::max(0.0, (slots - busy) * static_cast<double>(lanes)));
  return r;
}

void LoomSimulator::apply_memory(LayerResult& r, LayerWorkload& lw,
                                 engine::TimingCore& core) const {
  const nn::Layer& layer = lw.layer();
  engine::LayerStorage st;
  // Weights lay out bit-packed at the static profile precision (per-group
  // packing would need per-group metadata; the static profile is what the
  // memory layout uses).
  st.weights_bit_packed = true;
  st.weight_precision = layer.weight_precision;
  if (cfg_.sparse_weight_skipping) {
    // Essential-plane packing: groups store only the sign-magnitude planes
    // in which some weight has a one, plus a Pw-bit plane-presence bitmap
    // per 16-weight group, so DRAM/WM footprints shrink along with the
    // compute estimate instead of the flag being priced nowhere.
    st.weight_mean_plane_bits =
        lw.essential_weight_planes() +
        static_cast<double>(layer.weight_precision) / 16.0;
  }

  const int rows = cfg_.rows();
  const double pw = timing_weight_precision(lw);

  if (layer.kind == nn::LayerKind::kConv) {
    st.act_precision = layer.act_precision;
    st.act_dynamic = cfg_.dynamic_act_precision;
    st.out_precision = lw.out_precision;
    st.window_quantum = 16;
    st.filter_quantum = rows;

    const int cols = cfg_.cols();
    const int bpc = cfg_.bits_per_cycle;
    const std::int64_t ic_count = ceil_div(layer.inner_length(), cfg_.lanes);
    ActPrecisionTable pa_table;
    if (cfg_.dynamic_act_precision) {
      pa_table = lw.act_group_precision_table(16);
    }
    core.apply(r, lw, st, [&, pa_table](const mem::TileExtent& t) {
      // Mirrors simulate_conv's chunk loop over the tile's window blocks,
      // so the blocks sum exactly to the unconstrained cycle count.
      double cyc = 0.0;
      for (std::int64_t wb = t.window_begin / cols; wb * cols < t.window_end;
           ++wb) {
        for (std::int64_t ic = 0; ic < ic_count; ++ic) {
          const int pa = cfg_.dynamic_act_precision
                             ? pa_table.at(t.conv_group, (wb * cols) / 16, ic)
                             : layer.act_precision;
          cyc += static_cast<double>(ceil_div(pa, bpc)) * pw;
        }
      }
      return cyc * static_cast<double>(ceil_div(t.filter_count(), rows));
    });
  } else {
    st.window_quantum = 1;
    const double act_passes =
        static_cast<double>(kBasePrecision / cfg_.bits_per_cycle);
    const FcCascadePlan plan =
        plan_fc_cascade(rows, cfg_.cols(), cfg_.lanes, layer.out.c,
                        layer.in.elements(), pw, act_passes, cfg_.cascading);
    const std::int64_t opb =
        static_cast<std::int64_t>(rows) * cfg_.cols() / plan.ways;
    st.filter_quantum = opb;
    core.apply(r, lw, st, [=](const mem::TileExtent& t) {
      const auto blocks = static_cast<double>(ceil_div(t.filter_count(), opb));
      return blocks * (static_cast<double>(plan.rounds) * act_passes * pw +
                       static_cast<double>(plan.ways - 1));
    });
  }
}

LayerResult LoomSimulator::simulate_layer(LayerWorkload& lw,
                                          engine::TimingCore& core) const {
  LayerResult r = lw.layer().kind == nn::LayerKind::kConv ? simulate_conv(lw)
                                                          : simulate_fc(lw);
  if (opts_.model_offchip) apply_memory(r, lw, core);
  r.activity.cycles = r.cycles();
  return r;
}

LayerResult LoomSimulator::simulate_layer(LayerWorkload& lw,
                                          mem::MemorySystem& mem) const {
  engine::TimingCore core(mem);
  LayerResult r = simulate_layer(lw, core);
  const std::uint64_t tail = core.finish();
  r.stall_cycles += tail;
  r.activity.dram_stall_cycles += tail;
  r.activity.cycles = r.cycles();
  return r;
}

RunResult LoomSimulator::run(NetworkWorkload& workload) {
  RunResult result;
  result.arch_name = name();
  result.network = workload.network().name();
  result.bits_per_cycle = cfg_.bits_per_cycle;

  const mem::MemorySystemConfig mem_cfg =
      engine::resolve_memory_config(cfg_.equiv_macs, /*bit_packed=*/true, opts_);
  mem::MemorySystem mem(mem_cfg);
  engine::TimingCore core(mem);

  result.area = energy::loom_area(cfg_, mem_cfg);

  for (std::size_t i = 0; i < workload.network().size(); ++i) {
    if (!workload.network().layer(i).has_weights()) continue;
    result.layers.push_back(simulate_layer(workload.layer(i), core));
  }
  engine::finish_run(result, core);
  return result;
}

}  // namespace loom::sim
