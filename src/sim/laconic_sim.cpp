#include "sim/laconic_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "sim/bitslice_engine.hpp"
#include "sim/loom_sim.hpp"
#include "sim/or_planes.hpp"

namespace loom::sim {

LaconicSimulator::LaconicSimulator(const arch::LaconicConfig& cfg,
                                   const SimOptions& opts)
    : cfg_(cfg), opts_(opts) {
  cfg_.validate();
}

std::string LaconicSimulator::name() const { return cfg_.to_string(); }

double LaconicSimulator::timing_weight_terms(LayerWorkload& lw) const {
  const LayerWorkload::WeightTermStats stats = lw.naf_weight_terms();
  // Estimate mode reproduces the old linear-scaling arithmetic: every lane
  // skips its own zero digits for free, no group synchronization. The
  // measured mode charges the synchronized sequencer walk.
  return cfg_.linear_term_scaling ? stats.mean_per_weight
                                  : stats.synced_per_group;
}

LayerResult LaconicSimulator::simulate_conv(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();

  const int rows = cfg_.rows();
  const int cols = cfg_.cols();
  const int lanes = cfg_.lanes;

  const double wt = timing_weight_terms(lw);
  // Effectual ops fire at the per-weight mean regardless of how long the
  // synchronized walk takes; the difference shows up as idle lane slots.
  const double wt_effectual = lw.naf_weight_terms().mean_per_weight;
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t wb_count = ceil_div(windows, cols);
  const std::int64_t ic_count = ceil_div(inner, lanes);

  // Both tables come from the same OR planes at the same 16-window detector
  // granularity: term counts drive the cycles, detected precisions drive
  // the positional AM/ABin accounting (storage cannot address terms).
  const ActTermTable term_table = lw.act_group_term_table(16);
  const ActPrecisionTable pa_table = lw.act_group_precision_table(16);
  LOOM_EXPECTS(ic_count <= term_table.ic_count());

  double cycles = 0.0;
  double term_ops = 0.0;
  double ta_weighted = 0.0;
  std::uint64_t chunks = 0;

  for (int g = 0; g < layer.groups; ++g) {
    const std::int64_t cog = layer.group_out_channels();
    const std::int64_t fb = ceil_div(cog, rows);
    const auto dcog = static_cast<double>(cog);
    // Weights stream dense from the WM at the profile precision; the PE
    // extracts the NAF digits on the fly (hoisted, invariant per chunk).
    r.activity.wm_read_bits +=
        static_cast<std::uint64_t>(dcog * static_cast<double>(lanes) *
                                   static_cast<double>(layer.weight_precision)) *
        static_cast<std::uint64_t>(wb_count * ic_count);
    for (std::int64_t wb = 0; wb < wb_count; ++wb) {
      const std::int64_t cols_used =
          std::min<std::int64_t>(cols, windows - wb * cols);
      r.activity.wr_bits_loaded +=
          static_cast<std::uint64_t>(
              dcog * static_cast<double>(cols_used * lanes) *
              static_cast<double>(layer.weight_precision)) *
          static_cast<std::uint64_t>(ic_count);
      r.activity.detector_values +=
          static_cast<std::uint64_t>(cols_used * inner);
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        const std::int64_t lanes_used =
            std::min<std::int64_t>(lanes, inner - ic * lanes);
        const int ta = term_table.at(g, (wb * cols) / 16, ic);
        const int pa = pa_table.at(g, (wb * cols) / 16, ic);
        const double chunk_cycles = static_cast<double>(ta) * wt;

        cycles += chunk_cycles * static_cast<double>(fb);
        ta_weighted += ta;
        ++chunks;

        // Effectual term-pair operations over the active lanes (summed over
        // the fb filter blocks the active rows equal cog exactly).
        term_ops += dcog * static_cast<double>(cols_used * lanes_used) *
                    static_cast<double>(ta) * wt_effectual;
        // Serialized activation terms broadcast per synchronized pass.
        r.activity.abin_read_bits += static_cast<std::uint64_t>(
            static_cast<double>(cols_used * lanes * ta) * wt *
            static_cast<double>(fb));
        // AM -> ABin fetch stays positional at the detected precision.
        const std::uint64_t am_bits =
            static_cast<std::uint64_t>(cols_used * lanes_used * pa * fb);
        r.activity.am_read_bits += am_bits;
        r.activity.abin_write_bits += am_bits;
      }
    }
  }

  r.compute_cycles =
      static_cast<std::uint64_t>(std::llround(cycles)) + kPipelineFill;
  r.mean_act_precision =
      chunks ? ta_weighted / static_cast<double>(chunks) : 0.0;
  r.mean_weight_precision = wt;
  r.activity.laconic_lane_term_ops =
      static_cast<std::uint64_t>(std::llround(term_ops));
  // Every provisioned lane slot either fires an effectual term pair or
  // idles waiting for its group's slowest lane.
  const double lane_slots = static_cast<double>(r.compute_cycles) *
                            static_cast<double>(rows) *
                            static_cast<double>(cols) *
                            static_cast<double>(lanes);
  r.utilization = lane_slots > 0.0 ? std::min(1.0, term_ops / lane_slots) : 0.0;
  r.activity.laconic_idle_lane_cycles =
      static_cast<std::uint64_t>(std::max(0.0, lane_slots - term_ops));

  const std::uint64_t out_bits =
      static_cast<std::uint64_t>(layer.out.elements()) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  const std::uint64_t packed_out =
      static_cast<std::uint64_t>(layer.out.elements() * lw.out_precision);
  r.activity.am_write_bits = packed_out;
  r.activity.transposer_bits = packed_out;
  return r;
}

LayerResult LaconicSimulator::simulate_fc(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();

  const int rows = cfg_.rows();
  const int cols = cfg_.cols();
  const int lanes = cfg_.lanes;
  const std::int64_t concurrent = static_cast<std::int64_t>(rows) * cols;
  const std::int64_t co = layer.out.c;
  const std::int64_t ci = layer.in.elements();
  const double wt = timing_weight_terms(lw);
  const double wt_effectual = lw.naf_weight_terms().mean_per_weight;
  // The FC path has no OR planes, so activations stream dense (16 passes);
  // only the weight side is term-serial.
  const double act_passes = static_cast<double>(kBasePrecision);

  const FcCascadePlan plan = plan_fc_cascade(rows, cols, lanes, co, ci, wt,
                                             act_passes, cfg_.cascading);

  const double stagger = static_cast<double>(cols - 1);
  r.compute_cycles =
      static_cast<std::uint64_t>(std::llround(plan.cycles + stagger)) +
      kPipelineFill;
  r.mean_act_precision = kBasePrecision;
  r.mean_weight_precision = wt;

  const double sip_rounds = static_cast<double>(co) *
                            static_cast<double>(plan.ways) *
                            static_cast<double>(plan.rounds);
  r.activity.wr_bits_loaded = static_cast<std::uint64_t>(
      sip_rounds * static_cast<double>(lanes) *
      static_cast<double>(layer.weight_precision));
  r.activity.wm_read_bits = r.activity.wr_bits_loaded;
  // Each MAC walks 16 activation passes against the weight's effectual terms.
  const double term_ops =
      static_cast<double>(r.macs) * act_passes * wt_effectual;
  r.activity.laconic_lane_term_ops =
      static_cast<std::uint64_t>(std::llround(term_ops));
  r.activity.abin_read_bits = static_cast<std::uint64_t>(
      plan.cycles * static_cast<double>(lanes * cols));
  const std::uint64_t am_fetch = static_cast<std::uint64_t>(ci) * 16 *
                                 static_cast<std::uint64_t>(plan.blocks);
  r.activity.am_read_bits = am_fetch;
  r.activity.abin_write_bits = am_fetch;

  const std::uint64_t out_bits = static_cast<std::uint64_t>(co) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  r.activity.am_write_bits = out_bits;

  const double lane_slots = static_cast<double>(r.compute_cycles) *
                            static_cast<double>(concurrent) *
                            static_cast<double>(lanes);
  r.utilization = lane_slots > 0.0 ? std::min(1.0, term_ops / lane_slots) : 0.0;
  r.activity.laconic_idle_lane_cycles =
      static_cast<std::uint64_t>(std::max(0.0, lane_slots - term_ops));
  return r;
}

void LaconicSimulator::apply_memory(LayerResult& r, LayerWorkload& lw,
                                    engine::TimingCore& core) const {
  const nn::Layer& layer = lw.layer();
  engine::LayerStorage st;
  // Weights lay out dense bit-packed at the profile precision — the PE
  // extracts terms, storage stays positional (addressable offsets).
  st.weights_bit_packed = true;
  st.weight_precision = layer.weight_precision;

  const int rows = cfg_.rows();
  const double wt = timing_weight_terms(lw);

  if (layer.kind == nn::LayerKind::kConv) {
    st.act_precision = layer.act_precision;
    st.act_dynamic = true;
    st.out_precision = lw.out_precision;
    st.window_quantum = 16;
    st.filter_quantum = rows;

    const int cols = cfg_.cols();
    const std::int64_t ic_count = ceil_div(layer.inner_length(), cfg_.lanes);
    const ActTermTable term_table = lw.act_group_term_table(16);
    core.apply(r, lw, st, [&, term_table](const mem::TileExtent& t) {
      // Mirrors simulate_conv's chunk loop over the tile's window blocks so
      // the blocks sum exactly to the unconstrained cycle count.
      double cyc = 0.0;
      for (std::int64_t wb = t.window_begin / cols; wb * cols < t.window_end;
           ++wb) {
        for (std::int64_t ic = 0; ic < ic_count; ++ic) {
          const int ta = term_table.at(t.conv_group, (wb * cols) / 16, ic);
          cyc += static_cast<double>(ta) * wt;
        }
      }
      return cyc * static_cast<double>(ceil_div(t.filter_count(), rows));
    });
  } else {
    st.window_quantum = 1;
    const double act_passes = static_cast<double>(kBasePrecision);
    const FcCascadePlan plan =
        plan_fc_cascade(rows, cfg_.cols(), cfg_.lanes, layer.out.c,
                        layer.in.elements(), wt, act_passes, cfg_.cascading);
    const std::int64_t opb =
        static_cast<std::int64_t>(rows) * cfg_.cols() / plan.ways;
    st.filter_quantum = opb;
    core.apply(r, lw, st, [=](const mem::TileExtent& t) {
      const auto blocks = static_cast<double>(ceil_div(t.filter_count(), opb));
      return blocks * (static_cast<double>(plan.rounds) * act_passes * wt +
                       static_cast<double>(plan.ways - 1));
    });
  }
}

LayerResult LaconicSimulator::simulate_layer(LayerWorkload& lw,
                                             engine::TimingCore& core) const {
  LayerResult r = lw.layer().kind == nn::LayerKind::kConv ? simulate_conv(lw)
                                                          : simulate_fc(lw);
  if (opts_.model_offchip) apply_memory(r, lw, core);
  r.activity.cycles = r.cycles();
  return r;
}

LayerResult LaconicSimulator::simulate_layer(LayerWorkload& lw,
                                             mem::MemorySystem& mem) const {
  engine::TimingCore core(mem);
  LayerResult r = simulate_layer(lw, core);
  const std::uint64_t tail = core.finish();
  r.stall_cycles += tail;
  r.activity.dram_stall_cycles += tail;
  r.activity.cycles = r.cycles();
  return r;
}

RunResult LaconicSimulator::run(NetworkWorkload& workload) {
  RunResult result;
  result.arch_name = name();
  result.network = workload.network().name();
  result.bits_per_cycle = 1;

  const mem::MemorySystemConfig mem_cfg =
      engine::resolve_memory_config(cfg_.equiv_macs, /*bit_packed=*/true, opts_);
  mem::MemorySystem mem(mem_cfg);
  engine::TimingCore core(mem);

  result.area = energy::laconic_area(cfg_, mem_cfg);

  for (std::size_t i = 0; i < workload.network().size(); ++i) {
    if (!workload.network().layer(i).has_weights()) continue;
    result.layers.push_back(simulate_layer(workload.layer(i), core));
  }
  engine::finish_run(result, core);
  return result;
}

LaconicFunctionalRun run_laconic_conv(const nn::Layer& layer,
                                      const nn::Tensor& input,
                                      const nn::Tensor& weights,
                                      const LaconicFunctionalOptions& opts) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);

  LaconicFunctionalRun run;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, layer.out.h, layer.out.w});

  // Exact values ride the bit-sliced engine (same dispatcher semantics as
  // the scalar grid, byte-identical to nn::conv_forward).
  BitsliceEngine::Options eng_opts;
  eng_opts.rows = opts.rows;
  eng_opts.cols = opts.cols;
  eng_opts.lanes = opts.lanes;
  eng_opts.jobs = opts.jobs;
  LOOM_EXPECTS(BitsliceEngine::supports(eng_opts));
  BitsliceEngine engine(eng_opts);
  BitsliceEngine::SliceSpec spec;
  spec.act_precision = layer.act_precision;
  spec.weight_precision = layer.weight_precision;
  spec.dynamic = true;
  (void)engine.run_conv(layer, input, weights, spec, run.wide);

  // Data-driven term-serial cycles over the actual tensors. Activation term
  // counts come from the same OR planes the detector uses; weight terms are
  // the NAF-union walk of each row's 16-weight group, synchronized across
  // the filter block at the slowest row.
  ActOrPlanes planes(layer, opts.lanes);
  planes.build(input);

  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t wb_count = ceil_div(windows, opts.cols);
  const std::int64_t ic_count = ceil_div(inner, opts.lanes);
  const std::uint32_t pa_mask =
      (std::uint32_t{1} << layer.act_precision) - 1u;

  std::uint64_t cycles = 0;
  std::uint64_t ta_sum = 0;
  std::uint64_t tw_sum = 0;
  std::uint64_t blocks = 0;
  for (std::int64_t g = 0; g < layer.groups; ++g) {
    for (std::int64_t f0 = 0; f0 < cog; f0 += opts.rows) {
      const std::int64_t f1 = std::min<std::int64_t>(cog, f0 + opts.rows);
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        const std::int64_t i0 = ic * opts.lanes;
        const std::int64_t i1 = std::min(inner, i0 + opts.lanes);
        // Slowest row of the block: union NAF digit positions per row's
        // weight group, take the longest walk.
        int tw = 1;
        for (std::int64_t f = f0; f < f1; ++f) {
          const std::int64_t co = g * cog + f;
          std::uint32_t positions = 0;
          for (std::int64_t i = i0; i < i1; ++i) {
            const Value v = weights.flat(co * inner + i);
            const auto mag = static_cast<std::uint32_t>(
                v < 0 ? -static_cast<std::int32_t>(v)
                      : static_cast<std::int32_t>(v));
            positions |= naf_digits(mag).positions();
          }
          tw = std::max(tw, std::max(1, std::popcount(positions)));
        }
        for (std::int64_t wb = 0; wb < wb_count; ++wb) {
          const int ta = std::max(
              1, std::popcount(static_cast<std::uint32_t>(
                     planes.group_or(g, ic, wb, opts.cols)) &
                 pa_mask));
          cycles += static_cast<std::uint64_t>(ta) *
                    static_cast<std::uint64_t>(tw);
          ta_sum += static_cast<std::uint64_t>(ta);
          tw_sum += static_cast<std::uint64_t>(tw);
          ++blocks;
        }
      }
    }
  }
  run.cycles = cycles;
  run.mean_act_terms =
      blocks ? static_cast<double>(ta_sum) / static_cast<double>(blocks) : 0.0;
  run.mean_weight_terms =
      blocks ? static_cast<double>(tw_sum) / static_cast<double>(blocks) : 0.0;
  return run;
}

std::unique_ptr<Simulator> make_laconic_simulator(
    const arch::LaconicConfig& cfg, const SimOptions& opts) {
  return std::make_unique<LaconicSimulator>(cfg, opts);
}

}  // namespace loom::sim
