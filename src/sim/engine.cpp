#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace loom::sim::engine {

namespace {

/// Per-(conv group, 16-window block) packed precisions from the dynamic
/// detector's OR planes: a block's storage precision is the worst of its
/// input-chunk group precisions (every bit plane up to it is transferred).
std::vector<int> detected_block_precisions(LayerWorkload& lw,
                                           std::int64_t window_quantum) {
  // The plan's window-block granularity equals the architecture's dynamic
  // detection group width (16 windows for Loom and DStripes), so the
  // packed transfer sizes follow exactly what the detector would emit.
  const nn::Layer& layer = lw.layer();
  const ActPrecisionTable table =
      lw.act_group_precision_table(static_cast<int>(window_quantum));
  const std::int64_t blocks = ceil_div(layer.windows(), window_quantum);
  LOOM_EXPECTS(blocks == table.wb_count());
  std::vector<int> prec(static_cast<std::size_t>(layer.groups * blocks), 1);
  for (int g = 0; g < layer.groups; ++g) {
    for (std::int64_t b = 0; b < blocks; ++b) {
      int p = 1;
      for (std::int64_t ic = 0; ic < table.ic_count(); ++ic) {
        p = std::max(p, table.at(g, b, ic));
      }
      prec[static_cast<std::size_t>(g * blocks + b)] = p;
    }
  }
  return prec;
}

}  // namespace

mem::MemorySystemConfig resolve_memory_config(int equiv_macs, bool bit_packed,
                                              const SimOptions& opts) {
  mem::MemorySystemConfig cfg =
      mem::default_memory_config(equiv_macs, bit_packed);
  if (opts.am_bytes > 0) cfg.am_bytes = opts.am_bytes;
  if (opts.wm_bytes > 0) cfg.wm_bytes = opts.wm_bytes;
  cfg.model_offchip = opts.model_offchip;
  cfg.dram = opts.dram;
  return cfg;
}

void TimingCore::apply(LayerResult& r, LayerWorkload& lw,
                       const LayerStorage& storage,
                       const BlockCompute& block_compute) {
  const nn::Layer& layer = lw.layer();
  const bool conv = layer.kind == nn::LayerKind::kConv;

  mem::TilePlanRequest req;
  req.windows = layer.windows();
  req.conv_groups = conv ? layer.groups : 1;
  req.group_out_channels = conv ? layer.group_out_channels() : layer.out.c;
  req.inner_length = layer.inner_length();
  req.group_in_channels =
      conv ? layer.group_in_channels() : layer.in.elements();
  req.in_h = conv ? layer.in.h : 1;
  req.in_w = conv ? layer.in.w : 1;
  req.out_w = conv ? layer.out.w : 1;
  req.kernel_h = conv ? layer.kernel_h : 1;
  req.stride = conv ? layer.stride : 1;
  req.pad = conv ? layer.pad : 0;
  req.window_quantum = storage.window_quantum;
  req.filter_quantum = storage.filter_quantum;
  req.act_precision = storage.act_precision;
  req.weight_precision = storage.weight_precision;
  req.weights_bit_packed = storage.weights_bit_packed;
  req.weight_mean_plane_bits = storage.weight_mean_plane_bits;
  req.out_precision = storage.out_precision;
  req.am_bits = mem_.config().am_bytes * 8;
  req.wm_bits = mem_.config().wm_bytes * 8;
  if (conv && storage.act_dynamic) {
    req.act_block_precision =
        detected_block_precisions(lw, storage.window_quantum);
  }

  const mem::TilePlan plan = mem::build_tile_plan(req);

  // ---- Per-tile compute: block cycles split over weight-stream chunks ----
  // Chunks of one block are consecutive in the plan; shares follow the
  // cumulative weight count so they sum to the block exactly.
  std::vector<std::uint64_t> compute(plan.tiles.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < plan.tiles.size();) {
    const mem::TileExtent& head = plan.tiles[i];
    const auto n = static_cast<std::size_t>(head.chunk_count);
    const auto block = static_cast<std::uint64_t>(
        std::llround(std::max(0.0, block_compute(head))));
    std::int64_t total_values = 0;
    for (std::size_t j = 0; j < n; ++j) {
      total_values += plan.tiles[i + j].weight_values;
    }
    std::int64_t cum = 0;
    std::uint64_t given = 0;
    for (std::size_t j = 0; j < n; ++j) {
      cum += plan.tiles[i + j].weight_values;
      const std::uint64_t upto =
          total_values > 0 ? block * static_cast<std::uint64_t>(cum) /
                                 static_cast<std::uint64_t>(total_values)
                           : block;
      compute[i + j] = upto - given;
      given = upto;
    }
    assigned += block;
    i += n;
  }
  // The layer total also carries pipeline fill / stagger constants and the
  // float rounding of the analytic model; pin any residual on the first
  // tile so constrained compute stays identical to the unconstrained run.
  // The residual is recorded on the trace and test-pinned to exactly those
  // constants, so a tile callback drifting from its analytic loop fails
  // loudly instead of being silently absorbed here.
  const std::int64_t residual = static_cast<std::int64_t>(r.compute_cycles) -
                                static_cast<std::int64_t>(assigned);
  if (!compute.empty()) {
    if (residual >= 0) {
      compute.front() += static_cast<std::uint64_t>(residual);
    } else {
      compute.front() -=
          std::min(compute.front(), static_cast<std::uint64_t>(-residual));
    }
  }

  // ---- Run the shared timeline -------------------------------------------
  timeline_.begin_layer();
  for (std::size_t i = 0; i < plan.tiles.size(); ++i) {
    const mem::TileExtent& t = plan.tiles[i];
    const std::uint64_t wc =
        t.weight_fill_bits > 0
            ? mem_.offchip_read(static_cast<std::uint64_t>(t.weight_fill_bits))
            : 0;
    const std::uint64_t ac =
        t.act_fill_bits > 0
            ? mem_.offchip_read(static_cast<std::uint64_t>(t.act_fill_bits))
            : 0;
    const std::uint64_t dc =
        t.out_drain_bits > 0
            ? mem_.offchip_write(static_cast<std::uint64_t>(t.out_drain_bits))
            : 0;
    timeline_.add_tile(wc, ac, dc, compute[i]);
  }
  const mem::MemoryTimeline::LayerStats stats = timeline_.end_layer();

  r.stall_cycles = stats.stall_cycles;
  r.activity.dram_read_bits =
      static_cast<std::uint64_t>(plan.act_fill_bits + plan.weight_fill_bits);
  r.activity.dram_write_bits = static_cast<std::uint64_t>(plan.out_drain_bits);
  r.activity.dram_stall_cycles = stats.stall_cycles;

  r.memory.tiles = stats.tiles;
  r.memory.act_fill_bits = static_cast<std::uint64_t>(plan.act_fill_bits);
  r.memory.weight_fill_bits =
      static_cast<std::uint64_t>(plan.weight_fill_bits);
  r.memory.out_drain_bits = static_cast<std::uint64_t>(plan.out_drain_bits);
  r.memory.fill_cycles = stats.fill_cycles;
  r.memory.stall_cycles = stats.stall_cycles;
  r.memory.max_tile_stall = stats.max_tile_stall;
  r.memory.stalled_tiles = stats.stalled_tiles;
  r.memory.compute_residual_cycles = residual;
  r.memory.acts_resident = plan.acts_resident;
  r.memory.weights_resident = plan.weights_resident;
  r.memory.dataflow = static_cast<std::uint8_t>(plan.dataflow);
}

void finish_run(RunResult& result, TimingCore& core) {
  const std::uint64_t tail = core.finish();
  if (tail == 0 || result.layers.empty()) return;
  LayerResult& last = result.layers.back();
  last.stall_cycles += tail;
  last.activity.dram_stall_cycles += tail;
  last.memory.stall_cycles += tail;
  last.activity.cycles = last.cycles();
}

}  // namespace loom::sim::engine
