// Cycle model of the bit-parallel baseline (DPNN, Figure 2a): per cycle,
// `act_lanes` 16-bit activations broadcast to filters() inner-product
// units. Convolutional layers walk windows sequentially; fully-connected
// layers walk input chunks x filter blocks.
#pragma once

#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace loom::sim {

class DpnnSimulator final : public Simulator {
 public:
  DpnnSimulator(const arch::DpnnConfig& cfg, const SimOptions& opts);

  [[nodiscard]] std::string name() const override { return cfg_.to_string(); }
  [[nodiscard]] RunResult run(NetworkWorkload& workload) override;

  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           engine::TimingCore& core) const;
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           mem::MemorySystem& mem) const;

 private:
  [[nodiscard]] LayerResult simulate_compute(LayerWorkload& lw) const;
  void apply_memory(LayerResult& r, LayerWorkload& lw,
                    engine::TimingCore& core) const;

  arch::DpnnConfig cfg_;
  SimOptions opts_;
};

}  // namespace loom::sim
