#include "sim/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "arch/dispatcher.hpp"
#include "arch/sip.hpp"
#include "arch/tile.hpp"
#include "common/error.hpp"
#include "nn/im2col.hpp"
#include "sim/functional.hpp"
#include "sim/lut_engine.hpp"

namespace loom::sim {

namespace {

// ---------------------------------------------------------------------------
// Scalar oracle backend: one arch::Sip per (row, column), driven bit by bit
// through a dispatcher. This is FunctionalLoomEngine's historical scalar
// path verbatim — it defines the semantics every other backend is pinned
// against. A batch runs as N solo passes (the batching-semantics oracle);
// streaming counters come back as ConvStats deltas of the backend's own
// dispatcher, so the engine can fold them into its dispatcher uniformly.

class ScalarBackend final : public FunctionalBackend {
 public:
  explicit ScalarBackend(const BackendContext& ctx)
      : ctx_(ctx), dispatcher_(ctx.lanes) {}

  BitsliceEngine::ConvStats run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
      const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
      std::span<nn::WideTensor* const> wides) override {
    LOOM_EXPECTS(!spec.act_signed);  // the scalar conv grid is unsigned-only
    LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
    BitsliceEngine::ConvStats st;
    const std::uint64_t act0 = dispatcher_.activation_bits_streamed();
    const std::uint64_t wgt0 = dispatcher_.weight_bits_streamed();
    const std::uint64_t inv0 = dispatcher_.detector().invocations();
    const std::uint64_t val0 = dispatcher_.detector().values_inspected();

    act_buf_.resize(static_cast<std::size_t>(ctx_.cols) *
                    static_cast<std::size_t>(ctx_.lanes));
    weight_buf_.resize(static_cast<std::size_t>(ctx_.rows) *
                       static_cast<std::size_t>(ctx_.lanes));
    const std::int64_t windows = layer.windows();
    const std::int64_t fb_count =
        ceil_div(layer.group_out_channels(), static_cast<std::int64_t>(ctx_.rows));
    const std::int64_t wb_count =
        ceil_div(windows, static_cast<std::int64_t>(ctx_.cols));
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      for (std::int64_t g = 0; g < layer.groups; ++g) {
        for (std::int64_t fb = 0; fb < fb_count; ++fb) {
          for (std::int64_t wb = 0; wb < wb_count; ++wb) {
            st.cycles += conv_block(layer, *inputs[r], weights, spec, g, fb, wb,
                                    *wides[r], st.streamed_pa, st.chunks);
          }
        }
      }
    }

    st.act_bits_streamed = dispatcher_.activation_bits_streamed() - act0;
    st.weight_bits_streamed = dispatcher_.weight_bits_streamed() - wgt0;
    st.detect_invocations = dispatcher_.detector().invocations() - inv0;
    st.detect_values = dispatcher_.detector().values_inspected() - val0;
    return st;
  }

  void run_fc(const nn::Layer& layer, const nn::Tensor& input,
              const nn::Tensor& weights, int weight_precision,
              nn::WideTensor& wide) override {
    const std::int64_t ci = layer.in.elements();
    const arch::SipConfig sip_cfg{ctx_.lanes, /*act_signed=*/true,
                                  /*weight_signed=*/true};
    std::vector<Value> a(static_cast<std::size_t>(ctx_.lanes));
    std::vector<Value> w(static_cast<std::size_t>(ctx_.lanes));
    for (std::int64_t co = 0; co < layer.out.c; ++co) {
      Wide acc = 0;
      for (std::int64_t base = 0; base < ci; base += ctx_.lanes) {
        const std::int64_t n = std::min<std::int64_t>(ctx_.lanes, ci - base);
        for (std::int64_t i = 0; i < n; ++i) {
          a[static_cast<std::size_t>(i)] = input.flat(base + i);
          w[static_cast<std::size_t>(i)] = weights.flat(co * ci + base + i);
        }
        arch::Sip chunk_sip(sip_cfg);
        acc += arch::sip_inner_product(
            chunk_sip,
            std::span<const Value>(a.data(), static_cast<std::size_t>(n)),
            std::span<const Value>(w.data(), static_cast<std::size_t>(n)),
            kBasePrecision, weight_precision);
      }
      wide.set_flat(co, acc);
    }
  }

  void run_fc_batch(const nn::Layer& layer,
                    std::span<const nn::Tensor* const> inputs,
                    const nn::Tensor& weights, int weight_precision,
                    std::span<nn::WideTensor* const> wides) override {
    LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      run_fc(layer, *inputs[r], weights, weight_precision, *wides[r]);
    }
  }

 private:
  /// Gather the window values of one (group, window) at inner positions
  /// [base, base+lanes) with zero padding, matching im2col order.
  static std::int64_t gather_window_chunk(const nn::Layer& layer,
                                          const nn::Tensor& input,
                                          std::int64_t g, std::int64_t window,
                                          std::int64_t base, int lanes,
                                          Value* out) {
    const std::int64_t end =
        std::min<std::int64_t>(base + lanes, layer.inner_length());
    for (std::int64_t f = base; f < end; ++f) {
      const std::int64_t idx = nn::im2col_input_index(layer, g, window, f);
      out[f - base] = idx < 0 ? Value{0} : input.flat(idx);
    }
    return end - base;
  }

  /// One (filter-block, window-block) tile pass over all input chunks.
  std::uint64_t conv_block(const nn::Layer& layer, const nn::Tensor& input,
                           const nn::Tensor& weights,
                           const BitsliceEngine::SliceSpec& spec,
                           std::int64_t g, std::int64_t fb, std::int64_t wb,
                           nn::WideTensor& wide, double& streamed_pa,
                           std::int64_t& chunks) {
    const std::int64_t cog = layer.group_out_channels();
    const std::int64_t inner = layer.inner_length();
    const std::int64_t windows = layer.windows();
    const std::int64_t row0 = fb * ctx_.rows;
    const std::int64_t rows_used = std::min<std::int64_t>(ctx_.rows, cog - row0);
    const std::int64_t col0 = wb * ctx_.cols;
    const std::int64_t cols_used =
        std::min<std::int64_t>(ctx_.cols, windows - col0);

    // One SIP per (row, col); ORs accumulate across input chunks.
    const arch::SipConfig sip_cfg{ctx_.lanes, /*act_signed=*/false,
                                  /*weight_signed=*/true};
    std::vector<arch::Sip> sips(static_cast<std::size_t>(rows_used) *
                                    static_cast<std::size_t>(cols_used),
                                arch::Sip(sip_cfg));
    for (auto& sip : sips) sip.begin_output();

    std::uint64_t block_cycles = 0;
    const std::int64_t ic_count =
        ceil_div(inner, static_cast<std::int64_t>(ctx_.lanes));
    const auto lanes = static_cast<std::size_t>(ctx_.lanes);
    for (std::int64_t ic = 0; ic < ic_count; ++ic) {
      act_spans_.clear();
      std::int64_t n = 0;
      for (std::int64_t c = 0; c < cols_used; ++c) {
        Value* dst = act_buf_.data() + static_cast<std::size_t>(c) * lanes;
        n = gather_window_chunk(layer, input, g, col0 + c, ic * ctx_.lanes,
                                ctx_.lanes, dst);
        act_spans_.emplace_back(dst, static_cast<std::size_t>(n));
      }
      dispatcher_.stream_activations(act_spans_, spec.act_precision,
                                     spec.dynamic, act_stream_);
      const arch::ActivationStream& acts = act_stream_;

      weight_spans_.clear();
      for (std::int64_t r = 0; r < rows_used; ++r) {
        Value* dst = weight_buf_.data() + static_cast<std::size_t>(r) * lanes;
        const std::int64_t co = g * cog + row0 + r;
        const std::int64_t base = co * inner + ic * ctx_.lanes;
        for (std::int64_t l = 0; l < n; ++l) dst[l] = weights.flat(base + l);
        weight_spans_.emplace_back(dst, static_cast<std::size_t>(n));
      }
      dispatcher_.stream_weights(weight_spans_, spec.weight_precision,
                                 weight_stream_);
      const arch::WeightStream& wbits = weight_stream_;

      streamed_pa += acts.precision;
      ++chunks;
      for (int bit = 0; bit < wbits.precision; ++bit) {
        const bool msb = bit == wbits.precision - 1;
        for (std::int64_t r = 0; r < rows_used; ++r) {
          const std::uint32_t wr = wbits.wr_word(bit, static_cast<int>(r));
          for (std::int64_t c = 0; c < cols_used; ++c) {
            sips[static_cast<std::size_t>(r * cols_used + c)].begin_weight_pass(
                wr, bit, msb);
          }
        }
        for (int step = 0; step < acts.precision; ++step) {
          for (std::int64_t c = 0; c < cols_used; ++c) {
            const std::uint32_t bits = acts.lanes(step, static_cast<int>(c));
            for (std::int64_t r = 0; r < rows_used; ++r) {
              sips[static_cast<std::size_t>(r * cols_used + c)].cycle(
                  bits, /*is_act_msb=*/false);  // conv acts are unsigned
            }
          }
          ++block_cycles;
        }
        for (auto& sip : sips) sip.end_weight_pass();
      }
    }

    for (std::int64_t r = 0; r < rows_used; ++r) {
      for (std::int64_t c = 0; c < cols_used; ++c) {
        const std::int64_t co = g * cog + row0 + r;
        const std::int64_t window = col0 + c;
        wide.at3(co, window / layer.out.w, window % layer.out.w) =
            sips[static_cast<std::size_t>(r * cols_used + c)].output();
      }
    }
    return block_cycles;
  }

  BackendContext ctx_;
  arch::Dispatcher dispatcher_;
  std::vector<Value> act_buf_, weight_buf_;
  std::vector<std::span<const Value>> act_spans_, weight_spans_;
  arch::ActivationStream act_stream_;
  arch::WeightStream weight_stream_;
};

// ---------------------------------------------------------------------------
// Bit-sliced backend: thin adapter over BitsliceEngine.

class BitsliceBackend final : public FunctionalBackend {
 public:
  explicit BitsliceBackend(const BackendContext& ctx)
      : engine_({.rows = ctx.rows,
                 .cols = ctx.cols,
                 .lanes = ctx.lanes,
                 .jobs = ctx.jobs}) {}

  BitsliceEngine::ConvStats run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
      const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
      std::span<nn::WideTensor* const> wides) override {
    return engine_.run_conv_batch(layer, inputs, weights, spec, wides);
  }

  void run_fc(const nn::Layer& layer, const nn::Tensor& input,
              const nn::Tensor& weights, int weight_precision,
              nn::WideTensor& wide) override {
    engine_.run_fc(layer, input, weights, weight_precision, wide);
  }

  void run_fc_batch(const nn::Layer& layer,
                    std::span<const nn::Tensor* const> inputs,
                    const nn::Tensor& weights, int weight_precision,
                    std::span<nn::WideTensor* const> wides) override {
    engine_.run_fc_batch(layer, inputs, weights, weight_precision, wides);
  }

 private:
  BitsliceEngine engine_;
};

// ---------------------------------------------------------------------------
// LUT backends: the T-MAC-style table kernel, in the L1-tiled and the
// build-everything-up-front ("outer") variants.

class LutBackend final : public FunctionalBackend {
 public:
  LutBackend(const BackendContext& ctx, int group_tile)
      : engine_({.rows = ctx.rows,
                 .cols = ctx.cols,
                 .lanes = ctx.lanes,
                 .jobs = ctx.jobs,
                 .group_tile = group_tile}) {}

  BitsliceEngine::ConvStats run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
      const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
      std::span<nn::WideTensor* const> wides) override {
    return engine_.run_conv_batch(layer, inputs, weights, spec, wides);
  }

  void run_fc(const nn::Layer& layer, const nn::Tensor& input,
              const nn::Tensor& weights, int weight_precision,
              nn::WideTensor& wide) override {
    engine_.run_fc(layer, input, weights, weight_precision, wide);
  }

  void run_fc_batch(const nn::Layer& layer,
                    std::span<const nn::Tensor* const> inputs,
                    const nn::Tensor& weights, int weight_precision,
                    std::span<nn::WideTensor* const> wides) override {
    engine_.run_fc_batch(layer, inputs, weights, weight_precision, wides);
  }

 private:
  LutEngine engine_;
};

bool scalar_supports(const BackendContext&) { return true; }

std::unique_ptr<FunctionalBackend> make_scalar(const BackendContext& ctx) {
  return std::make_unique<ScalarBackend>(ctx);
}

bool grid_supports(const BackendContext& ctx) {
  return BitsliceEngine::supports({.rows = ctx.rows,
                                   .cols = ctx.cols,
                                   .lanes = ctx.lanes,
                                   .jobs = ctx.jobs});
}

std::unique_ptr<FunctionalBackend> make_bitslice(const BackendContext& ctx) {
  return std::make_unique<BitsliceBackend>(ctx);
}

std::unique_ptr<FunctionalBackend> make_lut(const BackendContext& ctx) {
  return std::make_unique<LutBackend>(ctx, /*group_tile=*/64);
}

std::unique_ptr<FunctionalBackend> make_lut_outer(const BackendContext& ctx) {
  return std::make_unique<LutBackend>(ctx, /*group_tile=*/0);
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry

struct BackendRegistry::Impl {
  mutable std::mutex mu;
  std::deque<BackendInfo> entries;  // deque: stable addresses for find()
};

BackendRegistry::BackendRegistry() : impl_(new Impl) {
  impl_->entries.push_back(
      {.name = "scalar", .tunable = false, .supports = scalar_supports,
       .make = make_scalar});
  impl_->entries.push_back(
      {.name = "bitslice", .tunable = true, .supports = grid_supports,
       .make = make_bitslice});
  impl_->entries.push_back(
      {.name = "lut", .tunable = true, .supports = grid_supports,
       .make = make_lut});
  impl_->entries.push_back(
      {.name = "lut-outer", .tunable = true, .supports = grid_supports,
       .make = make_lut_outer});
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* reg = new BackendRegistry;  // leaked, never torn down
  return *reg;
}

void BackendRegistry::register_backend(BackendInfo info) {
  LOOM_EXPECTS(!info.name.empty() && info.supports != nullptr &&
               info.make != nullptr);
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (BackendInfo& e : impl_->entries) {
    if (e.name == info.name) {
      e = std::move(info);
      return;
    }
  }
  impl_->entries.push_back(std::move(info));
}

const BackendInfo* BackendRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const BackendInfo& e : impl_->entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->entries.size());
  for (const BackendInfo& e : impl_->entries) out.push_back(e.name);
  return out;
}

std::vector<std::string> BackendRegistry::tunable_names(
    const BackendContext& ctx) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  for (const BackendInfo& e : impl_->entries) {
    if (e.tunable && e.supports(ctx)) out.push_back(e.name);
  }
  return out;
}

std::string resolve_backend_name(std::string_view requested, bool force_scalar,
                                 const BackendContext& ctx) {
  if (force_scalar || functional_scalar_env()) return "scalar";
  std::string name(requested);
  if (name.empty()) {
    const char* env = std::getenv("LOOM_FUNCTIONAL_BACKEND");
    if (env != nullptr && env[0] != '\0') name = env;
  }
  if (name.empty()) name = "auto";
  if (name == "auto") {
    return BackendRegistry::instance().tunable_names(ctx).empty() ? "scalar"
                                                                  : "auto";
  }
  const BackendInfo* info = BackendRegistry::instance().find(name);
  if (info == nullptr) {
    throw ConfigError("unknown functional backend: " + name);
  }
  if (!info->supports(ctx)) return "scalar";  // historical cols>64 fallback
  return name;
}

// ---------------------------------------------------------------------------
// TuneKey

std::string TuneKey::to_string() const {
  std::ostringstream os;
  os << (kind == 0 ? "conv" : "fc") << " in=" << in_c << "x" << in_h << "x"
     << in_w << " out_c=" << out_c;
  if (kind == 0) {
    os << " k=" << kernel_h << "x" << kernel_w << " s=" << stride
       << " p=" << pad << " g=" << groups;
  }
  os << " pa=" << pa << " pw=" << pw;
  if (act_signed) os << " signed";
  if (dynamic) os << " dyn";
  os << " batch=" << batch << " grid=" << rows << "x" << cols << "x" << lanes
     << " jobs=" << jobs;
  return os.str();
}

TuneKey conv_tune_key(const nn::Layer& layer,
                      const BitsliceEngine::SliceSpec& spec, int batch,
                      const BackendContext& ctx) {
  TuneKey k;
  k.kind = 0;
  k.in_c = layer.in.c;
  k.in_h = layer.in.h;
  k.in_w = layer.in.w;
  k.out_c = layer.out.c;
  k.kernel_h = layer.kernel_h;
  k.kernel_w = layer.kernel_w;
  k.stride = layer.stride;
  k.pad = layer.pad;
  k.groups = layer.groups;
  k.pa = spec.act_precision;
  k.pw = spec.weight_precision;
  k.act_signed = spec.act_signed;
  k.dynamic = spec.dynamic;
  k.batch = batch;
  k.rows = ctx.rows;
  k.cols = ctx.cols;
  k.lanes = ctx.lanes;
  k.jobs = ctx.jobs;
  return k;
}

TuneKey fc_tune_key(const nn::Layer& layer, int weight_precision, int batch,
                    const BackendContext& ctx) {
  TuneKey k;
  k.kind = 1;
  k.in_c = layer.in.elements();
  k.in_h = 1;
  k.in_w = 1;
  k.out_c = layer.out.c;
  k.pa = kBasePrecision;
  k.pw = weight_precision;
  k.act_signed = true;
  k.batch = batch;
  k.rows = ctx.rows;
  k.cols = ctx.cols;
  k.lanes = ctx.lanes;
  k.jobs = ctx.jobs;
  return k;
}

// ---------------------------------------------------------------------------
// Autotuner

struct BackendAutotuner::Impl {
  struct Cell {
    std::vector<std::string> candidates;
    std::map<std::string, std::uint64_t> samples;  ///< best (min) ns seen
    std::set<std::string> claimed;  ///< handed out, measurement in flight
    std::string winner;
    bool pinned = false;
    bool from_cache = false;  ///< winner installed from a persistent cache
  };

  mutable std::mutex mu;
  std::map<TuneKey, Cell> cells;
  std::string pin;
  std::function<std::uint64_t(const TuneKey&, const std::string&)> override_fn;
  CacheStats cache_stats;

  static void read_pin(std::string& pin) {
    const char* v = std::getenv("LOOM_AUTOTUNE_PIN");
    pin = (v != nullptr) ? v : "";
  }

  /// All candidates sampled → the argmin (candidate order breaks ties).
  static void maybe_decide(Cell& cell) {
    if (!cell.winner.empty()) return;
    std::uint64_t best = 0;
    const std::string* best_name = nullptr;
    for (const std::string& c : cell.candidates) {
      auto it = cell.samples.find(c);
      if (it == cell.samples.end()) return;  // still exploring
      if (best_name == nullptr || it->second < best) {
        best = it->second;
        best_name = &c;
      }
    }
    if (best_name != nullptr) cell.winner = *best_name;
  }
};

BackendAutotuner::BackendAutotuner() : impl_(new Impl) {
  Impl::read_pin(impl_->pin);
}

BackendAutotuner& BackendAutotuner::instance() {
  static BackendAutotuner* tuner = new BackendAutotuner;  // leaked singleton
  return *tuner;
}

std::string BackendAutotuner::choose(const TuneKey& key,
                                     std::span<const std::string> candidates) {
  LOOM_EXPECTS(!candidates.empty());
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Cell& cell = impl_->cells[key];
  if (cell.candidates.empty()) {
    cell.candidates.assign(candidates.begin(), candidates.end());
  }
  if (cell.winner.empty() && !impl_->pin.empty()) {
    if (std::find(cell.candidates.begin(), cell.candidates.end(),
                  impl_->pin) != cell.candidates.end()) {
      cell.winner = impl_->pin;
      cell.pinned = true;
    }
  }
  if (cell.winner.empty() && impl_->override_fn) {
    for (const std::string& c : cell.candidates) {
      cell.samples[c] = impl_->override_fn(key, c);
    }
    Impl::maybe_decide(cell);
  }
  if (!cell.winner.empty()) {
    ++(cell.from_cache ? impl_->cache_stats.hits : impl_->cache_stats.misses);
    return cell.winner;
  }
  ++impl_->cache_stats.misses;
  // Exploration: hand out the next unsampled, unclaimed candidate so its
  // timing piggybacks on a real run. A claim that never records (the run
  // threw) simply falls through to the argmin-or-first fallback below.
  for (const std::string& c : cell.candidates) {
    if (cell.samples.count(c) == 0 && cell.claimed.count(c) == 0) {
      cell.claimed.insert(c);
      return c;
    }
  }
  if (!cell.samples.empty()) {
    std::uint64_t best = 0;
    const std::string* best_name = nullptr;
    for (const std::string& c : cell.candidates) {
      auto it = cell.samples.find(c);
      if (it != cell.samples.end() &&
          (best_name == nullptr || it->second < best)) {
        best = it->second;
        best_name = &c;
      }
    }
    if (best_name != nullptr) return *best_name;
  }
  return cell.candidates.front();
}

void BackendAutotuner::record(const TuneKey& key, std::string_view backend,
                              std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->cells.find(key);
  if (it == impl_->cells.end()) return;
  Impl::Cell& cell = it->second;
  const std::string name(backend);
  cell.claimed.erase(name);
  if (cell.winner.empty()) ++impl_->cache_stats.explore_records;
  auto [sit, inserted] = cell.samples.try_emplace(name, ns);
  if (!inserted) sit->second = std::min(sit->second, ns);
  Impl::maybe_decide(cell);
}

std::vector<BackendAutotuner::Decision> BackendAutotuner::decisions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<Decision> out;
  out.reserve(impl_->cells.size());
  for (const auto& [key, cell] : impl_->cells) {  // map: key-sorted
    Decision d;
    d.key = key;
    d.winner = cell.winner;
    d.pinned = cell.pinned;
    for (const std::string& c : cell.candidates) {
      auto it = cell.samples.find(c);
      if (it != cell.samples.end()) d.samples.push_back({c, it->second});
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::size_t BackendAutotuner::install(std::span<const Decision> decisions) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->pin.empty()) return 0;  // a pin outranks any persisted winner
  std::size_t installed = 0;
  for (const Decision& d : decisions) {
    if (d.winner.empty() || d.samples.empty()) continue;
    Impl::Cell cell;
    bool winner_sampled = false;
    for (const Sample& s : d.samples) {
      cell.candidates.push_back(s.backend);
      cell.samples[s.backend] = s.ns;
      winner_sampled |= s.backend == d.winner;
    }
    if (!winner_sampled) continue;
    cell.winner = d.winner;
    cell.from_cache = true;
    // In-process state wins: a cell this process already started exploring
    // (or decided) is not overwritten by the cache.
    if (impl_->cells.try_emplace(d.key, std::move(cell)).second) {
      ++installed;
      ++impl_->cache_stats.loaded_cells;
    }
  }
  return installed;
}

BackendAutotuner::CacheStats BackendAutotuner::cache_stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->cache_stats;
}

void BackendAutotuner::set_timing_override_for_test(
    std::function<std::uint64_t(const TuneKey&, const std::string&)> fn) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->override_fn = std::move(fn);
}

void BackendAutotuner::reset_for_test() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->cells.clear();
  impl_->cache_stats = CacheStats{};
  Impl::read_pin(impl_->pin);
}

}  // namespace loom::sim
