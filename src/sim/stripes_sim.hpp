// Cycle model of Stripes [7] and DStripes [5+7]: bit-serial activations
// against bit-parallel 16-bit weights; 16 concurrent windows per filter so
// filter parallelism matches DPNN's. Convolutional chunks cost Pa cycles
// (the per-group detected Pa for DStripes); fully-connected layers gain
// nothing over the baseline because weights stay bit-parallel.
#pragma once

#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace loom::sim {

class StripesSimulator final : public Simulator {
 public:
  StripesSimulator(const arch::StripesConfig& cfg, const SimOptions& opts);

  [[nodiscard]] std::string name() const override { return cfg_.to_string(); }
  [[nodiscard]] RunResult run(NetworkWorkload& workload) override;

  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           engine::TimingCore& core) const;
  [[nodiscard]] LayerResult simulate_layer(LayerWorkload& lw,
                                           mem::MemorySystem& mem) const;

 private:
  [[nodiscard]] LayerResult simulate_compute(LayerWorkload& lw) const;
  void apply_memory(LayerResult& r, LayerWorkload& lw,
                    engine::TimingCore& core) const;

  arch::StripesConfig cfg_;
  SimOptions opts_;
};

}  // namespace loom::sim
