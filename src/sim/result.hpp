// Simulation results: per-layer cycle/activity records and whole-network
// aggregation with energy evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "mem/timeline.hpp"
#include "nn/layer.hpp"

namespace loom::sim {

struct LayerResult {
  std::string name;
  nn::LayerKind kind = nn::LayerKind::kConv;

  std::uint64_t compute_cycles = 0;
  std::uint64_t stall_cycles = 0;  ///< off-chip bandwidth stalls (Figure 5 mode)
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return compute_cycles + stall_cycles;
  }

  std::int64_t macs = 0;
  double utilization = 1.0;  ///< busy compute slots / provisioned slots

  /// Average effective precisions the layer actually ran with.
  double mean_act_precision = 0.0;
  double mean_weight_precision = 0.0;

  energy::Activity activity;

  /// Tile/traffic breakdown from the shared timing core (constrained mode
  /// only; all-zero in the §4.3 unconstrained setup).
  mem::MemoryTrace memory;
};

struct RunResult {
  std::string arch_name;
  std::string network;
  int bits_per_cycle = 1;  ///< for the energy model's SIP lane energy
  energy::AreaBreakdown area;
  std::vector<LayerResult> layers;

  enum class Filter { kAll, kConv, kFc };

  [[nodiscard]] std::uint64_t cycles(Filter f = Filter::kAll) const noexcept;
  [[nodiscard]] std::uint64_t stall_cycles(Filter f = Filter::kAll) const noexcept;
  [[nodiscard]] std::int64_t macs(Filter f = Filter::kAll) const noexcept;
  [[nodiscard]] energy::Activity activity(Filter f = Filter::kAll) const noexcept;

  /// Total energy (pJ) under the given coefficients; leakage uses the
  /// architecture's total area.
  [[nodiscard]] double energy_pj(
      Filter f = Filter::kAll,
      const energy::EnergyCoefficients& coeffs =
          energy::default_energy_coefficients()) const noexcept;

  /// Frames per second at the 1 GHz clock.
  [[nodiscard]] double fps() const noexcept;

  /// Total off-chip traffic in bits.
  [[nodiscard]] std::uint64_t offchip_bits() const noexcept;
};

/// Speedup / relative energy efficiency of `arch` vs `baseline` over a
/// layer-kind filter (the paper's Perf and Eff columns).
[[nodiscard]] double speedup_vs(const RunResult& arch, const RunResult& baseline,
                                RunResult::Filter f);
[[nodiscard]] double efficiency_vs(const RunResult& arch, const RunResult& baseline,
                                   RunResult::Filter f);

}  // namespace loom::sim
