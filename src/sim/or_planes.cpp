#include "sim/or_planes.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/im2col.hpp"

namespace loom::sim {

ActOrPlanes::ActOrPlanes(const nn::Layer& layer, int lanes)
    : in_h_(layer.in.h),
      in_w_(layer.in.w),
      out_h_(layer.out.h),
      out_w_(layer.out.w),
      kernel_h_(layer.kernel_h),
      kernel_w_(layer.kernel_w),
      stride_(layer.stride),
      pad_(layer.pad),
      groups_(layer.groups),
      group_in_channels_(layer.group_in_channels()),
      inner_(layer.inner_length()),
      windows_(layer.windows()),
      ic_count_(ceil_div(layer.inner_length(), lanes)),
      lanes_(lanes) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(lanes >= 1);
}

void ActOrPlanes::build_row(const Value* input, std::int64_t g,
                            std::int64_t ic, std::uint16_t* row,
                            bool zero_row) const {
  if (zero_row) std::fill(row, row + windows_, std::uint16_t{0});
  const std::int64_t f_end = std::min(inner_, (ic + 1) * lanes_);
  for (std::int64_t f = ic * lanes_; f < f_end; ++f) {
    const std::int64_t ci = f / (kernel_h_ * kernel_w_);
    const std::int64_t rem = f % (kernel_h_ * kernel_w_);
    const std::int64_t ky = rem / kernel_w_;
    const std::int64_t kx = rem % kernel_w_;
    const Value* channel =
        input + (g * group_in_channels_ + ci) * in_h_ * in_w_;
    // For this kernel position, windows reading inside the input form a
    // contiguous [ox_lo, ox_hi) range per output row; everything outside
    // reads zero padding and contributes nothing to the OR.
    const std::int64_t ox_lo =
        pad_ > kx ? (pad_ - kx + stride_ - 1) / stride_ : 0;
    const std::int64_t last_ix = in_w_ - 1 + pad_ - kx;
    const std::int64_t ox_hi =
        last_ix < 0 ? 0 : std::min(out_w_, last_ix / stride_ + 1);
    if (ox_lo >= ox_hi) continue;
    for (std::int64_t oy = 0; oy < out_h_; ++oy) {
      const std::int64_t iy = oy * stride_ + ky - pad_;
      if (iy < 0 || iy >= in_h_) continue;
      const Value* in_row = channel + iy * in_w_;
      std::uint16_t* out_row = row + oy * out_w_;
      // ox >= ox_lo keeps the index non-negative, so the offset is only
      // ever applied inside the row (no before-begin pointer is formed).
      for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
        out_row[ox] |=
            static_cast<std::uint16_t>(in_row[ox * stride_ + kx - pad_]);
      }
    }
  }
}

void ActOrPlanes::build(const nn::Tensor& input) {
  const std::int64_t rows_total = groups_ * ic_count_;
  // A fresh resize already value-initializes the matrix; only a rebuild
  // over an existing buffer needs the per-row zero pass in build_row.
  const bool zero_rows = !masks_.empty();
  masks_.resize(static_cast<std::size_t>(rows_total * windows_));
  const Value* data = input.data().data();

  ThreadPool& pool = shared_pool();
  const std::size_t stripes =
      std::min<std::size_t>(pool.size(), static_cast<std::size_t>(rows_total));
  if (stripes <= 1) {
    for (std::int64_t r = 0; r < rows_total; ++r) {
      build_row(data, r / ic_count_, r % ic_count_,
                masks_.data() + static_cast<std::size_t>(r * windows_), zero_rows);
    }
    return;
  }
  const std::int64_t per_stripe = ceil_div(rows_total, static_cast<std::int64_t>(stripes));
  pool.parallel_for(stripes, [&](std::size_t s) {
    const std::int64_t begin = static_cast<std::int64_t>(s) * per_stripe;
    const std::int64_t end = std::min(rows_total, begin + per_stripe);
    for (std::int64_t r = begin; r < end; ++r) {
      build_row(data, r / ic_count_, r % ic_count_,
                masks_.data() + static_cast<std::size_t>(r * windows_), zero_rows);
    }
  });
}

CalibrationPlanes::CalibrationPlanes(const nn::Layer& layer, int lanes,
                                     int cols, int max_groups,
                                     const nn::SyntheticSource& draws) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  // The max-draw reduction only matches the OR scan for unsigned sources:
  // a signed value would sign-extend through the uint16 cast in the scan.
  LOOM_EXPECTS(!draws.spec().is_signed);
  const std::int64_t windows = layer.windows();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t wb_count = ceil_div(windows, cols);
  const std::int64_t ic_count = ceil_div(inner, lanes);
  const std::int64_t total =
      static_cast<std::int64_t>(layer.groups) * wb_count * ic_count;
  const std::int64_t stride = std::max<std::int64_t>(1, total / max_groups);

  group_max_draw_.reserve(static_cast<std::size_t>(total / stride + 1));
  for (std::int64_t t = 0; t < total; t += stride) {
    const std::int64_t g = t / (wb_count * ic_count);
    const std::int64_t rem = t % (wb_count * ic_count);
    const std::int64_t wb = rem / ic_count;
    const std::int64_t ic = rem % ic_count;
    const std::int64_t w_end = std::min((wb + 1) * cols, windows);
    const std::int64_t f_end = std::min((ic + 1) * lanes, inner);
    double max_draw = -1.0;
    for (std::int64_t w = wb * cols; w < w_end; ++w) {
      for (std::int64_t f = ic * lanes; f < f_end; ++f) {
        const std::int64_t idx = nn::im2col_input_index(layer, g, w, f);
        if (idx < 0) continue;  // zero padding
        max_draw = std::max(
            max_draw, draws.uniform_draw(static_cast<std::uint64_t>(idx)));
      }
    }
    group_max_draw_.push_back(max_draw);
  }
}

double CalibrationPlanes::mean_precision(const nn::SyntheticSource& src,
                                         int act_precision) const {
  // needed_bits(OR of a group) == needed_bits(group max): the OR and the
  // maximum share their most significant bit. The group max is the
  // magnitude of the maximum draw because the magnitude map is monotone.
  double sum = 0.0;
  for (const double d : group_max_draw_) {
    const auto mag =
        static_cast<std::uint16_t>(src.magnitude_for_draw(d));
    sum += std::min(needed_bits_unsigned(mag), act_precision);
  }
  return group_max_draw_.empty()
             ? 0.0
             : sum / static_cast<double>(group_max_draw_.size());
}

}  // namespace loom::sim
