// Shared memory-timing core for the three cycle simulators (§4.5 /
// Figure 5 constrained mode).
//
// Each simulator owns its compute model; what they previously *also* owned
// — three diverging copies of whole-layer DRAM accounting — lives here
// once. TimingCore builds a LayerTilePlan (mem/tile_plan) from the layer
// geometry and the architecture's storage precisions, prices every tile's
// fills on the LPDDR4 channel, and runs the double-buffered MemoryTimeline
// so compute and transfers overlap per tile. The simulator contributes one
// callback: the compute cycles of a (conv group, window range, filter
// range) block under its own cycle model. Tile quanta are chosen so the
// blocks sum *exactly* to the layer's unconstrained compute cycles — the
// constrained mode changes stalls and traffic, never compute.
#pragma once

#include <functional>

#include "mem/tile_plan.hpp"
#include "mem/timeline.hpp"
#include "sim/simulator.hpp"

namespace loom::sim::engine {

/// How one architecture lays the layer out in memory.
struct LayerStorage {
  int act_precision = kBasePrecision;  ///< input activations (AM / DRAM)
  bool act_dynamic = false;  ///< pack slabs at the detected per-block precision
  int weight_precision = kBasePrecision;
  bool weights_bit_packed = false;  ///< Loom's packed WM layout vs 16-bit rows
  /// Mean bits per weight under essential-plane packing (sparse weight
  /// skipping); 0 keeps the dense weight_precision layout. Forwarded to
  /// TilePlanRequest::weight_mean_plane_bits.
  double weight_mean_plane_bits = 0.0;
  int out_precision = kBasePrecision;

  /// Tile quanta matching the architecture's concurrency (see tile_plan).
  std::int64_t window_quantum = 16;
  std::int64_t filter_quantum = 16;
};

/// Compute cycles of one (conv group, window range, filter range) block
/// under the simulator's cycle model. Called once per block; weight-stream
/// chunks of a block split the result proportionally to their weights.
using BlockCompute = std::function<double(const mem::TileExtent&)>;

class TimingCore {
 public:
  /// Binds the core to a run's memory system; the timeline it owns spans
  /// all layers, so fills prefetch across layer boundaries.
  explicit TimingCore(mem::MemorySystem& mem) : mem_(mem) {}

  /// Apply constrained-memory timing to `r` (whose compute_cycles and
  /// activity the simulator already filled): builds the tile plan, runs
  /// the shared timeline and fills r.stall_cycles, r.memory and the DRAM
  /// traffic in r.activity. Off-chip traffic/stalls come only from here.
  void apply(LayerResult& r, LayerWorkload& lw, const LayerStorage& storage,
             const BlockCompute& block_compute);

  /// Drain-tail cycles past the final compute; the caller adds them to the
  /// last layer's stall so RunResult::cycles() covers the whole timeline.
  [[nodiscard]] std::uint64_t finish() { return timeline_.finish(); }

 private:
  mem::MemorySystem& mem_;
  mem::MemoryTimeline timeline_;
};

/// The §4.5 memory configuration for an architecture at `equiv_macs`, with
/// the SimOptions capacity overrides and DRAM channel applied — shared by
/// the three simulators' run() methods.
[[nodiscard]] mem::MemorySystemConfig resolve_memory_config(
    int equiv_macs, bool bit_packed, const SimOptions& opts);

/// Close a run's timeline: any drain tail still on the channel past the
/// final compute is charged to the last layer so RunResult::cycles()
/// covers the whole execution. No-op on unconstrained runs.
void finish_run(RunResult& result, TimingCore& core);

}  // namespace loom::sim::engine
