#include "sim/functional.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "arch/tile.hpp"
#include "common/error.hpp"
#include "nn/im2col.hpp"
#include "sim/loom_sim.hpp"

namespace loom::sim {

namespace {

/// Output precision of weighted layer `i`: the next conv consumer's profile
/// Pa (an FC consumer, or no consumer, stores at base precision). Shared by
/// the solo and batched network walks so the propagation rule cannot drift
/// between them.
int consumer_out_bits(const nn::Network& net, std::size_t i) {
  for (std::size_t j = i + 1; j < net.size(); ++j) {
    if (net.layer(j).kind == nn::LayerKind::kConv) {
      return net.layer(j).act_precision;
    }
    if (net.layer(j).kind == nn::LayerKind::kFullyConnected) break;
  }
  return static_cast<int>(kBasePrecision);
}

/// Gather the window values of one (group, window) at inner positions
/// [base, base+lanes) with zero padding into `out`, matching the im2col
/// order the cycle model uses. Returns the number of values written.
std::int64_t gather_window_chunk(const nn::Layer& layer,
                                 const nn::Tensor& input, std::int64_t g,
                                 std::int64_t window, std::int64_t base,
                                 int lanes, Value* out) {
  const std::int64_t end =
      std::min<std::int64_t>(base + lanes, layer.inner_length());
  for (std::int64_t f = base; f < end; ++f) {
    const std::int64_t idx = nn::im2col_input_index(layer, g, window, f);
    out[f - base] = idx < 0 ? Value{0} : input.flat(idx);
  }
  return end - base;
}

/// Marshal a batch into the pointer views BitsliceEngine consumes.
void batch_ptrs(std::span<const nn::Tensor> inputs,
                std::vector<nn::WideTensor>& wides,
                std::vector<const nn::Tensor*>& in_ptrs,
                std::vector<nn::WideTensor*>& wide_ptrs) {
  in_ptrs.resize(inputs.size());
  wide_ptrs.resize(inputs.size());
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    in_ptrs[r] = &inputs[r];
    wide_ptrs[r] = &wides[r];
  }
}

/// Per-request requantization demux: each request picks its shift from its
/// own accumulators, exactly as a solo run would.
void requantize_batch(FunctionalBatchLayerRun& run, int out_bits, bool relu) {
  run.outputs.reserve(run.wides.size());
  run.requant_shifts.reserve(run.wides.size());
  for (const nn::WideTensor& wide : run.wides) {
    const int shift = nn::choose_requant_shift(wide, out_bits);
    run.requant_shifts.push_back(shift);
    run.outputs.push_back(nn::requantize(wide, shift, out_bits, relu));
  }
}

}  // namespace

bool functional_scalar_env() {
  const char* v = std::getenv("LOOM_FUNCTIONAL_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

FunctionalLoomEngine::FunctionalLoomEngine(FunctionalOptions opts)
    : opts_(opts), dispatcher_(opts.lanes) {
  LOOM_EXPECTS(opts.rows >= 1 && opts.cols >= 1);
  LOOM_EXPECTS(opts.lanes >= 1 && opts.lanes <= 32);
  const BitsliceEngine::Options bs{.rows = opts_.rows,
                                   .cols = opts_.cols,
                                   .lanes = opts_.lanes,
                                   .jobs = opts_.jobs};
  if (!opts_.force_scalar && !functional_scalar_env() &&
      BitsliceEngine::supports(bs)) {
    bitslice_.emplace(bs);
  }
}

std::uint64_t FunctionalLoomEngine::run_conv_block(
    const nn::Layer& layer, const nn::Tensor& input, const nn::Tensor& weights,
    std::int64_t g, std::int64_t fb, std::int64_t wb, nn::WideTensor& wide,
    double& streamed_pa, std::int64_t& chunks) {
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t row0 = fb * opts_.rows;
  const std::int64_t rows_used = std::min<std::int64_t>(opts_.rows, cog - row0);
  const std::int64_t col0 = wb * opts_.cols;
  const std::int64_t cols_used = std::min<std::int64_t>(opts_.cols, windows - col0);

  // One SIP per (row, col); ORs accumulate across input chunks.
  const arch::SipConfig sip_cfg{opts_.lanes, /*act_signed=*/false,
                                /*weight_signed=*/true};
  std::vector<arch::Sip> sips(
      static_cast<std::size_t>(rows_used) * static_cast<std::size_t>(cols_used),
      arch::Sip(sip_cfg));
  for (auto& sip : sips) sip.begin_output();

  std::uint64_t block_cycles = 0;
  const std::int64_t ic_count = ceil_div(inner, opts_.lanes);
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
    // Dispatcher: serialize the activation group (with dynamic detection)
    // and the weight rows for this chunk, reusing the engine scratch.
    act_spans_.clear();
    std::int64_t n = 0;
    for (std::int64_t c = 0; c < cols_used; ++c) {
      Value* dst = act_buf_.data() + static_cast<std::size_t>(c) * lanes;
      n = gather_window_chunk(layer, input, g, col0 + c, ic * opts_.lanes,
                              opts_.lanes, dst);
      act_spans_.emplace_back(dst, static_cast<std::size_t>(n));
    }
    dispatcher_.stream_activations(act_spans_, layer.act_precision,
                                   opts_.dynamic_act_precision, act_stream_);
    const arch::ActivationStream& acts = act_stream_;

    weight_spans_.clear();
    for (std::int64_t r = 0; r < rows_used; ++r) {
      Value* dst = weight_buf_.data() + static_cast<std::size_t>(r) * lanes;
      const std::int64_t co = g * cog + row0 + r;
      const std::int64_t base = co * inner + ic * opts_.lanes;
      for (std::int64_t l = 0; l < n; ++l) dst[l] = weights.flat(base + l);
      weight_spans_.emplace_back(dst, static_cast<std::size_t>(n));
    }
    dispatcher_.stream_weights(weight_spans_, layer.weight_precision,
                               weight_stream_);
    const arch::WeightStream& wbits = weight_stream_;

    // Drive the grid: for each weight-bit pass, all SIPs in a row load the
    // same WR word, then the activation bits stream MSB-first.
    streamed_pa += acts.precision;
    ++chunks;
    for (int bit = 0; bit < wbits.precision; ++bit) {
      const bool msb = bit == wbits.precision - 1;
      for (std::int64_t r = 0; r < rows_used; ++r) {
        const std::uint32_t wr = wbits.wr_word(bit, static_cast<int>(r));
        for (std::int64_t c = 0; c < cols_used; ++c) {
          sips[static_cast<std::size_t>(r * cols_used + c)].begin_weight_pass(
              wr, bit, msb);
        }
      }
      for (int step = 0; step < acts.precision; ++step) {
        for (std::int64_t c = 0; c < cols_used; ++c) {
          const std::uint32_t bits = acts.lanes(step, static_cast<int>(c));
          for (std::int64_t r = 0; r < rows_used; ++r) {
            sips[static_cast<std::size_t>(r * cols_used + c)].cycle(
                bits, /*is_act_msb=*/false);  // conv activations are unsigned
          }
        }
        ++block_cycles;
      }
      for (auto& sip : sips) sip.end_weight_pass();
    }
  }

  for (std::int64_t r = 0; r < rows_used; ++r) {
    for (std::int64_t c = 0; c < cols_used; ++c) {
      const std::int64_t co = g * cog + row0 + r;
      const std::int64_t window = col0 + c;
      wide.at3(co, window / layer.out.w, window % layer.out.w) =
          sips[static_cast<std::size_t>(r * cols_used + c)].output();
    }
  }
  return block_cycles;
}

FunctionalLayerRun FunctionalLoomEngine::run_conv(const nn::Layer& layer,
                                                  const nn::Tensor& input,
                                                  const nn::Tensor& weights,
                                                  int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, layer.out.h, layer.out.w});

  double streamed_pa = 0.0;
  std::int64_t chunks = 0;
  if (bitslice_) {
    const BitsliceEngine::SliceSpec spec{
        .act_precision = layer.act_precision,
        .weight_precision = layer.weight_precision,
        .act_signed = false,
        .dynamic = opts_.dynamic_act_precision};
    const BitsliceEngine::ConvStats st =
        bitslice_->run_conv(layer, input, weights, spec, run.wide);
    run.cycles = st.cycles;
    streamed_pa = st.streamed_pa;
    chunks = st.chunks;
    dispatcher_.note_streamed(st.act_bits_streamed, st.weight_bits_streamed,
                              st.detect_invocations, st.detect_values);
  } else {
    act_buf_.resize(static_cast<std::size_t>(opts_.cols) *
                    static_cast<std::size_t>(opts_.lanes));
    weight_buf_.resize(static_cast<std::size_t>(opts_.rows) *
                       static_cast<std::size_t>(opts_.lanes));
    const std::int64_t windows = layer.windows();
    const std::int64_t fb_count = ceil_div(layer.group_out_channels(), opts_.rows);
    const std::int64_t wb_count = ceil_div(windows, opts_.cols);
    for (std::int64_t g = 0; g < layer.groups; ++g) {
      for (std::int64_t fb = 0; fb < fb_count; ++fb) {
        for (std::int64_t wb = 0; wb < wb_count; ++wb) {
          run.cycles += run_conv_block(layer, input, weights, g, fb, wb,
                                       run.wide, streamed_pa, chunks);
        }
      }
    }
  }
  run.mean_streamed_precision =
      chunks ? streamed_pa / static_cast<double>(chunks) : 0.0;

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalLayerRun FunctionalLoomEngine::run_fc(const nn::Layer& layer,
                                                const nn::Tensor& input,
                                                const nn::Tensor& weights,
                                                int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, 1, 1});

  // FCLs stream the full 16 activation bits; each output maps to one SIP
  // whose OR accumulates over the input chunks.
  const std::int64_t ci = layer.in.elements();
  if (bitslice_) {
    bitslice_->run_fc(layer, input, weights, layer.weight_precision, run.wide);
  } else {
    const arch::SipConfig sip_cfg{opts_.lanes, /*act_signed=*/true,
                                  /*weight_signed=*/true};
    std::vector<Value> a(static_cast<std::size_t>(opts_.lanes));
    std::vector<Value> w(static_cast<std::size_t>(opts_.lanes));
    for (std::int64_t co = 0; co < layer.out.c; ++co) {
      Wide acc = 0;
      for (std::int64_t base = 0; base < ci; base += opts_.lanes) {
        const std::int64_t n = std::min<std::int64_t>(opts_.lanes, ci - base);
        for (std::int64_t i = 0; i < n; ++i) {
          a[static_cast<std::size_t>(i)] = input.flat(base + i);
          w[static_cast<std::size_t>(i)] = weights.flat(co * ci + base + i);
        }
        arch::Sip chunk_sip(sip_cfg);
        acc += arch::sip_inner_product(
            chunk_sip, std::span<const Value>(a.data(), static_cast<std::size_t>(n)),
            std::span<const Value>(w.data(), static_cast<std::size_t>(n)),
            kBasePrecision, layer.weight_precision);
      }
      run.wide.set_flat(co, acc);
    }
  }

  // Wall-clock cycles: the same cascade-aware model as the analytic
  // LoomSimulator::simulate_fc — best `ways` slicing plus the cols-1
  // column-stagger initiation — excluding the analytic kPipelineFill.
  const FcCascadePlan plan = plan_fc_cascade(
      opts_.rows, opts_.cols, opts_.lanes, layer.out.c, ci,
      static_cast<double>(layer.weight_precision),
      static_cast<double>(kBasePrecision), opts_.cascading);
  run.cycles = static_cast<std::uint64_t>(
      std::llround(plan.cycles + static_cast<double>(opts_.cols - 1)));
  run.mean_streamed_precision = kBasePrecision;

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalBatchLayerRun FunctionalLoomEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty());
  FunctionalBatchLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  const std::size_t batch = inputs.size();
  run.wides.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    run.wides.emplace_back(nn::Shape{layer.out.c, layer.out.h, layer.out.w});
  }

  if (bitslice_) {
    std::vector<const nn::Tensor*> in_ptrs;
    std::vector<nn::WideTensor*> wide_ptrs;
    batch_ptrs(inputs, run.wides, in_ptrs, wide_ptrs);
    const BitsliceEngine::SliceSpec spec{
        .act_precision = layer.act_precision,
        .weight_precision = layer.weight_precision,
        .act_signed = false,
        .dynamic = opts_.dynamic_act_precision};
    const BitsliceEngine::ConvStats st =
        bitslice_->run_conv_batch(layer, in_ptrs, weights, spec, wide_ptrs);
    run.cycles = st.cycles;
    run.mean_streamed_precision =
        st.chunks ? st.streamed_pa / static_cast<double>(st.chunks) : 0.0;
    dispatcher_.note_streamed(st.act_bits_streamed, st.weight_bits_streamed,
                              st.detect_invocations, st.detect_values);
    requantize_batch(run, out_bits, opts_.relu);
  } else {
    // Scalar oracle: a batch *is* N solo runs — the semantics the lane-packed
    // path is pinned against. Requests have identical chunk geometry, so the
    // plain mean over requests equals the chunk-weighted mean. The solo runs
    // already requantized; keep their shifts and outputs.
    double mean_sum = 0.0;
    for (std::size_t r = 0; r < batch; ++r) {
      FunctionalLayerRun lr = run_conv(layer, inputs[r], weights, out_bits);
      run.cycles += lr.cycles;
      mean_sum += lr.mean_streamed_precision;
      run.wides[r] = std::move(lr.wide);
      run.requant_shifts.push_back(lr.requant_shift);
      run.outputs.push_back(std::move(lr.output));
    }
    run.mean_streamed_precision = mean_sum / static_cast<double>(batch);
  }
  return run;
}

FunctionalBatchLayerRun FunctionalLoomEngine::run_fc_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(!inputs.empty());
  FunctionalBatchLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  const std::size_t batch = inputs.size();
  run.wides.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    run.wides.emplace_back(nn::Shape{layer.out.c, 1, 1});
  }

  if (bitslice_) {
    std::vector<const nn::Tensor*> in_ptrs;
    std::vector<nn::WideTensor*> wide_ptrs;
    batch_ptrs(inputs, run.wides, in_ptrs, wide_ptrs);
    bitslice_->run_fc_batch(layer, in_ptrs, weights, layer.weight_precision,
                            wide_ptrs);
    requantize_batch(run, out_bits, opts_.relu);
  } else {
    for (std::size_t r = 0; r < batch; ++r) {
      FunctionalLayerRun lr = run_fc(layer, inputs[r], weights, out_bits);
      run.wides[r] = std::move(lr.wide);
      run.requant_shifts.push_back(lr.requant_shift);
      run.outputs.push_back(std::move(lr.output));
    }
  }

  // FC grid cycles have no batch dimension in the cascade model: every image
  // streams its own full-precision activations, so the batch costs N solo
  // passes. The request packing above is a software-throughput win only.
  const std::int64_t ci = layer.in.elements();
  const FcCascadePlan plan = plan_fc_cascade(
      opts_.rows, opts_.cols, opts_.lanes, layer.out.c, ci,
      static_cast<double>(layer.weight_precision),
      static_cast<double>(kBasePrecision), opts_.cascading);
  run.cycles = static_cast<std::uint64_t>(std::llround(
                   plan.cycles + static_cast<double>(opts_.cols - 1))) *
               static_cast<std::uint64_t>(batch);
  run.mean_streamed_precision = kBasePrecision;
  return run;
}

FunctionalBatchNetworkRun FunctionalLoomEngine::run_network_batch(
    const nn::Network& net, std::span<const nn::Tensor> inputs,
    std::span<const nn::Tensor> weights) {
  LOOM_EXPECTS(!inputs.empty());
  if (opts_.pre_run_hook) opts_.pre_run_hook();
  FunctionalBatchNetworkRun run;
  std::vector<nn::Tensor> current(inputs.begin(), inputs.end());
  std::size_t weight_index = 0;

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind) {
      case nn::LayerKind::kConv:
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalBatchLayerRun lr =
            layer.kind == nn::LayerKind::kConv
                ? run_conv_batch(layer, current, weights[weight_index++],
                                 consumer_out_bits(net, i))
                : run_fc_batch(layer, current, weights[weight_index++],
                               consumer_out_bits(net, i));
        current = lr.outputs;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kPool: {
        for (nn::Tensor& t : current) t = nn::pool_forward(t, layer);
        break;
      }
    }
  }
  run.outputs = std::move(current);
  LOOM_ENSURES(weight_index == weights.size());
  return run;
}

FunctionalNetworkRun FunctionalLoomEngine::run_network(
    const nn::Network& net, const nn::Tensor& input,
    std::span<const nn::Tensor> weights) {
  if (opts_.pre_run_hook) opts_.pre_run_hook();
  FunctionalNetworkRun run;
  nn::Tensor current = input;
  std::size_t weight_index = 0;

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind) {
      case nn::LayerKind::kConv: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr = run_conv(layer, current,
                                         weights[weight_index++],
                                         consumer_out_bits(net, i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr = run_fc(layer, current, weights[weight_index++],
                                       consumer_out_bits(net, i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kPool: {
        current = nn::pool_forward(current, layer);
        break;
      }
    }
  }
  run.output = current;
  LOOM_ENSURES(weight_index == weights.size());
  return run;
}

}  // namespace loom::sim
