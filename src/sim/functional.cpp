#include "sim/functional.hpp"

#include <algorithm>

#include "arch/tile.hpp"
#include "common/error.hpp"

namespace loom::sim {

namespace {

/// Gather the window values of one (group, window) at inner positions
/// [base, base+lanes) with zero padding, matching the im2col order the
/// cycle model uses.
std::vector<Value> gather_window_chunk(const nn::Layer& layer,
                                       const nn::Tensor& input, std::int64_t g,
                                       std::int64_t window, std::int64_t base,
                                       int lanes) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(lanes));
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  const std::int64_t inner = layer.inner_length();
  const std::int64_t oy = window / layer.out.w;
  const std::int64_t ox = window % layer.out.w;
  for (std::int64_t f = base; f < std::min<std::int64_t>(base + lanes, inner); ++f) {
    const std::int64_t ci = f / (kh * kw);
    const std::int64_t rem = f % (kh * kw);
    const std::int64_t iy = oy * layer.stride + rem / kw - layer.pad;
    const std::int64_t ix = ox * layer.stride + rem % kw - layer.pad;
    if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) {
      out.push_back(0);
    } else {
      out.push_back(input.at3(g * layer.group_in_channels() + ci, iy, ix));
    }
  }
  return out;
}

}  // namespace

FunctionalLoomEngine::FunctionalLoomEngine(FunctionalOptions opts)
    : opts_(opts), dispatcher_(opts.lanes) {
  LOOM_EXPECTS(opts.rows >= 1 && opts.cols >= 1);
  LOOM_EXPECTS(opts.lanes >= 1 && opts.lanes <= 32);
}

std::uint64_t FunctionalLoomEngine::run_conv_block(
    const nn::Layer& layer, const nn::Tensor& input, const nn::Tensor& weights,
    std::int64_t g, std::int64_t fb, std::int64_t wb, nn::WideTensor& wide,
    double& streamed_pa, std::int64_t& chunks) {
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t row0 = fb * opts_.rows;
  const std::int64_t rows_used = std::min<std::int64_t>(opts_.rows, cog - row0);
  const std::int64_t col0 = wb * opts_.cols;
  const std::int64_t cols_used = std::min<std::int64_t>(opts_.cols, windows - col0);

  // One SIP per (row, col); ORs accumulate across input chunks.
  const arch::SipConfig sip_cfg{opts_.lanes, /*act_signed=*/false,
                                /*weight_signed=*/true};
  std::vector<arch::Sip> sips(
      static_cast<std::size_t>(rows_used) * static_cast<std::size_t>(cols_used),
      arch::Sip(sip_cfg));
  for (auto& sip : sips) sip.begin_output();

  std::uint64_t block_cycles = 0;
  const std::int64_t ic_count = ceil_div(inner, opts_.lanes);
  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
    // Dispatcher: serialize the activation group (with dynamic detection)
    // and the weight rows for this chunk.
    std::vector<std::vector<Value>> act_cols;
    for (std::int64_t c = 0; c < cols_used; ++c) {
      act_cols.push_back(gather_window_chunk(layer, input, g, col0 + c,
                                             ic * opts_.lanes, opts_.lanes));
    }
    const arch::ActivationStream acts = dispatcher_.stream_activations(
        act_cols, layer.act_precision, opts_.dynamic_act_precision);

    std::vector<std::vector<Value>> weight_rows;
    for (std::int64_t r = 0; r < rows_used; ++r) {
      std::vector<Value> row;
      const std::int64_t co = g * cog + row0 + r;
      const std::int64_t base = co * inner + ic * opts_.lanes;
      for (std::int64_t l = 0;
           l < std::min<std::int64_t>(opts_.lanes, inner - ic * opts_.lanes); ++l) {
        row.push_back(weights.flat(base + l));
      }
      weight_rows.push_back(std::move(row));
    }
    const arch::WeightStream wbits =
        dispatcher_.stream_weights(weight_rows, layer.weight_precision);

    // Drive the grid: for each weight-bit pass, all SIPs in a row load the
    // same WR word, then the activation bits stream MSB-first.
    streamed_pa += acts.precision;
    ++chunks;
    for (int bit = 0; bit < wbits.precision; ++bit) {
      const bool msb = bit == wbits.precision - 1;
      for (std::int64_t r = 0; r < rows_used; ++r) {
        const std::uint32_t wr = wbits.wr_word(bit, static_cast<int>(r));
        for (std::int64_t c = 0; c < cols_used; ++c) {
          sips[static_cast<std::size_t>(r * cols_used + c)].begin_weight_pass(
              wr, bit, msb);
        }
      }
      for (int step = 0; step < acts.precision; ++step) {
        for (std::int64_t c = 0; c < cols_used; ++c) {
          const std::uint32_t bits = acts.lanes(step, static_cast<int>(c));
          for (std::int64_t r = 0; r < rows_used; ++r) {
            sips[static_cast<std::size_t>(r * cols_used + c)].cycle(
                bits, /*is_act_msb=*/false);  // conv activations are unsigned
          }
        }
        ++block_cycles;
      }
      for (auto& sip : sips) sip.end_weight_pass();
    }
  }

  for (std::int64_t r = 0; r < rows_used; ++r) {
    for (std::int64_t c = 0; c < cols_used; ++c) {
      const std::int64_t co = g * cog + row0 + r;
      const std::int64_t window = col0 + c;
      wide.at3(co, window / layer.out.w, window % layer.out.w) =
          sips[static_cast<std::size_t>(r * cols_used + c)].output();
    }
  }
  return block_cycles;
}

FunctionalLayerRun FunctionalLoomEngine::run_conv(const nn::Layer& layer,
                                                  const nn::Tensor& input,
                                                  const nn::Tensor& weights,
                                                  int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, layer.out.h, layer.out.w});

  double streamed_pa = 0.0;
  std::int64_t chunks = 0;
  const std::int64_t windows = layer.windows();
  for (std::int64_t g = 0; g < layer.groups; ++g) {
    const std::int64_t fb_count = ceil_div(layer.group_out_channels(), opts_.rows);
    const std::int64_t wb_count = ceil_div(windows, opts_.cols);
    for (std::int64_t fb = 0; fb < fb_count; ++fb) {
      for (std::int64_t wb = 0; wb < wb_count; ++wb) {
        run.cycles += run_conv_block(layer, input, weights, g, fb, wb, run.wide,
                                     streamed_pa, chunks);
      }
    }
  }
  run.mean_streamed_precision =
      chunks ? streamed_pa / static_cast<double>(chunks) : 0.0;

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalLayerRun FunctionalLoomEngine::run_fc(const nn::Layer& layer,
                                                const nn::Tensor& input,
                                                const nn::Tensor& weights,
                                                int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, 1, 1});

  // FCLs stream the full 16 activation bits; each output maps to one SIP
  // whose OR accumulates over the input chunks. Wall-clock cycles follow
  // the column-staggered model: rounds x 16 x Pw for each block of
  // rows x cols concurrent outputs.
  const std::int64_t ci = layer.in.elements();
  const std::int64_t concurrent =
      static_cast<std::int64_t>(opts_.rows) * opts_.cols;
  const arch::SipConfig sip_cfg{opts_.lanes, /*act_signed=*/true,
                                /*weight_signed=*/true};
  for (std::int64_t co = 0; co < layer.out.c; ++co) {
    arch::Sip sip(sip_cfg);
    sip.begin_output();
    Wide acc = 0;
    for (std::int64_t base = 0; base < ci; base += opts_.lanes) {
      const std::int64_t n = std::min<std::int64_t>(opts_.lanes, ci - base);
      std::vector<Value> a(static_cast<std::size_t>(n));
      std::vector<Value> w(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i)] = input.flat(base + i);
        w[static_cast<std::size_t>(i)] = weights.flat(co * ci + base + i);
      }
      arch::Sip chunk_sip(sip_cfg);
      acc += arch::sip_inner_product(chunk_sip, a, w, kBasePrecision,
                                     layer.weight_precision);
    }
    run.wide.set_flat(co, acc);
  }
  const std::int64_t rounds = ceil_div(ci, static_cast<std::int64_t>(opts_.lanes));
  const std::int64_t blocks = ceil_div(static_cast<std::int64_t>(layer.out.c),
                                       concurrent);
  run.cycles = static_cast<std::uint64_t>(blocks) *
               static_cast<std::uint64_t>(rounds) * 16u *
               static_cast<std::uint64_t>(layer.weight_precision);
  run.mean_streamed_precision = kBasePrecision;

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalNetworkRun FunctionalLoomEngine::run_network(
    const nn::Network& net, const nn::Tensor& input,
    std::span<const nn::Tensor> weights) {
  FunctionalNetworkRun run;
  nn::Tensor current = input;
  std::size_t weight_index = 0;

  // Output precision of each weighted layer = the consumer's profile Pa.
  const auto out_bits_for = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < net.size(); ++j) {
      if (net.layer(j).kind == nn::LayerKind::kConv) {
        return net.layer(j).act_precision;
      }
      if (net.layer(j).kind == nn::LayerKind::kFullyConnected) break;
    }
    return static_cast<int>(kBasePrecision);
  };

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind) {
      case nn::LayerKind::kConv: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr =
            run_conv(layer, current, weights[weight_index++], out_bits_for(i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr =
            run_fc(layer, current, weights[weight_index++], out_bits_for(i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kPool: {
        current = nn::pool_forward(current, layer);
        break;
      }
    }
  }
  run.output = current;
  LOOM_ENSURES(weight_index == weights.size());
  return run;
}

}  // namespace loom::sim
