#include "sim/functional.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "sim/autotune_cache.hpp"
#include "sim/loom_sim.hpp"

namespace loom::sim {

namespace {

/// Output precision of weighted layer `i`: the next conv consumer's profile
/// Pa (an FC consumer, or no consumer, stores at base precision). Shared by
/// the solo and batched network walks so the propagation rule cannot drift
/// between them.
int consumer_out_bits(const nn::Network& net, std::size_t i) {
  for (std::size_t j = i + 1; j < net.size(); ++j) {
    if (net.layer(j).kind == nn::LayerKind::kConv) {
      return net.layer(j).act_precision;
    }
    if (net.layer(j).kind == nn::LayerKind::kFullyConnected) break;
  }
  return static_cast<int>(kBasePrecision);
}

/// Marshal a batch into the pointer views the backends consume.
void batch_ptrs(std::span<const nn::Tensor> inputs,
                std::vector<nn::WideTensor>& wides,
                std::vector<const nn::Tensor*>& in_ptrs,
                std::vector<nn::WideTensor*>& wide_ptrs) {
  in_ptrs.resize(inputs.size());
  wide_ptrs.resize(inputs.size());
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    in_ptrs[r] = &inputs[r];
    wide_ptrs[r] = &wides[r];
  }
}

/// Per-request requantization demux: each request picks its shift from its
/// own accumulators, exactly as a solo run would.
void requantize_batch(FunctionalBatchLayerRun& run, int out_bits, bool relu) {
  run.outputs.reserve(run.wides.size());
  run.requant_shifts.reserve(run.wides.size());
  for (const nn::WideTensor& wide : run.wides) {
    const int shift = nn::choose_requant_shift(wide, out_bits);
    run.requant_shifts.push_back(shift);
    run.outputs.push_back(nn::requantize(wide, shift, out_bits, relu));
  }
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

bool functional_scalar_env() {
  const char* v = std::getenv("LOOM_FUNCTIONAL_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

FunctionalLoomEngine::FunctionalLoomEngine(FunctionalOptions opts)
    : opts_(opts), dispatcher_(opts.lanes) {
  LOOM_EXPECTS(opts.rows >= 1 && opts.cols >= 1);
  LOOM_EXPECTS(opts.lanes >= 1 && opts.lanes <= 32);
  ctx_ = BackendContext{.rows = opts_.rows,
                        .cols = opts_.cols,
                        .lanes = opts_.lanes,
                        .jobs = opts_.jobs};
  resolved_ = resolve_backend_name(opts_.backend, opts_.force_scalar, ctx_);
  if (resolved_ == "auto") {
    candidates_ = BackendRegistry::instance().tunable_names(ctx_);
    // Warm the process autotuner from LOOM_AUTOTUNE_CACHE (no-op when unset
    // or already initialized) so tuned cells skip per-process exploration.
    init_autotune_cache_from_env();
  }
}

FunctionalBackend& FunctionalLoomEngine::backend_for(const std::string& name) {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    const BackendInfo* info = BackendRegistry::instance().find(name);
    LOOM_EXPECTS(info != nullptr);
    it = backends_.emplace(name, info->make(ctx_)).first;
  }
  return *it->second;
}

BitsliceEngine::ConvStats FunctionalLoomEngine::dispatch_conv(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
    std::span<nn::WideTensor* const> wides, std::string& used) {
  if (resolved_ != "auto") {
    used = resolved_;
    return backend_for(used).run_conv_batch(layer, inputs, weights, spec,
                                            wides);
  }
  // Every candidate computes identical bytes, so exploration piggybacks on
  // real layer runs: the tuner hands out whichever kernel it still needs a
  // timing for, and the measurement is the run the caller wanted anyway.
  const TuneKey key =
      conv_tune_key(layer, spec, static_cast<int>(inputs.size()), ctx_);
  used = BackendAutotuner::instance().choose(key, candidates_);
  const auto t0 = std::chrono::steady_clock::now();
  const BitsliceEngine::ConvStats st =
      backend_for(used).run_conv_batch(layer, inputs, weights, spec, wides);
  BackendAutotuner::instance().record(key, used, elapsed_ns(t0));
  return st;
}

void FunctionalLoomEngine::dispatch_fc(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, std::span<nn::WideTensor* const> wides,
    std::string& used) {
  if (resolved_ != "auto") {
    used = resolved_;
    backend_for(used).run_fc_batch(layer, inputs, weights,
                                   layer.weight_precision, wides);
    return;
  }
  const TuneKey key = fc_tune_key(layer, layer.weight_precision,
                                  static_cast<int>(inputs.size()), ctx_);
  used = BackendAutotuner::instance().choose(key, candidates_);
  const auto t0 = std::chrono::steady_clock::now();
  backend_for(used).run_fc_batch(layer, inputs, weights,
                                 layer.weight_precision, wides);
  BackendAutotuner::instance().record(key, used, elapsed_ns(t0));
}

FunctionalLayerRun FunctionalLoomEngine::run_conv(const nn::Layer& layer,
                                                  const nn::Tensor& input,
                                                  const nn::Tensor& weights,
                                                  int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, layer.out.h, layer.out.w});

  const BitsliceEngine::SliceSpec spec{
      .act_precision = layer.act_precision,
      .weight_precision = layer.weight_precision,
      .act_signed = false,
      .dynamic = opts_.dynamic_act_precision};
  const nn::Tensor* in_ptr = &input;
  nn::WideTensor* wide_ptr = &run.wide;
  const BitsliceEngine::ConvStats st =
      dispatch_conv(layer, std::span<const nn::Tensor* const>(&in_ptr, 1),
                    weights, spec, std::span<nn::WideTensor* const>(&wide_ptr, 1),
                    run.backend);
  run.cycles = st.cycles;
  run.mean_streamed_precision =
      st.chunks ? st.streamed_pa / static_cast<double>(st.chunks) : 0.0;
  dispatcher_.note_streamed(st.act_bits_streamed, st.weight_bits_streamed,
                            st.detect_invocations, st.detect_values);

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalLayerRun FunctionalLoomEngine::run_fc(const nn::Layer& layer,
                                                const nn::Tensor& input,
                                                const nn::Tensor& weights,
                                                int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  FunctionalLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, 1, 1});

  // FCLs stream the full 16 activation bits; the kernels' accumulators are
  // exact, so every backend lands the same wide tensor.
  const nn::Tensor* in_ptr = &input;
  nn::WideTensor* wide_ptr = &run.wide;
  dispatch_fc(layer, std::span<const nn::Tensor* const>(&in_ptr, 1), weights,
              std::span<nn::WideTensor* const>(&wide_ptr, 1), run.backend);

  // Wall-clock cycles: the same cascade-aware model as the analytic
  // LoomSimulator::simulate_fc — best `ways` slicing plus the cols-1
  // column-stagger initiation — excluding the analytic kPipelineFill.
  const std::int64_t ci = layer.in.elements();
  const FcCascadePlan plan = plan_fc_cascade(
      opts_.rows, opts_.cols, opts_.lanes, layer.out.c, ci,
      static_cast<double>(layer.weight_precision),
      static_cast<double>(kBasePrecision), opts_.cascading);
  run.cycles = static_cast<std::uint64_t>(
      std::llround(plan.cycles + static_cast<double>(opts_.cols - 1)));
  run.mean_streamed_precision = kBasePrecision;

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

FunctionalBatchLayerRun FunctionalLoomEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty());
  FunctionalBatchLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  const std::size_t batch = inputs.size();
  run.wides.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    run.wides.emplace_back(nn::Shape{layer.out.c, layer.out.h, layer.out.w});
  }

  if (resolved_ == "scalar") {
    // Scalar oracle: a batch *is* N solo runs — the semantics the lane-packed
    // backends are pinned against. Requests have identical chunk geometry, so
    // the plain mean over requests equals the chunk-weighted mean. The solo
    // runs already requantized; keep their shifts and outputs.
    run.backend = resolved_;
    double mean_sum = 0.0;
    for (std::size_t r = 0; r < batch; ++r) {
      FunctionalLayerRun lr = run_conv(layer, inputs[r], weights, out_bits);
      run.cycles += lr.cycles;
      mean_sum += lr.mean_streamed_precision;
      run.wides[r] = std::move(lr.wide);
      run.requant_shifts.push_back(lr.requant_shift);
      run.outputs.push_back(std::move(lr.output));
    }
    run.mean_streamed_precision = mean_sum / static_cast<double>(batch);
  } else {
    std::vector<const nn::Tensor*> in_ptrs;
    std::vector<nn::WideTensor*> wide_ptrs;
    batch_ptrs(inputs, run.wides, in_ptrs, wide_ptrs);
    const BitsliceEngine::SliceSpec spec{
        .act_precision = layer.act_precision,
        .weight_precision = layer.weight_precision,
        .act_signed = false,
        .dynamic = opts_.dynamic_act_precision};
    const BitsliceEngine::ConvStats st =
        dispatch_conv(layer, in_ptrs, weights, spec, wide_ptrs, run.backend);
    run.cycles = st.cycles;
    run.mean_streamed_precision =
        st.chunks ? st.streamed_pa / static_cast<double>(st.chunks) : 0.0;
    dispatcher_.note_streamed(st.act_bits_streamed, st.weight_bits_streamed,
                              st.detect_invocations, st.detect_values);
    requantize_batch(run, out_bits, opts_.relu);
  }
  return run;
}

FunctionalBatchLayerRun FunctionalLoomEngine::run_fc_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(!inputs.empty());
  FunctionalBatchLayerRun run;
  run.name = layer.name;
  run.out_bits = out_bits;
  const std::size_t batch = inputs.size();
  run.wides.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    run.wides.emplace_back(nn::Shape{layer.out.c, 1, 1});
  }

  if (resolved_ == "scalar") {
    run.backend = resolved_;
    for (std::size_t r = 0; r < batch; ++r) {
      FunctionalLayerRun lr = run_fc(layer, inputs[r], weights, out_bits);
      run.wides[r] = std::move(lr.wide);
      run.requant_shifts.push_back(lr.requant_shift);
      run.outputs.push_back(std::move(lr.output));
    }
  } else {
    std::vector<const nn::Tensor*> in_ptrs;
    std::vector<nn::WideTensor*> wide_ptrs;
    batch_ptrs(inputs, run.wides, in_ptrs, wide_ptrs);
    dispatch_fc(layer, in_ptrs, weights, wide_ptrs, run.backend);
    requantize_batch(run, out_bits, opts_.relu);
  }

  // FC grid cycles have no batch dimension in the cascade model: every image
  // streams its own full-precision activations, so the batch costs N solo
  // passes. The request packing above is a software-throughput win only.
  const std::int64_t ci = layer.in.elements();
  const FcCascadePlan plan = plan_fc_cascade(
      opts_.rows, opts_.cols, opts_.lanes, layer.out.c, ci,
      static_cast<double>(layer.weight_precision),
      static_cast<double>(kBasePrecision), opts_.cascading);
  run.cycles = static_cast<std::uint64_t>(std::llround(
                   plan.cycles + static_cast<double>(opts_.cols - 1))) *
               static_cast<std::uint64_t>(batch);
  run.mean_streamed_precision = kBasePrecision;
  return run;
}

FunctionalBatchNetworkRun FunctionalLoomEngine::run_network_batch(
    const nn::Network& net, std::span<const nn::Tensor> inputs,
    std::span<const nn::Tensor> weights) {
  LOOM_EXPECTS(!inputs.empty());
  if (opts_.pre_run_hook) opts_.pre_run_hook();
  FunctionalBatchNetworkRun run;
  std::vector<nn::Tensor> current(inputs.begin(), inputs.end());
  std::size_t weight_index = 0;

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind) {
      case nn::LayerKind::kConv:
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalBatchLayerRun lr =
            layer.kind == nn::LayerKind::kConv
                ? run_conv_batch(layer, current, weights[weight_index++],
                                 consumer_out_bits(net, i))
                : run_fc_batch(layer, current, weights[weight_index++],
                               consumer_out_bits(net, i));
        current = lr.outputs;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kPool: {
        for (nn::Tensor& t : current) t = nn::pool_forward(t, layer);
        break;
      }
    }
  }
  run.outputs = std::move(current);
  LOOM_ENSURES(weight_index == weights.size());
  return run;
}

FunctionalNetworkRun FunctionalLoomEngine::run_network(
    const nn::Network& net, const nn::Tensor& input,
    std::span<const nn::Tensor> weights) {
  if (opts_.pre_run_hook) opts_.pre_run_hook();
  FunctionalNetworkRun run;
  nn::Tensor current = input;
  std::size_t weight_index = 0;

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind) {
      case nn::LayerKind::kConv: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr = run_conv(layer, current,
                                         weights[weight_index++],
                                         consumer_out_bits(net, i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(weight_index < weights.size());
        FunctionalLayerRun lr = run_fc(layer, current, weights[weight_index++],
                                       consumer_out_bits(net, i));
        current = lr.output;
        run.total_cycles += lr.cycles;
        run.layers.push_back(std::move(lr));
        break;
      }
      case nn::LayerKind::kPool: {
        current = nn::pool_forward(current, layer);
        break;
      }
    }
  }
  run.output = current;
  LOOM_ENSURES(weight_index == weights.size());
  return run;
}

}  // namespace loom::sim
