// Functional Loom engine: executes an entire (small) network through the
// bit-serial datapath — dispatcher serialization, WR loads, per-cycle SIP
// evaluation, cascade/OR accumulation, requantization and pooling between
// layers — producing exact activations plus the wall-clock cycles the grid
// spent.
//
// This is the ground-truth twin of the analytic cycle model in
// loom_sim.cpp: tests assert that (a) the outputs equal the bit-parallel
// golden reference through the whole network and (b) the cycle counts of
// the two models agree. Full ImageNet-scale networks go through the
// analytic model; this engine is for verification, the examples, and
// datapath experiments (it is O(cycles x SIPs) in time).
//
// Restriction: models the LM1b variant (one activation bit per cycle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/dispatcher.hpp"
#include "arch/sip.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/tensor.hpp"

namespace loom::sim {

struct FunctionalOptions {
  int rows = 16;   ///< SIP rows (concurrent filters)
  int cols = 16;   ///< SIP columns (concurrent windows)
  int lanes = 16;  ///< products per SIP per cycle
  bool dynamic_act_precision = true;
  bool relu = true;  ///< apply ReLU at requantization (hidden layers)
};

struct FunctionalLayerRun {
  std::string name;
  nn::Tensor output;             ///< requantized output activations
  nn::WideTensor wide;           ///< exact pre-requantization accumulators
  std::uint64_t cycles = 0;      ///< grid wall-clock cycles
  int requant_shift = 0;
  int out_bits = kBasePrecision;
  double mean_streamed_precision = 0.0;  ///< average Pa actually streamed
};

struct FunctionalNetworkRun {
  std::vector<FunctionalLayerRun> layers;
  nn::Tensor output;
  std::uint64_t total_cycles = 0;
};

class FunctionalLoomEngine {
 public:
  explicit FunctionalLoomEngine(FunctionalOptions opts = {});

  /// Execute one convolutional layer. `weights` is flat [Co][Ci/g][Kh][Kw].
  [[nodiscard]] FunctionalLayerRun run_conv(const nn::Layer& layer,
                                            const nn::Tensor& input,
                                            const nn::Tensor& weights,
                                            int out_bits);

  /// Execute one fully-connected layer. `weights` is flat [Co][Ci].
  [[nodiscard]] FunctionalLayerRun run_fc(const nn::Layer& layer,
                                          const nn::Tensor& input,
                                          const nn::Tensor& weights,
                                          int out_bits);

  /// Execute a whole profiled network: conv/fc layers on the grid, pooling
  /// through the max/average units, requantizing every output to the
  /// consumer layer's profile precision. `weights[i]` pairs with the i-th
  /// *weighted* layer.
  [[nodiscard]] FunctionalNetworkRun run_network(
      const nn::Network& net, const nn::Tensor& input,
      std::span<const nn::Tensor> weights);

  [[nodiscard]] const arch::Dispatcher& dispatcher() const noexcept {
    return dispatcher_;
  }
  [[nodiscard]] const FunctionalOptions& options() const noexcept { return opts_; }

 private:
  /// Run one (filter-block, window-block) tile pass over all input chunks,
  /// accumulating exact outputs in `wide` and cycles in the return value.
  std::uint64_t run_conv_block(const nn::Layer& layer, const nn::Tensor& input,
                               const nn::Tensor& weights, std::int64_t group,
                               std::int64_t fb, std::int64_t wb,
                               nn::WideTensor& wide, double& streamed_pa,
                               std::int64_t& chunks);

  FunctionalOptions opts_;
  arch::Dispatcher dispatcher_;
};

}  // namespace loom::sim
