// Functional Loom engine: executes an entire (small) network through the
// bit-serial datapath — dispatcher serialization, WR loads, per-cycle SIP
// evaluation, cascade/OR accumulation, requantization and pooling between
// layers — producing exact activations plus the wall-clock cycles the grid
// spent.
//
// This is the ground-truth twin of the analytic cycle model in
// loom_sim.cpp: tests assert that (a) the outputs equal the bit-parallel
// golden reference through the whole network and (b) the cycle counts of
// the two models agree (the functional counts exclude the analytic model's
// per-layer kPipelineFill constant).
//
// Layer math runs on an interchangeable kernel from the backend registry
// (sim/backend.hpp): the scalar arch::Sip oracle, the bit-sliced fast path,
// or the LUT kernels — all byte-identical in outputs, cycle counts,
// streamed-precision means and dispatcher/detector statistics (golden-
// pinned in tests/test_bitslice_engine.cpp, swept by
// tests/test_backend_differential.cpp). Selection: FunctionalOptions::
// backend, then LOOM_FUNCTIONAL_BACKEND, then "auto" — which hands each
// layer to the BackendAutotuner to memoize the empirically fastest kernel.
// FunctionalOptions::force_scalar / LOOM_FUNCTIONAL_SCALAR still force the
// scalar oracle, and configurations no fast kernel can pack (cols > 64)
// fall back to it automatically.
//
// Restriction: models the LM1b variant (one activation bit per cycle).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/dispatcher.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/tensor.hpp"
#include "sim/backend.hpp"
#include "sim/bitslice_engine.hpp"

namespace loom::sim {

struct FunctionalOptions {
  int rows = 16;   ///< SIP rows (concurrent filters)
  int cols = 16;   ///< SIP columns (concurrent windows)
  int lanes = 16;  ///< products per SIP per cycle
  bool dynamic_act_precision = true;
  bool relu = true;  ///< apply ReLU at requantization (hidden layers)
  bool cascading = true;  ///< SIP daisy-chaining for FC layers (cycle model)
  /// Worker threads for the fast backends' fan-out over the shared pool;
  /// 0 = all hardware threads, 1 = serial. Results are byte-identical for
  /// every value.
  int jobs = 0;
  /// Force the scalar arch::Sip oracle (also: LOOM_FUNCTIONAL_SCALAR=1).
  bool force_scalar = false;
  /// Kernel selection: "" defers to LOOM_FUNCTIONAL_BACKEND, then "auto"
  /// (per-layer autotuned); or a registered name ("scalar", "bitslice",
  /// "lut", "lut-outer"). Unknown names throw ConfigError at construction.
  std::string backend = {};
  /// Invoked at the top of every run_network / run_network_batch call; may
  /// throw, in which case the run fails before touching any state. This is
  /// how the serving fault injector makes an engine run fail: the server
  /// installs a hook that throws TransientEngineError at a configured
  /// probability on its primary engine, while the scalar-oracle fallback
  /// engine runs hook-free. Null = disabled.
  std::function<void()> pre_run_hook = nullptr;
};

struct FunctionalLayerRun {
  std::string name;
  nn::Tensor output;             ///< requantized output activations
  nn::WideTensor wide;           ///< exact pre-requantization accumulators
  std::uint64_t cycles = 0;      ///< grid wall-clock cycles
  int requant_shift = 0;
  int out_bits = kBasePrecision;
  double mean_streamed_precision = 0.0;  ///< average Pa actually streamed
  std::string backend;           ///< kernel that ran this layer
};

struct FunctionalNetworkRun {
  std::vector<FunctionalLayerRun> layers;
  nn::Tensor output;
  std::uint64_t total_cycles = 0;
};

/// One layer of a batched (multi-request) run. Outputs, accumulators and
/// requantization shifts are per request and byte-identical to running each
/// request alone; `cycles` is the grid wall clock for the *coalesced* batch
/// (conv windows of all requests share the SIP columns, so this is less
/// than the sum of solo runs whenever a request leaves lanes empty).
struct FunctionalBatchLayerRun {
  std::string name;
  std::vector<nn::Tensor> outputs;      ///< per-request requantized outputs
  std::vector<nn::WideTensor> wides;    ///< per-request exact accumulators
  std::vector<int> requant_shifts;      ///< per-request (same as solo runs)
  std::uint64_t cycles = 0;             ///< grid cycles for the whole batch
  int out_bits = kBasePrecision;
  double mean_streamed_precision = 0.0;  ///< mean Pa over the batch's chunks
  std::string backend;                   ///< kernel that ran this layer
};

struct FunctionalBatchNetworkRun {
  std::vector<FunctionalBatchLayerRun> layers;
  std::vector<nn::Tensor> outputs;  ///< per-request network outputs
  std::uint64_t total_cycles = 0;
};

class FunctionalLoomEngine {
 public:
  explicit FunctionalLoomEngine(FunctionalOptions opts = {});

  /// Execute one convolutional layer. `weights` is flat [Co][Ci/g][Kh][Kw].
  [[nodiscard]] FunctionalLayerRun run_conv(const nn::Layer& layer,
                                            const nn::Tensor& input,
                                            const nn::Tensor& weights,
                                            int out_bits);

  /// Execute one fully-connected layer. `weights` is flat [Co][Ci].
  /// Cycle count follows the same cascade-aware model as
  /// LoomSimulator::simulate_fc (plan_fc_cascade + column stagger), minus
  /// the analytic model's kPipelineFill constant.
  [[nodiscard]] FunctionalLayerRun run_fc(const nn::Layer& layer,
                                          const nn::Tensor& input,
                                          const nn::Tensor& weights,
                                          int out_bits);

  /// Execute a whole profiled network: conv/fc layers on the grid, pooling
  /// through the max/average units, requantizing every output to the
  /// consumer layer's profile precision. `weights[i]` pairs with the i-th
  /// *weighted* layer.
  [[nodiscard]] FunctionalNetworkRun run_network(
      const nn::Network& net, const nn::Tensor& input,
      std::span<const nn::Tensor> weights);

  // ---- Batched (multi-request) execution ----------------------------------
  // N same-shape inputs run as one coalesced batch: conv im2col window
  // ranges of different requests concatenate into the same 64-lane slabs of
  // the word-parallel backends, FC batches pack requests into the word
  // lanes, and every request's outputs demux back out. Requantization
  // (shift choice included) is per request, so outputs are byte-identical
  // to N solo runs — pinned by tests/test_batch_properties.cpp and the
  // serving stress tests, not assumed. On the scalar oracle a batch is
  // executed as N solo runs (summed cycles), which is the batching
  // semantics oracle. FC grid cycles stay per-image (batch = N x solo): the
  // cascade model has no batch dimension; the lane packing is a software
  // throughput win.

  [[nodiscard]] FunctionalBatchLayerRun run_conv_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);

  [[nodiscard]] FunctionalBatchLayerRun run_fc_batch(
      const nn::Layer& layer, std::span<const nn::Tensor> inputs,
      const nn::Tensor& weights, int out_bits);

  [[nodiscard]] FunctionalBatchNetworkRun run_network_batch(
      const nn::Network& net, std::span<const nn::Tensor> inputs,
      std::span<const nn::Tensor> weights);

  [[nodiscard]] const arch::Dispatcher& dispatcher() const noexcept {
    return dispatcher_;
  }
  [[nodiscard]] const FunctionalOptions& options() const noexcept { return opts_; }
  /// True when layers run on a word-parallel fast path (false = scalar
  /// oracle, via force_scalar / LOOM_FUNCTIONAL_SCALAR / unpackable cols).
  [[nodiscard]] bool bitsliced() const noexcept { return resolved_ != "scalar"; }
  /// The resolved kernel selection: "scalar", "auto" (per-layer autotuned),
  /// or a concrete registered backend name.
  [[nodiscard]] const std::string& backend_name() const noexcept {
    return resolved_;
  }

 private:
  /// Lazily construct (and cache) the named backend for this grid.
  FunctionalBackend& backend_for(const std::string& name);
  /// Run one conv batch on the selected kernel; under "auto" consults the
  /// autotuner and feeds the measured wall clock back. `used` reports the
  /// kernel that ran.
  BitsliceEngine::ConvStats dispatch_conv(
      const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
      const nn::Tensor& weights, const BitsliceEngine::SliceSpec& spec,
      std::span<nn::WideTensor* const> wides, std::string& used);
  void dispatch_fc(const nn::Layer& layer,
                   std::span<const nn::Tensor* const> inputs,
                   const nn::Tensor& weights,
                   std::span<nn::WideTensor* const> wides, std::string& used);

  FunctionalOptions opts_;
  arch::Dispatcher dispatcher_;
  BackendContext ctx_;
  std::string resolved_;  ///< "scalar", "auto", or a concrete backend name
  std::vector<std::string> candidates_;  ///< tuner candidates under "auto"
  std::map<std::string, std::unique_ptr<FunctionalBackend>> backends_;
};

/// True when the process-wide LOOM_FUNCTIONAL_SCALAR escape hatch is set
/// (any value other than empty or "0").
[[nodiscard]] bool functional_scalar_env();

}  // namespace loom::sim
