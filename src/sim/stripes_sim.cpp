#include "sim/stripes_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace loom::sim {

StripesSimulator::StripesSimulator(const arch::StripesConfig& cfg,
                                   const SimOptions& opts)
    : cfg_(cfg), opts_(opts) {
  cfg_.validate();
}

LayerResult StripesSimulator::simulate_compute(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();
  r.mean_weight_precision = kBasePrecision;  // weights stay bit-parallel

  const int lanes = cfg_.lanes;
  const int k = cfg_.filters();
  const int windows_par = cfg_.windows;

  if (layer.kind == nn::LayerKind::kConv) {
    const std::int64_t windows = layer.windows();
    const std::int64_t inner = layer.inner_length();
    const std::int64_t wb_count = ceil_div(windows, windows_par);
    const std::int64_t ic_count = ceil_div(inner, lanes);

    // Whole per-layer precision table from the OR planes; the loops below
    // are plain array reads.
    ActPrecisionTable pa_table;
    if (cfg_.dynamic_act_precision) {
      pa_table = lw.act_group_precision_table(windows_par);
      // One-time loop-bound contract for the whole layer (replaces the old
      // per-query argument checks): looser loop bounds than the table's
      // extents must fail loudly, not read past it.
      LOOM_EXPECTS(ic_count <= pa_table.ic_count() &&
                   wb_count <= pa_table.wb_count());
    }

    double cycles = 0.0;
    double busy = 0.0;
    double pa_weighted = 0.0;
    std::uint64_t chunks = 0;
    for (int g = 0; g < layer.groups; ++g) {
      const std::int64_t cog = layer.group_out_channels();
      const std::int64_t fb = ceil_div(cog, k);
      const auto dcog = static_cast<double>(cog);
      // Weight-memory reads are invariant per chunk (integer-exact hoist).
      r.activity.wm_read_bits +=
          static_cast<std::uint64_t>(dcog * static_cast<double>(lanes) * 16.0) *
          static_cast<std::uint64_t>(wb_count * ic_count);
      for (std::int64_t wb = 0; wb < wb_count; ++wb) {
        const std::int64_t w_used =
            std::min<std::int64_t>(windows_par, windows - wb * windows_par);
        // Precision-independent accounting hoisted out of the chunk loop
        // (integer-exact: identical truncated value per ic chunk, and the
        // lanes_used tail sums to `inner` across the ic chunks).
        // Weights load bit-parallel into the per-lane registers once per
        // chunk and stay for the pa serial cycles.
        r.activity.wr_bits_loaded += static_cast<std::uint64_t>(
                                         dcog * static_cast<double>(w_used * lanes) * 16.0) *
                                     static_cast<std::uint64_t>(ic_count);
        const std::uint64_t am_bits =
            static_cast<std::uint64_t>(w_used * layer.act_precision * fb * inner);
        r.activity.am_read_bits += am_bits;
        r.activity.abin_write_bits += am_bits;
        if (cfg_.dynamic_act_precision) {
          r.activity.detector_values +=
              static_cast<std::uint64_t>(w_used * inner);
        }
        for (std::int64_t ic = 0; ic < ic_count; ++ic) {
          const std::int64_t lanes_used =
              std::min<std::int64_t>(lanes, inner - ic * lanes);
          const int pa = cfg_.dynamic_act_precision
                             ? pa_table.at(g, wb, ic)
                             : layer.act_precision;
          cycles += static_cast<double>(pa) * static_cast<double>(fb);
          pa_weighted += pa;
          ++chunks;

          // Active filters summed over the fb blocks equal cog exactly.
          r.activity.stripes_lane_ops += static_cast<std::uint64_t>(
              dcog * static_cast<double>(w_used * lanes_used) *
              static_cast<double>(pa));
          busy += dcog * static_cast<double>(w_used) *
                  (static_cast<double>(lanes_used) / lanes) *
                  static_cast<double>(pa);
          r.activity.abin_read_bits += static_cast<std::uint64_t>(
              static_cast<double>(w_used * lanes * pa) *
              static_cast<double>(fb));
        }
      }
    }
    r.compute_cycles =
        static_cast<std::uint64_t>(std::llround(cycles)) + kPipelineFill;
    r.mean_act_precision = chunks ? pa_weighted / static_cast<double>(chunks) : 0.0;
    r.utilization =
        busy / (static_cast<double>(r.compute_cycles) *
                static_cast<double>(k) * static_cast<double>(windows_par));
    const double lane_slots = static_cast<double>(r.compute_cycles) *
                              static_cast<double>(k) *
                              static_cast<double>(windows_par) *
                              static_cast<double>(lanes);
    r.activity.stripes_idle_lane_cycles = static_cast<std::uint64_t>(
        std::max(0.0, lane_slots - busy * static_cast<double>(lanes)));
  } else {
    // FCL: one "window" of data; outputs map across the filter x window
    // units; 16 serial cycles per 16-activation chunk — no speedup over the
    // baseline (Table 2's Stripes FCL Perf = 1.00).
    const std::int64_t ci = layer.in.elements();
    const std::int64_t co = layer.out.c;
    const std::int64_t concurrent = static_cast<std::int64_t>(k) * windows_par;
    const std::int64_t fb = ceil_div(co, concurrent);
    const std::int64_t ic_count = ceil_div(ci, lanes);
    r.compute_cycles = static_cast<std::uint64_t>(ic_count) *
                           static_cast<std::uint64_t>(fb) * 16 +
                       kPipelineFill;
    r.mean_act_precision = kBasePrecision;
    r.activity.stripes_lane_ops =
        static_cast<std::uint64_t>(r.macs) * 16;
    r.activity.wr_bits_loaded =
        static_cast<std::uint64_t>(layer.weight_count()) * 16;
    r.activity.wm_read_bits = r.activity.wr_bits_loaded;
    r.activity.abin_read_bits = r.compute_cycles * static_cast<std::uint64_t>(lanes);
    const std::uint64_t am_fetch =
        static_cast<std::uint64_t>(ci) * 16 * static_cast<std::uint64_t>(fb);
    r.activity.am_read_bits = am_fetch;
    r.activity.abin_write_bits = am_fetch;
    r.utilization =
        static_cast<double>(r.macs) * 16.0 /
        (static_cast<double>(r.compute_cycles) * static_cast<double>(concurrent) *
         static_cast<double>(lanes));
    const double lane_slots = static_cast<double>(r.compute_cycles) *
                              static_cast<double>(concurrent) *
                              static_cast<double>(lanes);
    r.activity.stripes_idle_lane_cycles = static_cast<std::uint64_t>(
        std::max(0.0, lane_slots - static_cast<double>(r.macs) * 16.0));
  }

  const std::uint64_t out_bits =
      static_cast<std::uint64_t>(layer.out.elements()) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  // Stripes packs activations (not weights) in the AM.
  const int out_prec =
      layer.kind == nn::LayerKind::kConv ? lw.out_precision : kBasePrecision;
  r.activity.am_write_bits =
      static_cast<std::uint64_t>(layer.out.elements() * out_prec);
  r.activity.transposer_bits = r.activity.am_write_bits;
  return r;
}

void StripesSimulator::apply_memory(LayerResult& r, LayerWorkload& lw,
                                    engine::TimingCore& core) const {
  // Stripes packs activations (not weights): the AM/DRAM activation layout
  // follows the profile (or detected) precision, weights stay 16-bit rows.
  const nn::Layer& layer = lw.layer();
  engine::LayerStorage st;
  const int k = cfg_.filters();
  const int lanes = cfg_.lanes;
  const int windows_par = cfg_.windows;

  if (layer.kind == nn::LayerKind::kConv) {
    st.act_precision = layer.act_precision;
    st.act_dynamic = cfg_.dynamic_act_precision;
    st.out_precision = lw.out_precision;
    st.window_quantum = windows_par;
    st.filter_quantum = k;

    const std::int64_t ic_count = ceil_div(layer.inner_length(), lanes);
    ActPrecisionTable pa_table;
    if (cfg_.dynamic_act_precision) {
      pa_table = lw.act_group_precision_table(windows_par);
    }
    core.apply(r, lw, st, [&, pa_table](const mem::TileExtent& t) {
      // Mirrors simulate_compute's chunk loop restricted to the tile.
      double cyc = 0.0;
      for (std::int64_t wb = t.window_begin / windows_par;
           wb * windows_par < t.window_end; ++wb) {
        for (std::int64_t ic = 0; ic < ic_count; ++ic) {
          const int pa = cfg_.dynamic_act_precision
                             ? pa_table.at(t.conv_group, wb, ic)
                             : layer.act_precision;
          cyc += static_cast<double>(pa);
        }
      }
      return cyc * static_cast<double>(ceil_div(t.filter_count(), k));
    });
  } else {
    // FCL: 16 serial cycles per 16-activation chunk over the concurrent
    // filter x window units; weights and activations stay 16-bit.
    st.window_quantum = 1;
    const std::int64_t concurrent =
        static_cast<std::int64_t>(k) * windows_par;
    st.filter_quantum = concurrent;
    const std::int64_t ic_count = ceil_div(layer.in.elements(), lanes);
    core.apply(r, lw, st, [=](const mem::TileExtent& t) {
      return static_cast<double>(ceil_div(t.filter_count(), concurrent)) *
             static_cast<double>(ic_count) * 16.0;
    });
  }
}

LayerResult StripesSimulator::simulate_layer(LayerWorkload& lw,
                                             engine::TimingCore& core) const {
  LayerResult r = simulate_compute(lw);
  if (opts_.model_offchip) apply_memory(r, lw, core);
  r.activity.cycles = r.cycles();
  return r;
}

LayerResult StripesSimulator::simulate_layer(LayerWorkload& lw,
                                             mem::MemorySystem& mem) const {
  engine::TimingCore core(mem);
  LayerResult r = simulate_layer(lw, core);
  const std::uint64_t tail = core.finish();
  r.stall_cycles += tail;
  r.activity.dram_stall_cycles += tail;
  r.activity.cycles = r.cycles();
  return r;
}

RunResult StripesSimulator::run(NetworkWorkload& workload) {
  RunResult result;
  result.arch_name = name();
  result.network = workload.network().name();
  result.bits_per_cycle = 1;

  const mem::MemorySystemConfig mem_cfg =
      engine::resolve_memory_config(cfg_.equiv_macs, /*bit_packed=*/true, opts_);
  mem::MemorySystem mem(mem_cfg);
  engine::TimingCore core(mem);

  result.area = energy::stripes_area(cfg_, mem_cfg);

  for (std::size_t i = 0; i < workload.network().size(); ++i) {
    if (!workload.network().layer(i).has_weights()) continue;
    result.layers.push_back(simulate_layer(workload.layer(i), core));
  }
  engine::finish_run(result, core);
  return result;
}

}  // namespace loom::sim
