#include "sim/workload.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/zoo/zoo.hpp"
#include "quant/calibration.hpp"
#include "quant/group_precision.hpp"

namespace loom::sim {

namespace {

/// Table-3 target for the effective weight precision of a layer. Conv
/// layers use the published per-group entry; FC layers (not in Table 3)
/// apply the network's average conv trim ratio to their profile precision.
double weight_precision_target(const nn::Layer& layer,
                               const quant::PrecisionProfile& profile) {
  const auto* table3 = quant::maybe_effective_weight_precisions(profile.network);
  if (table3 == nullptr) {
    // Custom networks without a published Table 3 entry: mild trim (~15%)
    // representative of the published networks.
    return std::max(1.0, 0.85 * static_cast<double>(layer.weight_precision));
  }
  if (layer.kind == nn::LayerKind::kConv) {
    LOOM_EXPECTS(layer.precision_group >= 0 &&
                 layer.precision_group < static_cast<int>(table3->size()));
    return (*table3)[static_cast<std::size_t>(layer.precision_group)];
  }
  const double trim_ratio =
      mean(*table3) / static_cast<double>(profile.conv_weight);
  const double target = layer.weight_precision * trim_ratio;
  return std::clamp(target, 1.0, static_cast<double>(layer.weight_precision));
}

}  // namespace

LayerWorkload::LayerWorkload(const nn::Layer& layer, std::size_t layer_index,
                             const quant::PrecisionProfile& profile,
                             const WorkloadOptions& opts)
    : layer_(layer), layer_index_(layer_index), opts_(opts) {
  act_target_precision_ = std::max(
      1.0, static_cast<double>(layer.act_precision) - profile.dynamic_act_trim);
  if (layer.has_weights()) {
    table3_target_ = weight_precision_target(layer, profile);
  }
  if (layer.kind == nn::LayerKind::kConv) {
    // Activation-group geometry, derived once so steady-state queries never
    // re-run the shape arithmetic.
    windows_ = layer.windows();
    ic_count_ = ceil_div(layer.inner_length(), opts.lanes);
    // Calibrate the activation distribution so groups of 256 concurrent
    // values (the LM1b/Stripes detection group) average the target trim.
    act_spec_ = quant::calibrated_spec_cached(
        layer.act_precision, /*is_signed=*/false, opts.act_zero_fraction,
        /*group_size=*/256, act_target_precision_);
  }
}

void LayerWorkload::ensure_input_tensor() {
  if (input_.has_value()) return;
  LOOM_EXPECTS(layer_.kind == nn::LayerKind::kConv);
  ensure_group_calibrated();
  input_ = nn::make_activation_tensor(layer_.in, act_spec_, opts_.seed,
                                      nn::activation_stream(layer_index_));
}

void LayerWorkload::ensure_planes() {
  ensure_input_tensor();
  if (!planes_.has_value()) {
    // Build fully before engaging the optional: a throwing build must not
    // leave a half-built plane for a later query to index out of bounds.
    ActOrPlanes planes(layer_, opts_.lanes);
    planes.build(*input_);
    planes_ = std::move(planes);
  }
}

void LayerWorkload::ensure_group_calibrated() {
  if (group_calibrated_) return;
  group_calibrated_ = true;
  // Bisect the concentration exponent so the mean detected precision over
  // the real (shared-value) group structure hits the target. Grouping uses
  // 16 columns — the LM1b / Stripes configuration whose 256-value groups
  // the paper's dynamic-precision unit inspects.
  constexpr int kCols = 16;
  constexpr int kMaxGroups = 320;
  constexpr int kIterations = 22;
  const std::uint64_t stream = nn::activation_stream(layer_index_);

  nn::SyntheticSpec spec = act_spec_;
  spec.alpha = 1.0;
  // One raw-RNG pass over the sampled groups warm-starts every bisection
  // measurement: the draws behind a group are alpha-independent, so each
  // iteration below costs one pow per group instead of a full 256-value
  // source scan. The measured means are byte-identical to the scan's, so
  // the bisection path — and the final spec — are unchanged.
  const CalibrationPlanes planes(
      layer_, opts_.lanes, kCols, kMaxGroups,
      nn::SyntheticSource(opts_.seed, stream, spec));
  const auto measure = [&](const nn::SyntheticSpec& s) {
    return planes.mean_precision(nn::SyntheticSource(opts_.seed, stream, s),
                                 layer_.act_precision);
  };

  const double at_min = measure(spec);
  if (act_target_precision_ >= at_min) {
    act_spec_ = spec;
    return;
  }
  double lo = 0.0;
  double hi = 16.0;  // log(alpha)
  for (int it = 0; it < kIterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    spec.alpha = std::exp(mid);
    const double measured = measure(spec);
    if (std::abs(measured - act_target_precision_) < 0.04) break;
    if (measured > act_target_precision_) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  act_spec_ = spec;
}

LayerWorkload::ColsCache& LayerWorkload::ensure_cols_cache(int cols) {
  LOOM_EXPECTS(layer_.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(cols >= 1);
  ensure_planes();
  if (const auto it = group_precision_cache_.find(cols);
      it != group_precision_cache_.end()) {
    return it->second;
  }
  // Allocate the slots before inserting the map entry so a failed
  // allocation leaves the cache untouched (no half-built entry with null
  // slots for a later shared-lock lookup to dereference).
  const std::int64_t wb_count = ceil_div(windows_, cols);
  const auto slot_count =
      static_cast<std::size_t>(layer_.groups * wb_count * ic_count_);
  auto slots = std::make_unique<std::atomic<std::uint8_t>[]>(slot_count);
  auto term_slots = std::make_unique<std::atomic<std::uint8_t>[]>(slot_count);
  ColsCache& cache = group_precision_cache_.try_emplace(cols).first->second;
  cache.cols = cols;
  cache.wb_count = wb_count;
  cache.slots = std::move(slots);
  cache.term_slots = std::move(term_slots);
  return cache;
}

int LayerWorkload::cached_precision(const ColsCache& cache, std::int64_t g,
                                    std::int64_t wb, std::int64_t ic) const {
  // One folded bounds check instead of re-deriving the layer geometry on
  // every call (negative arguments wrap to huge unsigned values and fail).
  LOOM_EXPECTS(static_cast<std::uint64_t>(g) <
                   static_cast<std::uint64_t>(layer_.groups) &&
               static_cast<std::uint64_t>(wb) <
                   static_cast<std::uint64_t>(cache.wb_count) &&
               static_cast<std::uint64_t>(ic) <
                   static_cast<std::uint64_t>(ic_count_));
  const std::size_t key =
      static_cast<std::size_t>((g * cache.wb_count + wb) * ic_count_ + ic);
  // Slots are biased by +1 (0 = "not yet computed"), so an all-zero group
  // still caches. A raced duplicate compute stores the same byte — the
  // value is a pure function of the key over the immutable OR planes.
  const std::uint8_t cached = cache.slots[key].load(std::memory_order_relaxed);
  if (cached != 0) return cached - 1;
  const int detected = needed_bits_unsigned(planes_->group_or(g, ic, wb, cache.cols));
  const int clipped = std::min(detected, layer_.act_precision);
  cache.slots[key].store(static_cast<std::uint8_t>(clipped + 1),
                         std::memory_order_relaxed);
  return clipped;
}

int LayerWorkload::cached_term_count(const ColsCache& cache, std::int64_t g,
                                     std::int64_t wb, std::int64_t ic) const {
  LOOM_EXPECTS(static_cast<std::uint64_t>(g) <
                   static_cast<std::uint64_t>(layer_.groups) &&
               static_cast<std::uint64_t>(wb) <
                   static_cast<std::uint64_t>(cache.wb_count) &&
               static_cast<std::uint64_t>(ic) <
                   static_cast<std::uint64_t>(ic_count_));
  const std::size_t key =
      static_cast<std::size_t>((g * cache.wb_count + wb) * ic_count_ + ic);
  const std::uint8_t cached =
      cache.term_slots[key].load(std::memory_order_relaxed);
  if (cached != 0) return cached - 1;
  // Mask to the layer Pa before counting, mirroring cached_precision's clip:
  // planes above the profile precision don't exist in the serialized stream.
  const auto masked = static_cast<std::uint32_t>(
      planes_->group_or(g, ic, wb, cache.cols) &
      ((std::uint32_t{1} << layer_.act_precision) - 1u));
  const int terms = std::max(1, std::popcount(masked));
  cache.term_slots[key].store(static_cast<std::uint8_t>(terms + 1),
                              std::memory_order_relaxed);
  return terms;
}

int LayerWorkload::act_group_precision(std::int64_t g, std::int64_t wb,
                                       std::int64_t ic, int cols) {
  // Steady state runs under the shared lock: once the OR planes and this
  // cols' cache exist, hits read the atomic slot and misses OR a handful of
  // contiguous plane entries and publish lock-free.
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    const auto it = group_precision_cache_.find(cols);
    if (it != group_precision_cache_.end()) {
      return cached_precision(it->second, g, wb, ic);
    }
  }
  // First call for this cols: build the planes and size the cache under the
  // exclusive lock.
  const std::lock_guard<std::shared_mutex> lock(memo_mutex_);
  return cached_precision(ensure_cols_cache(cols), g, wb, ic);
}

ActPrecisionTable LayerWorkload::act_group_precision_table(int cols) {
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    const auto it = group_precision_cache_.find(cols);
    if (it != group_precision_cache_.end() &&
        it->second.table_filled.load(std::memory_order_acquire)) {
      return {it->second.slots.get(), it->second.wb_count, ic_count_};
    }
  }
  const std::lock_guard<std::shared_mutex> lock(memo_mutex_);
  ColsCache& cache = ensure_cols_cache(cols);
  if (!cache.table_filled.load(std::memory_order_relaxed)) {
    // Fill from whole plane rows: for a fixed (g, ic) the window blocks OR
    // contiguous segments of one row, so the pass streams each row exactly
    // once. cached_precision keeps the detect/clip/bias contract in one
    // place for both bulk fill and single queries.
    for (std::int64_t g = 0; g < layer_.groups; ++g) {
      for (std::int64_t ic = 0; ic < ic_count_; ++ic) {
        for (std::int64_t wb = 0; wb < cache.wb_count; ++wb) {
          (void)cached_precision(cache, g, wb, ic);
        }
      }
    }
    cache.table_filled.store(true, std::memory_order_release);
  }
  return {cache.slots.get(), cache.wb_count, ic_count_};
}

int LayerWorkload::act_group_term_count(std::int64_t g, std::int64_t wb,
                                        std::int64_t ic, int cols) {
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    const auto it = group_precision_cache_.find(cols);
    if (it != group_precision_cache_.end()) {
      return cached_term_count(it->second, g, wb, ic);
    }
  }
  const std::lock_guard<std::shared_mutex> lock(memo_mutex_);
  return cached_term_count(ensure_cols_cache(cols), g, wb, ic);
}

ActTermTable LayerWorkload::act_group_term_table(int cols) {
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    const auto it = group_precision_cache_.find(cols);
    if (it != group_precision_cache_.end() &&
        it->second.term_table_filled.load(std::memory_order_acquire)) {
      return {it->second.term_slots.get(), it->second.wb_count, ic_count_};
    }
  }
  const std::lock_guard<std::shared_mutex> lock(memo_mutex_);
  ColsCache& cache = ensure_cols_cache(cols);
  if (!cache.term_table_filled.load(std::memory_order_relaxed)) {
    for (std::int64_t g = 0; g < layer_.groups; ++g) {
      for (std::int64_t ic = 0; ic < ic_count_; ++ic) {
        for (std::int64_t wb = 0; wb < cache.wb_count; ++wb) {
          (void)cached_term_count(cache, g, wb, ic);
        }
      }
    }
    cache.term_table_filled.store(true, std::memory_order_release);
  }
  return {cache.term_slots.get(), cache.wb_count, ic_count_};
}

double LayerWorkload::effective_weight_precision() {
  const std::lock_guard<std::mutex> lock(weight_mutex_);
  if (measured_weight_precision_.has_value()) return *measured_weight_precision_;
  LOOM_EXPECTS(layer_.has_weights());

  const nn::SyntheticSpec spec = quant::calibrated_spec_cached(
      layer_.weight_precision, /*is_signed=*/true, /*zero_fraction=*/0.0,
      /*group_size=*/16, table3_target_);
  const nn::SyntheticSource source(opts_.seed, nn::weight_stream(layer_index_),
                                   spec);
  const std::int64_t count = layer_.weight_count();
  const std::int64_t groups = ceil_div(count, 16);
  const int stride = static_cast<int>(std::max<std::int64_t>(
      1, groups / std::max<std::int64_t>(1, opts_.weight_sample_cap / 16)));
  const quant::GroupPrecisionStats stats =
      quant::weight_group_stats(source, count, /*group_size=*/16, stride);
  measured_weight_precision_ = stats.mean;
  return *measured_weight_precision_;
}

double LayerWorkload::honest_weight_precision(int rows_groups) {
  LOOM_EXPECTS(rows_groups >= 1);
  const std::lock_guard<std::mutex> lock(weight_mutex_);
  const auto it = honest_cache_.find(rows_groups);
  if (it != honest_cache_.end()) return it->second;

  const nn::SyntheticSpec spec = quant::calibrated_spec_cached(
      layer_.weight_precision, /*is_signed=*/true, /*zero_fraction=*/0.0,
      /*group_size=*/16, table3_target_);
  const nn::SyntheticSource source(opts_.seed, nn::weight_stream(layer_index_),
                                   spec);
  const std::int64_t count = layer_.weight_count();
  const std::int64_t groups = std::max<std::int64_t>(1, count / 16);

  // Expected max group precision when `rows_groups` groups load together:
  // deterministic Monte-Carlo over trials of randomly placed groups.
  const CounterRng rng(opts_.seed, 0x484F4E4553ull ^ layer_index_);
  constexpr int kTrials = 48;
  double acc = 0.0;
  std::uint64_t draw = 0;
  for (int t = 0; t < kTrials; ++t) {
    int maxp = 1;
    for (int r = 0; r < rows_groups; ++r) {
      const std::int64_t g =
          static_cast<std::int64_t>(rng.below(draw++, static_cast<std::uint64_t>(groups)));
      const std::int64_t begin = g * 16;
      const std::int64_t end = std::min<std::int64_t>(begin + 16, count);
      for (std::int64_t i = begin; i < end; ++i) {
        maxp = std::max(maxp, needed_bits_signed(
                                  source.at(static_cast<std::uint64_t>(i))));
      }
    }
    acc += maxp;
  }
  const double result =
      std::min(acc / kTrials, static_cast<double>(layer_.weight_precision));
  honest_cache_.emplace(rows_groups, result);
  return result;
}

double LayerWorkload::essential_weight_planes() {
  const std::lock_guard<std::mutex> lock(weight_mutex_);
  if (essential_planes_.has_value()) return *essential_planes_;
  LOOM_EXPECTS(layer_.has_weights());

  const nn::SyntheticSpec spec = quant::calibrated_spec_cached(
      layer_.weight_precision, /*is_signed=*/true, /*zero_fraction=*/0.0,
      /*group_size=*/16, table3_target_);
  const nn::SyntheticSource source(opts_.seed, nn::weight_stream(layer_index_),
                                   spec);
  const std::int64_t count = layer_.weight_count();
  const std::int64_t groups = ceil_div(count, 16);
  const std::int64_t stride = std::max<std::int64_t>(
      1, groups / std::max<std::int64_t>(1, opts_.weight_sample_cap / 16));

  double sum = 0.0;
  std::int64_t n = 0;
  for (std::int64_t g = 0; g < groups; g += stride) {
    const std::int64_t end = std::min<std::int64_t>((g + 1) * 16, count);
    std::uint32_t ored = 0;
    for (std::int64_t i = g * 16; i < end; ++i) {
      const Value v = source.at(static_cast<std::uint64_t>(i));
      const auto mag = static_cast<std::uint32_t>(v < 0 ? -static_cast<std::int32_t>(v)
                                                        : static_cast<std::int32_t>(v));
      ored |= mag;
    }
    // Essential magnitude planes plus one sign pass; an all-zero group
    // still spends one cycle (the detector/sequencer granularity).
    sum += std::max(1, std::popcount(ored) + (ored != 0 ? 1 : 0));
    ++n;
  }
  essential_planes_ = n ? sum / static_cast<double>(n) : 1.0;
  return *essential_planes_;
}

LayerWorkload::WeightTermStats LayerWorkload::naf_weight_terms() {
  const std::lock_guard<std::mutex> lock(weight_mutex_);
  if (naf_terms_.has_value()) return *naf_terms_;
  LOOM_EXPECTS(layer_.has_weights());

  const nn::SyntheticSpec spec = quant::calibrated_spec_cached(
      layer_.weight_precision, /*is_signed=*/true, /*zero_fraction=*/0.0,
      /*group_size=*/16, table3_target_);
  const nn::SyntheticSource source(opts_.seed, nn::weight_stream(layer_index_),
                                   spec);
  const std::int64_t count = layer_.weight_count();
  const std::int64_t groups = ceil_div(count, 16);
  const std::int64_t stride = std::max<std::int64_t>(
      1, groups / std::max<std::int64_t>(1, opts_.weight_sample_cap / 16));

  // One pass over the sampled groups measures both statistics: the mean
  // per-weight NAF digit count (what a linear estimate multiplies by) and
  // the mean synchronized group length (what a 16-lane sequencer that walks
  // every digit position present in *any* lane actually spends).
  double term_sum = 0.0;
  double sync_sum = 0.0;
  std::int64_t weights = 0;
  std::int64_t n = 0;
  for (std::int64_t g = 0; g < groups; g += stride) {
    const std::int64_t end = std::min<std::int64_t>((g + 1) * 16, count);
    std::uint32_t union_positions = 0;
    for (std::int64_t i = g * 16; i < end; ++i) {
      const Value v = source.at(static_cast<std::uint64_t>(i));
      const auto mag = static_cast<std::uint32_t>(
          v < 0 ? -static_cast<std::int32_t>(v) : static_cast<std::int32_t>(v));
      const NafDigits d = naf_digits(mag);
      term_sum += std::popcount(d.plus) + std::popcount(d.minus);
      union_positions |= d.positions();
      ++weights;
    }
    sync_sum += std::max(1, std::popcount(union_positions));
    ++n;
  }
  WeightTermStats stats;
  // Floor at one sixteenth: even an all-zero group costs the sequencer one
  // cycle, so the per-weight average cannot be meaningfully below 1/16.
  stats.mean_per_weight =
      weights ? std::max(term_sum / static_cast<double>(weights), 1.0 / 16.0)
              : 1.0;
  stats.synced_per_group = n ? sync_sum / static_cast<double>(n) : 1.0;
  naf_terms_ = stats;
  return stats;
}

NetworkWorkload::NetworkWorkload(nn::Network net,
                                 const quant::PrecisionProfile& profile,
                                 WorkloadOptions opts)
    : net_(std::move(net)), profile_(profile), opts_(opts) {
  layer_once_ = std::make_unique<std::once_flag[]>(net_.size());
  layers_.resize(net_.size());
}

LayerWorkload& NetworkWorkload::layer(std::size_t index) {
  LOOM_EXPECTS(index < layers_.size());
  // call_once: the ctor may run a calibration bisection, so racing threads
  // wanting the *same* layer wait for one construction (no duplicated
  // work), while different layers construct concurrently.
  std::call_once(layer_once_[index], [&] {
    layers_[index] = std::make_unique<LayerWorkload>(net_.layer(index), index,
                                                     profile_, opts_);
    // Output activations are stored at the precision the next weighted
    // layer's profile requires for its inputs.
    int out_prec = kBasePrecision;
    for (std::size_t j = index + 1; j < net_.size(); ++j) {
      if (net_.layer(j).kind == nn::LayerKind::kConv) {
        out_prec = net_.layer(j).act_precision;
        break;
      }
      if (net_.layer(j).kind == nn::LayerKind::kFullyConnected) break;
    }
    layers_[index]->out_precision = out_prec;
  });
  return *layers_[index];
}

std::unique_ptr<NetworkWorkload> prepare_network(const std::string& zoo_name,
                                                 quant::AccuracyTarget target,
                                                 WorkloadOptions opts) {
  nn::Network net = nn::zoo::make(zoo_name);
  const quant::PrecisionProfile& profile = quant::profile_for(zoo_name, target);
  quant::apply_profile(net, profile);
  return std::make_unique<NetworkWorkload>(std::move(net), profile, opts);
}

}  // namespace loom::sim
