// Bit-sliced functional engine: simulates up to 64 SIP columns per machine
// word. One activation bit-plane of a slab of adjacent windows is packed
// into a uint64_t (bit c = that bit of column c's activation), so one AND +
// one carry-save ripple step advances all 64 columns at once. The engine
// replicates arch::Sip semantics exactly — MSB-first activation streaming,
// sign-pass negation for two's-complement operands, weight-bit AC2 shifts,
// per-(column-group, chunk) dynamic precision from the dispatcher's OR
// detector — but runs word-parallel instead of scalar bit-by-bit.
//
// Layout per (group, slab) of a convolution:
//
//        columns (windows)  -> bit index 0..63 of one uint64_t word
//        +----------------------------------------------------+
//   b=0  | plane word lane 0 | plane word lane 1 | ... lane L |  activation
//   b=1  |        ...        |        ...        |            |  bit-planes
//   ...  |  (transposed once per chunk, reused for all rows)  |
//        +----------------------------------------------------+
//
// For a filter row r and weight bit wb, every lane whose weight bit is set
// contributes its plane word at shift (b + wb) into a 64-bit-wide bit-sliced
// accumulator (word k holds bit k of every column's partial sum); the
// weight/activation sign passes accumulate into a separate negative
// accumulator. A final 64x64 bit transpose converts each accumulator into
// per-column integers: output = pos - neg, bit-identical to driving the
// scalar arch::Sip grid.
//
// FunctionalLoomEngine and FunctionalDpnnEngine run on this engine by
// default; set LOOM_FUNCTIONAL_SCALAR=1 (or FunctionalOptions::force_scalar)
// to fall back to the scalar oracle. All cycle counts, streamed-precision
// means, and dispatcher/detector statistics are reproduced analytically and
// are byte-identical to the scalar path (pinned by golden digests in
// tests/test_bitslice_engine.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace loom::sim {

/// In-place transpose of a 64x64 bit matrix held as 64 words (bit j of
/// word i = element (i, j)). Used to convert a bit-sliced accumulator
/// (word k = bit k of every column) into per-column integers.
void transpose64(std::uint64_t a[64]) noexcept;

class BitsliceEngine {
 public:
  struct Options {
    int rows = 16;   ///< SIP rows (filter-block height; cycle accounting)
    int cols = 16;   ///< SIP columns = dynamic-detection group width
    int lanes = 16;  ///< products per SIP per cycle (max 32)
    int jobs = 1;    ///< (group, slab) fan-out over the shared pool; 0 = all
  };

  /// Streaming semantics of one layer run. Mirrors what the dispatcher +
  /// arch::Sip grid would do: activations serialized at `act_precision`
  /// planes (optionally trimmed per column-group by dynamic detection),
  /// weights at `weight_precision` two's-complement planes with a negated
  /// MSB pass. `act_signed` additionally negates the activation MSB plane
  /// (requires act_precision == 16; used by the FC and DPNN paths).
  struct SliceSpec {
    int act_precision = kBasePrecision;
    int weight_precision = kBasePrecision;
    bool act_signed = false;
    bool dynamic = false;
  };

  /// Cycle and data-movement accounting identical to what the scalar
  /// dispatcher-driven grid reports for the same layer.
  struct ConvStats {
    std::uint64_t cycles = 0;
    double streamed_pa = 0.0;  ///< sum of streamed Pa over chunks
    std::int64_t chunks = 0;
    std::uint64_t act_bits_streamed = 0;
    std::uint64_t weight_bits_streamed = 0;
    std::uint64_t detect_invocations = 0;
    std::uint64_t detect_values = 0;
  };

  explicit BitsliceEngine(Options opts);

  /// True when `opts` can be bit-sliced (cols fits a 64-bit slab).
  [[nodiscard]] static bool supports(const Options& opts) noexcept {
    return opts.cols >= 1 && opts.cols <= 64 && opts.lanes >= 1 &&
           opts.lanes <= 32 && opts.rows >= 1;
  }

  /// Execute one convolution layer; exact accumulators into `wide` (shape
  /// [out.c][out.h][out.w], preallocated).
  ConvStats run_conv(const nn::Layer& layer, const nn::Tensor& input,
                     const nn::Tensor& weights, const SliceSpec& spec,
                     nn::WideTensor& wide);

  /// Batched convolution: the window axes of all requests concatenate into
  /// one global window range, so windows from different requests share the
  /// same 64-column slabs (and dynamic-detection groups may span request
  /// boundaries — the detected precision is an upper bound of every value
  /// in the group, so the exact accumulators are unchanged). Each request's
  /// outputs demux into its own `wides[r]` (preallocated, one per input).
  /// With one request this is bit- and stats-identical to `run_conv`.
  ConvStats run_conv_batch(const nn::Layer& layer,
                           std::span<const nn::Tensor* const> inputs,
                           const nn::Tensor& weights, const SliceSpec& spec,
                           std::span<nn::WideTensor* const> wides);

  /// Execute one fully-connected layer (64 output neurons per word; signed
  /// 16-bit activations, `weight_precision` two's-complement weight planes).
  void run_fc(const nn::Layer& layer, const nn::Tensor& input,
              const nn::Tensor& weights, int weight_precision,
              nn::WideTensor& wide);

  /// Batched fully-connected layer, request-packed: each 64-bit word holds
  /// one activation bit of up to 64 *requests* (instead of 64 output
  /// neurons), so the per-neuron weight NAF walk is shared by the whole
  /// batch — the lane fill a single request cannot provide. Accumulators
  /// are exact, so each `wides[r]` is byte-identical to a solo `run_fc`.
  /// A single-request batch takes the `run_fc` path unchanged.
  void run_fc_batch(const nn::Layer& layer,
                    std::span<const nn::Tensor* const> inputs,
                    const nn::Tensor& weights, int weight_precision,
                    std::span<nn::WideTensor* const> wides);

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

 private:
  struct Scratch {
    /// Dense act bit-planes: per (chunk, lane) the nonzero plane words and
    /// their bit positions, walked linearly by every filter row.
    std::vector<std::uint64_t> plane_words;
    std::vector<std::uint8_t> plane_bits;
    std::vector<std::int32_t> plane_begin;  ///< [ic*lanes + l] .. +1 range
    /// Addend arenas: per (sign, shift) pending one-bit-per-column words,
    /// reduced by carry-save adder sweeps (see bitslice_engine.cpp).
    std::vector<std::uint64_t> arena;
    std::vector<std::int32_t> arena_n;
    std::uint64_t pos[64];
    std::uint64_t neg[64];
  };

  void conv_slab(const nn::Layer& layer,
                 std::span<const nn::Tensor* const> inputs,
                 const nn::Tensor& weights, const SliceSpec& spec,
                 std::int64_t g, std::int64_t slab,
                 std::span<nn::WideTensor* const> wides, Scratch& scratch,
                 ConvStats& stats) const;
  void fc_slab(const nn::Layer& layer, const nn::Tensor& input,
               const nn::Tensor& weights, int weight_precision,
               std::int64_t slab, nn::WideTensor& wide, Scratch& scratch) const;
  /// Request-packed FC, split so the per-neuron walk can stripe over the
  /// pool: `fc_batch_planes` transposes one request-slab's activations into
  /// `planes` (read-only afterwards), `fc_batch_neurons` accumulates output
  /// neurons [co_lo, co_hi) against them with stripe-private arenas.
  void fc_batch_planes(const nn::Layer& layer,
                       std::span<const nn::Tensor* const> inputs,
                       std::int64_t slab, Scratch& planes) const;
  void fc_batch_neurons(const nn::Layer& layer, const nn::Tensor& weights,
                        int weight_precision, std::int64_t slab,
                        std::span<nn::WideTensor* const> wides,
                        const Scratch& planes, Scratch& acc,
                        std::int64_t co_lo, std::int64_t co_hi) const;

  Options opts_;
  std::int64_t slab_windows_;  ///< windows per 64-bit slab (multiple of cols)
};

}  // namespace loom::sim
