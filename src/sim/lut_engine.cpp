#include "sim/lut_engine.hpp"

#include <algorithm>
#include <climits>
#include <cstring>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/im2col.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LOOM_LUT_X86 1
#endif

namespace loom::sim {

namespace {

/// Inner-product length bound shared with the bit-sliced engine: each
/// 8-activation group contributes |partial| <= 8 * 2^16 * 2^15 < 2^34, so
/// inner < 2^28 keeps every int64 accumulator exact (< 2^59).
constexpr std::int64_t kMaxInner = std::int64_t{1} << 28;

/// Groups whose detected activation magnitude needs <= 12 unsigned bits
/// (or whose signed magnitudes sum below 2^15) have all 256 partial sums
/// inside int16 — the tables the hot loop touches shrink by half.
constexpr std::int32_t kNarrowLimit = 32767;

inline std::int32_t sext16(std::uint32_t raw) noexcept {
  return static_cast<std::int32_t>(
      static_cast<std::int16_t>(static_cast<std::uint16_t>(raw)));
}

/// Pack the pw 1-bit weight slices of one 8-element group into `out[b]`
/// (bit j of out[b] = bit b of weights w[j] masked to pw bits). Cost is
/// proportional to the set bits, so low-Pw rows pack in a handful of ops.
inline void pack_group_slices(const nn::Tensor& weights, std::int64_t base,
                              std::int64_t navail, std::uint32_t w_mask,
                              std::uint8_t* out, int pw) noexcept {
  std::memset(out, 0, static_cast<std::size_t>(pw));
  for (std::int64_t j = 0; j < navail; ++j) {
    std::uint32_t wv =
        static_cast<std::uint16_t>(weights.flat(base + j)) & w_mask;
    const auto jbit = static_cast<std::uint8_t>(1u << j);
    while (wv != 0) {
      out[std::countr_zero(wv)] |= jbit;
      wv &= wv - 1;
    }
  }
}

/// Doubling fill of one 256-entry partial-sum table: lut[m | 1<<j] =
/// lut[m] + a[j]. One add per entry; the stride-j inner runs vectorize.
template <typename T>
inline void build_table(const std::int32_t* a, T* lut) noexcept {
  lut[0] = 0;
  for (int j = 0; j < 8; ++j) {
    const int step = 1 << j;
    const T aj = static_cast<T>(a[j]);
    for (int i = 0; i < step; ++i) {
      lut[step + i] = static_cast<T>(lut[i] + aj);
    }
  }
}

/// The signed-weight decomposition: u = raw & (2^pw - 1) has value
/// u - msb * 2^pw, so the group inner product is the plain-binary slice sum
/// with the MSB slice's net coefficient flipped to -2^(pw-1).
template <typename T>
inline std::int64_t group_lookup(const T* lut, const std::uint8_t* wb,
                                 int pw) noexcept {
  const int msb = pw - 1;
  std::int64_t partial =
      -(static_cast<std::int64_t>(lut[wb[msb]]) << msb);
  for (int b = 0; b < msb; ++b) {
    partial += static_cast<std::int64_t>(lut[wb[b]]) << b;
  }
  return partial;
}

/// Scalar lookup walk over n tables — the tail/fallback the vector paths
/// defer to (and the whole story below kAvx2).
template <typename T>
inline std::int64_t accumulate_scalar(const T* luts, const std::uint8_t* w,
                                      const std::int32_t* bidx, std::int64_t n,
                                      int pw) noexcept {
  std::int64_t sum = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    sum += group_lookup(luts + t * 256, w + bidx[t], pw);
  }
  return sum;
}

#if defined(LOOM_LUT_X86)

// GCC 12 reports spurious "'__Y' may be used uninitialized" against the
// shift/extract intrinsics below: their header definitions pass
// _mm512_undefined_epi32() as a never-read pass-through operand (GCC
// PR 105593). Scoped to the vector kernels only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

// ---------------------------------------------------------------------------
// Vector table build. The doubling fill's stride-j inner loop is a pure
// broadcast-add: lut[step+i] = lut[i] + a[j] for i < step — so once step
// reaches the vector width the fill runs width entries per op. Wrapping
// int16 adds (_mm256_add_epi16) match the scalar static_cast<T> truncation
// exactly; in practice narrow tables never wrap (sum_abs <= 32767 by
// construction).

// The table head is built entirely in a register: entry m is the subset sum
// of the a[j] whose bit is set in m, so lane m accumulates a[j] exactly when
// bit j of its index is set — one masked broadcast-add per j, no scalar
// stores. This matters more than the wide fill itself: a scalar head of
// 2-byte stores re-read by the first wide load defeats store-to-load
// forwarding and stalls every table build. Once the head is stored at
// vector width, the remaining doubling loads hit same-width same-offset
// stores and forward cleanly.

__attribute__((target("avx2"))) void build_table_i16_avx2(
    const std::int32_t* a, std::int16_t* lut) noexcept {
  // Index-bit masks for lanes 0..15 (setr: lane 0 first).
  const __m256i m0 = _mm256_setr_epi16(0, -1, 0, -1, 0, -1, 0, -1,
                                       0, -1, 0, -1, 0, -1, 0, -1);
  const __m256i m1 = _mm256_setr_epi16(0, 0, -1, -1, 0, 0, -1, -1,
                                       0, 0, -1, -1, 0, 0, -1, -1);
  const __m256i m2 = _mm256_setr_epi16(0, 0, 0, 0, -1, -1, -1, -1,
                                       0, 0, 0, 0, -1, -1, -1, -1);
  const __m256i m3 = _mm256_setr_epi16(0, 0, 0, 0, 0, 0, 0, 0,
                                       -1, -1, -1, -1, -1, -1, -1, -1);
  __m256i v = _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(a[0])), m0);
  v = _mm256_add_epi16(
      v, _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(a[1])), m1));
  v = _mm256_add_epi16(
      v, _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(a[2])), m2));
  v = _mm256_add_epi16(
      v, _mm256_and_si256(_mm256_set1_epi16(static_cast<short>(a[3])), m3));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lut), v);
  for (int j = 4; j < 8; ++j) {
    const int step = 1 << j;
    const __m256i aj = _mm256_set1_epi16(static_cast<short>(a[j]));
    for (int i = 0; i < step; i += 16) {
      const __m256i w =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lut + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lut + step + i),
                          _mm256_add_epi16(w, aj));
    }
  }
}

__attribute__((target("avx512f,avx512bw"))) void build_table_i16_avx512(
    const std::int32_t* a, std::int16_t* lut) noexcept {
  // Entries 0..31 in one zmm: lane m gains a[j] iff bit j of m is set
  // (maskz_set1 = broadcast-where-bit-set, zero elsewhere).
  __m512i v =
      _mm512_maskz_set1_epi16(0xAAAAAAAAu, static_cast<short>(a[0]));
  v = _mm512_add_epi16(
      v, _mm512_maskz_set1_epi16(0xCCCCCCCCu, static_cast<short>(a[1])));
  v = _mm512_add_epi16(
      v, _mm512_maskz_set1_epi16(0xF0F0F0F0u, static_cast<short>(a[2])));
  v = _mm512_add_epi16(
      v, _mm512_maskz_set1_epi16(0xFF00FF00u, static_cast<short>(a[3])));
  v = _mm512_add_epi16(
      v, _mm512_maskz_set1_epi16(0xFFFF0000u, static_cast<short>(a[4])));
  _mm512_storeu_si512(reinterpret_cast<void*>(lut), v);
  // Doubling fill register-resident: entries [2^j, 2^(j+1)) = low half +
  // a[j], so every step is adds on live zmms — no loads at all.
  const __m512i a5 = _mm512_set1_epi16(static_cast<short>(a[5]));
  const __m512i a6 = _mm512_set1_epi16(static_cast<short>(a[6]));
  const __m512i a7 = _mm512_set1_epi16(static_cast<short>(a[7]));
  const __m512i v32 = _mm512_add_epi16(v, a5);
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 32), v32);
  const __m512i v64a = _mm512_add_epi16(v, a6);
  const __m512i v64b = _mm512_add_epi16(v32, a6);
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 64), v64a);
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 96), v64b);
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 128),
                      _mm512_add_epi16(v, a7));
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 160),
                      _mm512_add_epi16(v32, a7));
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 192),
                      _mm512_add_epi16(v64a, a7));
  _mm512_storeu_si512(reinterpret_cast<void*>(lut + 224),
                      _mm512_add_epi16(v64b, a7));
}

__attribute__((target("avx2"))) void build_table_i32_avx2(
    const std::int32_t* a, std::int32_t* lut) noexcept {
  // Entries 0..7 in one ymm (lane m = subset sum over a[0..2]); see the
  // i16 variant for why the head must not round-trip through memory.
  const __m256i m0 = _mm256_setr_epi32(0, -1, 0, -1, 0, -1, 0, -1);
  const __m256i m1 = _mm256_setr_epi32(0, 0, -1, -1, 0, 0, -1, -1);
  const __m256i m2 = _mm256_setr_epi32(0, 0, 0, 0, -1, -1, -1, -1);
  __m256i v = _mm256_and_si256(_mm256_set1_epi32(a[0]), m0);
  v = _mm256_add_epi32(v, _mm256_and_si256(_mm256_set1_epi32(a[1]), m1));
  v = _mm256_add_epi32(v, _mm256_and_si256(_mm256_set1_epi32(a[2]), m2));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lut), v);
  for (int j = 3; j < 8; ++j) {
    const int step = 1 << j;
    const __m256i aj = _mm256_set1_epi32(a[j]);
    for (int i = 0; i < step; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lut + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lut + step + i),
                          _mm256_add_epi32(v, aj));
    }
  }
}

__attribute__((target("avx512f"))) void build_table_i32_avx512(
    const std::int32_t* a, std::int32_t* lut) noexcept {
  // Entries 0..15 in one zmm: lane m gains a[j] iff bit j of m is set
  // (maskz_set1 = broadcast-where-bit-set, zero elsewhere).
  __m512i v = _mm512_maskz_set1_epi32(0xAAAAu, a[0]);
  v = _mm512_add_epi32(v, _mm512_maskz_set1_epi32(0xCCCCu, a[1]));
  v = _mm512_add_epi32(v, _mm512_maskz_set1_epi32(0xF0F0u, a[2]));
  v = _mm512_add_epi32(v, _mm512_maskz_set1_epi32(0xFF00u, a[3]));
  _mm512_storeu_si512(reinterpret_cast<void*>(lut), v);
  for (int j = 4; j < 8; ++j) {
    const int step = 1 << j;
    const __m512i aj = _mm512_set1_epi32(a[j]);
    for (int i = 0; i < step; i += 16) {
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(lut + i));
      _mm512_storeu_si512(reinterpret_cast<void*>(lut + step + i),
                          _mm512_add_epi32(v, aj));
    }
  }
}

// ---------------------------------------------------------------------------
// Vector lookup+accumulate. 8 (AVX2) / 16 (AVX-512) groups advance in
// lockstep for one output feature: per weight bit b, a dword gather pulls
// each group's slice byte (low byte of an unaligned dword at wbytes +
// bidx[t] + b), a second gather pulls the table entries at t*256 + slice,
// and the shifted terms accumulate — int32 per-lane for int16 tables
// (|partial| <= 32767 * (2^16 - 1) < 2^31, exact), widened to int64 per
// bit for int32 tables (terms reach 2^18 << 15 = 2^33). The MSB slice's
// term is subtracted, matching the signed decomposition; integer exactness
// makes the reassociation byte-identical to the scalar walk. Tails (< one
// vector) and indices that would overflow the 32-bit gather index space
// fall back to the scalar walk.

/// Group tables live at t*256 entries; the gather index must stay in
/// int32. n <= kMaxGatherGroups keeps (n-1)*256 + 255 exact.
constexpr std::int64_t kMaxGatherGroups = (INT_MAX / 256) - 1;

__attribute__((target("avx2"))) std::int64_t accumulate_i16_avx2(
    const std::int16_t* luts, const std::uint8_t* w, const std::int32_t* bidx,
    std::int64_t n, int pw) noexcept {
  const int msb = pw - 1;
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i lane_tables =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  std::int64_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256i off =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bidx + t));
    const __m256i tbase = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(t * 256)), lane_tables);
    __m256i part = _mm256_setzero_si256();
    for (int b = 0; b < pw; ++b) {
      const __m256i waddr = _mm256_add_epi32(off, _mm256_set1_epi32(b));
      const __m256i wraw = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(w), waddr, 1);
      const __m256i slice = _mm256_and_si256(wraw, byte_mask);
      const __m256i idx = _mm256_add_epi32(tbase, slice);
      const __m256i raw = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(luts), idx, 2);
      const __m256i val = _mm256_srai_epi32(_mm256_slli_epi32(raw, 16), 16);
      const __m256i sh = _mm256_sll_epi32(val, _mm_cvtsi32_si128(b));
      part = b == msb ? _mm256_sub_epi32(part, sh) : _mm256_add_epi32(part, sh);
    }
    acc_lo = _mm256_add_epi64(
        acc_lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(part)));
    acc_hi = _mm256_add_epi64(
        acc_hi, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(part, 1)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc_lo, acc_hi));
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; t < n; ++t) {
    sum += group_lookup(luts + t * 256, w + bidx[t], pw);
  }
  return sum;
}

__attribute__((target("avx512f,avx512bw"))) std::int64_t accumulate_i16_avx512(
    const std::int16_t* luts, const std::uint8_t* w, const std::int32_t* bidx,
    std::int64_t n, int pw) noexcept {
  const int msb = pw - 1;
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  const __m512i lane_tables =
      _mm512_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2304,
                        2560, 2816, 3072, 3328, 3584, 3840);
  __m512i acc_lo = _mm512_setzero_si512();
  __m512i acc_hi = _mm512_setzero_si512();
  std::int64_t t = 0;
  for (; t + 16 <= n; t += 16) {
    const __m512i off =
        _mm512_loadu_si512(reinterpret_cast<const void*>(bidx + t));
    const __m512i tbase = _mm512_add_epi32(
        _mm512_set1_epi32(static_cast<int>(t * 256)), lane_tables);
    __m512i part = _mm512_setzero_si512();
    for (int b = 0; b < pw; ++b) {
      const __m512i waddr = _mm512_add_epi32(off, _mm512_set1_epi32(b));
      const __m512i wraw = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, waddr, w, 1);
      const __m512i slice = _mm512_and_si512(wraw, byte_mask);
      const __m512i idx = _mm512_add_epi32(tbase, slice);
      const __m512i raw = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, idx, luts, 2);
      const __m512i val = _mm512_srai_epi32(_mm512_slli_epi32(raw, 16), 16);
      const __m512i sh = _mm512_sll_epi32(val, _mm_cvtsi32_si128(b));
      part = b == msb ? _mm512_sub_epi32(part, sh) : _mm512_add_epi32(part, sh);
    }
    acc_lo = _mm512_add_epi64(
        acc_lo, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(part)));
    acc_hi = _mm512_add_epi64(
        acc_hi, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(part, 1)));
  }
  std::int64_t sum =
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc_lo, acc_hi));
  for (; t < n; ++t) {
    sum += group_lookup(luts + t * 256, w + bidx[t], pw);
  }
  return sum;
}

__attribute__((target("avx2"))) std::int64_t accumulate_i32_avx2(
    const std::int32_t* luts, const std::uint8_t* w, const std::int32_t* bidx,
    std::int64_t n, int pw) noexcept {
  const int msb = pw - 1;
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i lane_tables =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  std::int64_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256i off =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bidx + t));
    const __m256i tbase = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(t * 256)), lane_tables);
    for (int b = 0; b < pw; ++b) {
      const __m256i waddr = _mm256_add_epi32(off, _mm256_set1_epi32(b));
      const __m256i wraw = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(w), waddr, 1);
      const __m256i slice = _mm256_and_si256(wraw, byte_mask);
      const __m256i idx = _mm256_add_epi32(tbase, slice);
      const __m256i val = _mm256_i32gather_epi32(luts, idx, 4);
      const __m128i cnt = _mm_cvtsi32_si128(b);
      const __m256i lo = _mm256_sll_epi64(
          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(val)), cnt);
      const __m256i hi = _mm256_sll_epi64(
          _mm256_cvtepi32_epi64(_mm256_extracti128_si256(val, 1)), cnt);
      if (b == msb) {
        acc_lo = _mm256_sub_epi64(acc_lo, lo);
        acc_hi = _mm256_sub_epi64(acc_hi, hi);
      } else {
        acc_lo = _mm256_add_epi64(acc_lo, lo);
        acc_hi = _mm256_add_epi64(acc_hi, hi);
      }
    }
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc_lo, acc_hi));
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; t < n; ++t) {
    sum += group_lookup(luts + t * 256, w + bidx[t], pw);
  }
  return sum;
}

__attribute__((target("avx512f"))) std::int64_t accumulate_i32_avx512(
    const std::int32_t* luts, const std::uint8_t* w, const std::int32_t* bidx,
    std::int64_t n, int pw) noexcept {
  const int msb = pw - 1;
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  const __m512i lane_tables =
      _mm512_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2304,
                        2560, 2816, 3072, 3328, 3584, 3840);
  __m512i acc_lo = _mm512_setzero_si512();
  __m512i acc_hi = _mm512_setzero_si512();
  std::int64_t t = 0;
  for (; t + 16 <= n; t += 16) {
    const __m512i off =
        _mm512_loadu_si512(reinterpret_cast<const void*>(bidx + t));
    const __m512i tbase = _mm512_add_epi32(
        _mm512_set1_epi32(static_cast<int>(t * 256)), lane_tables);
    for (int b = 0; b < pw; ++b) {
      const __m512i waddr = _mm512_add_epi32(off, _mm512_set1_epi32(b));
      const __m512i wraw = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, waddr, w, 1);
      const __m512i slice = _mm512_and_si512(wraw, byte_mask);
      const __m512i idx = _mm512_add_epi32(tbase, slice);
      const __m512i val = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, idx, luts, 4);
      const __m128i cnt = _mm_cvtsi32_si128(b);
      const __m512i lo = _mm512_sll_epi64(
          _mm512_cvtepi32_epi64(_mm512_castsi512_si256(val)), cnt);
      const __m512i hi = _mm512_sll_epi64(
          _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(val, 1)), cnt);
      if (b == msb) {
        acc_lo = _mm512_sub_epi64(acc_lo, lo);
        acc_hi = _mm512_sub_epi64(acc_hi, hi);
      } else {
        acc_lo = _mm512_add_epi64(acc_lo, lo);
        acc_hi = _mm512_add_epi64(acc_hi, hi);
      }
    }
  }
  std::int64_t sum =
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc_lo, acc_hi));
  for (; t < n; ++t) {
    sum += group_lookup(luts + t * 256, w + bidx[t], pw);
  }
  return sum;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // LOOM_LUT_X86

/// Overload shims so the templated window walk below can call the
/// width-matching dispatch kernel.
inline std::int64_t accumulate_groups(common::SimdLevel level,
                                      const std::int16_t* luts,
                                      const std::uint8_t* w,
                                      const std::int32_t* bidx, std::int64_t n,
                                      int pw) noexcept {
  return lut_kernels::accumulate_i16(level, luts, w, bidx, n, pw);
}
inline std::int64_t accumulate_groups(common::SimdLevel level,
                                      const std::int32_t* luts,
                                      const std::uint8_t* w,
                                      const std::int32_t* bidx, std::int64_t n,
                                      int pw) noexcept {
  return lut_kernels::accumulate_i32(level, luts, w, bidx, n, pw);
}
inline void build_table_dispatch(common::SimdLevel level, const std::int32_t* a,
                                 std::int16_t* lut) noexcept {
  lut_kernels::build_table_i16(level, a, lut);
}
inline void build_table_dispatch(common::SimdLevel level, const std::int32_t* a,
                                 std::int32_t* lut) noexcept {
  lut_kernels::build_table_i32(level, a, lut);
}

/// Accumulate every output feature of one window against the live groups'
/// tables, `tile` tables at a time (0 = all at once). Tables build once per
/// tile and serve all `cog` outputs — the T-MAC amortization. `bidx` holds
/// each live group's byte offset into a packed weight row (live[t] * pw),
/// precomputed so the vector walk can gather straight from it.
template <typename T>
void accumulate_window(common::SimdLevel level, const std::int32_t* acts,
                       std::span<const std::int32_t> live,
                       const std::int32_t* bidx, std::vector<T>& luts,
                       const std::uint8_t* wrow0, std::int64_t row_stride,
                       std::int64_t cog, int pw, std::int64_t tile,
                       std::int64_t* acc) {
  const auto n_live = static_cast<std::int64_t>(live.size());
  const std::int64_t step = tile == 0 ? std::max<std::int64_t>(n_live, 1) : tile;
  luts.resize(static_cast<std::size_t>(std::min(step, std::max<std::int64_t>(
                                                          n_live, 1))) *
                  256 +
              lut_kernels::kLutPadEntries);
  for (std::int64_t t0 = 0; t0 < n_live; t0 += step) {
    const std::int64_t t1 = std::min(t0 + step, n_live);
    for (std::int64_t ti = t0; ti < t1; ++ti) {
      build_table_dispatch(
          level,
          acts + static_cast<std::int64_t>(live[static_cast<std::size_t>(ti)]) *
                     8,
          luts.data() + (ti - t0) * 256);
    }
    for (std::int64_t co = 0; co < cog; ++co) {
      acc[co] += accumulate_groups(level, luts.data(), wrow0 + co * row_stride,
                                   bidx + t0, t1 - t0, pw);
    }
  }
}

}  // namespace

namespace lut_kernels {

void build_table_i16(common::SimdLevel level, const std::int32_t* a,
                     std::int16_t* lut) noexcept {
#if defined(LOOM_LUT_X86)
  const common::SimdLevel hw = common::hardware_simd_level();
  if (hw < level) level = hw;
  if (level >= common::SimdLevel::kAvx512) return build_table_i16_avx512(a, lut);
  if (level >= common::SimdLevel::kAvx2) return build_table_i16_avx2(a, lut);
#else
  (void)level;
#endif
  build_table(a, lut);
}

void build_table_i32(common::SimdLevel level, const std::int32_t* a,
                     std::int32_t* lut) noexcept {
#if defined(LOOM_LUT_X86)
  const common::SimdLevel hw = common::hardware_simd_level();
  if (hw < level) level = hw;
  if (level >= common::SimdLevel::kAvx512) return build_table_i32_avx512(a, lut);
  if (level >= common::SimdLevel::kAvx2) return build_table_i32_avx2(a, lut);
#else
  (void)level;
#endif
  build_table(a, lut);
}

std::int64_t accumulate_i16(common::SimdLevel level, const std::int16_t* luts,
                            const std::uint8_t* wbytes,
                            const std::int32_t* bidx, std::int64_t n,
                            int pw) noexcept {
#if defined(LOOM_LUT_X86)
  const common::SimdLevel hw = common::hardware_simd_level();
  if (hw < level) level = hw;
  if (n <= kMaxGatherGroups) {
    if (level >= common::SimdLevel::kAvx512) {
      return accumulate_i16_avx512(luts, wbytes, bidx, n, pw);
    }
    if (level >= common::SimdLevel::kAvx2) {
      return accumulate_i16_avx2(luts, wbytes, bidx, n, pw);
    }
  }
#else
  (void)level;
#endif
  return accumulate_scalar(luts, wbytes, bidx, n, pw);
}

std::int64_t accumulate_i32(common::SimdLevel level, const std::int32_t* luts,
                            const std::uint8_t* wbytes,
                            const std::int32_t* bidx, std::int64_t n,
                            int pw) noexcept {
#if defined(LOOM_LUT_X86)
  const common::SimdLevel hw = common::hardware_simd_level();
  if (hw < level) level = hw;
  if (n <= kMaxGatherGroups) {
    if (level >= common::SimdLevel::kAvx512) {
      return accumulate_i32_avx512(luts, wbytes, bidx, n, pw);
    }
    if (level >= common::SimdLevel::kAvx2) {
      return accumulate_i32_avx2(luts, wbytes, bidx, n, pw);
    }
  }
#else
  (void)level;
#endif
  return accumulate_scalar(luts, wbytes, bidx, n, pw);
}

}  // namespace lut_kernels

LutEngine::LutEngine(Options opts) : opts_(opts), simd_(common::simd_level()) {
  LOOM_EXPECTS(supports(opts));
  slab_windows_ = (64 / opts_.cols) * opts_.cols;
}

void LutEngine::conv_slab(const nn::Layer& layer,
                          std::span<const nn::Tensor* const> inputs,
                          const nn::Tensor& weights, const SliceSpec& spec,
                          std::int64_t g, std::int64_t slab,
                          std::span<nn::WideTensor* const> wides,
                          std::span<const std::uint8_t> wpack,
                          Scratch& scratch, ConvStats& stats) const {
  const int lanes = opts_.lanes;
  const int cols = opts_.cols;
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t ic_count = ceil_div(inner, static_cast<std::int64_t>(lanes));
  const std::int64_t fb_count = ceil_div(cog, static_cast<std::int64_t>(opts_.rows));
  const std::int64_t total_windows =
      windows * static_cast<std::int64_t>(inputs.size());
  const std::int64_t w0 = slab * slab_windows_;
  const std::int64_t cu =
      std::min<std::int64_t>(slab_windows_, total_windows - w0);
  const std::int64_t n_groups = ceil_div(cu, static_cast<std::int64_t>(cols));

  const int profile = spec.act_precision;
  const int pw = spec.weight_precision;
  const auto prof_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << profile) - 1);

  // ---- Phase 1: the dispatcher's streaming accounting, replicated with
  // the bit-sliced engine's exact loop structure (chunk-major, column
  // groups in ascending order) so every stat — including the
  // floating-point streamed_pa sum — lands byte-identical.
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  std::uint32_t group_or[64];
  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
    const std::int64_t n = std::min<std::int64_t>(lanes, inner - ic * lanes);
    std::fill(group_or, group_or + n_groups, 0u);
    for (std::int64_t l = 0; l < n; ++l) {
      const std::int64_t flat = ic * lanes + l;
      const std::int64_t ci = flat / (kh * kw);
      const std::int64_t rem = flat % (kh * kw);
      const std::int64_t ky = rem / kw;
      const std::int64_t kx = rem % kw;
      const std::int64_t c_base =
          (g * layer.group_in_channels() + ci) * layer.in.h;
      for (std::int64_t c0 = 0; c0 < cu;) {
        const std::int64_t gw = w0 + c0;
        const nn::Tensor& input = *inputs[static_cast<std::size_t>(gw / windows)];
        const std::int64_t win0 = gw % windows;
        const std::int64_t seg = std::min(cu - c0, windows - win0);
        for (std::int64_t k = 0; k < seg; ++k) {
          const std::int64_t window = win0 + k;
          const std::int64_t c = c0 + k;
          const std::int64_t iy =
              (window / layer.out.w) * layer.stride + ky - layer.pad;
          const std::int64_t ix =
              (window % layer.out.w) * layer.stride + kx - layer.pad;
          if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) {
            continue;
          }
          const Value v = input.flat((c_base + iy) * layer.in.w + ix);
          group_or[c / cols] |=
              static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
        }
        c0 += seg;
      }
    }
    for (std::int64_t j = 0; j < n_groups; ++j) {
      const std::int64_t group_cols =
          std::min<std::int64_t>(cols, cu - j * cols);
      int pa = profile;
      if (spec.dynamic) {
        pa = std::min(needed_bits_unsigned(group_or[j]), profile);
        stats.detect_invocations += static_cast<std::uint64_t>(fb_count);
        stats.detect_values +=
            static_cast<std::uint64_t>(fb_count * group_cols * n);
      }
      stats.cycles += static_cast<std::uint64_t>(fb_count) *
                      static_cast<std::uint64_t>(pw) *
                      static_cast<std::uint64_t>(pa);
      stats.chunks += fb_count;
      stats.streamed_pa += static_cast<double>(pa) * static_cast<double>(fb_count);
      stats.act_bits_streamed +=
          static_cast<std::uint64_t>(pa) *
          static_cast<std::uint64_t>(fb_count * group_cols * n);
      stats.weight_bits_streamed += static_cast<std::uint64_t>(pw) *
                                    static_cast<std::uint64_t>(cog * n);
    }
  }

  // ---- Phase 2: per window, gather the group activations, build the live
  // list (dead groups contribute nothing) and the partial-sum tables, then
  // sweep every output feature with Pw lookups per live group.
  const std::int64_t g8_count = ceil_div(inner, std::int64_t{8});
  scratch.acts.resize(static_cast<std::size_t>(g8_count) * 8);
  scratch.acc.resize(static_cast<std::size_t>(cog));
  const std::int64_t row_stride = g8_count * pw;

  for (std::int64_t c = 0; c < cu; ++c) {
    const std::int64_t gw = w0 + c;
    const nn::Tensor& input = *inputs[static_cast<std::size_t>(gw / windows)];
    const std::int64_t window = gw % windows;

    scratch.live.clear();
    bool narrow = true;
    for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
      std::int32_t* a = scratch.acts.data() + g8 * 8;
      std::int32_t sum_abs = 0;
      for (int j = 0; j < 8; ++j) {
        const std::int64_t flat = g8 * 8 + j;
        std::int32_t v = 0;
        if (flat < inner) {
          const std::int64_t idx = nn::im2col_input_index(layer, g, window, flat);
          if (idx >= 0) {
            const auto raw = static_cast<std::uint32_t>(
                static_cast<std::uint16_t>(input.flat(idx)));
            v = spec.act_signed ? sext16(raw)
                                : static_cast<std::int32_t>(raw & prof_mask);
          }
        }
        a[j] = v;
        sum_abs += v < 0 ? -v : v;
      }
      if (sum_abs != 0) {
        scratch.live.push_back(static_cast<std::int32_t>(g8));
        if (sum_abs > kNarrowLimit) narrow = false;
      }
    }
    scratch.bidx.resize(scratch.live.size());
    for (std::size_t i = 0; i < scratch.live.size(); ++i) {
      scratch.bidx[i] = scratch.live[i] * pw;
    }

    std::fill(scratch.acc.begin(), scratch.acc.end(), std::int64_t{0});
    const std::uint8_t* wrow0 =
        wpack.data() + static_cast<std::size_t>(g * cog) *
                           static_cast<std::size_t>(row_stride);
    if (narrow) {
      accumulate_window(simd_, scratch.acts.data(), scratch.live,
                        scratch.bidx.data(), scratch.lut16, wrow0, row_stride,
                        cog, pw, opts_.group_tile, scratch.acc.data());
    } else {
      accumulate_window(simd_, scratch.acts.data(), scratch.live,
                        scratch.bidx.data(), scratch.lut32, wrow0, row_stride,
                        cog, pw, opts_.group_tile, scratch.acc.data());
    }

    nn::WideTensor& wide = *wides[static_cast<std::size_t>(gw / windows)];
    for (std::int64_t co = 0; co < cog; ++co) {
      wide.at3(g * cog + co, window / layer.out.w, window % layer.out.w) =
          scratch.acc[static_cast<std::size_t>(co)];
    }
  }
}

LutEngine::ConvStats LutEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, const SliceSpec& spec,
    std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  LOOM_EXPECTS(spec.act_precision >= 1 && spec.act_precision <= kBasePrecision);
  LOOM_EXPECTS(spec.weight_precision >= 1 &&
               spec.weight_precision <= kBasePrecision);
  LOOM_EXPECTS(!spec.act_signed || spec.act_precision == kBasePrecision);
  LOOM_EXPECTS(!(spec.act_signed && spec.dynamic));
  LOOM_EXPECTS(layer.inner_length() < kMaxInner);

  // Weight slices pack once per call (shared, read-only across stripes):
  // wpack[co][g8][b] holds bit b of output co's masked weights in group g8.
  const std::int64_t inner = layer.inner_length();
  const std::int64_t g8_count = ceil_div(inner, std::int64_t{8});
  const int pw = spec.weight_precision;
  const auto w_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << pw) - 1);
  std::vector<std::uint8_t> wpack(static_cast<std::size_t>(layer.out.c) *
                                      static_cast<std::size_t>(g8_count) *
                                      static_cast<std::size_t>(pw) +
                                  lut_kernels::kWeightPadBytes);
  for (std::int64_t co = 0; co < layer.out.c; ++co) {
    for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
      const std::int64_t base = co * inner + g8 * 8;
      const std::int64_t navail = std::min<std::int64_t>(8, inner - g8 * 8);
      pack_group_slices(weights, base, navail, w_mask,
                        wpack.data() + (co * g8_count + g8) * pw, pw);
    }
  }

  const std::int64_t total_windows =
      layer.windows() * static_cast<std::int64_t>(inputs.size());
  const std::int64_t slab_count = ceil_div(total_windows, slab_windows_);
  const std::int64_t tasks = layer.groups * slab_count;
  const std::size_t jobs = resolve_jobs(opts_.jobs);
  const std::size_t stripes =
      std::min<std::size_t>(jobs, static_cast<std::size_t>(tasks));

  std::vector<ConvStats> stripe_stats(std::max<std::size_t>(stripes, 1));
  const auto run_stripe = [&](std::size_t s, Scratch& scratch) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * (s + 1)) / stripes);
    for (std::int64_t t = lo; t < hi; ++t) {
      conv_slab(layer, inputs, weights, spec, t / slab_count, t % slab_count,
                wides, wpack, scratch, stripe_stats[s]);
    }
  };

  if (stripes <= 1) {
    Scratch scratch;
    run_stripe(0, scratch);
  } else {
    // Same disjoint-output striping (and deterministic stats reduction
    // order) as the bit-sliced engine.
    std::vector<Scratch> scratches(stripes);
    shared_pool().parallel_for(
        stripes, [&](std::size_t s) { run_stripe(s, scratches[s]); });
  }

  ConvStats total;
  for (const ConvStats& s : stripe_stats) {
    total.cycles += s.cycles;
    total.streamed_pa += s.streamed_pa;
    total.chunks += s.chunks;
    total.act_bits_streamed += s.act_bits_streamed;
    total.weight_bits_streamed += s.weight_bits_streamed;
    total.detect_invocations += s.detect_invocations;
    total.detect_values += s.detect_values;
  }
  return total;
}

void LutEngine::run_fc(const nn::Layer& layer, const nn::Tensor& input,
                       const nn::Tensor& weights, int weight_precision,
                       nn::WideTensor& wide) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(weight_precision >= 1 && weight_precision <= kBasePrecision);
  LOOM_EXPECTS(layer.in.elements() < kMaxInner);

  const std::int64_t ci = layer.in.elements();
  const std::int64_t g8_count = ceil_div(ci, std::int64_t{8});
  const int pw = weight_precision;
  const auto w_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << pw) - 1);

  // Activations gather once (signed, full 16 bits); the tables for every
  // live group build once and serve all out.c neurons.
  std::vector<std::int32_t> acts(static_cast<std::size_t>(g8_count) * 8, 0);
  std::vector<std::int32_t> live;
  bool narrow = true;
  for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
    std::int32_t sum_abs = 0;
    for (int j = 0; j < 8; ++j) {
      const std::int64_t flat = g8 * 8 + j;
      std::int32_t v = 0;
      if (flat < ci) {
        v = sext16(static_cast<std::uint32_t>(
            static_cast<std::uint16_t>(input.flat(flat))));
      }
      acts[static_cast<std::size_t>(g8) * 8 + static_cast<std::size_t>(j)] = v;
      sum_abs += v < 0 ? -v : v;
    }
    if (sum_abs != 0) {
      live.push_back(static_cast<std::int32_t>(g8));
      if (sum_abs > kNarrowLimit) narrow = false;
    }
  }
  std::vector<std::int16_t> luts16;
  std::vector<std::int32_t> luts32;
  const auto n_live = static_cast<std::int64_t>(live.size());
  if (narrow) {
    luts16.resize(static_cast<std::size_t>(n_live) * 256 +
                  lut_kernels::kLutPadEntries);
    for (std::int64_t ti = 0; ti < n_live; ++ti) {
      lut_kernels::build_table_i16(
          simd_,
          acts.data() +
              static_cast<std::int64_t>(live[static_cast<std::size_t>(ti)]) * 8,
          luts16.data() + ti * 256);
    }
  } else {
    luts32.resize(static_cast<std::size_t>(n_live) * 256 +
                  lut_kernels::kLutPadEntries);
    for (std::int64_t ti = 0; ti < n_live; ++ti) {
      lut_kernels::build_table_i32(
          simd_,
          acts.data() +
              static_cast<std::int64_t>(live[static_cast<std::size_t>(ti)]) * 8,
          luts32.data() + ti * 256);
    }
  }
  // Per-neuron packed rows hold only the live groups, so the lookup walk's
  // byte offsets are simply ti * pw — shared across all neurons.
  std::vector<std::int32_t> bidx(static_cast<std::size_t>(n_live));
  for (std::int64_t ti = 0; ti < n_live; ++ti) {
    bidx[static_cast<std::size_t>(ti)] = static_cast<std::int32_t>(ti * pw);
  }

  // Output neurons are independent: stripe over the pool. Weight slices
  // pack per neuron into stripe scratch — only the live groups, so dead
  // input stretches skip their weight walk entirely.
  const std::size_t stripes = std::min<std::size_t>(
      resolve_jobs(opts_.jobs),
      static_cast<std::size_t>(std::max<std::int64_t>(layer.out.c, 1)));
  const auto run_stripe = [&](std::size_t s, std::vector<std::uint8_t>& row) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(layer.out.c) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(layer.out.c) * (s + 1)) / stripes);
    row.resize(static_cast<std::size_t>(std::max<std::int64_t>(n_live, 1)) *
                   static_cast<std::size_t>(pw) +
               lut_kernels::kWeightPadBytes);
    for (std::int64_t co = lo; co < hi; ++co) {
      const std::int64_t wrow = co * ci;
      for (std::int64_t ti = 0; ti < n_live; ++ti) {
        const std::int64_t g8 = live[static_cast<std::size_t>(ti)];
        pack_group_slices(weights, wrow + g8 * 8,
                          std::min<std::int64_t>(8, ci - g8 * 8), w_mask,
                          row.data() + ti * pw, pw);
      }
      const std::int64_t sum =
          narrow ? lut_kernels::accumulate_i16(simd_, luts16.data(), row.data(),
                                               bidx.data(), n_live, pw)
                 : lut_kernels::accumulate_i32(simd_, luts32.data(), row.data(),
                                               bidx.data(), n_live, pw);
      wide.set_flat(co, sum);
    }
  };

  if (stripes <= 1) {
    std::vector<std::uint8_t> row;
    run_stripe(0, row);
  } else {
    std::vector<std::vector<std::uint8_t>> rows(stripes);
    shared_pool().parallel_for(stripes,
                               [&](std::size_t s) { run_stripe(s, rows[s]); });
  }
}

void LutEngine::run_fc_batch(const nn::Layer& layer,
                             std::span<const nn::Tensor* const> inputs,
                             const nn::Tensor& weights, int weight_precision,
                             std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    run_fc(layer, *inputs[r], weights, weight_precision, *wides[r]);
  }
}

}  // namespace loom::sim
