#include "sim/lut_engine.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/im2col.hpp"

namespace loom::sim {

namespace {

/// Inner-product length bound shared with the bit-sliced engine: each
/// 8-activation group contributes |partial| <= 8 * 2^16 * 2^15 < 2^34, so
/// inner < 2^28 keeps every int64 accumulator exact (< 2^59).
constexpr std::int64_t kMaxInner = std::int64_t{1} << 28;

/// Groups whose detected activation magnitude needs <= 12 unsigned bits
/// (or whose signed magnitudes sum below 2^15) have all 256 partial sums
/// inside int16 — the tables the hot loop touches shrink by half.
constexpr std::int32_t kNarrowLimit = 32767;

inline std::int32_t sext16(std::uint32_t raw) noexcept {
  return static_cast<std::int32_t>(
      static_cast<std::int16_t>(static_cast<std::uint16_t>(raw)));
}

/// Pack the pw 1-bit weight slices of one 8-element group into `out[b]`
/// (bit j of out[b] = bit b of weights w[j] masked to pw bits). Cost is
/// proportional to the set bits, so low-Pw rows pack in a handful of ops.
inline void pack_group_slices(const nn::Tensor& weights, std::int64_t base,
                              std::int64_t navail, std::uint32_t w_mask,
                              std::uint8_t* out, int pw) noexcept {
  std::memset(out, 0, static_cast<std::size_t>(pw));
  for (std::int64_t j = 0; j < navail; ++j) {
    std::uint32_t wv =
        static_cast<std::uint16_t>(weights.flat(base + j)) & w_mask;
    const auto jbit = static_cast<std::uint8_t>(1u << j);
    while (wv != 0) {
      out[std::countr_zero(wv)] |= jbit;
      wv &= wv - 1;
    }
  }
}

/// Doubling fill of one 256-entry partial-sum table: lut[m | 1<<j] =
/// lut[m] + a[j]. One add per entry; the stride-j inner runs vectorize.
template <typename T>
inline void build_table(const std::int32_t* a, T* lut) noexcept {
  lut[0] = 0;
  for (int j = 0; j < 8; ++j) {
    const int step = 1 << j;
    const T aj = static_cast<T>(a[j]);
    for (int i = 0; i < step; ++i) {
      lut[step + i] = static_cast<T>(lut[i] + aj);
    }
  }
}

/// The signed-weight decomposition: u = raw & (2^pw - 1) has value
/// u - msb * 2^pw, so the group inner product is the plain-binary slice sum
/// with the MSB slice's net coefficient flipped to -2^(pw-1).
template <typename T>
inline std::int64_t group_lookup(const T* lut, const std::uint8_t* wb,
                                 int pw) noexcept {
  const int msb = pw - 1;
  std::int64_t partial =
      -(static_cast<std::int64_t>(lut[wb[msb]]) << msb);
  for (int b = 0; b < msb; ++b) {
    partial += static_cast<std::int64_t>(lut[wb[b]]) << b;
  }
  return partial;
}

/// Accumulate every output feature of one window against the live groups'
/// tables, `tile` tables at a time (0 = all at once). Tables build once per
/// tile and serve all `cog` outputs — the T-MAC amortization.
template <typename T>
void accumulate_window(const std::int32_t* acts,
                       std::span<const std::int32_t> live, std::vector<T>& luts,
                       const std::uint8_t* wrow0, std::int64_t row_stride,
                       std::int64_t cog, int pw, std::int64_t tile,
                       std::int64_t* acc) {
  const auto n_live = static_cast<std::int64_t>(live.size());
  const std::int64_t step = tile == 0 ? std::max<std::int64_t>(n_live, 1) : tile;
  luts.resize(static_cast<std::size_t>(std::min(step, std::max<std::int64_t>(
                                                          n_live, 1))) *
              256);
  for (std::int64_t t0 = 0; t0 < n_live; t0 += step) {
    const std::int64_t t1 = std::min(t0 + step, n_live);
    for (std::int64_t ti = t0; ti < t1; ++ti) {
      build_table(acts + static_cast<std::int64_t>(live[static_cast<std::size_t>(
                             ti)]) *
                             8,
                  luts.data() + (ti - t0) * 256);
    }
    for (std::int64_t co = 0; co < cog; ++co) {
      const std::uint8_t* wrow = wrow0 + co * row_stride;
      std::int64_t s = acc[co];
      for (std::int64_t ti = t0; ti < t1; ++ti) {
        const std::uint8_t* wb =
            wrow + static_cast<std::int64_t>(live[static_cast<std::size_t>(ti)]) *
                       pw;
        s += group_lookup(luts.data() + (ti - t0) * 256, wb, pw);
      }
      acc[co] = s;
    }
  }
}

}  // namespace

LutEngine::LutEngine(Options opts) : opts_(opts) {
  LOOM_EXPECTS(supports(opts));
  slab_windows_ = (64 / opts_.cols) * opts_.cols;
}

void LutEngine::conv_slab(const nn::Layer& layer,
                          std::span<const nn::Tensor* const> inputs,
                          const nn::Tensor& weights, const SliceSpec& spec,
                          std::int64_t g, std::int64_t slab,
                          std::span<nn::WideTensor* const> wides,
                          std::span<const std::uint8_t> wpack,
                          Scratch& scratch, ConvStats& stats) const {
  const int lanes = opts_.lanes;
  const int cols = opts_.cols;
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t ic_count = ceil_div(inner, static_cast<std::int64_t>(lanes));
  const std::int64_t fb_count = ceil_div(cog, static_cast<std::int64_t>(opts_.rows));
  const std::int64_t total_windows =
      windows * static_cast<std::int64_t>(inputs.size());
  const std::int64_t w0 = slab * slab_windows_;
  const std::int64_t cu =
      std::min<std::int64_t>(slab_windows_, total_windows - w0);
  const std::int64_t n_groups = ceil_div(cu, static_cast<std::int64_t>(cols));

  const int profile = spec.act_precision;
  const int pw = spec.weight_precision;
  const auto prof_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << profile) - 1);

  // ---- Phase 1: the dispatcher's streaming accounting, replicated with
  // the bit-sliced engine's exact loop structure (chunk-major, column
  // groups in ascending order) so every stat — including the
  // floating-point streamed_pa sum — lands byte-identical.
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  std::uint32_t group_or[64];
  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
    const std::int64_t n = std::min<std::int64_t>(lanes, inner - ic * lanes);
    std::fill(group_or, group_or + n_groups, 0u);
    for (std::int64_t l = 0; l < n; ++l) {
      const std::int64_t flat = ic * lanes + l;
      const std::int64_t ci = flat / (kh * kw);
      const std::int64_t rem = flat % (kh * kw);
      const std::int64_t ky = rem / kw;
      const std::int64_t kx = rem % kw;
      const std::int64_t c_base =
          (g * layer.group_in_channels() + ci) * layer.in.h;
      for (std::int64_t c0 = 0; c0 < cu;) {
        const std::int64_t gw = w0 + c0;
        const nn::Tensor& input = *inputs[static_cast<std::size_t>(gw / windows)];
        const std::int64_t win0 = gw % windows;
        const std::int64_t seg = std::min(cu - c0, windows - win0);
        for (std::int64_t k = 0; k < seg; ++k) {
          const std::int64_t window = win0 + k;
          const std::int64_t c = c0 + k;
          const std::int64_t iy =
              (window / layer.out.w) * layer.stride + ky - layer.pad;
          const std::int64_t ix =
              (window % layer.out.w) * layer.stride + kx - layer.pad;
          if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) {
            continue;
          }
          const Value v = input.flat((c_base + iy) * layer.in.w + ix);
          group_or[c / cols] |=
              static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
        }
        c0 += seg;
      }
    }
    for (std::int64_t j = 0; j < n_groups; ++j) {
      const std::int64_t group_cols =
          std::min<std::int64_t>(cols, cu - j * cols);
      int pa = profile;
      if (spec.dynamic) {
        pa = std::min(needed_bits_unsigned(group_or[j]), profile);
        stats.detect_invocations += static_cast<std::uint64_t>(fb_count);
        stats.detect_values +=
            static_cast<std::uint64_t>(fb_count * group_cols * n);
      }
      stats.cycles += static_cast<std::uint64_t>(fb_count) *
                      static_cast<std::uint64_t>(pw) *
                      static_cast<std::uint64_t>(pa);
      stats.chunks += fb_count;
      stats.streamed_pa += static_cast<double>(pa) * static_cast<double>(fb_count);
      stats.act_bits_streamed +=
          static_cast<std::uint64_t>(pa) *
          static_cast<std::uint64_t>(fb_count * group_cols * n);
      stats.weight_bits_streamed += static_cast<std::uint64_t>(pw) *
                                    static_cast<std::uint64_t>(cog * n);
    }
  }

  // ---- Phase 2: per window, gather the group activations, build the live
  // list (dead groups contribute nothing) and the partial-sum tables, then
  // sweep every output feature with Pw lookups per live group.
  const std::int64_t g8_count = ceil_div(inner, std::int64_t{8});
  scratch.acts.resize(static_cast<std::size_t>(g8_count) * 8);
  scratch.acc.resize(static_cast<std::size_t>(cog));
  const std::int64_t row_stride = g8_count * pw;

  for (std::int64_t c = 0; c < cu; ++c) {
    const std::int64_t gw = w0 + c;
    const nn::Tensor& input = *inputs[static_cast<std::size_t>(gw / windows)];
    const std::int64_t window = gw % windows;

    scratch.live.clear();
    bool narrow = true;
    for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
      std::int32_t* a = scratch.acts.data() + g8 * 8;
      std::int32_t sum_abs = 0;
      for (int j = 0; j < 8; ++j) {
        const std::int64_t flat = g8 * 8 + j;
        std::int32_t v = 0;
        if (flat < inner) {
          const std::int64_t idx = nn::im2col_input_index(layer, g, window, flat);
          if (idx >= 0) {
            const auto raw = static_cast<std::uint32_t>(
                static_cast<std::uint16_t>(input.flat(idx)));
            v = spec.act_signed ? sext16(raw)
                                : static_cast<std::int32_t>(raw & prof_mask);
          }
        }
        a[j] = v;
        sum_abs += v < 0 ? -v : v;
      }
      if (sum_abs != 0) {
        scratch.live.push_back(static_cast<std::int32_t>(g8));
        if (sum_abs > kNarrowLimit) narrow = false;
      }
    }

    std::fill(scratch.acc.begin(), scratch.acc.end(), std::int64_t{0});
    const std::uint8_t* wrow0 =
        wpack.data() + static_cast<std::size_t>(g * cog) *
                           static_cast<std::size_t>(row_stride);
    if (narrow) {
      accumulate_window(scratch.acts.data(), scratch.live, scratch.lut16,
                        wrow0, row_stride, cog, pw, opts_.group_tile,
                        scratch.acc.data());
    } else {
      accumulate_window(scratch.acts.data(), scratch.live, scratch.lut32,
                        wrow0, row_stride, cog, pw, opts_.group_tile,
                        scratch.acc.data());
    }

    nn::WideTensor& wide = *wides[static_cast<std::size_t>(gw / windows)];
    for (std::int64_t co = 0; co < cog; ++co) {
      wide.at3(g * cog + co, window / layer.out.w, window % layer.out.w) =
          scratch.acc[static_cast<std::size_t>(co)];
    }
  }
}

LutEngine::ConvStats LutEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, const SliceSpec& spec,
    std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  LOOM_EXPECTS(spec.act_precision >= 1 && spec.act_precision <= kBasePrecision);
  LOOM_EXPECTS(spec.weight_precision >= 1 &&
               spec.weight_precision <= kBasePrecision);
  LOOM_EXPECTS(!spec.act_signed || spec.act_precision == kBasePrecision);
  LOOM_EXPECTS(!(spec.act_signed && spec.dynamic));
  LOOM_EXPECTS(layer.inner_length() < kMaxInner);

  // Weight slices pack once per call (shared, read-only across stripes):
  // wpack[co][g8][b] holds bit b of output co's masked weights in group g8.
  const std::int64_t inner = layer.inner_length();
  const std::int64_t g8_count = ceil_div(inner, std::int64_t{8});
  const int pw = spec.weight_precision;
  const auto w_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << pw) - 1);
  std::vector<std::uint8_t> wpack(static_cast<std::size_t>(layer.out.c) *
                                  static_cast<std::size_t>(g8_count) *
                                  static_cast<std::size_t>(pw));
  for (std::int64_t co = 0; co < layer.out.c; ++co) {
    for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
      const std::int64_t base = co * inner + g8 * 8;
      const std::int64_t navail = std::min<std::int64_t>(8, inner - g8 * 8);
      pack_group_slices(weights, base, navail, w_mask,
                        wpack.data() + (co * g8_count + g8) * pw, pw);
    }
  }

  const std::int64_t total_windows =
      layer.windows() * static_cast<std::int64_t>(inputs.size());
  const std::int64_t slab_count = ceil_div(total_windows, slab_windows_);
  const std::int64_t tasks = layer.groups * slab_count;
  const std::size_t jobs = resolve_jobs(opts_.jobs);
  const std::size_t stripes =
      std::min<std::size_t>(jobs, static_cast<std::size_t>(tasks));

  std::vector<ConvStats> stripe_stats(std::max<std::size_t>(stripes, 1));
  const auto run_stripe = [&](std::size_t s, Scratch& scratch) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * (s + 1)) / stripes);
    for (std::int64_t t = lo; t < hi; ++t) {
      conv_slab(layer, inputs, weights, spec, t / slab_count, t % slab_count,
                wides, wpack, scratch, stripe_stats[s]);
    }
  };

  if (stripes <= 1) {
    Scratch scratch;
    run_stripe(0, scratch);
  } else {
    // Same disjoint-output striping (and deterministic stats reduction
    // order) as the bit-sliced engine.
    std::vector<Scratch> scratches(stripes);
    shared_pool().parallel_for(
        stripes, [&](std::size_t s) { run_stripe(s, scratches[s]); });
  }

  ConvStats total;
  for (const ConvStats& s : stripe_stats) {
    total.cycles += s.cycles;
    total.streamed_pa += s.streamed_pa;
    total.chunks += s.chunks;
    total.act_bits_streamed += s.act_bits_streamed;
    total.weight_bits_streamed += s.weight_bits_streamed;
    total.detect_invocations += s.detect_invocations;
    total.detect_values += s.detect_values;
  }
  return total;
}

void LutEngine::run_fc(const nn::Layer& layer, const nn::Tensor& input,
                       const nn::Tensor& weights, int weight_precision,
                       nn::WideTensor& wide) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(weight_precision >= 1 && weight_precision <= kBasePrecision);
  LOOM_EXPECTS(layer.in.elements() < kMaxInner);

  const std::int64_t ci = layer.in.elements();
  const std::int64_t g8_count = ceil_div(ci, std::int64_t{8});
  const int pw = weight_precision;
  const auto w_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << pw) - 1);

  // Activations gather once (signed, full 16 bits); the tables for every
  // live group build once and serve all out.c neurons.
  std::vector<std::int32_t> acts(static_cast<std::size_t>(g8_count) * 8, 0);
  std::vector<std::int32_t> live;
  bool narrow = true;
  for (std::int64_t g8 = 0; g8 < g8_count; ++g8) {
    std::int32_t sum_abs = 0;
    for (int j = 0; j < 8; ++j) {
      const std::int64_t flat = g8 * 8 + j;
      std::int32_t v = 0;
      if (flat < ci) {
        v = sext16(static_cast<std::uint32_t>(
            static_cast<std::uint16_t>(input.flat(flat))));
      }
      acts[static_cast<std::size_t>(g8) * 8 + static_cast<std::size_t>(j)] = v;
      sum_abs += v < 0 ? -v : v;
    }
    if (sum_abs != 0) {
      live.push_back(static_cast<std::int32_t>(g8));
      if (sum_abs > kNarrowLimit) narrow = false;
    }
  }
  std::vector<std::int16_t> luts16;
  std::vector<std::int32_t> luts32;
  const auto n_live = static_cast<std::int64_t>(live.size());
  if (narrow) {
    luts16.resize(static_cast<std::size_t>(n_live) * 256);
    for (std::int64_t ti = 0; ti < n_live; ++ti) {
      build_table(acts.data() +
                      static_cast<std::int64_t>(live[static_cast<std::size_t>(
                          ti)]) *
                          8,
                  luts16.data() + ti * 256);
    }
  } else {
    luts32.resize(static_cast<std::size_t>(n_live) * 256);
    for (std::int64_t ti = 0; ti < n_live; ++ti) {
      build_table(acts.data() +
                      static_cast<std::int64_t>(live[static_cast<std::size_t>(
                          ti)]) *
                          8,
                  luts32.data() + ti * 256);
    }
  }

  // Output neurons are independent: stripe over the pool. Weight slices
  // pack per neuron into stripe scratch — only the live groups, so dead
  // input stretches skip their weight walk entirely.
  const std::size_t stripes = std::min<std::size_t>(
      resolve_jobs(opts_.jobs),
      static_cast<std::size_t>(std::max<std::int64_t>(layer.out.c, 1)));
  const auto run_stripe = [&](std::size_t s, std::vector<std::uint8_t>& row) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(layer.out.c) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(layer.out.c) * (s + 1)) / stripes);
    row.resize(static_cast<std::size_t>(std::max<std::int64_t>(n_live, 1)) *
               static_cast<std::size_t>(pw));
    for (std::int64_t co = lo; co < hi; ++co) {
      const std::int64_t wrow = co * ci;
      for (std::int64_t ti = 0; ti < n_live; ++ti) {
        const std::int64_t g8 = live[static_cast<std::size_t>(ti)];
        pack_group_slices(weights, wrow + g8 * 8,
                          std::min<std::int64_t>(8, ci - g8 * 8), w_mask,
                          row.data() + ti * pw, pw);
      }
      std::int64_t sum = 0;
      if (narrow) {
        for (std::int64_t ti = 0; ti < n_live; ++ti) {
          sum += group_lookup(luts16.data() + ti * 256, row.data() + ti * pw,
                              pw);
        }
      } else {
        for (std::int64_t ti = 0; ti < n_live; ++ti) {
          sum += group_lookup(luts32.data() + ti * 256, row.data() + ti * pw,
                              pw);
        }
      }
      wide.set_flat(co, sum);
    }
  };

  if (stripes <= 1) {
    std::vector<std::uint8_t> row;
    run_stripe(0, row);
  } else {
    std::vector<std::vector<std::uint8_t>> rows(stripes);
    shared_pool().parallel_for(stripes,
                               [&](std::size_t s) { run_stripe(s, rows[s]); });
  }
}

void LutEngine::run_fc_batch(const nn::Layer& layer,
                             std::span<const nn::Tensor* const> inputs,
                             const nn::Tensor& weights, int weight_precision,
                             std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    run_fc(layer, *inputs[r], weights, weight_precision, *wides[r]);
  }
}

}  // namespace loom::sim
