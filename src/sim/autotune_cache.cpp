#include "sim/autotune_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/bitops.hpp"
#include "common/cpuid.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace loom::sim {

namespace {

// Section ids, in the exact order they must appear in the file.
enum SectionId : std::uint32_t {
  kKey = 1,
  kCells = 2,
};
constexpr SectionId kSectionOrder[] = {kKey, kCells};
constexpr std::uint32_t kSectionCount = 2;

constexpr char kMagic[8] = {'L', 'O', 'O', 'M', 'T', 'U', 'N', 'E'};

// Decode-side sanity bounds: far above any real tuning run, tight enough
// that a corrupted count field cannot drive a pathological allocation.
constexpr std::uint64_t kMaxString = 1u << 10;
constexpr std::uint64_t kMaxCells = 1u << 20;
constexpr std::uint64_t kMaxSamples = 256;

// ---- Little-endian encode into a growing byte buffer ----------------------

struct Writer {
  std::vector<std::uint8_t> out;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  }
  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    if (s.size() > kMaxString) {
      throw AutotuneCacheError("string too long for autotune cache: " +
                               std::to_string(s.size()) + " bytes");
    }
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

// ---- Bounds-checked little-endian decode ----------------------------------

struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const noexcept {
    return in.size() - pos;
  }
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw AutotuneCacheError(
          std::string("autotune cache truncated reading ") + what + ": need " +
          std::to_string(n) + " bytes, have " + std::to_string(remaining()));
    }
  }
  [[nodiscard]] std::uint8_t u8(const char* what) {
    need(1, what);
    return in[pos++];
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  [[nodiscard]] std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  [[nodiscard]] std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }
  [[nodiscard]] std::string str(const char* what) {
    const std::uint64_t n = u64(what);
    if (n > kMaxString) {
      throw AutotuneCacheError(
          std::string("autotune cache string length for ") + what +
          " out of range: " + std::to_string(n));
    }
    need(static_cast<std::size_t>(n), what);
    std::string s(reinterpret_cast<const char*>(in.data() + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
};

// ---- Section payloads ------------------------------------------------------

void encode_key(Writer& w, const AutotuneCacheKey& key) {
  w.str(key.simd);
  w.u64(key.backend_set_hash);
}

[[nodiscard]] AutotuneCacheKey decode_key(Reader& r) {
  AutotuneCacheKey key;
  key.simd = r.str("simd tier");
  key.backend_set_hash = r.u64("backend set hash");
  return key;
}

/// Persist-worthy = decided (winner known), not pinned (a pin is a
/// per-process override, not a measurement), and internally consistent
/// (winner backed by a sample) — exactly what install() will accept back.
[[nodiscard]] bool persistable(const BackendAutotuner::Decision& d) {
  if (d.winner.empty() || d.pinned || d.samples.empty()) return false;
  for (const auto& s : d.samples) {
    if (s.backend == d.winner) return true;
  }
  return false;
}

void encode_cell(Writer& w, const BackendAutotuner::Decision& d) {
  const TuneKey& k = d.key;
  w.i32(k.kind);
  w.i64(k.in_c);
  w.i64(k.in_h);
  w.i64(k.in_w);
  w.i64(k.out_c);
  w.i32(k.kernel_h);
  w.i32(k.kernel_w);
  w.i32(k.stride);
  w.i32(k.pad);
  w.i32(k.groups);
  w.i32(k.pa);
  w.i32(k.pw);
  w.u8(k.act_signed ? 1 : 0);
  w.u8(k.dynamic ? 1 : 0);
  w.i32(k.batch);
  w.i32(k.rows);
  w.i32(k.cols);
  w.i32(k.lanes);
  w.i32(k.jobs);
  w.str(d.winner);
  w.u64(d.samples.size());
  for (const auto& s : d.samples) {
    w.str(s.backend);
    w.u64(s.ns);
  }
}

[[nodiscard]] BackendAutotuner::Decision decode_cell(Reader& r) {
  BackendAutotuner::Decision d;
  TuneKey& k = d.key;
  k.kind = r.i32("cell kind");
  if (k.kind != 0 && k.kind != 1) {
    throw AutotuneCacheError("autotune cache cell kind out of range: " +
                             std::to_string(k.kind));
  }
  k.in_c = r.i64("cell in_c");
  k.in_h = r.i64("cell in_h");
  k.in_w = r.i64("cell in_w");
  k.out_c = r.i64("cell out_c");
  k.kernel_h = r.i32("cell kernel_h");
  k.kernel_w = r.i32("cell kernel_w");
  k.stride = r.i32("cell stride");
  k.pad = r.i32("cell pad");
  k.groups = r.i32("cell groups");
  k.pa = r.i32("cell pa");
  k.pw = r.i32("cell pw");
  k.act_signed = r.u8("cell act_signed") != 0;
  k.dynamic = r.u8("cell dynamic") != 0;
  k.batch = r.i32("cell batch");
  k.rows = r.i32("cell rows");
  k.cols = r.i32("cell cols");
  k.lanes = r.i32("cell lanes");
  k.jobs = r.i32("cell jobs");
  d.winner = r.str("cell winner");
  const std::uint64_t n = r.u64("cell sample count");
  if (n == 0 || n > kMaxSamples) {
    throw AutotuneCacheError(
        "autotune cache cell sample count out of range: " + std::to_string(n));
  }
  d.samples.reserve(static_cast<std::size_t>(n));
  bool winner_sampled = false;
  for (std::uint64_t i = 0; i < n; ++i) {
    BackendAutotuner::Sample s;
    s.backend = r.str("sample backend");
    s.ns = r.u64("sample ns");
    winner_sampled = winner_sampled || s.backend == d.winner;
    d.samples.push_back(std::move(s));
  }
  if (d.winner.empty() || !winner_sampled) {
    throw AutotuneCacheError(
        "autotune cache cell winner '" + d.winner +
        "' is not backed by a sample (invalid or tampered cell)");
  }
  return d;
}

[[nodiscard]] std::string cache_path_from_env() {
  const char* p = std::getenv("LOOM_AUTOTUNE_CACHE");
  return (p != nullptr && *p != '\0') ? std::string(p) : std::string();
}

}  // namespace

AutotuneCacheKey current_autotune_cache_key() {
  AutotuneCacheKey key;
  key.simd = common::simd_level_name(common::simd_level());
  // Hash the tunable roster only: non-tunable backends (the scalar oracle)
  // never appear in a cell, so registering one must not invalidate caches.
  // '\n' separates names so {"ab","c"} and {"a","bc"} hash differently.
  std::string roster;
  BackendRegistry& reg = BackendRegistry::instance();
  for (const std::string& name : reg.names()) {
    const BackendInfo* info = reg.find(name);
    if (info == nullptr || !info->tunable) continue;
    roster += name;
    roster += '\n';
  }
  key.backend_set_hash = fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(roster.data()), roster.size()});
  return key;
}

std::vector<std::uint8_t> encode_autotune_cache(
    std::span<const BackendAutotuner::Decision> decisions,
    const AutotuneCacheKey& key) {
  Writer w;
  w.bytes(kMagic, sizeof kMagic);
  w.u32(kAutotuneCacheVersion);
  w.u32(kSectionCount);

  for (const SectionId id : kSectionOrder) {
    Writer payload;
    switch (id) {
      case kKey:
        encode_key(payload, key);
        break;
      case kCells: {
        std::uint64_t count = 0;
        for (const auto& d : decisions) count += persistable(d) ? 1 : 0;
        payload.u64(count);
        for (const auto& d : decisions) {
          if (persistable(d)) encode_cell(payload, d);
        }
        break;
      }
    }
    w.u32(id);
    w.u64(payload.out.size());
    w.u64(fnv1a64(payload.out));
    w.bytes(payload.out.data(), payload.out.size());
  }
  return std::move(w.out);
}

std::vector<BackendAutotuner::Decision> decode_autotune_cache(
    std::span<const std::uint8_t> bytes, const AutotuneCacheKey& expect) {
  Reader r{bytes};
  r.need(sizeof kMagic, "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw AutotuneCacheError(
        "autotune cache magic mismatch: not a LOOMTUNE file");
  }
  r.pos = sizeof kMagic;
  const std::uint32_t version = r.u32("version");
  if (version != kAutotuneCacheVersion) {
    throw AutotuneCacheError("autotune cache version skew: file has version " +
                             std::to_string(version) + ", this build reads " +
                             std::to_string(kAutotuneCacheVersion));
  }
  const std::uint32_t sections = r.u32("section count");
  if (sections != kSectionCount) {
    throw AutotuneCacheError("autotune cache section count mismatch: " +
                             std::to_string(sections) + " != " +
                             std::to_string(kSectionCount));
  }

  std::vector<BackendAutotuner::Decision> decisions;
  for (const SectionId expected : kSectionOrder) {
    const std::uint32_t id = r.u32("section id");
    if (id != expected) {
      throw AutotuneCacheError(
          "autotune cache section order violation: got id " +
          std::to_string(id) + ", expected " + std::to_string(expected));
    }
    const std::uint64_t length = r.u64("section length");
    const std::uint64_t checksum = r.u64("section checksum");
    // Checked AFTER the checksum field is consumed: remaining() must cover
    // the payload itself, or the subspan below would read past the buffer.
    if (length > r.remaining()) {
      throw AutotuneCacheError("autotune cache section " + std::to_string(id) +
                               " length " + std::to_string(length) +
                               " overruns the file (" +
                               std::to_string(r.remaining()) + " bytes left)");
    }
    const std::span<const std::uint8_t> payload =
        bytes.subspan(r.pos, static_cast<std::size_t>(length));
    if (fnv1a64(payload) != checksum) {
      throw AutotuneCacheError("autotune cache section " + std::to_string(id) +
                               " checksum mismatch (corrupted payload)");
    }
    Reader section{payload};
    switch (expected) {
      case kKey: {
        const AutotuneCacheKey key = decode_key(section);
        if (!(key == expect)) {
          throw AutotuneCacheError(
              "autotune cache key mismatch: file tuned for simd='" + key.simd +
              "' backend-set=" + std::to_string(key.backend_set_hash) +
              ", this process is simd='" + expect.simd +
              "' backend-set=" + std::to_string(expect.backend_set_hash) +
              " (stale or foreign cache)");
        }
        break;
      }
      case kCells: {
        const std::uint64_t count = section.u64("cell count");
        if (count > kMaxCells) {
          throw AutotuneCacheError("autotune cache cell count out of range: " +
                                   std::to_string(count));
        }
        decisions.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          decisions.push_back(decode_cell(section));
        }
        break;
      }
    }
    if (section.pos != payload.size()) {
      throw AutotuneCacheError("autotune cache section " +
                               std::to_string(expected) + " has " +
                               std::to_string(payload.size() - section.pos) +
                               " trailing bytes");
    }
    r.pos += static_cast<std::size_t>(length);
  }
  if (r.pos != bytes.size()) {
    throw AutotuneCacheError("autotune cache has " +
                             std::to_string(bytes.size() - r.pos) +
                             " trailing bytes after the last section");
  }
  return decisions;
}

void save_autotune_cache(const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_autotune_cache(
      BackendAutotuner::instance().decisions(), current_autotune_cache_key());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw AutotuneCacheError("cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw AutotuneCacheError("short write saving autotune cache to '" + tmp +
                             "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw AutotuneCacheError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

std::size_t load_autotune_cache(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw AutotuneCacheError("cannot open autotune cache '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    bytes.insert(bytes.end(), buf, buf + n);
    if (n < sizeof buf) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw AutotuneCacheError("short read loading autotune cache '" + path +
                             "'");
  }
  // Decode fully (and throw) BEFORE touching autotuner state: a rejected
  // cache must never half-install.
  const std::vector<BackendAutotuner::Decision> decisions =
      decode_autotune_cache(bytes, current_autotune_cache_key());
  return BackendAutotuner::instance().install(decisions);
}

std::size_t init_autotune_cache_from_env() {
  static const std::size_t installed = [] {
    const std::string path = cache_path_from_env();
    if (path.empty()) return std::size_t{0};
    std::size_t n = 0;
    try {
      n = load_autotune_cache(path);
      LOOM_LOG_INFO << "autotune cache '" << path << "': installed " << n
                    << " tuned cells";
    } catch (const AutotuneCacheError& e) {
      LOOM_LOG_WARN << "autotune cache '" << path
                    << "' unusable, starting cold: " << e.what();
    }
    // Winners learned this process persist for the next one. Errors are
    // swallowed: exit paths must not throw, and a failed flush only costs
    // the next process a re-measurement.
    std::atexit(+[] {
      try {
        flush_autotune_cache();
      } catch (...) {
      }
    });
    return n;
  }();
  return installed;
}

void flush_autotune_cache() {
  const std::string path = cache_path_from_env();
  if (path.empty()) return;
  save_autotune_cache(path);
}

}  // namespace loom::sim
