// Persistent backend-autotuner winner cache: a versioned, checksummed
// on-disk image of the BackendAutotuner's decided cells, so serve workers
// and bench runs stop re-measuring every backend per process — the second
// process starts with every previously-tuned (geometry, precision, batch,
// grid, jobs) cell already decided.
//
// Layout mirrors serve/model_snapshot's framing conventions (all integers
// little-endian, every payload byte checksummed, exact EOF):
//
//   header   magic "LOOMTUNE" (8) | version u32 | section_count u32 (= 2)
//   section  id u32 | length u64 | fnv1a64(payload) u64 | payload bytes
//   ...      sections in the exact order kKey, kCells
//
// The kKey section pins what the measurements meant: the effective SIMD
// dispatch tier (common/cpuid) and an FNV hash of the registered tunable
// backend set. A cache written on a different CPU tier, under a different
// SIMD override, or against a different backend roster decodes cleanly but
// fails the key check — stale and foreign caches are rejected as a typed
// AutotuneCacheError (common/error.hpp), never silently trusted, and a
// rejected load leaves the in-memory autotuner untouched. Same story for
// truncation, bit flips and version skew (fuzz-pinned by
// tests/test_autotune_cache.cpp).
//
// Writes are crash-safe: save writes `<path>.tmp` and renames over `path`
// only after a successful full write.
//
// Wiring: LOOM_AUTOTUNE_CACHE=<path> names the cache file. The functional
// engines and the inference server call init_autotune_cache_from_env() at
// construction — first call loads the file (a missing or rejected cache
// logs and proceeds cold) and registers an atexit flush, so winners learned
// in this process persist for the next one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/backend.hpp"

namespace loom::sim {

/// Format version accepted by this build; every other value is rejected
/// with AutotuneCacheError (version skew is a rejection, not a migration).
inline constexpr std::uint32_t kAutotuneCacheVersion = 1;

/// What a set of measurements is keyed by, beyond the per-cell TuneKey:
/// the CPU dispatch tier the kernels actually ran at, and the set of
/// registered tunable backends the samples cover.
struct AutotuneCacheKey {
  std::string simd;                    ///< common::simd_level_name value
  std::uint64_t backend_set_hash = 0;  ///< FNV over registered tunable names

  friend bool operator==(const AutotuneCacheKey&,
                         const AutotuneCacheKey&) = default;
};

/// The key material of this process: effective SIMD tier + current
/// registry's tunable backend set.
[[nodiscard]] AutotuneCacheKey current_autotune_cache_key();

/// Serialize decided cells to the cache byte image (exposed so the
/// corruption tests can flip bits / truncate without touching disk).
/// Undecided and pinned cells are skipped — a pin is a per-process
/// override, not a measurement.
[[nodiscard]] std::vector<std::uint8_t> encode_autotune_cache(
    std::span<const BackendAutotuner::Decision> decisions,
    const AutotuneCacheKey& key);

/// Decode a cache image and validate it against `expect` (normally
/// current_autotune_cache_key()). Throws AutotuneCacheError on any
/// malformed input or key mismatch.
[[nodiscard]] std::vector<BackendAutotuner::Decision> decode_autotune_cache(
    std::span<const std::uint8_t> bytes, const AutotuneCacheKey& expect);

/// Write the process autotuner's decided cells to `path` atomically
/// (tmp file + rename). Throws AutotuneCacheError on I/O failure.
void save_autotune_cache(const std::string& path);

/// Read, validate and install a cache into the process autotuner. Returns
/// the number of cells installed (already-known keys and pinned processes
/// install nothing). Throws AutotuneCacheError on a missing file, any
/// corruption, or a key mismatch — without touching autotuner state.
std::size_t load_autotune_cache(const std::string& path);

/// One-shot env wiring: when LOOM_AUTOTUNE_CACHE is set, load it
/// best-effort (a missing or rejected cache logs a warning and starts
/// cold) and register an atexit flush back to the same path. Idempotent
/// and thread-safe; returns the number of cells the first call installed.
std::size_t init_autotune_cache_from_env();

/// Explicit flush to the LOOM_AUTOTUNE_CACHE path (no-op when unset).
/// Exposed so long-lived servers can persist winners before exit.
void flush_autotune_cache();

}  // namespace loom::sim
