#include "sim/dpnn_sim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace loom::sim {

namespace {
/// Multiplier + adder-tree pipeline fill charged once per layer.
constexpr std::uint64_t kDpnnPipelineFill = 6;
}  // namespace

DpnnSimulator::DpnnSimulator(const arch::DpnnConfig& cfg, const SimOptions& opts)
    : cfg_(cfg), opts_(opts) {
  cfg_.validate();
}

LayerResult DpnnSimulator::simulate_compute(LayerWorkload& lw) const {
  const nn::Layer& layer = lw.layer();
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.macs = layer.macs();
  r.mean_act_precision = kBasePrecision;
  r.mean_weight_precision = kBasePrecision;

  const int lanes = cfg_.act_lanes;
  const int k = cfg_.filters();
  std::uint64_t cycles = 0;

  if (layer.kind == nn::LayerKind::kConv) {
    const std::int64_t windows = layer.windows();
    const std::int64_t ic_count = ceil_div(layer.inner_length(), lanes);
    std::uint64_t fb_total = 0;
    for (int g = 0; g < layer.groups; ++g) {
      fb_total += static_cast<std::uint64_t>(
          ceil_div(layer.group_out_channels(), k));
    }
    cycles = static_cast<std::uint64_t>(windows) *
             static_cast<std::uint64_t>(ic_count) * fb_total;
    // Every cycle: 16 activations broadcast from ABin and k x 16 weights
    // streamed over the weight bus from WM.
    r.activity.abin_read_bits = cycles * static_cast<std::uint64_t>(lanes) * 16;
    r.activity.wm_read_bits =
        cycles * static_cast<std::uint64_t>(k) * lanes * 16;
    // Each input activation is refetched from AM into ABin once per filter
    // block of its conv group.
    const std::uint64_t am_fetch =
        static_cast<std::uint64_t>(layer.in.elements() / layer.groups) * 16 *
        fb_total;
    r.activity.am_read_bits = am_fetch;
    r.activity.abin_write_bits = am_fetch;
  } else {  // fully connected
    const std::int64_t ic_count = ceil_div(layer.in.elements(), lanes);
    const std::int64_t fb = ceil_div(static_cast<std::int64_t>(layer.out.c), k);
    cycles = static_cast<std::uint64_t>(ic_count) * static_cast<std::uint64_t>(fb);
    r.activity.abin_read_bits = cycles * static_cast<std::uint64_t>(lanes) * 16;
    r.activity.wm_read_bits =
        cycles * static_cast<std::uint64_t>(k) * lanes * 16;
    const std::uint64_t am_fetch =
        static_cast<std::uint64_t>(layer.in.elements()) * 16 *
        static_cast<std::uint64_t>(fb);
    r.activity.am_read_bits = am_fetch;
    r.activity.abin_write_bits = am_fetch;
  }

  cycles += kDpnnPipelineFill;
  r.compute_cycles = cycles;
  r.activity.mac_ops = static_cast<std::uint64_t>(r.macs);
  r.utilization =
      static_cast<double>(r.macs) /
      (static_cast<double>(cycles) * static_cast<double>(cfg_.equiv_macs));
  const std::uint64_t mac_slots =
      cycles * static_cast<std::uint64_t>(cfg_.equiv_macs);
  r.activity.mac_idle_cycles =
      mac_slots > r.activity.mac_ops ? mac_slots - r.activity.mac_ops : 0;

  // Outputs: accumulate in the IP registers, drain through ABout into AM
  // at full 16-bit width (the baseline does not pack).
  const std::uint64_t out_bits =
      static_cast<std::uint64_t>(layer.out.elements()) * 16;
  r.activity.about_write_bits = out_bits;
  r.activity.about_read_bits = out_bits;
  r.activity.am_write_bits = out_bits;
  return r;
}

void DpnnSimulator::apply_memory(LayerResult& r, LayerWorkload& lw,
                                 engine::TimingCore& core) const {
  // The bit-parallel baseline stores everything at the full 16 bits —
  // weights in 16-bit rows, activations unpacked.
  const nn::Layer& layer = lw.layer();
  engine::LayerStorage st;  // all precisions default to kBasePrecision
  const int k = cfg_.filters();
  const int lanes = cfg_.act_lanes;
  st.filter_quantum = k;
  st.window_quantum = layer.kind == nn::LayerKind::kConv ? 16 : 1;

  const std::int64_t ic_count = ceil_div(layer.inner_length(), lanes);
  core.apply(r, lw, st, [k, ic_count](const mem::TileExtent& t) {
    // windows x input chunks x filter blocks, restricted to the tile.
    return static_cast<double>(t.window_count()) *
           static_cast<double>(ic_count) *
           static_cast<double>(ceil_div(t.filter_count(), k));
  });
}

LayerResult DpnnSimulator::simulate_layer(LayerWorkload& lw,
                                          engine::TimingCore& core) const {
  LayerResult r = simulate_compute(lw);
  if (opts_.model_offchip) apply_memory(r, lw, core);
  r.activity.cycles = r.cycles();
  return r;
}

LayerResult DpnnSimulator::simulate_layer(LayerWorkload& lw,
                                          mem::MemorySystem& mem) const {
  engine::TimingCore core(mem);
  LayerResult r = simulate_layer(lw, core);
  const std::uint64_t tail = core.finish();
  r.stall_cycles += tail;
  r.activity.dram_stall_cycles += tail;
  r.activity.cycles = r.cycles();
  return r;
}

RunResult DpnnSimulator::run(NetworkWorkload& workload) {
  RunResult result;
  result.arch_name = name();
  result.network = workload.network().name();
  result.bits_per_cycle = 1;

  const mem::MemorySystemConfig mem_cfg = engine::resolve_memory_config(
      cfg_.equiv_macs, /*bit_packed=*/false, opts_);
  mem::MemorySystem mem(mem_cfg);
  engine::TimingCore core(mem);

  result.area = energy::dpnn_area(cfg_, mem_cfg);

  for (std::size_t i = 0; i < workload.network().size(); ++i) {
    if (!workload.network().layer(i).has_weights()) continue;
    result.layers.push_back(simulate_layer(workload.layer(i), core));
  }
  engine::finish_run(result, core);
  return result;
}

}  // namespace loom::sim
