#include "sim/comparison.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace loom::sim {

void Comparison::add_network(NetworkWorkload& workload, Simulator& baseline,
                             std::vector<Simulator*> archs) {
  RunResult base = baseline.run(workload);
  std::vector<RunResult> runs;
  runs.reserve(archs.size());
  for (Simulator* sim : archs) {
    LOOM_EXPECTS(sim != nullptr);
    runs.push_back(sim->run(workload));
  }
  add_network_results(workload.network().name(), std::move(base),
                      std::move(runs));
}

void Comparison::add_network_results(const std::string& network, RunResult base,
                                     std::vector<RunResult> runs) {
  baseline_runs_.push_back(std::move(base));
  const RunResult& base_ref = baseline_runs_.back();

  for (RunResult& run : runs) {
    for (const RunResult::Filter f :
         {RunResult::Filter::kAll, RunResult::Filter::kConv,
          RunResult::Filter::kFc}) {
      if (run.cycles(f) == 0) continue;  // e.g. NiN has no FC layers
      ComparisonEntry e;
      e.network = network;
      e.arch = run.arch_name;
      e.perf = speedup_vs(run, base_ref, f);
      e.eff = efficiency_vs(run, base_ref, f);
      e.result = run;
      entries_[f].push_back(std::move(e));
    }
  }
}

const std::vector<ComparisonEntry>& Comparison::entries(
    RunResult::Filter f) const {
  static const std::vector<ComparisonEntry> empty;
  const auto it = entries_.find(f);
  return it == entries_.end() ? empty : it->second;
}

Comparison::Geomeans Comparison::geomeans(const std::string& arch,
                                          RunResult::Filter f) const {
  std::vector<double> perfs;
  std::vector<double> effs;
  for (const ComparisonEntry& e : entries(f)) {
    if (e.arch != arch) continue;
    perfs.push_back(e.perf);
    effs.push_back(e.eff);
  }
  Geomeans g;
  g.perf = geomean(perfs);
  g.eff = geomean(effs);
  return g;
}

}  // namespace loom::sim
