#include "sim/comparison.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace loom::sim {

void Comparison::add_network(NetworkWorkload& workload, Simulator& baseline,
                             std::vector<Simulator*> archs) {
  const RunResult base = baseline.run(workload);
  baseline_runs_.push_back(base);

  for (Simulator* sim : archs) {
    LOOM_EXPECTS(sim != nullptr);
    const RunResult run = sim->run(workload);
    for (const RunResult::Filter f :
         {RunResult::Filter::kAll, RunResult::Filter::kConv,
          RunResult::Filter::kFc}) {
      if (run.cycles(f) == 0) continue;  // e.g. NiN has no FC layers
      ComparisonEntry e;
      e.network = workload.network().name();
      e.arch = run.arch_name;
      e.perf = speedup_vs(run, base, f);
      e.eff = efficiency_vs(run, base, f);
      e.result = run;
      entries_[f].push_back(std::move(e));
    }
  }
}

const std::vector<ComparisonEntry>& Comparison::entries(
    RunResult::Filter f) const {
  static const std::vector<ComparisonEntry> empty;
  const auto it = entries_.find(f);
  return it == entries_.end() ? empty : it->second;
}

Comparison::Geomeans Comparison::geomeans(const std::string& arch,
                                          RunResult::Filter f) const {
  std::vector<double> perfs;
  std::vector<double> effs;
  for (const ComparisonEntry& e : entries(f)) {
    if (e.arch != arch) continue;
    perfs.push_back(e.perf);
    effs.push_back(e.eff);
  }
  Geomeans g;
  g.perf = geomean(perfs);
  g.eff = geomean(effs);
  return g;
}

}  // namespace loom::sim
