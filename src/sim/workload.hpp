// Workload preparation: turns a profiled network into the data views the
// cycle-accurate simulators consume.
//
//  * Per layer, a synthetic input-activation tensor is materialized from a
//    distribution calibrated so per-group dynamic precision detection
//    reproduces the paper-implied trims (quant/calibration).
//  * act_group_precision(g, wb, ic, cols) returns the precision the dynamic
//    detector would find for the activations processed concurrently in
//    window-block `wb`, input-chunk `ic` of conv group `g` when `cols`
//    windows run in parallel — computed from the actual tensor values via
//    im2col indexing (zero padding included) and memoized.
//  * Weight tensors are streamed (never materialized) from sources
//    calibrated to Table 3's effective per-group precisions; the measured
//    mean effective precision feeds the §4.6 performance estimate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "nn/network.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"
#include "quant/profiles.hpp"

namespace loom::sim {

struct WorkloadOptions {
  std::uint64_t seed = 1;
  double act_zero_fraction = 0.45;  ///< ReLU sparsity of synthetic activations
  int lanes = 16;                   ///< SIP/IP lane count (activation chunk size)
  /// Cap on weights streamed per layer for group statistics; larger tensors
  /// are sampled with a deterministic stride.
  std::int64_t weight_sample_cap = 1 << 21;
};

class LayerWorkload {
 public:
  LayerWorkload(const nn::Layer& layer, std::size_t layer_index,
                const quant::PrecisionProfile& profile,
                const WorkloadOptions& opts);

  [[nodiscard]] const nn::Layer& layer() const noexcept { return layer_; }

  /// Detected precision for the activation group at (conv group g,
  /// window block wb, input chunk ic) with `cols` concurrent windows.
  /// Result is clipped to the layer Pa; a group whose sampled activations
  /// are all zero detects 0. Conv layers only. Thread-safe.
  [[nodiscard]] int act_group_precision(std::int64_t g, std::int64_t wb,
                                        std::int64_t ic, int cols);

  /// Mean effective per-group (16 weights) precision, measured by streaming
  /// the calibrated weight source (paper Table 3 / §4.6).
  [[nodiscard]] double effective_weight_precision();

  /// Honest per-chunk weight timing for the ablation: expected max group
  /// precision over `rows_groups` weight groups loaded together.
  [[nodiscard]] double honest_weight_precision(int rows_groups);

  /// §6 sparsity extension: mean number of *essential* weight bit-planes
  /// per 16-weight group — the popcount of the OR of the magnitudes plus
  /// one sign pass (sign-magnitude serialization). Bit positions at which
  /// every weight of the group is zero can be skipped entirely, unlike
  /// precision trimming which only removes leading planes.
  [[nodiscard]] double essential_weight_planes();

  /// Static profile precisions.
  [[nodiscard]] int profile_act_precision() const noexcept {
    return layer_.act_precision;
  }
  [[nodiscard]] int profile_weight_precision() const noexcept {
    return layer_.weight_precision;
  }

  /// Precision at which this layer's *output* activations are stored (the
  /// consumer layer's profile precision; 16 when unknown).
  int out_precision = kBasePrecision;

 private:
  void ensure_input_tensor();
  /// Refine the activation distribution so the mean detected precision over
  /// the layer's *actual* (window-block, input-chunk) groups — which share
  /// values between overlapping windows — hits the calibration target.
  void ensure_group_calibrated();
  [[nodiscard]] Value window_value(std::int64_t g, std::int64_t window,
                                   std::int64_t flat) const;
  /// Same mapping but reading from a streamed source (used during
  /// calibration, before the input tensor is materialized).
  [[nodiscard]] Value window_value_from(const nn::SyntheticSource& src,
                                        std::int64_t g, std::int64_t window,
                                        std::int64_t flat) const;
  [[nodiscard]] double measure_group_mean(const nn::SyntheticSource& src,
                                          int cols, int max_groups) const;

  const nn::Layer& layer_;
  std::size_t layer_index_;
  WorkloadOptions opts_;
  /// Guards the activation-side memo state (input tensor + group caches)
  /// so one workload can serve several simulator threads (core runner
  /// `jobs` fan-out). Steady-state act_group_precision calls take it
  /// shared — concurrent simulators of one network don't serialize — and
  /// only first-call-per-cols setup takes it exclusive.
  std::shared_mutex memo_mutex_;
  /// Guards the weight-side memos. Separate from memo_mutex_ so the long
  /// weight streams never block activation lookups; computing *under* the
  /// lock is deliberate — it makes same-layer duplicate requests wait for
  /// one result instead of redoing the work.
  std::mutex weight_mutex_;
  double act_target_precision_;   ///< calibration target (Pa - trim)
  double table3_target_ = 0.0;    ///< effective weight precision target
  std::optional<nn::Tensor> input_;
  nn::SyntheticSpec act_spec_;
  bool group_calibrated_ = false;
  std::optional<double> measured_weight_precision_;
  std::optional<double> essential_planes_;
  /// Per-cols memo of detected group precisions. Elements are atomic so
  /// concurrent misses on disjoint keys can compute under the *shared* lock
  /// (the input tensor is immutable once published) and publish lock-free.
  /// Stored values are biased by +1: 0 means "not yet computed", so an
  /// all-zero group (detected precision 0) still caches.
  std::unordered_map<int, std::vector<std::atomic<std::uint8_t>>>
      group_precision_cache_;
  std::unordered_map<int, double> honest_cache_;
};

class NetworkWorkload {
 public:
  /// Copies `net`, which must already carry profile precisions
  /// (quant::apply_profile). The workload owns its network so it can be
  /// shared across several simulator runs.
  NetworkWorkload(nn::Network net, const quant::PrecisionProfile& profile,
                  WorkloadOptions opts = {});

  [[nodiscard]] const nn::Network& network() const noexcept { return net_; }
  [[nodiscard]] const quant::PrecisionProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] LayerWorkload& layer(std::size_t index);

 private:
  nn::Network net_;
  quant::PrecisionProfile profile_;
  WorkloadOptions opts_;
  /// One flag per layer slot: lazy creation races construct each layer
  /// exactly once (call_once publishes the pointer), while *different*
  /// layers construct concurrently.
  std::unique_ptr<std::once_flag[]> layer_once_;
  std::vector<std::unique_ptr<LayerWorkload>> layers_;
};

/// Convenience: build a profiled zoo network and its workload.
[[nodiscard]] std::unique_ptr<NetworkWorkload> prepare_network(
    const std::string& zoo_name, quant::AccuracyTarget target,
    WorkloadOptions opts = {});

}  // namespace loom::sim
