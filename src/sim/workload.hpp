// Workload preparation: turns a profiled network into the data views the
// cycle-accurate simulators consume.
//
//  * Per layer, a synthetic input-activation tensor is materialized from a
//    distribution calibrated so per-group dynamic precision detection
//    reproduces the paper-implied trims (quant/calibration).
//  * act_group_precision(g, wb, ic, cols) returns the precision the dynamic
//    detector would find for the activations processed concurrently in
//    window-block `wb`, input-chunk `ic` of conv group `g` when `cols`
//    windows run in parallel. Queries are answered from the layer's
//    OR-plane table (sim/or_planes.hpp) — built in one padding-aware pass —
//    and memoized; act_group_precision_table() bulk-fills a whole `cols`
//    table so the simulators' steady state is a plain array read.
//  * Weight tensors are streamed (never materialized) from sources
//    calibrated to Table 3's effective per-group precisions; the measured
//    mean effective precision feeds the §4.6 performance estimate.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "nn/network.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"
#include "quant/profiles.hpp"
#include "sim/or_planes.hpp"

namespace loom::sim {

struct WorkloadOptions {
  std::uint64_t seed = 1;
  double act_zero_fraction = 0.45;  ///< ReLU sparsity of synthetic activations
  int lanes = 16;                   ///< SIP/IP lane count (activation chunk size)
  /// Cap on weights streamed per layer for group statistics; larger tensors
  /// are sampled with a deterministic stride.
  std::int64_t weight_sample_cap = 1 << 21;
};

/// Immutable dense view of one layer's detected per-chunk activation
/// precisions for a fixed `cols`, returned by
/// LayerWorkload::act_group_precision_table. `at` is a single relaxed byte
/// load — the simulators' steady-state path. Valid for the lifetime of the
/// owning LayerWorkload.
class ActPrecisionTable {
 public:
  ActPrecisionTable() = default;

  [[nodiscard]] int at(std::int64_t g, std::int64_t wb,
                       std::int64_t ic) const noexcept {
    assert(slots_ != nullptr && g >= 0 && wb >= 0 && wb < wb_count_ &&
           ic >= 0 && ic < ic_count_);
    return static_cast<int>(
               slots_[static_cast<std::size_t>((g * wb_count_ + wb) * ic_count_ +
                                               ic)]
                   .load(std::memory_order_relaxed)) -
           1;
  }

  /// Table extents, so consumers can contract-check their loop bounds once
  /// instead of per query (a lanes/cols mismatch would otherwise read out
  /// of bounds).
  [[nodiscard]] std::int64_t wb_count() const noexcept { return wb_count_; }
  [[nodiscard]] std::int64_t ic_count() const noexcept { return ic_count_; }

 private:
  friend class LayerWorkload;
  ActPrecisionTable(const std::atomic<std::uint8_t>* slots,
                    std::int64_t wb_count, std::int64_t ic_count) noexcept
      : slots_(slots), wb_count_(wb_count), ic_count_(ic_count) {}

  const std::atomic<std::uint8_t>* slots_ = nullptr;
  std::int64_t wb_count_ = 0;
  std::int64_t ic_count_ = 0;
};

/// Per-chunk activation *term counts* (popcount of the detection group's OR
/// mask) share the precision table's layout, bias and extents exactly — the
/// values are just popcounts instead of leading-one positions.
using ActTermTable = ActPrecisionTable;

class LayerWorkload {
 public:
  LayerWorkload(const nn::Layer& layer, std::size_t layer_index,
                const quant::PrecisionProfile& profile,
                const WorkloadOptions& opts);

  [[nodiscard]] const nn::Layer& layer() const noexcept { return layer_; }

  /// Detected precision for the activation group at (conv group g,
  /// window block wb, input chunk ic) with `cols` concurrent windows.
  /// Result is clipped to the layer Pa. Conv layers only. Thread-safe.
  [[nodiscard]] int act_group_precision(std::int64_t g, std::int64_t wb,
                                        std::int64_t ic, int cols);

  /// Bulk variant: detected precisions for *every* (g, wb, ic) chunk at
  /// `cols`, filled from whole OR-plane rows in one pass on first use.
  /// Thread-safe; the view stays valid for this workload's lifetime.
  [[nodiscard]] ActPrecisionTable act_group_precision_table(int cols);

  /// Term-count analog of act_group_precision: the number of *essential*
  /// activation bit-planes of the detection group (popcount of its OR
  /// mask) — the cycles a term-serial sequencer synchronizing the group at
  /// its slowest lane spends on the activation side. Always <= the detected
  /// precision; clipped to [1, Pa]. Conv layers only. Thread-safe.
  [[nodiscard]] int act_group_term_count(std::int64_t g, std::int64_t wb,
                                         std::int64_t ic, int cols);

  /// Bulk variant of act_group_term_count (same contract as
  /// act_group_precision_table; both tables of one `cols` share geometry).
  [[nodiscard]] ActTermTable act_group_term_table(int cols);

  /// Weight-side NAF term statistics for the term-serial (Laconic-style)
  /// cycle model, measured by streaming the calibrated weight source once.
  /// NAF is what the hardware (and the bit-sliced functional engine)
  /// actually serializes — signed ±2^k digits, no separate sign pass —
  /// unlike essential_weight_planes' sign-magnitude planes.
  struct WeightTermStats {
    /// Mean nonzero NAF digits per weight: the linear-scaling estimate's
    /// operand (every lane independent, zero digits skipped for free).
    double mean_per_weight = 0.0;
    /// Mean over 16-weight groups of the popcount of the *union* of NAF
    /// digit positions (>= 1): a group sequencer synchronized at the
    /// slowest lane walks every position at which any lane has a digit.
    double synced_per_group = 1.0;
  };
  [[nodiscard]] WeightTermStats naf_weight_terms();

  /// Mean effective per-group (16 weights) precision, measured by streaming
  /// the calibrated weight source (paper Table 3 / §4.6).
  [[nodiscard]] double effective_weight_precision();

  /// Honest per-chunk weight timing for the ablation: expected max group
  /// precision over `rows_groups` weight groups loaded together.
  [[nodiscard]] double honest_weight_precision(int rows_groups);

  /// §6 sparsity extension: mean number of *essential* weight bit-planes
  /// per 16-weight group — the popcount of the OR of the magnitudes plus
  /// one sign pass (sign-magnitude serialization). Bit positions at which
  /// every weight of the group is zero can be skipped entirely, unlike
  /// precision trimming which only removes leading planes.
  ///
  /// Term-definition note: this counts *sign-magnitude* planes — the layout
  /// weights occupy in storage, so it is what the memory core prices when
  /// LoomConfig::sparse_weight_skipping packs the WM/DRAM footprint (and
  /// what that flag's Loom timing estimate uses). The *compute* term counts
  /// of the term-serial simulator and the bit-sliced engine instead follow
  /// the NAF digit serialization (naf_weight_terms) — fewer terms than
  /// essential planes, since NAF folds the sign pass into signed digits and
  /// needs no digit at runs of adjacent ones. test_laconic_sim.cpp pins
  /// both counts on a known tensor.
  [[nodiscard]] double essential_weight_planes();

  /// Static profile precisions.
  [[nodiscard]] int profile_act_precision() const noexcept {
    return layer_.act_precision;
  }
  [[nodiscard]] int profile_weight_precision() const noexcept {
    return layer_.weight_precision;
  }

  /// Precision at which this layer's *output* activations are stored (the
  /// consumer layer's profile precision; 16 when unknown).
  int out_precision = kBasePrecision;

 private:
  /// Per-cols memo: geometry derived once at creation (steady-state calls
  /// no longer re-derive wb/ic counts or re-run the full argument
  /// contract), plus the precision slots. Slots are atomic so concurrent
  /// misses on disjoint keys can compute under the *shared* lock (the OR
  /// planes are immutable once published) and publish lock-free. Stored
  /// values are biased by +1: 0 means "not yet computed".
  struct ColsCache {
    int cols = 0;
    std::int64_t wb_count = 0;
    std::unique_ptr<std::atomic<std::uint8_t>[]> slots;
    std::atomic<bool> table_filled{false};
    /// Same layout/bias for the per-chunk term counts (popcounts <= 16, so
    /// the +1-biased byte never overflows).
    std::unique_ptr<std::atomic<std::uint8_t>[]> term_slots;
    std::atomic<bool> term_table_filled{false};
  };

  void ensure_input_tensor();
  /// Materializes the input tensor and builds the activation OR planes
  /// (requires the exclusive memo lock).
  void ensure_planes();
  /// Creates (or returns) the memo for `cols` under the exclusive lock.
  [[nodiscard]] ColsCache& ensure_cols_cache(int cols);
  /// Cache lookup; computes a missing entry from the OR planes.
  [[nodiscard]] int cached_precision(const ColsCache& cache, std::int64_t g,
                                     std::int64_t wb, std::int64_t ic) const;
  /// Term-count twin of cached_precision over the same cache geometry.
  [[nodiscard]] int cached_term_count(const ColsCache& cache, std::int64_t g,
                                      std::int64_t wb, std::int64_t ic) const;
  /// Refine the activation distribution so the mean detected precision over
  /// the layer's *actual* (window-block, input-chunk) groups — which share
  /// values between overlapping windows — hits the calibration target.
  void ensure_group_calibrated();

  const nn::Layer& layer_;
  std::size_t layer_index_;
  WorkloadOptions opts_;
  /// Guards the activation-side memo state (input tensor + OR planes +
  /// group caches) so one workload can serve several simulator threads
  /// (core runner `jobs` fan-out). Steady-state act_group_precision calls
  /// take it shared — concurrent simulators of one network don't
  /// serialize — and only first-call-per-cols setup takes it exclusive.
  std::shared_mutex memo_mutex_;
  /// Guards the weight-side memos. Separate from memo_mutex_ so the long
  /// weight streams never block activation lookups; computing *under* the
  /// lock is deliberate — it makes same-layer duplicate requests wait for
  /// one result instead of redoing the work.
  std::mutex weight_mutex_;
  double act_target_precision_;   ///< calibration target (Pa - trim)
  double table3_target_ = 0.0;    ///< effective weight precision target
  // Conv activation-group geometry, derived once at construction.
  std::int64_t windows_ = 0;
  std::int64_t ic_count_ = 0;
  std::optional<nn::Tensor> input_;
  std::optional<ActOrPlanes> planes_;
  nn::SyntheticSpec act_spec_;
  bool group_calibrated_ = false;
  std::optional<double> measured_weight_precision_;
  std::optional<double> essential_planes_;
  std::optional<WeightTermStats> naf_terms_;
  std::unordered_map<int, ColsCache> group_precision_cache_;
  std::unordered_map<int, double> honest_cache_;
};

class NetworkWorkload {
 public:
  /// Copies `net`, which must already carry profile precisions
  /// (quant::apply_profile). The workload owns its network so it can be
  /// shared across several simulator runs.
  NetworkWorkload(nn::Network net, const quant::PrecisionProfile& profile,
                  WorkloadOptions opts = {});

  [[nodiscard]] const nn::Network& network() const noexcept { return net_; }
  [[nodiscard]] const quant::PrecisionProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] LayerWorkload& layer(std::size_t index);

 private:
  nn::Network net_;
  quant::PrecisionProfile profile_;
  WorkloadOptions opts_;
  /// One flag per layer slot: lazy creation races construct each layer
  /// exactly once (call_once publishes the pointer), while *different*
  /// layers construct concurrently.
  std::unique_ptr<std::once_flag[]> layer_once_;
  std::vector<std::unique_ptr<LayerWorkload>> layers_;
};

/// Convenience: build a profiled zoo network and its workload.
[[nodiscard]] std::unique_ptr<NetworkWorkload> prepare_network(
    const std::string& zoo_name, quant::AccuracyTarget target,
    WorkloadOptions opts = {});

}  // namespace loom::sim
