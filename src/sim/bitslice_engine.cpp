#include "sim/bitslice_engine.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/cpuid.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/im2col.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LOOM_BITSLICE_X86 1
#endif

namespace loom::sim {

namespace {

// ---------------------------------------------------------------------------
// Accumulation machinery. Every partial product is a one-bit-per-column
// word x with a weight 2^t; summing millions of them exactly is the whole
// cost of the engine. Adding each word straight into a bit-sliced
// accumulator serializes on the carry chain, so instead:
//   1. collect: append x to a per-(sign, t) arena — a plain store;
//   2. reduce: sweep each arena with a Harley-Seal carry-save adder
//      (branch-free full adders; on AVX-512, VPTERNLOGQ computes an
//      8-word full adder in two instructions), leaving ones/twos/fours/
//      eights counters and appending the rare weight-16 carries to the
//      t+4 arena;
//   3. drain: fold the counters through a small scalar FA tree and ripple
//      the handful of survivors into the 64-word sliced accumulator.
// ---------------------------------------------------------------------------

/// Add a one-bit-per-column word into a bit-sliced accumulator at bit
/// `shift`: the classic ripple, used only for the few drained words.
inline void ripple_add(std::uint64_t* acc, int shift, std::uint64_t x) noexcept {
  int k = shift;
  while (x != 0) {
    const std::uint64_t carry = acc[k] & x;
    acc[k] ^= x;
    x = carry;
    ++k;
  }
}

/// Full adder over words: *sum = a+b+c mod 2 per bit, returns the carry.
inline std::uint64_t csa(std::uint64_t* sum, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) noexcept {
  const std::uint64_t u = a ^ b;
  *sum = u ^ c;
  return (a & b) | (u & c);
}

constexpr int kShifts = 64;       ///< arena shifts per sign: data <= 31,
                                  ///< carry headroom, and a power of two so
                                  ///< a packed NAF digit plus the plane bit
                                  ///< IS the arena slot (see kSidxBit)
constexpr int kStrideLog2 = 12;   ///< words per arena (power of two: the
                                  ///< append address needs no multiply)
constexpr int kStride = 1 << kStrideLog2;
constexpr int kFlushAt = kStride - 144;  ///< leaves spill/flush headroom

/// Max addend shift: plane 15 plus NAF digit 16 (the NAF of a magnitude
/// can carry one position past its top bit).
constexpr int kMaxShift = 2 * (kBasePrecision - 1) + 1;

/// Inner-product length bound for one output. Each of the `inner` lane
/// elements contributes less than 2^16 (activation) x 2^16 (NAF positive
/// or negative digit sum) = 2^32 to a column's pos (or neg) accumulator,
/// so totals stay below 2^(28+32) = 2^60: every nonzero arena slot, spill
/// and drain carry then sits strictly inside the 64-word slice and the
/// pos-neg difference is exact in int64, matching the scalar oracle.
constexpr std::int64_t kMaxInner = std::int64_t{1} << 28;

constexpr int kSidxBit = 6;  ///< sign bit position in an arena slot /
                             ///< packed NAF digit (kShifts == 1 << kSidxBit)

struct Accum {
  std::uint64_t* arena;    ///< [2][kShifts][kStride]
  std::int32_t* n;         ///< [2][kShifts]
  std::uint64_t* acc[2];   ///< sliced accumulators: pos, neg

  [[nodiscard]] std::uint64_t* words(int s, int t) const noexcept {
    return arena +
           (static_cast<std::size_t>((s << kSidxBit) | t) << kStrideLog2);
  }
  [[nodiscard]] std::int32_t& count(int s, int t) const noexcept {
    return n[(s << kSidxBit) | t];
  }
};

void reduce_arena(const Accum& ac, int s, int t);

/// Append one addend to arena `slot` = (sign << kSidxBit) | shift; reduces
/// the arena early when it fills.
inline void arena_add(const Accum& ac, int slot, std::uint64_t x) {
  std::int32_t& n = ac.n[slot];
  ac.arena[(static_cast<std::size_t>(slot) << kStrideLog2) + n] = x;
  if (++n >= kFlushAt) reduce_arena(ac, slot >> kSidxBit, slot & (kShifts - 1));
}

/// Scalar Harley-Seal sweep over w[0..k), k a multiple of 16. Updates the
/// four counter words and appends weight-16 carries to the t+4 arena.
void hs_sweep_scalar(const Accum& ac, int s, int t, const std::uint64_t* w,
                     std::int64_t k, std::uint64_t counters[4]) {
  std::uint64_t ones = counters[0], twos = counters[1];
  std::uint64_t fours = counters[2], eights = counters[3];
  for (std::int64_t i = 0; i < k; i += 16) {
    std::uint64_t twos_a, twos_b, fours_a, fours_b, eights_a, eights_b;
    twos_a = csa(&ones, ones, w[i + 0], w[i + 1]);
    twos_b = csa(&ones, ones, w[i + 2], w[i + 3]);
    fours_a = csa(&twos, twos, twos_a, twos_b);
    twos_a = csa(&ones, ones, w[i + 4], w[i + 5]);
    twos_b = csa(&ones, ones, w[i + 6], w[i + 7]);
    fours_b = csa(&twos, twos, twos_a, twos_b);
    eights_a = csa(&fours, fours, fours_a, fours_b);
    twos_a = csa(&ones, ones, w[i + 8], w[i + 9]);
    twos_b = csa(&ones, ones, w[i + 10], w[i + 11]);
    fours_a = csa(&twos, twos, twos_a, twos_b);
    twos_a = csa(&ones, ones, w[i + 12], w[i + 13]);
    twos_b = csa(&ones, ones, w[i + 14], w[i + 15]);
    fours_b = csa(&twos, twos, twos_a, twos_b);
    eights_b = csa(&fours, fours, fours_a, fours_b);
    const std::uint64_t c16 = csa(&eights, eights, eights_a, eights_b);
    if (c16 != 0) arena_add(ac, ((s << kSidxBit) | (t + 4)), c16);
  }
  counters[0] = ones;
  counters[1] = twos;
  counters[2] = fours;
  counters[3] = eights;
}

#if defined(LOOM_BITSLICE_X86)

__attribute__((target("avx512f"))) inline __m512i csa512(
    __m512i* sum, __m512i a, __m512i b, __m512i c) noexcept {
  // VPTERNLOGQ: imm 0x96 = a^b^c, imm 0xE8 = majority(a, b, c).
  const __m512i carry =
      _mm512_ternarylogic_epi64(a, b, c, 0xE8);
  *sum = _mm512_ternarylogic_epi64(a, b, c, 0x96);
  return carry;
}

/// AVX-512 Harley-Seal sweep over w[0..k), k a multiple of 128 (16 vectors
/// per iteration). Leaves 8 lanes per counter level in `counters32`.
__attribute__((target("avx512f"))) void hs_sweep_avx512(
    const Accum& ac, int s, int t, const std::uint64_t* w, std::int64_t k,
    std::uint64_t counters32[32]) {
  __m512i ones = _mm512_loadu_si512(counters32 + 0);
  __m512i twos = _mm512_loadu_si512(counters32 + 8);
  __m512i fours = _mm512_loadu_si512(counters32 + 16);
  __m512i eights = _mm512_loadu_si512(counters32 + 24);
  for (std::int64_t i = 0; i < k; i += 128) {
    const auto* v = reinterpret_cast<const __m512i*>(w + i);
    __m512i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sum;
    twos_a = csa512(&sum, ones, _mm512_loadu_si512(v + 0),
                    _mm512_loadu_si512(v + 1));
    ones = sum;
    twos_b = csa512(&sum, ones, _mm512_loadu_si512(v + 2),
                    _mm512_loadu_si512(v + 3));
    ones = sum;
    fours_a = csa512(&sum, twos, twos_a, twos_b);
    twos = sum;
    twos_a = csa512(&sum, ones, _mm512_loadu_si512(v + 4),
                    _mm512_loadu_si512(v + 5));
    ones = sum;
    twos_b = csa512(&sum, ones, _mm512_loadu_si512(v + 6),
                    _mm512_loadu_si512(v + 7));
    ones = sum;
    fours_b = csa512(&sum, twos, twos_a, twos_b);
    twos = sum;
    eights_a = csa512(&sum, fours, fours_a, fours_b);
    fours = sum;
    twos_a = csa512(&sum, ones, _mm512_loadu_si512(v + 8),
                    _mm512_loadu_si512(v + 9));
    ones = sum;
    twos_b = csa512(&sum, ones, _mm512_loadu_si512(v + 10),
                    _mm512_loadu_si512(v + 11));
    ones = sum;
    fours_a = csa512(&sum, twos, twos_a, twos_b);
    twos = sum;
    twos_a = csa512(&sum, ones, _mm512_loadu_si512(v + 12),
                    _mm512_loadu_si512(v + 13));
    ones = sum;
    twos_b = csa512(&sum, ones, _mm512_loadu_si512(v + 14),
                    _mm512_loadu_si512(v + 15));
    ones = sum;
    fours_b = csa512(&sum, twos, twos_a, twos_b);
    twos = sum;
    eights_b = csa512(&sum, fours, fours_a, fours_b);
    fours = sum;
    const __m512i c16 = csa512(&sum, eights, eights_a, eights_b);
    eights = sum;
    if (_mm512_test_epi64_mask(c16, c16) != 0) {
      // Spill the eight weight-16 carry lanes to the t+4 arena (zero lanes
      // are harmless addends; the arena has flush headroom for all eight).
      std::int32_t& nn = ac.count(s, t + 4);
      _mm512_storeu_si512(ac.words(s, t + 4) + nn, c16);
      nn += 8;
      if (nn >= kFlushAt) reduce_arena(ac, s, t + 4);
    }
  }
  _mm512_storeu_si512(counters32 + 0, ones);
  _mm512_storeu_si512(counters32 + 8, twos);
  _mm512_storeu_si512(counters32 + 16, fours);
  _mm512_storeu_si512(counters32 + 24, eights);
}

#endif  // LOOM_BITSLICE_X86

/// Reduce one (sign, t) arena into the sliced accumulator and reset it.
/// Weight-16 carries of the sweeps land in the t+4 arena, which is reduced
/// after this one by the ascending-t drain order (or by its own flush).
void reduce_arena(const Accum& ac, int s, int t) {
  std::int32_t& n = ac.count(s, t);
  std::int64_t k = n;
  if (k == 0) return;
  n = 0;
  std::uint64_t* w = ac.words(s, t);
  std::uint64_t* acc = ac.acc[s];

  // Counter lanes: [level][lane] with weight 2^(t+level).
  std::uint64_t counters32[32] = {0};
  std::int64_t done = 0;
  int lanes_used = 1;
#if defined(LOOM_BITSLICE_X86)
  if (common::have_avx512() && k >= 128) {
    const std::int64_t k128 = k & ~std::int64_t{127};
    hs_sweep_avx512(ac, s, t, w, k128, counters32);
    done = k128;
    lanes_used = 8;
  }
#endif
  if (k - done >= 16) {
    // Scalar sweep continues in lane 0 of each level.
    std::uint64_t c4[4] = {counters32[0], counters32[8], counters32[16],
                           counters32[24]};
    const std::int64_t k16 = (k - done) & ~std::int64_t{15};
    hs_sweep_scalar(ac, s, t, w + done, k16, c4);
    counters32[0] = c4[0];
    counters32[8] = c4[1];
    counters32[16] = c4[2];
    counters32[24] = c4[3];
    done += k16;
  }
  for (std::int64_t i = done; i < k; ++i) ripple_add(acc, t, w[i]);

  // Drain: FA-fold each level's lanes (plus carries from the level below)
  // to two words, ripple those, and promote the fold's carries upward.
  std::uint64_t carry[24];
  int n_carry = 0;
  for (int lvl = 0; lvl < 4; ++lvl) {
    std::uint64_t words[24];
    int m = 0;
    for (int j = 0; j < lanes_used; ++j) {
      const std::uint64_t v = counters32[lvl * 8 + j];
      if (v != 0) words[m++] = v;
    }
    for (int j = 0; j < n_carry; ++j) words[m++] = carry[j];
    n_carry = 0;
    while (m > 2) {
      std::uint64_t sum;
      const std::uint64_t c = csa(&sum, words[m - 3], words[m - 2], words[m - 1]);
      m -= 3;
      words[m++] = sum;
      if (c != 0) carry[n_carry++] = c;
    }
    for (int j = 0; j < m; ++j) ripple_add(acc, t + lvl, words[j]);
  }
  for (int j = 0; j < n_carry; ++j) ripple_add(acc, t + 4, carry[j]);
}

/// Sign-magnitude decode of a value truncated to `precision` streamed
/// planes. Returns the magnitude; sets `neg`.
inline std::uint32_t sign_magnitude(Value raw, int precision,
                                    bool* neg) noexcept {
  const auto uv = static_cast<std::uint32_t>(static_cast<std::uint16_t>(raw));
  const std::int32_t v =
      static_cast<std::int32_t>(uv << (32 - precision)) >> (32 - precision);
  *neg = v < 0;
  return static_cast<std::uint32_t>(
      *neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v));
}

/// Non-adjacent-form digits of a signed magnitude: ±mag = Σ ±2^shift with
/// ~25% fewer nonzero digits than plain binary for our weight
/// distributions. Each digit packs its shift with its final arena index
/// (operand sign folded with digit sign) so the append loop stays single:
/// entry = shift | (sidx << kSidxBit).
struct NafShifts {
  int digit[kBasePrecision + 2];
  int n = 0;
};

inline void naf_decode(std::uint32_t mag, bool negated, NafShifts* out) noexcept {
  const std::uint32_t m3 = mag + (mag << 1);
  std::uint32_t dp = (m3 & ~mag) >> 1;
  std::uint32_t dm = (mag & ~m3) >> 1;
  const int pos_idx = negated ? 1 << kSidxBit : 0;
  const int neg_idx = pos_idx ^ (1 << kSidxBit);
  out->n = 0;
  while (dp != 0) {
    out->digit[out->n++] = std::countr_zero(dp) | pos_idx;
    dp &= dp - 1;
  }
  while (dm != 0) {
    out->digit[out->n++] = std::countr_zero(dm) | neg_idx;
    dm &= dm - 1;
  }
}

}  // namespace

void transpose64(std::uint64_t a[64]) noexcept {
  // Butterfly swap in the LSB-first convention (element (i, j) = bit j of
  // a[i]): at each level swap the block whose row index has bit `j` clear /
  // column index has bit `j` set with its mirror.
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= (m << j)) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k + j] ^= t;
      a[k] ^= (t << j);
    }
  }
}

BitsliceEngine::BitsliceEngine(Options opts) : opts_(opts) {
  LOOM_EXPECTS(supports(opts));
  slab_windows_ = (64 / opts_.cols) * opts_.cols;
}

namespace {

/// Prepare an Accum view over the scratch buffers (allocated once, reused
/// across slabs — no steady-state allocation).
Accum make_accum(std::vector<std::uint64_t>& arena,
                 std::vector<std::int32_t>& arena_n, std::uint64_t* pos,
                 std::uint64_t* neg) {
  arena.resize(static_cast<std::size_t>(2) * kShifts * kStride);
  arena_n.assign(static_cast<std::size_t>(2) * kShifts, 0);
  Accum ac;
  ac.arena = arena.data();
  ac.n = arena_n.data();
  ac.acc[0] = pos;
  ac.acc[1] = neg;
  return ac;
}

/// Reduce every arena (ascending t so promoted carries are swept along)
/// and leave both sliced accumulators final.
void drain_all(const Accum& ac) {
  for (int s = 0; s < 2; ++s) {
    for (int t = 0; t < kShifts; ++t) reduce_arena(ac, s, t);
  }
}

}  // namespace

void BitsliceEngine::conv_slab(const nn::Layer& layer,
                               std::span<const nn::Tensor* const> inputs,
                               const nn::Tensor& weights,
                               const SliceSpec& spec, std::int64_t g,
                               std::int64_t slab,
                               std::span<nn::WideTensor* const> wides,
                               Scratch& scratch, ConvStats& stats) const {
  const int lanes = opts_.lanes;
  const int cols = opts_.cols;
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t ic_count = ceil_div(inner, lanes);
  const std::int64_t fb_count = ceil_div(cog, opts_.rows);
  // Batched runs concatenate every request's window range into one global
  // axis: slab columns cover [w0, w0 + cu) of it, and a column's request is
  // its global index / windows. Per-request segments are contiguous, so the
  // inner loops below walk them segment-wise — with one request the single
  // segment spans the whole slab and the walk is the pre-batch loop.
  const std::int64_t total_windows =
      windows * static_cast<std::int64_t>(inputs.size());
  const std::int64_t w0 = slab * slab_windows_;
  const std::int64_t cu =
      std::min<std::int64_t>(slab_windows_, total_windows - w0);
  const std::int64_t n_groups = ceil_div(cu, cols);

  const int profile = spec.act_precision;
  const int pw = spec.weight_precision;
  const auto prof_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << profile) - 1);
  const int act_neg_plane = spec.act_signed ? profile - 1 : -1;

  // ---- Phase 1: transpose this slab's activations to dense bit-plane
  // lists, one chunk at a time, computing each column-group's streamed
  // precision (the dispatcher's OR detector) and the analytic accounting.
  scratch.plane_words.clear();
  scratch.plane_bits.clear();
  scratch.plane_begin.assign(static_cast<std::size_t>(ic_count * lanes) + 1, 0);

  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  std::uint32_t group_or[64];
  std::uint64_t planes[kBasePrecision];
  for (std::int64_t ic = 0; ic < ic_count; ++ic) {
    const std::int64_t n = std::min<std::int64_t>(lanes, inner - ic * lanes);
    std::fill(group_or, group_or + n_groups, 0u);
    for (std::int64_t l = 0; l < n; ++l) {
      const std::int64_t flat = ic * lanes + l;
      // Hoist the kernel-position math: only the window varies below.
      const std::int64_t ci = flat / (kh * kw);
      const std::int64_t rem = flat % (kh * kw);
      const std::int64_t ky = rem / kw;
      const std::int64_t kx = rem % kw;
      const std::int64_t c_base =
          (g * layer.group_in_channels() + ci) * layer.in.h;
      std::memset(planes, 0, sizeof planes);
      std::uint32_t lane_or = 0;
      for (std::int64_t c0 = 0; c0 < cu;) {
        const std::int64_t gw = w0 + c0;
        const nn::Tensor& input =
            *inputs[static_cast<std::size_t>(gw / windows)];
        const std::int64_t win0 = gw % windows;
        const std::int64_t seg = std::min(cu - c0, windows - win0);
        for (std::int64_t k = 0; k < seg; ++k) {
          const std::int64_t window = win0 + k;
          const std::int64_t c = c0 + k;
          const std::int64_t iy =
              (window / layer.out.w) * layer.stride + ky - layer.pad;
          const std::int64_t ix =
              (window % layer.out.w) * layer.stride + kx - layer.pad;
          if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) {
            continue;
          }
          const Value v = input.flat((c_base + iy) * layer.in.w + ix);
          const auto raw =
              static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
          // The OR detector inspects the raw value (it clamps to the profile
          // *after* the leading-one detection, like the scalar dispatcher);
          // the planes carry only the streamed bits.
          group_or[c / cols] |= raw;
          std::uint32_t bits = raw & prof_mask;
          lane_or |= bits;
          const std::uint64_t col_bit = std::uint64_t{1} << c;
          while (bits != 0) {
            planes[std::countr_zero(bits)] |= col_bit;
            bits &= bits - 1;
          }
        }
        c0 += seg;
      }
      while (lane_or != 0) {
        const int b = std::countr_zero(lane_or);
        lane_or &= lane_or - 1;
        scratch.plane_words.push_back(planes[b]);
        scratch.plane_bits.push_back(static_cast<std::uint8_t>(b));
      }
      scratch.plane_begin[static_cast<std::size_t>(flat) + 1] =
          static_cast<std::int32_t>(scratch.plane_words.size());
    }
    for (std::int64_t l = n; l < lanes; ++l) {
      scratch.plane_begin[static_cast<std::size_t>(ic * lanes + l) + 1] =
          static_cast<std::int32_t>(scratch.plane_words.size());
    }
    for (std::int64_t j = 0; j < n_groups; ++j) {
      const std::int64_t group_cols =
          std::min<std::int64_t>(cols, cu - j * cols);
      int pa = profile;
      if (spec.dynamic) {
        pa = std::min(needed_bits_unsigned(group_or[j]), profile);
        stats.detect_invocations += static_cast<std::uint64_t>(fb_count);
        stats.detect_values +=
            static_cast<std::uint64_t>(fb_count * group_cols * n);
      }
      stats.cycles += static_cast<std::uint64_t>(fb_count) *
                      static_cast<std::uint64_t>(pw) *
                      static_cast<std::uint64_t>(pa);
      stats.chunks += fb_count;
      stats.streamed_pa += static_cast<double>(pa) * static_cast<double>(fb_count);
      stats.act_bits_streamed +=
          static_cast<std::uint64_t>(pa) *
          static_cast<std::uint64_t>(fb_count * group_cols * n);
      stats.weight_bits_streamed += static_cast<std::uint64_t>(pw) *
                                    static_cast<std::uint64_t>(cog * n);
    }
  }

  // ---- Phase 2: per filter row, every (plane word, weight magnitude bit)
  // pair is one partial-product addend at shift b + s; collect them into
  // the per-shift arenas, reduce, and transpose the sliced accumulators
  // back to per-column integers.
  //
  // Weights are applied in sign-magnitude form: w = ±|w| contributes its
  // magnitude bits with the whole product's sign folded into the pos/neg
  // accumulator choice. This commutes with the SIP's two's-complement MSB
  // negation pass — the exact integer pos-neg difference is identical —
  // while negative weights touch ~half the planes their two's-complement
  // encoding (all high bits set) would.
  const Accum ac = make_accum(scratch.arena, scratch.arena_n, scratch.pos, scratch.neg);
  const std::uint64_t* dw = scratch.plane_words.data();
  const std::uint8_t* dbit = scratch.plane_bits.data();
  const std::int32_t* dbegin = scratch.plane_begin.data();

  for (std::int64_t fb = 0; fb < fb_count; ++fb) {
    const std::int64_t rows_used =
        std::min<std::int64_t>(opts_.rows, cog - fb * opts_.rows);
    for (std::int64_t r = 0; r < rows_used; ++r) {
      const std::int64_t co = g * cog + fb * opts_.rows + r;
      std::memset(scratch.pos, 0, sizeof scratch.pos);
      std::memset(scratch.neg, 0, sizeof scratch.neg);
      const std::int64_t wrow = co * inner;
      for (std::int64_t ic = 0; ic < ic_count; ++ic) {
        const std::int64_t n = std::min<std::int64_t>(lanes, inner - ic * lanes);
        for (std::int64_t l = 0; l < n; ++l) {
          const std::int64_t flat = ic * lanes + l;
          bool w_neg = false;
          const std::uint32_t mag =
              sign_magnitude(weights.flat(wrow + flat), pw, &w_neg);
          if (mag == 0) continue;
          NafShifts sh;
          naf_decode(mag, w_neg, &sh);
          const std::int32_t e1 = dbegin[flat + 1];
          if (act_neg_plane < 0) {
            // Unsigned activations (the Loom conv path): the packed digit
            // plus the plane bit is the arena slot.
            for (std::int32_t e = dbegin[flat]; e < e1; ++e) {
              const int b = dbit[e];
              const std::uint64_t x = dw[e];
              for (int i = 0; i < sh.n; ++i) {
                arena_add(ac, sh.digit[i] + b, x);
              }
            }
          } else {
            for (std::int32_t e = dbegin[flat]; e < e1; ++e) {
              const int b = dbit[e];
              const std::uint64_t x = dw[e];
              const int flip = b == act_neg_plane ? 1 << kSidxBit : 0;
              for (int i = 0; i < sh.n; ++i) {
                arena_add(ac, (sh.digit[i] + b) ^ flip, x);
              }
            }
          }
        }
      }
      drain_all(ac);
      transpose64(scratch.pos);
      transpose64(scratch.neg);
      for (std::int64_t c0 = 0; c0 < cu;) {
        const std::int64_t gw = w0 + c0;
        nn::WideTensor& wide = *wides[static_cast<std::size_t>(gw / windows)];
        const std::int64_t win0 = gw % windows;
        const std::int64_t seg = std::min(cu - c0, windows - win0);
        for (std::int64_t k = 0; k < seg; ++k) {
          const std::int64_t window = win0 + k;
          wide.at3(co, window / layer.out.w, window % layer.out.w) =
              static_cast<Wide>(scratch.pos[c0 + k]) -
              static_cast<Wide>(scratch.neg[c0 + k]);
        }
        c0 += seg;
      }
    }
  }
}

BitsliceEngine::ConvStats BitsliceEngine::run_conv(const nn::Layer& layer,
                                                   const nn::Tensor& input,
                                                   const nn::Tensor& weights,
                                                   const SliceSpec& spec,
                                                   nn::WideTensor& wide) {
  const nn::Tensor* const inputs[] = {&input};
  nn::WideTensor* const wides[] = {&wide};
  return run_conv_batch(layer, inputs, weights, spec, wides);
}

BitsliceEngine::ConvStats BitsliceEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, const SliceSpec& spec,
    std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  LOOM_EXPECTS(spec.act_precision >= 1 && spec.act_precision <= kBasePrecision);
  LOOM_EXPECTS(spec.weight_precision >= 1 &&
               spec.weight_precision <= kBasePrecision);
  // The activation sign pass negates the MSB plane, which is only defined
  // for full-width streaming; dynamic trimming is an unsigned-OR detector.
  LOOM_EXPECTS(!spec.act_signed || spec.act_precision == kBasePrecision);
  LOOM_EXPECTS(!(spec.act_signed && spec.dynamic));
  // Every carry must stay inside the 64-word slice (see kMaxInner).
  LOOM_EXPECTS(layer.inner_length() < kMaxInner);

  const std::int64_t total_windows =
      layer.windows() * static_cast<std::int64_t>(inputs.size());
  const std::int64_t slab_count = ceil_div(total_windows, slab_windows_);
  const std::int64_t tasks = layer.groups * slab_count;
  const std::size_t jobs = resolve_jobs(opts_.jobs);
  const std::size_t stripes =
      std::min<std::size_t>(jobs, static_cast<std::size_t>(tasks));

  std::vector<ConvStats> stripe_stats(std::max<std::size_t>(stripes, 1));
  const auto run_stripe = [&](std::size_t s, Scratch& scratch) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(tasks) * (s + 1)) / stripes);
    for (std::int64_t t = lo; t < hi; ++t) {
      conv_slab(layer, inputs, weights, spec, t / slab_count, t % slab_count,
                wides, scratch, stripe_stats[s]);
    }
  };

  if (stripes <= 1) {
    Scratch scratch;
    run_stripe(0, scratch);
  } else {
    // (group, slab) tasks write disjoint output windows, so stripes only
    // share read-only inputs; stats are reduced deterministically below
    // (integer-valued, so the sum is order-independent and exact).
    std::vector<Scratch> scratches(stripes);
    shared_pool().parallel_for(
        stripes, [&](std::size_t s) { run_stripe(s, scratches[s]); });
  }

  ConvStats total;
  for (const ConvStats& s : stripe_stats) {
    total.cycles += s.cycles;
    total.streamed_pa += s.streamed_pa;
    total.chunks += s.chunks;
    total.act_bits_streamed += s.act_bits_streamed;
    total.weight_bits_streamed += s.weight_bits_streamed;
    total.detect_invocations += s.detect_invocations;
    total.detect_values += s.detect_values;
  }
  return total;
}

void BitsliceEngine::fc_slab(const nn::Layer& layer, const nn::Tensor& input,
                             const nn::Tensor& weights, int weight_precision,
                             std::int64_t slab, nn::WideTensor& wide,
                             Scratch& scratch) const {
  const int lanes = opts_.lanes;
  const std::int64_t ci = layer.in.elements();
  const std::int64_t co0 = slab * 64;
  const std::int64_t cu = std::min<std::int64_t>(64, layer.out.c - co0);
  const auto w_mask =
      static_cast<std::uint32_t>((std::uint32_t{1} << weight_precision) - 1);
  const int w_msb_bit = weight_precision - 1;

  const Accum ac = make_accum(scratch.arena, scratch.arena_n, scratch.pos, scratch.neg);
  std::memset(scratch.pos, 0, sizeof scratch.pos);
  std::memset(scratch.neg, 0, sizeof scratch.neg);

  // Weight bit-planes of one chunk: [lane][weight bit] -> 64-output word.
  std::uint64_t wplanes[32][kBasePrecision];
  std::uint32_t wb_mask[32];

  for (std::int64_t base = 0; base < ci; base += lanes) {
    const std::int64_t n = std::min<std::int64_t>(lanes, ci - base);
    std::memset(wplanes, 0,
                static_cast<std::size_t>(n) * kBasePrecision * sizeof(std::uint64_t));
    std::fill(wb_mask, wb_mask + n, 0u);
    for (std::int64_t c = 0; c < cu; ++c) {
      const std::int64_t wbase = (co0 + c) * ci + base;
      const std::uint64_t col_bit = std::uint64_t{1} << c;
      for (std::int64_t l = 0; l < n; ++l) {
        std::uint32_t wv =
            static_cast<std::uint16_t>(weights.flat(wbase + l)) & w_mask;
        wb_mask[l] |= wv;
        while (wv != 0) {
          wplanes[l][std::countr_zero(wv)] |= col_bit;
          wv &= wv - 1;
        }
      }
    }
    for (std::int64_t l = 0; l < n; ++l) {
      // Signed 16-bit activations in NAF sign-magnitude form: the product
      // sign (activation digit sign XOR weight MSB pass) picks the
      // accumulator, which commutes exactly with the SIP's b == 15
      // sign-pass negation.
      bool a_neg = false;
      const std::uint32_t mag =
          sign_magnitude(input.flat(base + l), kBasePrecision, &a_neg);
      if (mag == 0) continue;
      NafShifts sh;
      naf_decode(mag, a_neg, &sh);
      std::uint32_t wm = wb_mask[l];
      while (wm != 0) {
        const int wb = std::countr_zero(wm);
        wm &= wm - 1;
        const std::uint64_t x = wplanes[l][wb];
        const int flip = wb == w_msb_bit ? 1 << kSidxBit : 0;
        for (int i = 0; i < sh.n; ++i) {
          arena_add(ac, (sh.digit[i] + wb) ^ flip, x);
        }
      }
    }
  }

  drain_all(ac);
  transpose64(scratch.pos);
  transpose64(scratch.neg);
  for (std::int64_t c = 0; c < cu; ++c) {
    wide.set_flat(co0 + c, static_cast<Wide>(scratch.pos[c]) -
                               static_cast<Wide>(scratch.neg[c]));
  }
}

void BitsliceEngine::fc_batch_planes(const nn::Layer& layer,
                                     std::span<const nn::Tensor* const> inputs,
                                     std::int64_t slab,
                                     Scratch& scratch) const {
  const std::int64_t ci = layer.in.elements();
  const std::int64_t r0 = slab * 64;
  const std::int64_t ru =
      std::min<std::int64_t>(64, static_cast<std::int64_t>(inputs.size()) - r0);

  // Transpose the slab's activations to dense bit-plane lists — bit r of a
  // plane word is that activation bit of request r0 + r. Built once per
  // slab; every output neuron's weight walk reads them concurrently.
  scratch.plane_words.clear();
  scratch.plane_bits.clear();
  scratch.plane_begin.assign(static_cast<std::size_t>(ci) + 1, 0);
  std::uint64_t planes[kBasePrecision];
  for (std::int64_t flat = 0; flat < ci; ++flat) {
    std::memset(planes, 0, sizeof planes);
    std::uint32_t lane_or = 0;
    for (std::int64_t r = 0; r < ru; ++r) {
      const Value v = inputs[static_cast<std::size_t>(r0 + r)]->flat(flat);
      std::uint32_t bits =
          static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
      lane_or |= bits;
      const std::uint64_t col_bit = std::uint64_t{1} << r;
      while (bits != 0) {
        planes[std::countr_zero(bits)] |= col_bit;
        bits &= bits - 1;
      }
    }
    while (lane_or != 0) {
      const int b = std::countr_zero(lane_or);
      lane_or &= lane_or - 1;
      scratch.plane_words.push_back(planes[b]);
      scratch.plane_bits.push_back(static_cast<std::uint8_t>(b));
    }
    scratch.plane_begin[static_cast<std::size_t>(flat) + 1] =
        static_cast<std::int32_t>(scratch.plane_words.size());
  }
}

void BitsliceEngine::fc_batch_neurons(const nn::Layer& layer,
                                      const nn::Tensor& weights,
                                      int weight_precision, std::int64_t slab,
                                      std::span<nn::WideTensor* const> wides,
                                      const Scratch& planes, Scratch& acc_s,
                                      std::int64_t co_lo,
                                      std::int64_t co_hi) const {
  const std::int64_t ci = layer.in.elements();
  const std::int64_t r0 = slab * 64;
  const std::int64_t ru =
      std::min<std::int64_t>(64, static_cast<std::int64_t>(wides.size()) - r0);
  constexpr int kActNegPlane = kBasePrecision - 1;

  // Per output neuron, one NAF sign-magnitude weight walk over the plane
  // lists accumulates the whole batch at once. The signed 16-bit activation
  // MSB plane flips the accumulator sign, commuting exactly with the SIP
  // sign pass; pos - neg is the exact inner product per request. Neurons
  // are independent, so ranges stripe freely with private arenas.
  const Accum ac = make_accum(acc_s.arena, acc_s.arena_n, acc_s.pos, acc_s.neg);
  const std::uint64_t* dw = planes.plane_words.data();
  const std::uint8_t* dbit = planes.plane_bits.data();
  const std::int32_t* dbegin = planes.plane_begin.data();
  for (std::int64_t co = co_lo; co < co_hi; ++co) {
    std::memset(acc_s.pos, 0, sizeof acc_s.pos);
    std::memset(acc_s.neg, 0, sizeof acc_s.neg);
    const std::int64_t wrow = co * ci;
    for (std::int64_t flat = 0; flat < ci; ++flat) {
      bool w_neg = false;
      const std::uint32_t mag =
          sign_magnitude(weights.flat(wrow + flat), weight_precision, &w_neg);
      if (mag == 0) continue;
      NafShifts sh;
      naf_decode(mag, w_neg, &sh);
      const std::int32_t e1 = dbegin[flat + 1];
      for (std::int32_t e = dbegin[flat]; e < e1; ++e) {
        const int b = dbit[e];
        const std::uint64_t x = dw[e];
        const int flip = b == kActNegPlane ? 1 << kSidxBit : 0;
        for (int i = 0; i < sh.n; ++i) {
          arena_add(ac, (sh.digit[i] + b) ^ flip, x);
        }
      }
    }
    drain_all(ac);
    transpose64(acc_s.pos);
    transpose64(acc_s.neg);
    for (std::int64_t r = 0; r < ru; ++r) {
      wides[static_cast<std::size_t>(r0 + r)]->set_flat(
          co, static_cast<Wide>(acc_s.pos[r]) -
                  static_cast<Wide>(acc_s.neg[r]));
    }
  }
}

void BitsliceEngine::run_fc_batch(const nn::Layer& layer,
                                  std::span<const nn::Tensor* const> inputs,
                                  const nn::Tensor& weights,
                                  int weight_precision,
                                  std::span<nn::WideTensor* const> wides) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(!inputs.empty() && inputs.size() == wides.size());
  LOOM_EXPECTS(weight_precision >= 1 && weight_precision <= kBasePrecision);
  LOOM_EXPECTS(layer.in.elements() < kMaxInner);

  // Small batches fill too few request lanes for the packed layout to
  // amortize its per-neuron weight walk — measured break-even on FC tails
  // is ~8 requests — so they run the 64-outputs-per-word solo layout
  // instead. Either way the accumulators are exact and byte-identical.
  constexpr std::size_t kPackThreshold = 8;
  if (inputs.size() < kPackThreshold) {
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      run_fc(layer, *inputs[r], weights, weight_precision, *wides[r]);
    }
    return;
  }

  // A request-slab's plane lists build once, then the per-neuron walk —
  // the dominant cost — stripes over the pool: neurons are independent, so
  // any batch (not just > 64 requests) scales with jobs.
  const auto batch = static_cast<std::int64_t>(inputs.size());
  const std::int64_t slab_count = ceil_div(batch, std::int64_t{64});
  const std::size_t stripes = std::min<std::size_t>(
      resolve_jobs(opts_.jobs), static_cast<std::size_t>(layer.out.c));
  Scratch planes;
  std::vector<Scratch> scratches(stripes > 1 ? stripes : 1);
  for (std::int64_t slab = 0; slab < slab_count; ++slab) {
    fc_batch_planes(layer, inputs, slab, planes);
    const auto run_stripe = [&](std::size_t s) {
      const auto lo = static_cast<std::int64_t>(
          (static_cast<std::size_t>(layer.out.c) * s) / stripes);
      const auto hi = static_cast<std::int64_t>(
          (static_cast<std::size_t>(layer.out.c) * (s + 1)) / stripes);
      fc_batch_neurons(layer, weights, weight_precision, slab, wides, planes,
                       scratches[s], lo, hi);
    };
    if (stripes <= 1) {
      run_stripe(0);
    } else {
      shared_pool().parallel_for(stripes, run_stripe);
    }
  }
}

void BitsliceEngine::run_fc(const nn::Layer& layer, const nn::Tensor& input,
                            const nn::Tensor& weights, int weight_precision,
                            nn::WideTensor& wide) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(weight_precision >= 1 && weight_precision <= kBasePrecision);
  LOOM_EXPECTS(layer.in.elements() < kMaxInner);

  const std::int64_t slab_count = ceil_div(layer.out.c, std::int64_t{64});
  const std::size_t jobs = resolve_jobs(opts_.jobs);
  const std::size_t stripes =
      std::min<std::size_t>(jobs, static_cast<std::size_t>(slab_count));

  const auto run_stripe = [&](std::size_t s, Scratch& scratch) {
    const auto lo = static_cast<std::int64_t>(
        (static_cast<std::size_t>(slab_count) * s) / stripes);
    const auto hi = static_cast<std::int64_t>(
        (static_cast<std::size_t>(slab_count) * (s + 1)) / stripes);
    for (std::int64_t slab = lo; slab < hi; ++slab) {
      fc_slab(layer, input, weights, weight_precision, slab, wide, scratch);
    }
  };

  if (stripes <= 1) {
    Scratch scratch;
    run_stripe(0, scratch);
  } else {
    std::vector<Scratch> scratches(stripes);
    shared_pool().parallel_for(
        stripes, [&](std::size_t s) { run_stripe(s, scratches[s]); });
  }
}

}  // namespace loom::sim
