// Comparison harness: run a set of architectures over a set of networks and
// tabulate speedup / relative energy efficiency vs the DPNN baseline —
// the quantities every table and figure of the paper reports.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/result.hpp"
#include "sim/simulator.hpp"

namespace loom::sim {

struct ComparisonEntry {
  std::string network;
  std::string arch;
  double perf = 0.0;  ///< speedup vs baseline (same filter)
  double eff = 0.0;   ///< relative energy efficiency vs baseline
  RunResult result;   ///< the full run, for drill-down
};

class Comparison {
 public:
  /// Run `baseline` and all `archs` over the workload, recording relative
  /// metrics per filter.
  void add_network(NetworkWorkload& workload, Simulator& baseline,
                   std::vector<Simulator*> archs);

  /// Record pre-computed runs for one network (baseline first, then the
  /// roster in run order). Produces exactly the entries add_network would,
  /// letting callers simulate cells out of order (e.g. on a thread pool)
  /// and still assemble a deterministically ordered table.
  void add_network_results(const std::string& network, RunResult base,
                           std::vector<RunResult> runs);

  [[nodiscard]] const std::vector<ComparisonEntry>& entries(
      RunResult::Filter f) const;

  /// Geometric means over networks for one architecture name.
  struct Geomeans {
    double perf = 0.0;
    double eff = 0.0;
  };
  [[nodiscard]] Geomeans geomeans(const std::string& arch,
                                  RunResult::Filter f) const;

  [[nodiscard]] const std::vector<RunResult>& baseline_runs() const noexcept {
    return baseline_runs_;
  }

 private:
  std::map<RunResult::Filter, std::vector<ComparisonEntry>> entries_;
  std::vector<RunResult> baseline_runs_;
};

}  // namespace loom::sim
