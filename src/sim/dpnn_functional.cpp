#include "sim/dpnn_functional.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "nn/im2col.hpp"
#include "sim/autotune_cache.hpp"
#include "sim/bitslice_engine.hpp"
#include "sim/functional.hpp"

namespace loom::sim {

namespace {

Value window_value(const nn::Layer& layer, const nn::Tensor& input,
                   std::int64_t g, std::int64_t window, std::int64_t flat) {
  const std::int64_t idx = nn::im2col_input_index(layer, g, window, flat);
  return idx < 0 ? 0 : input.flat(idx);
}

/// DPNN semantics for the word-parallel backends: every operand at full
/// signed 16-bit precision, no dynamic trimming. `rows`/`cols` only shape
/// the slab walk — the exact accumulators do not depend on them.
constexpr BitsliceEngine::SliceSpec kDpnnSpec{.act_precision = kBasePrecision,
                                              .weight_precision = kBasePrecision,
                                              .act_signed = true,
                                              .dynamic = false};

/// Allocate one run per request (accumulators of `wide_shape`) and marshal
/// the pointer views the word-parallel backends consume.
std::vector<DpnnFunctionalRun> make_runs(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Shape& wide_shape, std::vector<const nn::Tensor*>& in_ptrs,
    std::vector<nn::WideTensor*>& wide_ptrs) {
  std::vector<DpnnFunctionalRun> runs;
  runs.reserve(inputs.size());
  in_ptrs.resize(inputs.size());
  wide_ptrs.resize(inputs.size());
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    DpnnFunctionalRun run;
    run.name = layer.name;
    run.wide = nn::WideTensor(wide_shape);
    runs.push_back(std::move(run));
    in_ptrs[r] = &inputs[r];
    wide_ptrs[r] = &runs[r].wide;
  }
  return runs;
}

/// Stamp the data-independent schedule cycles and requantize per request
/// (shift choice per request — identical to solo runs).
void finalize_runs(std::vector<DpnnFunctionalRun>& runs, std::uint64_t cycles,
                   int out_bits, bool relu) {
  for (DpnnFunctionalRun& run : runs) {
    run.cycles = cycles;
    run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
    run.output = nn::requantize(run.wide, run.requant_shift, out_bits, relu);
  }
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

FunctionalDpnnEngine::FunctionalDpnnEngine(DpnnFunctionalOptions opts)
    : opts_(opts) {
  LOOM_EXPECTS(opts.act_lanes >= 1 && opts.filters >= 1);
  ctx_ = BackendContext{.rows = opts_.filters,
                        .cols = 16,
                        .lanes = opts_.act_lanes,
                        .jobs = opts_.jobs};
  resolved_ = resolve_backend_name(opts_.backend, opts_.force_scalar, ctx_);
  if (resolved_ == "auto") {
    candidates_ = BackendRegistry::instance().tunable_names(ctx_);
    init_autotune_cache_from_env();
  }
}

FunctionalBackend& FunctionalDpnnEngine::backend_for(const std::string& name) {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    const BackendInfo* info = BackendRegistry::instance().find(name);
    LOOM_EXPECTS(info != nullptr);
    it = backends_.emplace(name, info->make(ctx_)).first;
  }
  return *it->second;
}

void FunctionalDpnnEngine::dispatch_conv(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, std::span<nn::WideTensor* const> wides) {
  if (resolved_ != "auto") {
    (void)backend_for(resolved_).run_conv_batch(layer, inputs, weights,
                                                kDpnnSpec, wides);
    return;
  }
  const TuneKey key =
      conv_tune_key(layer, kDpnnSpec, static_cast<int>(inputs.size()), ctx_);
  const std::string used = BackendAutotuner::instance().choose(key, candidates_);
  const auto t0 = std::chrono::steady_clock::now();
  (void)backend_for(used).run_conv_batch(layer, inputs, weights, kDpnnSpec,
                                         wides);
  BackendAutotuner::instance().record(key, used, elapsed_ns(t0));
}

void FunctionalDpnnEngine::dispatch_fc(
    const nn::Layer& layer, std::span<const nn::Tensor* const> inputs,
    const nn::Tensor& weights, std::span<nn::WideTensor* const> wides) {
  if (resolved_ != "auto") {
    backend_for(resolved_).run_fc_batch(layer, inputs, weights, kBasePrecision,
                                        wides);
    return;
  }
  const TuneKey key =
      fc_tune_key(layer, kBasePrecision, static_cast<int>(inputs.size()), ctx_);
  const std::string used = BackendAutotuner::instance().choose(key, candidates_);
  const auto t0 = std::chrono::steady_clock::now();
  backend_for(used).run_fc_batch(layer, inputs, weights, kBasePrecision, wides);
  BackendAutotuner::instance().record(key, used, elapsed_ns(t0));
}

DpnnFunctionalRun FunctionalDpnnEngine::run_conv(const nn::Layer& layer,
                                                 const nn::Tensor& input,
                                                 const nn::Tensor& weights,
                                                 int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  DpnnFunctionalRun run;
  run.name = layer.name;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, layer.out.h, layer.out.w});

  const int lanes = opts_.act_lanes;
  const std::int64_t inner = layer.inner_length();
  const std::int64_t windows = layer.windows();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t fb_count = ceil_div(cog, opts_.filters);
  const std::int64_t ic_count = ceil_div(inner, lanes);

  if (resolved_ != "scalar") {
    const nn::Tensor* in_ptr = &input;
    nn::WideTensor* wide_ptr = &run.wide;
    dispatch_conv(layer, std::span<const nn::Tensor* const>(&in_ptr, 1),
                  weights, std::span<nn::WideTensor* const>(&wide_ptr, 1));
    // The baseline schedule is data-independent: one cycle per (filter
    // block, window, input chunk).
    run.cycles = static_cast<std::uint64_t>(layer.groups) *
                 static_cast<std::uint64_t>(fb_count) *
                 static_cast<std::uint64_t>(windows) *
                 static_cast<std::uint64_t>(ic_count);
  } else {
    std::vector<arch::IpUnit> ips(static_cast<std::size_t>(opts_.filters),
                                  arch::IpUnit(lanes));
    std::vector<Value> acts(static_cast<std::size_t>(lanes));
    std::vector<Value> wvals(static_cast<std::size_t>(lanes));

    for (std::int64_t g = 0; g < layer.groups; ++g) {
      for (std::int64_t fb = 0; fb < fb_count; ++fb) {
        const std::int64_t f0 = fb * opts_.filters;
        const std::int64_t filters_used =
            std::min<std::int64_t>(opts_.filters, cog - f0);
        for (std::int64_t window = 0; window < windows; ++window) {
          for (auto& ip : ips) ip.begin_output();
          for (std::int64_t base = 0; base < inner; base += lanes) {
            // One cycle: lanes activations broadcast to all IP units.
            const std::int64_t n = std::min<std::int64_t>(lanes, inner - base);
            for (std::int64_t l = 0; l < n; ++l) {
              acts[static_cast<std::size_t>(l)] =
                  window_value(layer, input, g, window, base + l);
            }
            std::fill(acts.begin() + static_cast<std::ptrdiff_t>(n), acts.end(), 0);
            for (std::int64_t f = 0; f < filters_used; ++f) {
              const std::int64_t co = g * cog + f0 + f;
              for (std::int64_t l = 0; l < n; ++l) {
                wvals[static_cast<std::size_t>(l)] =
                    weights.flat(co * inner + base + l);
              }
              std::fill(wvals.begin() + static_cast<std::ptrdiff_t>(n), wvals.end(), 0);
              ips[static_cast<std::size_t>(f)].cycle(acts, wvals);
            }
            ++run.cycles;
          }
          for (std::int64_t f = 0; f < filters_used; ++f) {
            const std::int64_t co = g * cog + f0 + f;
            run.wide.at3(co, window / layer.out.w, window % layer.out.w) =
                ips[static_cast<std::size_t>(f)].output();
          }
        }
      }
    }
  }

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

std::vector<DpnnFunctionalRun> FunctionalDpnnEngine::run_conv_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kConv);
  LOOM_EXPECTS(!inputs.empty());
  const std::size_t batch = inputs.size();
  std::vector<DpnnFunctionalRun> runs;
  runs.reserve(batch);

  if (resolved_ == "scalar") {
    for (std::size_t r = 0; r < batch; ++r) {
      runs.push_back(run_conv(layer, inputs[r], weights, out_bits));
    }
    return runs;
  }

  std::vector<const nn::Tensor*> in_ptrs;
  std::vector<nn::WideTensor*> wide_ptrs;
  runs = make_runs(layer, inputs,
                   nn::Shape{layer.out.c, layer.out.h, layer.out.w}, in_ptrs,
                   wide_ptrs);
  dispatch_conv(layer, in_ptrs, weights, wide_ptrs);

  const std::int64_t fb_count =
      ceil_div(layer.group_out_channels(), opts_.filters);
  const std::int64_t ic_count =
      ceil_div(layer.inner_length(), static_cast<std::int64_t>(opts_.act_lanes));
  finalize_runs(runs,
                static_cast<std::uint64_t>(layer.groups) *
                    static_cast<std::uint64_t>(fb_count) *
                    static_cast<std::uint64_t>(layer.windows()) *
                    static_cast<std::uint64_t>(ic_count),
                out_bits, opts_.relu);
  return runs;
}

std::vector<DpnnFunctionalRun> FunctionalDpnnEngine::run_fc_batch(
    const nn::Layer& layer, std::span<const nn::Tensor> inputs,
    const nn::Tensor& weights, int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  LOOM_EXPECTS(!inputs.empty());
  const std::size_t batch = inputs.size();
  std::vector<DpnnFunctionalRun> runs;
  runs.reserve(batch);

  if (resolved_ == "scalar") {
    for (std::size_t r = 0; r < batch; ++r) {
      runs.push_back(run_fc(layer, inputs[r], weights, out_bits));
    }
    return runs;
  }

  std::vector<const nn::Tensor*> in_ptrs;
  std::vector<nn::WideTensor*> wide_ptrs;
  runs = make_runs(layer, inputs, nn::Shape{layer.out.c, 1, 1}, in_ptrs,
                   wide_ptrs);
  dispatch_fc(layer, in_ptrs, weights, wide_ptrs);

  const std::int64_t fb_count =
      ceil_div(static_cast<std::int64_t>(layer.out.c), opts_.filters);
  const std::int64_t ic_count = ceil_div(
      layer.in.elements(), static_cast<std::int64_t>(opts_.act_lanes));
  finalize_runs(runs,
                static_cast<std::uint64_t>(fb_count) *
                    static_cast<std::uint64_t>(ic_count),
                out_bits, opts_.relu);
  return runs;
}

DpnnFunctionalRun FunctionalDpnnEngine::run_fc(const nn::Layer& layer,
                                               const nn::Tensor& input,
                                               const nn::Tensor& weights,
                                               int out_bits) {
  LOOM_EXPECTS(layer.kind == nn::LayerKind::kFullyConnected);
  DpnnFunctionalRun run;
  run.name = layer.name;
  run.wide = nn::WideTensor(nn::Shape{layer.out.c, 1, 1});

  const int lanes = opts_.act_lanes;
  const std::int64_t ci = layer.in.elements();
  const std::int64_t fb_count = ceil_div(static_cast<std::int64_t>(layer.out.c),
                                         opts_.filters);
  const std::int64_t ic_count = ceil_div(ci, static_cast<std::int64_t>(lanes));

  if (resolved_ != "scalar") {
    const nn::Tensor* in_ptr = &input;
    nn::WideTensor* wide_ptr = &run.wide;
    dispatch_fc(layer, std::span<const nn::Tensor* const>(&in_ptr, 1), weights,
                std::span<nn::WideTensor* const>(&wide_ptr, 1));
    run.cycles = static_cast<std::uint64_t>(fb_count) *
                 static_cast<std::uint64_t>(ic_count);
  } else {
    std::vector<arch::IpUnit> ips(static_cast<std::size_t>(opts_.filters),
                                  arch::IpUnit(lanes));
    std::vector<Value> acts(static_cast<std::size_t>(lanes));
    std::vector<Value> wvals(static_cast<std::size_t>(lanes));

    for (std::int64_t fb = 0; fb < fb_count; ++fb) {
      const std::int64_t f0 = fb * opts_.filters;
      const std::int64_t filters_used =
          std::min<std::int64_t>(opts_.filters, layer.out.c - f0);
      for (auto& ip : ips) ip.begin_output();
      for (std::int64_t base = 0; base < ci; base += lanes) {
        const std::int64_t n = std::min<std::int64_t>(lanes, ci - base);
        for (std::int64_t l = 0; l < n; ++l) {
          acts[static_cast<std::size_t>(l)] = input.flat(base + l);
        }
        std::fill(acts.begin() + static_cast<std::ptrdiff_t>(n), acts.end(), 0);
        for (std::int64_t f = 0; f < filters_used; ++f) {
          for (std::int64_t l = 0; l < n; ++l) {
            wvals[static_cast<std::size_t>(l)] =
                weights.flat((f0 + f) * ci + base + l);
          }
          std::fill(wvals.begin() + static_cast<std::ptrdiff_t>(n), wvals.end(), 0);
          ips[static_cast<std::size_t>(f)].cycle(acts, wvals);
        }
        ++run.cycles;
      }
      for (std::int64_t f = 0; f < filters_used; ++f) {
        run.wide.set_flat(f0 + f, ips[static_cast<std::size_t>(f)].output());
      }
    }
  }

  run.requant_shift = nn::choose_requant_shift(run.wide, out_bits);
  run.output = nn::requantize(run.wide, run.requant_shift, out_bits, opts_.relu);
  return run;
}

}  // namespace loom::sim
