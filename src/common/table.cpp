#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace loom {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TextTable::render() const {
  // Column widths over header and all rows.
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      width[c] = std::max(width[c], cells[c].size());
    }
  };
  widen(header_);
  for (const Row& r : rows_) widen(r.cells);

  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  total = total > 2 ? total - 2 : total;

  std::ostringstream out;
  auto rule = [&] { out << std::string(total, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };

  if (!title_.empty()) {
    out << title_ << '\n';
    rule();
  }
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const Row& r : rows_) {
    if (r.rule_before) rule();
    emit(r.cells);
  }
  return out.str();
}

}  // namespace loom
