#include "common/bitops.hpp"

#include <algorithm>
#include <bit>

namespace loom {

int leading_one(std::uint32_t v) noexcept {
  if (v == 0) return -1;
  return 31 - std::countl_zero(v);
}

int needed_bits_unsigned(std::uint32_t v) noexcept {
  return std::max(1, leading_one(v) + 1);
}

int needed_bits_signed(std::int32_t v) noexcept {
  // Smallest p with v in [-2^(p-1), 2^(p-1)-1]. For non-negative values the
  // magnitude bits plus a sign bit; for negative values 32 minus the number
  // of redundant leading sign bits plus one.
  if (v == 0) return 1;
  const auto u = static_cast<std::uint32_t>(v);
  if (v > 0) return 32 - std::countl_zero(u) + 1;
  return 32 - std::countl_one(u) + 1;
}

int group_precision_unsigned(std::span<const Value> group) noexcept {
  // Hardware model: per-bit-position OR trees produce a vector of which bit
  // positions are used by any value in the group; a leading-one detector
  // then reports the precision. ORing the magnitudes and taking the leading
  // one position computes exactly that.
  std::uint32_t ored = 0;
  for (const Value v : group) {
    ored |= static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
  }
  return needed_bits_unsigned(ored);
}

int group_precision_signed(std::span<const Value> group) noexcept {
  int p = 1;
  for (const Value v : group) p = std::max(p, needed_bits_signed(v));
  return p;
}

bool fits_signed(std::int32_t v, int bits) noexcept {
  if (bits <= 0) return false;
  if (bits >= 32) return true;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

bool fits_unsigned(std::uint32_t v, int bits) noexcept {
  if (bits <= 0) return false;
  if (bits >= 32) return true;
  return v <= ((std::uint64_t{1} << bits) - 1);
}

int naf_term_count(std::uint32_t mag) noexcept {
  const NafDigits d = naf_digits(mag);
  return std::popcount(d.plus) + std::popcount(d.minus);
}

Wide saturate_signed(Wide v, int bits) noexcept {
  const Wide lo = -(Wide{1} << (bits - 1));
  const Wide hi = (Wide{1} << (bits - 1)) - 1;
  return std::clamp(v, lo, hi);
}

}  // namespace loom
