// Runtime CPU feature detection shared by every SIMD-dispatched kernel
// (the bit-sliced Harley-Seal sweep, the LUT table build/lookup). One probe,
// one policy: kernels ask for the process-wide SimdLevel instead of each
// carrying a private __builtin_cpu_supports call, so a single environment
// override can force every dispatch site down to a lower tier — the switch
// the per-tier CI legs and the cross-tier byte-identity tests stand on.
//
// Tier semantics: kAvx512 implies AVX-512 F + BW (the 16-bit vector adds of
// the LUT table build need BW); kAvx2 implies AVX2. Each tier includes the
// ones below it, so "supports at least X" is an ordinary >= compare.
//
// Overrides (read once, first use — set them before the process starts):
//   LOOM_FORCE_SCALAR_SIMD=1   every dispatch site takes the scalar path
//   LOOM_SIMD_LEVEL=scalar|avx2|avx512|native   cap the tier (avx512 and
//       native never raise above what the hardware has; unknown values
//       throw ConfigError)
#pragma once

namespace loom::common {

/// SIMD dispatch tiers, ordered: a kernel compiled for tier T may run
/// whenever simd_level() >= T.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  ///< AVX-512 F + BW
};

/// Human-readable tier name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// What the hardware supports, ignoring any environment override. Cached
/// after the first probe.
[[nodiscard]] SimdLevel hardware_simd_level() noexcept;

/// Pure policy: combine the two override variables into a tier cap.
/// `force_scalar` / `level` are the raw values of LOOM_FORCE_SCALAR_SIMD /
/// LOOM_SIMD_LEVEL (nullptr = unset). Exposed so tests can sweep the parse
/// without mutating the process environment. Throws ConfigError on an
/// unrecognized level string.
[[nodiscard]] SimdLevel simd_cap_from_env(const char* force_scalar,
                                          const char* level);

/// The effective dispatch tier: min(hardware, environment cap). Read once
/// and cached — the environment must be set before first use (ctest sets it
/// per test process, which is the intended granularity).
[[nodiscard]] SimdLevel simd_level();

/// Convenience predicates against the effective tier.
[[nodiscard]] bool have_avx2();
[[nodiscard]] bool have_avx512();

}  // namespace loom::common
