#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace loom {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double CounterRng::uniform(std::uint64_t index) const noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(bits(index) >> 11) * 0x1.0p-53;
}

std::uint64_t CounterRng::below(std::uint64_t index, std::uint64_t n) const noexcept {
  if (n == 0) return 0;
  // Modulo reduction; the bias is below 2^-32 for the n this library uses
  // (tensor extents), far under any statistic we measure.
  return bits(index) % n;
}

double CounterRng::normal(std::uint64_t index) const noexcept {
  // Box-Muller from two decorrelated uniforms derived from the same index.
  const double u1 = static_cast<double>(mix64(bits(index)) >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(mix64(bits(index) ^ 0xD1B54A32D192ED03ull) >> 11) * 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1 + 0x1.0p-60));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

double CounterRng::exponential(std::uint64_t index) const noexcept {
  return -std::log(1.0 - uniform(index) + 0x1.0p-60);
}

}  // namespace loom
