#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace loom {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) {
    LOOM_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  LOOM_EXPECTS(xs.size() == ws.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

IntHistogram::IntHistogram(int bins) : counts_(static_cast<std::size_t>(bins), 0) {
  LOOM_EXPECTS(bins > 0);
}

void IntHistogram::add(int bin, std::uint64_t weight) {
  LOOM_EXPECTS(bin >= 0 && bin < bins());
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count(int bin) const {
  LOOM_EXPECTS(bin >= 0 && bin < bins());
  return counts_[static_cast<std::size_t>(bin)];
}

double IntHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return acc / static_cast<double>(total_);
}

}  // namespace loom
