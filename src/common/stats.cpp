#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace loom {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) {
    LOOM_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  LOOM_EXPECTS(xs.size() == ws.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

constexpr std::size_t kSubMask = (1u << LatencyHistogram::kSubBits) - 1;

/// [low, high) magnitude range covered by bucket `b` (see bucket_of).
void bucket_bounds(std::size_t b, double& low, double& high) noexcept {
  constexpr std::size_t sub_bits = LatencyHistogram::kSubBits;
  if (b < (1u << sub_bits)) {  // exact small-value buckets
    low = static_cast<double>(b);
    high = low + 1.0;
    return;
  }
  const std::size_t octave = (b >> sub_bits) + sub_bits;  // bit width
  const std::size_t sub = b & kSubMask;
  const double base = std::ldexp(1.0, static_cast<int>(octave - 1));
  const double step =
      std::ldexp(1.0, static_cast<int>(octave - 1 - sub_bits));
  low = base + static_cast<double>(sub) * step;
  high = low + step;
}

}  // namespace

std::size_t LatencyHistogram::bucket_of(std::uint64_t sample) noexcept {
  const auto width = static_cast<std::size_t>(std::bit_width(sample));
  if (width <= kSubBits) return static_cast<std::size_t>(sample);
  const std::size_t sub =
      (sample >> (width - 1 - kSubBits)) & kSubMask;
  return ((width - kSubBits) << kSubBits) + sub;
}

void LatencyHistogram::add(std::uint64_t sample) noexcept {
  ++counts_[bucket_of(sample)];
  if (total_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++total_;
  sum_ += sample;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.total_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  min_ = total_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  total_ += other.total_;
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const auto before = static_cast<double>(cum);
    cum += counts_[b];
    if (static_cast<double>(cum) >= target) {
      double low = 0.0;
      double high = 0.0;
      bucket_bounds(b, low, high);
      const double frac =
          (target - before) / static_cast<double>(counts_[b]);
      const double v = low + frac * (high - low);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

IntHistogram::IntHistogram(int bins) : counts_(static_cast<std::size_t>(bins), 0) {
  LOOM_EXPECTS(bins > 0);
}

void IntHistogram::add(int bin, std::uint64_t weight) {
  LOOM_EXPECTS(bin >= 0 && bin < bins());
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count(int bin) const {
  LOOM_EXPECTS(bin >= 0 && bin < bins());
  return counts_[static_cast<std::size_t>(bin)];
}

double IntHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return acc / static_cast<double>(total_);
}

}  // namespace loom
