// A small fixed-size thread pool. Tasks are plain std::function thunks;
// submit() returns a std::future so callers can join on completion and
// observe exceptions thrown inside the task. With `threads == 1` the pool
// still spawns one worker, so submission order equals execution order and
// results match a serial loop exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace loom {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; tasks already queued still run to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. The returned future yields the task's result, or
  /// rethrows whatever the task threw.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Run `fn(i)` for every i in [0, count) across the pool. Always waits
  /// for every submitted task to finish before (re)throwing. If a
  /// submission itself fails, that exception is rethrown; otherwise the
  /// lowest-index task exception is.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool (one worker per hardware thread) shared by the
/// data-parallel kernels — OR-plane builds, the bit-sliced functional
/// engine — so nested runner fan-outs queue stripes instead of spawning
/// thread storms. Contract: tasks submitted to this pool must never call
/// parallel_for/submit on it themselves (a worker blocking on its own pool
/// can deadlock); dedicated pools (e.g. the runner's) may block on it
/// freely.
[[nodiscard]] ThreadPool& shared_pool();

/// Resolve a user-facing `jobs` knob against the shared pool: values <= 0
/// mean "one stripe per hardware thread" (the shared pool's size), anything
/// else is taken literally. Shared by the bit-sliced engine, the OR-plane
/// builder and the inference server so every subsystem reads the knob the
/// same way.
[[nodiscard]] std::size_t resolve_jobs(int jobs);

}  // namespace loom
