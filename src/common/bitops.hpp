// Bit-level utilities used throughout the precision-analysis and datapath
// code: needed-precision computation for signed/unsigned fixed-point values,
// leading-one detection (the hardware primitive behind dynamic precision
// reduction), and bit extraction helpers for the bit-serial datapath.
#pragma once

#include <cstdint>
#include <span>

namespace loom {

/// Fixed-point value type used across the library. The paper's baseline is
/// 16-bit fixed point; we keep intermediate products in 64 bits.
using Value = std::int16_t;
using Wide = std::int64_t;

/// Maximum precision (bits) of the baseline representation.
inline constexpr int kBasePrecision = 16;

/// Position (0-based) of the most significant set bit of `v`, or -1 if v==0.
/// This is the "leading one detector" of the paper's dynamic precision unit.
[[nodiscard]] int leading_one(std::uint32_t v) noexcept;

/// Number of bits needed to represent the unsigned value `v` exactly.
/// Zero needs 1 bit by convention (the hardware still spends one cycle).
[[nodiscard]] int needed_bits_unsigned(std::uint32_t v) noexcept;

/// Number of bits needed to represent `v` in two's complement, including
/// the sign bit. E.g. 0 -> 1, 1 -> 2, -1 -> 1, 127 -> 8, -128 -> 8.
[[nodiscard]] int needed_bits_signed(std::int32_t v) noexcept;

/// Needed unsigned precision of the maximum over a group of non-negative
/// values (the per-group activation precision the OR-tree detector finds).
[[nodiscard]] int group_precision_unsigned(std::span<const Value> group) noexcept;

/// Needed signed precision over a group of two's-complement values (used
/// for per-group weight precisions, Lascorz et al. [10]).
[[nodiscard]] int group_precision_signed(std::span<const Value> group) noexcept;

/// Extract bit `bit` (0 = LSB) of the two's-complement representation of v.
[[nodiscard]] inline int bit_of(Value v, int bit) noexcept {
  return (static_cast<std::uint16_t>(v) >> bit) & 1;
}

/// Extract a field of `width` bits starting at `bit` (LSB-first) from v.
[[nodiscard]] inline std::uint32_t bits_of(Value v, int bit, int width) noexcept {
  const auto u = static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
  return (u >> bit) & ((1u << width) - 1u);
}

/// True if `v` is representable in `bits` bits of two's complement.
[[nodiscard]] bool fits_signed(std::int32_t v, int bits) noexcept;

/// True if `v` is representable in `bits` unsigned bits.
[[nodiscard]] bool fits_unsigned(std::uint32_t v, int bits) noexcept;

/// Clamp a wide accumulator into the signed range of `bits` bits
/// (saturating quantization used when writing output activations back).
[[nodiscard]] Wide saturate_signed(Wide v, int bits) noexcept;

/// Round `p` up to the next multiple of `m` (m in {1,2,4}); used by the
/// LM2b/LM4b variants which only accommodate precisions that are multiples
/// of the number of bits processed per cycle.
[[nodiscard]] inline int round_up(int p, int m) noexcept {
  return ((p + m - 1) / m) * m;
}

/// Ceiling division for non-negative integers.
[[nodiscard]] inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Bit positions of the positive (`+2^k`) and negative (`-2^k`) digits of
/// the non-adjacent form of `mag` — the same dp/dm decomposition the
/// bit-sliced engine's naf_decode applies when it enumerates effectual
/// weight terms. Requires mag < 2^30 (one headroom bit for mag + 2*mag).
struct NafDigits {
  std::uint32_t plus = 0;
  std::uint32_t minus = 0;
  [[nodiscard]] std::uint32_t positions() const noexcept { return plus | minus; }
};

[[nodiscard]] inline NafDigits naf_digits(std::uint32_t mag) noexcept {
  const std::uint32_t m3 = mag + (mag << 1);
  return {(m3 & ~mag) >> 1, (mag & ~m3) >> 1};
}

/// Number of nonzero NAF digits of `mag` — the effectual term count a
/// term-serial (Laconic-style) weight lane spends on the value. Zero has no
/// terms; callers that model a synchronized sequencer clamp group counts to
/// one cycle themselves.
[[nodiscard]] int naf_term_count(std::uint32_t mag) noexcept;

/// FNV-1a over a byte range — the shared checksum/hash primitive behind
/// the model-snapshot section checksums, the shard router's rendezvous
/// hash, and the autotune cache framing.
[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace loom
