// Plain-text table formatting used by the bench binaries to print the
// paper's tables and figure series in a readable, diffable layout.
#pragma once

#include <string>
#include <vector>

namespace loom {

/// A simple column-aligned ASCII table. Rows are added as vectors of cells;
/// column widths are computed on render. Supports a title, a header row and
/// horizontal rules between row groups.
class TextTable {
 public:
  explicit TextTable(std::string title = {});

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  /// Add a horizontal rule (rendered as dashes) before the next row.
  void add_rule();

  [[nodiscard]] std::string render() const;

  /// Format a double with `digits` fractional digits.
  [[nodiscard]] static std::string num(double v, int digits = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace loom
