// Error handling primitives for the loom library.
//
// Following the C++ Core Guidelines we use exceptions for error reporting
// (E.2) and an Expects/Ensures-style contract macro for precondition checks
// (I.6). Contract violations throw `loom::ContractViolation` so tests can
// assert on them; they are programming errors, not recoverable conditions.
#pragma once

#include <stdexcept>
#include <string>

namespace loom {

/// Base class for all errors thrown by the loom library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration is internally inconsistent (bad layer
/// geometry, impossible accelerator dimensions, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a precondition (Expects) or postcondition (Ensures) fails.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + cond + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace loom

// Precondition check: use at function entry to validate arguments.
#define LOOM_EXPECTS(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::loom::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
  } while (false)

// Postcondition / invariant check.
#define LOOM_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::loom::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
  } while (false)
