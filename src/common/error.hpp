// Error handling primitives for the loom library.
//
// Following the C++ Core Guidelines we use exceptions for error reporting
// (E.2) and an Expects/Ensures-style contract macro for precondition checks
// (I.6). Contract violations throw `loom::ContractViolation` so tests can
// assert on them; they are programming errors, not recoverable conditions.
#pragma once

#include <stdexcept>
#include <string>

namespace loom {

/// Base class for all errors thrown by the loom library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration is internally inconsistent (bad layer
/// geometry, impossible accelerator dimensions, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a precondition (Expects) or postcondition (Ensures) fails.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

// ---- Serving / robustness taxonomy ----------------------------------------
// The inference server reports *why* a request did not complete with a
// distinct type per cause, so callers can branch (retry later, resubmit at a
// higher priority, give up) without string-matching. ConfigError stays
// reserved for genuinely inconsistent configuration.

/// Thrown when admission control sheds a request under queue pressure —
/// either rejected at submit time (watermark crossed, bounded wait expired)
/// or evicted from the queue to make room for higher-priority work. The
/// request never ran; retrying later or at a higher priority may succeed.
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what) : Error(what) {}
};

/// Thrown (through the request's future) when a per-request deadline expired
/// before a result could be delivered — at batch formation or at completion.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what) : Error(what) {}
};

/// Thrown when a request is refused because the server is stopping (or has
/// stopped). Nothing is misconfigured and nothing was lost; the request was
/// simply submitted too late.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

/// A (possibly transient) engine-run failure: the batch may succeed on
/// retry or on the scalar-oracle fallback. Also what the fault-injection
/// harness throws to exercise those paths.
class TransientEngineError : public Error {
 public:
  explicit TransientEngineError(const std::string& what) : Error(what) {}
};

/// Thrown by the shard router when a tenant's token bucket is empty: the
/// tenant exceeded its configured request rate. Distinct from OverloadError
/// — the system has capacity, this caller has spent its share. Accounted
/// separately from sheds in RouterStats.
class TenantQuotaError : public Error {
 public:
  explicit TenantQuotaError(const std::string& what) : Error(what) {}
};

/// Thrown when a binary model snapshot cannot be decoded: bad magic,
/// unsupported version, truncated or short-read file, out-of-bounds section
/// length, checksum mismatch, or a structurally invalid payload. Every
/// corrupted input must surface as this type — never UB or a crash.
class SnapshotError : public Error {
 public:
  explicit SnapshotError(const std::string& what) : Error(what) {}
};

/// Thrown when a persistent autotune cache cannot be used: bad magic,
/// version skew, truncation, checksum mismatch, a structurally invalid
/// cell — or a key mismatch (different CPU SIMD tier or registered backend
/// set), which makes a well-formed cache foreign to this process. Loading
/// rejects the whole file; the autotuner's in-memory state is untouched.
class AutotuneCacheError : public Error {
 public:
  explicit AutotuneCacheError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + cond + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace loom

// Precondition check: use at function entry to validate arguments.
#define LOOM_EXPECTS(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::loom::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
  } while (false)

// Postcondition / invariant check.
#define LOOM_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::loom::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
  } while (false)
