// Deterministic counter-based random number generation.
//
// Paper-scale workloads (VGG-19 has >140M weights) cannot be materialized in
// memory on a laptop. Instead every synthetic tensor element is generated
// on demand from a pure function of (seed, stream, index) using the
// splitmix64 finalizer. The same index always yields the same value, so the
// simulators, the profiler and the tests all observe an identical "virtual
// tensor" without storing it.
#pragma once

#include <cstdint>

namespace loom {

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Stateless counter-based RNG. Cheap to copy; all draws are pure functions
/// of the key material.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream) noexcept
      : key_(mix64(seed ^ (stream * 0x9E3779B97F4A7C15ull))) {}

  /// Uniform 64-bit draw for element `index` of the stream.
  [[nodiscard]] std::uint64_t bits(std::uint64_t index) const noexcept {
    return mix64(key_ ^ (index + 0x632BE59BD9B4E019ull));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform(std::uint64_t index) const noexcept;

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t index, std::uint64_t n) const noexcept;

  /// Standard normal draw (Box-Muller on two derived uniforms).
  [[nodiscard]] double normal(std::uint64_t index) const noexcept;

  /// Exponential draw with rate 1 (inverse-CDF).
  [[nodiscard]] double exponential(std::uint64_t index) const noexcept;

 private:
  std::uint64_t key_;
};

/// Sequential convenience wrapper around CounterRng for test code that wants
/// classic next()-style draws.
class SequentialRng {
 public:
  explicit SequentialRng(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : rng_(seed, stream) {}

  [[nodiscard]] std::uint64_t next_bits() noexcept { return rng_.bits(counter_++); }
  [[nodiscard]] double next_uniform() noexcept { return rng_.uniform(counter_++); }
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n) noexcept {
    return rng_.below(counter_++, n);
  }

 private:
  CounterRng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace loom
