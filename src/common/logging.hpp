// Tiny leveled logger. Experiments use it for progress reporting; it is
// silent at the default level so test output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace loom {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one log line (thread-unsafe by design: the simulators are
/// single-threaded and benches log from the main thread only).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace loom

#define LOOM_LOG_DEBUG ::loom::detail::LogLine(::loom::LogLevel::kDebug)
#define LOOM_LOG_INFO ::loom::detail::LogLine(::loom::LogLevel::kInfo)
#define LOOM_LOG_WARN ::loom::detail::LogLine(::loom::LogLevel::kWarn)
#define LOOM_LOG_ERROR ::loom::detail::LogLine(::loom::LogLevel::kError)
