// Small statistics helpers used by the comparison harness and the
// calibration code: means, geometric means (the paper reports geomeans),
// weighted aggregation and a streaming accumulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace loom {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Geometric mean; requires all inputs > 0. Returns 0 for an empty range.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Weighted arithmetic mean: sum(w*x)/sum(w).
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> ws);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Streaming accumulator for count/sum/min/max/mean.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over integer bins [0, bins); used for precision distributions.
class IntHistogram {
 public:
  explicit IntHistogram(int bins);

  void add(int bin, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t count(int bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] int bins() const noexcept { return static_cast<int>(counts_.size()); }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace loom
