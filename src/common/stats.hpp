// Small statistics helpers used by the comparison harness and the
// calibration code: means, geometric means (the paper reports geomeans),
// weighted aggregation and a streaming accumulator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace loom {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Geometric mean; requires all inputs > 0. Returns 0 for an empty range.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Weighted arithmetic mean: sum(w*x)/sum(w).
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> ws);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Streaming accumulator for count/sum/min/max/mean.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average: value' = alpha*x + (1-alpha)*value.
/// The first sample seeds the average directly (no zero bias). Used by the
/// shard router's per-shard error-rate and latency health signals.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }
  void reset() noexcept {
    value_ = 0.0;
    seeded_ = false;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool seeded() const noexcept { return seeded_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Fixed-footprint log-bucketed histogram over non-negative 64-bit samples
/// (nanosecond latencies in practice): 4 sub-buckets per power of two, so
/// any quantile is recovered with <= ~12.5% relative error from 256 counters
/// and no allocation. Copyable — serving stats snapshot it by value.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 2;  ///< sub-buckets per octave = 4
  static constexpr std::size_t kBuckets = 64u << kSubBits;

  void add(std::uint64_t sample) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }

  /// Quantile q in [0, 1]: the smallest recorded magnitude with at least
  /// ceil(q * count) samples at or below it, interpolated linearly inside
  /// its bucket and clamped to the exact observed min/max. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Bucket index a sample lands in (exposed for tests).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t sample) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Histogram over integer bins [0, bins); used for precision distributions.
class IntHistogram {
 public:
  explicit IntHistogram(int bins);

  void add(int bin, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t count(int bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] int bins() const noexcept { return static_cast<int>(counts_.size()); }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace loom
