#include "common/thread_pool.hpp"

#include <algorithm>

namespace loom {

ThreadPool& shared_pool() {
  static ThreadPool pool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

std::size_t resolve_jobs(int jobs) {
  return jobs <= 0 ? shared_pool().size() : static_cast<std::size_t>(jobs);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawn can fail (e.g. EAGAIN under a thread limit). Unwinding
    // with joinable threads in workers_ would std::terminate — shut the
    // started workers down first, then let the exception propagate.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  // Drain every submitted future before (re)throwing — even when a
  // submission itself fails (e.g. bad_alloc): queued tasks reference `fn`,
  // which may die with the caller's frame if we unwound while tasks were
  // still pending.
  std::exception_ptr first;
  std::vector<std::future<void>> futures;
  try {
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
  } catch (...) {
    first = std::current_exception();
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace loom
