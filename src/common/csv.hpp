// Minimal CSV writer so experiment binaries can emit machine-readable
// results alongside the human-readable tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace loom {

/// Streams rows of quoted-when-needed CSV cells to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  /// Escape a single cell per RFC 4180 (quote if it contains , " or \n).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace loom
