#include "common/cpuid.hpp"

#include <cstdlib>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace loom::common {

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

SimdLevel hardware_simd_level() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const SimdLevel probed = [] {
    if (__builtin_cpu_supports("avx512f") != 0 &&
        __builtin_cpu_supports("avx512bw") != 0) {
      return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2") != 0) return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
  }();
  return probed;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel simd_cap_from_env(const char* force_scalar, const char* level) {
  const bool forced = force_scalar != nullptr && force_scalar[0] != '\0' &&
                      !(force_scalar[0] == '0' && force_scalar[1] == '\0');
  if (forced) return SimdLevel::kScalar;
  if (level == nullptr || level[0] == '\0') return SimdLevel::kAvx512;
  const std::string_view v(level);
  if (v == "scalar") return SimdLevel::kScalar;
  if (v == "avx2") return SimdLevel::kAvx2;
  if (v == "avx512" || v == "native") return SimdLevel::kAvx512;
  throw ConfigError("unknown LOOM_SIMD_LEVEL: " + std::string(v) +
                    " (want scalar, avx2, avx512 or native)");
}

SimdLevel simd_level() {
  static const SimdLevel effective = [] {
    const SimdLevel cap = simd_cap_from_env(
        std::getenv("LOOM_FORCE_SCALAR_SIMD"), std::getenv("LOOM_SIMD_LEVEL"));
    const SimdLevel hw = hardware_simd_level();
    return cap < hw ? cap : hw;
  }();
  return effective;
}

bool have_avx2() { return simd_level() >= SimdLevel::kAvx2; }

bool have_avx512() { return simd_level() >= SimdLevel::kAvx512; }

}  // namespace loom::common
