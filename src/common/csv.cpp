#include "common/csv.hpp"

namespace loom {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace loom
