// Hardware model of the dynamic precision detection unit (§3.2 "Dynamic
// Precision Reduction"): per-bit-position OR trees over the group of
// concurrently processed activations produce a 16-bit usage vector; a
// leading-one detector reports the sufficient precision. This component
// operates on the same bit-plane layout the Activation Memory stores.
#pragma once

#include <cstdint>
#include <span>

#include "arch/serializer.hpp"
#include "common/bitops.hpp"

namespace loom::arch {

class DynamicPrecisionUnit {
 public:
  /// Detect the needed precision of a group of unsigned activations given
  /// in value form. Returns at least 1 (a zero group still costs a cycle).
  [[nodiscard]] int detect(std::span<const Value> group) noexcept;

  /// Detect over a group given as per-column spans (the dispatcher's fetch
  /// group) without concatenating into a temporary buffer. One detector
  /// invocation, same result as detect() on the concatenation.
  [[nodiscard]] int detect(
      std::span<const std::span<const Value>> columns) noexcept;

  /// Detect from bit-planes: OR each plane's words, then find the highest
  /// non-empty plane — exactly what the OR-tree hardware computes.
  [[nodiscard]] int detect_planes(const BitPlanes& planes) noexcept;

  /// Fold externally-computed detections into the counters. The bit-sliced
  /// functional engine evaluates the same OR groups word-parallel and
  /// reports them here so detector statistics stay engine-agnostic.
  void note_detections(std::uint64_t invocations, std::uint64_t values) noexcept {
    invocations_ += invocations;
    values_ += values;
  }

  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }
  [[nodiscard]] std::uint64_t values_inspected() const noexcept { return values_; }
  void reset() noexcept {
    invocations_ = 0;
    values_ = 0;
  }

 private:
  std::uint64_t invocations_ = 0;
  std::uint64_t values_ = 0;
};

}  // namespace loom::arch
