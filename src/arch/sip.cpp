#include "arch/sip.hpp"

#include "common/error.hpp"

namespace loom::arch {

Sip::Sip(SipConfig cfg) : cfg_(cfg), tree_(cfg.lanes) {
  LOOM_EXPECTS(cfg.lanes >= 1 && cfg.lanes <= 32);
}

void Sip::begin_output() noexcept {
  or_ = 0;
  ac1_ = 0;
}

void Sip::begin_weight_pass(std::uint32_t wr_bits, int weight_bit,
                            bool is_weight_msb) noexcept {
  wr_ = wr_bits;
  weight_bit_ = weight_bit;
  weight_msb_pass_ = is_weight_msb;
  ac1_ = 0;
}

void Sip::cycle(std::uint32_t act_bits, bool is_act_msb) noexcept {
  ++cycles_;
  const int tree_out = tree_.reduce_bits(act_bits & wr_);
  // MSB-first serialization: AC1 shifts itself each cycle; the negation
  // block subtracts the sign-bit cycle of signed activations.
  const Wide signed_out =
      (cfg_.act_signed && is_act_msb) ? -static_cast<Wide>(tree_out)
                                      : static_cast<Wide>(tree_out);
  ac1_ = (ac1_ << 1) + signed_out;
}

void Sip::end_weight_pass() noexcept {
  const Wide shifted = ac1_ << weight_bit_;
  or_ += (cfg_.weight_signed && weight_msb_pass_) ? -shifted : shifted;
  ac1_ = 0;
}

Wide sip_inner_product(Sip& sip, std::span<const Value> acts,
                       std::span<const Value> weights, int pa, int pw) {
  LOOM_EXPECTS(acts.size() == weights.size());
  LOOM_EXPECTS(static_cast<int>(acts.size()) <= sip.config().lanes);
  LOOM_EXPECTS(pa >= 1 && pa <= kBasePrecision);
  LOOM_EXPECTS(pw >= 1 && pw <= kBasePrecision);

  sip.begin_output();
  for (int wb = 0; wb < pw; ++wb) {
    std::uint32_t wr = 0;
    for (std::size_t lane = 0; lane < weights.size(); ++lane) {
      wr |= static_cast<std::uint32_t>(bit_of(weights[lane], wb)) << lane;
    }
    sip.begin_weight_pass(wr, wb, /*is_weight_msb=*/wb == pw - 1);
    for (int ab = pa - 1; ab >= 0; --ab) {  // MSB-first
      std::uint32_t bits = 0;
      for (std::size_t lane = 0; lane < acts.size(); ++lane) {
        bits |= static_cast<std::uint32_t>(bit_of(acts[lane], ab)) << lane;
      }
      sip.cycle(bits, /*is_act_msb=*/ab == pa - 1);
    }
    sip.end_weight_pass();
  }
  return sip.output();
}

}  // namespace loom::arch
