#include "arch/serializer.hpp"

#include "common/error.hpp"

namespace loom::arch {

BitPlanes::BitPlanes(std::int64_t values, int precision)
    : values_(values),
      precision_(precision),
      words_per_plane_((values + 63) / 64),
      words_(static_cast<std::size_t>(words_per_plane_ * precision), 0) {
  LOOM_EXPECTS(values >= 0);
  LOOM_EXPECTS(precision >= 1 && precision <= kBasePrecision);
}

std::size_t BitPlanes::word_index(std::int64_t value_index, int plane) const {
  LOOM_EXPECTS(value_index >= 0 && value_index < values_);
  LOOM_EXPECTS(plane >= 0 && plane < precision_);
  return static_cast<std::size_t>(plane * words_per_plane_ + value_index / 64);
}

int BitPlanes::bit(std::int64_t value_index, int plane) const {
  const std::uint64_t word = words_[word_index(value_index, plane)];
  return static_cast<int>((word >> (value_index % 64)) & 1u);
}

void BitPlanes::set_bit(std::int64_t value_index, int plane, int bit) {
  std::uint64_t& word = words_[word_index(value_index, plane)];
  const std::uint64_t mask = std::uint64_t{1} << (value_index % 64);
  if (bit) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

BitPlanes serialize(std::span<const Value> values, int precision) {
  BitPlanes planes(static_cast<std::int64_t>(values.size()), precision);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (int b = 0; b < precision; ++b) {
      planes.set_bit(static_cast<std::int64_t>(i), b, bit_of(values[i], b));
    }
  }
  return planes;
}

std::vector<Value> deserialize(const BitPlanes& planes, bool is_signed) {
  std::vector<Value> out(static_cast<std::size_t>(planes.values()), 0);
  const int p = planes.precision();
  for (std::int64_t i = 0; i < planes.values(); ++i) {
    std::uint32_t v = 0;
    for (int b = 0; b < p; ++b) {
      v |= static_cast<std::uint32_t>(planes.bit(i, b)) << b;
    }
    if (is_signed && p < 16 && ((v >> (p - 1)) & 1u)) {
      v |= ~((1u << p) - 1u);  // sign-extend
    }
    out[static_cast<std::size_t>(i)] = static_cast<Value>(static_cast<std::uint16_t>(v));
  }
  return out;
}

}  // namespace loom::arch
