// Architecture configurations for the three accelerator families. All are
// parameterized by the *equivalent peak compute bandwidth* E: the number of
// 16b x 16b multiply-accumulates per cycle of the matched bit-parallel
// design (the x-axis of the paper's Figure 5; E = 128 in the main
// configuration).
#pragma once

#include <string>

#include "common/bitops.hpp"

namespace loom::arch {

/// Common clock: all designs run at 1 GHz (paper §4.1).
inline constexpr double kClockGhz = 1.0;

/// DPNN: DaDianNao-style bit-parallel baseline. Per cycle it consumes
/// `act_lanes` activations broadcast to `filters()` inner-product units.
struct DpnnConfig {
  int equiv_macs = 128;
  int act_lanes = 16;

  [[nodiscard]] int filters() const noexcept { return equiv_macs / act_lanes; }
  [[nodiscard]] std::string to_string() const;
  void validate() const;
};

/// Loom: a grid of rows() x cols() SIPs, each multiplying `lanes` 1-bit
/// activations by `lanes` 1-bit weights per cycle. rows = concurrent
/// filters, cols = concurrent windows (CVLs) / staggered weight columns
/// (FCLs). The LM2b/LM4b variants process 2/4 activation bits per cycle
/// with 8/4 columns (paper §3.2 "Tuning the Performance, Area and Energy
/// Trade-off").
struct LoomConfig {
  int equiv_macs = 128;
  int bits_per_cycle = 1;  ///< 1 (LM1b), 2 (LM2b) or 4 (LM4b)
  int lanes = 16;          ///< products per SIP per cycle

  bool dynamic_act_precision = true;  ///< runtime per-group trimming [5]
  bool per_group_weights = false;     ///< §4.6 per-group weight precisions [10]
  bool cascading = true;              ///< SIP daisy-chaining for small layers

  /// Ablation: when per_group_weights is on, the paper *estimates*
  /// performance assuming it scales linearly with the mean effective weight
  /// precision. The honest mode instead charges the max precision over the
  /// group of weights loaded together.
  bool honest_group_weight_timing = false;

  /// §6 future-work extension: skip weight bit-planes in which no weight of
  /// the group has a one (sign-magnitude serialization). Like Table 4 this
  /// is a linear-scaling estimate from the measured mean count of essential
  /// planes per 16-weight group (see LayerWorkload::essential_weight_planes).
  bool sparse_weight_skipping = false;

  [[nodiscard]] int rows() const noexcept { return equiv_macs; }
  [[nodiscard]] int cols() const noexcept { return kBasePrecision / bits_per_cycle; }
  [[nodiscard]] int sips() const noexcept { return rows() * cols(); }
  /// Activations processed concurrently = dynamic-detection group size
  /// (256 for LM1b at E=128, matching the paper).
  [[nodiscard]] int act_group() const noexcept { return lanes * cols(); }
  /// Weight-precision detection group (16 weights; Lascorz et al. [10]).
  [[nodiscard]] int weight_group() const noexcept { return lanes; }

  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::string to_string() const;
  void validate() const;
};

/// Laconic-style term-serial design (Pragmatic/Laconic lineage, the §6
/// future-work direction): same rows() x cols() SIP grid as LM1b, but each
/// SIP lane processes one effectual activation-term x weight-term pair per
/// cycle instead of one bit-plane pair. Term counts are popcounts of the
/// essential bit-planes — zero bits cost nothing — and a group sequencer
/// synchronizes the 16 lanes of a SIP (and the 256-activation detection
/// group) at the slowest lane: the group walks every digit position present
/// in *any* lane.
struct LaconicConfig {
  int equiv_macs = 128;
  int lanes = 16;  ///< term pairs per SIP per cycle

  bool dynamic_act_precision = true;  ///< runtime per-group trimming [5]
  bool cascading = true;              ///< SIP daisy-chaining for small layers

  /// Estimate mode for bench_sparsity's "estimate vs measured" column: scale
  /// cycles linearly with the mean NAF terms *per weight* (every lane
  /// independent), ignoring group synchronization — the same optimistic
  /// arithmetic the old linear-scaling estimates applied. Off = measured
  /// synchronized-group term counts.
  bool linear_term_scaling = false;

  [[nodiscard]] int rows() const noexcept { return equiv_macs; }
  [[nodiscard]] int cols() const noexcept { return kBasePrecision; }
  [[nodiscard]] int sips() const noexcept { return rows() * cols(); }
  /// Activation detection group (matches LM1b's 256 at E=128).
  [[nodiscard]] int act_group() const noexcept { return lanes * kBasePrecision; }
  /// Weight term-sequencer group (16 weights share one sequencer).
  [[nodiscard]] int weight_group() const noexcept { return lanes; }

  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::string to_string() const;
  void validate() const;
};

/// Stripes: bit-serial activations, bit-parallel weights; 16 concurrent
/// windows per filter, so its filter parallelism matches DPNN's and its
/// relative performance is insensitive to E (Figure 5). DStripes adds the
/// dynamic precision detector.
struct StripesConfig {
  int equiv_macs = 128;
  int windows = 16;
  int lanes = 16;
  bool dynamic_act_precision = false;  ///< true = DStripes

  [[nodiscard]] int filters() const noexcept { return equiv_macs / lanes; }
  [[nodiscard]] int act_group() const noexcept { return lanes * windows; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::string to_string() const;
  void validate() const;
};

}  // namespace loom::arch
