#include "arch/ip_unit.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace loom::arch {

IpUnit::IpUnit(int lanes) : lanes_(lanes), tree_(lanes) {
  LOOM_EXPECTS(lanes >= 1);
}

void IpUnit::cycle(std::span<const Value> acts,
                   std::span<const Value> weights) noexcept {
  ++cycles_;
  const std::size_t n = std::min({acts.size(), weights.size(),
                                  static_cast<std::size_t>(lanes_)});
  Wide products[64];
  const std::size_t m = std::min<std::size_t>(n, 64);
  for (std::size_t i = 0; i < m; ++i) {
    products[i] = static_cast<Wide>(acts[i]) * static_cast<Wide>(weights[i]);
  }
  acc_ += tree_.reduce(std::span<const Wide>(products, m));
}

}  // namespace loom::arch
