// Functional SIP-grid tile: rows x cols SIPs sharing row weight buses and
// column activation buses (paper Figure 2b). The tile executes real
// sub-problems bit-serially — conv blocks (rows = filters, cols = windows)
// and cascaded reductions — producing exact outputs plus cycle counts.
// The cycle-accurate simulators use closed-form counting for full networks;
// this component is the semantic reference that the tests hold them to.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/sip.hpp"
#include "common/bitops.hpp"

namespace loom::arch {

struct TileConfig {
  int rows = 16;
  int cols = 16;
  int lanes = 16;
  bool act_signed = false;
};

class SipTile {
 public:
  explicit SipTile(TileConfig cfg);

  struct BlockResult {
    /// outputs[r * cols + c] = inner product of weights row r with
    /// activations column c.
    std::vector<Wide> outputs;
    std::uint64_t cycles = 0;
  };

  /// Convolutional block: every SIP(r,c) computes the full inner product of
  /// `weights[r]` (one filter) against `acts[c]` (one window), both of
  /// length L, processed in chunks of `lanes` over pa x pw cycles each.
  [[nodiscard]] BlockResult conv_block(
      const std::vector<std::vector<Value>>& acts_by_col,
      const std::vector<std::vector<Value>>& weights_by_row, int pa, int pw);

  /// Cascade reduction (§3.2 "Processing Layers with Few Outputs"): reduce
  /// groups of `ways` adjacent partial outputs along a row into their sums
  /// via the SIP daisy-chain; costs ways-1 cycles per group.
  struct CascadeResult {
    std::vector<Wide> reduced;
    std::uint64_t cycles = 0;
  };
  [[nodiscard]] CascadeResult cascade_reduce(const std::vector<Wide>& partials,
                                             int ways) const;

  [[nodiscard]] const TileConfig& config() const noexcept { return cfg_; }

 private:
  TileConfig cfg_;
  std::vector<Sip> sips_;  // row-major
};

}  // namespace loom::arch
