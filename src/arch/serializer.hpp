// Bit-interleaved (bit-plane) serialization: the memory layout Loom uses to
// store weights and activations using only as many bits as the profile
// requires (§3.2 "Reducing Memory Footprint and Bandwidth"). Given N values
// and precision p, plane b holds bit b of all N values on consecutive rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"

namespace loom::arch {

/// Packed bit-planes of a value block.
class BitPlanes {
 public:
  BitPlanes() = default;
  BitPlanes(std::int64_t values, int precision);

  [[nodiscard]] std::int64_t values() const noexcept { return values_; }
  [[nodiscard]] int precision() const noexcept { return precision_; }

  [[nodiscard]] int bit(std::int64_t value_index, int plane) const;
  void set_bit(std::int64_t value_index, int plane, int bit);

  /// Total storage in bits (= values * precision, padded to words).
  [[nodiscard]] std::int64_t storage_bits() const noexcept {
    return values_ * precision_;
  }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

 private:
  [[nodiscard]] std::size_t word_index(std::int64_t value_index, int plane) const;

  std::int64_t values_ = 0;
  int precision_ = 0;
  std::int64_t words_per_plane_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Pack `values` into bit-planes keeping only `precision` bits of each
/// (two's-complement truncation: callers must ensure values fit).
[[nodiscard]] BitPlanes serialize(std::span<const Value> values, int precision);

/// Reconstruct the values from the planes. `is_signed` sign-extends from
/// the top plane (two's complement); otherwise values are zero-extended.
[[nodiscard]] std::vector<Value> deserialize(const BitPlanes& planes, bool is_signed);

}  // namespace loom::arch
