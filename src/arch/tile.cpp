#include "arch/tile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace loom::arch {

SipTile::SipTile(TileConfig cfg) : cfg_(cfg) {
  LOOM_EXPECTS(cfg.rows >= 1 && cfg.cols >= 1 && cfg.lanes >= 1);
  const SipConfig sip_cfg{cfg.lanes, cfg.act_signed, /*weight_signed=*/true};
  sips_.assign(static_cast<std::size_t>(cfg.rows) * cfg.cols, Sip(sip_cfg));
}

SipTile::BlockResult SipTile::conv_block(
    const std::vector<std::vector<Value>>& acts_by_col,
    const std::vector<std::vector<Value>>& weights_by_row, int pa, int pw) {
  LOOM_EXPECTS(static_cast<int>(acts_by_col.size()) <= cfg_.cols);
  LOOM_EXPECTS(static_cast<int>(weights_by_row.size()) <= cfg_.rows);
  LOOM_EXPECTS(pa >= 1 && pa <= kBasePrecision);
  LOOM_EXPECTS(pw >= 1 && pw <= kBasePrecision);

  const int used_cols = static_cast<int>(acts_by_col.size());
  const int used_rows = static_cast<int>(weights_by_row.size());
  std::size_t length = 0;
  for (const auto& v : acts_by_col) length = std::max(length, v.size());
  for (const auto& v : weights_by_row) LOOM_EXPECTS(v.size() == length || v.empty());

  BlockResult result;
  result.outputs.assign(static_cast<std::size_t>(cfg_.rows) * cfg_.cols, 0);
  for (auto& sip : sips_) sip.begin_output();

  const std::int64_t chunks = ceil_div(static_cast<std::int64_t>(length), cfg_.lanes);
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t base = static_cast<std::size_t>(chunk) * cfg_.lanes;
    // One chunk costs pa * pw cycles on every active SIP; all SIPs in the
    // grid run in lock step so wall-clock cycles accrue once per chunk.
    for (int wb = 0; wb < pw; ++wb) {
      // Each row loads its own weight bits (shared across the row's SIPs
      // over the common weight bus).
      for (int r = 0; r < used_rows; ++r) {
        std::uint32_t wr = 0;
        for (int lane = 0; lane < cfg_.lanes; ++lane) {
          const std::size_t i = base + static_cast<std::size_t>(lane);
          const Value w = i < weights_by_row[static_cast<std::size_t>(r)].size()
                              ? weights_by_row[static_cast<std::size_t>(r)][i]
                              : 0;
          wr |= static_cast<std::uint32_t>(bit_of(w, wb)) << lane;
        }
        for (int c = 0; c < used_cols; ++c) {
          sips_[static_cast<std::size_t>(r) * cfg_.cols + c].begin_weight_pass(
              wr, wb, wb == pw - 1);
        }
      }
      for (int ab = pa - 1; ab >= 0; --ab) {
        for (int c = 0; c < used_cols; ++c) {
          std::uint32_t bits = 0;
          for (int lane = 0; lane < cfg_.lanes; ++lane) {
            const std::size_t i = base + static_cast<std::size_t>(lane);
            const Value a = i < acts_by_col[static_cast<std::size_t>(c)].size()
                                ? acts_by_col[static_cast<std::size_t>(c)][i]
                                : 0;
            bits |= static_cast<std::uint32_t>(bit_of(a, ab)) << lane;
          }
          for (int r = 0; r < used_rows; ++r) {
            sips_[static_cast<std::size_t>(r) * cfg_.cols + c].cycle(
                bits, ab == pa - 1);
          }
        }
        ++result.cycles;
      }
      for (int r = 0; r < used_rows; ++r) {
        for (int c = 0; c < used_cols; ++c) {
          sips_[static_cast<std::size_t>(r) * cfg_.cols + c].end_weight_pass();
        }
      }
    }
  }

  for (int r = 0; r < used_rows; ++r) {
    for (int c = 0; c < used_cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * cfg_.cols + c;
      result.outputs[i] = sips_[i].output();
    }
  }
  return result;
}

SipTile::CascadeResult SipTile::cascade_reduce(const std::vector<Wide>& partials,
                                               int ways) const {
  LOOM_EXPECTS(ways >= 1);
  LOOM_EXPECTS(partials.size() % static_cast<std::size_t>(ways) == 0);
  CascadeResult out;
  out.reduced.reserve(partials.size() / static_cast<std::size_t>(ways));
  for (std::size_t i = 0; i < partials.size(); i += static_cast<std::size_t>(ways)) {
    Wide acc = 0;
    for (int k = 0; k < ways; ++k) acc += partials[i + static_cast<std::size_t>(k)];
    out.reduced.push_back(acc);
  }
  // The daisy-chain moves one partial per cycle: ways-1 cycles per group,
  // groups reduce in parallel along distinct rows.
  out.cycles = static_cast<std::uint64_t>(ways - 1);
  return out;
}

}  // namespace loom::arch
