// DPNN's bit-parallel inner-product unit (paper Figure 2a): per cycle it
// multiplies `lanes` 16-bit activations by `lanes` 16-bit weights, reduces
// the 32-bit products through an adder tree and accumulates into an output
// register.
#pragma once

#include <cstdint>
#include <span>

#include "arch/adder_tree.hpp"
#include "common/bitops.hpp"

namespace loom::arch {

class IpUnit {
 public:
  explicit IpUnit(int lanes = 16);

  void begin_output() noexcept { acc_ = 0; }

  /// One cycle: multiply-accumulate `lanes` pairs (shorter spans read as 0).
  void cycle(std::span<const Value> acts, std::span<const Value> weights) noexcept;

  [[nodiscard]] Wide output() const noexcept { return acc_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  /// Adder-tree depth + multiplier stage: pipeline latency in cycles.
  [[nodiscard]] int pipeline_depth() const noexcept { return tree_.depth() + 1; }

 private:
  int lanes_;
  AdderTree tree_;
  Wide acc_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace loom::arch
