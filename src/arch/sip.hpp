// Functional model of Loom's bit-Serial Inner-Product unit (paper Figure 3).
//
// Each cycle a SIP ANDs `lanes` single-bit activations with the `lanes`
// 1-bit Weight Registers and reduces the partial products through a 1-bit
// adder tree. AC1 shift-accumulates the tree output over the activation
// bits of one weight-bit pass; at the end of the pass AC2 shifts AC1 by the
// weight-bit significance and accumulates into the Output Register (OR).
// Negation blocks subtract the passes corresponding to two's-complement
// MSBs (sign bits) of either operand. A cascade input lets row-adjacent
// SIPs reduce partial outputs (§3.2 "Processing Layers with Few Outputs"),
// and a comparator implements max pooling.
//
// Processing order in this model: activation bits MSB->LSB within a pass
// (AC1's <<1 self-shift, as drawn in Figure 3), weight bits in any order
// (AC2 applies the explicit << by bit significance). The unit computes the
// exact signed inner product; tests prove equivalence with the bit-parallel
// reference for all precision combinations.
#pragma once

#include <cstdint>
#include <span>

#include "arch/adder_tree.hpp"
#include "common/bitops.hpp"

namespace loom::arch {

struct SipConfig {
  int lanes = 16;
  bool act_signed = false;   ///< conv activations are post-ReLU (unsigned)
  bool weight_signed = true;
};

class Sip {
 public:
  explicit Sip(SipConfig cfg = {});

  /// Clear the output register (start of a new output activation).
  void begin_output() noexcept;

  /// Load one bit of each weight into the WRs and start a pass.
  /// `weight_bit` is the bit significance (0 = LSB); `is_weight_msb` marks
  /// the two's-complement sign-bit pass.
  void begin_weight_pass(std::uint32_t wr_bits, int weight_bit,
                         bool is_weight_msb) noexcept;

  /// One cycle: multiply the WR bits by `act_bits` (packed, lane i = bit i)
  /// and shift-accumulate into AC1. Activation bits must be fed MSB-first;
  /// `is_act_msb` marks the sign-bit cycle of signed activations.
  void cycle(std::uint32_t act_bits, bool is_act_msb) noexcept;

  /// Close the pass: AC2 shifts AC1 by the weight-bit significance and
  /// accumulates into OR (negated for the weight sign-bit pass).
  void end_weight_pass() noexcept;

  /// Cascade input: accumulate a neighbour SIP's partial output into OR.
  void cascade_in(Wide partial) noexcept { or_ += partial; }

  /// Max-pooling comparator at the SIP output.
  [[nodiscard]] Wide max_unit(Wide other) const noexcept {
    return or_ > other ? or_ : other;
  }

  [[nodiscard]] Wide output() const noexcept { return or_; }
  [[nodiscard]] const SipConfig& config() const noexcept { return cfg_; }

  /// Total cycles this SIP has executed (activity for the energy model).
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  SipConfig cfg_;
  AdderTree tree_;
  std::uint32_t wr_ = 0;       // 1-bit weight registers, lane i = bit i
  int weight_bit_ = 0;
  bool weight_msb_pass_ = false;
  Wide ac1_ = 0;
  Wide or_ = 0;
  std::uint64_t cycles_ = 0;
};

/// Convenience driver: compute the inner product of `acts` x `weights`
/// bit-serially through one SIP with the given precisions. Returns the OR
/// value; the exact number of SIP cycles spent is `pa * pw`.
[[nodiscard]] Wide sip_inner_product(Sip& sip, std::span<const Value> acts,
                                     std::span<const Value> weights, int pa,
                                     int pw);

}  // namespace loom::arch
