// The transposer rotates output activations from the value-parallel layout
// produced at ABout into the bit-interleaved layout the Activation Memory
// stores (§3.2). Since every output activation takes tens-to-hundreds of
// cycles to produce, one narrow transposer keeps up; we model it
// functionally and count rotations for the energy model.
#pragma once

#include <cstdint>
#include <span>

#include "arch/serializer.hpp"

namespace loom::arch {

class Transposer {
 public:
  /// Rotate a block of output activations into `precision`-bit planes.
  [[nodiscard]] BitPlanes rotate(std::span<const Value> outputs, int precision);

  [[nodiscard]] std::uint64_t rotations() const noexcept { return rotations_; }
  [[nodiscard]] std::uint64_t values_rotated() const noexcept { return values_; }
  void reset() noexcept {
    rotations_ = 0;
    values_ = 0;
  }

 private:
  std::uint64_t rotations_ = 0;
  std::uint64_t values_ = 0;
};

}  // namespace loom::arch
