// The dispatcher marshals bit-interleaved data from the Activation Memory
// into the per-cycle bit vectors the SIP columns consume, and weight planes
// from the Weight Memory into WR load words. It is where dynamic precision
// detection physically happens: the dispatcher inspects the group it is
// about to stream and emits only the needed planes.
//
// The functional engine (sim/functional.hpp) drives entire layers through
// this component, so the serial data movement of Figure 2b — not just its
// arithmetic — is executed and checked. The hot entry points take
// caller-owned spans and reuse the caller's stream scratch, so the scalar
// oracle path does not allocate inside layer inner loops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/detector.hpp"
#include "arch/serializer.hpp"
#include "common/bitops.hpp"

namespace loom::arch {

/// One chunk's worth of serialized activations: per activation bit (MSB
/// first), per column, a packed lane word.
struct ActivationStream {
  int precision = 0;  ///< planes actually streamed (after detection)
  int columns = 0;
  /// bits[(step * columns + col)] = packed lanes for that cycle and column.
  std::vector<std::uint32_t> bits;

  [[nodiscard]] std::uint32_t lanes(int step, int col) const {
    return bits[static_cast<std::size_t>(step) * static_cast<std::size_t>(columns) +
                static_cast<std::size_t>(col)];
  }
};

/// One chunk's worth of weight-bit load words: per weight bit (LSB first),
/// per row, a packed WR word.
struct WeightStream {
  int precision = 0;
  int rows = 0;
  std::vector<std::uint32_t> bits;

  [[nodiscard]] std::uint32_t wr_word(int bit, int row) const {
    return bits[static_cast<std::size_t>(bit) * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(row)];
  }
};

class Dispatcher {
 public:
  explicit Dispatcher(int lanes = 16);

  /// Serialize a group of activation columns (each up to `lanes` values)
  /// into MSB-first per-cycle bit vectors, reusing `out`'s storage. With
  /// `dynamic` set, the precision detector trims the streamed planes to the
  /// group's needed precision (clipped to `profile_precision`).
  void stream_activations(std::span<const std::span<const Value>> columns,
                          int profile_precision, bool dynamic,
                          ActivationStream& out);

  /// Serialize weight rows (each up to `lanes` values) into LSB-first WR
  /// words, reusing `out`'s storage.
  void stream_weights(std::span<const std::span<const Value>> rows,
                      int precision, WeightStream& out);

  /// Convenience allocating overloads (tests and one-off callers).
  [[nodiscard]] ActivationStream stream_activations(
      const std::vector<std::vector<Value>>& columns, int profile_precision,
      bool dynamic);
  [[nodiscard]] WeightStream stream_weights(
      const std::vector<std::vector<Value>>& rows, int precision);

  /// Fold externally-computed streaming totals into the counters: the
  /// bit-sliced fast path moves the same bits word-parallel and reports
  /// them here so dispatcher statistics stay engine-agnostic.
  void note_streamed(std::uint64_t act_bits, std::uint64_t weight_bits,
                     std::uint64_t detect_invocations,
                     std::uint64_t detect_values) noexcept {
    act_bits_ += act_bits;
    weight_bits_ += weight_bits;
    detector_.note_detections(detect_invocations, detect_values);
  }

  [[nodiscard]] const DynamicPrecisionUnit& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] std::uint64_t activation_bits_streamed() const noexcept {
    return act_bits_;
  }
  [[nodiscard]] std::uint64_t weight_bits_streamed() const noexcept {
    return weight_bits_;
  }
  void reset() noexcept;

 private:
  int lanes_;
  DynamicPrecisionUnit detector_;
  std::uint64_t act_bits_ = 0;
  std::uint64_t weight_bits_ = 0;
};

}  // namespace loom::arch
