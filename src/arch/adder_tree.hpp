// Functional adder-tree model shared by the SIP (16-input 1-bit tree) and
// the DPNN inner-product unit (16-input 32-bit tree). Tracks the reduction
// depth, which sets the pipeline latency charged by the cycle models.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitops.hpp"

namespace loom::arch {

class AdderTree {
 public:
  explicit AdderTree(int fan_in);

  /// Sum of the first fan_in inputs (missing inputs read as zero).
  [[nodiscard]] Wide reduce(std::span<const Wide> inputs) const noexcept;

  /// Population count reduction for 1-bit partial products.
  [[nodiscard]] int reduce_bits(std::uint32_t packed_bits) const noexcept;

  [[nodiscard]] int fan_in() const noexcept { return fan_in_; }
  /// ceil(log2(fan_in)): number of adder levels = pipeline stages.
  [[nodiscard]] int depth() const noexcept { return depth_; }

 private:
  int fan_in_;
  int depth_;
};

}  // namespace loom::arch
