#include "arch/transposer.hpp"

namespace loom::arch {

BitPlanes Transposer::rotate(std::span<const Value> outputs, int precision) {
  ++rotations_;
  values_ += outputs.size();
  return serialize(outputs, precision);
}

}  // namespace loom::arch
