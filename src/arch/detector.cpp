#include "arch/detector.hpp"

namespace loom::arch {

int DynamicPrecisionUnit::detect(std::span<const Value> group) noexcept {
  ++invocations_;
  values_ += group.size();
  return group_precision_unsigned(group);
}

int DynamicPrecisionUnit::detect(
    std::span<const std::span<const Value>> columns) noexcept {
  ++invocations_;
  std::uint32_t ored = 0;
  for (const auto& col : columns) {
    values_ += col.size();
    for (const Value v : col) {
      ored |= static_cast<std::uint32_t>(static_cast<std::uint16_t>(v));
    }
  }
  return needed_bits_unsigned(ored);
}

int DynamicPrecisionUnit::detect_planes(const BitPlanes& planes) noexcept {
  ++invocations_;
  values_ += static_cast<std::uint64_t>(planes.values());
  // OR all words of each plane; the leading-one detector picks the highest
  // plane with any set bit.
  for (int plane = planes.precision() - 1; plane >= 1; --plane) {
    bool any = false;
    for (std::int64_t v = 0; v < planes.values() && !any; ++v) {
      any = planes.bit(v, plane) != 0;
    }
    if (any) return plane + 1;
  }
  return 1;
}

}  // namespace loom::arch
