#include "arch/config.hpp"

#include <sstream>

#include "common/error.hpp"

namespace loom::arch {

void DpnnConfig::validate() const {
  if (act_lanes <= 0 || equiv_macs <= 0 || equiv_macs % act_lanes != 0) {
    throw ConfigError("DpnnConfig: equiv_macs must be a positive multiple of act_lanes");
  }
}

std::string DpnnConfig::to_string() const {
  std::ostringstream out;
  out << "DPNN(E=" << equiv_macs << ", " << act_lanes << " lanes x "
      << filters() << " filters)";
  return out.str();
}

void LoomConfig::validate() const {
  if (bits_per_cycle != 1 && bits_per_cycle != 2 && bits_per_cycle != 4) {
    throw ConfigError("LoomConfig: bits_per_cycle must be 1, 2 or 4");
  }
  if (lanes <= 0 || equiv_macs <= 0) {
    throw ConfigError("LoomConfig: lanes and equiv_macs must be positive");
  }
  if (kBasePrecision % bits_per_cycle != 0) {
    throw ConfigError("LoomConfig: bits_per_cycle must divide the base precision");
  }
}

std::string LoomConfig::name() const {
  return "LM" + std::to_string(bits_per_cycle) + "b";
}

std::string LoomConfig::to_string() const {
  std::ostringstream out;
  out << name() << "(E=" << equiv_macs << ", " << rows() << "x" << cols()
      << " SIPs, " << lanes << " lanes"
      << (dynamic_act_precision ? ", dynamic-Pa" : "")
      << (per_group_weights ? ", group-Pw" : "") << ")";
  return out.str();
}

void LaconicConfig::validate() const {
  if (lanes <= 0 || equiv_macs <= 0) {
    throw ConfigError("LaconicConfig: lanes and equiv_macs must be positive");
  }
  if (!dynamic_act_precision) {
    // Term counts are popcounts over the detector's OR planes; without the
    // detector there is nothing to count and the design degenerates to LM1b.
    throw ConfigError(
        "LaconicConfig: term-serial operation requires the dynamic "
        "precision detector (dynamic_act_precision)");
  }
}

std::string LaconicConfig::name() const { return "Laconic"; }

std::string LaconicConfig::to_string() const {
  std::ostringstream out;
  out << name() << "(E=" << equiv_macs << ", " << rows() << "x" << cols()
      << " SIPs, " << lanes << " lanes, term-serial"
      << (linear_term_scaling ? ", linear-estimate" : "") << ")";
  return out.str();
}

void StripesConfig::validate() const {
  if (lanes <= 0 || windows <= 0 || equiv_macs <= 0 || equiv_macs % lanes != 0) {
    throw ConfigError("StripesConfig: equiv_macs must be a positive multiple of lanes");
  }
}

std::string StripesConfig::name() const {
  return dynamic_act_precision ? "DStripes" : "Stripes";
}

std::string StripesConfig::to_string() const {
  std::ostringstream out;
  out << name() << "(E=" << equiv_macs << ", " << windows << " windows x "
      << filters() << " filters)";
  return out.str();
}

}  // namespace loom::arch
