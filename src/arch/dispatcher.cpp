#include "arch/dispatcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace loom::arch {

Dispatcher::Dispatcher(int lanes) : lanes_(lanes) {
  LOOM_EXPECTS(lanes >= 1 && lanes <= 32);
}

void Dispatcher::reset() noexcept {
  detector_.reset();
  act_bits_ = 0;
  weight_bits_ = 0;
}

void Dispatcher::stream_activations(
    std::span<const std::span<const Value>> columns, int profile_precision,
    bool dynamic, ActivationStream& out) {
  LOOM_EXPECTS(profile_precision >= 1 && profile_precision <= kBasePrecision);
  out.columns = static_cast<int>(columns.size());

  int precision = profile_precision;
  if (dynamic) {
    // The detector sees the whole fetch group across columns.
    precision = std::min(detector_.detect(columns), profile_precision);
  }
  out.precision = precision;

  out.bits.assign(static_cast<std::size_t>(precision) *
                      static_cast<std::size_t>(out.columns),
                  0);
  for (int step = 0; step < precision; ++step) {
    const int bit = precision - 1 - step;  // MSB first
    for (int col = 0; col < out.columns; ++col) {
      const auto& values = columns[static_cast<std::size_t>(col)];
      std::uint32_t packed = 0;
      const int n = std::min<int>(lanes_, static_cast<int>(values.size()));
      for (int lane = 0; lane < n; ++lane) {
        packed |= static_cast<std::uint32_t>(
                      bit_of(values[static_cast<std::size_t>(lane)], bit))
                  << lane;
      }
      out.bits[static_cast<std::size_t>(step) *
                   static_cast<std::size_t>(out.columns) +
               static_cast<std::size_t>(col)] = packed;
      act_bits_ += static_cast<std::uint64_t>(n);
    }
  }
}

void Dispatcher::stream_weights(std::span<const std::span<const Value>> rows,
                                int precision, WeightStream& out) {
  LOOM_EXPECTS(precision >= 1 && precision <= kBasePrecision);
  out.precision = precision;
  out.rows = static_cast<int>(rows.size());
  out.bits.assign(static_cast<std::size_t>(precision) *
                      static_cast<std::size_t>(out.rows),
                  0);
  for (int bit = 0; bit < precision; ++bit) {  // LSB first
    for (int row = 0; row < out.rows; ++row) {
      const auto& values = rows[static_cast<std::size_t>(row)];
      std::uint32_t packed = 0;
      const int n = std::min<int>(lanes_, static_cast<int>(values.size()));
      for (int lane = 0; lane < n; ++lane) {
        packed |= static_cast<std::uint32_t>(
                      bit_of(values[static_cast<std::size_t>(lane)], bit))
                  << lane;
      }
      out.bits[static_cast<std::size_t>(bit) * static_cast<std::size_t>(out.rows) +
               static_cast<std::size_t>(row)] = packed;
      weight_bits_ += static_cast<std::uint64_t>(n);
    }
  }
}

ActivationStream Dispatcher::stream_activations(
    const std::vector<std::vector<Value>>& columns, int profile_precision,
    bool dynamic) {
  std::vector<std::span<const Value>> spans(columns.begin(), columns.end());
  ActivationStream out;
  stream_activations(spans, profile_precision, dynamic, out);
  return out;
}

WeightStream Dispatcher::stream_weights(
    const std::vector<std::vector<Value>>& rows, int precision) {
  std::vector<std::span<const Value>> spans(rows.begin(), rows.end());
  WeightStream out;
  stream_weights(spans, precision, out);
  return out;
}

}  // namespace loom::arch
