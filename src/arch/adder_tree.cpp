#include "arch/adder_tree.hpp"

#include <bit>

#include "common/error.hpp"

namespace loom::arch {

AdderTree::AdderTree(int fan_in) : fan_in_(fan_in) {
  LOOM_EXPECTS(fan_in >= 1);
  depth_ = 0;
  for (int n = 1; n < fan_in; n *= 2) ++depth_;
}

Wide AdderTree::reduce(std::span<const Wide> inputs) const noexcept {
  Wide acc = 0;
  const std::size_t n = std::min<std::size_t>(inputs.size(),
                                              static_cast<std::size_t>(fan_in_));
  for (std::size_t i = 0; i < n; ++i) acc += inputs[i];
  return acc;
}

int AdderTree::reduce_bits(std::uint32_t packed_bits) const noexcept {
  const std::uint32_t mask =
      fan_in_ >= 32 ? 0xFFFFFFFFu : ((1u << fan_in_) - 1u);
  return std::popcount(packed_bits & mask);
}

}  // namespace loom::arch
