// Published precision profiles.
//
// Table 1 of the paper reports, per network, the profile-derived per-layer
// input-activation precisions and the network-wide weight precision for
// convolutional layers, plus per-layer weight precisions for
// fully-connected layers — for both the 100% and 99% relative top-1
// accuracy targets. Table 3 reports the average *effective* per-layer
// weight precision for groups of 16 weights (Lascorz et al. [10]).
//
// We cannot re-derive these from trained ImageNet models offline, so they
// are encoded here as ground truth and the synthetic workload distributions
// are calibrated against them (see DESIGN.md §4 substitution 1).
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace loom::quant {

enum class AccuracyTarget { k100, k99 };

[[nodiscard]] std::string to_string(AccuracyTarget target);

/// One network's profile for one accuracy target.
struct PrecisionProfile {
  std::string network;
  AccuracyTarget target = AccuracyTarget::k100;

  /// Per precision-group activation precisions for conv layers (Pa).
  std::vector<int> conv_act;
  /// Network-wide conv weight precision (Pw).
  int conv_weight = 16;
  /// Per-layer FC weight precisions (empty when the network has no FCLs).
  std::vector<int> fc_weight;

  /// Average dynamic trim (bits) that runtime per-group detection removes
  /// below the static activation profile. Calibration targets derived from
  /// the paper's Table 2 (see EXPERIMENTS.md); the simulators *measure* the
  /// actual trim from synthetic data calibrated to this target.
  double dynamic_act_trim = 0.0;
};

/// Look up the Table 1 profile for a zoo network ("nin", "alexnet",
/// "googlenet", "vggs", "vggm", "vgg19"). Throws ConfigError if unknown.
[[nodiscard]] const PrecisionProfile& profile_for(const std::string& network,
                                                  AccuracyTarget target);

/// Table 3: average effective per-layer weight precisions (groups of 16)
/// for the conv layers, in precision-group order.
[[nodiscard]] const std::vector<double>& effective_weight_precisions(
    const std::string& network);

/// Null when the network has no published Table 3 entry (custom networks).
[[nodiscard]] const std::vector<double>* maybe_effective_weight_precisions(
    const std::string& network);

/// Stamp a network's layers with the profile precisions: conv layers get
/// conv_act[precision_group] and conv_weight; FC layers get Pa = 16 (FCLs
/// stream full-width activations) and fc_weight[i].
void apply_profile(nn::Network& net, const PrecisionProfile& profile);

}  // namespace loom::quant
