#include "quant/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

#include "common/error.hpp"
#include "quant/group_precision.hpp"

namespace loom::quant {

double measure_mean_group_precision(const nn::SyntheticSpec& spec,
                                    const CalibrationOptions& opts) {
  // Decorrelate the Monte-Carlo sample across calibration problems: a
  // single shared sample would push the same tail fluctuation into every
  // calibrated spec (observed as a systematic ~0.15-bit bias).
  const std::uint64_t stream =
      1 + static_cast<std::uint64_t>(spec.precision) * 131 +
      static_cast<std::uint64_t>(opts.group_size) * 17;
  const nn::SyntheticSource source(opts.seed, stream, spec);
  const std::int64_t count =
      opts.sample_groups * static_cast<std::int64_t>(opts.group_size);
  const GroupPrecisionStats stats =
      spec.is_signed ? weight_group_stats(source, count, opts.group_size)
                     : activation_group_stats(source, count, opts.group_size);
  return stats.mean;
}

nn::SyntheticSpec calibrate_to_group_precision(nn::SyntheticSpec spec,
                                               double target_mean_precision,
                                               const CalibrationOptions& opts) {
  LOOM_EXPECTS(target_mean_precision >= 1.0);
  constexpr double kMinLogAlpha = 0.0;   // alpha = 1
  constexpr double kMaxLogAlpha = 16.0;  // alpha ~ 8.9e6

  spec.alpha = 1.0;
  const double at_min = measure_mean_group_precision(spec, opts);
  if (target_mean_precision >= at_min) return spec;  // already below target

  double lo = kMinLogAlpha;  // mean precision high here
  double hi = kMaxLogAlpha;  // mean precision low here
  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    spec.alpha = std::exp(mid);
    const double measured = measure_mean_group_precision(spec, opts);
    if (std::abs(measured - target_mean_precision) <= opts.tolerance) return spec;
    if (measured > target_mean_precision) {
      lo = mid;  // need more concentration
    } else {
      hi = mid;
    }
  }
  spec.alpha = std::exp(0.5 * (lo + hi));
  return spec;
}

const nn::SyntheticSpec& calibrated_spec_cached(int precision, bool is_signed,
                                                double zero_fraction,
                                                int group_size,
                                                double target_mean_precision) {
  using KeyType = std::tuple<int, bool, int, int, int>;
  // Quantize the double-valued key fields to avoid float-equality issues.
  const KeyType key{precision, is_signed,
                    static_cast<int>(std::lround(zero_fraction * 1000)),
                    group_size,
                    static_cast<int>(std::lround(target_mean_precision * 100))};
  // Guarded: workloads calibrate concurrently under the runner's `jobs`
  // fan-out. The map stores one deferred shared_future per key, so the lock
  // only covers lookup/insert: the first caller of get() runs the
  // Monte-Carlo bisection, same-key callers wait for that one result
  // (no duplicated work), and distinct keys calibrate concurrently.
  // shared_future::get() returns a reference into the shared state; a
  // successful entry is never evicted, so the cache keeps that state (and
  // the returned reference) alive for the process lifetime.
  struct Entry {
    std::uint64_t gen = 0;
    std::shared_future<nn::SyntheticSpec> fut;
  };
  static std::mutex cache_mutex;
  static std::map<KeyType, Entry> cache;
  static std::uint64_t next_gen = 0;

  std::shared_future<nn::SyntheticSpec> fut;
  std::uint64_t gen = 0;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) {
      fut = it->second.fut;
      gen = it->second.gen;
    } else {
      fut = std::async(std::launch::deferred,
                       [precision, is_signed, zero_fraction, group_size,
                        target_mean_precision] {
                         nn::SyntheticSpec spec;
                         spec.precision = precision;
                         spec.is_signed = is_signed;
                         spec.zero_fraction = zero_fraction;
                         CalibrationOptions opts;
                         opts.group_size = group_size;
                         return calibrate_to_group_precision(
                             spec, target_mean_precision, opts);
                       })
                .share();
      gen = ++next_gen;
      cache.emplace(key, Entry{gen, fut});
    }
  }
  try {
    return fut.get();
  } catch (...) {
    // Don't poison the cache with a failed (possibly transient) attempt:
    // evict so the next caller retries. The generation check makes sure we
    // only evict the exact attempt that threw — never a successor's fresh
    // (possibly already-succeeded) entry, whose shared state callers may
    // be holding references into.
    const std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = cache.find(key);
    if (it != cache.end() && it->second.gen == gen) cache.erase(it);
    throw;
  }
}

}  // namespace loom::quant
