#include "quant/profiles.hpp"

#include <map>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace loom::quant {

std::string to_string(AccuracyTarget target) {
  return target == AccuracyTarget::k100 ? "100%" : "99%";
}

namespace {

using Key = std::pair<std::string, AccuracyTarget>;

// Dynamic activation trims (bits below the static profile that per-group
// runtime detection removes on average). Derived from the paper's Table 2:
// the LM1b conv speedups imply average effective Pa = 256/(speedup * Pw);
// the trim is the gap between the work-weighted static profile and that
// implied effective precision. See EXPERIMENTS.md for the derivation.
constexpr double kTrimNiN = 1.4;
constexpr double kTrimAlexNet = 2.1;
constexpr double kTrimGoogLeNet = 2.9;
constexpr double kTrimVggS = 2.9;
constexpr double kTrimVggM = 2.5;
constexpr double kTrimVgg19 = 2.9;

const std::map<Key, PrecisionProfile>& table1() {
  static const std::map<Key, PrecisionProfile> profiles = [] {
    std::map<Key, PrecisionProfile> m;
    auto put = [&m](std::string net, AccuracyTarget t, std::vector<int> act,
                    int w, std::vector<int> fc, double trim) {
      PrecisionProfile p;
      p.network = net;
      p.target = t;
      p.conv_act = std::move(act);
      p.conv_weight = w;
      p.fc_weight = std::move(fc);
      p.dynamic_act_trim = trim;
      m.emplace(Key{std::move(net), t}, std::move(p));
    };
    using T = AccuracyTarget;
    // --- Table 1, 100% relative top-1 accuracy ---
    put("nin", T::k100, {8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8}, 11, {}, kTrimNiN);
    put("alexnet", T::k100, {9, 8, 5, 5, 7}, 11, {10, 9, 9}, kTrimAlexNet);
    put("googlenet", T::k100, {10, 8, 10, 9, 8, 10, 9, 8, 9, 10, 7}, 11, {7},
        kTrimGoogLeNet);
    put("vggs", T::k100, {7, 8, 9, 7, 9}, 12, {10, 9, 9}, kTrimVggS);
    put("vggm", T::k100, {7, 7, 7, 8, 7}, 12, {10, 8, 8}, kTrimVggM);
    put("vgg19", T::k100,
        {12, 12, 12, 11, 12, 10, 11, 11, 13, 12, 13, 13, 13, 13, 13, 13}, 12,
        {10, 9, 9}, kTrimVgg19);
    // --- Table 1, 99% relative top-1 accuracy ---
    put("nin", T::k99, {8, 8, 7, 9, 7, 8, 8, 9, 9, 8, 7, 8}, 10, {}, kTrimNiN);
    put("alexnet", T::k99, {9, 7, 4, 5, 7}, 11, {9, 8, 8}, kTrimAlexNet);
    put("googlenet", T::k99, {10, 8, 9, 8, 8, 9, 10, 8, 9, 10, 8}, 10, {7},
        kTrimGoogLeNet);
    put("vggs", T::k99, {7, 8, 9, 7, 9}, 11, {9, 9, 8}, kTrimVggS);
    put("vggm", T::k99, {6, 8, 7, 7, 7}, 12, {9, 8, 8}, kTrimVggM);
    put("vgg19", T::k99,
        {9, 9, 9, 8, 12, 10, 10, 12, 13, 11, 12, 13, 13, 13, 13, 13}, 12,
        {10, 9, 8}, kTrimVgg19);
    return m;
  }();
  return profiles;
}

const std::map<std::string, std::vector<double>>& table3() {
  static const std::map<std::string, std::vector<double>> m = {
      {"nin",
       {8.85, 10.29, 10.21, 7.65, 9.13, 9.04, 7.63, 8.65, 8.62, 7.79, 7.96,
        8.18}},
      {"alexnet", {8.36, 7.62, 7.62, 7.44, 7.55}},
      {"googlenet",
       {6.19, 5.75, 6.80, 6.28, 5.34, 6.70, 6.31, 5.02, 5.49, 7.89, 4.83}},
      {"vggs", {9.94, 6.96, 8.53, 8.13, 8.10}},
      {"vggm", {9.87, 7.55, 8.52, 8.16, 8.14}},
      {"vgg19",
       {10.98, 9.81, 9.31, 9.09, 8.58, 8.04, 7.89, 7.86, 7.51, 7.20, 7.36,
        7.47, 7.61, 7.66, 7.66, 7.63}},
  };
  return m;
}

}  // namespace

const PrecisionProfile& profile_for(const std::string& network,
                                    AccuracyTarget target) {
  const auto it = table1().find(Key{network, target});
  if (it == table1().end()) {
    throw ConfigError("no precision profile for network: " + network);
  }
  return it->second;
}

const std::vector<double>& effective_weight_precisions(
    const std::string& network) {
  const auto* found = maybe_effective_weight_precisions(network);
  if (found == nullptr) {
    throw ConfigError("no effective weight precisions for network: " + network);
  }
  return *found;
}

const std::vector<double>* maybe_effective_weight_precisions(
    const std::string& network) {
  const auto it = table3().find(network);
  return it == table3().end() ? nullptr : &it->second;
}

void apply_profile(nn::Network& net, const PrecisionProfile& profile) {
  std::size_t fc_index = 0;
  for (nn::Layer& l : net.layers()) {
    switch (l.kind) {
      case nn::LayerKind::kConv: {
        LOOM_EXPECTS(l.precision_group >= 0 &&
                     l.precision_group < static_cast<int>(profile.conv_act.size()));
        l.act_precision = profile.conv_act[static_cast<std::size_t>(l.precision_group)];
        l.weight_precision = profile.conv_weight;
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        LOOM_EXPECTS(fc_index < profile.fc_weight.size());
        // FCLs stream the full 16 activation bits (weight loading is the
        // bottleneck; see §3.2), but weights use the profiled precision.
        l.act_precision = kBasePrecision;
        l.weight_precision = profile.fc_weight[fc_index++];
        break;
      }
      case nn::LayerKind::kPool:
        break;
    }
  }
  LOOM_ENSURES(fc_index == profile.fc_weight.size());
}

}  // namespace loom::quant
