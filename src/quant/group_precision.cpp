#include "quant/group_precision.hpp"

#include <algorithm>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace loom::quant {

namespace {

template <bool kSigned>
GroupPrecisionStats stream_stats(const nn::SyntheticSource& source,
                                 std::int64_t count, int group_size,
                                 int sample_stride) {
  LOOM_EXPECTS(count > 0 && group_size > 0 && sample_stride >= 1);
  GroupPrecisionStats stats;
  double sum = 0.0;
  const std::int64_t total_groups = ceil_div(count, group_size);
  for (std::int64_t g = 0; g < total_groups; g += sample_stride) {
    const std::int64_t begin = g * group_size;
    const std::int64_t end = std::min<std::int64_t>(begin + group_size, count);
    int p = 1;
    if constexpr (kSigned) {
      for (std::int64_t i = begin; i < end; ++i) {
        p = std::max(p, needed_bits_signed(source.at(static_cast<std::uint64_t>(i))));
      }
    } else {
      std::uint32_t ored = 0;
      for (std::int64_t i = begin; i < end; ++i) {
        ored |= static_cast<std::uint16_t>(source.at(static_cast<std::uint64_t>(i)));
      }
      p = needed_bits_unsigned(ored);
    }
    stats.histogram.add(p);
    sum += p;
    ++stats.groups;
  }
  stats.mean = stats.groups ? sum / static_cast<double>(stats.groups) : 0.0;
  return stats;
}

}  // namespace

GroupPrecisionStats weight_group_stats(const nn::SyntheticSource& source,
                                       std::int64_t count, int group_size,
                                       int sample_stride) {
  return stream_stats<true>(source, count, group_size, sample_stride);
}

GroupPrecisionStats activation_group_stats(const nn::SyntheticSource& source,
                                           std::int64_t count, int group_size,
                                           int sample_stride) {
  return stream_stats<false>(source, count, group_size, sample_stride);
}

}  // namespace loom::quant
