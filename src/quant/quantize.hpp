// Fixed-point quantization helpers: float -> fixed conversion with max-abs
// scaling and precision clipping, used by the profiler, the examples and
// the tests.
#pragma once

#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "nn/tensor.hpp"

namespace loom::quant {

/// Saturate a signed value into `bits` bits of two's complement.
[[nodiscard]] Value clip_signed(std::int32_t v, int bits) noexcept;

/// Saturate a non-negative value into `bits` unsigned bits.
[[nodiscard]] Value clip_unsigned(std::int32_t v, int bits) noexcept;

/// Quantize floats into `bits`-bit signed fixed point with a shared
/// power-of-two scale chosen from the max magnitude. Returns the tensor and
/// the scale exponent (value = real * 2^scale_exp).
struct Quantized {
  nn::Tensor tensor;
  int scale_exp = 0;
};
[[nodiscard]] Quantized quantize_signed(std::span<const float> values, int bits);

/// Mean squared error between a tensor and its `bits`-bit clipped version;
/// the profiler uses this as the fidelity proxy.
[[nodiscard]] double clip_mse_signed(const nn::Tensor& t, int bits);
[[nodiscard]] double clip_mse_unsigned(const nn::Tensor& t, int bits);

}  // namespace loom::quant
