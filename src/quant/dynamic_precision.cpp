#include "quant/dynamic_precision.hpp"

#include "common/error.hpp"

namespace loom::quant {

std::vector<int> per_group_precisions(std::span<const Value> values,
                                      int group_size, bool is_signed) {
  LOOM_EXPECTS(group_size > 0);
  std::vector<int> out;
  out.reserve((values.size() + static_cast<std::size_t>(group_size) - 1) /
              static_cast<std::size_t>(group_size));
  for (std::size_t i = 0; i < values.size(); i += static_cast<std::size_t>(group_size)) {
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(group_size), values.size() - i);
    const auto group = values.subspan(i, n);
    out.push_back(is_signed ? group_precision_signed(group)
                            : group_precision_unsigned(group));
  }
  return out;
}

double mean_group_precision(std::span<const Value> values, int group_size,
                            bool is_signed) {
  const std::vector<int> ps = per_group_precisions(values, group_size, is_signed);
  if (ps.empty()) return 0.0;
  double acc = 0.0;
  for (const int p : ps) acc += p;
  return acc / static_cast<double>(ps.size());
}

}  // namespace loom::quant
