// Distribution calibration: choose the concentration exponent `alpha` of a
// SyntheticSpec so the mean per-group effective precision of the generated
// values hits a target. This is how the synthetic workloads are made to
// reproduce the published precision behaviour (Table 3's effective weight
// precisions and the dynamic activation trims implied by Table 2).
//
// Mean group precision is monotonically non-increasing in alpha (larger
// alpha concentrates magnitudes toward zero), so a bisection on log(alpha)
// against a deterministic Monte-Carlo estimate converges quickly.
#pragma once

#include <cstdint>

#include "nn/synthetic.hpp"

namespace loom::quant {

struct CalibrationOptions {
  int group_size = 16;          ///< group over which effective precision is taken
  std::int64_t sample_groups = 16384;  ///< Monte-Carlo sample size
  double tolerance = 0.04;      ///< acceptable |measured - target| in bits
  int max_iterations = 48;
  std::uint64_t seed = 0xCA11B8A7E5EEDull;
};

/// Measured mean group precision for a given spec (MC estimate).
[[nodiscard]] double measure_mean_group_precision(const nn::SyntheticSpec& spec,
                                                  const CalibrationOptions& opts);

/// Find alpha such that the mean per-group precision of values with profile
/// precision `spec.precision` is ~`target_mean_precision`. Returns the
/// calibrated spec (alpha filled in). Targets above the achievable range
/// clamp to alpha = 1; targets at/below 1 bit clamp to the maximum alpha.
[[nodiscard]] nn::SyntheticSpec calibrate_to_group_precision(
    nn::SyntheticSpec spec, double target_mean_precision,
    const CalibrationOptions& opts = {});

/// Process-wide memoization of calibrations (keyed by spec fields, group
/// size and target); the zoo networks share many (precision, target) pairs.
[[nodiscard]] const nn::SyntheticSpec& calibrated_spec_cached(
    int precision, bool is_signed, double zero_fraction, int group_size,
    double target_mean_precision);

}  // namespace loom::quant
