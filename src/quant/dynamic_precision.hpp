// Dynamic precision reduction (Lascorz et al. [5]).
//
// The hardware inspects the group of activations it is about to process
// concurrently: per-bit-position OR trees produce a 16-bit vector of the
// positions where any activation has a one, and a leading-one detector
// reports the sufficient precision. We model the unit functionally and
// count its invocations for the energy model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"

namespace loom::quant {

/// Functional model of the per-group precision detector.
class PrecisionDetector {
 public:
  /// Precision sufficient for a group of non-negative activations.
  /// Equivalent to OR-reducing the group and finding the leading one.
  [[nodiscard]] int detect_unsigned(std::span<const Value> group) noexcept {
    ++invocations_;
    return group_precision_unsigned(group);
  }

  /// Precision sufficient for a group of two's-complement weights.
  [[nodiscard]] int detect_signed(std::span<const Value> group) noexcept {
    ++invocations_;
    return group_precision_signed(group);
  }

  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }
  void reset() noexcept { invocations_ = 0; }

 private:
  std::uint64_t invocations_ = 0;
};

/// Per-group precisions over a flat value range (group = consecutive run of
/// `group_size` values; the final partial group is processed as-is).
[[nodiscard]] std::vector<int> per_group_precisions(std::span<const Value> values,
                                                    int group_size, bool is_signed);

/// Mean of per_group_precisions (the "effective precision" statistic of
/// Lascorz et al. [10] and the paper's Table 3).
[[nodiscard]] double mean_group_precision(std::span<const Value> values,
                                          int group_size, bool is_signed);

}  // namespace loom::quant
