#include "quant/profiler.hpp"

#include "common/error.hpp"
#include "quant/quantize.hpp"

namespace loom::quant {

int tight_precision(const nn::Tensor& t, bool is_signed) {
  return is_signed ? t.max_precision_signed() : t.max_precision_unsigned();
}

int profile_precision(const nn::Tensor& t, const ProfilerOptions& opts) {
  LOOM_EXPECTS(opts.mse_budget >= 0.0);
  // Mean squared value of the tensor (budget reference).
  double ms = 0.0;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const double v = t.flat(i);
    ms += v * v;
  }
  ms = t.elements() ? ms / static_cast<double>(t.elements()) : 0.0;
  const double budget = opts.mse_budget * ms;

  for (int bits = 1; bits <= kBasePrecision; ++bits) {
    const double err = opts.is_signed ? clip_mse_signed(t, bits)
                                      : clip_mse_unsigned(t, bits);
    if (err <= budget) return bits;
  }
  return kBasePrecision;
}

}  // namespace loom::quant
