#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace loom::quant {

Value clip_signed(std::int32_t v, int bits) noexcept {
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  const std::int32_t lo = -(1 << (bits - 1));
  return static_cast<Value>(std::clamp(v, lo, hi));
}

Value clip_unsigned(std::int32_t v, int bits) noexcept {
  const std::int32_t hi = (1 << bits) - 1;
  return static_cast<Value>(std::clamp(v, 0, hi));
}

Quantized quantize_signed(std::span<const float> values, int bits) {
  LOOM_EXPECTS(bits >= 2 && bits <= kBasePrecision);
  float peak = 0.0f;
  for (const float v : values) peak = std::max(peak, std::abs(v));
  // Choose scale_exp so peak maps just inside the representable range.
  int scale_exp = 0;
  if (peak > 0.0f) {
    const double limit = static_cast<double>((1 << (bits - 1)) - 1);
    scale_exp = static_cast<int>(std::floor(std::log2(limit / peak)));
  }
  const double scale = std::ldexp(1.0, scale_exp);
  Quantized q{nn::Tensor(nn::Shape{static_cast<std::int64_t>(values.size())}),
              scale_exp};
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto fixed =
        static_cast<std::int32_t>(std::lround(values[i] * scale));
    q.tensor.set_flat(static_cast<std::int64_t>(i), clip_signed(fixed, bits));
  }
  return q;
}

double clip_mse_signed(const nn::Tensor& t, int bits) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const Value v = t.flat(i);
    const double d = static_cast<double>(v) - clip_signed(v, bits);
    acc += d * d;
  }
  return t.elements() ? acc / static_cast<double>(t.elements()) : 0.0;
}

double clip_mse_unsigned(const nn::Tensor& t, int bits) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const Value v = t.flat(i);
    const double d = static_cast<double>(v) -
                     clip_unsigned(static_cast<std::int32_t>(v), bits);
    acc += d * d;
  }
  return t.elements() ? acc / static_cast<double>(t.elements()) : 0.0;
}

}  // namespace loom::quant
