#include "quant/metadata.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace loom::quant {

GroupMetadata GroupMetadata::encode(const nn::SyntheticSource& source,
                                    std::int64_t count, int group_size) {
  LOOM_EXPECTS(count > 0 && group_size > 0);
  GroupMetadata md;
  md.group_size_ = group_size;
  const std::int64_t groups = ceil_div(count, group_size);
  md.codes_.reserve(static_cast<std::size_t>(groups));
  for (std::int64_t g = 0; g < groups; ++g) {
    int p = 1;
    const std::int64_t end = std::min<std::int64_t>((g + 1) * group_size, count);
    for (std::int64_t i = g * group_size; i < end; ++i) {
      p = std::max(p, needed_bits_signed(source.at(static_cast<std::uint64_t>(i))));
    }
    md.codes_.push_back(static_cast<std::uint8_t>(p));
  }
  return md;
}

GroupMetadata GroupMetadata::encode_values(std::span<const Value> values,
                                           int group_size) {
  LOOM_EXPECTS(!values.empty() && group_size > 0);
  GroupMetadata md;
  md.group_size_ = group_size;
  for (std::size_t i = 0; i < values.size();
       i += static_cast<std::size_t>(group_size)) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(group_size), values.size() - i);
    md.codes_.push_back(static_cast<std::uint8_t>(
        group_precision_signed(values.subspan(i, n))));
  }
  return md;
}

int GroupMetadata::group_precision(std::int64_t group) const {
  LOOM_EXPECTS(group >= 0 && group < groups());
  return codes_[static_cast<std::size_t>(group)];
}

std::int64_t GroupMetadata::packed_value_bits() const noexcept {
  std::int64_t bits = 0;
  for (const std::uint8_t code : codes_) {
    bits += static_cast<std::int64_t>(code) * group_size_;
  }
  return bits;
}

double GroupMetadata::mean_precision() const noexcept {
  if (codes_.empty()) return 0.0;
  double acc = 0.0;
  for (const std::uint8_t code : codes_) acc += code;
  return acc / static_cast<double>(codes_.size());
}

FootprintReport weight_footprint(const nn::SyntheticSource& source,
                                 std::int64_t count, int layer_precision,
                                 int group_size) {
  LOOM_EXPECTS(layer_precision >= 1 && layer_precision <= kBasePrecision);
  FootprintReport r;
  r.values = count;
  r.baseline_bits = count * kBasePrecision;
  r.per_layer_bits = count * layer_precision;
  const GroupMetadata md = GroupMetadata::encode(source, count, group_size);
  r.per_group_bits = md.total_bits();
  r.per_layer_ratio = static_cast<double>(r.baseline_bits) /
                      static_cast<double>(r.per_layer_bits);
  r.per_group_ratio = static_cast<double>(r.baseline_bits) /
                      static_cast<double>(r.per_group_bits);
  return r;
}

}  // namespace loom::quant
