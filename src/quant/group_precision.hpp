// Streaming per-group weight precision statistics (Lascorz et al. [10],
// paper §4.6 and Table 3). Weight tensors at VGG scale are never
// materialized; statistics are computed by streaming a SyntheticSource.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "nn/synthetic.hpp"

namespace loom::quant {

struct GroupPrecisionStats {
  double mean = 0.0;            ///< average effective precision over groups
  std::uint64_t groups = 0;     ///< number of groups measured
  IntHistogram histogram{17};   ///< distribution over precisions 0..16
};

/// Effective precision statistics over consecutive groups of `group_size`
/// values streamed from `source` (weights: signed two's complement).
/// `count` values are examined; `sample_stride` > 1 measures every k-th
/// group only (deterministic subsampling for very large tensors).
[[nodiscard]] GroupPrecisionStats weight_group_stats(const nn::SyntheticSource& source,
                                                     std::int64_t count,
                                                     int group_size,
                                                     int sample_stride = 1);

/// Same statistic over unsigned activation values.
[[nodiscard]] GroupPrecisionStats activation_group_stats(const nn::SyntheticSource& source,
                                                         std::int64_t count,
                                                         int group_size,
                                                         int sample_stride = 1);

}  // namespace loom::quant
