// Per-group precision metadata (§4.6): when per-group weight precisions are
// detected statically, they must be "communicated via per group metadata"
// alongside the packed weights. This codec packs 4-bit precision codes per
// group (16 encodes as 0), accounts for the storage overhead, and computes
// the net footprint win of per-group packing vs per-layer packing — the
// feasibility side of the Table 4 estimate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "nn/synthetic.hpp"

namespace loom::quant {

/// Encoded per-group precisions: 4 bits per group.
class GroupMetadata {
 public:
  GroupMetadata() = default;

  /// Encode the per-group signed precisions of `count` values streamed from
  /// `source`, in groups of `group_size`.
  static GroupMetadata encode(const nn::SyntheticSource& source,
                              std::int64_t count, int group_size);

  /// Encode from explicit values.
  static GroupMetadata encode_values(std::span<const Value> values,
                                     int group_size);

  [[nodiscard]] int group_precision(std::int64_t group) const;
  [[nodiscard]] std::int64_t groups() const noexcept {
    return static_cast<std::int64_t>(codes_.size());
  }
  [[nodiscard]] int group_size() const noexcept { return group_size_; }

  /// Metadata storage: 4 bits per group.
  [[nodiscard]] std::int64_t metadata_bits() const noexcept {
    return groups() * 4;
  }

  /// Bits to store the values packed per group at their detected precision.
  [[nodiscard]] std::int64_t packed_value_bits() const noexcept;

  /// Total footprint including metadata.
  [[nodiscard]] std::int64_t total_bits() const noexcept {
    return packed_value_bits() + metadata_bits();
  }

  /// Average effective precision implied by the codes.
  [[nodiscard]] double mean_precision() const noexcept;

 private:
  int group_size_ = 16;
  std::vector<std::uint8_t> codes_;  // 1..16 (stored directly)
};

/// Footprint comparison for one weight tensor: baseline 16-bit layout,
/// per-layer packing at `layer_precision`, and per-group packing with
/// metadata.
struct FootprintReport {
  std::int64_t values = 0;
  std::int64_t baseline_bits = 0;
  std::int64_t per_layer_bits = 0;
  std::int64_t per_group_bits = 0;  ///< including metadata
  double per_layer_ratio = 1.0;     ///< baseline / per_layer
  double per_group_ratio = 1.0;     ///< baseline / per_group
};

[[nodiscard]] FootprintReport weight_footprint(const nn::SyntheticSource& source,
                                               std::int64_t count,
                                               int layer_precision,
                                               int group_size = 16);

}  // namespace loom::quant
