// Profile-derived precision selection in the style of Judd et al. [6]:
// find, per tensor, the smallest precision whose quantization error stays
// within a fidelity budget. The paper ran this against network accuracy on
// ImageNet; our proxy is value fidelity (exactness for the 100% target, a
// small mean-squared-error budget for the 99% target), which produces tight
// profiles on the calibrated synthetic tensors and is validated in
// bench_table1 against the encoded Table 1.
#pragma once

#include "nn/tensor.hpp"

namespace loom::quant {

struct ProfilerOptions {
  /// Allowed mean-squared clipping error relative to the tensor's mean
  /// squared value. 0 demands losslessness (the 100% accuracy target).
  double mse_budget = 0.0;
  bool is_signed = true;
};

/// Minimum precision meeting the fidelity budget (1..16).
[[nodiscard]] int profile_precision(const nn::Tensor& t, const ProfilerOptions& opts);

/// Tight (lossless) precision of a tensor: max needed bits over elements.
[[nodiscard]] int tight_precision(const nn::Tensor& t, bool is_signed);

}  // namespace loom::quant
