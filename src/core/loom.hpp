// Umbrella header: the public API of the Loom reproduction library.
//
// Quickstart:
//   #include "core/loom.hpp"
//   auto workload = loom::sim::prepare_network("alexnet",
//                                              loom::quant::AccuracyTarget::k100);
//   loom::core::ExperimentRunner runner;             // E = 128, all archs
//   auto cmp = runner.compare({"alexnet"});          // vs DPNN baseline
//   std::cout << loom::core::format_table2(cmp);
#pragma once

#include "arch/config.hpp"
#include "arch/detector.hpp"
#include "arch/ip_unit.hpp"
#include "arch/serializer.hpp"
#include "arch/sip.hpp"
#include "arch/tile.hpp"
#include "arch/transposer.hpp"
#include "common/bitops.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/options.hpp"
#include "core/reports.hpp"
#include "core/runner.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "mem/bitpacked.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"
#include "mem/tile_plan.hpp"
#include "mem/timeline.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"
#include "nn/zoo/zoo.hpp"
#include "quant/calibration.hpp"
#include "quant/dynamic_precision.hpp"
#include "quant/group_precision.hpp"
#include "quant/profiler.hpp"
#include "quant/profiles.hpp"
#include "sim/comparison.hpp"
#include "sim/laconic_sim.hpp"
#include "sim/result.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"
