// Minimal command-line option parsing for the bench and example binaries:
// --key=value / --flag pairs, with typed getters and an automatic usage
// string. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace loom::core {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list value.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& key, const std::vector<std::string>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace loom::core
