// Report formatters: render Comparison / RunResult data in the layout of
// the paper's tables and figures, so a bench run reads side-by-side with
// the publication.
#pragma once

#include <string>
#include <vector>

#include "quant/profiles.hpp"
#include "sim/comparison.hpp"

namespace loom::core {

/// Table 2 layout: per network, Perf and Eff of each architecture vs DPNN,
/// split into fully-connected and convolutional sections, plus geomeans.
[[nodiscard]] std::string format_table2(const sim::Comparison& cmp,
                                        const std::vector<std::string>& archs,
                                        const std::string& title);

/// Table 4 / Figure 4 layout: all layers combined.
[[nodiscard]] std::string format_all_layers(const sim::Comparison& cmp,
                                            const std::vector<std::string>& archs,
                                            const std::string& title);

/// Table 1 layout: the encoded precision profiles.
[[nodiscard]] std::string format_table1();

/// Per-layer drill-down of one run (cycles, utilization, precisions).
[[nodiscard]] std::string format_layer_breakdown(const sim::RunResult& run);

/// Memory-hierarchy drill-down of a constrained (§4.5) run: per layer the
/// tile count, DRAM fill/drain traffic, channel-busy cycles, stalls and
/// the residency/dataflow the shared tile scheduler chose.
[[nodiscard]] std::string format_memory_breakdown(const sim::RunResult& run);

}  // namespace loom::core
