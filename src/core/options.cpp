#include "core/options.hpp"

#include <cstdlib>

namespace loom::core {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Options::get_list(
    const std::string& key, const std::vector<std::string>& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::string> out;
  std::string current;
  for (const char ch : it->second) {
    if (ch == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace loom::core
