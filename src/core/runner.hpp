// ExperimentRunner: builds the paper's standard architecture roster at a
// given equivalent compute scale and runs the comparison over zoo networks,
// sharing one workload per network across all architectures (the group-
// precision caches make this a large win).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "quant/profiles.hpp"
#include "sim/comparison.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace loom::core {

struct RunnerOptions {
  int equiv_macs = 128;
  quant::AccuracyTarget target = quant::AccuracyTarget::k100;
  bool per_group_weights = false;  ///< §4.6 / Table 4 mode for the Loom variants
  /// Constrained §4.5 mode (tile-scheduled AM/WM + LPDDR4 timing from
  /// sim/engine) — the default for roster sweeps. Disable to reproduce the
  /// §4.3 unconstrained tables.
  bool model_offchip = true;
  /// AM/WM capacity overrides in bytes; 0 keeps each architecture's §4.5
  /// default sizing (Loom 1 MB packed AM, DPNN 2 MB, WM scaling with E).
  std::int64_t am_bytes = 0;
  std::int64_t wm_bytes = 0;
  mem::DramConfig dram;
  std::uint64_t seed = 1;

  bool include_stripes = true;
  bool include_dstripes = false;
  std::vector<int> loom_bits = {1, 2, 4};  ///< which LMxb variants to run
  /// Term-serial (Laconic-style) simulator as the roster's last entry — the
  /// §6 weight-sparsity extension measured instead of estimated.
  bool include_laconic = true;

  /// Worker threads used by compare() to simulate (arch × network) cells
  /// concurrently. 1 runs serially; values <= 0 use
  /// std::thread::hardware_concurrency(). The comparison table is
  /// bit-identical to the serial one regardless of the value — cells are
  /// deterministic and results are assembled in roster order.
  int jobs = 1;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// Run the baseline + roster over the named zoo networks, producing the
  /// relative comparison. Networks default to the paper's six.
  [[nodiscard]] sim::Comparison compare(
      const std::vector<std::string>& networks = {});

  /// Run one architecture by display key ("dpnn", "stripes", "dstripes",
  /// "lm1b", "lm2b", "lm4b", "laconic") over one network; used by
  /// examples/benches needing raw RunResults.
  [[nodiscard]] sim::RunResult run_single(const std::string& arch_key,
                                          const std::string& network);

  /// Display names of the roster architectures, in run order.
  [[nodiscard]] std::vector<std::string> roster_names() const;

  [[nodiscard]] const RunnerOptions& options() const noexcept { return opts_; }

 private:
  [[nodiscard]] std::unique_ptr<sim::Simulator> make_baseline() const;
  [[nodiscard]] std::vector<std::unique_ptr<sim::Simulator>> make_roster() const;
  /// Number of roster architectures implied by the options.
  [[nodiscard]] std::size_t roster_size() const noexcept;
  /// Build just the index-th roster simulator (same order as make_roster).
  [[nodiscard]] std::unique_ptr<sim::Simulator> make_roster_entry(
      std::size_t index) const;
  /// Lazily builds (and caches) the workload for `network`. Thread-safe:
  /// the cache lookup/insert is mutex-guarded so concurrent cells of the
  /// same network share one workload (and its group-precision caches).
  [[nodiscard]] sim::NetworkWorkload& workload_for(const std::string& network);
  [[nodiscard]] int effective_jobs() const;
  [[nodiscard]] sim::Comparison compare_parallel(
      const std::vector<std::string>& names, int jobs);

  /// SimOptions every simulator of this runner receives (offchip mode,
  /// capacity overrides, DRAM channel).
  [[nodiscard]] sim::SimOptions sim_options() const;

  RunnerOptions opts_;
  std::mutex workloads_mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<sim::NetworkWorkload>>>
      workloads_;
};

/// Parse the standard sweep flags into RunnerOptions, shared by the CLI
/// binaries: --equiv, --target(100|99), --per-group-weights,
/// --model-offchip / --offchip, --am-kb, --wm-kb, --jobs, --seed,
/// --loom-bits, --dstripes, --no-stripes, --no-laconic.
[[nodiscard]] RunnerOptions runner_options_from_cli(const Options& cli);

}  // namespace loom::core
