#include "core/runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "nn/zoo/zoo.hpp"

namespace loom::core {

ExperimentRunner::ExperimentRunner(RunnerOptions opts) : opts_(std::move(opts)) {}

std::unique_ptr<sim::Simulator> ExperimentRunner::make_baseline() const {
  arch::DpnnConfig cfg;
  cfg.equiv_macs = opts_.equiv_macs;
  sim::SimOptions sim_opts;
  sim_opts.model_offchip = opts_.model_offchip;
  return sim::make_dpnn_simulator(cfg, sim_opts);
}

std::vector<std::unique_ptr<sim::Simulator>> ExperimentRunner::make_roster() const {
  std::vector<std::unique_ptr<sim::Simulator>> roster;
  sim::SimOptions sim_opts;
  sim_opts.model_offchip = opts_.model_offchip;

  if (opts_.include_stripes) {
    arch::StripesConfig s;
    s.equiv_macs = opts_.equiv_macs;
    s.dynamic_act_precision = false;
    roster.push_back(sim::make_stripes_simulator(s, sim_opts));
  }
  if (opts_.include_dstripes) {
    arch::StripesConfig s;
    s.equiv_macs = opts_.equiv_macs;
    s.dynamic_act_precision = true;
    roster.push_back(sim::make_stripes_simulator(s, sim_opts));
  }
  for (const int bits : opts_.loom_bits) {
    arch::LoomConfig l;
    l.equiv_macs = opts_.equiv_macs;
    l.bits_per_cycle = bits;
    l.per_group_weights = opts_.per_group_weights;
    roster.push_back(sim::make_loom_simulator(l, sim_opts));
  }
  return roster;
}

std::vector<std::string> ExperimentRunner::roster_names() const {
  std::vector<std::string> names;
  for (const auto& sim : make_roster()) names.push_back(sim->name());
  return names;
}

sim::NetworkWorkload& ExperimentRunner::workload_for(const std::string& network) {
  for (auto& [name, wl] : workloads_) {
    if (name == network) return *wl;
  }
  sim::WorkloadOptions wl_opts;
  wl_opts.seed = opts_.seed;
  workloads_.emplace_back(
      network, sim::prepare_network(network, opts_.target, wl_opts));
  return *workloads_.back().second;
}

sim::Comparison ExperimentRunner::compare(const std::vector<std::string>& networks) {
  const std::vector<std::string>& names =
      networks.empty() ? nn::zoo::paper_networks() : networks;

  auto baseline = make_baseline();
  auto roster = make_roster();
  std::vector<sim::Simulator*> roster_ptrs;
  roster_ptrs.reserve(roster.size());
  for (const auto& sim : roster) roster_ptrs.push_back(sim.get());

  sim::Comparison cmp;
  for (const std::string& net : names) {
    cmp.add_network(workload_for(net), *baseline, roster_ptrs);
  }
  return cmp;
}

sim::RunResult ExperimentRunner::run_single(const std::string& arch_key,
                                            const std::string& network) {
  sim::SimOptions sim_opts;
  sim_opts.model_offchip = opts_.model_offchip;

  std::unique_ptr<sim::Simulator> sim;
  if (arch_key == "dpnn") {
    arch::DpnnConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    sim = sim::make_dpnn_simulator(cfg, sim_opts);
  } else if (arch_key == "stripes" || arch_key == "dstripes") {
    arch::StripesConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    cfg.dynamic_act_precision = (arch_key == "dstripes");
    sim = sim::make_stripes_simulator(cfg, sim_opts);
  } else if (arch_key == "lm1b" || arch_key == "lm2b" || arch_key == "lm4b") {
    arch::LoomConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    cfg.bits_per_cycle = arch_key[2] - '0';
    cfg.per_group_weights = opts_.per_group_weights;
    sim = sim::make_loom_simulator(cfg, sim_opts);
  } else {
    throw ConfigError("unknown architecture key: " + arch_key);
  }
  return sim->run(workload_for(network));
}

}  // namespace loom::core
